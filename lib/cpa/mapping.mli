(** Mapping phase of CPA: list scheduling with fixed allocations on an
    otherwise empty cluster of [p] processors.

    Tasks are placed in decreasing bottom-level order (with the
    allocation-induced weights) at the earliest time compatible with their
    predecessors and with processor availability.  Because weights are
    positive, decreasing bottom level is a topological order, so every
    predecessor is placed before its successors. *)

val bl_order : Mp_dag.Dag.t -> weights:float array -> int array
(** Task indices sorted by decreasing bottom level (ties by index).  This
    is a valid topological order for positive weights. *)

val map : Mp_dag.Dag.t -> allocs:int array -> p:int -> Schedule.t
(** [map dag ~allocs ~p] list-schedules the DAG.  Raises
    [Invalid_argument] when an allocation exceeds [p]. *)

val map_subset : Mp_dag.Dag.t -> allocs:int array -> p:int -> keep:bool array -> int array option
(** [map_subset dag ~allocs ~p ~keep] builds the reference schedule the
    resource-conservative deadline algorithms need: the sub-DAG of kept
    tasks is scheduled from time 0 (virtual entry/exit tasks are inserted
    when the restriction is not single-entry/single-exit), and the start
    time of each kept task is returned ([-1] for dropped tasks).  [None]
    when nothing is kept. *)

type references
(** Memoized reference-schedule starts for every order-prefix of one
    ⟨dag, allocs, p, order⟩.  The resource-conservative backward pass
    places tasks at positions [n-1 downto 0] of [order]; at position [k]
    the unplaced set is exactly the prefix [order.(0..k)], and only the
    reference start of [order.(k)] is consumed — so all the deadline
    probes of a λ-sweep or [tightest] search share one start value per
    position instead of one {!map_subset} rebuild per placement × probe.
    Stateful (fills its memo on demand): use from one domain at a time —
    in practice each prepared-scheduler closure owns its own value. *)

val prefix_references :
  Mp_dag.Dag.t -> allocs:int array -> p:int -> order:int array -> references
(** O(1); the underlying {!map_subset} calls happen lazily inside
    {!reference_start}, at most once per position over the value's whole
    lifetime. *)

val reference_start : references -> int -> int
(** [reference_start r k] is [starts.(order.(k))] of
    [map_subset dag ~allocs ~p ~keep:(prefix k)] where [prefix k] keeps
    exactly [order.(0..k)] (0 when that restriction is empty — it never
    is for [k >= 0]).  Computing position [k] computes every position
    [>= k] as a side effect, in decreasing order — matching the backward
    pass, so failed probes never pay for prefixes they did not reach.
    Raises [Invalid_argument] when [k] is outside [0, n). *)
