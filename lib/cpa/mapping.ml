module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Analysis = Mp_dag.Analysis
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation

let c_calls = Mp_obs.Counter.make "cpa.mapping.calls"
let c_placements = Mp_obs.Counter.make "cpa.mapping.placements"
let t_map = Mp_obs.Timer.make "cpa.map"

let bl_order dag ~weights =
  let bl = Analysis.bottom_levels dag ~weights in
  let idx = Array.init (Dag.n dag) (fun i -> i) in
  Array.sort
    (fun i j -> match compare bl.(j) bl.(i) with 0 -> compare i j | c -> c)
    idx;
  idx

let map dag ~allocs ~p =
  if Array.length allocs <> Dag.n dag then invalid_arg "Mapping.map: allocs length mismatch";
  Array.iter (fun a -> if a < 1 || a > p then invalid_arg "Mapping.map: allocation outside [1, p]") allocs;
  Mp_obs.Counter.incr c_calls;
  let obs_t0 = Mp_obs.Timer.start () in
  let weights = Allocation.weights dag ~allocs in
  let order = bl_order dag ~weights in
  let slots =
    Array.make (Dag.n dag) ({ start = 0; finish = 0; procs = 0 } : Schedule.slot)
  in
  (* Strictly linear place-then-reserve loop on a throwaway calendar: run
     it on a mutable transaction. *)
  let cal = Calendar.Txn.start (Calendar.create ~procs:p) in
  Array.iter
    (fun i ->
      let ready =
        Array.fold_left (fun acc j -> max acc slots.(j).Schedule.finish) 0 (Dag.preds dag i)
      in
      let np = allocs.(i) in
      let dur = Task.exec_time (Dag.task dag i) np in
      match Calendar.Txn.earliest_fit cal ~after:ready ~procs:np ~dur with
      | None -> assert false (* np <= p on an empty-calendar cluster always fits *)
      | Some s ->
          Mp_obs.Counter.incr c_placements;
          Calendar.Txn.reserve cal (Reservation.make ~start:s ~finish:(s + dur) ~procs:np);
          slots.(i) <- { start = s; finish = s + dur; procs = np })
    order;
  Mp_obs.Timer.stop t_map obs_t0;
  if !Mp_forensics.Journal.enabled then begin
    let makespan =
      Array.fold_left (fun acc (s : Schedule.slot) -> max acc s.finish) 0 slots
    in
    Mp_forensics.Journal.cpa_map ~p ~n_tasks:(Dag.n dag) ~makespan
  end;
  { Schedule.slots }

let map_subset0 dag ~allocs ~p ~keep =
  match Dag.sub dag ~keep with
  | None -> None
  | Some (sub, mapping) ->
      let sub_allocs =
        Array.map (fun old_i -> if old_i >= 0 then min p allocs.(old_i) else 1) mapping
      in
      let sched = map sub ~allocs:sub_allocs ~p in
      let starts = Array.make (Dag.n dag) (-1) in
      Array.iteri
        (fun new_i old_i -> if old_i >= 0 then starts.(old_i) <- Schedule.start sched new_i)
        mapping;
      Some starts

let map_subset = map_subset0

(* The resource-conservative backward pass consumes reference schedules of
   strict order-prefixes: at backward step [k] the unplaced set is exactly
   {order.(0), …, order.(k)}, and only the start of order.(k) is read.  So
   instead of rebuilding the sub-DAG (and its weights and bl-sort) per
   placement × per deadline probe, we peel tasks off a single [keep] array,
   from the full DAG down to the singleton prefix, and memoize one start
   value per position.  Positions are filled lazily in decreasing order —
   the same order the backward pass requests them — so a probe that fails
   early never pays for the prefixes it did not reach, and every later
   probe reads the memo for free. *)
type references = {
  r_dag : Dag.t;
  r_allocs : int array;
  r_p : int;
  r_order : int array;
  r_keep : bool array; (* keep.(order.(j)) = false for j >= r_next *)
  r_starts : int array; (* valid for positions >= r_next *)
  mutable r_next : int; (* lowest position computed so far *)
}

let prefix_references dag ~allocs ~p ~order =
  let n = Dag.n dag in
  if Array.length order <> n then
    invalid_arg "Mapping.prefix_references: order length mismatch";
  {
    r_dag = dag;
    r_allocs = allocs;
    r_p = p;
    r_order = order;
    r_keep = Array.make n true;
    r_starts = Array.make n 0;
    r_next = n;
  }

let reference_start r k =
  if k < 0 || k >= Array.length r.r_order then
    invalid_arg "Mapping.reference_start: position out of range";
  while r.r_next > k do
    let k' = r.r_next - 1 in
    let i = r.r_order.(k') in
    (match map_subset0 r.r_dag ~allocs:r.r_allocs ~p:r.r_p ~keep:r.r_keep with
    | Some starts -> r.r_starts.(k') <- starts.(i)
    | None -> r.r_starts.(k') <- 0);
    r.r_keep.(i) <- false;
    r.r_next <- k'
  done;
  r.r_starts.(k)
