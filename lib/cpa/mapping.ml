module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Analysis = Mp_dag.Analysis
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation

let c_calls = Mp_obs.Counter.make "cpa.mapping.calls"
let c_placements = Mp_obs.Counter.make "cpa.mapping.placements"
let t_map = Mp_obs.Timer.make "cpa.map"

let bl_order dag ~weights =
  let bl = Analysis.bottom_levels dag ~weights in
  let idx = Array.init (Dag.n dag) (fun i -> i) in
  Array.sort
    (fun i j -> match compare bl.(j) bl.(i) with 0 -> compare i j | c -> c)
    idx;
  idx

let map dag ~allocs ~p =
  if Array.length allocs <> Dag.n dag then invalid_arg "Mapping.map: allocs length mismatch";
  Array.iter (fun a -> if a < 1 || a > p then invalid_arg "Mapping.map: allocation outside [1, p]") allocs;
  Mp_obs.Counter.incr c_calls;
  let obs_t0 = Mp_obs.Timer.start () in
  let weights = Allocation.weights dag ~allocs in
  let order = bl_order dag ~weights in
  let slots =
    Array.make (Dag.n dag) ({ start = 0; finish = 0; procs = 0 } : Schedule.slot)
  in
  let cal = ref (Calendar.create ~procs:p) in
  Array.iter
    (fun i ->
      let ready =
        Array.fold_left (fun acc j -> max acc slots.(j).Schedule.finish) 0 (Dag.preds dag i)
      in
      let np = allocs.(i) in
      let dur = Task.exec_time (Dag.task dag i) np in
      match Calendar.earliest_fit !cal ~after:ready ~procs:np ~dur with
      | None -> assert false (* np <= p on an empty-calendar cluster always fits *)
      | Some s ->
          Mp_obs.Counter.incr c_placements;
          cal := Calendar.reserve !cal (Reservation.make ~start:s ~finish:(s + dur) ~procs:np);
          slots.(i) <- { start = s; finish = s + dur; procs = np })
    order;
  Mp_obs.Timer.stop t_map obs_t0;
  if !Mp_forensics.Journal.enabled then begin
    let makespan =
      Array.fold_left (fun acc (s : Schedule.slot) -> max acc s.finish) 0 slots
    in
    Mp_forensics.Journal.cpa_map ~p ~n_tasks:(Dag.n dag) ~makespan
  end;
  { Schedule.slots }

let map_subset dag ~allocs ~p ~keep =
  match Dag.sub dag ~keep with
  | None -> None
  | Some (sub, mapping) ->
      let sub_allocs =
        Array.map (fun old_i -> if old_i >= 0 then min p allocs.(old_i) else 1) mapping
      in
      let sched = map sub ~allocs:sub_allocs ~p in
      let starts = Array.make (Dag.n dag) (-1) in
      Array.iteri
        (fun new_i old_i -> if old_i >= 0 then starts.(old_i) <- Schedule.start sched new_i)
        mapping;
      Some starts
