module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Analysis = Mp_dag.Analysis

type criterion = Classic | Improved

let c_calls = Mp_obs.Counter.make "cpa.allocate.calls"
let c_iterations = Mp_obs.Counter.make "cpa.iterations"
let t_allocate = Mp_obs.Timer.make "cpa.allocate"

let weights dag ~allocs =
  Array.mapi (fun i tk -> Task.exec_time_f tk allocs.(i)) (Dag.tasks dag)

(* Minimum relative gain for an increment to count under Improved; avoids
   burning processors on an Amdahl plateau. *)
let min_gain = 1e-4

let allocate ?(criterion = Improved) ~p dag =
  if p < 1 then invalid_arg "Allocation.allocate: p < 1";
  Mp_obs.Counter.incr c_calls;
  let obs_t0 = Mp_obs.Timer.start () in
  let nb = Dag.n dag in
  let allocs = Array.make nb 1 in
  let caps =
    match criterion with
    | Classic -> Array.make nb p
    | Improved ->
        let lev = Analysis.levels dag in
        let widths = Analysis.level_widths dag in
        Array.init nb (fun i -> max 1 ((p + widths.(lev.(i)) - 1) / widths.(lev.(i))))
  in
  let tasks = Dag.tasks dag in
  let w = weights dag ~allocs in
  (* Running total work, updated incrementally. *)
  let total_work = ref 0. in
  Array.iteri (fun i wi -> total_work := !total_work +. (float_of_int allocs.(i) *. wi)) w;
  let rec loop () =
    let bl = Analysis.bottom_levels dag ~weights:w in
    let tl = Analysis.top_levels dag ~weights:w in
    let t_cp = bl.(Dag.entry dag) in
    let t_a = !total_work /. float_of_int p in
    if t_cp <= t_a then ()
    else begin
      (* Pick the critical-path task with the best relative gain from one
         more processor, among tasks below their cap. *)
      let eps = 1e-9 *. Float.max 1. t_cp in
      let best = ref None in
      for i = 0 to nb - 1 do
        if Float.abs (tl.(i) +. bl.(i) -. t_cp) <= eps && allocs.(i) < caps.(i) then begin
          let cur = w.(i) in
          let nxt = Task.exec_time_f tasks.(i) (allocs.(i) + 1) in
          let gain = (cur -. nxt) /. cur in
          let good =
            match criterion with Classic -> gain > 0. | Improved -> gain > min_gain
          in
          if good then begin
            match !best with
            | Some (_, g) when g >= gain -> ()
            | _ -> best := Some (i, gain)
          end
        end
      done;
      match !best with
      | None -> () (* no critical-path task can usefully grow: stop *)
      | Some (i, _) ->
          Mp_obs.Counter.incr c_iterations;
          total_work := !total_work -. (float_of_int allocs.(i) *. w.(i));
          allocs.(i) <- allocs.(i) + 1;
          w.(i) <- Task.exec_time_f tasks.(i) allocs.(i);
          total_work := !total_work +. (float_of_int allocs.(i) *. w.(i));
          loop ()
    end
  in
  loop ();
  Mp_obs.Timer.stop t_allocate obs_t0;
  if !Mp_forensics.Journal.enabled then begin
    (* Each iteration grows exactly one allocation by 1 from the all-ones
       start, so the iteration count is recoverable from the total. *)
    let total_alloc = Array.fold_left ( + ) 0 allocs in
    Mp_forensics.Journal.cpa_alloc ~p ~iterations:(total_alloc - nb) ~n_tasks:nb ~total_alloc
  end;
  allocs
