module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Analysis = Mp_dag.Analysis

type criterion = Classic | Improved

let c_calls = Mp_obs.Counter.make "cpa.allocate.calls"
let c_iterations = Mp_obs.Counter.make "cpa.iterations"
let t_allocate = Mp_obs.Timer.make "cpa.allocate"

let weights dag ~allocs =
  Array.mapi (fun i tk -> Task.exec_time_f tk allocs.(i)) (Dag.tasks dag)

(* Minimum relative gain for an increment to count under Improved; avoids
   burning processors on an Amdahl plateau. *)
let min_gain = 1e-4

let allocate ?(criterion = Improved) ~p dag =
  if p < 1 then invalid_arg "Allocation.allocate: p < 1";
  Mp_obs.Counter.incr c_calls;
  let obs_t0 = Mp_obs.Timer.start () in
  let nb = Dag.n dag in
  let allocs = Array.make nb 1 in
  let caps =
    match criterion with
    | Classic -> Array.make nb p
    | Improved ->
        let lev = Analysis.levels dag in
        let widths = Analysis.level_widths dag in
        Array.init nb (fun i -> max 1 ((p + widths.(lev.(i)) - 1) / widths.(lev.(i))))
  in
  let tasks = Dag.tasks dag in
  let w = weights dag ~allocs in
  (* Next-increment execution times, filled lazily and invalidated when a
     task's allocation grows: critical-path tasks are re-examined on many
     consecutive iterations, and their Amdahl evaluation is the scan's
     only non-trivial arithmetic.  (NaN = not cached; [exec_time_f] never
     returns NaN since [seq > 0].) *)
  let nxt_cache = Array.make nb Float.nan in
  let next_exec i =
    let v = nxt_cache.(i) in
    if Float.is_nan v then begin
      let v = Task.exec_time_f tasks.(i) (allocs.(i) + 1) in
      nxt_cache.(i) <- v;
      v
    end
    else v
  in
  (* Running total work, updated incrementally. *)
  let total_work = ref 0. in
  Array.iteri (fun i wi -> total_work := !total_work +. (float_of_int allocs.(i) *. wi)) w;
  (* Bottom/top levels, maintained incrementally across iterations: one
     increment changes a single weight, so only the ancestors (for [bl]) /
     the successors' cone (for [tl]) can move.  Each node is recomputed
     with the same per-node expression as the full Analysis passes — and
     [Float.max] / a single [+.] are exact, so propagation can stop the
     moment a recomputed value is bitwise unchanged: the result is
     identical to recomputing both arrays from scratch every iteration
     (pinned by the qcheck property in test_cpa.ml). *)
  let bl = Analysis.bottom_levels dag ~weights:w in
  let tl = Analysis.top_levels dag ~weights:w in
  let topo = Dag.topological_order dag in
  (* [w.(i)] just changed: recompute [bl] / [tl] with one in-place sweep
     each over the precomputed topological order.  Every node gets the same
     per-node expression as the full Analysis passes, so the arrays equal
     a from-scratch recomputation bitwise (pinned by the qcheck property
     in test_cpa.ml); at CPA's DAG sizes the plain sweeps beat any
     change-propagation bookkeeping.  *)
  let refresh _i =
    (* Accumulate maxima directly in the float arrays: a [fold_left] with a
       float accumulator boxes every step, and these two sweeps run once
       per increment.  [v > acc] keeps the first of equal values, like
       [Float.max acc v] with the operand order above — same bits (no NaN,
       no negative zero in level arithmetic). *)
    for k = nb - 1 downto 0 do
      let j = topo.(k) in
      let ss = Dag.succs dag j in
      bl.(j) <- 0.;
      for q = 0 to Array.length ss - 1 do
        let v = bl.(ss.(q)) in
        if v > bl.(j) then bl.(j) <- v
      done;
      bl.(j) <- bl.(j) +. w.(j)
    done;
    for k = 0 to nb - 1 do
      let j = topo.(k) in
      let ps = Dag.preds dag j in
      tl.(j) <- 0.;
      for q = 0 to Array.length ps - 1 do
        let v = tl.(ps.(q)) +. w.(ps.(q)) in
        if v > tl.(j) then tl.(j) <- v
      done
    done
  in
  let rec loop () =
    let t_cp = bl.(Dag.entry dag) in
    let t_a = !total_work /. float_of_int p in
    if t_cp <= t_a then ()
    else begin
      (* Pick the critical-path task with the best relative gain from one
         more processor, among tasks below their cap. *)
      let eps = 1e-9 *. Float.max 1. t_cp in
      let best = ref None in
      for i = 0 to nb - 1 do
        if Float.abs (tl.(i) +. bl.(i) -. t_cp) <= eps && allocs.(i) < caps.(i) then begin
          let cur = w.(i) in
          let nxt = next_exec i in
          let gain = (cur -. nxt) /. cur in
          let good =
            match criterion with Classic -> gain > 0. | Improved -> gain > min_gain
          in
          if good then begin
            match !best with
            | Some (_, g) when g >= gain -> ()
            | _ -> best := Some (i, gain)
          end
        end
      done;
      match !best with
      | None -> () (* no critical-path task can usefully grow: stop *)
      | Some (i, _) ->
          Mp_obs.Counter.incr c_iterations;
          total_work := !total_work -. (float_of_int allocs.(i) *. w.(i));
          allocs.(i) <- allocs.(i) + 1;
          (* the cached next-increment time is exactly the new weight *)
          w.(i) <- nxt_cache.(i);
          nxt_cache.(i) <- Float.nan;
          total_work := !total_work +. (float_of_int allocs.(i) *. w.(i));
          refresh i;
          loop ()
    end
  in
  loop ();
  Mp_obs.Timer.stop t_allocate obs_t0;
  if !Mp_forensics.Journal.enabled then begin
    (* Each iteration grows exactly one allocation by 1 from the all-ones
       start, so the iteration count is recoverable from the total. *)
    let total_alloc = Array.fold_left ( + ) 0 allocs in
    Mp_forensics.Journal.cpa_alloc ~p ~iterations:(total_alloc - nb) ~n_tasks:nb ~total_alloc
  end;
  allocs
