(** RESSCHED without calendar visibility — the practical variant the paper
    sketches in Sections 3.2.2 and 7: the application scheduler cannot
    read the reservation schedule and must find each task's reservation
    through a bounded number of trial-and-error requests against a
    {!Mp_service.Probe.t} (the single-site facade over the scheduling
    service's {!Mp_service.Engine}).

    The algorithm mirrors [Ressched.schedule] (BL_CPAR order, BD_CPAR-like
    allocation bounds computed from a {e guess} [q] of the average
    availability, earliest-completion placement) but, instead of scanning
    the calendar, it spends a per-task probe budget:

    + for each candidate processor count (distinct-duration counts under
      the task's bound, largest first), request the task at its ready
      time; on rejection, follow the system's suggested start;
    + keep the best ⟨processors, start⟩ seen; stop early when the budget
      is exhausted, committing to the best granted option.

    With an unbounded budget this finds the same earliest-completion
    placements as the omniscient scheduler; small budgets trade schedule
    quality for fewer scheduler interactions (quantified by the
    [blind-probes] ablation in the benchmark harness). *)

val schedule :
  ?budget:int ->
  ?bl:Bottom_level.method_ ->
  q:int ->
  probe:Mp_service.Probe.t ->
  Mp_dag.Dag.t ->
  Mp_cpa.Schedule.t
(** [schedule ~q ~probe dag] schedules every task through the probe
    interface.  [budget] (default 16) bounds the number of requests per
    task; at least one placement always succeeds (the suggestion chain for
    1 processor terminates at a feasible slot).  [q] is the scheduler's
    own estimate of average availability, used to compute CPA bounds and
    weights; the cluster size is taken from the probe.  The returned
    schedule's reservations have already been granted (they are in
    [Probe.granted]). *)
