module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Probe = Mp_service.Probe
module Response = Mp_service.Response
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Schedule = Mp_cpa.Schedule
module Allocation = Mp_cpa.Allocation
module Mapping = Mp_cpa.Mapping

(* Survey one candidate processor count: request at [ready]; on rejection,
   follow the suggestion once.  Returns the granted reservation (so the
   caller can keep it or cancel it) and the number of requests spent. *)
let survey probe task ~ready np =
  let dur = Task.exec_time task np in
  match Probe.request probe ~start:ready ~dur ~procs:np with
  | Response.Granted -> (Some (Reservation.make ~start:ready ~finish:(ready + dur) ~procs:np), 1)
  | Response.Rejected None -> (None, 1)
  | Response.Rejected (Some s) -> (
      match Probe.request probe ~start:s ~dur ~procs:np with
      | Response.Granted -> (Some (Reservation.make ~start:s ~finish:(s + dur) ~procs:np), 2)
      | _ ->
          (* cannot happen in a static system: the suggestion was just
             computed as feasible; kept total for robustness *)
          (None, 2))
  | _ -> (* [request] only answers Granted/Rejected *) (None, 1)

let place probe task ~ready ~(cands : Task.candidates) ~budget =
  (* Candidates largest-first: bigger allocations have shorter durations
     and usually earlier completions, so they are worth surveying first
     when the budget is tight. *)
  let candidates = List.rev (Array.to_list cands.Task.nps) in
  let better (r : Reservation.t) = function
    | None -> true
    | Some (b : Reservation.t) ->
        r.finish < b.finish || (r.finish = b.finish && (r.procs < b.procs || (r.procs = b.procs && r.start < b.start)))
  in
  (* Each trial grant is cancelled right away so that later candidates are
     evaluated against the same (unperturbed) system state; the winner is
     re-requested at the end. *)
  let rec go best spent = function
    | [] -> best
    | _ when spent >= budget && best <> None -> best
    | np :: rest -> (
        (* Duration-based early cut (needs no calendar knowledge): any
           remaining candidate has a longer duration, so its completion is
           at least ready + dur — once that exceeds the best completion
           found, stop surveying.  This is the same cut the omniscient
           scheduler uses, so a sufficient budget recovers its schedule
           exactly. *)
        let dur = Task.exec_time task np in
        match best with
        | Some (b : Reservation.t) when ready + dur > b.finish -> best
        | _ ->
            let r, cost = survey probe task ~ready np in
            let best =
              match r with
              | None -> best
              | Some r ->
                  Probe.cancel probe r;
                  if better r best then Some r else best
            in
            go best (spent + cost) rest)
  in
  match go None 0 candidates with
  | Some r -> (
      match Probe.request probe ~start:r.Reservation.start ~dur:(Reservation.duration r) ~procs:r.Reservation.procs with
      | Response.Granted -> r
      | _ -> assert false (* static system: the trial was grantable *))
  | None ->
      (* No candidate was placeable within the budget's surveys — chase the
         1-processor suggestion chain until granted (always terminates:
         the final segment of any calendar has free processors). *)
      let dur = Task.exec_time task 1 in
      let rec chase start =
        match Probe.request probe ~start ~dur ~procs:1 with
        | Response.Granted -> Reservation.make ~start ~finish:(start + dur) ~procs:1
        | Response.Rejected (Some s) -> chase s
        | _ -> invalid_arg "Blind.schedule: cluster has no processors"
      in
      chase ready

let schedule ?(budget = 16) ?(bl = Bottom_level.BL_CPAR) ~q ~probe dag =
  if budget < 1 then invalid_arg "Blind.schedule: budget < 1";
  let p = Calendar.procs (Probe.reveal probe) in
  let q = max 1 (min p q) in
  (* Bounds and ordering weights come from the scheduler's own q estimate:
     no calendar knowledge involved. *)
  let bounds = Allocation.allocate ~p:q dag in
  let weights =
    match bl with
    | Bottom_level.BL_1 -> Array.map (fun tk -> Task.exec_time_f tk 1) (Dag.tasks dag)
    | Bottom_level.BL_ALL -> Array.map (fun tk -> Task.exec_time_f tk p) (Dag.tasks dag)
    | Bottom_level.BL_CPA -> Allocation.weights dag ~allocs:(Allocation.allocate ~p dag)
    | Bottom_level.BL_CPAR -> Allocation.weights dag ~allocs:bounds
  in
  let order = Mapping.bl_order dag ~weights in
  let cands =
    Array.init (Dag.n dag) (fun i ->
        Task.candidates (Dag.task dag i) ~max_np:(max 1 bounds.(i)))
  in
  let slots = Array.make (Dag.n dag) ({ start = 0; finish = 0; procs = 0 } : Schedule.slot) in
  Array.iter
    (fun i ->
      let ready =
        Array.fold_left (fun acc j -> max acc slots.(j).Schedule.finish) 0 (Dag.preds dag i)
      in
      let r = place probe (Dag.task dag i) ~ready ~cands:cands.(i) ~budget in
      slots.(i) <- { start = r.Reservation.start; finish = r.Reservation.finish; procs = r.Reservation.procs })
    order;
  { Schedule.slots }
