(** RESSCHED on a heterogeneous multi-cluster platform — the paper's third
    future-work direction (Section 7), built by combining its
    reservation-aware scheduling with the HCPA idea of N'Takpé, Suter &
    Casanova (ISPDC'07): compute CPA allocations on a {e reference
    cluster} aggregating the grid's speed-weighted capacity, then
    translate each task's reference allocation to the candidate site's
    speed when placing it.

    Placement mirrors the homogeneous BD_* family: tasks in decreasing
    bottom-level order; for each task, every site and every
    distinct-duration processor count up to the site's (translated) bound
    is considered, and the ⟨site, processors, start⟩ triple with the
    earliest completion wins (ties: fewer processors, then lower site
    index).  Inter-site data transfers are, like all communication in the
    paper, considered absorbed in the tasks' sequential fractions.

    As in the homogeneous case, bounding allocations by CPA values
    ([HBD_CPAR], computed against historically {e available} speed-weighted
    capacity) preserves task parallelism and dominates unbounded
    allocation ([HBD_ALL]); the [hetero] ablation in the benchmark harness
    quantifies it. *)

type slot = { site : int; start : int; finish : int; procs : int }

type t = { slots : slot array }

val turnaround : t -> int
val cpu_hours : t -> float
(** Σ processors × duration, in hours (site-local processor-hours). *)

type bound_method = HBD_ALL | HBD_CPAR

val bound_name : bound_method -> string

val schedule : ?bd:bound_method -> ?window:int -> Mp_platform.Grid.t -> Mp_dag.Dag.t -> t
(** [schedule grid dag] computes the multi-site schedule.  Default
    [bd = HBD_CPAR]; [window] (default 7 days) is the horizon over which
    each site's average availability is estimated for the CPAR reference
    capacity. *)

val deadline :
  ?bd:bound_method -> ?window:int -> Mp_platform.Grid.t -> Mp_dag.Dag.t -> deadline:int -> t option
(** Multi-site RESSCHEDDL, aggressive flavour: tasks are placed backward
    from the deadline in increasing bottom-level order; each task takes
    the ⟨site, processors, start⟩ triple with the {e latest} start that
    still finishes before its successors start (ties: fewer processors,
    lower site index).  [None] when some task cannot be placed at or
    after time 0. *)

val deadline_prepared :
  ?bd:bound_method ->
  ?window:int ->
  Mp_platform.Grid.t ->
  Mp_dag.Dag.t ->
  deadline:int ->
  t option
(** Partial application at [Grid.t -> Dag.t] precomputes the
    deadline-independent data (reference allocations, bottom-level order,
    per-⟨site, task⟩ candidate counts and site-scaled durations); deadline
    sweeps — {!tightest}'s bracket + binary search — reuse the closure
    instead of rebuilding it per probe. *)

val tightest : ?bd:bound_method -> Mp_platform.Grid.t -> Mp_dag.Dag.t -> (int * t) option
(** Binary search for the smallest feasible deadline of {!deadline}
    (60 s resolution), as in the paper's Section 5.3 evaluation. *)

val validate : Mp_platform.Grid.t -> Mp_dag.Dag.t -> t -> (unit, string) result
(** Feasibility: per-site capacity, precedence across sites, durations
    covering the tasks' (speed-scaled) execution times, starts at or
    after 0. *)

val pp : Format.formatter -> t -> unit
