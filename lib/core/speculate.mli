(** Intra-schedule speculation: lending idle {!Mp_prelude.Pool} workers
    to {e one} schedule computation, bit-identically.

    A [Speculate.t] bundles a pool with a lookahead depth and a busy
    flag.  Schedulers that receive one may fan independent pure probes
    (deadline-search waves, λ-sweep waves) over the pool's workers and
    evaluate upcoming placements against a persistent calendar snapshot
    — but every speculative strategy in this library is
    {e output-preserving by construction}: the schedule, the chosen
    deadline/λ and every deterministic counter outside the [spec.*]
    family are identical to the sequential run (see "Intra-schedule
    speculation" in DESIGN.md for the argument, and the qcheck pins in
    [test_core.ml]).

    Speculation {e stands down} — {!acquire} returns [None] and the
    caller runs its plain sequential path — whenever:

    - the decision journal is on ({!Mp_forensics.Journal.enabled}): the
      journal is a process-global, order-sensitive instrument, same
      precedent as the journal-on unbounded-fit fallback;
    - the pool is sequential ([jobs = 1]): nothing to lend;
    - another search already holds the pool (the busy flag): a
      {!Mp_prelude.Pool} batch is not re-entrant, so the {e outermost}
      search speculates and nested searches inside its probes run
      sequentially — deterministically, since the outer search holds the
      flag for its whole duration. *)

type t

val create : ?lookahead:int -> Mp_prelude.Pool.t -> t
(** Bundle a pool for lending.  [lookahead] (default 4) bounds how many
    upcoming placements a scheduler may evaluate against one calendar
    snapshot.  Raises [Invalid_argument] if [lookahead < 1].  The caller
    keeps ownership of the pool (and shuts it down); the same [t] may be
    offered to many schedule computations, but the busy flag admits one
    speculating search at a time. *)

val lookahead : t -> int
val pool : t -> Mp_prelude.Pool.t

val wave_width : int
(** Probes per search wave (λ sweep, doubling bracket).  A constant —
    never the pool's worker count — so the probe set a speculative
    search evaluates is identical for any jobs value. *)

val acquire : t option -> t option
(** [acquire spec] is [Some t] when speculation may proceed (and the
    caller now holds the busy flag — it must {!release}), [None] when
    the caller should run its sequential path.  [acquire None] is
    [None]. *)

val release : t -> unit

val lend : t option -> speculative:(t -> 'a) -> sequential:(unit -> 'a) -> 'a
(** [lend spec ~speculative ~sequential]: {!acquire}, run the matching
    path, {!release} on every exit. *)

val map_array : t -> (unit -> 'a) array -> 'a array
(** Evaluate all thunks on the pool ({!Mp_prelude.Pool.map_array});
    caller must hold the acquisition. *)

val first_some : t -> (unit -> 'a option) array -> (int * 'a) option
(** {!Mp_prelude.Pool.first_some} on the pool, with the wave recorded in
    the [spec.waves] / [spec.wave.probes] / [spec.wave.wasted] counters;
    caller must hold the acquisition. *)

(** {2 Probe accounting}

    Record-only counters ([spec.*] family, excluded from gated bench
    deltas): speculative placement outcomes and wave traffic. *)

val wave_probes : int -> unit
(** Record a wave of [n] probes ([spec.waves] + [spec.wave.probes]). *)

val wave_wasted : int -> unit
(** Record [n] evaluated-but-unconsumed wave probes. *)

val hit : unit -> unit
(** A speculative placement validated against the live calendar. *)

val miss : wasted_ns:int -> unit
(** A speculative placement invalidated; [wasted_ns] is the wall time
    the discarded scan took (0 when the probes are off). *)
