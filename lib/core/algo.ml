type ressched = {
  name : string;
  run : ?spec:Speculate.t -> Env.t -> Mp_dag.Dag.t -> Mp_cpa.Schedule.t;
}

type deadline = {
  name : string;
  run : ?spec:Speculate.t -> Env.t -> Mp_dag.Dag.t -> deadline:int -> Mp_cpa.Schedule.t option;
  prepare : ?spec:Speculate.t -> Env.t -> Mp_dag.Dag.t -> deadline:int -> Mp_cpa.Schedule.t option;
}

let ressched_of ~bl ~bd : ressched =
  {
    name = Ressched.name ~bl ~bd;
    run = (fun ?spec env dag -> Ressched.schedule ~bl ~bd ?spec env dag);
  }

let ressched_main : ressched list =
  List.map
    (fun bd : ressched ->
      {
        name = Bound.name bd;
        run = (fun ?spec env dag -> Ressched.schedule ~bl:BL_CPAR ~bd ?spec env dag);
      })
    Bound.all

let ressched_all =
  List.concat_map (fun bl -> List.map (fun bd -> ressched_of ~bl ~bd) Bound.all) Bottom_level.all

let ressched_find name =
  let lname = String.lowercase_ascii name in
  List.find_opt
    (fun (a : ressched) -> String.lowercase_ascii a.name = lname)
    (ressched_all @ ressched_main)

let agg a =
  {
    name = Deadline.aggressive_name a;
    run = (fun ?spec env dag ~deadline -> Deadline.aggressive ?spec a env dag ~deadline);
    prepare = (fun ?spec env dag -> Deadline.aggressive_prepared ?spec a env dag);
  }

let rc c =
  {
    name = Deadline.conservative_name c;
    run = (fun ?spec env dag ~deadline -> Deadline.resource_conservative ?spec c env dag ~deadline);
    prepare =
      (fun ?spec env dag ->
        let prepared = Deadline.conservative_prepared ?spec c env dag in
        fun ~deadline -> prepared ~lambda:0. ~deadline);
  }

let hybrid_prepare ~bounded_fallback ?spec env dag =
  let prepared = Deadline.hybrid_prepared ~bounded_fallback ?spec env dag in
  fun ~deadline -> Option.map fst (prepared ~deadline)

let rc_lambda =
  {
    name = "DL_RC_CPAR-l";
    run =
      (fun ?spec env dag ~deadline ->
        Option.map fst (Deadline.hybrid ~bounded_fallback:false ?spec env dag ~deadline));
    prepare = (fun ?spec env dag -> hybrid_prepare ~bounded_fallback:false ?spec env dag);
  }

let rcbd_lambda =
  {
    name = "DL_RCBD_CPAR-l";
    run =
      (fun ?spec env dag ~deadline ->
        Option.map fst (Deadline.hybrid ~bounded_fallback:true ?spec env dag ~deadline));
    prepare = (fun ?spec env dag -> hybrid_prepare ~bounded_fallback:true ?spec env dag);
  }

let deadline_main =
  [ agg DL_BD_ALL; agg DL_BD_CPA; agg DL_BD_CPAR; rc DL_RC_CPA; rc DL_RC_CPAR ]

let deadline_hybrid = [ agg DL_BD_CPA; rc DL_RC_CPAR; rc_lambda; rcbd_lambda ]

let deadline_all = deadline_main @ [ rc_lambda; rcbd_lambda ]

let deadline_find name =
  let lname = String.lowercase_ascii name in
  List.find_opt (fun a -> String.lowercase_ascii a.name = lname) deadline_all

let find name =
  match ressched_find name with
  | Some a -> Some (`Ressched a)
  | None -> (
      match deadline_find name with Some a -> Some (`Deadline a) | None -> None)

let all_names =
  let seen = Hashtbl.create 32 in
  List.filter
    (fun name ->
      if Hashtbl.mem seen name then false
      else begin
        Hashtbl.add seen name ();
        true
      end)
    (List.map (fun (a : ressched) -> a.name) (ressched_main @ ressched_all)
    @ List.map (fun (a : deadline) -> a.name) deadline_all)
