(** The scheduling service's DAG entry points — the {!Mp_service.Engine}
    handlers that know the algorithm registry.

    [Mp_service] sits below this library, so its engine cannot name
    [Ressched] or [Deadline]; it takes an {!Mp_service.Engine.handlers}
    record instead.  This module builds that record from {!Algo}'s
    registry and the forensics renderer, making the service able to
    answer {!Mp_service.Request.Submit_dag} and
    {!Mp_service.Request.Explain}.  Every consumer — [mpres serve],
    the one-shot [mpres schedule|deadline|explain] paths, tests and
    benches — goes through these same entry points.

    {2 Semantics}

    {!submit} mirrors the CLI's routing exactly: a RESSCHED algorithm
    schedules for minimal turn-around and refuses a deadline ([By]/
    [Tightest] answer [Error], as [mpres schedule] refuses [--deadline]);
    a RESSCHEDDL algorithm honors [By k] ([Scheduled]/[Infeasible]) and
    maps both [Tightest] and [No_deadline] to the tightest-deadline
    search, exactly as [mpres deadline] without [--deadline].

    {2 Concurrency}

    Whole-DAG work (submit and explain) serializes on one process-wide
    lock: the decision journal that {!explain} records through is a
    process-global instrument, so two concurrent journaled runs would
    interleave their stories.  The reservation-protocol hot path
    ([Reserve]/[Probe]/[Cancel]) never takes this lock; {!explain} drops
    foreign [Grant] entries from its journal snapshot, so reports stay
    deterministic even while other sites grant reservations
    concurrently. *)

val handlers : ?spec:Speculate.t -> unit -> Mp_service.Engine.handlers
(** The registry-backed handlers: plug into
    {!Mp_service.Engine.create}.  [?spec] lends a pool to each request's
    single schedule computation (see {!Speculate}); it must be a pool
    {e distinct} from the one fanning the engine's per-site streams (a
    pool batch is not re-entrant).  Whole-DAG work serializes on the
    process-wide lock, so at most one request speculates at a time, and
    speculation is output-preserving: responses are bit-identical with
    or without it. *)

val engine :
  ?spec:Speculate.t -> sites:Mp_service.Engine.site_spec array -> unit -> Mp_service.Engine.t
(** [engine ~sites ()] is {!Mp_service.Engine.create} with {!handlers}
    attached — the full service, able to answer every request kind. *)

val submit :
  ?spec:Speculate.t ->
  algo:string ->
  deadline:Mp_service.Request.deadline_spec ->
  q:int ->
  Mp_platform.Calendar.t ->
  Mp_dag.Dag.t ->
  Mp_service.Response.t
(** Answer one [Submit_dag] against the given calendar (see semantics
    above).  Answers [Scheduled], [Infeasible], or [Error]; the caller
    (normally the engine) commits the scheduled reservations. *)

val explain :
  ?spec:Speculate.t ->
  algo:string ->
  deadline:int option ->
  format:string ->
  q:int ->
  Mp_platform.Calendar.t ->
  Mp_dag.Dag.t ->
  Mp_service.Response.t
(** Answer one [Explain]: run the algorithm with the decision journal on
    and render the forensics report — decision story plus calendar
    analytics ([format = "text"]), JSONL journal plus analytics object
    (["json"]), Gantt SVG (["svg"]), or the self-contained HTML report
    (["html"]).  For RESSCHEDDL algorithms, [deadline = None] resolves
    the tightest feasible deadline first (only the final run is
    journaled, keeping the story readable).  Answers [Explained], or
    [Error] on an unknown algorithm/format or an unmeetable deadline.
    The journal is record-only, so the underlying schedule is
    bit-identical to what {!submit} produces
    (pinned by [test_forensics.ml]). *)
