(** Deadline scheduling under advance reservations — problem RESSCHEDDL
    (Section 5).

    All algorithms schedule tasks {e backward}: in increasing bottom-level
    order (BL_CPAR weights), each task must finish by the minimum start
    time of its already-placed successors (or by the application deadline
    [K] for the exit task), and is placed as a reservation no earlier than
    "now" (time 0).  An algorithm fails — returns [None] — when some task
    cannot be placed in its window.

    {2 Aggressive algorithms} (Section 5.2.1)

    Pick the ⟨processors, start⟩ pair with the {e latest} start time,
    processors bounded per {!Bound.method_}-like rules: [DL_BD_ALL] (bound
    [p]), [DL_BD_CPA] (CPA allocations for [p]), [DL_BD_CPAR] (CPA
    allocations for [q]).  Aggressive: they spend processors freely no
    matter how loose the deadline.

    {2 Resource-conservative algorithms} (Section 5.2.2)

    Before placing task [t_i], a CPA reference schedule of all
    not-yet-placed tasks is computed (allocation and mapping on [q']
    processors, [q' = p] for [DL_RC_CPA], [q' = q] for [DL_RC_CPAR]),
    yielding a reference start [S_i].  The task takes the {e fewest}
    processors whose earliest feasible start is at least the threshold
    [S_i + λ·(dl_i − S_i)] (and still finishes by [dl_i]); [λ = 0] is the
    pure resource-conservative behaviour, [λ = 1] effectively the
    aggressive one.  When no pair clears the threshold the algorithm falls
    back to aggressive placement — unbounded, or CPA(q)-bounded for the
    RCBD variant.

    {2 Hybrid} (Section 5.4)

    [DL_RC_CPAR-λ]: sweep λ from 0 to 1 in steps of 0.05 and keep the
    first (most resource-conservative) λ that meets the deadline.
    [DL_RCBD_CPAR-λ]: same with the CPA-bounded fallback.

    {2 Speculation}

    Every entry point below takes [?spec] (a {!Speculate.t}): when
    given, idle pool workers are lent to the computation — λ-sweep and
    deadline-search probes fan in waves, backward placement evaluates
    lookahead windows against calendar snapshots — with the returned
    schedule, deadline and λ {e identical} to the sequential run (see
    "Intra-schedule speculation" in DESIGN.md).  Pass the {e same}
    [spec] (or none) to a [*_prepared] constructor and to every search
    driving its closure: preparation under [?spec] eagerly warms the
    closure's memo tables so the probes a search fans across domains
    share only read-only state. *)

type aggressive = DL_BD_ALL | DL_BD_CPA | DL_BD_CPAR
type conservative = DL_RC_CPA | DL_RC_CPAR

val aggressive_name : aggressive -> string
val conservative_name : conservative -> string

val aggressive :
  ?spec:Speculate.t ->
  aggressive ->
  Env.t ->
  Mp_dag.Dag.t ->
  deadline:int ->
  Mp_cpa.Schedule.t option

val aggressive_prepared :
  ?spec:Speculate.t ->
  aggressive ->
  Env.t ->
  Mp_dag.Dag.t ->
  deadline:int ->
  Mp_cpa.Schedule.t option
(** Partial application at [Env.t -> Dag.t] precomputes the
    allocation-dependent data (bottom-level order, CPA bounds, the
    per-task {!Mp_dag.Task.candidates} tables and — for the conservative
    variants — the memoized prefix reference schedules of
    {!Mp_cpa.Mapping.prefix_references}), none of which depends on the
    deadline; deadline sweeps — binary searches, λ sweeps — should reuse
    the resulting closure.  Without [?spec] the prepared closures carry
    lazily-filled mutable memo state: share one closure within a worker,
    not across concurrently-running domains.  With [?spec] the memos are
    forced at preparation, so a search given the same [spec] may fan the
    closure's probes across the pool. *)

val conservative_prepared :
  ?bounded_fallback:bool ->
  ?spec:Speculate.t ->
  conservative ->
  Env.t ->
  Mp_dag.Dag.t ->
  lambda:float ->
  deadline:int ->
  Mp_cpa.Schedule.t option
(** Prepared variant of {!resource_conservative} (same precomputation
    note as {!aggressive_prepared}; [lambda] stays a per-call argument so
    the hybrid's sweep shares one preparation). *)

val hybrid_prepared :
  ?bounded_fallback:bool ->
  ?step:float ->
  ?spec:Speculate.t ->
  Env.t ->
  Mp_dag.Dag.t ->
  deadline:int ->
  (Mp_cpa.Schedule.t * float) option
(** Prepared variant of {!hybrid}.  The λ grid is [λ_k = min 1 (k·step)]
    for [k = 0, 1, …] up to the first [k] with [k·step >= 1] — an
    integer-indexed grid with no accumulated float rounding. *)

val resource_conservative :
  ?lambda:float ->
  ?bounded_fallback:bool ->
  ?spec:Speculate.t ->
  conservative ->
  Env.t ->
  Mp_dag.Dag.t ->
  deadline:int ->
  Mp_cpa.Schedule.t option
(** Defaults: [lambda = 0.], [bounded_fallback = false]. *)

val hybrid :
  ?bounded_fallback:bool ->
  ?step:float ->
  ?spec:Speculate.t ->
  Env.t ->
  Mp_dag.Dag.t ->
  deadline:int ->
  (Mp_cpa.Schedule.t * float) option
(** λ-sweep over [DL_RC_CPAR]; returns the schedule and the λ used.
    Defaults: [bounded_fallback = false] (the DL_RC_CPAR-λ of the paper;
    pass [true] for DL_RCBD_CPAR-λ), [step = 0.05]. *)

val lower_bound : Env.t -> Mp_dag.Dag.t -> int
(** A deadline no algorithm can beat: the critical-path length with every
    task on all [p] processors, ignoring reservations. *)

val tightest :
  ?resolution:int ->
  ?spec:Speculate.t ->
  (deadline:int -> Mp_cpa.Schedule.t option) ->
  Env.t ->
  Mp_dag.Dag.t ->
  (int * Mp_cpa.Schedule.t) option
(** [tightest algo env dag] binary-searches the smallest deadline the
    algorithm can meet, to [resolution] seconds (default 60), as in the
    paper's evaluation (Section 5.3).  The upper bracket is found by
    doubling from {!lower_bound}; [None] if the algorithm fails even on a
    deadline ~10{^6} times the lower bound.  With [?spec], the doubling
    bracket fans in waves and each bisection wave evaluates the current
    midpoint together with both possible next midpoints — same probed
    deadlines on the consumed path, same result; [algo] must then be a
    closure prepared under the same [spec] (its memos are warm and its
    own speculation stands down while the search holds the pool). *)
