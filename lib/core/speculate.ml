module Pool = Mp_prelude.Pool
module Journal = Mp_forensics.Journal

(* Speculative work is timing-free in *outcome* (which placements hit or
   miss is a pure function of the schedule state) but not in *cost*, and
   the whole spec.* family is excluded from the gated bench counter
   deltas alongside pool.* — see "Intra-schedule speculation" in
   DESIGN.md. *)
let c_hits = Mp_obs.Counter.make "spec.hits"
let c_misses = Mp_obs.Counter.make "spec.misses"
let c_wasted_ns = Mp_obs.Counter.make "spec.wasted_ns"
let c_waves = Mp_obs.Counter.make "spec.waves"
let c_wave_probes = Mp_obs.Counter.make "spec.wave.probes"
let c_wave_wasted = Mp_obs.Counter.make "spec.wave.wasted"

type t = { pool : Pool.t; lookahead : int; busy : bool Atomic.t }

(* Wave width for the search fan-outs (λ sweep, doubling bracket).  A
   constant — never derived from the pool's worker count — so the set of
   probes a speculative search evaluates, and with it every deterministic
   counter it bumps, is identical for any jobs value. *)
let wave_width = 4

let create ?(lookahead = 4) pool =
  if lookahead < 1 then invalid_arg "Speculate.create: lookahead < 1";
  { pool; lookahead; busy = Atomic.make false }

let lookahead t = t.lookahead
let pool t = t.pool

let acquire = function
  | None -> None
  | Some t ->
      (* Stand down whenever speculating could change observable output
         (the journal records every candidate scan, and speculative scans
         run different queries on other domains) or could not help
         (sequential pool).  The busy flag makes the pool's
         non-reentrancy a graceful degradation instead of an error: an
         inner search attempted while an outer one holds the pool simply
         runs sequentially — deterministically so, because the outer
         search holds the flag for its whole duration. *)
      if Pool.jobs t.pool < 2 || !Journal.enabled then None
      else if Atomic.compare_and_set t.busy false true then Some t
      else None

let release t = Atomic.set t.busy false

let lend spec ~speculative ~sequential =
  match acquire spec with
  | None -> sequential ()
  | Some t -> Fun.protect ~finally:(fun () -> release t) (fun () -> speculative t)

let map_array t thunks = Pool.map_array t.pool (fun thunk -> thunk ()) thunks

let first_some t thunks =
  Mp_obs.Counter.incr c_waves;
  Mp_obs.Counter.add c_wave_probes (Array.length thunks);
  let r = Pool.first_some t.pool thunks in
  (match r with
  | Some (i, _) -> Mp_obs.Counter.add c_wave_wasted (Array.length thunks - i - 1)
  | None -> ());
  r

let wave_probes n =
  Mp_obs.Counter.incr c_waves;
  Mp_obs.Counter.add c_wave_probes n

let wave_wasted n = Mp_obs.Counter.add c_wave_wasted n
let hit () = Mp_obs.Counter.incr c_hits

let miss ~wasted_ns =
  Mp_obs.Counter.incr c_misses;
  Mp_obs.Counter.add c_wasted_ns wasted_ns
