(** RESSCHED while the reservation schedule changes under the scheduler's
    feet — removing the paper's first simplifying assumption (Sections
    3.2.2 and 7: "the reservation schedule does not change while the
    application is being scheduled").

    Application tasks are placed one at a time (BL order, earliest
    completion, exactly as {!Ressched}); between two placements, competing
    users may submit their own requests — the competitor stream is a
    {!Mp_service.Request.t} stream, the same protocol [mpres serve]
    consumes.  A competitor's {!Mp_service.Request.Reserve} is granted
    when it still fits the current calendar — which includes our
    already-placed tasks, so placements we hold are never taken away — and
    lost otherwise.  Later application tasks must then work around every
    granted competitor reservation.  Non-[Reserve] competitor requests are
    inert here: queries never perturb the calendar, and competitor
    cancellations or DAG submissions are not modelled.

    The [online] ablation in the benchmark harness measures how much
    turn-around time degrades as the mid-scheduling arrival load grows. *)

val schedule :
  ?bl:Bottom_level.method_ ->
  ?bd:Bound.method_ ->
  Env.t ->
  events:Mp_service.Request.t list array ->
  Mp_dag.Dag.t ->
  Mp_cpa.Schedule.t * Mp_platform.Reservation.t list
(** [schedule env ~events dag] places the DAG's tasks in bottom-level
    order; before the [k]-th placement, every request in [events.(k)] (if
    [k] is within bounds) is offered to the calendar in list order.
    Returns the application schedule and the competitor reservations that
    were granted.  Defaults: [bl = BL_CPAR], [bd = BD_CPAR].

    The returned schedule is feasible against the base calendar plus the
    granted competitor reservations (in that arrival order). *)
