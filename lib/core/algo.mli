(** Registry of the paper's named algorithms, for CLIs, experiments, and
    benchmarks. *)

type ressched = {
  name : string;
  run : ?spec:Speculate.t -> Env.t -> Mp_dag.Dag.t -> Mp_cpa.Schedule.t;
      (** [?spec] lends pool workers to this one schedule computation,
          output unchanged (see {!Speculate}) *)
}

type deadline = {
  name : string;
  run : ?spec:Speculate.t -> Env.t -> Mp_dag.Dag.t -> deadline:int -> Mp_cpa.Schedule.t option;
  prepare : ?spec:Speculate.t -> Env.t -> Mp_dag.Dag.t -> deadline:int -> Mp_cpa.Schedule.t option;
      (** partial application at [Env.t -> Dag.t] precomputes the
          deadline-independent data; use for deadline sweeps (see
          {!Deadline.aggressive_prepared}).  Drive a closure prepared
          under [?spec] only with searches given the same [spec]
          ({!Deadline.tightest}'s [?spec]). *)
}

val ressched_main : ressched list
(** The four Table 4/5 rows: BD_ALL, BD_HALF, BD_CPA, BD_CPAR, all with
    BL_CPAR bottom levels. *)

val ressched_all : ressched list
(** All 16 BL_x_BD_y combinations. *)

val ressched_find : string -> ressched option

val deadline_main : deadline list
(** The five Table 6 rows: DL_BD_ALL, DL_BD_CPA, DL_BD_CPAR, DL_RC_CPA,
    DL_RC_CPAR. *)

val deadline_hybrid : deadline list
(** The four Table 7 rows: DL_BD_CPA, DL_RC_CPAR, DL_RC_CPAR-λ,
    DL_RCBD_CPAR-λ. *)

val deadline_all : deadline list
(** Union of the above (each algorithm once). *)

val deadline_find : string -> deadline option

val find : string -> [ `Ressched of ressched | `Deadline of deadline ] option
(** Case-insensitive lookup across {e both} registries — the single entry
    point CLIs should dispatch on, so no caller maintains its own
    name→algorithm table. *)

val all_names : string list
(** Every registered algorithm name, RESSCHED first then RESSCHEDDL, each
    once, in registry order — the listing to print in [--help] and
    unknown-name error messages. *)
