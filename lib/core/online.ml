module Dag = Mp_dag.Dag
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Schedule = Mp_cpa.Schedule

let sp_schedule = Mp_obs.Span.make "online.schedule"
let c_granted = Mp_obs.Counter.make "online.reservations_granted"

let schedule ?(bl = Bottom_level.BL_CPAR) ?(bd = Bound.BD_CPAR) (env : Env.t) ~events dag =
  Mp_obs.Span.wrap sp_schedule @@ fun () ->
  let order = Bottom_level.order bl env dag in
  let bounds = Bound.bounds bd env dag in
  let cands =
    Array.init (Dag.n dag) (fun i ->
        Mp_dag.Task.candidates (Dag.task dag i) ~max_np:(max 1 bounds.(i)))
  in
  let slots = Array.make (Dag.n dag) ({ start = 0; finish = 0; procs = 0 } : Schedule.slot) in
  (* Competitor grants and task placements interleave strictly forward, so
     the whole run fits one calendar transaction. *)
  let cal = Calendar.Txn.start env.calendar in
  let granted = ref [] in
  Array.iteri
    (fun k i ->
      if k < Array.length events then
        List.iter
          (fun (ev : Mp_service.Request.t) ->
            match ev with
            | Reserve { start; dur; procs } when dur >= 1 && procs >= 1 ->
                let r = Reservation.make ~start ~finish:(start + dur) ~procs in
                if Calendar.Txn.reserve_opt cal r then begin
                  Mp_obs.Counter.incr c_granted;
                  Mp_forensics.Journal.grant ~start:r.start ~finish:r.finish ~procs:r.procs
                    ~granted:true;
                  granted := r :: !granted
                end
                else
                  (* the competitor lost the race for that slot *)
                  Mp_forensics.Journal.grant ~start:r.start ~finish:r.finish ~procs:r.procs
                    ~granted:false
            | Reserve { start; dur; procs } ->
                (* nonsensical request: rejected, as Engine would *)
                Mp_forensics.Journal.grant ~start ~finish:(start + dur) ~procs ~granted:false
            | Probe _ | Cancel _ | Submit_dag _ | Explain _ | Stats _ ->
                (* queries don't perturb the calendar, and competitor
                   cancellations / DAG submissions are not modelled here *)
                ())
          events.(k);
      let ready =
        Array.fold_left (fun acc j -> max acc slots.(j).Schedule.finish) 0 (Dag.preds dag i)
      in
      let s, fin, np =
        Ressched.place_cands_txn ~kind:Mp_forensics.Journal.Online_forward cal (Dag.task dag i)
          ~ready ~cands:cands.(i)
      in
      Calendar.Txn.reserve cal (Reservation.make ~start:s ~finish:fin ~procs:np);
      slots.(i) <- { start = s; finish = fin; procs = np })
    order;
  ({ Schedule.slots }, List.rev !granted)
