module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Analysis = Mp_dag.Analysis
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Schedule = Mp_cpa.Schedule
module Allocation = Mp_cpa.Allocation
module Mapping = Mp_cpa.Mapping

type aggressive = DL_BD_ALL | DL_BD_CPA | DL_BD_CPAR
type conservative = DL_RC_CPA | DL_RC_CPAR

let aggressive_name = function
  | DL_BD_ALL -> "DL_BD_ALL"
  | DL_BD_CPA -> "DL_BD_CPA"
  | DL_BD_CPAR -> "DL_BD_CPAR"

let conservative_name = function DL_RC_CPA -> "DL_RC_CPA" | DL_RC_CPAR -> "DL_RC_CPAR"

let c_tasks_placed = Mp_obs.Counter.make "deadline.tasks_placed"
let c_probes = Mp_obs.Counter.make "deadline.tightest.probes"
let sp_place = Mp_obs.Span.make "deadline.place"
let sp_backward = Mp_obs.Span.make "deadline.backward"

(* Latest-start placement among the task's distinct-duration processor
   counts up to a per-task bound: the aggressive move, also used as
   fallback by the conservative algorithms. *)
let place_latest cal task ~dl ~bound =
  (* Candidates by descending processor count (ascending duration): once
     [dl - dur] falls below the best start found, no remaining (longer)
     candidate can start later, so the scan stops.  On loose deadlines the
     very first candidate ends the loop. *)
  let candidates = List.rev (Task.alloc_candidates task ~max_np:bound) in
  if !Mp_forensics.Journal.enabled then
    Mp_forensics.Journal.begin_placement Mp_forensics.Journal.Backward ~task:task.Task.id
      ~anchor:dl ~bound ~evaluated:(List.length candidates);
  let rec go best = function
    | [] -> best
    | np :: rest -> (
        let dur = Task.exec_time task np in
        match best with
        | Some (bs, _, _) when dl - dur < bs ->
            Mp_forensics.Journal.cand ~procs:np ~dur ~fit:None Mp_forensics.Journal.Early_cut;
            best
        | _ -> (
            match Calendar.latest_fit cal ~earliest:0 ~finish_by:dl ~procs:np ~dur with
            | None ->
                Mp_forensics.Journal.cand ~procs:np ~dur ~fit:None Mp_forensics.Journal.No_fit;
                go best rest
            | Some s as fit ->
                let better =
                  match best with None -> true | Some (bs, _, bnp) -> s > bs || (s = bs && np < bnp)
                in
                Mp_forensics.Journal.cand ~procs:np ~dur ~fit
                  (if better then Mp_forensics.Journal.Leading else Mp_forensics.Journal.Beaten);
                go (if better then Some (s, s + dur, np) else best) rest))
  in
  match go None candidates with
  | Some (s, fin, np) as slot ->
      Mp_forensics.Journal.end_placement ~procs:np ~start:s ~finish:fin;
      slot
  | None ->
      Mp_forensics.Journal.end_placement_failed ();
      None

(* Fewest processors whose earliest feasible start clears [threshold] while
   still finishing by [dl].  [jctx] carries (reference, lambda) for the
   decision journal only — never consulted by the placement itself. *)
let place_conservative ?jctx cal task ~dl ~threshold ~max_np =
  let threshold = max 0 threshold in
  if !Mp_forensics.Journal.enabled then begin
    let candidates = Task.alloc_candidates task ~max_np in
    Mp_forensics.Journal.begin_placement Mp_forensics.Journal.Conservative ~task:task.Task.id
      ~anchor:dl ~bound:max_np ~evaluated:(List.length candidates);
    match jctx with
    | Some (reference, lambda) -> Mp_forensics.Journal.note_reference ~reference ~threshold ~lambda
    | None -> ()
  end;
  let rec try_candidates = function
    | [] ->
        Mp_forensics.Journal.end_placement_failed ();
        None
    | np :: rest ->
        let dur = Task.exec_time task np in
        if threshold + dur > dl then begin
          Mp_forensics.Journal.cand ~procs:np ~dur ~fit:None Mp_forensics.Journal.Window_closed;
          try_candidates rest
        end
        else begin
          match Calendar.earliest_fit cal ~after:threshold ~procs:np ~dur with
          | Some s when s + dur <= dl ->
              if !Mp_forensics.Journal.enabled then begin
                Mp_forensics.Journal.cand ~procs:np ~dur ~fit:(Some s)
                  Mp_forensics.Journal.Leading;
                Mp_forensics.Journal.end_placement ~procs:np ~start:s ~finish:(s + dur)
              end;
              Some (s, s + dur, np)
          | Some _ as fit ->
              Mp_forensics.Journal.cand ~procs:np ~dur ~fit Mp_forensics.Journal.Misses_deadline;
              try_candidates rest
          | None ->
              Mp_forensics.Journal.cand ~procs:np ~dur ~fit:None Mp_forensics.Journal.No_fit;
              try_candidates rest
        end
  in
  try_candidates (Task.alloc_candidates task ~max_np)

(* Shared backward list-scheduling loop over a precomputed increasing
   bottom-level order.  [place] decides one task's slot given the current
   calendar and the task's completion deadline. *)
let backward ~order (env : Env.t) dag ~deadline ~place =
  Mp_obs.Span.wrap sp_backward @@ fun () ->
  let nb = Dag.n dag in
  let slots = Array.make nb ({ start = 0; finish = 0; procs = 0 } : Schedule.slot) in
  let placed = Array.make nb false in
  let cal = ref env.calendar in
  let rec go k =
    if k < 0 then Some { Schedule.slots }
    else begin
      let i = order.(k) in
      let dl =
        Array.fold_left
          (fun acc j -> min acc slots.(j).Schedule.start)
          deadline (Dag.succs dag i)
      in
      Mp_obs.Span.enter sp_place;
      let slot = place !cal ~i ~dl ~placed in
      Mp_obs.Span.exit sp_place;
      match slot with
      | None -> None
      | Some (s, fin, np) ->
          Mp_obs.Counter.incr c_tasks_placed;
          cal := Calendar.reserve !cal (Reservation.make ~start:s ~finish:fin ~procs:np);
          slots.(i) <- { start = s; finish = fin; procs = np };
          placed.(i) <- true;
          go (k - 1)
    end
  in
  go (nb - 1)

(* The allocation-dependent data (bottom-level order, CPA allocations for
   bounds and reference schedules) only depends on (env, dag), never on
   the deadline; the *_prepared variants compute it once so that deadline
   sweeps — the λ search and the tightest-deadline binary search — pay for
   it once instead of per probe. *)

let aggressive_prepared algo (env : Env.t) dag =
  let order = Bottom_level.order Bottom_level.BL_CPAR env dag in
  let bounds =
    match algo with
    | DL_BD_ALL -> Array.make (Dag.n dag) env.p
    | DL_BD_CPA -> Allocation.allocate ~p:env.p dag
    | DL_BD_CPAR -> Allocation.allocate ~p:env.q dag
  in
  fun ~deadline ->
    backward ~order env dag ~deadline ~place:(fun cal ~i ~dl ~placed:_ ->
        place_latest cal (Dag.task dag i) ~dl ~bound:(max 1 bounds.(i)))

let aggressive algo env dag ~deadline = aggressive_prepared algo env dag ~deadline

let conservative_prepared ?(bounded_fallback = false) algo (env : Env.t) dag =
  let order = Bottom_level.order Bottom_level.BL_CPAR env dag in
  let ref_q = match algo with DL_RC_CPA -> env.p | DL_RC_CPAR -> env.q in
  let ref_allocs = Allocation.allocate ~p:ref_q dag in
  let fallback_bounds =
    if bounded_fallback then Allocation.allocate ~p:env.q dag else Array.make (Dag.n dag) env.p
  in
  fun ~lambda ~deadline ->
    if lambda < 0. || lambda > 1. then invalid_arg "Deadline.resource_conservative: lambda";
    backward ~order env dag ~deadline ~place:(fun cal ~i ~dl ~placed ->
        let keep = Array.map not placed in
        let reference =
          match Mapping.map_subset dag ~allocs:ref_allocs ~p:ref_q ~keep with
          | Some starts -> starts.(i)
          | None -> 0
        in
        let threshold =
          reference + int_of_float (Float.round (lambda *. float_of_int (dl - reference)))
        in
        let jctx =
          if !Mp_forensics.Journal.enabled then Some (reference, lambda) else None
        in
        match place_conservative ?jctx cal (Dag.task dag i) ~dl ~threshold ~max_np:env.p with
        | Some slot -> Some slot
        | None -> place_latest cal (Dag.task dag i) ~dl ~bound:(max 1 fallback_bounds.(i)))

let resource_conservative ?(lambda = 0.) ?bounded_fallback algo env dag ~deadline =
  conservative_prepared ?bounded_fallback algo env dag ~lambda ~deadline

let hybrid_prepared ?bounded_fallback ?(step = 0.05) env dag =
  if step <= 0. then invalid_arg "Deadline.hybrid: step <= 0";
  let prepared = conservative_prepared ?bounded_fallback DL_RC_CPAR env dag in
  fun ~deadline ->
    let rec sweep lambda =
      if lambda > 1. +. 1e-9 then None
      else begin
        match prepared ~lambda:(Float.min 1. lambda) ~deadline with
        | Some sched -> Some (sched, Float.min 1. lambda)
        | None -> sweep (lambda +. step)
      end
    in
    sweep 0.

let hybrid ?bounded_fallback ?step env dag ~deadline =
  hybrid_prepared ?bounded_fallback ?step env dag ~deadline

let lower_bound (env : Env.t) dag =
  let weights = Array.map (fun tk -> Task.exec_time_f tk env.p) (Dag.tasks dag) in
  int_of_float (ceil (Analysis.cp_length dag ~weights))

let tightest ?(resolution = 60) algo env dag =
  if resolution < 1 then invalid_arg "Deadline.tightest: resolution < 1";
  let lo = max 1 (lower_bound env dag) in
  (* Find a feasible upper bracket by doubling. *)
  let rec bracket hi attempts =
    if attempts = 0 then None
    else begin
      Mp_obs.Counter.incr c_probes;
      match algo ~deadline:hi with
      | Some sched -> Some (hi, sched)
      | None -> bracket (hi * 2) (attempts - 1)
    end
  in
  match bracket lo 22 with
  | None -> None
  | Some (hi0, sched0) ->
      let rec search lo hi best =
        if hi - lo <= resolution then best
        else begin
          let mid = lo + ((hi - lo) / 2) in
          Mp_obs.Counter.incr c_probes;
          match algo ~deadline:mid with
          | Some sched -> search lo mid (mid, sched)
          | None -> search mid hi best
        end
      in
      Some (search lo hi0 (hi0, sched0))
