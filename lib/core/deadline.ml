module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Analysis = Mp_dag.Analysis
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Schedule = Mp_cpa.Schedule
module Allocation = Mp_cpa.Allocation
module Mapping = Mp_cpa.Mapping

type aggressive = DL_BD_ALL | DL_BD_CPA | DL_BD_CPAR
type conservative = DL_RC_CPA | DL_RC_CPAR

let aggressive_name = function
  | DL_BD_ALL -> "DL_BD_ALL"
  | DL_BD_CPA -> "DL_BD_CPA"
  | DL_BD_CPAR -> "DL_BD_CPAR"

let conservative_name = function DL_RC_CPA -> "DL_RC_CPA" | DL_RC_CPAR -> "DL_RC_CPAR"

let c_tasks_placed = Mp_obs.Counter.make "deadline.tasks_placed"
let c_probes = Mp_obs.Counter.make "deadline.tightest.probes"
let sp_place = Mp_obs.Span.make "deadline.place"
let sp_backward = Mp_obs.Span.make "deadline.backward"

(* Latest-start placement among the task's distinct-duration processor
   counts up to a per-task bound: the aggressive move, also used as
   fallback by the conservative algorithms. *)
let place_latest cal task ~dl ~(cands : Task.candidates) =
  (* Candidates by descending processor count (ascending duration): once
     [dl - dur] falls below the best start found, no remaining (longer)
     candidate can start later, so the scan stops.  On loose deadlines the
     very first candidate ends the loop. *)
  let nps = cands.Task.nps and durs = cands.Task.durs in
  if !Mp_forensics.Journal.enabled then
    Mp_forensics.Journal.begin_placement Mp_forensics.Journal.Backward ~task:task.Task.id
      ~anchor:dl ~bound:cands.Task.bound ~evaluated:(Array.length nps);
  (* All candidates query the same calendar state toward the same
     deadline: share the walk prefix (see {!Calendar.Txn.latest_scan}). *)
  let scan = Calendar.Txn.latest_scan cal ~finish_by:dl in
  let rec go best c =
    if c < 0 then best
    else
      let np = nps.(c) and dur = durs.(c) in
      match best with
      | Some (bs, _, _) when dl - dur < bs ->
          Mp_forensics.Journal.cand ~procs:np ~dur ~fit:None Mp_forensics.Journal.Early_cut;
          best
      | _ -> (
          (* A fit strictly before the best start is discarded below (the
             scan's processor counts only decrease, so an equal start always
             wins its tie), so the query may stop the moment its window
             drops below [bs] — raising [earliest] to [bs] changes no
             placement, only how soon a losing scan gives up.  With the
             journal on, keep the unbounded query so the recorded
             candidates (starts of beaten fits) stay exactly as before;
             the extra work is placement-identical by the same argument. *)
          let earliest =
            if !Mp_forensics.Journal.enabled then 0
            else match best with None -> 0 | Some (bs, _, _) -> max 0 bs
          in
          match Calendar.Txn.latest_fit_scan scan ~earliest ~procs:np ~dur with
          | None ->
              Mp_forensics.Journal.cand ~procs:np ~dur ~fit:None Mp_forensics.Journal.No_fit;
              go best (c - 1)
          | Some s as fit ->
              let better =
                match best with None -> true | Some (bs, _, bnp) -> s > bs || (s = bs && np < bnp)
              in
              Mp_forensics.Journal.cand ~procs:np ~dur ~fit
                (if better then Mp_forensics.Journal.Leading else Mp_forensics.Journal.Beaten);
              go (if better then Some (s, s + dur, np) else best) (c - 1))
  in
  match go None (Array.length nps - 1) with
  | Some (s, fin, np) as slot ->
      Mp_forensics.Journal.end_placement ~procs:np ~start:s ~finish:fin;
      slot
  | None ->
      Mp_forensics.Journal.end_placement_failed ();
      None

(* Fewest processors whose earliest feasible start clears [threshold] while
   still finishing by [dl].  [jctx] carries (reference, lambda) for the
   decision journal only — never consulted by the placement itself. *)
let place_conservative ?jctx cal task ~dl ~threshold ~(cands : Task.candidates) =
  let threshold = max 0 threshold in
  let nps = cands.Task.nps and durs = cands.Task.durs in
  let n_cands = Array.length nps in
  if !Mp_forensics.Journal.enabled then begin
    Mp_forensics.Journal.begin_placement Mp_forensics.Journal.Conservative ~task:task.Task.id
      ~anchor:dl ~bound:cands.Task.bound ~evaluated:n_cands;
    match jctx with
    | Some (reference, lambda) -> Mp_forensics.Journal.note_reference ~reference ~threshold ~lambda
    | None -> ()
  end;
  let rec try_candidates c =
    if c >= n_cands then begin
      Mp_forensics.Journal.end_placement_failed ();
      None
    end
    else
      let np = nps.(c) and dur = durs.(c) in
      if threshold + dur > dl then begin
        Mp_forensics.Journal.cand ~procs:np ~dur ~fit:None Mp_forensics.Journal.Window_closed;
        try_candidates (c + 1)
      end
      else begin
        (* Starts past [dl - dur] miss the deadline and fall through to the
           next candidate; bounding the query there lets a doomed scan stop
           at the window's edge instead of walking to the calendar's empty
           tail.  Unbounded when the journal is on, so the recorded fit of
           a deadline-missing candidate stays exactly as before. *)
        let limit = if !Mp_forensics.Journal.enabled then max_int else dl - dur in
        match Calendar.Txn.earliest_fit ~limit cal ~after:threshold ~procs:np ~dur with
        | Some s when s + dur <= dl ->
            if !Mp_forensics.Journal.enabled then begin
              Mp_forensics.Journal.cand ~procs:np ~dur ~fit:(Some s)
                Mp_forensics.Journal.Leading;
              Mp_forensics.Journal.end_placement ~procs:np ~start:s ~finish:(s + dur)
            end;
            Some (s, s + dur, np)
        | Some _ as fit ->
            Mp_forensics.Journal.cand ~procs:np ~dur ~fit Mp_forensics.Journal.Misses_deadline;
            try_candidates (c + 1)
        | None ->
            Mp_forensics.Journal.cand ~procs:np ~dur ~fit:None Mp_forensics.Journal.No_fit;
            try_candidates (c + 1)
      end
  in
  try_candidates 0

(* Shared backward list-scheduling loop over a precomputed increasing
   bottom-level order.  [place] decides one task's slot given the current
   calendar and the task's completion deadline.

   With [?spec], upcoming placements are evaluated against a persistent
   snapshot of the transaction in parallel and committed in order with
   per-task validation — output identical to the sequential pass by
   construction (see "Intra-schedule speculation" in DESIGN.md: the
   live calendar's availability is a subset of the snapshot's, under
   which every placement scan in this module either returns the
   validated winner again or fails identically). *)
let backward ?spec ~order (env : Env.t) dag ~deadline ~place =
  Mp_obs.Span.wrap sp_backward @@ fun () ->
  let nb = Dag.n dag in
  let slots = Array.make nb ({ start = 0; finish = 0; procs = 0 } : Schedule.slot) in
  (* The pass reserves and queries strictly forward through calendar
     versions, so it runs on a mutable transaction over the shared base
     calendar instead of building a persistent version per task. *)
  let cal = Calendar.Txn.start env.calendar in
  let dl_of i =
    Array.fold_left (fun acc j -> min acc slots.(j).Schedule.start) deadline (Dag.succs dag i)
  in
  let place_live k i dl =
    Mp_obs.Span.enter sp_place;
    let slot = place cal ~k ~i ~dl in
    Mp_obs.Span.exit sp_place;
    slot
  in
  let commit i (s, fin, np) =
    Mp_obs.Counter.incr c_tasks_placed;
    Calendar.Txn.reserve cal (Reservation.make ~start:s ~finish:fin ~procs:np);
    slots.(i) <- { start = s; finish = fin; procs = np }
  in
  let rec go k =
    if k < 0 then Some { Schedule.slots }
    else begin
      match place_live k (order.(k)) (dl_of (order.(k))) with
      | None -> None
      | Some slot ->
          commit (order.(k)) slot;
          go (k - 1)
    end
  in
  match Speculate.acquire spec with
  | None -> go (nb - 1)
  | Some sp ->
      Fun.protect ~finally:(fun () -> Speculate.release sp) @@ fun () ->
      let pos = Array.make nb 0 in
      Array.iteri (fun k i -> pos.(i) <- k) order;
      (* The window [k_lo, k] may be evaluated against one snapshot iff no
         task in it has a successor inside it: successors of order.(k')
         sit at positions > k', so requiring them > k (already placed)
         makes every window task's deadline final at snapshot time. *)
      let window_lo k =
        let lookahead = Speculate.lookahead sp in
        let rec extend k' w =
          if w >= lookahead || k' < 0 then k' + 1
          else if Array.for_all (fun j -> pos.(j) > k) (Dag.succs dag order.(k')) then
            extend (k' - 1) (w + 1)
          else k' + 1
        in
        extend (k - 1) 1
      in
      let rec go_spec k =
        if k < 0 then Some { Schedule.slots }
        else begin
          let k_lo = window_lo k in
          let w = k - k_lo + 1 in
          if w < 2 then begin
            match place_live k (order.(k)) (dl_of (order.(k))) with
            | None -> None
            | Some slot ->
                commit (order.(k)) slot;
                go_spec (k - 1)
          end
          else begin
            let snap = Calendar.Txn.commit cal in
            Speculate.wave_probes w;
            let thunks =
              Array.init w (fun j ->
                  let i = order.(k - j) in
                  let kk = k - j and dl = dl_of i in
                  fun () ->
                    let scal = Calendar.Txn.start snap in
                    let t0 = if !Mp_obs.enabled then Mp_obs.now_ns () else 0 in
                    let r = place scal ~k:kk ~i ~dl in
                    let dt = if !Mp_obs.enabled then max 0 (Mp_obs.now_ns () - t0) else 0 in
                    (r, dt))
            in
            let results = Speculate.map_array sp thunks in
            (* Commit in order.  A snapshot [None] is exact (availability
               only shrank since the snapshot, so the live scan fails
               too); a snapshot winner that still fits is what the live
               scan would pick (DESIGN.md); otherwise recompute live. *)
            let rec commit_loop j =
              if j >= w then go_spec (k - w)
              else begin
                let i = order.(k - j) in
                match results.(j) with
                | None, _ -> None
                | Some ((s, fin, np) as slot), dt ->
                    if
                      j = 0
                      || Calendar.Txn.can_reserve cal
                           (Reservation.make ~start:s ~finish:fin ~procs:np)
                    then begin
                      if j > 0 then Speculate.hit ();
                      commit i slot;
                      commit_loop (j + 1)
                    end
                    else begin
                      Speculate.miss ~wasted_ns:dt;
                      match place_live (k - j) i (dl_of i) with
                      | None -> None
                      | Some slot ->
                          commit i slot;
                          commit_loop (j + 1)
                    end
              end
            in
            commit_loop 0
          end
        end
      in
      go_spec (nb - 1)

(* The allocation-dependent data (bottom-level order, CPA allocations for
   bounds and reference schedules) only depends on (env, dag), never on
   the deadline; the *_prepared variants compute it once so that deadline
   sweeps — the λ search and the tightest-deadline binary search — pay for
   it once instead of per probe. *)

(* One candidate table per task, computed when the prepared closure is
   built and shared by every deadline probe (and every placement of every
   probe) thereafter. *)
let candidate_tables dag ~bound_of =
  Array.init (Dag.n dag) (fun i -> Task.candidates (Dag.task dag i) ~max_np:(bound_of i))

let aggressive_prepared ?spec algo (env : Env.t) dag =
  let order = Bottom_level.order Bottom_level.BL_CPAR env dag in
  let bounds =
    match algo with
    | DL_BD_ALL -> Array.make (Dag.n dag) env.p
    | DL_BD_CPA -> Allocation.allocate ~p:env.p dag
    | DL_BD_CPAR -> Allocation.allocate ~p:env.q dag
  in
  let cands = candidate_tables dag ~bound_of:(fun i -> max 1 bounds.(i)) in
  fun ~deadline ->
    backward ?spec ~order env dag ~deadline ~place:(fun cal ~k:_ ~i ~dl ->
        place_latest cal (Dag.task dag i) ~dl ~cands:cands.(i))

let aggressive ?spec algo env dag ~deadline = aggressive_prepared ?spec algo env dag ~deadline

let conservative_prepared ?(bounded_fallback = false) ?spec algo (env : Env.t) dag =
  let order = Bottom_level.order Bottom_level.BL_CPAR env dag in
  let ref_q = match algo with DL_RC_CPA -> env.p | DL_RC_CPAR -> env.q in
  let ref_allocs = Allocation.allocate ~p:ref_q dag in
  (* All probes of a λ-sweep / tightest search place tasks in the same
     backward order, so the reference starts they consult are the same
     order-prefix schedules: memoize them across probes. *)
  let refs = Mapping.prefix_references dag ~allocs:ref_allocs ~p:ref_q ~order in
  (* The memo fills lazily in decreasing position order; speculative
     probes run on worker domains, so force it read-only up front. *)
  if spec <> None && Dag.n dag > 0 then ignore (Mapping.reference_start refs 0);
  let cons_cands = candidate_tables dag ~bound_of:(fun _ -> env.p) in
  let fb_cands =
    if bounded_fallback then begin
      let fallback_bounds = Allocation.allocate ~p:env.q dag in
      candidate_tables dag ~bound_of:(fun i -> max 1 fallback_bounds.(i))
    end
    else cons_cands
  in
  fun ~lambda ~deadline ->
    if lambda < 0. || lambda > 1. then invalid_arg "Deadline.resource_conservative: lambda";
    backward ?spec ~order env dag ~deadline ~place:(fun cal ~k ~i ~dl ->
        let reference = Mapping.reference_start refs k in
        let threshold =
          reference + int_of_float (Float.round (lambda *. float_of_int (dl - reference)))
        in
        let jctx =
          if !Mp_forensics.Journal.enabled then Some (reference, lambda) else None
        in
        match place_conservative ?jctx cal (Dag.task dag i) ~dl ~threshold ~cands:cons_cands.(i) with
        | Some slot -> Some slot
        | None -> place_latest cal (Dag.task dag i) ~dl ~cands:fb_cands.(i))

let resource_conservative ?(lambda = 0.) ?bounded_fallback ?spec algo env dag ~deadline =
  conservative_prepared ?bounded_fallback ?spec algo env dag ~lambda ~deadline

let hybrid_prepared ?bounded_fallback ?(step = 0.05) ?spec env dag =
  if step <= 0. then invalid_arg "Deadline.hybrid: step <= 0";
  let prepared = conservative_prepared ?bounded_fallback ?spec DL_RC_CPAR env dag in
  (* λ_k = min 1 (k·step), k = 0..n_steps — an integer grid, not repeated
     float accumulation, so the probed values carry no accumulated
     rounding.  n_steps is the first k with k·step >= 1 (the old
     accumulating loop probed the same count: its 1e-9 guard admitted
     the accumulated value just above 1, clamped to 1). *)
  let n_steps = int_of_float (ceil (1. /. step -. 1e-9)) in
  let lambda_of k = Float.min 1. (float_of_int k *. step) in
  fun ~deadline ->
    let try_lambda k =
      let l = lambda_of k in
      match prepared ~lambda:l ~deadline with
      | Some sched -> Some (sched, l)
      | None -> None
    in
    let sequential () =
      let rec sweep k =
        if k > n_steps then None
        else match try_lambda k with Some _ as r -> r | None -> sweep (k + 1)
      in
      sweep 0
    in
    Speculate.lend spec ~sequential ~speculative:(fun sp ->
        (* Fan the grid in fixed-width waves; the smallest-index success
           is the same first feasible λ the sequential sweep finds. *)
        let rec waves k0 =
          if k0 > n_steps then None
          else begin
            let w = min Speculate.wave_width (n_steps - k0 + 1) in
            let thunks = Array.init w (fun j () -> try_lambda (k0 + j)) in
            match Speculate.first_some sp thunks with
            | Some (_, r) -> Some r
            | None -> waves (k0 + w)
          end
        in
        waves 0)

let hybrid ?bounded_fallback ?step ?spec env dag ~deadline =
  hybrid_prepared ?bounded_fallback ?step ?spec env dag ~deadline

let lower_bound (env : Env.t) dag =
  let weights = Array.map (fun tk -> Task.exec_time_f tk env.p) (Dag.tasks dag) in
  int_of_float (ceil (Analysis.cp_length dag ~weights))

let bracket_attempts = 22

let tightest ?(resolution = 60) ?spec algo env dag =
  if resolution < 1 then invalid_arg "Deadline.tightest: resolution < 1";
  let lo = max 1 (lower_bound env dag) in
  let probe ~deadline =
    Mp_obs.Counter.incr c_probes;
    algo ~deadline
  in
  (* Find a feasible upper bracket by doubling. *)
  let bracket_seq () =
    let rec bracket hi attempts =
      if attempts = 0 then None
      else begin
        match probe ~deadline:hi with
        | Some sched -> Some (hi, sched)
        | None -> bracket (hi * 2) (attempts - 1)
      end
    in
    bracket lo bracket_attempts
  in
  (* The doubling candidates are a fixed list: fan them in fixed-width
     waves; the smallest-index success is the bracket the sequential
     doubling finds. *)
  let bracket_spec sp =
    let cands = Array.init bracket_attempts (fun j -> lo * (1 lsl j)) in
    let rec waves j0 =
      if j0 >= bracket_attempts then None
      else begin
        let w = min Speculate.wave_width (bracket_attempts - j0) in
        let thunks = Array.init w (fun j () -> probe ~deadline:cands.(j0 + j)) in
        match Speculate.first_some sp thunks with
        | Some (j, sched) -> Some (cands.(j0 + j), sched)
        | None -> waves (j0 + w)
      end
    in
    waves 0
  in
  let search_seq lo hi best =
    let rec search lo hi best =
      if hi - lo <= resolution then best
      else begin
        let mid = lo + ((hi - lo) / 2) in
        match probe ~deadline:mid with
        | Some sched -> search lo mid (mid, sched)
        | None -> search mid hi best
      end
    in
    search lo hi best
  in
  (* Speculative bisection: one wave evaluates the current midpoint and
     the midpoints of both possible next intervals, then consumes the
     branch the current probe selects — two bisection levels per wave
     for three probes, the probed deadlines and the result exactly those
     of the sequential search (the third probe is wasted). *)
  let search_spec sp lo hi best =
    let rec search lo hi best =
      if hi - lo <= resolution then best
      else begin
        let mid = lo + ((hi - lo) / 2) in
        let mid_s = lo + ((mid - lo) / 2) in
        let mid_f = mid + ((hi - mid) / 2) in
        Speculate.wave_probes 3;
        let results =
          Speculate.map_array sp
            [|
              (fun () -> probe ~deadline:mid);
              (fun () -> probe ~deadline:mid_s);
              (fun () -> probe ~deadline:mid_f);
            |]
        in
        Speculate.wave_wasted 1;
        match results.(0) with
        | Some sched ->
            if mid - lo <= resolution then (mid, sched)
            else begin
              match results.(1) with
              | Some sched' -> search lo mid_s (mid_s, sched')
              | None -> search mid_s mid (mid, sched)
            end
        | None ->
            if hi - mid <= resolution then best
            else begin
              match results.(2) with
              | Some sched' -> search mid mid_f (mid_f, sched')
              | None -> search mid_f hi best
            end
      end
    in
    search lo hi best
  in
  Speculate.lend spec
    ~sequential:(fun () ->
      match bracket_seq () with
      | None -> None
      | Some (hi0, sched0) -> Some (search_seq lo hi0 (hi0, sched0)))
    ~speculative:(fun sp ->
      match bracket_spec sp with
      | None -> None
      | Some (hi0, sched0) -> Some (search_spec sp lo hi0 (hi0, sched0)))
