(** Turn-around-time minimization under advance reservations — problem
    RESSCHED (Section 4).

    The algorithm (Section 4.2):

    + compute a bottom level for every task (per a {!Bottom_level.method_})
      and sort tasks by decreasing bottom level;
    + for each task, in order, pick the feasible ⟨processors, start⟩ pair —
      processors ranging up to the task's {!Bound.method_} bound — that
      yields the {e earliest completion time} given the competing
      reservations and previously placed tasks, and reserve it.

    Ties on completion time are broken toward fewer processors (cheaper),
    then earlier start.

    [BL_x_BD_y] names the 16 combinations; the paper evaluates 12 of them
    plus the BD_HALF strawman. *)

val schedule :
  ?bl:Bottom_level.method_ ->
  ?bd:Bound.method_ ->
  ?now:int ->
  ?spec:Speculate.t ->
  Env.t ->
  Mp_dag.Dag.t ->
  Mp_cpa.Schedule.t
(** [schedule env dag] runs the list scheduler.  Defaults: [bl = BL_CPAR],
    [bd = BD_CPAR] — the paper's recommended algorithm.  [now] (default 0)
    is the earliest allowed start time, used when scheduling an
    application that arrives later than the calendar's origin (see
    [Mp_sim.Campaign]).  Always succeeds (the calendar's final segment is
    fully available, so a fit exists for every task).  With [?spec]
    ({!Speculate.t}), dependency-free runs of upcoming tasks are
    evaluated against calendar snapshots on the lent pool and committed
    in order with per-task validation — the schedule is identical (see
    "Intra-schedule speculation" in DESIGN.md). *)

val name : bl:Bottom_level.method_ -> bd:Bound.method_ -> string
(** E.g. ["BL_CPAR_BD_CPA"]. *)

val place :
  ?kind:Mp_forensics.Journal.kind ->
  Mp_platform.Calendar.t ->
  Mp_dag.Task.t ->
  ready:int ->
  bound:int ->
  int * int * int
(** One earliest-completion placement decision: the ⟨start, finish,
    processors⟩ pair (processors in [\[1, bound\]]) with the earliest
    completion at or after [ready], ties toward fewer processors.  Exposed
    for the {!Online} and ablation schedulers, which share the placement
    rule but drive the calendar differently.  [kind] (default [Forward])
    only tags the {!Mp_forensics.Journal} entry when journaling is on; it
    never affects the decision.  Rebuilds the candidate table on every
    call — callers placing the same task repeatedly should precompute
    {!Mp_dag.Task.candidates} once and use {!place_cands}. *)

val place_cands :
  ?kind:Mp_forensics.Journal.kind ->
  Mp_platform.Calendar.t ->
  Mp_dag.Task.t ->
  ready:int ->
  cands:Mp_dag.Task.candidates ->
  int * int * int
(** {!place} with the candidate table supplied by the caller ([cands]
    must come from [Task.candidates task]; the decision is identical). *)

val place_cands_txn :
  ?kind:Mp_forensics.Journal.kind ->
  Mp_platform.Calendar.Txn.t ->
  Mp_dag.Task.t ->
  ready:int ->
  cands:Mp_dag.Task.candidates ->
  int * int * int
(** {!place_cands} against a calendar transaction instead of a persistent
    calendar version (same decision; used by the linear scheduling loops
    that reserve in place). *)
