module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Analysis = Mp_dag.Analysis
module Grid = Mp_platform.Grid
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Allocation = Mp_cpa.Allocation

type slot = { site : int; start : int; finish : int; procs : int }
type t = { slots : slot array }

let turnaround t = Array.fold_left (fun acc s -> max acc s.finish) 0 t.slots

let cpu_hours t =
  float_of_int (Array.fold_left (fun acc s -> acc + (s.procs * (s.finish - s.start))) 0 t.slots)
  /. 3600.

type bound_method = HBD_ALL | HBD_CPAR

let bound_name = function HBD_ALL -> "HBD_ALL" | HBD_CPAR -> "HBD_CPAR"

let day = 86_400

(* Speed-weighted average availability across the grid over the window:
   the heterogeneous analogue of the paper's historical average q. *)
let reference_available grid ~window =
  let total = ref 0. in
  for s = 0 to Grid.n_sites grid - 1 do
    let site = Grid.site grid s in
    total := !total +. (Grid.average_available grid ~site:s ~from_:0 ~until:window *. site.speed)
  done;
  max 1 (int_of_float (Float.round !total))

(* Translate a reference-cluster allocation to a site: a site [v] times
   faster needs [v] times fewer processors for the same work rate. *)
let translate_alloc ~speed ~site_procs r =
  max 1 (min site_procs (int_of_float (ceil (float_of_int r /. speed))))

(* Everything both passes (and every probe of [tightest]) need that
   depends only on ⟨grid, dag, bd, window⟩: the reference allocations, the
   bottom-level order, and — per ⟨site, task⟩ — the distinct-duration
   processor counts with their site-scaled durations.  Site speeds are
   immutable, so the tables stay valid as reservations accumulate. *)
type prep = {
  order : int array;
  site_cands : (int array * int array) array array;
      (* site → task → (nps ascending, site-scaled durations); both passes
         scan from the top index down (descending processor count) *)
}

let prepare ~bd ~window grid dag =
  let nb = Dag.n dag in
  let ref_procs =
    match bd with
    | HBD_ALL -> Grid.reference_procs grid
    | HBD_CPAR -> min (Grid.reference_procs grid) (reference_available grid ~window)
  in
  let ref_allocs = Allocation.allocate ~p:ref_procs dag in
  let weights = Allocation.weights dag ~allocs:ref_allocs in
  let order = Mp_cpa.Mapping.bl_order dag ~weights in
  let site_cands =
    Array.init (Grid.n_sites grid) (fun s ->
        let { Grid.procs = site_procs; speed; _ } = Grid.site grid s in
        Array.init nb (fun i ->
            let task = Dag.task dag i in
            let bound =
              match bd with
              | HBD_ALL -> site_procs
              | HBD_CPAR -> translate_alloc ~speed ~site_procs ref_allocs.(i)
            in
            let c = Task.candidates task ~max_np:bound in
            let durs =
              Array.map
                (fun np -> Grid.scale_duration grid ~site:s (Task.exec_time_f task np))
                c.Task.nps
            in
            (c.Task.nps, durs)))
  in
  { order; site_cands }

let schedule ?(bd = HBD_CPAR) ?(window = 7 * day) grid dag =
  let nb = Dag.n dag in
  let { order; site_cands } = prepare ~bd ~window grid dag in
  let slots = Array.make nb { site = 0; start = 0; finish = 0; procs = 0 } in
  let grid = ref grid in
  Array.iter
    (fun i ->
      let ready =
        Array.fold_left (fun acc j -> max acc slots.(j).finish) 0 (Dag.preds dag i)
      in
      let best = ref None in
      for s = 0 to Grid.n_sites !grid - 1 do
        let cal = Grid.calendar !grid s in
        (* candidates by descending processor count; early cut as in the
           homogeneous scheduler *)
        let nps, durs = site_cands.(s).(i) in
        let rec go c =
          if c < 0 then ()
          else begin
            let np = nps.(c) and dur = durs.(c) in
            let cut =
              match !best with Some (_, bf, _, _) -> ready + dur > bf | None -> false
            in
            if cut then ()
            else begin
              (match Calendar.earliest_fit cal ~after:ready ~procs:np ~dur with
              | None -> ()
              | Some start ->
                  let fin = start + dur in
                  let better =
                    match !best with
                    | None -> true
                    | Some (_, bf, bnp, bsite) ->
                        fin < bf || (fin = bf && (np < bnp || (np = bnp && s < bsite)))
                  in
                  if better then best := Some ((s, start, fin, np), fin, np, s));
              go (c - 1)
            end
          end
        in
        go (Array.length nps - 1)
      done;
      match !best with
      | None -> assert false (* 1 processor on any site always fits eventually *)
      | Some ((s, start, fin, np), _, _, _) ->
          grid := Grid.reserve !grid ~site:s (Reservation.make ~start ~finish:fin ~procs:np);
          slots.(i) <- { site = s; start; finish = fin; procs = np })
    order;
  { slots }

let deadline_prepared ?(bd = HBD_CPAR) ?(window = 7 * day) grid dag =
  let nb = Dag.n dag in
  let { order; site_cands } = prepare ~bd ~window grid dag in
  fun ~deadline ->
    let slots = Array.make nb { site = 0; start = 0; finish = 0; procs = 0 } in
    let grid = ref grid in
    (* increasing bottom level = reverse of the forward order *)
    let rec go k =
      if k < 0 then Some { slots }
      else begin
        let i = order.(k) in
        let dl =
          Array.fold_left (fun acc j -> min acc slots.(j).start) deadline (Dag.succs dag i)
        in
        let best = ref None in
        for s = 0 to Grid.n_sites !grid - 1 do
          let cal = Grid.calendar !grid s in
          let nps, durs = site_cands.(s).(i) in
          let rec try_cands c =
            if c < 0 then ()
            else begin
              let np = nps.(c) and dur = durs.(c) in
              let cut = match !best with Some (_, bs, _, _) -> dl - dur < bs | None -> false in
              if cut then ()
              else begin
                (* Starts before the best one lose the selection below even
                   on ties (equal start falls to processor then site order,
                   and the query result is the same segment either way), so
                   the scan may stop at [bs]. *)
                let earliest =
                  match !best with None -> 0 | Some (_, bs, _, _) -> max 0 bs
                in
                (match Calendar.latest_fit cal ~earliest ~finish_by:dl ~procs:np ~dur with
                | None -> ()
                | Some start ->
                    let better =
                      match !best with
                      | None -> true
                      | Some (_, bs, bnp, bsite) ->
                          start > bs || (start = bs && (np < bnp || (np = bnp && s < bsite)))
                    in
                    if better then best := Some ((s, start, start + dur, np), start, np, s));
                try_cands (c - 1)
              end
            end
          in
          try_cands (Array.length nps - 1)
        done;
        match !best with
        | None -> None
        | Some ((s, start, fin, np), _, _, _) ->
            grid := Grid.reserve !grid ~site:s (Reservation.make ~start ~finish:fin ~procs:np);
            slots.(i) <- { site = s; start; finish = fin; procs = np };
            go (k - 1)
      end
    in
    go (nb - 1)

let deadline ?bd ?window grid dag ~deadline =
  deadline_prepared ?bd ?window grid dag ~deadline

let tightest ?bd grid dag =
  let prepared = deadline_prepared ?bd grid dag in
  let weights =
    (* optimistic: every task on its best site at full size *)
    Array.map
      (fun tk ->
        let best = ref max_int in
        for s = 0 to Grid.n_sites grid - 1 do
          let { Grid.procs; _ } = Grid.site grid s in
          best := min !best (Grid.scale_duration grid ~site:s (Task.exec_time_f tk procs))
        done;
        float_of_int !best)
      (Dag.tasks dag)
  in
  let lo = max 1 (int_of_float (ceil (Analysis.cp_length dag ~weights))) in
  let rec bracket hi attempts =
    if attempts = 0 then None
    else begin
      match prepared ~deadline:hi with
      | Some sched -> Some (hi, sched)
      | None -> bracket (hi * 2) (attempts - 1)
    end
  in
  match bracket lo 22 with
  | None -> None
  | Some (hi0, sched0) ->
      let rec search lo hi best =
        if hi - lo <= 60 then best
        else begin
          let mid = lo + ((hi - lo) / 2) in
          match prepared ~deadline:mid with
          | Some sched -> search lo mid (mid, sched)
          | None -> search mid hi best
        end
      in
      Some (search lo hi0 (hi0, sched0))

let validate grid dag t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if Array.length t.slots <> Dag.n dag then err "slot count mismatch"
  else begin
    let problems = ref [] in
    Array.iteri
      (fun i s ->
        if s.site < 0 || s.site >= Grid.n_sites grid then
          problems := Printf.sprintf "task %d: bad site %d" i s.site :: !problems
        else begin
          let { Grid.procs = site_procs; _ } = Grid.site grid s.site in
          if s.procs < 1 || s.procs > site_procs then
            problems := Printf.sprintf "task %d: procs %d outside site" i s.procs :: !problems;
          if s.start < 0 then problems := Printf.sprintf "task %d: negative start" i :: !problems;
          let need =
            Grid.scale_duration grid ~site:s.site (Task.exec_time_f (Dag.task dag i) s.procs)
          in
          if s.finish - s.start < need then
            problems :=
              Printf.sprintf "task %d: duration %d < required %d" i (s.finish - s.start) need
              :: !problems
        end)
      t.slots;
    List.iter
      (fun (i, j) ->
        if t.slots.(i).finish > t.slots.(j).start then
          problems := Printf.sprintf "precedence (%d, %d) violated" i j :: !problems)
      (Dag.edges dag);
    (* capacity per site *)
    (try
       let (_ : Grid.t) =
         Array.fold_left
           (fun g (s : slot) ->
             Grid.reserve g ~site:s.site
               (Reservation.make ~start:s.start ~finish:s.finish ~procs:s.procs))
           grid t.slots
       in
       ()
     with Calendar.Overcommitted r ->
       problems := Format.asprintf "capacity exceeded: %a" Reservation.pp r :: !problems);
    match !problems with [] -> Ok () | p :: _ -> err "%s" p
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i s -> Format.fprintf ppf "t%-3d site %d [%d, %d) x%d@," i s.site s.start s.finish s.procs)
    t.slots;
  Format.fprintf ppf "turnaround=%d cpu-hours=%.1f@]" (turnaround t) (cpu_hours t)
