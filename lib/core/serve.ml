module Engine = Mp_service.Engine
module Request = Mp_service.Request
module Response = Mp_service.Response
module Calendar = Mp_platform.Calendar
module Schedule = Mp_cpa.Schedule
module Journal = Mp_forensics.Journal
module Analytics = Mp_forensics.Analytics
module Render = Mp_forensics.Render

let unknown_algo name =
  Response.Error
    (Printf.sprintf "unknown algorithm %S (known: %s)" name (String.concat ", " Algo.all_names))

(* Whole-DAG work serializes here: the decision journal is one
   process-global instrument, so journaled runs must not overlap — and a
   submit running while an explain journals would leak its placements
   into the explain's story.  The reservation-protocol hot path never
   takes this lock. *)
let dag_lock = Mutex.create ()

let env ~q cal = Env.make ~calendar:cal ~q:(float_of_int q)

(* [spec] lends a pool to the one schedule computation a request makes
   (see {!Speculate}): whole-DAG work already serializes on [dag_lock],
   so at most one submit/explain speculates at a time, and speculation is
   output-preserving, so responses stay bit-identical with or without
   it.  The spec pool must be distinct from the pool fanning the engine's
   per-site streams (a pool batch is not re-entrant). *)
let submit ?spec ~algo ~deadline ~q cal dag =
  match Algo.find algo with
  | None -> unknown_algo algo
  | Some (`Ressched a) -> (
      match (deadline : Request.deadline_spec) with
      | No_deadline ->
          Mutex.protect dag_lock (fun () ->
              Response.Scheduled { schedule = a.Algo.run ?spec (env ~q cal) dag; deadline = None })
      | By _ | Tightest ->
          Response.Error
            (Printf.sprintf
               "%S is a RESSCHED algorithm (no deadline support); submit without a deadline or \
                pick a RESSCHEDDL algorithm"
               algo))
  | Some (`Deadline a) ->
      Mutex.protect dag_lock (fun () ->
          let env = env ~q cal in
          match (deadline : Request.deadline_spec) with
          | By k -> (
              match a.Algo.run ?spec env dag ~deadline:k with
              | Some schedule -> Response.Scheduled { schedule; deadline = Some k }
              | None -> Response.Infeasible { algo; deadline = Some k })
          | No_deadline | Tightest -> (
              (* the CLI's --deadline-omitted behaviour: search for the
                 tightest feasible deadline *)
              match Deadline.tightest ?spec (a.Algo.prepare ?spec env dag) env dag with
              | Some (k, schedule) -> Response.Scheduled { schedule; deadline = Some k }
              | None -> Response.Infeasible { algo; deadline = None }))

(* [Grant] entries come from the engine's reservation hot path, which does
   not take [dag_lock]: under a multi-site run another site may grant while
   we journal.  Our own run never records grants (schedulers place, they
   don't grant), so dropping them keeps the report deterministic. *)
let own_entries entries =
  List.filter (function Journal.Grant _ -> false | _ -> true) entries

let render_explain ~header ~format ~base sched entries =
  let turnaround = Schedule.turnaround sched in
  let until = max 1 turnaround in
  let final_cal = List.fold_left Calendar.reserve base (Schedule.reservations sched) in
  let analytics = Analytics.analyze final_cal ~from_:0 ~until in
  let slots =
    Array.to_list
      (Array.mapi
         (fun i (s : Schedule.slot) ->
           { Render.label = string_of_int i; start = s.start; finish = s.finish; procs = s.procs })
         sched.Schedule.slots)
  in
  match format with
  | "text" ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf (Printf.sprintf "%s; turnaround %d s\n\n" header turnaround);
      Buffer.add_string buf (Journal.story entries);
      Buffer.add_string buf (Format.asprintf "@.%a@." Analytics.pp analytics);
      Ok (Buffer.contents buf)
  | "json" ->
      Ok
        (Journal.to_jsonl entries
        ^ Printf.sprintf "{\"event\":\"analytics\",\"data\":%s}\n" (Analytics.to_json analytics))
  | "svg" -> Ok (Render.gantt_svg ~base ~slots ())
  | "html" ->
      Ok
        (Render.html ~title:header
           ~gantt:(Render.gantt_svg ~base ~slots ())
           ~profile:(Render.profile_svg base ~from_:0 ~until)
           ~analytics:(Format.asprintf "%a" Analytics.pp analytics)
           ~story:(Journal.story entries))
  | other -> Result.Error (Printf.sprintf "unknown format %S (text, json, svg, html)" other)

let explain ?spec ~algo ~deadline ~format ~q cal dag =
  match Algo.find algo with
  | None -> unknown_algo algo
  | Some found -> (
      Mutex.protect dag_lock @@ fun () ->
      let run_or_err =
        match found with
        | `Ressched a ->
            (* the journaled run below sees [Journal.enabled] and stands
               down from speculation by itself — passing [spec] is
               harmless and keeps one code path *)
            Ok
              ( (fun () -> a.Algo.run ?spec (env ~q cal) dag),
                Printf.sprintf "algorithm %s" a.Algo.name )
        | `Deadline a -> (
            let env = env ~q cal in
            (* resolve the deadline before journaling: the tightest search
               probes many deadlines, and journaling only the final run
               keeps the story readable (the journal is still off here, so
               the resolution may speculate) *)
            let resolved =
              match deadline with
              | Some k -> Ok (k, false)
              | None -> (
                  match Deadline.tightest ?spec (a.Algo.prepare ?spec env dag) env dag with
                  | Some (k, _) -> Ok (k, true)
                  | None ->
                      Result.Error (Printf.sprintf "no feasible deadline found for %s" a.Algo.name))
            in
            match resolved with
            | Result.Error _ as e -> e
            | Ok (k, tightest) ->
                Ok
                  ( (fun () ->
                      match a.Algo.run ?spec env dag ~deadline:k with
                      | Some sched -> sched
                      | None ->
                          failwith
                            (Printf.sprintf "deadline %d cannot be met by %s" k a.Algo.name)),
                    Printf.sprintf "algorithm %s, deadline %d s%s" a.Algo.name k
                      (if tightest then " (tightest)" else "") ))
      in
      match run_or_err with
      | Result.Error msg -> Response.Error msg
      | Ok (run, header) -> (
          let header =
            Printf.sprintf "%s on %d tasks, p=%d q=%d" header (Mp_dag.Dag.n dag)
              (Calendar.procs cal) q
          in
          Journal.reset ();
          match Journal.with_enabled run with
          | exception Failure msg -> Response.Error msg
          | sched -> (
              let entries = own_entries (Journal.take ()) in
              Journal.reset ();
              match render_explain ~header ~format ~base:cal sched entries with
              | Ok report -> Response.Explained report
              | Result.Error msg -> Response.Error msg)))

let handlers ?spec () = { Engine.submit = submit ?spec; explain = explain ?spec }

let engine ?spec ~sites () = Engine.create ~handlers:(handlers ?spec ()) ~sites ()
