module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Schedule = Mp_cpa.Schedule

let name ~bl ~bd = Bottom_level.name bl ^ "_" ^ Bound.name bd

let c_tasks_placed = Mp_obs.Counter.make "ressched.tasks_placed"
let c_early_cuts = Mp_obs.Counter.make "ressched.early_cuts"
let sp_place = Mp_obs.Span.make "ressched.place"
let sp_schedule = Mp_obs.Span.make "ressched.schedule"

(* Earliest-completion placement of one task: completion time is not
   monotone in the processor count because of reservation holes, so every
   {e distinct} duration is examined (the O(R·N) inner loop of the paper's
   complexity analysis; counts inside an Amdahl plateau are dominated by
   the plateau's first count and skipped, see {!Task.alloc_candidates}). *)
let place_cands_fit ?(kind = Mp_forensics.Journal.Forward) ~fit task ~ready
    ~(cands : Task.candidates) =
  Mp_obs.Counter.incr c_tasks_placed;
  Mp_obs.Span.enter sp_place;
  (* Candidates are visited by descending processor count (ascending
     duration): once [ready + dur] exceeds the best completion found, no
     remaining (longer) candidate can win, completion being at least
     [ready + dur] — so the scan stops, which on lightly loaded calendars
     reduces the inner loop to a handful of fit queries. *)
  let nps = cands.Task.nps and durs = cands.Task.durs in
  if !Mp_forensics.Journal.enabled then
    Mp_forensics.Journal.begin_placement kind ~task:task.Task.id ~anchor:ready
      ~bound:cands.Task.bound ~evaluated:(Array.length nps);
  let rec go best c =
    if c < 0 then best
    else
      let np = nps.(c) and dur = durs.(c) in
      match best with
      | Some (_, bf, _) when ready + dur > bf ->
          Mp_obs.Counter.incr c_early_cuts;
          Mp_forensics.Journal.cand ~procs:np ~dur ~fit:None Mp_forensics.Journal.Early_cut;
          best
      | _ -> (
          (* A fit completing after the best completion is discarded below
             (processor counts only decrease along the scan, so an equal
             completion always wins its tie): the query may give up once
             every remaining start exceeds [bf - dur].  Unbounded with the
             journal on, so recorded beaten fits stay exactly as before. *)
          let limit =
            if !Mp_forensics.Journal.enabled then max_int
            else match best with None -> max_int | Some (_, bf, _) -> bf - dur
          in
          match fit ~after:ready ~limit ~procs:np ~dur with
          | None ->
              Mp_forensics.Journal.cand ~procs:np ~dur ~fit:None Mp_forensics.Journal.No_fit;
              go best (c - 1)
          | Some s as fit ->
              let fin = s + dur in
              let better =
                match best with
                | None -> true
                | Some (_, bf, bnp) -> fin < bf || (fin = bf && np < bnp)
              in
              Mp_forensics.Journal.cand ~procs:np ~dur ~fit
                (if better then Mp_forensics.Journal.Leading else Mp_forensics.Journal.Beaten);
              go (if better then Some ((s, fin, np), fin, np) else best) (c - 1))
  in
  let r =
    match go None (Array.length nps - 1) with
    | Some ((s, fin, np), _, _) ->
        Mp_forensics.Journal.end_placement ~procs:np ~start:s ~finish:fin;
        (s, fin, np)
    | None -> assert false (* np = 1 always fits eventually *)
  in
  Mp_obs.Span.exit sp_place;
  r

let place_cands ?kind cal task ~ready ~cands =
  (* The persistent query has no bounded variant; ignoring [limit] only
     returns fits the selection below discards, never different ones. *)
  place_cands_fit ?kind task ~ready ~cands ~fit:(fun ~after ~limit:_ ~procs ~dur ->
      Calendar.earliest_fit cal ~after ~procs ~dur)

let place_cands_txn ?kind cal task ~ready ~cands =
  place_cands_fit ?kind task ~ready ~cands ~fit:(fun ~after ~limit ~procs ~dur ->
      Calendar.Txn.earliest_fit ~limit cal ~after ~procs ~dur)

let place ?kind cal task ~ready ~bound =
  place_cands ?kind cal task ~ready ~cands:(Task.candidates task ~max_np:bound)

let schedule ?(bl = Bottom_level.BL_CPAR) ?(bd = Bound.BD_CPAR) ?(now = 0) ?spec (env : Env.t)
    dag =
  if now < 0 then invalid_arg "Ressched.schedule: now < 0";
  Mp_obs.Span.wrap sp_schedule @@ fun () ->
  let nb = Dag.n dag in
  let order = Bottom_level.order bl env dag in
  let bounds = Bound.bounds bd env dag in
  let cands =
    Array.init nb (fun i -> Task.candidates (Dag.task dag i) ~max_np:(max 1 bounds.(i)))
  in
  let slots = Array.make nb ({ start = 0; finish = 0; procs = 0 } : Schedule.slot) in
  (* Linear place-then-reserve loop: run on a mutable transaction. *)
  let cal = Calendar.Txn.start env.calendar in
  let ready_of i =
    Array.fold_left (fun acc j -> max acc slots.(j).Schedule.finish) now (Dag.preds dag i)
  in
  let commit i ((s, fin, np) : int * int * int) =
    Calendar.Txn.reserve cal (Reservation.make ~start:s ~finish:fin ~procs:np);
    slots.(i) <- { start = s; finish = fin; procs = np }
  in
  (match Speculate.acquire spec with
  | None ->
      Array.iter
        (fun i -> commit i (place_cands_txn cal (Dag.task dag i) ~ready:(ready_of i) ~cands:cands.(i)))
        order
  | Some sp ->
      Fun.protect ~finally:(fun () -> Speculate.release sp) @@ fun () ->
      let pos = Array.make nb 0 in
      Array.iteri (fun k i -> pos.(i) <- k) order;
      (* Forward mirror of the backward lookahead (see Deadline.backward
         and "Intra-schedule speculation" in DESIGN.md): the window
         [t, t_hi] may be evaluated against one snapshot iff no task in
         it has a predecessor inside it, making every window task's
         ready time final at snapshot time.  Each window task's
         earliest-completion scan runs against the snapshot on a worker
         domain; commits replay in order, re-checking each winning fit
         against the live transaction — a still-fitting winner is
         exactly what the live scan would pick, and a lost fit falls
         back to the live scan. *)
      let window_hi t =
        let lookahead = Speculate.lookahead sp in
        let rec extend t' w =
          if w >= lookahead || t' >= nb then t' - 1
          else if Array.for_all (fun j -> pos.(j) < t) (Dag.preds dag order.(t')) then
            extend (t' + 1) (w + 1)
          else t' - 1
        in
        extend (t + 1) 1
      in
      let rec go t =
        if t < nb then begin
          let t_hi = window_hi t in
          let w = t_hi - t + 1 in
          if w < 2 then begin
            let i = order.(t) in
            commit i (place_cands_txn cal (Dag.task dag i) ~ready:(ready_of i) ~cands:cands.(i));
            go (t + 1)
          end
          else begin
            let snap = Calendar.Txn.commit cal in
            Speculate.wave_probes w;
            let thunks =
              Array.init w (fun j ->
                  let i = order.(t + j) in
                  let ready = ready_of i in
                  fun () ->
                    let scal = Calendar.Txn.start snap in
                    let t0 = if !Mp_obs.enabled then Mp_obs.now_ns () else 0 in
                    let r = place_cands_txn scal (Dag.task dag i) ~ready ~cands:cands.(i) in
                    let dt = if !Mp_obs.enabled then max 0 (Mp_obs.now_ns () - t0) else 0 in
                    (r, dt))
            in
            let results = Speculate.map_array sp thunks in
            for j = 0 to w - 1 do
              let i = order.(t + j) in
              let ((s, fin, np) as slot), dt = results.(j) in
              if
                j = 0
                || Calendar.Txn.can_reserve cal (Reservation.make ~start:s ~finish:fin ~procs:np)
              then begin
                if j > 0 then Speculate.hit ();
                commit i slot
              end
              else begin
                Speculate.miss ~wasted_ns:dt;
                commit i
                  (place_cands_txn cal (Dag.task dag i) ~ready:(ready_of i) ~cands:cands.(i))
              end
            done;
            go (t + w)
          end
        end
      in
      go 0);
  { Schedule.slots }
