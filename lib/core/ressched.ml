module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Schedule = Mp_cpa.Schedule

let name ~bl ~bd = Bottom_level.name bl ^ "_" ^ Bound.name bd

let c_tasks_placed = Mp_obs.Counter.make "ressched.tasks_placed"
let c_early_cuts = Mp_obs.Counter.make "ressched.early_cuts"
let sp_place = Mp_obs.Span.make "ressched.place"
let sp_schedule = Mp_obs.Span.make "ressched.schedule"

(* Earliest-completion placement of one task: completion time is not
   monotone in the processor count because of reservation holes, so every
   {e distinct} duration is examined (the O(R·N) inner loop of the paper's
   complexity analysis; counts inside an Amdahl plateau are dominated by
   the plateau's first count and skipped, see {!Task.alloc_candidates}). *)
let place ?(kind = Mp_forensics.Journal.Forward) cal task ~ready ~bound =
  Mp_obs.Counter.incr c_tasks_placed;
  Mp_obs.Span.enter sp_place;
  (* Candidates are visited by descending processor count (ascending
     duration): once [ready + dur] exceeds the best completion found, no
     remaining (longer) candidate can win, completion being at least
     [ready + dur] — so the scan stops, which on lightly loaded calendars
     reduces the inner loop to a handful of fit queries. *)
  let candidates = List.rev (Task.alloc_candidates task ~max_np:bound) in
  if !Mp_forensics.Journal.enabled then
    Mp_forensics.Journal.begin_placement kind ~task:task.Task.id ~anchor:ready ~bound
      ~evaluated:(List.length candidates);
  let rec go best = function
    | [] -> best
    | np :: rest -> (
        let dur = Task.exec_time task np in
        match best with
        | Some (_, bf, _) when ready + dur > bf ->
            Mp_obs.Counter.incr c_early_cuts;
            Mp_forensics.Journal.cand ~procs:np ~dur ~fit:None Mp_forensics.Journal.Early_cut;
            best
        | _ -> (
            match Calendar.earliest_fit cal ~after:ready ~procs:np ~dur with
            | None ->
                Mp_forensics.Journal.cand ~procs:np ~dur ~fit:None Mp_forensics.Journal.No_fit;
                go best rest
            | Some s as fit ->
                let fin = s + dur in
                let better =
                  match best with
                  | None -> true
                  | Some (_, bf, bnp) -> fin < bf || (fin = bf && np < bnp)
                in
                Mp_forensics.Journal.cand ~procs:np ~dur ~fit
                  (if better then Mp_forensics.Journal.Leading else Mp_forensics.Journal.Beaten);
                go (if better then Some ((s, fin, np), fin, np) else best) rest))
  in
  let r =
    match go None candidates with
    | Some ((s, fin, np), _, _) ->
        Mp_forensics.Journal.end_placement ~procs:np ~start:s ~finish:fin;
        (s, fin, np)
    | None -> assert false (* np = 1 always fits eventually *)
  in
  Mp_obs.Span.exit sp_place;
  r

let schedule ?(bl = Bottom_level.BL_CPAR) ?(bd = Bound.BD_CPAR) ?(now = 0) (env : Env.t) dag =
  if now < 0 then invalid_arg "Ressched.schedule: now < 0";
  Mp_obs.Span.wrap sp_schedule @@ fun () ->
  let order = Bottom_level.order bl env dag in
  let bounds = Bound.bounds bd env dag in
  let slots = Array.make (Dag.n dag) ({ start = 0; finish = 0; procs = 0 } : Schedule.slot) in
  let cal = ref env.calendar in
  Array.iter
    (fun i ->
      let ready =
        Array.fold_left (fun acc j -> max acc slots.(j).Schedule.finish) now (Dag.preds dag i)
      in
      let s, fin, np = place !cal (Dag.task dag i) ~ready ~bound:(max 1 bounds.(i)) in
      cal := Calendar.reserve !cal (Reservation.make ~start:s ~finish:fin ~procs:np);
      slots.(i) <- { start = s; finish = fin; procs = np })
    order;
  { Schedule.slots }
