(** Availability calendar of a homogeneous cluster under advance
    reservations.

    The calendar is a persistent step function mapping every instant to the
    number of processors still available at that instant.  It starts fully
    available ([procs] everywhere, over all of time, past included) and each
    {!reserve} subtracts a {!Reservation.t}'s processors over its interval.

    Persistence matters: the deadline algorithms retry whole schedules for
    a sweep of [lambda] values and the binary search for the tightest
    deadline re-schedules from the same base calendar many times.  Sharing
    the base calendar and layering task reservations on top costs
    [O(log R)] per reservation instead of a full copy.

    The representation is {!Mp_index}: a balanced breakpoint tree with
    hierarchical (min, max) availability summaries (see "Calendar index"
    in DESIGN.md).  Point lookups, window minima, {!reserve}, {!release}
    and the fit queries are all O(log R) in the number of breakpoints —
    within the per-task [O(R)] cost assumed by the paper's complexity
    analysis (Section 6.1, Table 8), and far below it on the
    million-reservation calendars the scheduling service holds. *)

type t

exception Overcommitted of Reservation.t
(** Raised by {!reserve} when a reservation requests more processors than
    are available somewhere in its interval. *)

val create : procs:int -> t
(** Empty calendar of a cluster with [procs] processors.  Raises
    [Invalid_argument] if [procs <= 0]. *)

val procs : t -> int
(** Total processors of the cluster. *)

val breakpoints : t -> int
(** Number of availability breakpoints (a proxy for the number of live
    reservations; useful in complexity experiments). *)

val available_at : t -> int -> int
(** Processors available at the given instant. *)

val min_available : t -> from_:int -> until:int -> int
(** Minimum availability over [\[from_, until)].  Requires [from_ < until]. *)

val average_available : t -> from_:int -> until:int -> float
(** Time-averaged availability over [\[from_, until)].  This is the paper's
    "historical average number of available processors" when evaluated over
    a past window. *)

val can_reserve : t -> Reservation.t -> bool
(** Whether {!reserve} would succeed. *)

val reserve : t -> Reservation.t -> t
(** Subtract the reservation from availability.
    @raise Overcommitted if availability would go negative. *)

val reserve_opt : t -> Reservation.t -> t option
(** Non-raising variant of {!reserve}. *)

val release : t -> Reservation.t -> t
(** Undo a {!reserve}: add the reservation's processors back over its
    interval.  Raises [Invalid_argument] when the result would exceed the
    cluster size, i.e. when the reservation was not actually held. *)

val of_reservations : procs:int -> Reservation.t list -> t
(** Calendar with all the given reservations applied.
    @raise Overcommitted on the first infeasible one. *)

val earliest_fit : t -> after:int -> procs:int -> dur:int -> int option
(** [earliest_fit t ~after ~procs ~dur] is the earliest start time [s >=
    after] such that at least [procs] processors are available over the
    whole of [\[s, s + dur)], or [None] if no such time exists (only
    possible when [procs] exceeds the availability of the calendar's final,
    unbounded segment).  Requires [procs >= 1] and [dur >= 1]. *)

val latest_fit : t -> earliest:int -> finish_by:int -> procs:int -> dur:int -> int option
(** [latest_fit t ~earliest ~finish_by ~procs ~dur] is the latest start
    time [s] with [s >= earliest] and [s + dur <= finish_by] such that
    [procs] processors are available over [\[s, s + dur)], or [None]. *)

(** Mutable single-owner view for linear reserve-then-query passes.

    The scheduling inner loops (backward deadline placement, CPA mapping,
    list scheduling) thread each {!reserve} result straight into the next
    query and never revisit an intermediate calendar version, so they pay
    for persistence without using it.  A [Txn] owns a mutable root
    pointer into the shared breakpoint tree ({!Mp_index.Txn}): {!Txn.start}
    and {!Txn.commit} are O(1), each reservation path-copies O(log R)
    nodes, and the calendar the transaction was forked from is never
    modified.

    A [Txn] answers every query exactly as the persistent calendar
    obtained by folding the same reservations with {!reserve} would
    (pinned by a qcheck property in [test_platform.ml]).  A [Txn] must
    stay confined to one domain: it is freely mutated and carries none of
    the persistent structure's sharing guarantees.  The per-site shards
    of {!Mp_service.Engine} each own one long-lived [Txn]. *)
module Txn : sig
  type cal := t

  type t
  (** A private mutable view of one calendar version plus any number of
      in-place reservations. *)

  val start : cal -> t
  (** Fork a transaction off a calendar version.  O(1). *)

  val procs : t -> int
  (** Total processors of the cluster. *)

  val available_at : t -> int -> int
  (** Processors available at the given instant. *)

  val can_reserve : t -> Reservation.t -> bool
  (** Whether {!reserve} would succeed. *)

  val reserve : t -> Reservation.t -> unit
  (** Subtract the reservation from availability, in place.
      @raise Overcommitted if availability would go negative. *)

  val reserve_opt : t -> Reservation.t -> bool
  (** Non-raising {!reserve}: [false] (and no change) when it would
      overcommit. *)

  val release : t -> Reservation.t -> unit
  (** Undo a {!reserve}, in place.  Raises [Invalid_argument] when the
      reservation was not actually held (the result would exceed the
      cluster size) — the mirror of the persistent {!val:release}. *)

  val commit : t -> cal
  (** The transaction's current state as a persistent calendar.  O(1);
      the transaction remains usable afterwards, and further reserves do
      not affect the returned calendar.  The committed calendar's
      breakpoints are exactly those of the equivalent persistent fold. *)

  val earliest_fit : ?limit:int -> t -> after:int -> procs:int -> dur:int -> int option
  (** As {!earliest_fit} on the transaction's current state.  [limit]
      (default unbounded) makes the query answer [None] as soon as every
      remaining candidate start exceeds it: identical to running the
      unbounded query and discarding a result above [limit], but without
      walking the rest of the calendar.  For a caller that rejects starts
      past [deadline - dur] anyway, passing that bound turns a doomed
      full-calendar scan into an immediate [None]. *)

  val latest_fit : t -> earliest:int -> finish_by:int -> procs:int -> dur:int -> int option
  (** As {!latest_fit} on the transaction's current state. *)

  type scan
  (** Backward-query context toward one [finish_by] on one transaction
      state.  With the O(log R) tree behind every query this no longer
      precomputes anything: it pins the transaction's generation so that
      reuse after a state change is caught, keeping the staleness
      contract callers were written against. *)

  val latest_scan : t -> finish_by:int -> scan
  (** Capture the transaction's current state for {!latest_fit_scan}
      queries with this [finish_by].  O(1).  The scan is invalidated by
      any subsequent {!reserve} on the transaction ({!latest_fit_scan}
      raises [Invalid_argument] on a stale scan). *)

  val latest_fit_scan : scan -> earliest:int -> procs:int -> dur:int -> int option
  (** Exactly [latest_fit txn ~earliest ~finish_by ~procs ~dur] for the
      scan's transaction and [finish_by], answered in O(log R) (pinned
      against {!latest_fit} by a qcheck property in
      [test_platform.ml]). *)
end

val segments : t -> from_:int -> until:int -> (int * int * int) list
(** Step-function view over a window: [(start, finish, available)] triples
    covering [\[from_, until)] in increasing time order. *)

val fold_segments :
  t -> from_:int -> until:int -> init:'a -> f:('a -> start:int -> finish:int -> avail:int -> 'a) -> 'a
(** Fold over the window's segments without materializing them. *)

val busy_rectangles : t -> from_:int -> until:int -> Reservation.t list
(** Decompose the window's busy profile ([procs - available]) into maximal
    rectangles: a list of reservations that, applied to an empty calendar,
    reproduces exactly this calendar's availability over
    [\[from_, until)].  Used for display (Gantt charts) when the original
    reservation list is no longer at hand. *)

val busy_series : t -> from_:int -> until:int -> step:int -> float list
(** Number of {e reserved} processors sampled every [step] seconds across
    the window — the "reservation schedule" time series the paper
    correlates between generation methods. *)

val pp : Format.formatter -> t -> unit
(** Render breakpoints (debugging aid). *)
