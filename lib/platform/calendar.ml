(* The calendar is a thin policy layer over {!Mp_index}: the index owns
   the step-function representation (a balanced breakpoint tree with
   hierarchical (min, max) availability summaries and lazy range-add
   tags — see lib/index/mp_index.ml and "Calendar index" in DESIGN.md),
   while this module owns the reservation-level contract: the
   [Overcommitted] exception, argument validation messages, and the
   derived views (segments, busy profile, series).

   Every operation the schedulers lean on — [reserve], [release],
   [earliest_fit], [latest_fit], point lookups, window minima — is
   O(log R) in the number of breakpoints, both on the persistent form
   and inside a {!Txn}.  All of them are output-preserving with respect
   to a brute-force walk of the step function (pinned by the qcheck
   reference model in test/test_platform.ml and test/test_index.ml). *)

module Index = Mp_index

(* Observability probes (single branch, no allocation when Mp_obs is
   disabled): call counts and latency of the fit queries — the hot
   path — plus [reserve].  Tree-level work (descents, node visits) is
   counted by {!Mp_index} under ["index.*"]. *)
let c_earliest_fit = Mp_obs.Counter.make "calendar.earliest_fit.calls"
let c_latest_fit = Mp_obs.Counter.make "calendar.latest_fit.calls"
let c_reserve = Mp_obs.Counter.make "calendar.reserve.calls"
let t_earliest_fit = Mp_obs.Timer.make "calendar.earliest_fit"
let t_latest_fit = Mp_obs.Timer.make "calendar.latest_fit"
let t_reserve = Mp_obs.Timer.make "calendar.reserve"

type t = { procs : int; idx : Index.t }

exception Overcommitted of Reservation.t

let create ~procs =
  if procs <= 0 then invalid_arg "Calendar.create: procs <= 0";
  { procs; idx = Index.create ~procs }

let procs t = t.procs
let breakpoints t = Index.breakpoints t.idx
let available_at t time = Index.available_at t.idx time

let fold_segments t ~from_ ~until ~init ~f =
  Index.fold_segments t.idx ~from_ ~until ~init ~f

let segments t ~from_ ~until =
  List.rev
    (fold_segments t ~from_ ~until ~init:[] ~f:(fun acc ~start ~finish ~avail ->
         (start, finish, avail) :: acc))

let min_available t ~from_ ~until =
  if from_ >= until then invalid_arg "Calendar.min_available: empty window";
  Index.min_in t.idx ~from_ ~until

let average_available t ~from_ ~until =
  if from_ >= until then invalid_arg "Calendar.average_available: empty window";
  let total =
    fold_segments t ~from_ ~until ~init:0. ~f:(fun acc ~start ~finish ~avail ->
        acc +. (float_of_int avail *. float_of_int (finish - start)))
  in
  total /. float_of_int (until - from_)

let can_reserve t (r : Reservation.t) =
  Index.can_reserve t.idx ~start:r.start ~finish:r.finish ~procs:r.procs

let reserve t (r : Reservation.t) =
  Mp_obs.Counter.incr c_reserve;
  let t0 = Mp_obs.Timer.start () in
  match Index.reserve t.idx ~start:r.start ~finish:r.finish ~procs:r.procs with
  | None -> raise (Overcommitted r)
  | Some idx ->
      let t' = { t with idx } in
      Mp_obs.Timer.stop t_reserve t0;
      t'

let reserve_opt t r = if can_reserve t r then Some (reserve t r) else None

let release t (r : Reservation.t) =
  match Index.release t.idx ~start:r.start ~finish:r.finish ~procs:r.procs with
  | Some idx -> { t with idx }
  | None -> invalid_arg "Calendar.release: reservation was not held on this calendar"

let earliest_fit t ~after ~procs ~dur =
  if procs < 1 then invalid_arg "Calendar.earliest_fit: procs < 1";
  if dur < 1 then invalid_arg "Calendar.earliest_fit: dur < 1";
  Mp_obs.Counter.incr c_earliest_fit;
  let t0 = Mp_obs.Timer.start () in
  let r =
    if procs > t.procs then None else Index.earliest_fit t.idx ~after ~procs ~dur
  in
  Mp_obs.Timer.stop t_earliest_fit t0;
  r

let latest_fit t ~earliest ~finish_by ~procs ~dur =
  if procs < 1 then invalid_arg "Calendar.latest_fit: procs < 1";
  if dur < 1 then invalid_arg "Calendar.latest_fit: dur < 1";
  Mp_obs.Counter.incr c_latest_fit;
  let t0 = Mp_obs.Timer.start () in
  let r =
    if procs > t.procs then None
    else if finish_by - dur < earliest then None
    else Index.latest_fit t.idx ~earliest ~finish_by ~procs ~dur
  in
  Mp_obs.Timer.stop t_latest_fit t0;
  r

(* --- Txn -------------------------------------------------------------- *)

(* The single-owner incremental form: a mutable root pointer into the
   shared tree ({!Mp_index.Txn}).  [start] and [commit] are O(1) — no
   arrays are copied, the snapshot a transaction was forked from is
   never affected — and each reserve path-copies O(log R) nodes.  A Txn
   answers every query exactly as the persistent calendar obtained by
   folding the same reservations with {!reserve} would (pinned by a
   qcheck property in test_platform.ml). *)
module Txn = struct
  type cal = t

  type nonrec t = { procs : int; itx : Index.Txn.t }

  let start (cal : cal) = { procs = cal.procs; itx = Index.Txn.start cal.idx }
  let procs t = t.procs
  let available_at t time = Index.Txn.available_at t.itx time

  let can_reserve t (r : Reservation.t) =
    Index.Txn.can_reserve t.itx ~start:r.start ~finish:r.finish ~procs:r.procs

  let reserve t (r : Reservation.t) =
    Mp_obs.Counter.incr c_reserve;
    let t0 = Mp_obs.Timer.start () in
    if not (Index.Txn.reserve t.itx ~start:r.start ~finish:r.finish ~procs:r.procs)
    then raise (Overcommitted r);
    Mp_obs.Timer.stop t_reserve t0

  let reserve_opt t r = if can_reserve t r then (reserve t r; true) else false

  let release t (r : Reservation.t) =
    if not (Index.Txn.release t.itx ~start:r.start ~finish:r.finish ~procs:r.procs)
    then invalid_arg "Calendar.Txn.release: reservation was not held on this transaction"

  (* Persistent calendar equal to the transaction's current state.  The
     breakpoint set is exactly the persistent fold's — the index inserts
     cut points at reservation bounds and never removes any, matching
     the persistent [reserve]. *)
  let commit (t : t) : cal = { procs = t.procs; idx = Index.Txn.commit t.itx }

  let earliest_fit ?(limit = max_int) t ~after ~procs ~dur =
    if procs < 1 then invalid_arg "Calendar.Txn.earliest_fit: procs < 1";
    if dur < 1 then invalid_arg "Calendar.Txn.earliest_fit: dur < 1";
    Mp_obs.Counter.incr c_earliest_fit;
    let t0 = Mp_obs.Timer.start () in
    let r =
      if procs > t.procs then None
      else Index.Txn.earliest_fit ~limit t.itx ~after ~procs ~dur
    in
    Mp_obs.Timer.stop t_earliest_fit t0;
    r

  let latest_fit t ~earliest ~finish_by ~procs ~dur =
    if procs < 1 then invalid_arg "Calendar.Txn.latest_fit: procs < 1";
    if dur < 1 then invalid_arg "Calendar.Txn.latest_fit: dur < 1";
    Mp_obs.Counter.incr c_latest_fit;
    let t0 = Mp_obs.Timer.start () in
    let r =
      if procs > t.procs then None
      else if finish_by - dur < earliest then None
      else Index.Txn.latest_fit t.itx ~earliest ~finish_by ~procs ~dur
    in
    Mp_obs.Timer.stop t_latest_fit t0;
    r

  (* With O(log R) backward queries the scan context no longer carries a
     suffix-max table: it is just a staleness stamp (the transaction's
     generation at capture time) plus the fixed [finish_by].  The stale-
     scan contract is unchanged — any subsequent reserve/release on the
     transaction invalidates outstanding scans. *)
  type scan = { txn : t; sc_gen : int; finish_by : int }

  let latest_scan t ~finish_by =
    { txn = t; sc_gen = Index.Txn.generation t.itx; finish_by }

  let latest_fit_scan sc ~earliest ~procs ~dur =
    if procs < 1 then invalid_arg "Calendar.Txn.latest_fit_scan: procs < 1";
    if dur < 1 then invalid_arg "Calendar.Txn.latest_fit_scan: dur < 1";
    let t = sc.txn in
    if sc.sc_gen <> Index.Txn.generation t.itx then
      invalid_arg "Calendar.Txn.latest_fit_scan: stale scan (transaction changed)";
    Mp_obs.Counter.incr c_latest_fit;
    let t0 = Mp_obs.Timer.start () in
    let r =
      if procs > t.procs then None
      else if sc.finish_by - dur < earliest then None
      else Index.Txn.latest_fit t.itx ~earliest ~finish_by:sc.finish_by ~procs ~dur
    in
    Mp_obs.Timer.stop t_latest_fit t0;
    r
end

(* Bulk construction: apply the reservations through one transaction
   instead of one persistent version per reservation.  The fold order and
   the raising behavior are those of folding [reserve] — [Txn.reserve]
   raises [Overcommitted] on the same first infeasible reservation — and
   the committed calendar's breakpoint set is identical entry for entry
   (pinned by a qcheck property in test_platform.ml). *)
let of_reservations ~procs rs =
  let txn = Txn.start (create ~procs) in
  List.iter (Txn.reserve txn) (List.sort Reservation.compare_by_start rs);
  Txn.commit txn

let busy_rectangles t ~from_ ~until =
  if from_ >= until then invalid_arg "Calendar.busy_rectangles: empty window";
  (* Sweep the segments keeping a stack of open rectangles; busy-level
     increases open rectangles, decreases close the most recent ones
     (their processor counts split as needed). *)
  let open_stack = ref [] (* (start, procs) most recent first *) in
  let finished = ref [] in
  let close_until time target =
    (* shrink the stack so that its total equals [target] *)
    let rec go () =
      let total = List.fold_left (fun acc (_, p) -> acc + p) 0 !open_stack in
      if total > target then begin
        match !open_stack with
        | [] -> assert false
        | (start, p) :: rest ->
            let excess = total - target in
            if p <= excess then begin
              open_stack := rest;
              finished := Reservation.make ~start ~finish:time ~procs:p :: !finished;
              go ()
            end
            else begin
              open_stack := (start, p - excess) :: rest;
              finished := Reservation.make ~start ~finish:time ~procs:excess :: !finished
            end
      end
    in
    go ()
  in
  let current_busy () = List.fold_left (fun acc (_, p) -> acc + p) 0 !open_stack in
  fold_segments t ~from_ ~until ~init:() ~f:(fun () ~start ~finish:_ ~avail ->
      let busy = t.procs - avail in
      let cur = current_busy () in
      if busy > cur then open_stack := (start, busy - cur) :: !open_stack
      else if busy < cur then close_until start busy);
  close_until until 0;
  List.rev !finished

let busy_series t ~from_ ~until ~step =
  if step <= 0 then invalid_arg "Calendar.busy_series: step <= 0";
  let rec go acc time =
    if time >= until then List.rev acc
    else go (float_of_int (t.procs - available_at t time) :: acc) (time + step)
  in
  go [] from_

let pp ppf t =
  Format.fprintf ppf "@[<v>calendar p=%d@," t.procs;
  Index.iter_breakpoints t.idx (fun time v ->
      if time <> min_int then Format.fprintf ppf "  @%d -> %d@," time v
      else Format.fprintf ppf "  @-inf -> %d@," v);
  Format.fprintf ppf "@]"
