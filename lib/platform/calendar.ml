module Imap = Map.Make (Int)

(* Observability probes (single branch, no allocation when Mp_obs is
   disabled): call counts and latency of the fit queries — the hot path —
   plus which query path (array vs map) answered. *)
let c_earliest_fit = Mp_obs.Counter.make "calendar.earliest_fit.calls"
let c_latest_fit = Mp_obs.Counter.make "calendar.latest_fit.calls"
let c_reserve = Mp_obs.Counter.make "calendar.reserve.calls"
let c_array_path = Mp_obs.Counter.make "calendar.fit.array_path"
let c_map_path = Mp_obs.Counter.make "calendar.fit.map_path"
let t_earliest_fit = Mp_obs.Timer.make "calendar.earliest_fit"
let t_latest_fit = Mp_obs.Timer.make "calendar.latest_fit"
let t_reserve = Mp_obs.Timer.make "calendar.reserve"

(* [steps] maps a breakpoint time to the number of available processors
   from that time (inclusive) until the next breakpoint.  Invariants:
   - there is always a breakpoint at [min_int] (so lookups never miss);
   - values lie in [0, procs];
   - the value of the last breakpoint extends to +infinity.

   [bps] is a lazily materialized array view of [steps] (times and values
   in ascending order).  The fit queries are the hot path of the
   scheduling algorithms — hundreds of calls against the same calendar
   version — and scanning a flat array is an order of magnitude cheaper
   than walking the map.  But bulk construction (the batch simulator
   reserves tens of thousands of jobs, querying each version exactly
   once) must not rebuild an O(R) array per version, so the array is only
   materialized once a version has answered a few queries; before that,
   queries walk the map.

   [bmax] / [bmin] are block-maximum / block-minimum indexes over [vs]
   ([bmax.(b)] = max of block [b] of [bsize] consecutive segments, [bmin]
   the min): when a fit walk lands on a block whose maximum availability
   is below the requested processor count, every segment of the block is
   blocked and the walk skips the whole block; dually, a block whose
   minimum clears the request is uniformly free and the window scans step
   over it whole.  Both skips are exact, and together they turn the long
   uniform runs of a loaded calendar from [bsize] steps into one. *)
type view = { ts : int array; vs : int array; bmax : int array; bmin : int array }

type t = {
  procs : int;
  steps : int Imap.t;
  bps : view Lazy.t;
  mutable queries : int;
}

exception Overcommitted of Reservation.t

let force_threshold = 3
let bsize = 8

(* Recompute [bmax] / [bmin] exactly for blocks [from_block .. to_block]
   of the first [n] entries of [vs] (the arrays may carry capacity slack
   past [n]). *)
let refresh_blocks bmax bmin vs n ~from_block ~to_block =
  for b = from_block to to_block do
    let hi = min n ((b + 1) * bsize) - 1 in
    let mx = ref vs.(b * bsize) and mn = ref vs.(b * bsize) in
    for j = (b * bsize) + 1 to hi do
      let v = vs.(j) in
      if v > !mx then mx := v;
      if v < !mn then mn := v
    done;
    bmax.(b) <- !mx;
    bmin.(b) <- !mn
  done

let view_of_arrays (ts, vs) =
  let n = Array.length ts in
  let nb = (n + bsize - 1) / bsize in
  let bmax = Array.make nb 0 and bmin = Array.make nb 0 in
  refresh_blocks bmax bmin vs n ~from_block:0 ~to_block:(nb - 1);
  { ts; vs; bmax; bmin }

let mk ?view procs steps =
  {
    procs;
    steps;
    queries = 0;
    bps =
      (match view with
      | Some v -> Lazy.from_val v
      | None ->
          lazy
            (let n = Imap.cardinal steps in
             let ts = Array.make n 0 and vs = Array.make n 0 in
             let i = ref 0 in
             Imap.iter
               (fun time v ->
                 ts.(!i) <- time;
                 vs.(!i) <- v;
                 incr i)
               steps;
             view_of_arrays (ts, vs)));
  }

(* The array view, if this calendar version is hot enough to warrant it.
   A calendar shared across worker domains can see two domains force
   [bps] at once, which raises [Lazy.Undefined] in the domain that loses
   the race (OCaml 5 lazy semantics); the loser answers from the map this
   once — both paths return identical results (pinned by the qcheck
   properties in test_platform.ml), so this changes no scheduler output. *)
let arrays t =
  if Lazy.is_val t.bps then Some (Lazy.force t.bps)
  else begin
    t.queries <- t.queries + 1;
    if t.queries > force_threshold then
      match Lazy.force t.bps with
      | v -> Some v
      | exception Lazy.Undefined -> None
    else None
  end

let create ~procs =
  if procs <= 0 then invalid_arg "Calendar.create: procs <= 0";
  mk procs (Imap.singleton min_int procs)

let procs t = t.procs
let breakpoints t = Imap.cardinal t.steps

(* Index of the segment containing [time] among the first [n] entries:
   greatest i with ts.(i) <= time.  Always defined thanks to the min_int
   sentinel.  ([n] is passed explicitly because a {!Txn} keeps capacity
   slack past its logical length.) *)
let seg_index_n ts n time =
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if ts.(mid) <= time then lo := mid else hi := mid - 1
  done;
  !lo

let seg_index ts time = seg_index_n ts (Array.length ts) time

let value_before_or_at steps time =
  match Imap.find_last (fun k -> k <= time) steps with
  | _, v -> v
  | exception Not_found -> assert false (* min_int breakpoint always present *)

let available_at t time =
  match arrays t with
  | Some { ts; vs; _ } -> vs.(seg_index ts time)
  | None -> value_before_or_at t.steps time

(* Ensure a breakpoint exists exactly at [time] (same value as the segment
   containing it), so that a following range update can stop cleanly. *)
let cut steps time =
  if time = min_int || Imap.mem time steps then steps
  else Imap.add time (value_before_or_at steps time) steps

(* Map-based fold: never forces the array (used by construction-time
   checks). *)
let fold_segments t ~from_ ~until ~init ~f =
  if from_ >= until then init
  else begin
    let v0 = value_before_or_at t.steps from_ in
    let seq = Imap.to_seq_from (from_ + 1) t.steps in
    let rec go acc seg_start seg_val seq =
      match seq () with
      | Seq.Nil -> f acc ~start:seg_start ~finish:until ~avail:seg_val
      | Seq.Cons ((time, v), rest) ->
          if time >= until then f acc ~start:seg_start ~finish:until ~avail:seg_val
          else begin
            let acc = f acc ~start:seg_start ~finish:time ~avail:seg_val in
            go acc time v rest
          end
    in
    go init from_ v0 seq
  end

let segments t ~from_ ~until =
  List.rev
    (fold_segments t ~from_ ~until ~init:[] ~f:(fun acc ~start ~finish ~avail ->
         (start, finish, avail) :: acc))

let min_available t ~from_ ~until =
  if from_ >= until then invalid_arg "Calendar.min_available: empty window";
  fold_segments t ~from_ ~until ~init:t.procs ~f:(fun acc ~start:_ ~finish:_ ~avail ->
      min acc avail)

let average_available t ~from_ ~until =
  if from_ >= until then invalid_arg "Calendar.average_available: empty window";
  let total =
    fold_segments t ~from_ ~until ~init:0. ~f:(fun acc ~start ~finish ~avail ->
        acc +. (float_of_int avail *. float_of_int (finish - start)))
  in
  total /. float_of_int (until - from_)

let can_reserve t (r : Reservation.t) =
  r.procs <= min_available t ~from_:r.start ~until:r.finish

(* Breakpoints of [steps] within [start, finish), as (time, value) pairs in
   descending order. *)
let affected_breakpoints steps ~start ~finish =
  let rec collect acc seq =
    match seq () with
    | Seq.Nil -> acc
    | Seq.Cons ((time, v), rest) -> if time >= finish then acc else collect ((time, v) :: acc) rest
  in
  collect [] (Imap.to_seq_from start steps)

(* Successor arrays of [reserve r] built by patching the parent's
   materialized arrays: a breakpoint is inserted at [r.start] / [r.finish]
   when missing (same value as its enclosing segment, mirroring [cut]) and
   [r.procs] is subtracted from every breakpoint in [r.start, r.finish).
   Equal, entry for entry, to materializing the successor's map — pinned
   against the map path by the qcheck properties in test_platform.ml. *)
let patch_view { ts; vs; _ } (r : Reservation.t) =
  let n = Array.length ts in
  let i0 = seg_index ts r.start in
  let ins_start = ts.(i0) <> r.start in
  let i1 = seg_index ts r.finish in
  let ins_fin = ts.(i1) <> r.finish in
  let n' = n + (if ins_start then 1 else 0) + (if ins_fin then 1 else 0) in
  let ts' = Array.make n' 0 and vs' = Array.make n' 0 in
  Array.blit ts 0 ts' 0 (i0 + 1);
  Array.blit vs 0 vs' 0 (i0 + 1);
  let w = ref (i0 + 1) in
  if ins_start then begin
    ts'.(!w) <- r.start;
    vs'.(!w) <- vs.(i0);
    incr w
  end;
  Array.blit ts (i0 + 1) ts' !w (i1 - i0);
  Array.blit vs (i0 + 1) vs' !w (i1 - i0);
  w := !w + (i1 - i0);
  if ins_fin then begin
    ts'.(!w) <- r.finish;
    vs'.(!w) <- vs.(i1);
    incr w
  end;
  Array.blit ts (i1 + 1) ts' !w (n - i1 - 1);
  Array.blit vs (i1 + 1) vs' !w (n - i1 - 1);
  let j = ref (if ins_start then i0 + 1 else i0) in
  while !j < n' && ts'.(!j) < r.finish do
    vs'.(!j) <- vs'.(!j) - r.procs;
    incr j
  done;
  view_of_arrays (ts', vs')

let reserve t (r : Reservation.t) =
  Mp_obs.Counter.incr c_reserve;
  let t0 = Mp_obs.Timer.start () in
  if not (can_reserve t r) then raise (Overcommitted r);
  let steps = cut (cut t.steps r.start) r.finish in
  (* Only breakpoints inside [start, finish) change, so touch just those
     (a calendar holds thousands of breakpoints; a reservation overlaps a
     handful). *)
  let affected = affected_breakpoints steps ~start:r.start ~finish:r.finish in
  let steps =
    List.fold_left (fun m (time, v) -> Imap.add time (v - r.procs) m) steps affected
  in
  (* When this version already paid for its array view, hand the successor
     a patched copy instead of making it re-materialize O(R) from the map
     on its next hot query: reserve-then-query chains (every backward /
     list-scheduling pass) stay on the array path throughout. *)
  let view = if Lazy.is_val t.bps then Some (patch_view (Lazy.force t.bps) r) else None in
  let t' = mk ?view t.procs steps in
  Mp_obs.Timer.stop t_reserve t0;
  t'

let reserve_opt t r = if can_reserve t r then Some (reserve t r) else None

let release t (r : Reservation.t) =
  (* Inverse of [reserve]: only valid for a reservation previously
     subtracted, which the capacity check enforces. *)
  let steps = cut (cut t.steps r.start) r.finish in
  let affected = affected_breakpoints steps ~start:r.start ~finish:r.finish in
  List.iter
    (fun (_, v) ->
      if v + r.procs > t.procs then
        invalid_arg "Calendar.release: reservation was not held on this calendar")
    affected;
  let steps =
    List.fold_left (fun m (time, v) -> Imap.add time (v + r.procs) m) steps affected
  in
  mk t.procs steps

(* --- earliest_fit ----------------------------------------------------- *)

(* Candidate starts only need to be considered at [after] and at segment
   boundaries where availability rises; on failure the candidate jumps past
   the blocking breakpoint, so the scan visits each breakpoint at most
   once: O(R). *)

(* The walk over the first [n] entries of the arrays, shared by the
   persistent array path ([n] = full length) and {!Txn} ([n] = logical
   length).  From segment index [i] with candidate start [s] (s inside
   segment i), either the window [s, s+dur) is clear, or restart past the
   first blocking segment; the forward search for that restart point skips
   a whole block at once when its maximum availability is below [procs]
   (every segment of the block blocks, so none can host the restart). *)
let earliest_fit_walk ts vs bmax bmin n ~after ~limit ~procs ~dur =
  let rec attempt i s =
    if s > limit then None
    else if vs.(i) < procs then begin
      let rec next j =
        if j >= n then None
        else if bmax.(j / bsize) < procs then next (((j / bsize) + 1) * bsize)
        else if vs.(j) >= procs then Some j
        else next (j + 1)
      in
      match next (i + 1) with None -> None | Some j -> attempt j ts.(j)
    end
    else begin
      let limit = s + dur in
      (* A uniformly free block passes the window check whole: every
         segment in it would take the [scan (j + 1)] branch, and if the
         jump overshoots an index with [ts.(j) >= limit] the landing
         check returns the same [Some s]. *)
      let rec scan j =
        if j >= n || ts.(j) >= limit then Some s
        else if bmin.(j / bsize) >= procs then scan (((j / bsize) + 1) * bsize)
        else if vs.(j) < procs then attempt j ts.(j)
        else scan (j + 1)
      in
      scan (i + 1)
    end
  in
  attempt (seg_index_n ts n after) after

let earliest_fit_arrays { ts; vs; bmax; bmin } ~after ~procs ~dur =
  earliest_fit_walk ts vs bmax bmin (Array.length ts) ~after ~limit:max_int ~procs ~dur

let earliest_fit_map steps ~after ~procs ~dur =
  (* Smallest time >= s with availability >= procs; None if availability
     stays below procs through the final, unbounded segment. *)
  let next_clear s =
    if value_before_or_at steps s >= procs then Some s
    else begin
      let rec go seq =
        match seq () with
        | Seq.Nil -> None
        | Seq.Cons ((time, v), rest) -> if v >= procs then Some time else go rest
      in
      go (Imap.to_seq_from (s + 1) steps)
    end
  in
  let first_block s limit =
    let rec go seq =
      match seq () with
      | Seq.Nil -> None
      | Seq.Cons ((time, v), rest) ->
          if time >= limit then None else if v < procs then Some time else go rest
    in
    go (Imap.to_seq_from (s + 1) steps)
  in
  let rec search s =
    match next_clear s with
    | None -> None
    | Some s -> ( match first_block s (s + dur) with None -> Some s | Some b -> search b)
  in
  search after

let earliest_fit t ~after ~procs ~dur =
  if procs < 1 then invalid_arg "Calendar.earliest_fit: procs < 1";
  if dur < 1 then invalid_arg "Calendar.earliest_fit: dur < 1";
  Mp_obs.Counter.incr c_earliest_fit;
  let t0 = Mp_obs.Timer.start () in
  let r =
    if procs > t.procs then None
    else begin
      match arrays t with
      | Some arr ->
          Mp_obs.Counter.incr c_array_path;
          earliest_fit_arrays arr ~after ~procs ~dur
      | None ->
          Mp_obs.Counter.incr c_map_path;
          earliest_fit_map t.steps ~after ~procs ~dur
    end
  in
  Mp_obs.Timer.stop t_earliest_fit t0;
  r

(* --- latest_fit ------------------------------------------------------- *)

(* Scan segments backward from the one containing [finish_by - 1],
   maintaining [finish_limit], the latest possible window end given the
   blocked segments seen so far; the invariant is that
   [ts.(i+1), finish_limit) is clear.  A blocked segment whose whole block
   is blocked jumps straight to the previous block with [finish_limit] set
   to the block's first breakpoint — exactly where the one-segment-at-a-
   time walk would have arrived (every skipped step only lowers
   [finish_limit], and the early exit on [finish_limit - dur < earliest]
   is monotone in it, so the outcome is unchanged). *)
let latest_fit_walk_from ts vs bmax bmin ~start_index ~finish_limit ~earliest ~procs ~dur =
  let rec scan i finish_limit =
    if finish_limit - dur < earliest then None
    else if vs.(i) >= procs then begin
      let s = finish_limit - dur in
      if s >= ts.(i) then Some s
      else if i = 0 then Some s
      else begin
        (* A uniformly free block: the stepwise walk would cross it with
           [finish_limit] unchanged, stopping inside only to answer
           [Some s] at the segment containing [s] (the block's first
           breakpoint is at most [s] exactly when that segment is in this
           block — [ts.(0)] is the [min_int] sentinel, so block 0 always
           is). *)
        let b = i / bsize in
        if bmin.(b) >= procs then
          if s >= ts.(b * bsize) then Some s
          else scan ((b * bsize) - 1) finish_limit
        else scan (i - 1) finish_limit
      end
    end
    else begin
      let b = i / bsize in
      if bmax.(b) < procs then
        if b = 0 then None else scan ((b * bsize) - 1) ts.(b * bsize)
      else if i = 0 then None
      else scan (i - 1) ts.(i)
    end
  in
  scan start_index finish_limit

let latest_fit_walk ts vs bmax bmin n ~earliest ~finish_by ~procs ~dur =
  latest_fit_walk_from ts vs bmax bmin
    ~start_index:(seg_index_n ts n (finish_by - 1))
    ~finish_limit:finish_by ~earliest ~procs ~dur

let latest_fit_arrays { ts; vs; bmax; bmin } ~earliest ~finish_by ~procs ~dur =
  latest_fit_walk ts vs bmax bmin (Array.length ts) ~earliest ~finish_by ~procs ~dur

let latest_fit_map t ~earliest ~finish_by ~procs ~dur =
  let segs = segments t ~from_:(min earliest (finish_by - dur)) ~until:finish_by in
  let rec scan finish_limit = function
    | [] ->
        let s = finish_limit - dur in
        if s >= earliest then Some s else None
    | (seg_start, _, avail) :: rest ->
        if seg_start >= finish_limit then scan finish_limit rest
        else if avail >= procs then begin
          let s = finish_limit - dur in
          if s >= seg_start then if s >= earliest then Some s else None
          else scan finish_limit rest
        end
        else begin
          let finish_limit = seg_start in
          if finish_limit - dur < earliest then None else scan finish_limit rest
        end
  in
  scan finish_by (List.rev segs)

let latest_fit t ~earliest ~finish_by ~procs ~dur =
  if procs < 1 then invalid_arg "Calendar.latest_fit: procs < 1";
  if dur < 1 then invalid_arg "Calendar.latest_fit: dur < 1";
  Mp_obs.Counter.incr c_latest_fit;
  let t0 = Mp_obs.Timer.start () in
  let r =
    if procs > t.procs then None
    else if finish_by - dur < earliest then None
    else begin
      match arrays t with
      | Some arr ->
          Mp_obs.Counter.incr c_array_path;
          latest_fit_arrays arr ~earliest ~finish_by ~procs ~dur
      | None ->
          Mp_obs.Counter.incr c_map_path;
          latest_fit_map t ~earliest ~finish_by ~procs ~dur
    end
  in
  Mp_obs.Timer.stop t_latest_fit t0;
  r

(* --- Txn -------------------------------------------------------------- *)

(* A mutable, single-owner view for the linear reserve-then-query passes
   (backward deadline scheduling, CPA mapping, list scheduling): those
   loops thread [Calendar.reserve]'s result straight into the next query
   and never revisit an intermediate version, so persistence buys nothing
   there while every step pays O(R) array patching plus map surgery.  A
   Txn copies the segment arrays once and then reserves in place: a
   membership scan, at most two [Array.blit] insertions, a range
   decrement, and a block-maximum refresh.  Queries run the exact walks
   of the persistent array path, so a Txn answers every query identically
   to the persistent calendar that would result from the same reserves
   (pinned by a qcheck property in test_platform.ml). *)
module Txn = struct
  type cal = t

  type nonrec t = {
    procs : int;
    mutable ts : int array;
    mutable vs : int array;
    mutable bmax : int array;
    mutable bmin : int array;
    mutable n : int; (* logical length; the arrays carry capacity slack *)
    mutable loose : int; (* reserves since the block extrema were last exact *)
    mutable gen : int; (* bumped by every state change; guards {!scan} reuse *)
  }

  (* Slack so that the first reservations never reallocate. *)
  let slack = 64

  (* Full extrema refreshes are amortized over this many inserting
     reserves (see [reserve]). *)
  let refresh_every = 16

  let of_steps procs steps =
    let n = Imap.cardinal steps in
    let cap = n + slack in
    let ts = Array.make cap 0 and vs = Array.make cap 0 in
    let i = ref 0 in
    Imap.iter
      (fun time v ->
        ts.(!i) <- time;
        vs.(!i) <- v;
        incr i)
      steps;
    let nb = (cap + bsize - 1) / bsize in
    let bmax = Array.make nb 0 and bmin = Array.make nb 0 in
    refresh_blocks bmax bmin vs n ~from_block:0 ~to_block:(((n + bsize - 1) / bsize) - 1);
    { procs; ts; vs; bmax; bmin; n; loose = 0; gen = 0 }

  let start (cal : cal) =
    match arrays cal with
    | None -> of_steps cal.procs cal.steps
    | Some { ts; vs; bmax; bmin } ->
        let n = Array.length ts in
        let cap = n + slack in
        let ts' = Array.make cap 0 and vs' = Array.make cap 0 in
        Array.blit ts 0 ts' 0 n;
        Array.blit vs 0 vs' 0 n;
        let nb = (cap + bsize - 1) / bsize in
        let bmax' = Array.make nb 0 and bmin' = Array.make nb 0 in
        Array.blit bmax 0 bmax' 0 (Array.length bmax);
        Array.blit bmin 0 bmin' 0 (Array.length bmin);
        { procs = cal.procs; ts = ts'; vs = vs'; bmax = bmax'; bmin = bmin'; n; loose = 0; gen = 0 }

  let procs t = t.procs
  let available_at t time = t.vs.(seg_index_n t.ts t.n time)

  let can_reserve t (r : Reservation.t) =
    (* Uniformly free blocks pass whole, as in the fit walks: overshooting
       an index with [ts.(i) >= r.finish] lands on the same [true]. *)
    let rec ok i =
      i >= t.n
      || t.ts.(i) >= r.finish
      ||
      if t.bmin.(i / bsize) >= r.procs then ok (((i / bsize) + 1) * bsize)
      else t.vs.(i) >= r.procs && ok (i + 1)
    in
    ok (seg_index_n t.ts t.n r.start)

  let grow t =
    let cap = 2 * Array.length t.ts in
    let ts = Array.make cap 0 and vs = Array.make cap 0 in
    Array.blit t.ts 0 ts 0 t.n;
    Array.blit t.vs 0 vs 0 t.n;
    let nb = (cap + bsize - 1) / bsize in
    let bmax = Array.make nb 0 and bmin = Array.make nb 0 in
    Array.blit t.bmax 0 bmax 0 (Array.length t.bmax);
    Array.blit t.bmin 0 bmin 0 (Array.length t.bmin);
    t.ts <- ts;
    t.vs <- vs;
    t.bmax <- bmax;
    t.bmin <- bmin

  (* Insert breakpoint (time, v) at position [idx], shifting the tail. *)
  let insert t idx time v =
    Array.blit t.ts idx t.ts (idx + 1) (t.n - idx);
    Array.blit t.vs idx t.vs (idx + 1) (t.n - idx);
    t.ts.(idx) <- time;
    t.vs.(idx) <- v;
    t.n <- t.n + 1

  let reserve t (r : Reservation.t) =
    Mp_obs.Counter.incr c_reserve;
    let t0 = Mp_obs.Timer.start () in
    if not (can_reserve t r) then raise (Overcommitted r);
    t.gen <- t.gen + 1;
    if t.n + 2 > Array.length t.ts then grow t;
    let n_before = t.n in
    let i0 = seg_index_n t.ts t.n r.start in
    (* Mirror [cut]: ensure breakpoints exactly at r.start / r.finish. *)
    let s0 =
      if t.ts.(i0) = r.start then i0
      else begin
        insert t (i0 + 1) r.start t.vs.(i0);
        i0 + 1
      end
    in
    let i1 = seg_index_n t.ts t.n r.finish in
    if t.ts.(i1) <> r.finish then insert t (i1 + 1) r.finish t.vs.(i1);
    let j = ref s0 in
    while !j < t.n && t.ts.(!j) < r.finish do
      t.vs.(!j) <- t.vs.(!j) - r.procs;
      incr j
    done;
    (* Entries below [s0] are untouched.  Blocks covering the decremented
       range get exact new extrema.  Blocks past it hold unchanged values,
       but the inserts shifted them right by [k <= 2] positions, so block
       [b]'s entries now come from the old blocks [b - 1] and [b]; merging
       each block's bounds with its left neighbour's (downward, so the
       right-hand side is always the pre-reserve value, and the block
       adjoining the recomputed range uses the saved pre-reserve bound)
       keeps [bmax] an upper bound and [bmin] a lower bound.  Conservative
       bounds only make the walks skip less, never answer differently, and
       a full refresh every [refresh_every] inserting reserves keeps the
       drift bounded — amortized O(R / refresh_every) against the O(R)
       per-reserve refresh this replaces, which dominated bulk loads. *)
    let k = t.n - n_before in
    let b0 = s0 / bsize in
    let bend = (!j - 1) / bsize in
    let nb = (t.n + bsize - 1) / bsize in
    if k = 0 then refresh_blocks t.bmax t.bmin t.vs t.n ~from_block:b0 ~to_block:bend
    else begin
      t.loose <- t.loose + 1;
      if t.loose >= refresh_every || bend >= nb - 1 then begin
        refresh_blocks t.bmax t.bmin t.vs t.n ~from_block:b0 ~to_block:(nb - 1);
        t.loose <- 0
      end
      else begin
        let old_max = t.bmax.(bend) and old_min = t.bmin.(bend) in
        refresh_blocks t.bmax t.bmin t.vs t.n ~from_block:b0 ~to_block:bend;
        for b = nb - 1 downto bend + 2 do
          if t.bmax.(b - 1) > t.bmax.(b) then t.bmax.(b) <- t.bmax.(b - 1);
          if t.bmin.(b - 1) < t.bmin.(b) then t.bmin.(b) <- t.bmin.(b - 1)
        done;
        if old_max > t.bmax.(bend + 1) then t.bmax.(bend + 1) <- old_max;
        if old_min < t.bmin.(bend + 1) then t.bmin.(bend + 1) <- old_min
      end
    end;
    Mp_obs.Timer.stop t_reserve t0

  let reserve_opt t r = if can_reserve t r then (reserve t r; true) else false

  (* Persistent calendar equal to the transaction's current state.  The
     steps map gets exactly the transaction's breakpoints — [reserve]
     inserts cut points at reservation bounds and never removes any,
     matching the persistent [reserve]'s [cut] — and the array view is
     handed over pre-materialized, trimmed to the logical length. *)
  let commit t =
    let steps = ref Imap.empty in
    for i = t.n - 1 downto 0 do
      steps := Imap.add t.ts.(i) t.vs.(i) !steps
    done;
    let nb = (t.n + bsize - 1) / bsize in
    let bmax = Array.sub t.bmax 0 nb and bmin = Array.sub t.bmin 0 nb in
    (* The transaction's bounds may be conservative (see [reserve]); the
       long-lived committed view gets exact ones. *)
    refresh_blocks bmax bmin t.vs t.n ~from_block:0 ~to_block:(nb - 1);
    let view : view =
      { ts = Array.sub t.ts 0 t.n; vs = Array.sub t.vs 0 t.n; bmax; bmin }
    in
    mk ~view t.procs !steps

  (* [limit] bounds the start times worth reporting: a walk whose earliest
     candidate start exceeds [limit] returns [None] without visiting the
     rest of the calendar.  Equivalent to running the unbounded query and
     dropping a result above [limit] — callers that ignore any such result
     (a start past [deadline - dur] can never make its deadline) use the
     bound to cut the scan short. *)
  let earliest_fit ?(limit = max_int) t ~after ~procs ~dur =
    if procs < 1 then invalid_arg "Calendar.Txn.earliest_fit: procs < 1";
    if dur < 1 then invalid_arg "Calendar.Txn.earliest_fit: dur < 1";
    Mp_obs.Counter.incr c_earliest_fit;
    let t0 = Mp_obs.Timer.start () in
    let r =
      if procs > t.procs then None
      else begin
        Mp_obs.Counter.incr c_array_path;
        earliest_fit_walk t.ts t.vs t.bmax t.bmin t.n ~after ~limit ~procs ~dur
      end
    in
    Mp_obs.Timer.stop t_earliest_fit t0;
    r

  let latest_fit t ~earliest ~finish_by ~procs ~dur =
    if procs < 1 then invalid_arg "Calendar.Txn.latest_fit: procs < 1";
    if dur < 1 then invalid_arg "Calendar.Txn.latest_fit: dur < 1";
    Mp_obs.Counter.incr c_latest_fit;
    let t0 = Mp_obs.Timer.start () in
    let r =
      if procs > t.procs then None
      else if finish_by - dur < earliest then None
      else begin
        Mp_obs.Counter.incr c_array_path;
        latest_fit_walk t.ts t.vs t.bmax t.bmin t.n ~earliest ~finish_by ~procs ~dur
      end
    in
    Mp_obs.Timer.stop t_latest_fit t0;
    r

  (* A placement evaluates dozens of candidate ⟨procs, dur⟩ pairs against
     the same calendar state and the same [finish_by], and each backward
     walk re-descends the same run of breakpoints below the deadline.  A
     scan context captures that shared prefix once: [smax.(k)] = maximum
     availability over segment indices [k .. hi] (the segment holding
     [finish_by - 1]).  A query then finds the latest segment clear for
     its processor count by binary search on the non-increasing [smax] and
     enters the walk right there, with exactly the [finish_limit] the
     stepwise descent would have carried to that segment (every index
     above it is blocked for [procs], so the descent only lowers the
     limit to that segment's successor breakpoint, and its early exit on
     [finish_limit - dur < earliest] is subsumed by the same check at the
     entry point). *)
  type scan = { txn : t; sc_gen : int; finish_by : int; hi : int; smax : int array }

  let latest_scan t ~finish_by =
    let hi = seg_index_n t.ts t.n (finish_by - 1) in
    let smax = Array.make (hi + 2) 0 in
    for k = hi downto 0 do
      smax.(k) <- (if t.vs.(k) > smax.(k + 1) then t.vs.(k) else smax.(k + 1))
    done;
    { txn = t; sc_gen = t.gen; finish_by; hi; smax }

  let latest_fit_scan sc ~earliest ~procs ~dur =
    if procs < 1 then invalid_arg "Calendar.Txn.latest_fit_scan: procs < 1";
    if dur < 1 then invalid_arg "Calendar.Txn.latest_fit_scan: dur < 1";
    let t = sc.txn in
    if sc.sc_gen <> t.gen then
      invalid_arg "Calendar.Txn.latest_fit_scan: stale scan (transaction changed)";
    Mp_obs.Counter.incr c_latest_fit;
    let t0 = Mp_obs.Timer.start () in
    let r =
      if procs > t.procs then None
      else if sc.finish_by - dur < earliest then None
      else if sc.smax.(0) < procs then None
      else begin
        Mp_obs.Counter.incr c_array_path;
        (* Largest index with a segment clear for [procs]: [smax] is
           non-increasing, and [smax.(i) >= procs > smax.(i + 1)] forces
           [vs.(i) >= procs]. *)
        let lo = ref 0 and hi = ref sc.hi in
        while !lo < !hi do
          let mid = (!lo + !hi + 1) / 2 in
          if sc.smax.(mid) >= procs then lo := mid else hi := mid - 1
        done;
        let i = !lo in
        let finish_limit = if i = sc.hi then sc.finish_by else t.ts.(i + 1) in
        if finish_limit - dur < earliest then None
        else
          latest_fit_walk_from t.ts t.vs t.bmax t.bmin ~start_index:i ~finish_limit
            ~earliest ~procs ~dur
      end
    in
    Mp_obs.Timer.stop t_latest_fit t0;
    r
end

(* Bulk construction: apply the reservations through one transaction
   instead of one persistent version per reservation.  The fold order and
   the raising behavior are those of folding [reserve] — [Txn.reserve]
   raises [Overcommitted] on the same first infeasible reservation — and
   the committed calendar's breakpoint map is identical entry for entry
   (pinned by a qcheck property in test_platform.ml). *)
let of_reservations ~procs rs =
  let txn = Txn.start (create ~procs) in
  List.iter (Txn.reserve txn) (List.sort Reservation.compare_by_start rs);
  Txn.commit txn

let busy_rectangles t ~from_ ~until =
  if from_ >= until then invalid_arg "Calendar.busy_rectangles: empty window";
  (* Sweep the segments keeping a stack of open rectangles; busy-level
     increases open rectangles, decreases close the most recent ones
     (their processor counts split as needed). *)
  let open_stack = ref [] (* (start, procs) most recent first *) in
  let finished = ref [] in
  let close_until time target =
    (* shrink the stack so that its total equals [target] *)
    let rec go () =
      let total = List.fold_left (fun acc (_, p) -> acc + p) 0 !open_stack in
      if total > target then begin
        match !open_stack with
        | [] -> assert false
        | (start, p) :: rest ->
            let excess = total - target in
            if p <= excess then begin
              open_stack := rest;
              finished := Reservation.make ~start ~finish:time ~procs:p :: !finished;
              go ()
            end
            else begin
              open_stack := (start, p - excess) :: rest;
              finished := Reservation.make ~start ~finish:time ~procs:excess :: !finished
            end
      end
    in
    go ()
  in
  let current_busy () = List.fold_left (fun acc (_, p) -> acc + p) 0 !open_stack in
  fold_segments t ~from_ ~until ~init:() ~f:(fun () ~start ~finish:_ ~avail ->
      let busy = t.procs - avail in
      let cur = current_busy () in
      if busy > cur then open_stack := (start, busy - cur) :: !open_stack
      else if busy < cur then close_until start busy);
  close_until until 0;
  List.rev !finished

let busy_series t ~from_ ~until ~step =
  if step <= 0 then invalid_arg "Calendar.busy_series: step <= 0";
  let rec go acc time =
    if time >= until then List.rev acc
    else go (float_of_int (t.procs - available_at t time) :: acc) (time + step)
  in
  go [] from_

let pp ppf t =
  Format.fprintf ppf "@[<v>calendar p=%d@," t.procs;
  Imap.iter
    (fun time v ->
      if time <> min_int then Format.fprintf ppf "  @%d -> %d@," time v
      else Format.fprintf ppf "  @-inf -> %d@," v)
    t.steps;
  Format.fprintf ppf "@]"
