module Imap = Map.Make (Int)

(* Observability probes (single branch, no allocation when Mp_obs is
   disabled): call counts and latency of the fit queries — the hot path —
   plus which query path (array vs map) answered. *)
let c_earliest_fit = Mp_obs.Counter.make "calendar.earliest_fit.calls"
let c_latest_fit = Mp_obs.Counter.make "calendar.latest_fit.calls"
let c_reserve = Mp_obs.Counter.make "calendar.reserve.calls"
let c_array_path = Mp_obs.Counter.make "calendar.fit.array_path"
let c_map_path = Mp_obs.Counter.make "calendar.fit.map_path"
let t_earliest_fit = Mp_obs.Timer.make "calendar.earliest_fit"
let t_latest_fit = Mp_obs.Timer.make "calendar.latest_fit"
let t_reserve = Mp_obs.Timer.make "calendar.reserve"

(* [steps] maps a breakpoint time to the number of available processors
   from that time (inclusive) until the next breakpoint.  Invariants:
   - there is always a breakpoint at [min_int] (so lookups never miss);
   - values lie in [0, procs];
   - the value of the last breakpoint extends to +infinity.

   [bps] is a lazily materialized array view of [steps] (times and values
   in ascending order).  The fit queries are the hot path of the
   scheduling algorithms — hundreds of calls against the same calendar
   version — and scanning a flat array is an order of magnitude cheaper
   than walking the map.  But bulk construction (the batch simulator
   reserves tens of thousands of jobs, querying each version exactly
   once) must not rebuild an O(R) array per version, so the array is only
   materialized once a version has answered a few queries; before that,
   queries walk the map. *)
type t = {
  procs : int;
  steps : int Imap.t;
  bps : (int array * int array) Lazy.t;
  mutable queries : int;
}

exception Overcommitted of Reservation.t

let force_threshold = 3

let mk procs steps =
  {
    procs;
    steps;
    queries = 0;
    bps =
      lazy
        (let n = Imap.cardinal steps in
         let ts = Array.make n 0 and vs = Array.make n 0 in
         let i = ref 0 in
         Imap.iter
           (fun time v ->
             ts.(!i) <- time;
             vs.(!i) <- v;
             incr i)
           steps;
         (ts, vs));
  }

(* The array view, if this calendar version is hot enough to warrant it.
   A calendar shared across worker domains can see two domains force
   [bps] at once, which raises [Lazy.Undefined] in the domain that loses
   the race (OCaml 5 lazy semantics); the loser answers from the map this
   once — both paths return identical results (pinned by the qcheck
   properties in test_platform.ml), so this changes no scheduler output. *)
let arrays t =
  if Lazy.is_val t.bps then Some (Lazy.force t.bps)
  else begin
    t.queries <- t.queries + 1;
    if t.queries > force_threshold then
      match Lazy.force t.bps with
      | v -> Some v
      | exception Lazy.Undefined -> None
    else None
  end

let create ~procs =
  if procs <= 0 then invalid_arg "Calendar.create: procs <= 0";
  mk procs (Imap.singleton min_int procs)

let procs t = t.procs
let breakpoints t = Imap.cardinal t.steps

(* Index of the segment containing [time]: greatest i with ts.(i) <= time.
   Always defined thanks to the min_int sentinel. *)
let seg_index ts time =
  let lo = ref 0 and hi = ref (Array.length ts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if ts.(mid) <= time then lo := mid else hi := mid - 1
  done;
  !lo

let value_before_or_at steps time =
  match Imap.find_last (fun k -> k <= time) steps with
  | _, v -> v
  | exception Not_found -> assert false (* min_int breakpoint always present *)

let available_at t time =
  match arrays t with
  | Some (ts, vs) -> vs.(seg_index ts time)
  | None -> value_before_or_at t.steps time

(* Ensure a breakpoint exists exactly at [time] (same value as the segment
   containing it), so that a following range update can stop cleanly. *)
let cut steps time =
  if time = min_int || Imap.mem time steps then steps
  else Imap.add time (value_before_or_at steps time) steps

(* Map-based fold: never forces the array (used by construction-time
   checks). *)
let fold_segments t ~from_ ~until ~init ~f =
  if from_ >= until then init
  else begin
    let v0 = value_before_or_at t.steps from_ in
    let seq = Imap.to_seq_from (from_ + 1) t.steps in
    let rec go acc seg_start seg_val seq =
      match seq () with
      | Seq.Nil -> f acc ~start:seg_start ~finish:until ~avail:seg_val
      | Seq.Cons ((time, v), rest) ->
          if time >= until then f acc ~start:seg_start ~finish:until ~avail:seg_val
          else begin
            let acc = f acc ~start:seg_start ~finish:time ~avail:seg_val in
            go acc time v rest
          end
    in
    go init from_ v0 seq
  end

let segments t ~from_ ~until =
  List.rev
    (fold_segments t ~from_ ~until ~init:[] ~f:(fun acc ~start ~finish ~avail ->
         (start, finish, avail) :: acc))

let min_available t ~from_ ~until =
  if from_ >= until then invalid_arg "Calendar.min_available: empty window";
  fold_segments t ~from_ ~until ~init:t.procs ~f:(fun acc ~start:_ ~finish:_ ~avail ->
      min acc avail)

let average_available t ~from_ ~until =
  if from_ >= until then invalid_arg "Calendar.average_available: empty window";
  let total =
    fold_segments t ~from_ ~until ~init:0. ~f:(fun acc ~start ~finish ~avail ->
        acc +. (float_of_int avail *. float_of_int (finish - start)))
  in
  total /. float_of_int (until - from_)

let can_reserve t (r : Reservation.t) =
  r.procs <= min_available t ~from_:r.start ~until:r.finish

(* Breakpoints of [steps] within [start, finish), as (time, value) pairs in
   descending order. *)
let affected_breakpoints steps ~start ~finish =
  let rec collect acc seq =
    match seq () with
    | Seq.Nil -> acc
    | Seq.Cons ((time, v), rest) -> if time >= finish then acc else collect ((time, v) :: acc) rest
  in
  collect [] (Imap.to_seq_from start steps)

let reserve t (r : Reservation.t) =
  Mp_obs.Counter.incr c_reserve;
  let t0 = Mp_obs.Timer.start () in
  if not (can_reserve t r) then raise (Overcommitted r);
  let steps = cut (cut t.steps r.start) r.finish in
  (* Only breakpoints inside [start, finish) change, so touch just those
     (a calendar holds thousands of breakpoints; a reservation overlaps a
     handful). *)
  let affected = affected_breakpoints steps ~start:r.start ~finish:r.finish in
  let steps =
    List.fold_left (fun m (time, v) -> Imap.add time (v - r.procs) m) steps affected
  in
  let t' = mk t.procs steps in
  Mp_obs.Timer.stop t_reserve t0;
  t'

let reserve_opt t r = if can_reserve t r then Some (reserve t r) else None

let release t (r : Reservation.t) =
  (* Inverse of [reserve]: only valid for a reservation previously
     subtracted, which the capacity check enforces. *)
  let steps = cut (cut t.steps r.start) r.finish in
  let affected = affected_breakpoints steps ~start:r.start ~finish:r.finish in
  List.iter
    (fun (_, v) ->
      if v + r.procs > t.procs then
        invalid_arg "Calendar.release: reservation was not held on this calendar")
    affected;
  let steps =
    List.fold_left (fun m (time, v) -> Imap.add time (v + r.procs) m) steps affected
  in
  mk t.procs steps

let of_reservations ~procs rs =
  List.fold_left reserve (create ~procs) (List.sort Reservation.compare_by_start rs)

(* --- earliest_fit ----------------------------------------------------- *)

(* Candidate starts only need to be considered at [after] and at segment
   boundaries where availability rises; on failure the candidate jumps past
   the blocking breakpoint, so the scan visits each breakpoint at most
   once: O(R). *)

let earliest_fit_arrays (ts, vs) ~after ~procs ~dur =
  let n = Array.length ts in
  (* from segment index [i] with candidate start [s] (s inside segment i),
     either the window [s, s+dur) is clear, or restart past the first
     blocking segment *)
  let rec attempt i s =
    if vs.(i) < procs then begin
      let rec next j = if j >= n then None else if vs.(j) >= procs then Some j else next (j + 1) in
      match next (i + 1) with None -> None | Some j -> attempt j ts.(j)
    end
    else begin
      let limit = s + dur in
      let rec scan j =
        if j >= n || ts.(j) >= limit then Some s
        else if vs.(j) < procs then attempt j ts.(j)
        else scan (j + 1)
      in
      scan (i + 1)
    end
  in
  attempt (seg_index ts after) after

let earliest_fit_map steps ~after ~procs ~dur =
  (* Smallest time >= s with availability >= procs; None if availability
     stays below procs through the final, unbounded segment. *)
  let next_clear s =
    if value_before_or_at steps s >= procs then Some s
    else begin
      let rec go seq =
        match seq () with
        | Seq.Nil -> None
        | Seq.Cons ((time, v), rest) -> if v >= procs then Some time else go rest
      in
      go (Imap.to_seq_from (s + 1) steps)
    end
  in
  let first_block s limit =
    let rec go seq =
      match seq () with
      | Seq.Nil -> None
      | Seq.Cons ((time, v), rest) ->
          if time >= limit then None else if v < procs then Some time else go rest
    in
    go (Imap.to_seq_from (s + 1) steps)
  in
  let rec search s =
    match next_clear s with
    | None -> None
    | Some s -> ( match first_block s (s + dur) with None -> Some s | Some b -> search b)
  in
  search after

let earliest_fit t ~after ~procs ~dur =
  if procs < 1 then invalid_arg "Calendar.earliest_fit: procs < 1";
  if dur < 1 then invalid_arg "Calendar.earliest_fit: dur < 1";
  Mp_obs.Counter.incr c_earliest_fit;
  let t0 = Mp_obs.Timer.start () in
  let r =
    if procs > t.procs then None
    else begin
      match arrays t with
      | Some arr ->
          Mp_obs.Counter.incr c_array_path;
          earliest_fit_arrays arr ~after ~procs ~dur
      | None ->
          Mp_obs.Counter.incr c_map_path;
          earliest_fit_map t.steps ~after ~procs ~dur
    end
  in
  Mp_obs.Timer.stop t_earliest_fit t0;
  r

(* --- latest_fit ------------------------------------------------------- *)

let latest_fit_arrays (ts, vs) ~earliest ~finish_by ~procs ~dur =
  (* Scan segments backward from the one containing [finish_by - 1],
     maintaining [finish_limit], the latest possible window end given the
     blocked segments seen so far; the invariant is that
     [ts.(i+1), finish_limit) is clear. *)
  let rec scan i finish_limit =
    if finish_limit - dur < earliest then None
    else if vs.(i) >= procs then begin
      let s = finish_limit - dur in
      if s >= ts.(i) then Some s else if i = 0 then Some s else scan (i - 1) finish_limit
    end
    else if i = 0 then None
    else scan (i - 1) ts.(i)
  in
  scan (seg_index ts (finish_by - 1)) finish_by

let latest_fit_map t ~earliest ~finish_by ~procs ~dur =
  let segs = segments t ~from_:(min earliest (finish_by - dur)) ~until:finish_by in
  let rec scan finish_limit = function
    | [] ->
        let s = finish_limit - dur in
        if s >= earliest then Some s else None
    | (seg_start, _, avail) :: rest ->
        if seg_start >= finish_limit then scan finish_limit rest
        else if avail >= procs then begin
          let s = finish_limit - dur in
          if s >= seg_start then if s >= earliest then Some s else None
          else scan finish_limit rest
        end
        else begin
          let finish_limit = seg_start in
          if finish_limit - dur < earliest then None else scan finish_limit rest
        end
  in
  scan finish_by (List.rev segs)

let latest_fit t ~earliest ~finish_by ~procs ~dur =
  if procs < 1 then invalid_arg "Calendar.latest_fit: procs < 1";
  if dur < 1 then invalid_arg "Calendar.latest_fit: dur < 1";
  Mp_obs.Counter.incr c_latest_fit;
  let t0 = Mp_obs.Timer.start () in
  let r =
    if procs > t.procs then None
    else if finish_by - dur < earliest then None
    else begin
      match arrays t with
      | Some arr ->
          Mp_obs.Counter.incr c_array_path;
          latest_fit_arrays arr ~earliest ~finish_by ~procs ~dur
      | None ->
          Mp_obs.Counter.incr c_map_path;
          latest_fit_map t ~earliest ~finish_by ~procs ~dur
    end
  in
  Mp_obs.Timer.stop t_latest_fit t0;
  r

let busy_rectangles t ~from_ ~until =
  if from_ >= until then invalid_arg "Calendar.busy_rectangles: empty window";
  (* Sweep the segments keeping a stack of open rectangles; busy-level
     increases open rectangles, decreases close the most recent ones
     (their processor counts split as needed). *)
  let open_stack = ref [] (* (start, procs) most recent first *) in
  let finished = ref [] in
  let close_until time target =
    (* shrink the stack so that its total equals [target] *)
    let rec go () =
      let total = List.fold_left (fun acc (_, p) -> acc + p) 0 !open_stack in
      if total > target then begin
        match !open_stack with
        | [] -> assert false
        | (start, p) :: rest ->
            let excess = total - target in
            if p <= excess then begin
              open_stack := rest;
              finished := Reservation.make ~start ~finish:time ~procs:p :: !finished;
              go ()
            end
            else begin
              open_stack := (start, p - excess) :: rest;
              finished := Reservation.make ~start ~finish:time ~procs:excess :: !finished
            end
      end
    in
    go ()
  in
  let current_busy () = List.fold_left (fun acc (_, p) -> acc + p) 0 !open_stack in
  fold_segments t ~from_ ~until ~init:() ~f:(fun () ~start ~finish:_ ~avail ->
      let busy = t.procs - avail in
      let cur = current_busy () in
      if busy > cur then open_stack := (start, busy - cur) :: !open_stack
      else if busy < cur then close_until start busy);
  close_until until 0;
  List.rev !finished

let busy_series t ~from_ ~until ~step =
  if step <= 0 then invalid_arg "Calendar.busy_series: step <= 0";
  let rec go acc time =
    if time >= until then List.rev acc
    else go (float_of_int (t.procs - available_at t time) :: acc) (time + step)
  in
  go [] from_

let pp ppf t =
  Format.fprintf ppf "@[<v>calendar p=%d@," t.procs;
  Imap.iter
    (fun time v ->
      if time <> min_int then Format.fprintf ppf "  @%d -> %d@," time v
      else Format.fprintf ppf "  @-inf -> %d@," v)
    t.steps;
  Format.fprintf ppf "@]"
