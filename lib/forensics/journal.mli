(** Typed schedule-decision journal — the semantic layer above the
    {!Mp_obs} perf probes.

    Where [Mp_obs] answers "where does wall-clock go?", the journal
    answers "why did the scheduler pick {e that} ⟨processors, start⟩
    pair?": per placed task it records every candidate pair evaluated,
    the prune and early-cut reasons (Amdahl plateau, bound cap,
    reference-start relaxation with the λ slack actually applied), and
    the winning pair, as emitted by the probe points in [Ressched],
    [Deadline], [Online], [Allocation] and [Mapping].

    {2 Determinism and overhead contract}

    Identical to [Mp_obs]: probes {e record}; they never return data to
    the instrumented code, so enabling the journal cannot change any
    scheduling decision ([test_forensics.ml] pins journal-on = journal-off
    schedules).  When {!enabled} is [false] (the default) every probe
    site reduces to one load-and-branch with no allocation — call sites
    guard any argument construction behind [if !Journal.enabled].

    {2 Concurrency}

    Per-domain buffers through domain-local storage, mirroring
    [Mp_obs]: no lock on the probe path; the global mutex guards only
    the buffer registry.  {!take} merges at quiescence. *)

val enabled : bool ref
(** The runtime switch, [false] by default. *)

val with_enabled : (unit -> 'a) -> 'a
(** Run a thunk with {!enabled} set, restoring the previous value
    (normal or exceptional exit). *)

val reset : unit -> unit
(** Drop every recorded entry (all domains).  Only call at quiescence. *)

(** Which placement rule produced an entry. *)
type kind =
  | Forward  (** RESSCHED: earliest completion at or after the ready time *)
  | Backward  (** RESSCHEDDL aggressive / fallback: latest start before the task deadline *)
  | Conservative
      (** RESSCHEDDL resource-conservative: fewest processors clearing the
          λ-relaxed CPA reference threshold *)
  | Online_forward  (** {!Forward} under mid-scheduling competitor arrivals *)

val kind_name : kind -> string

(** Why a candidate ⟨processors, start⟩ pair was (or was not) retained. *)
type verdict =
  | Leading  (** better than every candidate seen so far (the last [Leading] wins) *)
  | Beaten  (** a fit exists but an earlier candidate dominates it *)
  | No_fit  (** the calendar has no feasible window for this pair *)
  | Early_cut
      (** scan stopped: with candidates ordered by ascending duration, no
          remaining pair can beat the incumbent (the output-preserving
          early-cut optimization) *)
  | Window_closed  (** conservative: threshold + duration already exceeds the deadline *)
  | Misses_deadline  (** conservative: earliest fit past the threshold finishes too late *)

val verdict_name : verdict -> string

type cand = {
  procs : int;
  dur : int;  (** rounded Amdahl execution time on [procs] processors *)
  fit : int option;  (** start returned by the calendar query, if any *)
  verdict : verdict;
}

type placement = {
  kind : kind;
  task : int;  (** task id *)
  anchor : int;  (** ready time (forward) or task deadline (backward/conservative) *)
  bound : int;  (** allocation bound: candidates range over [\[1, bound\]] *)
  plateau_pruned : int;
      (** processor counts in [\[1, bound\]] skipped as Amdahl-plateau
          dominated before any calendar query *)
  reference : int option;  (** conservative: CPA reference start [S_i] *)
  threshold : int option;
      (** conservative: [S_i + λ(dl_i − S_i)] — [threshold − reference] is
          the λ slack actually applied *)
  lambda : float option;
  cands : cand list;  (** in evaluation order *)
  won : (int * int * int) option;  (** winning (procs, start, finish); [None] = placement failed *)
}

type entry =
  | Placement of placement
  | Cpa_alloc of { p : int; iterations : int; n_tasks : int; total_alloc : int }
      (** one CPA allocation phase (bounds, bottom-level weights, reference
          schedules) *)
  | Cpa_map of { p : int; n_tasks : int; makespan : int }
      (** one CPA mapping phase (conservative reference schedules) *)
  | Grant of { start : int; finish : int; procs : int; granted : bool }
      (** online: a competing reservation arriving mid-schedule *)

val take : unit -> entry list
(** Merge every domain's buffer, in recording order (domains in
    registration order).  Does not reset.  Only call at quiescence. *)

val placements : entry list -> placement list
(** The [Placement] entries, in order. *)

val won_slot : entry list -> task:int -> (int * int * int) option
(** Winning (procs, start, finish) of the {e last} successful placement
    recorded for [task] — with fallbacks (conservative → backward) the
    last word is the one that made it into the schedule. *)

(** {2 Probe points}

    Called by the schedulers.  Every function is a no-op burning one
    load-and-branch when {!enabled} is false; call sites must guard any
    argument computation behind [if !Journal.enabled] themselves. *)

val begin_placement : kind -> task:int -> anchor:int -> bound:int -> evaluated:int -> unit
(** Open a placement record; [evaluated] is the number of candidate
    processor counts that survived Amdahl-plateau pruning
    ([plateau_pruned] is [bound - evaluated]). *)

val note_reference : reference:int -> threshold:int -> lambda:float -> unit
(** Attach the conservative reference data to the open placement. *)

val cand : procs:int -> dur:int -> fit:int option -> verdict -> unit
(** Record one evaluated candidate on the open placement. *)

val end_placement : procs:int -> start:int -> finish:int -> unit
(** Close the open placement with its winning pair. *)

val end_placement_failed : unit -> unit
(** Close the open placement as failed (deadline algorithms only). *)

val cpa_alloc : p:int -> iterations:int -> n_tasks:int -> total_alloc:int -> unit
val cpa_map : p:int -> n_tasks:int -> makespan:int -> unit
val grant : start:int -> finish:int -> procs:int -> granted:bool -> unit

(** {2 Export} *)

val to_jsonl : entry list -> string
(** One JSON object per line (the [mpres explain --format json] output):
    [{"event":"placement",...}], [{"event":"cpa_alloc",...}],
    [{"event":"cpa_map",...}], [{"event":"grant",...}]. *)

val story : entry list -> string
(** Human-readable per-decision narrative (the [mpres explain] text
    format): one block per placement with its candidate-by-candidate
    verdicts, plus one line per CPA phase and online grant. *)
