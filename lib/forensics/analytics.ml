module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation

type hole = { start : int; finish : int; procs : int }

type t = {
  from_ : int;
  until : int;
  procs : int;
  busy_area : int;
  idle_area : int;
  utilization : float;
  idle_fraction : float;
  holes : hole list;
  hole_histogram : (int * int) array;
  fragmentation : float;
}

(* Rectangle decomposition of the idle profile: sweep the segments keeping
   a stack of open rectangles; availability increases open rectangles,
   decreases close the most recent ones (splitting processor counts as
   needed) — the same sweep as [Calendar.busy_rectangles], run on the
   availability level instead of the busy level. *)
let idle_rectangles cal ~from_ ~until =
  let open_stack = ref [] (* (start, procs), most recent first *) in
  let finished = ref [] in
  let close_until time target =
    let rec go () =
      let total = List.fold_left (fun acc (_, p) -> acc + p) 0 !open_stack in
      if total > target then begin
        match !open_stack with
        | [] -> assert false
        | (start, p) :: rest ->
            let excess = total - target in
            if p <= excess then begin
              open_stack := rest;
              finished := { start; finish = time; procs = p } :: !finished;
              go ()
            end
            else begin
              open_stack := (start, p - excess) :: rest;
              finished := { start; finish = time; procs = excess } :: !finished
            end
      end
    in
    go ()
  in
  let current () = List.fold_left (fun acc (_, p) -> acc + p) 0 !open_stack in
  Calendar.fold_segments cal ~from_ ~until ~init:() ~f:(fun () ~start ~finish:_ ~avail ->
      let cur = current () in
      if avail > cur then open_stack := (start, avail - cur) :: !open_stack
      else if avail < cur then close_until start avail);
  close_until until 0;
  List.sort (fun a b -> compare (a.start, a.finish) (b.start, b.finish)) !finished

let log2_bucket n =
  let rec go i v = if v <= 1 then i else go (i + 1) (v lsr 1) in
  if n <= 1 then 0 else go 0 n

let analyze cal ~from_ ~until =
  if from_ >= until then invalid_arg "Analytics.analyze: empty window";
  let procs = Calendar.procs cal in
  let span = until - from_ in
  let idle_area =
    Calendar.fold_segments cal ~from_ ~until ~init:0 ~f:(fun acc ~start ~finish ~avail ->
        acc + (avail * (finish - start)))
  in
  let busy_area = (procs * span) - idle_area in
  let holes = idle_rectangles cal ~from_ ~until in
  let hist = Array.make 63 0 in
  let largest = ref 0 in
  List.iter
    (fun h ->
      let b = log2_bucket (h.finish - h.start) in
      hist.(b) <- hist.(b) + 1;
      let area = h.procs * (h.finish - h.start) in
      if area > !largest then largest := area)
    holes;
  let hole_histogram =
    Array.of_list
      (List.filter_map
         (fun i -> if hist.(i) > 0 then Some (i, hist.(i)) else None)
         (List.init 63 Fun.id))
  in
  let total = float_of_int (procs * span) in
  {
    from_;
    until;
    procs;
    busy_area;
    idle_area;
    utilization = float_of_int busy_area /. total;
    idle_fraction = float_of_int idle_area /. total;
    holes;
    hole_histogram;
    fragmentation =
      (if idle_area = 0 then 0.
       else 1. -. (float_of_int !largest /. float_of_int idle_area));
  }

let occupancy cal ~from_ ~until reservations =
  if from_ >= until then invalid_arg "Analytics.occupancy: empty window";
  let procs = Calendar.procs cal in
  let span = until - from_ in
  let idle_area =
    Calendar.fold_segments cal ~from_ ~until ~init:0 ~f:(fun acc ~start ~finish ~avail ->
        acc + (avail * (finish - start)))
  in
  let busy_area = (procs * span) - idle_area in
  List.map
    (fun (r : Reservation.t) ->
      let overlap = min until r.finish - max from_ r.start in
      let area = if overlap > 0 then r.procs * overlap else 0 in
      let share = if busy_area = 0 then 0. else float_of_int area /. float_of_int busy_area in
      (r, area, share))
    reservations

let pp ppf t =
  Format.fprintf ppf "@[<v>window [%d, %d) on %d processors@," t.from_ t.until t.procs;
  Format.fprintf ppf "utilization    %.1f%% (%d busy / %d idle cpu-s)@," (100. *. t.utilization)
    t.busy_area t.idle_area;
  Format.fprintf ppf "fragmentation  %.3f (%d idle holes)@," t.fragmentation
    (List.length t.holes);
  if Array.length t.hole_histogram > 0 then begin
    Format.fprintf ppf "idle-hole durations (log2 buckets):@,";
    Array.iter
      (fun (i, n) ->
        Format.fprintf ppf "  [%ds, %ds)  %d@," (if i = 0 then 0 else 1 lsl i) (1 lsl (i + 1)) n)
      t.hole_histogram
  end;
  Format.fprintf ppf "@]"

let to_json t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"from\":%d,\"until\":%d,\"procs\":%d,\"busy_area\":%d,\"idle_area\":%d,\"utilization\":%.6f,\"idle_fraction\":%.6f,\"fragmentation\":%.6f,\"n_holes\":%d,\"hole_histogram\":["
       t.from_ t.until t.procs t.busy_area t.idle_area t.utilization t.idle_fraction
       t.fragmentation (List.length t.holes));
  Array.iteri
    (fun k (i, n) ->
      if k > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "{\"bucket\":%d,\"count\":%d}" i n))
    t.hole_histogram;
  Buffer.add_string buf "]}";
  Buffer.contents buf
