module Json = Mp_prelude.Json

type section = {
  name : string;
  wall_s : float;
  counters : (string * float) list;
  metrics : (string * float) list;
}

type run = {
  schema : string;
  scale : string;
  jobs : int;
  total_s : float;
  sections : section list;
}

let schema_version = "mpres-bench-core-2"

(* --- serialization ----------------------------------------------------- *)

let escape = Json.escape

let kv_json fmt kvs =
  String.concat "," (List.map (fun (k, v) -> Printf.sprintf fmt (escape k) v) kvs)

let section_json s =
  let counters = kv_json "\"%s\":%.0f" s.counters in
  let metrics = kv_json "\"%s\":%.6f" s.metrics in
  Printf.sprintf "{\"name\":\"%s\",\"wall_s\":%.6f,\"counters\":{%s},\"metrics\":{%s}}"
    (escape s.name) s.wall_s counters metrics

let to_json r =
  Printf.sprintf "{\"schema\":\"%s\",\"scale\":\"%s\",\"jobs\":%d,\"total_s\":%.6f,\"sections\":[\n%s\n]}\n"
    (escape r.schema) (escape r.scale) r.jobs r.total_s
    (String.concat ",\n" (List.map section_json r.sections))

(* --- parsing (the minimal JSON reader lives in Mp_prelude.Json) -------- *)

let of_json text =
  match Json.of_string text with
  | Error _ as e -> e
  | Ok json -> (
      let ( let* ) o f = match o with Some v -> f v | None -> Error "missing field" in
      let num_fields name sj =
        match Json.obj sj name with
        | Some fields ->
            List.filter_map
              (fun (k, v) -> match v with Json.Num f -> Some (k, f) | _ -> None)
              fields
        | None -> []
      in
      let result =
        let* schema = Json.str json "schema" in
        let* scale = Json.str json "scale" in
        let* jobs = Json.int_ json "jobs" in
        let* total_s = Json.num json "total_s" in
        let* sections_json = Json.arr json "sections" in
        let sections =
          List.filter_map
            (fun sj ->
              match (Json.str sj "name", Json.num sj "wall_s") with
              | Some name, Some wall_s ->
                  Some
                    {
                      name;
                      wall_s;
                      counters = num_fields "counters" sj;
                      metrics = num_fields "metrics" sj;
                    }
              | _ -> None)
            sections_json
        in
        Ok { schema; scale; jobs; total_s; sections }
      in
      match result with
      | Ok r when r.schema <> schema_version ->
          Error (Printf.sprintf "unsupported schema %S (want %S)" r.schema schema_version)
      | Ok _ as ok -> ok
      | Error _ -> Error "malformed BENCH_core.json: missing schema/scale/jobs/total_s/sections")

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> of_json text

(* --- comparison -------------------------------------------------------- *)

type verdict = { ok : bool; lines : string list }

let compare ?(wall_factor = 2.0) ?(wall_slop = 0.25) ?(counter_factor = 1.05) ~baseline ~current
    () =
  let lines = ref [] in
  let ok = ref true in
  let say fmt = Printf.ksprintf (fun l -> lines := l :: !lines) fmt in
  let failf fmt =
    Printf.ksprintf
      (fun l ->
        ok := false;
        lines := ("FAIL " ^ l) :: !lines)
      fmt
  in
  if baseline.scale <> current.scale then
    failf "scale mismatch: baseline %s vs current %s" baseline.scale current.scale;
  if baseline.jobs <> current.jobs then
    failf "jobs mismatch: baseline %d vs current %d" baseline.jobs current.jobs;
  List.iter
    (fun base_s ->
      match List.find_opt (fun s -> s.name = base_s.name) current.sections with
      | None -> failf "section %S missing from current run" base_s.name
      | Some cur_s ->
          let limit = (base_s.wall_s *. wall_factor) +. wall_slop in
          if cur_s.wall_s > limit then
            failf "%s: wall %.3fs > limit %.3fs (baseline %.3fs x%.1f + %.2fs)" base_s.name
              cur_s.wall_s limit base_s.wall_s wall_factor wall_slop
          else
            say "ok   %s: wall %.3fs (baseline %.3fs, limit %.3fs)" base_s.name cur_s.wall_s
              base_s.wall_s limit;
          List.iter
            (fun (k, base_v) ->
              match List.assoc_opt k cur_s.counters with
              | None -> say "note %s: counter %s not in current run (untraced?)" base_s.name k
              | Some cur_v ->
                  let limit_v = base_v *. counter_factor in
                  if cur_v > limit_v then
                    failf "%s: counter %s = %.0f > limit %.0f (baseline %.0f)" base_s.name k
                      cur_v limit_v base_v
                  else say "ok   %s: counter %s = %.0f (baseline %.0f)" base_s.name k cur_v base_v)
            base_s.counters;
          (* Metrics are machine-speed dependent (throughput, latency
             percentiles): report them side by side, never fail on them. *)
          List.iter
            (fun (k, base_v) ->
              match List.assoc_opt k cur_s.metrics with
              | None -> say "note %s: metric %s not in current run" base_s.name k
              | Some cur_v ->
                  say "note %s: metric %s = %.3f (baseline %.3f)" base_s.name k cur_v base_v)
            base_s.metrics)
    baseline.sections;
  List.iter
    (fun cur_s ->
      if not (List.exists (fun s -> s.name = cur_s.name) baseline.sections) then
        say "note new section %S not in baseline" cur_s.name)
    current.sections;
  { ok = !ok; lines = List.rev !lines }
