type section = { name : string; wall_s : float; counters : (string * float) list }

type run = {
  schema : string;
  scale : string;
  jobs : int;
  total_s : float;
  sections : section list;
}

let schema_version = "mpres-bench-core-1"

(* --- serialization ----------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let section_json s =
  let counters =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%.0f" (escape k) v) s.counters)
  in
  Printf.sprintf "{\"name\":\"%s\",\"wall_s\":%.6f,\"counters\":{%s}}" (escape s.name) s.wall_s
    counters

let to_json r =
  Printf.sprintf "{\"schema\":\"%s\",\"scale\":\"%s\",\"jobs\":%d,\"total_s\":%.6f,\"sections\":[\n%s\n]}\n"
    (escape r.schema) (escape r.scale) r.jobs r.total_s
    (String.concat ",\n" (List.map section_json r.sections))

(* --- minimal JSON parser ----------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of int * string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | c -> fail (Printf.sprintf "unsupported escape \\%c" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number"
    else
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (string_lit ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec go () =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          go ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec go () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          go ();
          Arr (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let field obj name =
  match obj with
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let str_field obj name =
  match field obj name with Some (Str s) -> Some s | _ -> None

let num_field obj name =
  match field obj name with Some (Num f) -> Some f | _ -> None

let of_json text =
  match parse_json text with
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" pos msg)
  | json -> (
      let ( let* ) o f = match o with Some v -> f v | None -> Error "missing field" in
      let result =
        let* schema = str_field json "schema" in
        let* scale = str_field json "scale" in
        let* jobs = num_field json "jobs" in
        let* total_s = num_field json "total_s" in
        let* sections_json =
          match field json "sections" with Some (Arr l) -> Some l | _ -> None
        in
        let sections =
          List.filter_map
            (fun sj ->
              match (str_field sj "name", num_field sj "wall_s") with
              | Some name, Some wall_s ->
                  let counters =
                    match field sj "counters" with
                    | Some (Obj fields) ->
                        List.filter_map
                          (fun (k, v) -> match v with Num f -> Some (k, f) | _ -> None)
                          fields
                    | _ -> []
                  in
                  Some { name; wall_s; counters }
              | _ -> None)
            sections_json
        in
        Ok { schema; scale; jobs = int_of_float jobs; total_s; sections }
      in
      match result with
      | Ok r when r.schema <> schema_version ->
          Error (Printf.sprintf "unsupported schema %S (want %S)" r.schema schema_version)
      | Ok _ as ok -> ok
      | Error _ -> Error "malformed BENCH_core.json: missing schema/scale/jobs/total_s/sections")

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> of_json text

(* --- comparison -------------------------------------------------------- *)

type verdict = { ok : bool; lines : string list }

let compare ?(wall_factor = 2.0) ?(wall_slop = 0.25) ?(counter_factor = 1.05) ~baseline ~current
    () =
  let lines = ref [] in
  let ok = ref true in
  let say fmt = Printf.ksprintf (fun l -> lines := l :: !lines) fmt in
  let failf fmt =
    Printf.ksprintf
      (fun l ->
        ok := false;
        lines := ("FAIL " ^ l) :: !lines)
      fmt
  in
  if baseline.scale <> current.scale then
    failf "scale mismatch: baseline %s vs current %s" baseline.scale current.scale;
  if baseline.jobs <> current.jobs then
    failf "jobs mismatch: baseline %d vs current %d" baseline.jobs current.jobs;
  List.iter
    (fun base_s ->
      match List.find_opt (fun s -> s.name = base_s.name) current.sections with
      | None -> failf "section %S missing from current run" base_s.name
      | Some cur_s ->
          let limit = (base_s.wall_s *. wall_factor) +. wall_slop in
          if cur_s.wall_s > limit then
            failf "%s: wall %.3fs > limit %.3fs (baseline %.3fs x%.1f + %.2fs)" base_s.name
              cur_s.wall_s limit base_s.wall_s wall_factor wall_slop
          else
            say "ok   %s: wall %.3fs (baseline %.3fs, limit %.3fs)" base_s.name cur_s.wall_s
              base_s.wall_s limit;
          List.iter
            (fun (k, base_v) ->
              match List.assoc_opt k cur_s.counters with
              | None -> say "note %s: counter %s not in current run (untraced?)" base_s.name k
              | Some cur_v ->
                  let limit_v = base_v *. counter_factor in
                  if cur_v > limit_v then
                    failf "%s: counter %s = %.0f > limit %.0f (baseline %.0f)" base_s.name k
                      cur_v limit_v base_v
                  else say "ok   %s: counter %s = %.0f (baseline %.0f)" base_s.name k cur_v base_v)
            base_s.counters)
    baseline.sections;
  List.iter
    (fun cur_s ->
      if not (List.exists (fun s -> s.name = cur_s.name) baseline.sections) then
        say "note new section %S not in baseline" cur_s.name)
    current.sections;
  { ok = !ok; lines = List.rev !lines }
