(* Typed decision journal behind one runtime switch.

   Hot-path discipline mirrors Mp_obs: every probe first reads [enabled]
   and falls through on false — no allocation, no lock.  When enabled, a
   probe touches only its own domain's buffer (domain-local storage);
   the global mutex guards the cold paths (buffer registry, take/reset
   at quiescence). *)

let enabled = ref false

let with_enabled f =
  let prev = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := prev) f

type kind = Forward | Backward | Conservative | Online_forward

let kind_name = function
  | Forward -> "forward"
  | Backward -> "backward"
  | Conservative -> "conservative"
  | Online_forward -> "online"

type verdict = Leading | Beaten | No_fit | Early_cut | Window_closed | Misses_deadline

let verdict_name = function
  | Leading -> "leading"
  | Beaten -> "beaten"
  | No_fit -> "no-fit"
  | Early_cut -> "early-cut"
  | Window_closed -> "window-closed"
  | Misses_deadline -> "misses-deadline"

type cand = { procs : int; dur : int; fit : int option; verdict : verdict }

type placement = {
  kind : kind;
  task : int;
  anchor : int;
  bound : int;
  plateau_pruned : int;
  reference : int option;
  threshold : int option;
  lambda : float option;
  cands : cand list;
  won : (int * int * int) option;
}

type entry =
  | Placement of placement
  | Cpa_alloc of { p : int; iterations : int; n_tasks : int; total_alloc : int }
  | Cpa_map of { p : int; n_tasks : int; makespan : int }
  | Grant of { start : int; finish : int; procs : int; granted : bool }

(* --- per-domain buffers ---------------------------------------------- *)

type partial = {
  p_kind : kind;
  p_task : int;
  p_anchor : int;
  p_bound : int;
  p_pruned : int;
  mutable p_reference : int option;
  mutable p_threshold : int option;
  mutable p_lambda : float option;
  mutable p_cands : cand list; (* reversed *)
}

type buffer = {
  order : int; (* registration order, for a stable cross-domain merge *)
  mutable entries : entry list; (* reversed *)
  mutable cur : partial option;
}

let mutex = Mutex.create ()
let buffers : buffer list ref = ref []
let n_buffers = ref 0

let key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock mutex;
      let b = { order = !n_buffers; entries = []; cur = None } in
      incr n_buffers;
      buffers := b :: !buffers;
      Mutex.unlock mutex;
      b)

let buf () = Domain.DLS.get key

let reset () =
  Mutex.lock mutex;
  List.iter
    (fun b ->
      b.entries <- [];
      b.cur <- None)
    !buffers;
  Mutex.unlock mutex

(* --- probe points ----------------------------------------------------- *)

let[@inline never] begin_placement_on k ~task ~anchor ~bound ~evaluated =
  let b = buf () in
  b.cur <-
    Some
      {
        p_kind = k;
        p_task = task;
        p_anchor = anchor;
        p_bound = bound;
        p_pruned = max 0 (bound - evaluated);
        p_reference = None;
        p_threshold = None;
        p_lambda = None;
        p_cands = [];
      }

let[@inline] begin_placement k ~task ~anchor ~bound ~evaluated =
  if !enabled then begin_placement_on k ~task ~anchor ~bound ~evaluated

let[@inline never] note_reference_on ~reference ~threshold ~lambda =
  match (buf ()).cur with
  | None -> () (* unmatched (switch flipped mid-placement): drop *)
  | Some p ->
      p.p_reference <- Some reference;
      p.p_threshold <- Some threshold;
      p.p_lambda <- Some lambda

let[@inline] note_reference ~reference ~threshold ~lambda =
  if !enabled then note_reference_on ~reference ~threshold ~lambda

let[@inline never] cand_on ~procs ~dur ~fit verdict =
  match (buf ()).cur with
  | None -> ()
  | Some p -> p.p_cands <- { procs; dur; fit; verdict } :: p.p_cands

let[@inline] cand ~procs ~dur ~fit verdict = if !enabled then cand_on ~procs ~dur ~fit verdict

let close b won =
  match b.cur with
  | None -> ()
  | Some p ->
      b.cur <- None;
      b.entries <-
        Placement
          {
            kind = p.p_kind;
            task = p.p_task;
            anchor = p.p_anchor;
            bound = p.p_bound;
            plateau_pruned = p.p_pruned;
            reference = p.p_reference;
            threshold = p.p_threshold;
            lambda = p.p_lambda;
            cands = List.rev p.p_cands;
            won;
          }
        :: b.entries

let[@inline never] end_placement_on ~procs ~start ~finish =
  close (buf ()) (Some (procs, start, finish))

let[@inline] end_placement ~procs ~start ~finish =
  if !enabled then end_placement_on ~procs ~start ~finish

let[@inline never] end_placement_failed_on () = close (buf ()) None
let[@inline] end_placement_failed () = if !enabled then end_placement_failed_on ()

let[@inline never] cpa_alloc_on ~p ~iterations ~n_tasks ~total_alloc =
  let b = buf () in
  b.entries <- Cpa_alloc { p; iterations; n_tasks; total_alloc } :: b.entries

let[@inline] cpa_alloc ~p ~iterations ~n_tasks ~total_alloc =
  if !enabled then cpa_alloc_on ~p ~iterations ~n_tasks ~total_alloc

let[@inline never] cpa_map_on ~p ~n_tasks ~makespan =
  let b = buf () in
  b.entries <- Cpa_map { p; n_tasks; makespan } :: b.entries

let[@inline] cpa_map ~p ~n_tasks ~makespan = if !enabled then cpa_map_on ~p ~n_tasks ~makespan

let[@inline never] grant_on ~start ~finish ~procs ~granted =
  let b = buf () in
  b.entries <- Grant { start; finish; procs; granted } :: b.entries

let[@inline] grant ~start ~finish ~procs ~granted =
  if !enabled then grant_on ~start ~finish ~procs ~granted

(* --- export ----------------------------------------------------------- *)

let take () =
  Mutex.lock mutex;
  let bufs = List.sort (fun a b -> compare a.order b.order) !buffers in
  let entries = List.concat_map (fun b -> List.rev b.entries) bufs in
  Mutex.unlock mutex;
  entries

let placements entries =
  List.filter_map (function Placement p -> Some p | _ -> None) entries

let won_slot entries ~task =
  List.fold_left
    (fun acc -> function
      | Placement p when p.task = task -> ( match p.won with Some _ as w -> w | None -> acc)
      | _ -> acc)
    None entries

let opt_int = function None -> "null" | Some v -> string_of_int v

let cand_json c =
  Printf.sprintf "{\"procs\":%d,\"dur\":%d,\"fit\":%s,\"verdict\":\"%s\"}" c.procs c.dur
    (opt_int c.fit) (verdict_name c.verdict)

let entry_json = function
  | Placement p ->
      let won =
        match p.won with
        | None -> "null"
        | Some (procs, start, finish) ->
            Printf.sprintf "{\"procs\":%d,\"start\":%d,\"finish\":%d}" procs start finish
      in
      let conservative =
        match (p.reference, p.threshold, p.lambda) with
        | Some r, Some t, Some l ->
            Printf.sprintf ",\"reference\":%d,\"threshold\":%d,\"lambda\":%g,\"slack\":%d" r t l
              (t - r)
        | _ -> ""
      in
      Printf.sprintf
        "{\"event\":\"placement\",\"kind\":\"%s\",\"task\":%d,\"anchor\":%d,\"bound\":%d,\"plateau_pruned\":%d%s,\"candidates\":[%s],\"won\":%s}"
        (kind_name p.kind) p.task p.anchor p.bound p.plateau_pruned conservative
        (String.concat "," (List.map cand_json p.cands))
        won
  | Cpa_alloc { p; iterations; n_tasks; total_alloc } ->
      Printf.sprintf
        "{\"event\":\"cpa_alloc\",\"p\":%d,\"iterations\":%d,\"n_tasks\":%d,\"total_alloc\":%d}" p
        iterations n_tasks total_alloc
  | Cpa_map { p; n_tasks; makespan } ->
      Printf.sprintf "{\"event\":\"cpa_map\",\"p\":%d,\"n_tasks\":%d,\"makespan\":%d}" p n_tasks
        makespan
  | Grant { start; finish; procs; granted } ->
      Printf.sprintf "{\"event\":\"grant\",\"start\":%d,\"finish\":%d,\"procs\":%d,\"granted\":%b}"
        start finish procs granted

let to_jsonl entries =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (entry_json e);
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

let story entries =
  let buf = Buffer.create 4096 in
  let anchor_label = function Forward | Online_forward -> "ready" | Backward | Conservative -> "dl" in
  List.iter
    (function
      | Placement p ->
          Buffer.add_string buf
            (Printf.sprintf "task %d [%s] %s=%d bound<=%d" p.task (kind_name p.kind)
               (anchor_label p.kind) p.anchor p.bound);
          if p.plateau_pruned > 0 then
            Buffer.add_string buf (Printf.sprintf " (%d plateau-pruned)" p.plateau_pruned);
          (match (p.reference, p.threshold, p.lambda) with
          | Some r, Some t, Some l ->
              Buffer.add_string buf
                (Printf.sprintf "\n  reference S=%d, lambda=%.2f -> threshold %d (slack +%d)" r l t
                   (t - r))
          | _ -> ());
          Buffer.add_char buf '\n';
          List.iter
            (fun c ->
              Buffer.add_string buf
                (match c.fit with
                | Some s ->
                    Printf.sprintf "  np=%-4d dur=%-8d fit @%-10d %s\n" c.procs c.dur s
                      (verdict_name c.verdict)
                | None ->
                    Printf.sprintf "  np=%-4d dur=%-8d %s\n" c.procs c.dur
                      (verdict_name c.verdict)))
            p.cands;
          Buffer.add_string buf
            (match p.won with
            | Some (procs, start, finish) ->
                Printf.sprintf "  => placed: %d procs @ [%d, %d)\n" procs start finish
            | None -> "  => FAILED (no feasible pair in the window)\n")
      | Cpa_alloc { p; iterations; n_tasks; total_alloc } ->
          Buffer.add_string buf
            (Printf.sprintf "cpa-alloc: p=%d, %d tasks, %d iterations, total alloc %d\n" p n_tasks
               iterations total_alloc)
      | Cpa_map { p; n_tasks; makespan } ->
          Buffer.add_string buf
            (Printf.sprintf "cpa-map: p=%d, %d tasks, reference makespan %d\n" p n_tasks makespan)
      | Grant { start; finish; procs; granted } ->
          Buffer.add_string buf
            (Printf.sprintf "online competitor [%d, %d) x%d: %s\n" start finish procs
               (if granted then "granted" else "rejected")))
    entries;
  Buffer.contents buf
