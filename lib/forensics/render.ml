module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation

type slot = { label : string; start : int; finish : int; procs : int }

(* First-fit assignment of concrete processor rows, as in Mp_cpa.Gantt:
   items in start order each take the first rows free at their start.
   Capacity feasibility guarantees enough rows; over-capacity input (e.g.
   slots not from a validated schedule) is skipped rather than drawn
   wrongly. *)
let assign ~procs items =
  let busy_until = Array.make (max 1 procs) min_int in
  List.filter_map
    (fun (it, competing) ->
      let rows = ref [] in
      let needed = ref it.procs in
      for p = 0 to procs - 1 do
        if !needed > 0 && busy_until.(p) <= it.start then begin
          rows := p :: !rows;
          busy_until.(p) <- it.finish;
          decr needed
        end
      done;
      if !needed > 0 then None else Some (it, competing, List.rev !rows))
    items

let palette =
  [| "#4e79a7"; "#f28e2b"; "#59a14f"; "#e15759"; "#b07aa1"; "#76b7b2"; "#edc948"; "#ff9da7" |]

let span items =
  let lo = List.fold_left (fun acc (it, _) -> min acc (max 0 it.start)) max_int items in
  let hi = List.fold_left (fun acc (it, _) -> max acc it.finish) 0 items in
  if items = [] || lo >= hi then (0, 1) else (lo, hi)

(* Contiguous runs of processor rows render as one rectangle. *)
let rec runs = function
  | [] -> []
  | p :: rest ->
      let rec take q = function
        | r :: rest' when r = q + 1 -> take r rest'
        | rest' -> (q, rest')
      in
      let q, rest' = take p rest in
      (p, q) :: runs rest'

let profile_points cal ~from_ ~until =
  List.rev
    (Calendar.fold_segments cal ~from_ ~until ~init:[] ~f:(fun acc ~start ~finish ~avail ->
         (start, finish, avail) :: acc))

let gantt_svg ?(width = 960) ?row_height ~base ~slots () =
  if width < 100 then invalid_arg "Render.gantt_svg: width < 100";
  let procs = Calendar.procs base in
  (* Default row height adapts so big clusters stay under ~720 px tall. *)
  let row_height =
    match row_height with Some r -> max 1 r | None -> max 1 (min 10 (720 / max 1 procs))
  in
  let slot_hi = List.fold_left (fun acc s -> max acc s.finish) 0 slots in
  let competing = Calendar.busy_rectangles base ~from_:0 ~until:(max 1 slot_hi + 3_600) in
  let items =
    List.map (fun (r : Reservation.t) ->
        ({ label = "#"; start = r.start; finish = r.finish; procs = r.procs }, true))
      competing
    @ List.map (fun s -> (s, false)) slots
  in
  let items =
    List.sort (fun ((a : slot), _) ((b : slot), _) -> compare (a.start, a.finish) (b.start, b.finish)) items
  in
  let placed = assign ~procs items in
  let lo, hi = span items in
  let margin = 40 in
  let strip_h = 40 (* availability profile strip *) in
  let w = width - (2 * margin) in
  let scale t = margin + ((t - lo) * w / max 1 (hi - lo)) in
  let top = 25 + strip_h + 10 in
  let height = top + (procs * row_height) + 35 in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" font-family=\"monospace\" font-size=\"9\">\n"
       width height);
  Buffer.add_string buf "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  (* availability profile strip *)
  Buffer.add_string buf
    (Printf.sprintf "<text x=\"%d\" y=\"20\" fill=\"#333333\">available processors (of %d)</text>\n"
       margin procs);
  List.iter
    (fun (s, f, avail) ->
      let x0 = scale (max lo s) and x1 = scale (min hi f) in
      let h = avail * strip_h / max 1 procs in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#a7c7e7\" stroke=\"none\"/>\n"
           x0
           (25 + strip_h - h)
           (max 1 (x1 - x0))
           (max 0 h)))
    (profile_points base ~from_:lo ~until:hi);
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#888888\"/>\n" margin
       (25 + strip_h) (margin + w) (25 + strip_h));
  (* hour gridlines over the schedule area *)
  let hour = 3600 in
  let first_hour = (lo + hour - 1) / hour * hour in
  let step =
    let hours_total = max 1 ((hi - lo) / hour) in
    max 1 (hours_total / 24) * hour
  in
  let t = ref first_hour in
  while !t <= hi do
    let x = scale !t in
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#dddddd\"/>\n<text x=\"%d\" y=\"%d\" fill=\"#666666\">%dh</text>\n"
         x top x (height - 30) x (top - 3) (!t / hour));
    t := !t + step
  done;
  let task_index = ref 0 in
  List.iter
    (fun (it, competing, ps) ->
      let x0 = scale (max lo it.start) and x1 = scale (min hi it.finish) in
      let color =
        if competing then "#c0c0c0"
        else begin
          let c = palette.(!task_index mod Array.length palette) in
          incr task_index;
          c
        end
      in
      List.iter
        (fun (p0, p1) ->
          let y = top + (p0 * row_height) in
          let h = (p1 - p0 + 1) * row_height in
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" stroke=\"white\" stroke-width=\"0.5\"%s/>\n"
               x0 y
               (max 1 (x1 - x0))
               h color
               (if competing then " opacity=\"0.6\"" else ""));
          if (not competing) && x1 - x0 > 18 then
            Buffer.add_string buf
              (Printf.sprintf "<text x=\"%d\" y=\"%d\" fill=\"white\">%s</text>\n" (x0 + 2)
                 (y + row_height - 2) it.label))
        (runs ps))
    placed;
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"%d\" fill=\"#333333\">%d processors, %d scheduled tasks, %d competing reservations</text>\n"
       margin (height - 10) procs (List.length slots) (List.length competing));
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let profile_svg ?(width = 960) ?(height = 240) cal ~from_ ~until =
  if from_ >= until then invalid_arg "Render.profile_svg: empty window";
  let procs = Calendar.procs cal in
  let margin = 40 in
  let w = width - (2 * margin) and h = height - 60 in
  let scale_x t = margin + ((t - from_) * w / max 1 (until - from_)) in
  let scale_y avail = 30 + h - (avail * h / max 1 procs) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" font-family=\"monospace\" font-size=\"9\">\n"
       width height);
  Buffer.add_string buf "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"20\" fill=\"#333333\">availability profile [%d, %d), %d processors</text>\n"
       margin from_ until procs);
  List.iter
    (fun (s, f, avail) ->
      let x0 = scale_x (max from_ s) and x1 = scale_x (min until f) in
      let y = scale_y avail in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#a7c7e7\"/>\n" x0 y
           (max 1 (x1 - x0))
           (max 0 (30 + h - y))))
    (profile_points cal ~from_ ~until);
  (* axis: 0 and p *)
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#888888\"/>\n<text x=\"4\" y=\"%d\" fill=\"#666666\">0</text>\n<text x=\"4\" y=\"%d\" fill=\"#666666\">%d</text>\n"
       margin (30 + h) (margin + w) (30 + h) (30 + h) 34 procs);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let html ~title ~gantt ~profile ~analytics ~story =
  String.concat ""
    [
      "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"/><title>";
      html_escape title;
      "</title>\n<style>body{font-family:monospace;margin:2em}h2{border-bottom:1px solid \
       #ccc}pre{background:#f7f7f7;padding:1em;overflow-x:auto}</style></head>\n<body>\n<h1>";
      html_escape title;
      "</h1>\n<h2>Schedule (Gantt, overlaid on the reservation calendar)</h2>\n";
      gantt;
      "\n<h2>Availability profile</h2>\n";
      profile;
      "\n<h2>Calendar analytics</h2>\n<pre>";
      html_escape analytics;
      "</pre>\n<h2>Decision journal</h2>\n<pre>";
      html_escape story;
      "</pre>\n</body></html>\n";
    ]
