module Json = Mp_prelude.Json
module Hist = Mp_obs.Hist

type sample = {
  site : int;
  t_end : int;
  window : int;
  served : (string * int) list;
  shed_queue : int;
  shed_budget : int;
  queue_depth : int;
  queue_peak : int;
  occupancy : float;
  breakpoints : int;
  index_visits : int;
  sojourn : Hist.t;
}

(* --- JSONL --------------------------------------------------------------- *)

let hist_to_json h =
  let buckets = Hist.buckets h in
  let sparse = ref [] in
  for i = Array.length buckets - 1 downto 0 do
    if buckets.(i) > 0 then
      sparse :=
        Json.Arr [ Num (float_of_int i); Num (float_of_int buckets.(i)) ] :: !sparse
  done;
  Json.Obj
    [
      ("count", Json.Num (float_of_int (Hist.count h)));
      ("total", Json.Num (float_of_int (Hist.total h)));
      ("max", Json.Num (float_of_int (Hist.max_sample h)));
      ("buckets", Json.Arr !sparse);
    ]

let sample_to_json s =
  let n v = Json.Num (float_of_int v) in
  Json.Obj
    [
      ("site", n s.site);
      ("t_end", n s.t_end);
      ("window", n s.window);
      ( "served",
        Json.Obj
          (List.filter_map
             (fun (k, v) -> if v = 0 then None else Some (k, n v))
             s.served) );
      ("shed_queue", n s.shed_queue);
      ("shed_budget", n s.shed_budget);
      ("queue_depth", n s.queue_depth);
      ("queue_peak", n s.queue_peak);
      ("occupancy", Json.Num s.occupancy);
      ("breakpoints", n s.breakpoints);
      ("index_visits", n s.index_visits);
      ("sojourn", hist_to_json s.sojourn);
    ]

let to_jsonl samples =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buf (Json.to_string (sample_to_json s));
      Buffer.add_char buf '\n')
    samples;
  Buffer.contents buf

(* --- headline ------------------------------------------------------------ *)

type headline = {
  h_samples : int;
  h_served : int;
  h_shed : int;
  h_shed_rate : float;
  h_max_queue_depth : int;
  h_p999_sojourn : float;
  h_mean_occupancy : float;
  h_peak_occupancy : float;
}

let headline samples =
  let merged = Hist.create () in
  let served = ref 0 and shed = ref 0 and max_depth = ref 0 in
  let occ_total = ref 0. and occ_peak = ref 0. and n = ref 0 in
  List.iter
    (fun s ->
      incr n;
      Hist.merge_into ~into:merged s.sojourn;
      served := !served + List.fold_left (fun acc (_, v) -> acc + v) 0 s.served;
      shed := !shed + s.shed_queue + s.shed_budget;
      if s.queue_peak > !max_depth then max_depth := s.queue_peak;
      occ_total := !occ_total +. s.occupancy;
      if s.occupancy > !occ_peak then occ_peak := s.occupancy)
    samples;
  let offered = !served + !shed in
  {
    h_samples = !n;
    h_served = !served;
    h_shed = !shed;
    h_shed_rate = (if offered = 0 then 0. else float_of_int !shed /. float_of_int offered);
    h_max_queue_depth = !max_depth;
    h_p999_sojourn = (if Hist.count merged = 0 then 0. else Hist.percentile merged 0.999);
    h_mean_occupancy = (if !n = 0 then 0. else !occ_total /. float_of_int !n);
    h_peak_occupancy = !occ_peak;
  }

(* --- dashboard ----------------------------------------------------------- *)

let palette =
  [| "#4e79a7"; "#f28e2b"; "#59a14f"; "#e15759"; "#b07aa1"; "#76b7b2"; "#edc948"; "#ff9da7" |]

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let sites_of samples = List.sort_uniq compare (List.map (fun s -> s.site) samples)
let windows_of samples = List.sort_uniq compare (List.map (fun s -> s.t_end) samples)

(* Sojourn heatmap: one column per time window, one row per log2 sojourn
   bucket, shade by sample count (merged across sites). *)
let heatmap_svg samples =
  let windows = Array.of_list (windows_of samples) in
  let n_w = Array.length windows in
  if n_w = 0 then "<svg width=\"10\" height=\"10\"></svg>"
  else begin
    let merged = Array.map (fun _ -> Hist.create ()) windows in
    let col = Hashtbl.create 16 in
    Array.iteri (fun i w -> Hashtbl.replace col w i) windows;
    List.iter
      (fun s -> Hist.merge_into ~into:merged.(Hashtbl.find col s.t_end) s.sojourn)
      samples;
    let max_bucket =
      Array.fold_left
        (fun acc h ->
          let b = Hist.buckets h in
          let rec top i = if i < 0 then -1 else if b.(i) > 0 then i else top (i - 1) in
          max acc (top (Array.length b - 1)))
        0 merged
    in
    let n_rows = max 1 (max_bucket + 1) in
    let peak =
      Array.fold_left
        (fun acc h -> Array.fold_left max acc (Hist.buckets h))
        1 merged
    in
    let cell_w = max 4 (min 24 (900 / n_w)) and cell_h = 14 in
    let left = 70 and top = 8 and bottom = 24 in
    let width = left + (n_w * cell_w) + 8 in
    let height = top + (n_rows * cell_h) + bottom in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf
         "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
          font-family=\"monospace\" font-size=\"10\">\n"
         width height);
    for r = 0 to n_rows - 1 do
      (* row 0 at the bottom: longer sojourns higher up *)
      let y = top + ((n_rows - 1 - r) * cell_h) in
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"%d\" y=\"%d\" fill=\"#333333\">&#8805;%ds</text>\n" 4
           (y + cell_h - 3)
           (if r = 0 then 0 else 1 lsl r));
      Array.iteri
        (fun c h ->
          let b = Hist.buckets h in
          let v = if r < Array.length b then b.(r) else 0 in
          if v > 0 then begin
            let x = left + (c * cell_w) in
            let shade =
              (* log-scaled intensity so sparse cells stay visible *)
              0.25 +. (0.75 *. log (1. +. float_of_int v) /. log (1. +. float_of_int peak))
            in
            Buffer.add_string buf
              (Printf.sprintf
                 "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#4e79a7\" \
                  fill-opacity=\"%.3f\"><title>[%d,%d) s: %d</title></rect>\n"
                 x y (cell_w - 1) (cell_h - 1) shade (if r = 0 then 0 else 1 lsl r)
                 (1 lsl (r + 1)) v)
          end)
        merged
    done;
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%d\" y=\"%d\" fill=\"#333333\">t=%d</text><text x=\"%d\" y=\"%d\" \
          fill=\"#333333\" text-anchor=\"end\">t=%d</text>\n"
         left
         (height - 8)
         windows.(0)
         (left + (n_w * cell_w))
         (height - 8)
         windows.(n_w - 1));
    Buffer.add_string buf "</svg>\n";
    Buffer.contents buf
  end

(* Per-site polyline over the time windows. *)
let timeline_svg ~label ~fmt ~value samples =
  let windows = Array.of_list (windows_of samples) in
  let sites = sites_of samples in
  let n_w = Array.length windows in
  if n_w = 0 then "<svg width=\"10\" height=\"10\"></svg>"
  else begin
    let peak =
      List.fold_left (fun acc s -> Float.max acc (value s)) 1e-9 samples
    in
    let left = 70 and top = 10 and plot_h = 120 and bottom = 24 in
    let step = max 4 (min 24 (900 / n_w)) in
    let width = left + (n_w * step) + 8 in
    let height = top + plot_h + bottom in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf
         "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
          font-family=\"monospace\" font-size=\"10\">\n"
         width height);
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#cccccc\"/>\n" left
         (top + plot_h)
         (left + (n_w * step))
         (top + plot_h));
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"4\" y=\"%d\" fill=\"#333333\">%s</text>\n" (top + 10)
         (fmt peak));
    List.iteri
      (fun si site ->
        let color = palette.(si mod Array.length palette) in
        let points = Buffer.create 256 in
        Array.iteri
          (fun c w ->
            match
              List.find_opt (fun s -> s.site = site && s.t_end = w) samples
            with
            | None -> ()
            | Some s ->
                let x = left + (c * step) in
                let y =
                  top + plot_h - int_of_float (float_of_int plot_h *. value s /. peak)
                in
                Buffer.add_string points (Printf.sprintf "%d,%d " x y))
          windows;
        Buffer.add_string buf
          (Printf.sprintf
             "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\" points=\"%s\"/>\n"
             color (Buffer.contents points));
        Buffer.add_string buf
          (Printf.sprintf "<text x=\"%d\" y=\"%d\" fill=\"%s\">site %d</text>\n"
             (left + 4 + (si * 60))
             (top + plot_h + 16)
             color site))
      sites;
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%d\" y=\"%d\" fill=\"#333333\" text-anchor=\"end\">%s</text>\n"
         (left + (n_w * step))
         (top + 10) (html_escape label));
    Buffer.add_string buf "</svg>\n";
    Buffer.contents buf
  end

let html ~title samples =
  let h = headline samples in
  let headline_pre =
    Printf.sprintf
      "samples        %d\nserved         %d\nshed           %d (rate %.4f)\nmax queue      \
       %d\np999 sojourn   %.0f s\noccupancy      mean %.3f  peak %.3f\n"
      h.h_samples h.h_served h.h_shed h.h_shed_rate h.h_max_queue_depth h.h_p999_sojourn
      h.h_mean_occupancy h.h_peak_occupancy
  in
  String.concat ""
    [
      "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"/><title>";
      html_escape title;
      "</title>\n<style>body{font-family:monospace;margin:2em}h2{border-bottom:1px solid \
       #ccc}pre{background:#f7f7f7;padding:1em;overflow-x:auto}</style></head>\n<body>\n<h1>";
      html_escape title;
      "</h1>\n<h2>Headline</h2>\n<pre>";
      html_escape headline_pre;
      "</pre>\n<h2>Sojourn heatmap (log2-second buckets &#215; time windows)</h2>\n";
      heatmap_svg samples;
      "\n<h2>Queue depth (peak per window, per site)</h2>\n";
      timeline_svg ~label:"queue peak"
        ~fmt:(fun p -> Printf.sprintf "%.0f" p)
        ~value:(fun s -> float_of_int s.queue_peak)
        samples;
      "\n<h2>Calendar occupancy (busy fraction per window, per site)</h2>\n";
      timeline_svg ~label:"occupancy"
        ~fmt:(fun p -> Printf.sprintf "%.2f" p)
        ~value:(fun s -> s.occupancy)
        samples;
      "\n</body></html>\n";
    ]
