(** Calendar utilization analytics over a time window.

    Computed from the persistent step function of
    {!Mp_platform.Calendar} — record-only, never fed back into
    scheduling.  Areas are exact integer processor-seconds, so
    [busy_area + idle_area = procs * (until - from_)] always holds and
    {!utilization} [+] {!idle_fraction} sums to 1 (pinned by a qcheck
    property in [test_forensics.ml]). *)

type hole = { start : int; finish : int; procs : int }
(** A maximal idle rectangle: [procs] processors free over
    [\[start, finish)]. *)

type t = {
  from_ : int;
  until : int;
  procs : int;  (** cluster size *)
  busy_area : int;  (** reserved processor-seconds over the window *)
  idle_area : int;  (** free processor-seconds over the window *)
  utilization : float;  (** [busy_area / (procs * (until - from_))] *)
  idle_fraction : float;  (** [idle_area / (procs * (until - from_))] *)
  holes : hole list;
      (** rectangle decomposition of the idle profile, in start order;
          hole areas sum exactly to [idle_area] *)
  hole_histogram : (int * int) array;
      (** non-empty log₂ duration buckets: [(i, count)] counts holes whose
          duration in seconds lies in [\[2{^i}, 2{^i+1})] *)
  fragmentation : float;
      (** [1 - largest hole area / idle_area]: 0 when the free capacity is
          one contiguous block (or the window is fully busy), approaching
          1 as the free capacity shatters into many small holes *)
}

val analyze : Mp_platform.Calendar.t -> from_:int -> until:int -> t
(** Requires [from_ < until]. *)

val occupancy :
  Mp_platform.Calendar.t ->
  from_:int ->
  until:int ->
  Mp_platform.Reservation.t list ->
  (Mp_platform.Reservation.t * int * float) list
(** Per-reservation occupancy attribution: for each reservation, its
    processor-seconds inside the window and its share of the calendar's
    busy area (0 when the window is fully idle).  Shares sum to 1 when
    the given reservations are exactly the calendar's content. *)

val pp : Format.formatter -> t -> unit
(** Multi-line text report (utilization, fragmentation, hole
    histogram). *)

val to_json : t -> string
(** Single JSON object (embedded in [mpres explain --format json]
    output and the HTML report). *)
