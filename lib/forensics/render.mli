(** Schedule forensics renderers: Gantt SVG/HTML overlaid on the
    reservation calendar, and availability-profile SVG.

    Renderers are independent of the scheduler libraries: callers hand
    over plain {!slot}s (convert from [Mp_cpa.Schedule.t] with one map),
    so this library can sit below [mp_cpa] and receive journal probes
    from it.  All outputs are self-contained documents. *)

type slot = { label : string; start : int; finish : int; procs : int }

val gantt_svg :
  ?width:int ->
  ?row_height:int ->
  base:Mp_platform.Calendar.t ->
  slots:slot list ->
  unit ->
  string
(** SVG Gantt chart: the schedule's slots (colored, first-fit processor
    rows) overlaid on the base calendar's competing reservations (grey)
    with an availability-profile strip along the top.  [row_height]
    defaults to at most 10 px, shrunk so large clusters stay under
    ~720 px tall.  Well-formed for edge cases: empty slot list, single
    slot, fully reserved calendar. *)

val profile_svg :
  ?width:int -> ?height:int -> Mp_platform.Calendar.t -> from_:int -> until:int -> string
(** Availability step function over the window as a filled SVG area
    chart.  Requires [from_ < until]. *)

val html :
  title:string -> gantt:string -> profile:string -> analytics:string -> story:string -> string
(** Self-contained HTML page embedding the two SVGs plus the analytics
    report and the decision story as preformatted text (the
    [mpres explain --format html] output). *)
