(** Persisted perf-baseline harness for the benchmark suite.

    [bench/main.exe] writes a {!run} to [BENCH_core.json] (schema
    ["mpres-bench-core-2"]) after every invocation: per-section
    wall-clock plus the key [Mp_obs] counter deltas when tracing was on,
    plus free-form per-section [metrics] (machine-speed dependent
    figures such as requests/s — reported by the comparator, never
    gated).
    [bench/compare.exe] reads a committed baseline and a fresh run and
    {!compare}s them with tolerances, exiting non-zero on regression —
    wall-clock within a generous multiplicative factor (machines differ),
    counters exactly-scaled (the algorithms are deterministic, so counter
    growth is a real algorithmic regression, not noise).

    The JSON reader is {!Mp_prelude.Json}, the shared minimal parser for
    the subset this schema uses (objects, arrays, strings, numbers,
    booleans, null). *)

type section = {
  name : string;
  wall_s : float;  (** wall-clock seconds for the section *)
  counters : (string * float) list;
      (** [Mp_obs] counter deltas observed during the section; empty when
          the run was not traced.  Deterministic at fixed scale/jobs, so
          {!compare} gates them exactly. *)
  metrics : (string * float) list;
      (** Machine-speed-dependent measurements (requests/s, latency
          percentiles — the "Service" bench section).  {!compare} reports
          them side by side but never fails on them. *)
}

type run = {
  schema : string;  (** ["mpres-bench-core-2"] *)
  scale : string;  (** [MPRES_SCALE] in effect: tiny | standard | paper *)
  jobs : int;  (** worker domains used *)
  total_s : float;  (** end-to-end wall-clock seconds *)
  sections : section list;
}

val schema_version : string

val to_json : run -> string
(** Serialize (pretty enough to diff; one section per line). *)

val of_json : string -> (run, string) result
(** Parse a [BENCH_core.json] document.  [Error] carries a one-line
    description with the byte offset of the failure. *)

val load : string -> (run, string) result
(** Read and parse a file; I/O errors become [Error]. *)

type verdict = { ok : bool; lines : string list }
(** [lines] holds one human-readable line per comparison performed;
    regressions are prefixed with ["FAIL"]. *)

val compare :
  ?wall_factor:float ->
  ?wall_slop:float ->
  ?counter_factor:float ->
  baseline:run ->
  current:run ->
  unit ->
  verdict
(** Compare a fresh run against the committed baseline.  A section
    regresses when [cur.wall_s > base.wall_s *. wall_factor +. wall_slop]
    (defaults 2.0 and 0.25 s — generous, because CI machines vary) or
    when a counter present in both exceeds [base *. counter_factor]
    (default 1.05).  A section present in the baseline but missing from
    the current run is a failure; sections or counters only in the
    current run are reported but never fail (new benchmarks may land
    before the baseline is regenerated).  [metrics] are reported but
    never gate (machine-speed dependent).  Scale or jobs mismatch
    between the runs is a failure (the numbers would not be
    comparable). *)
