(** Service telemetry time series: rendering and summarisation.

    The scheduling-service engine ([Mp_service.Engine]) samples each
    site's live state every N {e simulated} seconds into {!sample}
    values.  This module turns that series into artifacts: a JSONL dump
    ({!to_jsonl} — one object per line, deterministic bytes), headline
    statistics ({!headline} — what the bench reports as metrics), and a
    self-contained HTML/SVG dashboard ({!html}).

    Everything here is derived from {e simulated} time (arrival, service
    start, sojourn = finish − arrival), so the series is bit-identical
    for any worker-pool size and across a [--dump]/[--replay] pair —
    wall-clock never enters a sample.  The engine-side contract is
    documented under "Scheduling service" in DESIGN.md; the tests pinning
    jobs-invariance live in [test_service.ml]. *)

(** One site's accumulators over one sampling window
    [\[t_end - window, t_end)].  Counts are per-window deltas; depths and
    occupancy are window-end state. *)
type sample = {
  site : int;
  t_end : int;  (** window end, simulated seconds *)
  window : int;  (** window length (the [--stats-every] value) *)
  served : (string * int) list;
      (** responses issued this window, by response kind
          ([Mp_service.Response.kinds] order, zeros kept) *)
  shed_queue : int;  (** shed this window: bounded queue full *)
  shed_budget : int;  (** shed this window: queue-delay budget exceeded *)
  queue_depth : int;  (** simulated in-flight depth at window end *)
  queue_peak : int;  (** max depth observed during the window *)
  occupancy : float;
      (** busy processor-seconds of the site calendar over the window
          divided by [procs * window], in [0, 1] *)
  breakpoints : int;  (** availability breakpoints at window end *)
  index_visits : int;
      (** per-domain delta of the ["index.node_visits"] counter across
          the window — [0] when tracing is off *)
  sojourn : Mp_obs.Hist.t;
      (** sojourn times (finish − arrival, simulated seconds) of the
          requests admitted this window *)
}

val sample_to_json : sample -> Mp_prelude.Json.t
(** One JSON object; [served] zero counts are dropped, the sojourn
    histogram is sparse ([\[bucket, count\]] pairs).  Printing through
    {!Mp_prelude.Json.to_string} is byte-deterministic. *)

val to_jsonl : sample list -> string
(** One line per sample, in the given order (the engine emits them
    sorted by ⟨t_end, site⟩). *)

(** Series-level summary — the numbers the bench "Service" section
    reports as metrics. *)
type headline = {
  h_samples : int;
  h_served : int;  (** responses summed over all windows *)
  h_shed : int;  (** queue + budget sheds summed *)
  h_shed_rate : float;  (** shed / (served + shed), 0 when idle *)
  h_max_queue_depth : int;
  h_p999_sojourn : float;  (** p999 of the merged sojourn histograms, seconds *)
  h_mean_occupancy : float;  (** mean of per-window occupancy samples *)
  h_peak_occupancy : float;
}

val headline : sample list -> headline

val html : title:string -> sample list -> string
(** Self-contained dashboard: headline block, sojourn heatmap (log2
    buckets × windows), per-site queue-depth and occupancy timelines.
    No external assets. *)
