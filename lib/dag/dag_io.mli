(** Plain-text DAG files for the [mpres --dag FILE] options.

    The format is line-oriented; blank lines and [#] comments are
    ignored:

    {v
    # quickstart workflow
    task 0 100.0 0.1     # task <id> <seq seconds> <alpha>
    task 1 2000.0 0.05
    edge 0 1             # edge <pred id> <succ id>
    v}

    Task ids must be [0 .. n-1] (any order in the file); the edge list
    must satisfy the single-entry/single-exit and acyclicity rules of
    {!Dag.make}. *)

val load : string -> (Dag.t, string) result
(** Read a DAG from a file.  [Error] carries a one-line message naming
    the file and the offending line — I/O errors, syntax errors, and
    {!Dag.make} validation errors all land here, never as exceptions. *)

val of_string : string -> (Dag.t, string) result
(** Parse from a string (the file contents); used by [load] and tests. *)

val to_string : Dag.t -> string
(** Render in the same format; [of_string (to_string d)] round-trips. *)

val save : string -> Dag.t -> (unit, string) result
