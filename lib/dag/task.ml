type t = { id : int; seq : float; alpha : float }

let make ~id ~seq ~alpha =
  if seq <= 0. then invalid_arg "Task.make: seq <= 0";
  if alpha < 0. || alpha > 1. then invalid_arg "Task.make: alpha not in [0,1]";
  { id; seq; alpha }

let exec_time_f t np =
  if np < 1 then invalid_arg "Task.exec_time: np < 1";
  t.seq *. (t.alpha +. ((1. -. t.alpha) /. float_of_int np))

let exec_time t np = max 1 (int_of_float (ceil (exec_time_f t np)))

(* Processor counts skipped because their rounded duration equals a
   smaller count's (the output-preserving pruning of DESIGN.md). *)
let c_plateau_prunes = Mp_obs.Counter.make "amdahl.plateau_prunes"

type candidates = { bound : int; nps : int array; durs : int array }

let candidates t ~max_np =
  if max_np < 1 then invalid_arg "Task.candidates: max_np < 1";
  let nps = Array.make max_np 0 and durs = Array.make max_np 0 in
  let count = ref 0 and prev = ref max_int in
  for np = 1 to max_np do
    let e = exec_time t np in
    if e < !prev then begin
      nps.(!count) <- np;
      durs.(!count) <- e;
      incr count;
      prev := e
    end
    else Mp_obs.Counter.incr c_plateau_prunes
  done;
  { bound = max_np; nps = Array.sub nps 0 !count; durs = Array.sub durs 0 !count }

let alloc_candidates t ~max_np =
  if max_np < 1 then invalid_arg "Task.alloc_candidates: max_np < 1";
  Array.to_list (candidates t ~max_np).nps
let work t np = np * exec_time t np
let speedup t np = exec_time_f t 1 /. exec_time_f t np
let pp ppf t = Format.fprintf ppf "t%d(seq=%.0fs, a=%.3f)" t.id t.seq t.alpha
