let of_string text =
  let tasks = ref [] (* (id, seq, alpha) *) in
  let edges = ref [] in
  let err = ref None in
  let fail lineno msg = if !err = None then err := Some (lineno, msg) in
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  List.iteri
    (fun k line ->
      let lineno = k + 1 in
      let line = String.trim (strip_comment line) in
      if line <> "" then
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "task"; id; seq; alpha ] -> (
            match (int_of_string_opt id, float_of_string_opt seq, float_of_string_opt alpha) with
            | Some id, Some seq, Some alpha -> tasks := (id, seq, alpha) :: !tasks
            | _ -> fail lineno "malformed task line (want: task <id> <seq> <alpha>)")
        | [ "edge"; a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b -> edges := (a, b) :: !edges
            | _ -> fail lineno "malformed edge line (want: edge <pred> <succ>)")
        | w :: _ -> fail lineno (Printf.sprintf "unknown directive %S" w)
        | [] -> ())
    (String.split_on_char '\n' text);
  match !err with
  | Some (lineno, msg) -> Error (Printf.sprintf "line %d: %s" lineno msg)
  | None -> (
      let tasks = List.sort compare !tasks in
      let n = List.length tasks in
      if n = 0 then Error "no tasks"
      else if List.exists (fun (id, _, _) -> id < 0 || id >= n) tasks
              || List.length (List.sort_uniq compare (List.map (fun (id, _, _) -> id) tasks)) <> n
      then Error "task ids must be exactly 0 .. n-1"
      else
        match
          Dag.make
            (Array.of_list (List.map (fun (id, seq, alpha) -> Task.make ~id ~seq ~alpha) tasks))
            (List.rev !edges)
        with
        | dag -> Ok dag
        | exception Invalid_argument msg -> Error msg)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
      match of_string text with
      | Ok _ as ok -> ok
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

(* Shortest decimal form that parses back to the same double, so
   [of_string (to_string dag)] reproduces the task times bit-exactly. *)
let float_str f =
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string dag =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# mpres dag: %d tasks\n" (Dag.n dag));
  Array.iter
    (fun (tk : Task.t) ->
      Buffer.add_string buf
        (Printf.sprintf "task %d %s %s\n" tk.id (float_str tk.seq) (float_str tk.alpha)))
    (Dag.tasks dag);
  List.iter (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" a b)) (Dag.edges dag);
  Buffer.contents buf

let save path dag =
  match Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string dag)) with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
