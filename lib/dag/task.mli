(** A moldable (data-parallel) task.

    Following the paper (Section 3.1), a task is fully specified by its
    sequential execution time [seq] (in seconds) and its non-parallelizable
    fraction [alpha]; its execution time on [np] processors follows
    Amdahl's law:

    {[ T(np) = seq * (alpha + (1 - alpha) / np) ]}

    rounded up to a whole second when placed in the calendar. *)

type t = { id : int; seq : float; alpha : float }

val make : id:int -> seq:float -> alpha:float -> t
(** Raises [Invalid_argument] unless [seq > 0] and [0 <= alpha <= 1]. *)

val exec_time : t -> int -> int
(** [exec_time t np] is the execution time in whole seconds on [np >= 1]
    processors (at least 1 s).  Non-increasing in [np]. *)

val exec_time_f : t -> int -> float
(** Un-rounded Amdahl execution time, used for bottom-level weights. *)

type candidates = { bound : int; nps : int array; durs : int array }
(** A per-⟨task, [bound]⟩ candidate table: [nps] is the ascending array of
    processor counts worth trying (see {!alloc_candidates}) and
    [durs.(i) = exec_time t nps.(i)].  Treat both arrays as immutable —
    they are shared across every placement of the schedule that built
    them. *)

val candidates : t -> max_np:int -> candidates
(** [candidates t ~max_np] materializes the {!alloc_candidates} scan (and
    the rounded durations) once, so schedulers probing the same task many
    times — λ-sweeps, [tightest] binary searches, per-reservation-set
    reruns — pay for the Amdahl evaluations a single time.  Thread the
    result explicitly through the scheduling pass; there is deliberately
    no global memo table, keeping the scan domain-safe under
    [Mp_prelude.Pool]. *)

val alloc_candidates : t -> max_np:int -> int list
(** [alloc_candidates t ~max_np] is the ascending list of processor counts
    worth trying when placing this task: 1, plus every [np <= max_np]
    whose (rounded) execution time is strictly below every smaller
    count's.  Counts inside an Amdahl plateau are dominated by the
    plateau's first count — same duration, weaker availability
    requirement — so skipping them provably never changes which
    ⟨processors, start⟩ pair any of the schedulers picks. *)

val work : t -> int -> int
(** [np * exec_time t np]: CPU-seconds consumed on [np] processors.
    Non-decreasing in [np] (Amdahl's diminishing returns). *)

val speedup : t -> int -> float
(** [exec_time_f t 1 / exec_time_f t np]. *)

val pp : Format.formatter -> t -> unit
