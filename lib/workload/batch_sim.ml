module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation

type policy = Conservative | Easy

let by_submit jobs =
  List.sort (fun (a : Job.t) (b : Job.t) -> compare (a.submit, a.id) (b.submit, b.id)) jobs

let conservative ?(reserved = []) ~procs jobs =
  (* One fit query and one reservation per job, strictly forward: run the
     whole replay on a calendar transaction. *)
  let cal = Calendar.Txn.start (Calendar.of_reservations ~procs reserved) in
  let placed =
    List.fold_left
      (fun acc (j : Job.t) ->
        match Calendar.Txn.earliest_fit cal ~after:j.submit ~procs:j.procs ~dur:j.run with
        | None -> acc (* cannot happen: procs <= capacity *)
        | Some s ->
            Calendar.Txn.reserve cal
              (Reservation.make ~start:s ~finish:(s + j.run) ~procs:j.procs);
            { j with start = Some s } :: acc)
      [] jobs
  in
  List.rev placed

(* Event-driven EASY backfilling: only the queue head holds a reservation
   (the "shadow time"); other jobs may start out of order if doing so
   cannot delay the head. *)
let easy ~procs jobs =
  let arrivals = ref (by_submit jobs) in
  let queue = ref [] (* FIFO, head first *) in
  let running = ref [] (* (finish, procs) *) in
  let placed = ref [] in
  let free = ref procs in
  let start_job t (j : Job.t) =
    running := (t + j.run, j.procs) :: !running;
    free := !free - j.procs;
    placed := { j with start = Some t } :: !placed
  in
  (* earliest time at which [need] processors are free, and the processors
     spare at that time once [need] are claimed *)
  let shadow_of need =
    let finishes = List.sort compare !running in
    let rec go avail = function
      | _ when avail >= need -> (None, avail - need)
      | [] -> (None, avail - need) (* unreachable: need <= procs *)
      | (fin, p) :: rest -> if avail + p >= need then (Some fin, avail + p - need) else go (avail + p) rest
    in
    match go !free finishes with
    | None, spare -> (min_int, spare) (* head can start now *)
    | Some fin, spare -> (fin, spare)
  in
  (* start every queued job the policy allows at time t *)
  let rec drain t =
    match !queue with
    | [] -> ()
    | (head : Job.t) :: rest ->
        if head.procs <= !free then begin
          queue := rest;
          start_job t head;
          drain t
        end
        else begin
          (* head blocked: backfill the rest without delaying its shadow *)
          let shadow, spare = shadow_of head.procs in
          let started_one = ref false in
          queue :=
            head
            :: List.filter
                 (fun (j : Job.t) ->
                   let can_backfill =
                     (not !started_one)
                     && j.procs <= !free
                     && (t + j.run <= shadow || j.procs <= spare)
                   in
                   if can_backfill then begin
                     start_job t j;
                     started_one := true;
                     false
                   end
                   else true)
                 rest;
          (* a backfill changes free/shadow: rescan until a fixpoint *)
          if !started_one then drain t
        end
  in
  let rec step t =
    (* release completions at or before t *)
    let done_, still = List.partition (fun (fin, _) -> fin <= t) !running in
    List.iter (fun (_, p) -> free := !free + p) done_;
    running := still;
    (* admit arrivals at or before t *)
    let now, later = List.partition (fun (j : Job.t) -> j.submit <= t) !arrivals in
    arrivals := later;
    queue := !queue @ now;
    drain t;
    (* next event *)
    let next_completion = List.fold_left (fun acc (fin, _) -> min acc fin) max_int !running in
    let next_arrival =
      match !arrivals with [] -> max_int | (j : Job.t) :: _ -> j.submit
    in
    let next = min next_completion next_arrival in
    if next < max_int then step next
  in
  (match by_submit jobs with [] -> () | (j : Job.t) :: _ -> step j.submit);
  List.sort
    (fun (a : Job.t) (b : Job.t) -> compare (a.start, a.id) (b.start, b.id))
    !placed

let schedule ?(policy = Conservative) ?(reserved = []) ~procs jobs =
  let jobs = List.filter (fun (j : Job.t) -> j.procs <= procs) jobs in
  let jobs = by_submit jobs in
  match policy with
  | Conservative -> conservative ~reserved ~procs jobs
  | Easy ->
      if reserved <> [] then
        invalid_arg "Batch_sim.schedule: reservations are only supported by Conservative";
      easy ~procs jobs

let utilization ~procs ~horizon jobs =
  if horizon <= 0 then invalid_arg "Batch_sim.utilization: horizon <= 0";
  let used =
    List.fold_left
      (fun acc (j : Job.t) ->
        match j.start with
        | None -> acc
        | Some s ->
            let a = max 0 s and b = min horizon (s + j.run) in
            if b > a then acc + (j.procs * (b - a)) else acc)
      0 jobs
  in
  float_of_int used /. (float_of_int procs *. float_of_int horizon)
