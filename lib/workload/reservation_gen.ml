module Rng = Mp_prelude.Rng
module Reservation = Mp_platform.Reservation
module Calendar = Mp_platform.Calendar

type method_ = Linear | Expo | Real

let method_name = function Linear -> "linear" | Expo -> "expo" | Real -> "real"
let all_methods = [ Linear; Expo; Real ]

type t = { procs : int; past : Reservation.t list; future : Reservation.t list }

let day = 86_400
let horizon_days = 7
let horizon = horizon_days * day

let tag rng ~phi jobs =
  if phi <= 0. || phi > 1. then invalid_arg "Reservation_gen.tag: phi not in (0,1]";
  List.filter (fun (j : Job.t) -> j.start <> None && Rng.bernoulli rng phi) jobs

let random_instant rng jobs =
  match jobs with
  | [] -> invalid_arg "Reservation_gen.random_instant: empty log"
  | _ ->
      let lo = List.fold_left (fun acc (j : Job.t) -> min acc j.submit) max_int jobs in
      let hi =
        List.fold_left
          (fun acc (j : Job.t) -> match Job.finish j with Some f -> max acc f | None -> acc)
          lo jobs
      in
      let span = max 1 (hi - lo) in
      lo + (span / 5) + Rng.int rng (max 1 (span * 3 / 5))

(* Day bucket of a reservation relative to T=0: day of its start time,
   with anything already running at 0 assigned to day 0. *)
let bucket_of (r : Reservation.t) = if r.start <= 0 then 0 else min (horizon_days - 1) (r.start / day)

(* Per-day reservation-count targets that preserve the total count. *)
let targets method_ total =
  let weights =
    match method_ with
    | Linear -> List.init horizon_days (fun d -> float_of_int horizon_days -. (float_of_int d +. 0.5))
    | Expo -> List.init horizon_days (fun d -> exp (-0.66 *. (float_of_int d +. 0.5)))
    | Real -> invalid_arg "Reservation_gen.targets: Real has no targets"
  in
  let sum = List.fold_left ( +. ) 0. weights in
  List.map (fun w -> int_of_float (Float.round (w /. sum *. float_of_int total))) weights

let reshape rng method_ future =
  match method_ with
  | Real -> future (* submission-based filtering happens in [extract] *)
  | Linear | Expo ->
      let total = List.length future in
      if total = 0 then []
      else begin
        let buckets = Array.make horizon_days [] in
        List.iter (fun r -> buckets.(bucket_of r) <- r :: buckets.(bucket_of r)) future;
        let all = Array.of_list future in
        let tgt = Array.of_list (targets method_ total) in
        let out = ref [] in
        for d = 0 to horizon_days - 1 do
          let have = Array.of_list buckets.(d) in
          let nh = Array.length have in
          if nh >= tgt.(d) then begin
            (* remove extras at random *)
            Rng.shuffle rng have;
            for k = 0 to tgt.(d) - 1 do
              out := have.(k) :: !out
            done
          end
          else begin
            Array.iter (fun r -> out := r :: !out) have;
            (* add clones with fresh start times inside this day *)
            for _ = nh + 1 to tgt.(d) do
              let proto = Rng.sample rng all in
              let dur = Reservation.duration proto in
              let start = (d * day) + Rng.int rng day in
              out := Reservation.make ~start ~finish:(start + dur) ~procs:proto.procs :: !out
            done
          end
        done;
        !out
      end

(* Greedily keep reservations that fit remaining capacity (clones added by
   reshaping may overcommit; originals never do, being a subset of a
   feasible schedule). *)
let feasible_subset ~procs rs =
  let rs = List.sort Reservation.compare_by_start rs in
  let cal = Calendar.Txn.start (Calendar.create ~procs) in
  let kept =
    List.fold_left (fun kept r -> if Calendar.Txn.reserve_opt cal r then r :: kept else kept) [] rs
  in
  List.rev kept

let extract rng method_ ~procs ~at tagged =
  let shifted =
    List.filter_map
      (fun (j : Job.t) ->
        match j.start with
        | None -> None
        | Some s ->
            let r = Reservation.make ~start:(s - at) ~finish:(s - at + j.run) ~procs:j.procs in
            Some (j, r))
      tagged
  in
  let past =
    List.filter_map
      (fun ((_ : Job.t), (r : Reservation.t)) ->
        if r.start < 0 && r.finish > -horizon then Some r else None)
      shifted
  in
  let future_all =
    List.filter_map
      (fun ((j : Job.t), (r : Reservation.t)) ->
        if r.finish <= 0 || r.start >= horizon then None
        else begin
          match method_ with
          | Real -> if j.submit <= at then Some r else None
          | Linear | Expo -> Some r
        end)
      shifted
  in
  let future = reshape rng method_ future_all in
  let future = feasible_subset ~procs future in
  { procs; past; future }

let calendar t = Calendar.of_reservations ~procs:t.procs t.future

let historical_average t =
  let window_rs = if t.past = [] then t.future else t.past in
  let from_, until = if t.past = [] then (0, horizon) else (-horizon, 0) in
  let cal = Calendar.of_reservations ~procs:t.procs (feasible_subset ~procs:t.procs window_rs) in
  Calendar.average_available cal ~from_ ~until
