module Rng = Mp_prelude.Rng
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation

type t = { cpus : int; jobs : Job.t list }

let default_cpus = 368
let day = 86_400

(* Table 3 targets. *)
let mean_exec = 1.84 *. 3600.
let mean_wait = 3.24 *. 3600.

let draw_runtime rng =
  let sigma = 1.0 in
  let mu = log mean_exec -. (sigma *. sigma /. 2.) in
  let r = Rng.lognormal rng ~mu ~sigma in
  int_of_float (Float.min (float_of_int (2 * day)) (Float.max 60. r))

(* Advance notice (submit -> start).  Most reservations are near-term, but
   a tail is booked days ahead — that tail is what makes the number of
   known future reservations decay over days rather than hours, which is
   the pattern the linear/expo reshaping methods try to match. *)
let draw_wait rng =
  if Rng.bernoulli rng 0.8 then int_of_float (Rng.exponential rng (0.35 *. mean_wait))
  else begin
    (* heavy-tailed long-notice bookings, out to several days *)
    let w = Rng.lognormal rng ~mu:(log (12. *. 3600.)) ~sigma:1.5 in
    int_of_float (Float.min (6.5 *. 86_400.) w)
  end

let draw_procs rng cpus =
  (* Grid'5000 reservations are typically for a handful of nodes. *)
  let u = Rng.float rng 1. in
  max 1 (min cpus (int_of_float (u *. u *. float_of_int (cpus / 4)) + 1))

let generate rng ?(cpus = default_cpus) ?(days = 60) ?(load = 0.30) () =
  if cpus <= 0 || days <= 0 then invalid_arg "Grid5000.generate";
  let horizon = days * day in
  (* jobs/second so that expected work matches the target load *)
  let calib = Rng.split rng in
  let samples = 1000 in
  let work = ref 0. in
  for _ = 1 to samples do
    work := !work +. (float_of_int (draw_runtime calib) *. float_of_int (draw_procs calib cpus))
  done;
  let work_per_job = !work /. float_of_int samples in
  let rate = load *. float_of_int cpus /. work_per_job in
  let rec arrivals acc t =
    let t = t +. Rng.exponential rng (1. /. rate) in
    if t >= float_of_int horizon then List.rev acc else arrivals (int_of_float t :: acc) t
  in
  let submits = arrivals [] 0. in
  let cal = Calendar.Txn.start (Calendar.create ~procs:cpus) in
  let jobs =
    List.fold_left
      (fun acc submit ->
        let run = draw_runtime rng in
        let procs = draw_procs rng cpus in
        let requested = submit + draw_wait rng in
        match Calendar.Txn.earliest_fit cal ~after:requested ~procs ~dur:run with
        | None -> acc
        | Some start ->
            Calendar.Txn.reserve cal (Reservation.make ~start ~finish:(start + run) ~procs);
            let j = Job.make ~id:(List.length acc + 1) ~submit ~start ~run ~procs () in
            j :: acc)
      [] submits
  in
  { cpus; jobs = List.rev jobs }
