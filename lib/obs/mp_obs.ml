(* Counters, log-bucketed timers and spans behind one runtime switch.

   Hot-path discipline: every probe first reads [enabled] and falls
   through on false — no allocation, no system call, no lock.  When
   enabled, a probe touches only its own domain's buffer (obtained via
   domain-local storage), so worker domains never contend; the global
   mutex guards the cold paths only (instrument registration at module
   init, buffer registry, snapshot/reset at quiescence). *)

let enabled = ref false
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let with_enabled f =
  let prev = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := prev) f

(* --- instrument registry (cold) ------------------------------------- *)

let mutex = Mutex.create ()

type registry = { mutable names : string array; mutable n : int }

let counters = { names = [||]; n = 0 }
let timers = { names = [||]; n = 0 }
let spans = { names = [||]; n = 0 }

let register reg name =
  Mutex.lock mutex;
  let id = reg.n in
  if id >= Array.length reg.names then begin
    let a = Array.make (max 8 (2 * Array.length reg.names)) "" in
    Array.blit reg.names 0 a 0 id;
    reg.names <- a
  end;
  reg.names.(id) <- name;
  reg.n <- id + 1;
  Mutex.unlock mutex;
  id

(* --- per-domain buffers ---------------------------------------------- *)

let n_buckets = 64

type hist_state = {
  mutable h_count : int;
  mutable h_total : int;
  mutable h_max : int;
  h_buckets : int array;
}

(* Span events are [event_stride] ints each: span id, start ns, duration
   ns, tag request id, tag site ([no_tag] when the event was recorded
   outside a {!Tag} scope). *)
let event_stride = 5
let no_tag = min_int

type buffer = {
  domain : int;
  mutable counts : int array;  (* indexed by counter id *)
  mutable hists : hist_state option array;  (* indexed by timer id *)
  mutable events : int array;  (* complete span events, [event_stride] ints each *)
  mutable n_events : int;  (* ints used in [events] *)
  (* span stack: ids and enter timestamps, innermost last *)
  mutable stack_ids : int array;
  mutable stack_ts : int array;
  mutable depth : int;
  (* request-scoped tag recorded on every span event of this domain *)
  mutable tag_req : int;
  mutable tag_site : int;
}

let buffers : buffer list ref = ref []
let event_cap = ref 1_000_000

let set_event_cap cap =
  if cap < 0 then invalid_arg "Mp_obs.set_event_cap: cap < 0";
  event_cap := cap

let c_dropped = register counters "obs.events.dropped"

let key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          domain = (Domain.self () :> int);
          counts = Array.make (max 8 counters.n) 0;
          hists = Array.make (max 8 timers.n) None;
          events = [||];
          n_events = 0;
          stack_ids = Array.make 16 0;
          stack_ts = Array.make 16 0;
          depth = 0;
          tag_req = no_tag;
          tag_site = no_tag;
        }
      in
      Mutex.lock mutex;
      buffers := b :: !buffers;
      Mutex.unlock mutex;
      b)

let buf () = Domain.DLS.get key

let grow_int_array a len =
  let a' = Array.make len 0 in
  Array.blit a 0 a' 0 (Array.length a);
  a'

(* --- counters --------------------------------------------------------- *)

module Counter = struct
  type t = int

  let make name = register counters name

  (* The disabled path must stay one load-and-branch: the wrappers below
     are small enough to inline at every probe site, the outlined slow
     path runs only with the switch on. *)
  let[@inline never] add_on t n =
    let b = buf () in
    if t >= Array.length b.counts then
      b.counts <- grow_int_array b.counts (max (t + 1) (2 * Array.length b.counts));
    b.counts.(t) <- b.counts.(t) + n

  let[@inline] add t n = if !enabled then add_on t n
  let[@inline] incr t = if !enabled then add_on t 1

  let find name =
    Mutex.lock mutex;
    let rec scan i =
      if i >= counters.n then None
      else if counters.names.(i) = name then Some i
      else scan (i + 1)
    in
    let id = scan 0 in
    Mutex.unlock mutex;
    id

  let local t =
    let b = buf () in
    if t < Array.length b.counts then b.counts.(t) else 0
end

(* --- timers ----------------------------------------------------------- *)

(* Bucket i holds samples whose elapsed ns lies in [2^i, 2^(i+1)) —
   bucket 0 also takes 0 and 1 ns. *)
let bucket_of ns =
  let rec go i v = if v <= 1 then i else go (i + 1) (v lsr 1) in
  if ns <= 1 then 0 else go 0 ns

(* Quantile estimate shared by {!Snapshot.percentile} and
   {!Hist.percentile}: geometric midpoint of the log2 bucket holding the
   quantile, clamped to the recorded max. *)
let percentile_of_buckets ~count ~max_sample ~buckets q =
  if count = 0 then nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = max 1 (int_of_float (ceil (q *. float_of_int count))) in
    let n = Array.length buckets in
    let rec go i acc =
      if i >= n then float_of_int max_sample
      else begin
        let acc = acc + buckets.(i) in
        if acc >= target then
          (* geometric midpoint of [2^i, 2^(i+1)) *)
          if i = 0 then 1.
          else Float.min (float_of_int max_sample) (sqrt 2. *. Float.pow 2. (float_of_int i))
        else go (i + 1) acc
      end
    in
    go 0 0
  end

module Hist = struct
  type t = hist_state

  let create () = { h_count = 0; h_total = 0; h_max = 0; h_buckets = Array.make n_buckets 0 }

  let clear h =
    h.h_count <- 0;
    h.h_total <- 0;
    h.h_max <- 0;
    Array.fill h.h_buckets 0 n_buckets 0

  let add h v =
    let v = max 0 v in
    h.h_count <- h.h_count + 1;
    h.h_total <- h.h_total + v;
    if v > h.h_max then h.h_max <- v;
    let i = bucket_of v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1

  let count h = h.h_count
  let total h = h.h_total
  let max_sample h = h.h_max
  let buckets h = Array.copy h.h_buckets

  let merge_into ~into h =
    into.h_count <- into.h_count + h.h_count;
    into.h_total <- into.h_total + h.h_total;
    if h.h_max > into.h_max then into.h_max <- h.h_max;
    Array.iteri (fun i n -> into.h_buckets.(i) <- into.h_buckets.(i) + n) h.h_buckets

  let percentile h q =
    percentile_of_buckets ~count:h.h_count ~max_sample:h.h_max ~buckets:h.h_buckets q
end

module Summary = struct
  type t = { count : int; mean : float; p50 : int; p99 : int; p999 : int; max : int }

  (* Nearest-rank percentile of an ascending-sorted sample array —
     exactly the estimator the bench and serve reports used before it was
     extracted here, so baselines compare like for like. *)
  let percentile a p =
    let n = Array.length a in
    if n = 0 then 0 else a.(min (n - 1) (int_of_float (p *. float_of_int n)))

  let of_samples samples =
    let a = Array.copy samples in
    Array.sort compare a;
    let n = Array.length a in
    if n = 0 then { count = 0; mean = 0.; p50 = 0; p99 = 0; p999 = 0; max = 0 }
    else
      {
        count = n;
        mean = float_of_int (Array.fold_left ( + ) 0 a) /. float_of_int n;
        p50 = percentile a 0.50;
        p99 = percentile a 0.99;
        p999 = percentile a 0.999;
        max = a.(n - 1);
      }

  let of_list samples = of_samples (Array.of_list samples)
end

module Timer = struct
  type t = int

  let make name = register timers name
  let[@inline] start () = if !enabled then now_ns () else 0

  let[@inline never] record t ns =
    let b = buf () in
    if t >= Array.length b.hists then begin
      let a = Array.make (max (t + 1) (2 * Array.length b.hists)) None in
      Array.blit b.hists 0 a 0 (Array.length b.hists);
      b.hists <- a
    end;
    let h =
      match b.hists.(t) with
      | Some h -> h
      | None ->
          let h = { h_count = 0; h_total = 0; h_max = 0; h_buckets = Array.make n_buckets 0 } in
          b.hists.(t) <- Some h;
          h
    in
    h.h_count <- h.h_count + 1;
    h.h_total <- h.h_total + ns;
    if ns > h.h_max then h.h_max <- ns;
    let i = bucket_of ns in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1

  let[@inline never] stop_on t t0 = record t (max 0 (now_ns () - t0))
  let[@inline] stop t t0 = if !enabled && t0 <> 0 then stop_on t t0
end

(* --- spans ------------------------------------------------------------ *)

module Span = struct
  type t = int

  let make name = register spans name

  let[@inline never] enter_on t =
    let b = buf () in
    if b.depth >= Array.length b.stack_ids then begin
      b.stack_ids <- grow_int_array b.stack_ids (2 * Array.length b.stack_ids);
      b.stack_ts <- grow_int_array b.stack_ts (2 * Array.length b.stack_ts)
    end;
    b.stack_ids.(b.depth) <- t;
    b.stack_ts.(b.depth) <- now_ns ();
    b.depth <- b.depth + 1

  let[@inline] enter t = if !enabled then enter_on t

  let[@inline never] exit_on t =
    let b = buf () in
    (* unmatched exit (e.g. the switch flipped mid-span): drop *)
    if b.depth > 0 && b.stack_ids.(b.depth - 1) = t then begin
      b.depth <- b.depth - 1;
      let t0 = b.stack_ts.(b.depth) in
      if b.n_events >= event_stride * !event_cap then Counter.incr c_dropped
      else begin
        if b.n_events + event_stride > Array.length b.events then
          b.events <-
            grow_int_array b.events
              (max (16 * event_stride)
                 (min (event_stride * !event_cap) (2 * Array.length b.events)));
        b.events.(b.n_events) <- t;
        b.events.(b.n_events + 1) <- t0;
        b.events.(b.n_events + 2) <- max 0 (now_ns () - t0);
        b.events.(b.n_events + 3) <- b.tag_req;
        b.events.(b.n_events + 4) <- b.tag_site;
        b.n_events <- b.n_events + event_stride
      end
    end

  let[@inline] exit t = if !enabled then exit_on t

  let wrap t f =
    if not !enabled then f ()
    else begin
      enter t;
      match f () with
      | v ->
          exit t;
          v
      | exception e ->
          exit t;
          raise e
    end
end

(* --- request-scoped tags ---------------------------------------------- *)

module Tag = struct
  let[@inline never] set_on req site =
    let b = buf () in
    b.tag_req <- req;
    b.tag_site <- site

  let[@inline] set ~req ~site = if !enabled then set_on req site

  let[@inline never] clear_on () =
    let b = buf () in
    b.tag_req <- no_tag;
    b.tag_site <- no_tag

  let[@inline] clear () = if !enabled then clear_on ()
end

(* --- reset ------------------------------------------------------------ *)

let reset () =
  Mutex.lock mutex;
  List.iter
    (fun (b : buffer) ->
      Array.fill b.counts 0 (Array.length b.counts) 0;
      Array.iter
        (function
          | None -> ()
          | Some h ->
              h.h_count <- 0;
              h.h_total <- 0;
              h.h_max <- 0;
              Array.fill h.h_buckets 0 n_buckets 0)
        b.hists;
      b.n_events <- 0;
      b.depth <- 0;
      b.tag_req <- no_tag;
      b.tag_site <- no_tag)
    !buffers;
  Mutex.unlock mutex

(* --- snapshots -------------------------------------------------------- *)

module Snapshot = struct
  type hist = {
    hist_name : string;
    count : int;
    total_ns : int;
    max_ns : int;
    buckets : int array;
  }

  type event = {
    span_name : string;
    domain : int;
    start_ns : int;
    dur_ns : int;
    tag : (int * int) option;  (* (request id, site) when recorded in a Tag scope *)
  }

  type t = { counters : (string * int) list; hists : hist list; events : event list }

  let take () =
    Mutex.lock mutex;
    let bufs = !buffers in
    let n_counters = counters.n and n_timers = timers.n in
    let counter_rows =
      List.init n_counters (fun id ->
          let total =
            List.fold_left
              (fun acc b -> if id < Array.length b.counts then acc + b.counts.(id) else acc)
              0 bufs
          in
          (counters.names.(id), total))
    in
    let hist_rows =
      List.filter_map
        (fun id ->
          let buckets = Array.make n_buckets 0 in
          let count = ref 0 and total = ref 0 and max_ns = ref 0 in
          List.iter
            (fun (b : buffer) ->
              if id < Array.length b.hists then
                match b.hists.(id) with
                | None -> ()
                | Some h ->
                    Array.iteri (fun i n -> buckets.(i) <- buckets.(i) + n) h.h_buckets;
                    count := !count + h.h_count;
                    total := !total + h.h_total;
                    if h.h_max > !max_ns then max_ns := h.h_max)
            bufs;
          if !count = 0 then None
          else
            Some
              { hist_name = timers.names.(id); count = !count; total_ns = !total;
                max_ns = !max_ns; buckets })
        (List.init n_timers Fun.id)
    in
    let events =
      List.concat_map
        (fun (b : buffer) ->
          List.init (b.n_events / event_stride) (fun k ->
              let o = event_stride * k in
              let req = b.events.(o + 3) and site = b.events.(o + 4) in
              {
                span_name = spans.names.(b.events.(o));
                domain = b.domain;
                start_ns = b.events.(o + 1);
                dur_ns = b.events.(o + 2);
                tag = (if req = no_tag then None else Some (req, site));
              }))
        bufs
    in
    Mutex.unlock mutex;
    {
      counters = counter_rows;
      hists = hist_rows;
      events = List.sort (fun a b -> compare a.start_ns b.start_ns) events;
    }

  let sub t ~earlier =
    let prev_counts = earlier.counters in
    let counters =
      List.map
        (fun (name, v) ->
          match List.assoc_opt name prev_counts with
          | Some v0 -> (name, v - v0)
          | None -> (name, v))
        t.counters
    in
    let hists =
      List.filter_map
        (fun h ->
          let h' =
            match
              List.find_opt (fun h0 -> h0.hist_name = h.hist_name) earlier.hists
            with
            | None -> h
            | Some h0 ->
                {
                  h with
                  count = h.count - h0.count;
                  total_ns = h.total_ns - h0.total_ns;
                  (* max over the delta window is unknown; keep the global max *)
                  buckets = Array.init n_buckets (fun i -> h.buckets.(i) - h0.buckets.(i));
                }
          in
          if h'.count <= 0 then None else Some h')
        t.hists
    in
    let n_prev = List.length earlier.events in
    let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
    { counters; hists; events = drop n_prev t.events }

  let percentile h q =
    percentile_of_buckets ~count:h.count ~max_sample:h.max_ns ~buckets:h.buckets q
end

(* --- reports ---------------------------------------------------------- *)

let pp_ns ns =
  if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.1f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)

module Report = struct
  let text ?(top = 12) (s : Snapshot.t) =
    let counters = List.filter (fun (_, v) -> v > 0) s.counters in
    if counters = [] && s.hists = [] then ""
    else begin
      let buf = Buffer.create 1024 in
      let counters =
        List.sort (fun (_, a) (_, b) -> compare (b : int) a) counters
      in
      let shown = List.filteri (fun i _ -> i < top) counters in
      if shown <> [] then begin
        Buffer.add_string buf "top counters:\n";
        let w =
          List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 shown
        in
        List.iter
          (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-*s %d\n" w name v))
          shown
      end;
      if s.hists <> [] then begin
        Buffer.add_string buf "timers (p50/p95/p99 from log2 buckets):\n";
        let w =
          List.fold_left (fun acc (h : Snapshot.hist) -> max acc (String.length h.hist_name)) 0 s.hists
        in
        List.iter
          (fun (h : Snapshot.hist) ->
            let p q = pp_ns (Snapshot.percentile h q) in
            Buffer.add_string buf
              (Printf.sprintf "  %-*s count=%d mean=%s p50=%s p95=%s p99=%s max=%s\n" w
                 h.hist_name h.count
                 (pp_ns (float_of_int h.total_ns /. float_of_int h.count))
                 (p 0.5) (p 0.95) (p 0.99)
                 (pp_ns (float_of_int h.max_ns))))
          s.hists
      end;
      Buffer.contents buf
    end

  let json_escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_json (s : Snapshot.t) =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n  \"schema\": \"mpres-obs-1\",\n  \"counters\": {";
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\n    \"%s\": %d" (json_escape name) v))
      s.counters;
    Buffer.add_string buf "\n  },\n  \"timers\": {";
    List.iteri
      (fun i (h : Snapshot.hist) ->
        if i > 0 then Buffer.add_char buf ',';
        let p q =
          let v = Snapshot.percentile h q in
          if Float.is_nan v then 0. else v
        in
        Buffer.add_string buf
          (Printf.sprintf
             "\n    \"%s\": {\"count\": %d, \"total_ns\": %d, \"max_ns\": %d, \"p50_ns\": %.0f, \"p95_ns\": %.0f, \"p99_ns\": %.0f}"
             (json_escape h.hist_name) h.count h.total_ns h.max_ns (p 0.5) (p 0.95) (p 0.99)))
      s.hists;
    Buffer.add_string buf "\n  },\n  \"spans\": {";
    let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (e : Snapshot.event) ->
        match Hashtbl.find_opt tbl e.span_name with
        | None ->
            order := e.span_name :: !order;
            Hashtbl.add tbl e.span_name (1, e.dur_ns)
        | Some (n, total) -> Hashtbl.replace tbl e.span_name (n + 1, total + e.dur_ns))
      s.events;
    List.iteri
      (fun i name ->
        if i > 0 then Buffer.add_char buf ',';
        let n, total = Hashtbl.find tbl name in
        Buffer.add_string buf
          (Printf.sprintf "\n    \"%s\": {\"count\": %d, \"total_ns\": %d}" (json_escape name) n total))
      (List.rev !order);
    Buffer.add_string buf "\n  }\n}\n";
    Buffer.contents buf
end

module Trace = struct
  let to_chrome (s : Snapshot.t) =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    let first = ref true in
    let emit str =
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf "\n";
      Buffer.add_string buf str
    in
    (* one named track per domain *)
    let domains =
      List.sort_uniq compare (List.map (fun (e : Snapshot.event) -> e.domain) s.events)
    in
    List.iter
      (fun d ->
        emit
          (Printf.sprintf
             "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"domain %d\"}}"
             d d))
      domains;
    List.iter
      (fun (e : Snapshot.event) ->
        let args =
          match e.tag with
          | None -> ""
          | Some (req, site) -> Printf.sprintf ",\"args\":{\"req\":%d,\"site\":%d}" req site
        in
        emit
          (Printf.sprintf
             "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"name\":\"%s\",\"cat\":\"mpres\",\"ts\":%.3f,\"dur\":%.3f%s}"
             e.domain (Report.json_escape e.span_name)
             (float_of_int e.start_ns /. 1e3)
             (float_of_int e.dur_ns /. 1e3) args))
      s.events;
    Buffer.add_string buf "\n]}\n";
    Buffer.contents buf

  let write_chrome path s =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (to_chrome s))
end
