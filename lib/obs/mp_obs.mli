(** Zero-overhead-when-off observability: counters, latency histograms and
    spans, wired through the scheduler hot paths.

    The subsystem answers "where does wall-clock go?" — fit queries vs CPA
    iterations vs pool idle — without perturbing any result.  Three
    primitives sit behind a single runtime switch:

    - {b counters}: monotonic integers
      (e.g. ["calendar.earliest_fit.calls"], ["cpa.iterations"]);
    - {b timers}: log₂-bucketed latency histograms of instrumented
      operations (fit queries, allocations, whole placements);
    - {b spans}: begin/end pairs recorded per worker domain and exported
      as Chrome [trace_event] JSON (one track per domain, viewable in
      [chrome://tracing] or Perfetto).

    {2 Determinism and overhead contract}

    Probes {e record}; they never return data to the instrumented code, so
    enabling them cannot change any scheduling decision (the
    "blind matches omniscient" and parallel = sequential pins hold with
    tracing on — [test_obs.ml] checks this).  When {!enabled} is [false]
    (the default) every probe reduces to one load-and-branch with no
    allocation and no system call; a quick-scale benchmark run measures
    the disabled-probe overhead under 1 % of wall-clock (see
    "Observability" in DESIGN.md for the measured number).

    {2 Concurrency}

    Each domain writes to its own buffer obtained through domain-local
    storage — no lock is ever taken on the probe path, mirroring the
    {!Mp_prelude.Pool} no-central-lock design.  The global mutex guards
    only cold operations: instrument registration (module init) and the
    buffer registry.  {!Snapshot.take} merges the per-domain buffers; call
    it (and {!reset}) at quiescence, i.e. not while a pool batch is in
    flight. *)

val enabled : bool ref
(** The single runtime switch, [false] by default.  Flip it before the
    work to observe; every probe reads it on entry. *)

val with_enabled : (unit -> 'a) -> 'a
(** Run a thunk with {!enabled} set, restoring the previous value
    (normal or exceptional exit). *)

val now_ns : unit -> int
(** Wall-clock in integer nanoseconds (the time base of every timer and
    span).  Monotonicity is not guaranteed across clock adjustments;
    negative elapsed values are clamped to zero. *)

val set_event_cap : int -> unit
(** Per-domain cap on stored span events (default [1_000_000]); beyond
    it, events are dropped and counted in the ["obs.events.dropped"]
    counter — never silently.  Raises [Invalid_argument] if [cap < 0]. *)

val reset : unit -> unit
(** Zero every buffer of every domain seen so far (counters, histograms,
    events, span stacks).  Registered instruments survive.  Only call at
    quiescence. *)

(** Monotonic counters. *)
module Counter : sig
  type t

  val make : string -> t
  (** Register a counter under a (unique, dot-separated) name.  Intended
      for module-initialization time; registration takes the global
      mutex. *)

  val incr : t -> unit
  (** Add one; no-op with no allocation when {!enabled} is false. *)

  val add : t -> int -> unit

  val find : string -> t option
  (** Look up an already-registered counter by name (cold path, takes the
      global mutex).  Lets a consumer observe a counter owned by another
      library — e.g. the engine reading ["index.node_visits"] — without
      double-registering it. *)

  val local : t -> int
  (** The calling domain's accumulated value for [t] (not summed across
      domains, unlike {!Snapshot.take}).  Always readable; [0] when the
      domain never bumped it.  Useful for per-domain deltas on code known
      to run sequentially on one domain. *)
end

(** Latency timers aggregated into log₂-bucketed histograms. *)
module Timer : sig
  type t

  val make : string -> t

  val start : unit -> int
  (** Timestamp in ns, or [0] when disabled (no system call is made). *)

  val stop : t -> int -> unit
  (** [stop t t0] records [now - t0] into the histogram; dropped when
      disabled or when [t0 = 0] (started while disabled). *)
end

(** Begin/end spans, recorded per domain. *)
module Span : sig
  type t

  val make : string -> t

  val enter : t -> unit
  (** Push onto the domain's span stack. *)

  val exit : t -> unit
  (** Pop and record one complete event (start, duration) on this
      domain's track.  An [exit] without a matching [enter] (e.g. the
      switch flipped in between) is dropped. *)

  val wrap : t -> (unit -> 'a) -> 'a
  (** [wrap t f] is [f ()] between {!enter} and {!exit} (the exit also
      runs on exception).  When disabled it is exactly [f ()].  Note the
      closure argument allocates even when disabled — hot paths should
      use explicit {!enter}/{!exit} pairs instead. *)
end

(** Request-scoped tags stamped onto span events.

    [Tag.set ~req ~site] marks the calling domain so that every span
    event recorded until {!Tag.clear} carries the (request id, site)
    pair — {!Trace.to_chrome} emits them as trace-event [args], which
    lets Perfetto filter one request's admission → fit → commit tree out
    of a soak.  Like every probe, set/clear are one load-and-branch with
    no allocation when {!enabled} is false, and tags are record-only:
    nothing ever reads them back into scheduling decisions. *)
module Tag : sig
  val set : req:int -> site:int -> unit
  (** Stamp subsequent span events of this domain.  Pass [site:(-1)]
      (or any sentinel the consumer chooses) when no site applies. *)

  val clear : unit -> unit
  (** Stop stamping; subsequent events carry no tag. *)
end

(** Standalone log₂-bucketed histograms, decoupled from the probe
    switch.

    Same bucket layout as {!Timer} histograms ([buckets.(i)] holds
    samples in [\[2{^i}, 2{^i+1})]), but owned by the caller and always
    on — the scheduling service uses them to accumulate {e simulated}
    sojourn times, which must be recorded deterministically whether or
    not tracing is enabled.  Not thread-safe; confine each value to one
    domain. *)
module Hist : sig
  type t

  val create : unit -> t
  val clear : t -> unit

  val add : t -> int -> unit
  (** Record one sample (negative values clamp to 0). *)

  val count : t -> int
  val total : t -> int
  val max_sample : t -> int

  val buckets : t -> int array
  (** Copy of the 64 bucket counts. *)

  val merge_into : into:t -> t -> unit
  (** Pointwise-add [t] into [into] (counts, totals, max). *)

  val percentile : t -> float -> float
  (** Same estimator as {!Snapshot.percentile}: geometric midpoint of
      the bucket holding the quantile, clamped to the max sample; [nan]
      when empty. *)
end

(** Exact summaries of small integer sample sets.

    Where {!Hist} trades precision for constant space, [Summary] sorts
    the raw samples and reads nearest-rank percentiles exactly — the
    estimator the bench harness and [mpres serve] report wall-clock
    latencies with. *)
module Summary : sig
  type t = { count : int; mean : float; p50 : int; p99 : int; p999 : int; max : int }

  val percentile : int array -> float -> int
  (** [percentile a q] on an {e ascending-sorted} array: nearest-rank
      [a.(min (n-1) (floor (q*n)))]; [0] when empty. *)

  val of_samples : int array -> t
  (** Sorts a copy of the input; the input is not modified. *)

  val of_list : int list -> t
end

(** Merged view of every domain's buffer. *)
module Snapshot : sig
  type hist = {
    hist_name : string;
    count : int;
    total_ns : int;
    max_ns : int;
    buckets : int array;
        (** [buckets.(i)] counts samples with elapsed ns in
            [\[2{^i}, 2{^i+1})] ([buckets.(0)] also holds 0 and 1 ns). *)
  }

  type event = {
    span_name : string;
    domain : int;
    start_ns : int;
    dur_ns : int;
    tag : (int * int) option;
        (** [(request id, site)] stamped by {!Tag.set}, [None] for events
            recorded outside any tag scope. *)
  }

  type t = {
    counters : (string * int) list;  (** registration order, summed over domains *)
    hists : hist list;
    events : event list;  (** sorted by start time *)
  }

  val take : unit -> t
  (** Merge all per-domain buffers (without resetting them).  Counters
      and histograms are summed across domains; events keep their domain
      id.  Only call at quiescence. *)

  val sub : t -> earlier:t -> t
  (** Per-section delta: counters and histogram contents of the earlier
      snapshot are subtracted, events of the earlier snapshot are
      dropped from the front of the list.  Both snapshots must come from
      the same process (same instrument registry). *)

  val percentile : hist -> float -> float
  (** [percentile h 0.95] estimates the p95 latency in ns from the log
      buckets (geometric midpoint of the bucket holding the quantile);
      [nan] on an empty histogram. *)
end

(** Human- and machine-readable renderings of a snapshot. *)
module Report : sig
  val text : ?top:int -> Snapshot.t -> string
  (** Counter totals (descending, at most [top], default 12) and one
      line per histogram with count, mean, p50/p95/p99 and max.  Empty
      string when the snapshot recorded nothing. *)

  val to_json : Snapshot.t -> string
  (** Machine-readable dump (the [BENCH_obs.json] format): every counter,
      and per histogram count/total/percentiles — a perf trajectory for
      future runs to regress against.  Span events are summarized per
      name (count, total ns), not dumped individually. *)
end

(** Chrome [trace_event] export. *)
module Trace : sig
  val to_chrome : Snapshot.t -> string
  (** JSON object with a [traceEvents] array of complete ("ph":"X")
      events, one [tid] per domain (named tracks), timestamps in
      microseconds — loadable in [chrome://tracing] and Perfetto.
      Tagged events carry [{"args":{"req":N,"site":M}}] so one request's
      span tree can be filtered out of a service soak. *)

  val write_chrome : string -> Snapshot.t -> unit
  (** [write_chrome path snapshot] writes {!to_chrome} to [path]. *)
end
