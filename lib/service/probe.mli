(** Limited-visibility reservation facade — now a thin client of
    {!Engine}.

    The paper assumes the application scheduler sees the whole reservation
    calendar (Section 3.2.2) and notes that, when administrators disable
    that feature, "the application schedule would have to be determined
    via (a bounded number of) trial-and-error reservation requests for
    each application task".  This module keeps that trial-and-error shape
    — request, grant-or-reject-with-suggestion, cancel — as a facade over
    a single-site {!Engine}, emitting {!Request.Reserve} and
    {!Request.Cancel} and translating nothing: {!response} {e is}
    {!Response.t}.

    @deprecated New code should speak {!Engine.handle} (or {!Engine.run}
    for enveloped streams) directly; this facade survives one release for
    the probe-counting idiom of [Mp_core.Blind] and the experiments. *)

type t

type response = Response.t
(** The unified service vocabulary.  {!request} only ever answers
    {!Response.Granted} or {!Response.Rejected}. *)

val create : Mp_platform.Calendar.t -> t
(** Wrap a calendar in a fresh single-site engine.  The facade is
    imperative: granted requests update the hidden state. *)

val engine : t -> Engine.t
(** The underlying engine (site 0 is the facade's site). *)

val request : t -> start:int -> dur:int -> procs:int -> response
(** Ask for [procs] processors over [\[start, start + dur)]. *)

val cancel : t -> Mp_platform.Reservation.t -> unit
(** Release a previously granted reservation (reservation systems let
    holders cancel).  Raises [Invalid_argument], naming the reservation,
    if it is not currently held — cancelling twice therefore fails with
    a message saying which reservation was not held. *)

val probes : t -> int
(** Number of requests made so far (granted or not). *)

val granted : t -> Mp_platform.Reservation.t list
(** Reservations granted so far and not cancelled, most recent first. *)

val reveal : t -> Mp_platform.Calendar.t
(** The hidden calendar's current state — for validation in tests and
    experiments only; a real system would not expose it. *)
