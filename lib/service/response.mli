(** The unified response type of the scheduling service.

    One typed answer vocabulary for every consumer that used to speak its
    own dialect: the trial-and-error reservation facade ({!Probe}, whose
    [Granted | Rejected] pair folds in here), the online competitor
    stream ([Mp_core.Online]), the one-shot CLI paths
    ([mpres schedule|deadline|explain]) and the long-running
    [mpres serve] daemon all receive {!t} values from
    {!Engine.handle}.

    Serialization round-trips through the shared hand-rolled JSON
    ({!Mp_prelude.Json}); {!of_json}[ (]{!to_json}[ r) = Ok r] for every
    response (pinned by a qcheck property in [test_service.ml]). *)

type t =
  | Granted
      (** a {!Request.Reserve} was placed; the site's live calendar is
          updated *)
  | Rejected of int option
      (** insufficient availability for a {!Request.Reserve}; carries the
          earliest start time at or after the requested one at which the
          request would currently succeed, if any *)
  | Available of int option
      (** answer to a {!Request.Probe} feasibility query: earliest start
          at or after the requested one that currently fits ([Some start]
          when the requested start itself fits), or [None] *)
  | Scheduled of { schedule : Mp_cpa.Schedule.t; deadline : int option }
      (** a {!Request.Submit_dag} was placed and its reservations
          committed to the site's calendar; [deadline] is the resolved
          deadline for RESSCHEDDL algorithms ([Some k] — the tightest one
          when the request asked for [Tightest]) and [None] for plain
          RESSCHED *)
  | Infeasible of { algo : string; deadline : int option }
      (** a deadline {!Request.Submit_dag} cannot be met: [Some k] when a
          fixed deadline [k] was requested, [None] when even the
          tightest-deadline search found nothing *)
  | Cancelled  (** a {!Request.Cancel} released its reservation *)
  | Explained of string
      (** the rendered forensics report of a {!Request.Explain} *)
  | Overloaded
      (** admission control shed the request: the site's bounded
          in-flight queue was full, or the request's queue-delay budget
          was exceeded before service could start *)
  | Error of string
      (** malformed or unserviceable request (unknown algorithm, unknown
          site, cancel of a reservation that is not held, ...) *)

val kind : t -> string
(** Short lowercase tag (["granted"], ["rejected"], ...) — the JSON
    discriminator, also used for response-count summaries. *)

val to_json : t -> Mp_prelude.Json.t
val to_string : t -> string

val of_json : Mp_prelude.Json.t -> (t, string) result
val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit
