(** The unified response type of the scheduling service.

    One typed answer vocabulary for every consumer that used to speak its
    own dialect: the trial-and-error reservation facade ({!Probe}, whose
    [Granted | Rejected] pair folds in here), the online competitor
    stream ([Mp_core.Online]), the one-shot CLI paths
    ([mpres schedule|deadline|explain]) and the long-running
    [mpres serve] daemon all receive {!t} values from
    {!Engine.handle}.

    Serialization round-trips through the shared hand-rolled JSON
    ({!Mp_prelude.Json}); {!of_json}[ (]{!to_json}[ r) = Ok r] for every
    response (pinned by a qcheck property in [test_service.ml]). *)

(** One entry of a site's bounded flight-recorder ring: the digest of a
    recently served request (everything except a {!Request.Stats}). *)
type digest = {
  d_id : int;  (** envelope id *)
  d_arrival : int;  (** simulated arrival time *)
  d_started : int;  (** simulated time service started (≥ arrival) *)
  d_outcome : string;  (** {!kind} of the response it received *)
}

(** The payload of a {!Stats} response — one site's live counters at the
    simulated instant the {!Request.Stats} was served.  All fields are
    integers (no floats) so the JSON round-trip is exact and a dumped
    trace replays bit-identically. *)
type stats = {
  requests : int;  (** requests served so far, including this one *)
  counts : (string * int) list;
      (** per-response-kind totals in {!kinds} order, zero counts kept *)
  shed_queue : int;  (** requests shed because the bounded queue was full *)
  shed_budget : int;  (** requests shed because their queue-delay budget ran out *)
  queue_depth : int;  (** in-flight queue depth at service time *)
  queue_peak : int;  (** maximum queue depth seen so far *)
  held : int;  (** point reservations currently held (cancel targets) *)
  breakpoints : int;  (** availability breakpoints in the site's calendar *)
  recent : digest list;  (** flight-recorder tail, oldest first, ≤ [last] entries *)
}

type t =
  | Granted
      (** a {!Request.Reserve} was placed; the site's live calendar is
          updated *)
  | Rejected of int option
      (** insufficient availability for a {!Request.Reserve}; carries the
          earliest start time at or after the requested one at which the
          request would currently succeed, if any *)
  | Available of int option
      (** answer to a {!Request.Probe} feasibility query: earliest start
          at or after the requested one that currently fits ([Some start]
          when the requested start itself fits), or [None] *)
  | Scheduled of { schedule : Mp_cpa.Schedule.t; deadline : int option }
      (** a {!Request.Submit_dag} was placed and its reservations
          committed to the site's calendar; [deadline] is the resolved
          deadline for RESSCHEDDL algorithms ([Some k] — the tightest one
          when the request asked for [Tightest]) and [None] for plain
          RESSCHED *)
  | Infeasible of { algo : string; deadline : int option }
      (** a deadline {!Request.Submit_dag} cannot be met: [Some k] when a
          fixed deadline [k] was requested, [None] when even the
          tightest-deadline search found nothing *)
  | Cancelled  (** a {!Request.Cancel} released its reservation *)
  | Explained of string
      (** the rendered forensics report of a {!Request.Explain} *)
  | Overloaded
      (** admission control shed the request: the site's bounded
          in-flight queue was full, or the request's queue-delay budget
          was exceeded before service could start *)
  | Stats of stats
      (** answer to a {!Request.Stats} introspection request *)
  | Error of string
      (** malformed or unserviceable request (unknown algorithm, unknown
          site, cancel of a reservation that is not held, ...) *)

val kind : t -> string
(** Short lowercase tag (["granted"], ["rejected"], ...) — the JSON
    discriminator, also used for response-count summaries. *)

val kinds : string list
(** Every kind tag in canonical order (the order {!stats.counts} is
    reported in); [List.nth kinds (kind_index r) = kind r]. *)

val n_kinds : int

val kind_index : t -> int
(** Position of [kind r] in {!kinds} — the engine's per-site count
    arrays are indexed by it. *)

val to_json : t -> Mp_prelude.Json.t
val to_string : t -> string

val of_json : Mp_prelude.Json.t -> (t, string) result
val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit
