(* [n_probes] counts only [request] calls, exactly as the pre-service
   facade did: [Mp_core.Blind]'s probe budget charges requests, not
   cancellations, and the budget is behaviour-defining there. *)
type t = { engine : Engine.t; mutable n_probes : int }

type response = Response.t

let create calendar =
  {
    engine =
      Engine.create ~sites:[| { Engine.calendar; q = Mp_platform.Calendar.procs calendar } |] ();
    n_probes = 0;
  }

let engine t = t.engine

let request t ~start ~dur ~procs =
  t.n_probes <- t.n_probes + 1;
  Engine.handle t.engine ~site:0 (Request.Reserve { start; dur; procs })

let cancel t (r : Mp_platform.Reservation.t) =
  match
    Engine.handle t.engine ~site:0
      (Request.Cancel { start = r.start; finish = r.finish; procs = r.procs })
  with
  | Response.Cancelled -> ()
  | Response.Error msg -> invalid_arg ("Probe.cancel: " ^ msg)
  | resp -> invalid_arg ("Probe.cancel: unexpected response " ^ Response.to_string resp)

let probes t = t.n_probes
let granted t = Engine.granted t.engine ~site:0
let reveal t = Engine.calendar t.engine ~site:0
