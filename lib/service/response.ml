module Json = Mp_prelude.Json
module Schedule = Mp_cpa.Schedule

type t =
  | Granted
  | Rejected of int option
  | Available of int option
  | Scheduled of { schedule : Mp_cpa.Schedule.t; deadline : int option }
  | Infeasible of { algo : string; deadline : int option }
  | Cancelled
  | Explained of string
  | Overloaded
  | Error of string

let kind = function
  | Granted -> "granted"
  | Rejected _ -> "rejected"
  | Available _ -> "available"
  | Scheduled _ -> "scheduled"
  | Infeasible _ -> "infeasible"
  | Cancelled -> "cancelled"
  | Explained _ -> "explained"
  | Overloaded -> "overloaded"
  | Error _ -> "error"

let int_opt = function None -> Json.Null | Some i -> Json.Num (float_of_int i)

let to_json r =
  let tag = ("response", Json.Str (kind r)) in
  match r with
  | Granted | Cancelled | Overloaded -> Json.Obj [ tag ]
  | Rejected s -> Json.Obj [ tag; ("suggestion", int_opt s) ]
  | Available s -> Json.Obj [ tag; ("start", int_opt s) ]
  | Scheduled { schedule; deadline } ->
      let slot (s : Schedule.slot) =
        Json.Arr
          [
            Num (float_of_int s.start); Num (float_of_int s.finish); Num (float_of_int s.procs);
          ]
      in
      Json.Obj
        [
          tag;
          ("deadline", int_opt deadline);
          ("slots", Json.Arr (Array.to_list (Array.map slot schedule.Schedule.slots)));
        ]
  | Infeasible { algo; deadline } ->
      Json.Obj [ tag; ("algo", Json.Str algo); ("deadline", int_opt deadline) ]
  | Explained report -> Json.Obj [ tag; ("report", Json.Str report) ]
  | Error msg -> Json.Obj [ tag; ("message", Json.Str msg) ]

let to_string r = Json.to_string (to_json r)

let opt_int_field j name =
  match Json.field j name with
  | None | Some Json.Null -> Ok None
  | Some (Json.Num f) -> Ok (Some (int_of_float f))
  | Some _ -> Result.Error (Printf.sprintf "response field %S must be an int or null" name)

let of_json j =
  let ( let* ) = Result.bind in
  match Json.str j "response" with
  | None -> Result.Error "missing \"response\" tag"
  | Some "granted" -> Ok Granted
  | Some "cancelled" -> Ok Cancelled
  | Some "overloaded" -> Ok Overloaded
  | Some "rejected" ->
      let* s = opt_int_field j "suggestion" in
      Ok (Rejected s)
  | Some "available" ->
      let* s = opt_int_field j "start" in
      Ok (Available s)
  | Some "scheduled" -> (
      let* deadline = opt_int_field j "deadline" in
      match Json.arr j "slots" with
      | None -> Result.Error "scheduled response: missing slots"
      | Some slots ->
          let slot = function
            | Json.Arr [ Json.Num s; Json.Num f; Json.Num p ] ->
                Ok
                  ({ start = int_of_float s; finish = int_of_float f; procs = int_of_float p }
                    : Schedule.slot)
            | _ -> Result.Error "scheduled response: slot must be [start,finish,procs]"
          in
          let* slots =
            List.fold_left
              (fun acc sj ->
                let* acc = acc in
                let* s = slot sj in
                Ok (s :: acc))
              (Ok []) slots
          in
          Ok (Scheduled { schedule = { Schedule.slots = Array.of_list (List.rev slots) }; deadline }))
  | Some "infeasible" -> (
      let* deadline = opt_int_field j "deadline" in
      match Json.str j "algo" with
      | Some algo -> Ok (Infeasible { algo; deadline })
      | None -> Result.Error "infeasible response: missing algo")
  | Some "explained" -> (
      match Json.str j "report" with
      | Some report -> Ok (Explained report)
      | None -> Result.Error "explained response: missing report")
  | Some "error" -> (
      match Json.str j "message" with
      | Some msg -> Ok (Error msg)
      | None -> Result.Error "error response: missing message")
  | Some other -> Result.Error (Printf.sprintf "unknown response kind %S" other)

let of_string text =
  match Json.of_string text with Result.Error _ as e -> e | Ok j -> of_json j

let pp ppf r = Format.pp_print_string ppf (to_string r)
