module Json = Mp_prelude.Json
module Schedule = Mp_cpa.Schedule

type digest = { d_id : int; d_arrival : int; d_started : int; d_outcome : string }

type stats = {
  requests : int;
  counts : (string * int) list;
  shed_queue : int;
  shed_budget : int;
  queue_depth : int;
  queue_peak : int;
  held : int;
  breakpoints : int;
  recent : digest list;
}

type t =
  | Granted
  | Rejected of int option
  | Available of int option
  | Scheduled of { schedule : Mp_cpa.Schedule.t; deadline : int option }
  | Infeasible of { algo : string; deadline : int option }
  | Cancelled
  | Explained of string
  | Overloaded
  | Stats of stats
  | Error of string

let kind = function
  | Granted -> "granted"
  | Rejected _ -> "rejected"
  | Available _ -> "available"
  | Scheduled _ -> "scheduled"
  | Infeasible _ -> "infeasible"
  | Cancelled -> "cancelled"
  | Explained _ -> "explained"
  | Overloaded -> "overloaded"
  | Stats _ -> "stats"
  | Error _ -> "error"

(* Canonical kind order: index into the engine's per-site count array and
   the order [Stats.counts] is reported in. *)
let kinds =
  [
    "granted"; "rejected"; "available"; "scheduled"; "infeasible"; "cancelled"; "explained";
    "overloaded"; "stats"; "error";
  ]

let n_kinds = List.length kinds

let kind_index r =
  let k = kind r in
  let rec go i = function
    | [] -> assert false
    | k' :: tl -> if k = k' then i else go (i + 1) tl
  in
  go 0 kinds

let int_opt = function None -> Json.Null | Some i -> Json.Num (float_of_int i)

let to_json r =
  let tag = ("response", Json.Str (kind r)) in
  match r with
  | Granted | Cancelled | Overloaded -> Json.Obj [ tag ]
  | Rejected s -> Json.Obj [ tag; ("suggestion", int_opt s) ]
  | Available s -> Json.Obj [ tag; ("start", int_opt s) ]
  | Scheduled { schedule; deadline } ->
      let slot (s : Schedule.slot) =
        Json.Arr
          [
            Num (float_of_int s.start); Num (float_of_int s.finish); Num (float_of_int s.procs);
          ]
      in
      Json.Obj
        [
          tag;
          ("deadline", int_opt deadline);
          ("slots", Json.Arr (Array.to_list (Array.map slot schedule.Schedule.slots)));
        ]
  | Infeasible { algo; deadline } ->
      Json.Obj [ tag; ("algo", Json.Str algo); ("deadline", int_opt deadline) ]
  | Explained report -> Json.Obj [ tag; ("report", Json.Str report) ]
  | Stats s ->
      let digest d =
        Json.Arr
          [
            Num (float_of_int d.d_id); Num (float_of_int d.d_arrival);
            Num (float_of_int d.d_started); Str d.d_outcome;
          ]
      in
      let n v = Json.Num (float_of_int v) in
      Json.Obj
        [
          tag;
          ("requests", n s.requests);
          ("counts", Json.Obj (List.map (fun (k, v) -> (k, n v)) s.counts));
          ("shed_queue", n s.shed_queue);
          ("shed_budget", n s.shed_budget);
          ("queue_depth", n s.queue_depth);
          ("queue_peak", n s.queue_peak);
          ("held", n s.held);
          ("breakpoints", n s.breakpoints);
          ("recent", Json.Arr (List.map digest s.recent));
        ]
  | Error msg -> Json.Obj [ tag; ("message", Json.Str msg) ]

let to_string r = Json.to_string (to_json r)

let opt_int_field j name =
  match Json.field j name with
  | None | Some Json.Null -> Ok None
  | Some (Json.Num f) -> Ok (Some (int_of_float f))
  | Some _ -> Result.Error (Printf.sprintf "response field %S must be an int or null" name)

let of_json j =
  let ( let* ) = Result.bind in
  match Json.str j "response" with
  | None -> Result.Error "missing \"response\" tag"
  | Some "granted" -> Ok Granted
  | Some "cancelled" -> Ok Cancelled
  | Some "overloaded" -> Ok Overloaded
  | Some "rejected" ->
      let* s = opt_int_field j "suggestion" in
      Ok (Rejected s)
  | Some "available" ->
      let* s = opt_int_field j "start" in
      Ok (Available s)
  | Some "scheduled" -> (
      let* deadline = opt_int_field j "deadline" in
      match Json.arr j "slots" with
      | None -> Result.Error "scheduled response: missing slots"
      | Some slots ->
          let slot = function
            | Json.Arr [ Json.Num s; Json.Num f; Json.Num p ] ->
                Ok
                  ({ start = int_of_float s; finish = int_of_float f; procs = int_of_float p }
                    : Schedule.slot)
            | _ -> Result.Error "scheduled response: slot must be [start,finish,procs]"
          in
          let* slots =
            List.fold_left
              (fun acc sj ->
                let* acc = acc in
                let* s = slot sj in
                Ok (s :: acc))
              (Ok []) slots
          in
          Ok (Scheduled { schedule = { Schedule.slots = Array.of_list (List.rev slots) }; deadline }))
  | Some "infeasible" -> (
      let* deadline = opt_int_field j "deadline" in
      match Json.str j "algo" with
      | Some algo -> Ok (Infeasible { algo; deadline })
      | None -> Result.Error "infeasible response: missing algo")
  | Some "explained" -> (
      match Json.str j "report" with
      | Some report -> Ok (Explained report)
      | None -> Result.Error "explained response: missing report")
  | Some "stats" ->
      let req name =
        match Json.int_ j name with
        | Some v -> Ok v
        | None -> Result.Error (Printf.sprintf "stats response: field %S must be an int" name)
      in
      let* requests = req "requests" in
      let* counts =
        match Json.obj j "counts" with
        | None -> Result.Error "stats response: missing counts"
        | Some fields ->
            List.fold_left
              (fun acc (k, v) ->
                let* acc = acc in
                match Json.to_int v with
                | Some v -> Ok ((k, v) :: acc)
                | None -> Result.Error "stats response: counts must be ints")
              (Ok []) fields
            |> Result.map List.rev
      in
      let* shed_queue = req "shed_queue" in
      let* shed_budget = req "shed_budget" in
      let* queue_depth = req "queue_depth" in
      let* queue_peak = req "queue_peak" in
      let* held = req "held" in
      let* breakpoints = req "breakpoints" in
      let* recent =
        match Json.arr j "recent" with
        | None -> Result.Error "stats response: missing recent"
        | Some l ->
            List.fold_left
              (fun acc dj ->
                let* acc = acc in
                match dj with
                | Json.Arr [ Json.Num id; Json.Num arrival; Json.Num started; Json.Str outcome ]
                  ->
                    Ok
                      ({
                         d_id = int_of_float id;
                         d_arrival = int_of_float arrival;
                         d_started = int_of_float started;
                         d_outcome = outcome;
                       }
                      :: acc)
                | _ ->
                    Result.Error "stats response: digest must be [id,arrival,started,outcome]")
              (Ok []) l
            |> Result.map List.rev
      in
      Ok
        (Stats
           {
             requests; counts; shed_queue; shed_budget; queue_depth; queue_peak; held;
             breakpoints; recent;
           })
  | Some "error" -> (
      match Json.str j "message" with
      | Some msg -> Ok (Error msg)
      | None -> Result.Error "error response: missing message")
  | Some other -> Result.Error (Printf.sprintf "unknown response kind %S" other)

let of_string text =
  match Json.of_string text with Result.Error _ as e -> e | Ok j -> of_json j

let pp ppf r = Format.pp_print_string ppf (to_string r)
