(** The unified request type of the scheduling service.

    The paper assumes a frozen calendar and a one-shot scheduler; its own
    discussion (Sections 3.2.2 and 7) — and Moise et al.'s reservation
    negotiation protocol — describe the deployment shape this module
    types: a stream of request/grant/reject interactions against a live
    calendar.  Every consumer builds {!t} values: the {!Probe} facade
    emits {!Reserve}/{!Cancel}, the [Mp_core.Online] competitor stream is
    a [t list array], the one-shot CLI paths submit one {!Submit_dag} or
    {!Explain}, and [mpres serve] consumes a whole {!envelope} stream.

    Serialization round-trips through {!Mp_prelude.Json} (including the
    embedded DAG), so a request trace can be dumped, shipped, and
    replayed bit-identically. *)

(** Deadline demanded by a {!Submit_dag}. *)
type deadline_spec =
  | No_deadline  (** RESSCHED: minimize turn-around, no constraint *)
  | By of int  (** RESSCHEDDL: finish by the given time *)
  | Tightest
      (** RESSCHEDDL: search for the tightest feasible deadline
          ([Mp_core.Deadline.tightest]) *)

type t =
  | Submit_dag of { dag : Mp_dag.Dag.t; algo : string; deadline : deadline_spec }
      (** schedule a whole application DAG with the named algorithm and
          commit its reservations to the site's live calendar *)
  | Reserve of { start : int; dur : int; procs : int }
      (** ask for [procs] processors over [\[start, start + dur)] —
          the {!Probe} request, granted or rejected with the earliest
          feasible alternative start *)
  | Probe of { start : int; dur : int; procs : int }
      (** feasibility query: where could this reservation start, at or
          after [start]?  Never changes the calendar. *)
  | Cancel of { start : int; finish : int; procs : int }
      (** release a previously granted reservation *)
  | Explain of { dag : Mp_dag.Dag.t; algo : string; deadline : int option; format : string }
      (** run the algorithm with the decision journal on and return the
          rendered forensics report ([format] is [text|json|svg|html]);
          [deadline = None] resolves the tightest deadline for
          RESSCHEDDL algorithms.  Never changes the calendar. *)
  | Stats of { last : int }
      (** in-band introspection: a {!Response.Stats} snapshot of the
          site's per-kind response counts, shed causes, queue depth and
          calendar occupancy, plus the last [min last K] outcomes from
          the site's bounded flight-recorder ring ([last = 0] for none).
          Never changes the calendar; counts as one simulated second of
          service like the other point operations. *)

val kind : t -> string
(** Short lowercase tag (["submit_dag"], ["reserve"], ...) — the JSON
    discriminator. *)

val cost : t -> int
(** Deterministic service-time model used by the admission-control queue
    simulation in {!Engine.run}: 1 simulated second for the calendar
    point operations ({!Reserve}, {!Probe}, {!Cancel}), one per task for
    the whole-DAG operations ({!Submit_dag}, {!Explain}).  A model, not a
    measurement — it only has to be deterministic so that replaying a
    trace sheds exactly the same requests at any [--jobs] value. *)

(** One request of a service stream: which site it targets, when it
    arrives (simulated seconds), and how long it is willing to wait. *)
type envelope = {
  id : int;  (** unique, increasing — responses merge back in id order *)
  site : int;
  arrival : int;  (** simulated arrival time, non-decreasing per stream *)
  budget : int option;
      (** per-request deadline budget: maximum simulated queue delay
          tolerated before the request is shed as
          {!Response.Overloaded}; [None] waits forever *)
  payload : t;
}

val to_json : t -> Mp_prelude.Json.t
val of_json : Mp_prelude.Json.t -> (t, string) result

val envelope_to_json : envelope -> Mp_prelude.Json.t
val envelope_of_json : Mp_prelude.Json.t -> (envelope, string) result

val to_string : t -> string
val of_string : string -> (t, string) result

val envelope_to_string : envelope -> string
(** One line of a request-trace JSONL dump ([mpres serve --dump]). *)

val envelope_of_string : string -> (envelope, string) result

val dag_to_json : Mp_dag.Dag.t -> Mp_prelude.Json.t
(** [{"tasks":[\[seq,alpha\],...],"edges":[\[pred,succ\],...]}]; task ids
    are implicit array positions, floats print exactly
    ({!Mp_prelude.Json.float_str}). *)

val dag_of_json : Mp_prelude.Json.t -> (Mp_dag.Dag.t, string) result
