(** The scheduling-service engine: typed requests against live per-site
    calendars.

    One engine owns an array of sites, each an independently sharded
    availability calendar — a long-lived {!Mp_platform.Calendar.Txn} over
    its own {!Mp_index} tree, so per-request fit queries and commits cost
    O(log R) even with 10⁵–10⁶ live reservations — plus the processor
    budget [q] given to DAG schedulers.  {!handle}
    services one {!Request.t} against one site and returns a
    {!Response.t}; {!run} consumes a whole {!Request.envelope} stream with
    deterministic admission control, optionally fanning sites out over an
    {!Mp_prelude.Pool}.

    {2 Determinism contract}

    A site is a sequential FIFO server: its requests are serviced one at a
    time in ⟨arrival, id⟩ order, and sites share no mutable state, so the
    outcome of every request — including which requests admission control
    sheds — is a pure function of the engine's initial state and the
    envelope stream.  {!run} therefore returns bit-identical outcomes for
    any pool size ([--jobs] fans {e sites} out, never requests; pinned by
    a qcheck property in [test_service.ml]).

    Admission control runs in {e simulated} time against the deterministic
    {!Request.cost} model, never wall-clock: each site tracks when its
    server frees up, sheds arrivals that would exceed [queue_limit]
    waiting requests, and sheds requests whose simulated queue delay
    exceeds their envelope [budget].  Wall-clock appears only in the
    record-only [wall_ns] measurement ({!outcome}), which feeds the bench
    latency percentiles and nothing else.

    {2 Observability}

    Every {!handle} wraps the dispatch in the ["service.request"]
    {!Mp_obs.Span} and ["service.handle"] {!Mp_obs.Timer} and bumps one
    ["service.<kind>"] counter per response ([service.granted],
    [service.rejected], ...); granted/rejected [Reserve]s are recorded
    with {!Mp_forensics.Journal.grant}.  Under {!run}, each envelope's
    admission decision is the ["service.admission"] span, fit queries and
    calendar mutations inside dispatch are ["service.fit"] and
    ["service.commit"] child spans, and all of a request's spans carry its
    envelope id and site as a trace tag ({!Mp_obs.Tag}), so one request's
    admission → fit → commit tree can be filtered out of a soak in
    Perfetto.  All record-only: tracing cannot change any decision.

    {2 Telemetry}

    Independent of tracing (and always on), each site keeps per-kind
    response counts, shed causes, simulated queue depth/peak and a
    bounded flight-recorder ring of the last 64 outcome digests — all
    simulated-time quantities mutated only from the site's own
    sequential stream, introspectable in-band with {!Request.Stats} and
    sampled into a time series by {!run}[ ~stats] (see {!Stats}).
    Record-only, like the probes: no scheduling decision reads them. *)

(** One site of the service: a live calendar plus the processor budget
    handed to DAG schedulers. *)
type site_spec = { calendar : Mp_platform.Calendar.t; q : int }

(** DAG-scheduling entry points injected by the layer that owns the
    algorithm registry ([Mp_core.Serve]); the engine itself only knows how
    to commit the resulting reservations.  Handlers run on worker domains
    under {!run} and must therefore be domain-safe (pure with respect to
    shared mutable state). *)
type handlers = {
  submit :
    algo:string ->
    deadline:Request.deadline_spec ->
    q:int ->
    Mp_platform.Calendar.t ->
    Mp_dag.Dag.t ->
    Response.t;
      (** Answer a {!Request.Submit_dag}: [Scheduled] (whose reservations
          the engine then commits to the site calendar), [Infeasible], or
          [Error]. *)
  explain :
    algo:string ->
    deadline:int option ->
    format:string ->
    q:int ->
    Mp_platform.Calendar.t ->
    Mp_dag.Dag.t ->
    Response.t;
      (** Answer a {!Request.Explain} with an [Explained] report; never
          changes the calendar. *)
}

val no_handlers : handlers
(** Both entry points answer [Error "no scheduler attached (wire
    Mp_core.Serve.handlers)"] — the default, so the pure
    reservation-protocol subset works without [Mp_core]. *)

type t

val create : ?handlers:handlers -> sites:site_spec array -> unit -> t
(** A fresh engine over copies of the given site specs (the spec array is
    not retained).  Raises [Invalid_argument] on an empty site array.
    Default handlers {!no_handlers}. *)

val handle : t -> site:int -> Request.t -> Response.t
(** Service one request immediately (no admission control):

    - [Reserve]: grant and commit, or reject with the earliest feasible
      alternative start — exactly the trial-and-error semantics the
      {!Probe} facade exposes (nonsensical arguments and [procs] beyond
      the cluster reject with no suggestion);
    - [Probe]: answer the feasibility query, calendar untouched;
    - [Cancel]: release a reservation granted by a previous [Reserve];
      [Error] naming the reservation when it is not held;
    - [Submit_dag]: run the injected handler, then commit the scheduled
      reservations to the site calendar;
    - [Explain]: run the injected handler, calendar untouched;
    - [Stats]: snapshot the site's telemetry state (per-kind counts,
      shed causes, queue depth/peak, held reservations, calendar
      breakpoints, last [last] flight-recorder digests), calendar
      untouched.

    An out-of-range [site] answers [Error] (and is counted against no
    site). *)

(** Result of one enveloped request of a {!run} batch. *)
type outcome = {
  id : int;  (** the envelope's id *)
  site : int;
  arrival : int;
  started : int;
      (** simulated time service started ([arrival] when the request was
          shed or failed before service) *)
  response : Response.t;
  wall_ns : int;
      (** wall-clock spent in {!handle} when [run ~measure:true], else 0;
          record-only *)
}

(** Deterministic telemetry time series of a {!run}.

    A sink collects one {!Mp_forensics.Telemetry.sample} per site per
    [every] simulated seconds: per-kind response counts, shed causes,
    queue depth/peak, calendar occupancy and breakpoints, index-visit
    deltas and the sojourn (finish − arrival) histogram of the window.
    Each site's worker writes only its own slot, so collection adds no
    cross-site mutable state: the series is bit-identical for any pool
    size and across a dump/replay pair (pinned in [test_service.ml]).
    Simulated time only — wall-clock never enters a sample. *)
module Stats : sig
  type sink

  val sink : every:int -> unit -> sink
  (** A fresh sink sampling every [every] simulated seconds (window ends
      at [every], [2*every], ...).  Raises [Invalid_argument] when
      [every < 1].  Reusable: each {!run} replaces its contents. *)

  val samples : sink -> Mp_forensics.Telemetry.sample list
  (** The last run's series, sorted by ⟨window end, site⟩.  Sites emit
      windows from the first sampling boundary up to the one containing
      their last simulated activity (max of last arrival and server
      drain); a site with no envelopes emits nothing. *)
end

val run :
  ?pool:Mp_prelude.Pool.t ->
  ?queue_limit:int ->
  ?measure:bool ->
  ?stats:Stats.sink ->
  t ->
  Request.envelope list ->
  outcome list
(** Consume an envelope stream.  Envelopes are grouped per site and each
    site serviced in ⟨arrival, id⟩ order through the simulated FIFO queue
    (see the determinism contract above); with [pool], sites are fanned
    over the pool's workers.  [queue_limit] (default unbounded) sheds an
    arrival as {!Response.Overloaded} when that many admitted requests are
    still queued or in service; an envelope [budget] sheds the request
    when its simulated queue delay would exceed the budget.  Envelopes
    naming an unknown site come back as [Error] outcomes.  Outcomes are
    returned in envelope-id order.  [measure] (default [false]) records
    per-request wall-clock.  [stats] collects the telemetry time series
    of this run.  One batch at a time per engine. *)

val requests : t -> int
(** Requests serviced so far, summed over sites ({!handle} calls; shed
    requests never reach service and are not counted). *)

val granted : t -> site:int -> Mp_platform.Reservation.t list
(** Reservations granted to [Reserve] requests and not yet cancelled, most
    recent first. *)

val calendar : t -> site:int -> Mp_platform.Calendar.t
(** The site's current calendar. *)

val n_sites : t -> int
