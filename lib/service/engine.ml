module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Journal = Mp_forensics.Journal

type site_spec = { calendar : Calendar.t; q : int }

type handlers = {
  submit :
    algo:string ->
    deadline:Request.deadline_spec ->
    q:int ->
    Calendar.t ->
    Mp_dag.Dag.t ->
    Response.t;
  explain :
    algo:string ->
    deadline:int option ->
    format:string ->
    q:int ->
    Calendar.t ->
    Mp_dag.Dag.t ->
    Response.t;
}

let no_scheduler _ = Response.Error "no scheduler attached (wire Mp_core.Serve.handlers)"

let no_handlers =
  {
    submit = (fun ~algo:_ ~deadline:_ ~q:_ _ dag -> no_scheduler dag);
    explain = (fun ~algo:_ ~deadline:_ ~format:_ ~q:_ _ dag -> no_scheduler dag);
  }

(* Each site owns one long-lived {!Calendar.Txn}: an independent shard
   of the availability index ({!Mp_index}), mutated only by this site's
   sequential request stream — sites share no mutable state, which is
   what lets {!run} fan them over worker domains.  Handlers and the
   {!calendar} accessor see O(1) persistent snapshots ([Txn.commit]);
   whole-DAG commits go through a trial transaction forked from the
   current snapshot so a failing schedule leaves the site untouched. *)
type site = {
  q : int;
  mutable txn : Calendar.Txn.t;
  mutable held : Reservation.t list;  (* most recent first *)
  mutable n_requests : int;
}

type t = { sites : site array; handlers : handlers }

let create ?(handlers = no_handlers) ~sites () =
  if Array.length sites = 0 then invalid_arg "Engine.create: no sites";
  let site (s : site_spec) =
    { q = s.q; txn = Calendar.Txn.start s.calendar; held = []; n_requests = 0 }
  in
  { sites = Array.map site sites; handlers }

(* --- observability (record-only) --------------------------------------- *)

let span_request = Mp_obs.Span.make "service.request"
let timer_handle = Mp_obs.Timer.make "service.handle"
let c_granted = Mp_obs.Counter.make "service.granted"
let c_rejected = Mp_obs.Counter.make "service.rejected"
let c_available = Mp_obs.Counter.make "service.available"
let c_scheduled = Mp_obs.Counter.make "service.scheduled"
let c_infeasible = Mp_obs.Counter.make "service.infeasible"
let c_cancelled = Mp_obs.Counter.make "service.cancelled"
let c_explained = Mp_obs.Counter.make "service.explained"
let c_overloaded = Mp_obs.Counter.make "service.overloaded"
let c_error = Mp_obs.Counter.make "service.error"

let count_response = function
  | Response.Granted -> Mp_obs.Counter.incr c_granted
  | Response.Rejected _ -> Mp_obs.Counter.incr c_rejected
  | Response.Available _ -> Mp_obs.Counter.incr c_available
  | Response.Scheduled _ -> Mp_obs.Counter.incr c_scheduled
  | Response.Infeasible _ -> Mp_obs.Counter.incr c_infeasible
  | Response.Cancelled -> Mp_obs.Counter.incr c_cancelled
  | Response.Explained _ -> Mp_obs.Counter.incr c_explained
  | Response.Overloaded -> Mp_obs.Counter.incr c_overloaded
  | Response.Error _ -> Mp_obs.Counter.incr c_error

(* --- dispatch ----------------------------------------------------------- *)

(* Exactly the trial-and-error semantics of the old [Probe.request]: the
   facade is now a client of this code path, and [Mp_core.Blind]'s
   "blind matches omniscient" pin depends on grant/suggestion behaviour
   staying put. *)
let reserve site ~start ~dur ~procs =
  if start < 0 || dur < 1 || procs < 1 then Response.Rejected None
  else if procs > Calendar.Txn.procs site.txn then Response.Rejected None
  else begin
    let r = Reservation.make ~start ~finish:(start + dur) ~procs in
    if Calendar.Txn.reserve_opt site.txn r then begin
      site.held <- r :: site.held;
      if !Journal.enabled then Journal.grant ~start ~finish:(start + dur) ~procs ~granted:true;
      Response.Granted
    end
    else begin
      if !Journal.enabled then Journal.grant ~start ~finish:(start + dur) ~procs ~granted:false;
      Response.Rejected (Calendar.Txn.earliest_fit site.txn ~after:start ~procs ~dur)
    end
  end

let probe site ~start ~dur ~procs =
  if start < 0 || dur < 1 || procs < 1 || procs > Calendar.Txn.procs site.txn then
    Response.Available None
  else Response.Available (Calendar.Txn.earliest_fit site.txn ~after:start ~procs ~dur)

let cancel site ~start ~finish ~procs =
  let not_held () =
    Response.Error (Printf.sprintf "reservation [%d, %d) x %d is not held" start finish procs)
  in
  if start >= finish || procs < 1 then not_held ()
  else begin
    let r = Reservation.make ~start ~finish ~procs in
    let rec remove = function
      | [] -> None
      | r' :: rest when r' = r -> Some rest
      | r' :: rest -> Option.map (fun rest -> r' :: rest) (remove rest)
    in
    match remove site.held with
    | None -> not_held ()
    | Some held ->
        site.held <- held;
        Calendar.Txn.release site.txn r;
        Response.Cancelled
  end

let submit t site ~algo ~deadline dag =
  match t.handlers.submit ~algo ~deadline ~q:site.q (Calendar.Txn.commit site.txn) dag with
  | Response.Scheduled { schedule; _ } as resp ->
      (* All-or-nothing: apply the schedule to a trial transaction forked
         off the current state (both forks are O(1)); adopt it only if
         every reservation fits, so a failing schedule leaves the site's
         shard untouched. *)
      let trial = Calendar.Txn.start (Calendar.Txn.commit site.txn) in
      if List.for_all (Calendar.Txn.reserve_opt trial) (Mp_cpa.Schedule.reservations schedule)
      then begin
        site.txn <- trial;
        resp
      end
      else Response.Error "submit_dag: schedule overcommits the site calendar"
  | resp -> resp

let dispatch t site (r : Request.t) =
  match r with
  | Reserve { start; dur; procs } -> reserve site ~start ~dur ~procs
  | Probe { start; dur; procs } -> probe site ~start ~dur ~procs
  | Cancel { start; finish; procs } -> cancel site ~start ~finish ~procs
  | Submit_dag { dag; algo; deadline } -> submit t site ~algo ~deadline dag
  | Explain { dag; algo; deadline; format } ->
      t.handlers.explain ~algo ~deadline ~format ~q:site.q (Calendar.Txn.commit site.txn) dag

let handle t ~site r =
  if site < 0 || site >= Array.length t.sites then begin
    let resp = Response.Error (Printf.sprintf "unknown site %d" site) in
    count_response resp;
    resp
  end
  else begin
    let s = t.sites.(site) in
    s.n_requests <- s.n_requests + 1;
    Mp_obs.Span.enter span_request;
    let t0 = Mp_obs.Timer.start () in
    let resp = try dispatch t s r with Invalid_argument msg -> Response.Error msg in
    Mp_obs.Timer.stop timer_handle t0;
    Mp_obs.Span.exit span_request;
    count_response resp;
    resp
  end

(* --- enveloped streams with admission control --------------------------- *)

type outcome = {
  id : int;
  site : int;
  arrival : int;
  started : int;
  response : Response.t;
  wall_ns : int;
}

(* One site's envelopes in ⟨arrival, id⟩ order through a simulated
   single-server FIFO queue.  Simulated time only: [free_at] is when the
   server next idles, [inflight] the finish times of admitted requests
   not yet complete at the head arrival (monotone, so draining the front
   is enough).  Decisions depend only on the envelope stream and the
   deterministic [Request.cost] model — never on wall-clock. *)
let run_site t ~queue_limit ~measure site_idx envelopes =
  let envelopes =
    List.stable_sort
      (fun (a : Request.envelope) b ->
        match compare a.arrival b.arrival with 0 -> compare a.id b.id | c -> c)
      envelopes
  in
  let free_at = ref 0 in
  let inflight = Queue.create () in
  let serve (e : Request.envelope) =
    while (not (Queue.is_empty inflight)) && Queue.peek inflight <= e.arrival do
      ignore (Queue.pop inflight)
    done;
    let shed () =
      let resp = Response.Overloaded in
      count_response resp;
      { id = e.id; site = site_idx; arrival = e.arrival; started = e.arrival;
        response = resp; wall_ns = 0 }
    in
    if Queue.length inflight >= queue_limit then shed ()
    else begin
      let started = max e.arrival !free_at in
      let over_budget =
        match e.budget with None -> false | Some b -> started - e.arrival > b
      in
      if over_budget then shed ()
      else begin
        let finish = started + max 1 (Request.cost e.payload) in
        free_at := finish;
        Queue.push finish inflight;
        let t0 = if measure then Mp_obs.now_ns () else 0 in
        let response = handle t ~site:site_idx e.payload in
        let wall_ns = if measure then Mp_obs.now_ns () - t0 else 0 in
        { id = e.id; site = site_idx; arrival = e.arrival; started; response;
          wall_ns = max 0 wall_ns }
      end
    end
  in
  List.map serve envelopes

let run ?pool ?(queue_limit = max_int) ?(measure = false) t envelopes =
  let n = Array.length t.sites in
  let per_site = Array.make n [] in
  let bad =
    List.filter_map
      (fun (e : Request.envelope) ->
        if e.site < 0 || e.site >= n then begin
          let response = Response.Error (Printf.sprintf "unknown site %d" e.site) in
          count_response response;
          Some
            { id = e.id; site = e.site; arrival = e.arrival; started = e.arrival;
              response; wall_ns = 0 }
        end
        else begin
          per_site.(e.site) <- e :: per_site.(e.site);
          None
        end)
      envelopes
  in
  let jobs = Array.to_list (Array.mapi (fun i es -> (i, List.rev es)) per_site) in
  let f (i, es) = run_site t ~queue_limit ~measure i es in
  let per_site_outcomes = match pool with None -> List.map f jobs | Some p -> Mp_prelude.Pool.map p f jobs in
  List.sort
    (fun a b -> compare a.id b.id)
    (List.concat (bad :: per_site_outcomes))

(* --- accessors ----------------------------------------------------------- *)

let check_site t site name =
  if site < 0 || site >= Array.length t.sites then
    invalid_arg (Printf.sprintf "Engine.%s: unknown site %d" name site)

let requests t = Array.fold_left (fun acc s -> acc + s.n_requests) 0 t.sites

let granted t ~site =
  check_site t site "granted";
  t.sites.(site).held

let calendar t ~site =
  check_site t site "calendar";
  Calendar.Txn.commit t.sites.(site).txn

let n_sites t = Array.length t.sites
