module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Journal = Mp_forensics.Journal

type site_spec = { calendar : Calendar.t; q : int }

type handlers = {
  submit :
    algo:string ->
    deadline:Request.deadline_spec ->
    q:int ->
    Calendar.t ->
    Mp_dag.Dag.t ->
    Response.t;
  explain :
    algo:string ->
    deadline:int option ->
    format:string ->
    q:int ->
    Calendar.t ->
    Mp_dag.Dag.t ->
    Response.t;
}

let no_scheduler _ = Response.Error "no scheduler attached (wire Mp_core.Serve.handlers)"

let no_handlers =
  {
    submit = (fun ~algo:_ ~deadline:_ ~q:_ _ dag -> no_scheduler dag);
    explain = (fun ~algo:_ ~deadline:_ ~format:_ ~q:_ _ dag -> no_scheduler dag);
  }

(* Bounded flight recorder: the last [ring_cap] outcome digests of a
   site's enveloped stream, preallocated so recording never allocates.
   [r_len] counts every push; slot [r_len mod ring_cap] is overwritten. *)
let ring_cap = 64

type ring = {
  r_id : int array;
  r_arrival : int array;
  r_started : int array;
  r_kind : int array;  (* Response.kind_index *)
  mutable r_len : int;
}

let ring_create () =
  {
    r_id = Array.make ring_cap 0;
    r_arrival = Array.make ring_cap 0;
    r_started = Array.make ring_cap 0;
    r_kind = Array.make ring_cap 0;
    r_len = 0;
  }

let ring_push r ~id ~arrival ~started ~kind =
  let i = r.r_len mod ring_cap in
  r.r_id.(i) <- id;
  r.r_arrival.(i) <- arrival;
  r.r_started.(i) <- started;
  r.r_kind.(i) <- kind;
  r.r_len <- r.r_len + 1

(* Last [k] digests, oldest first. *)
let ring_recent r k =
  let avail = min r.r_len ring_cap in
  let k = max 0 (min k avail) in
  List.init k (fun j ->
      let i = (r.r_len - k + j) mod ring_cap in
      {
        Response.d_id = r.r_id.(i);
        d_arrival = r.r_arrival.(i);
        d_started = r.r_started.(i);
        d_outcome = List.nth Response.kinds r.r_kind.(i);
      })

(* Each site owns one long-lived {!Calendar.Txn}: an independent shard
   of the availability index ({!Mp_index}), mutated only by this site's
   sequential request stream — sites share no mutable state, which is
   what lets {!run} fan them over worker domains.  Handlers and the
   {!calendar} accessor see O(1) persistent snapshots ([Txn.commit]);
   whole-DAG commits go through a trial transaction forked from the
   current snapshot so a failing schedule leaves the site untouched.

   The stats fields below are the telemetry state a {!Request.Stats}
   snapshots: all simulated-time or request-count quantities, mutated
   only from the site's own sequential stream (so they stay jobs- and
   replay-invariant), and record-only — dispatch never reads them back
   into a scheduling decision. *)
type site = {
  q : int;
  mutable txn : Calendar.Txn.t;
  mutable held : Reservation.t list;  (* most recent first *)
  mutable n_requests : int;
  counts : int array;  (* responses issued, by Response.kind_index *)
  mutable shed_queue : int;
  mutable shed_budget : int;
  mutable queue_depth : int;  (* simulated in-flight depth, kept by run_site *)
  mutable queue_peak : int;
  ring : ring;
}

type t = { sites : site array; handlers : handlers }

let create ?(handlers = no_handlers) ~sites () =
  if Array.length sites = 0 then invalid_arg "Engine.create: no sites";
  let site (s : site_spec) =
    {
      q = s.q;
      txn = Calendar.Txn.start s.calendar;
      held = [];
      n_requests = 0;
      counts = Array.make Response.n_kinds 0;
      shed_queue = 0;
      shed_budget = 0;
      queue_depth = 0;
      queue_peak = 0;
      ring = ring_create ();
    }
  in
  { sites = Array.map site sites; handlers }

(* --- observability (record-only) --------------------------------------- *)

let span_request = Mp_obs.Span.make "service.request"
let span_admission = Mp_obs.Span.make "service.admission"
let span_fit = Mp_obs.Span.make "service.fit"
let span_commit = Mp_obs.Span.make "service.commit"
let timer_handle = Mp_obs.Timer.make "service.handle"
let c_granted = Mp_obs.Counter.make "service.granted"
let c_rejected = Mp_obs.Counter.make "service.rejected"
let c_available = Mp_obs.Counter.make "service.available"
let c_scheduled = Mp_obs.Counter.make "service.scheduled"
let c_infeasible = Mp_obs.Counter.make "service.infeasible"
let c_cancelled = Mp_obs.Counter.make "service.cancelled"
let c_explained = Mp_obs.Counter.make "service.explained"
let c_overloaded = Mp_obs.Counter.make "service.overloaded"
let c_stats = Mp_obs.Counter.make "service.stats"
let c_error = Mp_obs.Counter.make "service.error"

let count_response = function
  | Response.Granted -> Mp_obs.Counter.incr c_granted
  | Response.Rejected _ -> Mp_obs.Counter.incr c_rejected
  | Response.Available _ -> Mp_obs.Counter.incr c_available
  | Response.Scheduled _ -> Mp_obs.Counter.incr c_scheduled
  | Response.Infeasible _ -> Mp_obs.Counter.incr c_infeasible
  | Response.Cancelled -> Mp_obs.Counter.incr c_cancelled
  | Response.Explained _ -> Mp_obs.Counter.incr c_explained
  | Response.Overloaded -> Mp_obs.Counter.incr c_overloaded
  | Response.Stats _ -> Mp_obs.Counter.incr c_stats
  | Response.Error _ -> Mp_obs.Counter.incr c_error

(* The index's traversal counter, read per-domain at window boundaries to
   report visits-per-window in the telemetry series.  [run_site] executes
   one site sequentially on one domain, so the domain-local delta is
   exactly this site's traffic; zero (and still deterministic) when
   tracing is off. *)
let c_index_visits = lazy (Mp_obs.Counter.find "index.node_visits")

let index_visits_now () =
  match Lazy.force c_index_visits with
  | None -> 0
  | Some c -> Mp_obs.Counter.local c

(* --- dispatch ----------------------------------------------------------- *)

(* Exactly the trial-and-error semantics of the old [Probe.request]: the
   facade is now a client of this code path, and [Mp_core.Blind]'s
   "blind matches omniscient" pin depends on grant/suggestion behaviour
   staying put. *)
let reserve site ~start ~dur ~procs =
  if start < 0 || dur < 1 || procs < 1 then Response.Rejected None
  else if procs > Calendar.Txn.procs site.txn then Response.Rejected None
  else begin
    let r = Reservation.make ~start ~finish:(start + dur) ~procs in
    Mp_obs.Span.enter span_commit;
    let granted = Calendar.Txn.reserve_opt site.txn r in
    Mp_obs.Span.exit span_commit;
    if granted then begin
      site.held <- r :: site.held;
      if !Journal.enabled then Journal.grant ~start ~finish:(start + dur) ~procs ~granted:true;
      Response.Granted
    end
    else begin
      if !Journal.enabled then Journal.grant ~start ~finish:(start + dur) ~procs ~granted:false;
      Mp_obs.Span.enter span_fit;
      let suggestion = Calendar.Txn.earliest_fit site.txn ~after:start ~procs ~dur in
      Mp_obs.Span.exit span_fit;
      Response.Rejected suggestion
    end
  end

let probe site ~start ~dur ~procs =
  if start < 0 || dur < 1 || procs < 1 || procs > Calendar.Txn.procs site.txn then
    Response.Available None
  else begin
    Mp_obs.Span.enter span_fit;
    let fit = Calendar.Txn.earliest_fit site.txn ~after:start ~procs ~dur in
    Mp_obs.Span.exit span_fit;
    Response.Available fit
  end

let cancel site ~start ~finish ~procs =
  let not_held () =
    Response.Error (Printf.sprintf "reservation [%d, %d) x %d is not held" start finish procs)
  in
  if start >= finish || procs < 1 then not_held ()
  else begin
    let r = Reservation.make ~start ~finish ~procs in
    let rec remove = function
      | [] -> None
      | r' :: rest when r' = r -> Some rest
      | r' :: rest -> Option.map (fun rest -> r' :: rest) (remove rest)
    in
    match remove site.held with
    | None -> not_held ()
    | Some held ->
        site.held <- held;
        Mp_obs.Span.enter span_commit;
        Calendar.Txn.release site.txn r;
        Mp_obs.Span.exit span_commit;
        Response.Cancelled
  end

let submit t site ~algo ~deadline dag =
  match t.handlers.submit ~algo ~deadline ~q:site.q (Calendar.Txn.commit site.txn) dag with
  | Response.Scheduled { schedule; _ } as resp ->
      (* All-or-nothing: apply the schedule to a trial transaction forked
         off the current state (both forks are O(1)); adopt it only if
         every reservation fits, so a failing schedule leaves the site's
         shard untouched. *)
      Mp_obs.Span.enter span_commit;
      let trial = Calendar.Txn.start (Calendar.Txn.commit site.txn) in
      let ok =
        List.for_all (Calendar.Txn.reserve_opt trial) (Mp_cpa.Schedule.reservations schedule)
      in
      Mp_obs.Span.exit span_commit;
      if ok then begin
        site.txn <- trial;
        resp
      end
      else Response.Error "submit_dag: schedule overcommits the site calendar"
  | resp -> resp

(* Snapshot of the site's live telemetry state — reads only; the counts
   cover every response issued before this one. *)
let stats_of site ~last =
  Response.Stats
    {
      requests = site.n_requests;
      counts = List.mapi (fun i k -> (k, site.counts.(i))) Response.kinds;
      shed_queue = site.shed_queue;
      shed_budget = site.shed_budget;
      queue_depth = site.queue_depth;
      queue_peak = site.queue_peak;
      held = List.length site.held;
      breakpoints = Calendar.breakpoints (Calendar.Txn.commit site.txn);
      recent = ring_recent site.ring last;
    }

let dispatch t site (r : Request.t) =
  match r with
  | Reserve { start; dur; procs } -> reserve site ~start ~dur ~procs
  | Probe { start; dur; procs } -> probe site ~start ~dur ~procs
  | Cancel { start; finish; procs } -> cancel site ~start ~finish ~procs
  | Submit_dag { dag; algo; deadline } -> submit t site ~algo ~deadline dag
  | Explain { dag; algo; deadline; format } ->
      t.handlers.explain ~algo ~deadline ~format ~q:site.q (Calendar.Txn.commit site.txn) dag
  | Stats { last } -> stats_of site ~last

let handle t ~site r =
  if site < 0 || site >= Array.length t.sites then begin
    let resp = Response.Error (Printf.sprintf "unknown site %d" site) in
    count_response resp;
    resp
  end
  else begin
    let s = t.sites.(site) in
    s.n_requests <- s.n_requests + 1;
    Mp_obs.Span.enter span_request;
    let t0 = Mp_obs.Timer.start () in
    let resp = try dispatch t s r with Invalid_argument msg -> Response.Error msg in
    Mp_obs.Timer.stop timer_handle t0;
    Mp_obs.Span.exit span_request;
    s.counts.(Response.kind_index resp) <- s.counts.(Response.kind_index resp) + 1;
    count_response resp;
    resp
  end

(* --- enveloped streams with admission control --------------------------- *)

type outcome = {
  id : int;
  site : int;
  arrival : int;
  started : int;
  response : Response.t;
  wall_ns : int;
}

(* Telemetry sink: one sample-list slot per site, each written only by
   that site's worker, so collecting the series adds no shared mutable
   state and the jobs-invariance contract of {!run} is untouched. *)
module Stats = struct
  type sink = { every : int; mutable per_site : Mp_forensics.Telemetry.sample list array }

  let sink ~every () =
    if every < 1 then invalid_arg "Engine.Stats.sink: every < 1";
    { every; per_site = [||] }

  let samples s =
    let all = Array.fold_left (fun acc l -> List.rev_append l acc) [] s.per_site in
    List.sort
      (fun (a : Mp_forensics.Telemetry.sample) b ->
        match compare a.t_end b.t_end with 0 -> compare a.site b.site | c -> c)
      all
end

(* Per-window accumulators of one site's telemetry (reset at each window
   boundary); everything in here is simulated-time or a request count,
   so the emitted series is identical for any pool size. *)
type window_acc = {
  mutable w_end : int;
  w_counts : int array;  (* per-kind response deltas *)
  mutable w_shed_queue : int;
  mutable w_shed_budget : int;
  mutable w_peak : int;
  mutable w_visits0 : int;  (* index visit counter at window start *)
  mutable w_sojourn : Mp_obs.Hist.t;
}

(* One site's envelopes in ⟨arrival, id⟩ order through a simulated
   single-server FIFO queue.  Simulated time only: [free_at] is when the
   server next idles, [inflight] the finish times of admitted requests
   not yet complete at the head arrival (monotone, so draining the front
   is enough).  Decisions depend only on the envelope stream and the
   deterministic [Request.cost] model — never on wall-clock. *)
let run_site t ~queue_limit ~measure ?stats site_idx envelopes =
  let envelopes =
    List.stable_sort
      (fun (a : Request.envelope) b ->
        match compare a.arrival b.arrival with 0 -> compare a.id b.id | c -> c)
      envelopes
  in
  let site = t.sites.(site_idx) in
  let free_at = ref 0 in
  let inflight = Queue.create () in
  (* simulated in-flight depth at [time], without mutating the queue *)
  let depth_at time = Queue.fold (fun n f -> if f > time then n + 1 else n) 0 inflight in
  let every = match stats with None -> 0 | Some (s : Stats.sink) -> s.every in
  let acc =
    if every = 0 then None
    else
      Some
        {
          w_end = every;
          w_counts = Array.make Response.n_kinds 0;
          w_shed_queue = 0;
          w_shed_budget = 0;
          w_peak = 0;
          w_visits0 = index_visits_now ();
          w_sojourn = Mp_obs.Hist.create ();
        }
  in
  let samples = ref [] in
  (* Emit the window ending at [a.w_end] and open the next one.  Calendar
     state is exactly "after every request arriving before the boundary"
     because windows are flushed before serving the first later arrival. *)
  let flush_window a =
    let cal = Calendar.Txn.commit site.txn in
    let procs = Calendar.procs cal in
    let busy =
      Calendar.fold_segments cal ~from_:(a.w_end - every) ~until:a.w_end ~init:0
        ~f:(fun b ~start ~finish ~avail -> b + ((finish - start) * (procs - avail)))
    in
    let visits = index_visits_now () in
    let sample =
      {
        Mp_forensics.Telemetry.site = site_idx;
        t_end = a.w_end;
        window = every;
        served = List.mapi (fun i k -> (k, a.w_counts.(i))) Response.kinds;
        shed_queue = a.w_shed_queue;
        shed_budget = a.w_shed_budget;
        queue_depth = depth_at a.w_end;
        queue_peak = a.w_peak;
        occupancy =
          (if procs = 0 then 0. else float_of_int busy /. float_of_int (procs * every));
        breakpoints = Calendar.breakpoints cal;
        index_visits = visits - a.w_visits0;
        sojourn = a.w_sojourn;
      }
    in
    samples := sample :: !samples;
    Array.fill a.w_counts 0 (Array.length a.w_counts) 0;
    a.w_shed_queue <- 0;
    a.w_shed_budget <- 0;
    a.w_peak <- depth_at a.w_end;
    a.w_visits0 <- visits;
    a.w_sojourn <- Mp_obs.Hist.create ();
    a.w_end <- a.w_end + every
  in
  let flush_until time =
    match acc with
    | None -> ()
    | Some a ->
        while a.w_end <= time do
          flush_window a
        done
  in
  let serve (e : Request.envelope) =
    flush_until e.arrival;
    Mp_obs.Tag.set ~req:e.id ~site:site_idx;
    Mp_obs.Span.enter span_admission;
    while (not (Queue.is_empty inflight)) && Queue.peek inflight <= e.arrival do
      ignore (Queue.pop inflight)
    done;
    site.queue_depth <- Queue.length inflight;
    let shed cause =
      Mp_obs.Span.exit span_admission;
      let resp = Response.Overloaded in
      count_response resp;
      site.counts.(Response.kind_index resp) <- site.counts.(Response.kind_index resp) + 1;
      ring_push site.ring ~id:e.id ~arrival:e.arrival ~started:e.arrival
        ~kind:(Response.kind_index resp);
      (match (acc, cause) with
      | Some a, `Queue -> a.w_shed_queue <- a.w_shed_queue + 1
      | Some a, `Budget -> a.w_shed_budget <- a.w_shed_budget + 1
      | None, _ -> ());
      (match cause with
      | `Queue -> site.shed_queue <- site.shed_queue + 1
      | `Budget -> site.shed_budget <- site.shed_budget + 1);
      Mp_obs.Tag.clear ();
      { id = e.id; site = site_idx; arrival = e.arrival; started = e.arrival;
        response = resp; wall_ns = 0 }
    in
    if Queue.length inflight >= queue_limit then shed `Queue
    else begin
      let started = max e.arrival !free_at in
      let over_budget =
        match e.budget with None -> false | Some b -> started - e.arrival > b
      in
      if over_budget then shed `Budget
      else begin
        let finish = started + max 1 (Request.cost e.payload) in
        free_at := finish;
        Queue.push finish inflight;
        let depth = Queue.length inflight in
        site.queue_depth <- depth;
        if depth > site.queue_peak then site.queue_peak <- depth;
        Mp_obs.Span.exit span_admission;
        (match acc with
        | None -> ()
        | Some a ->
            if depth > a.w_peak then a.w_peak <- depth;
            Mp_obs.Hist.add a.w_sojourn (finish - e.arrival));
        let t0 = if measure then Mp_obs.now_ns () else 0 in
        let response = handle t ~site:site_idx e.payload in
        let wall_ns = if measure then Mp_obs.now_ns () - t0 else 0 in
        let response_kind = Response.kind_index response in
        ring_push site.ring ~id:e.id ~arrival:e.arrival ~started ~kind:response_kind;
        (match acc with
        | None -> ()
        | Some a -> a.w_counts.(response_kind) <- a.w_counts.(response_kind) + 1);
        Mp_obs.Tag.clear ();
        { id = e.id; site = site_idx; arrival = e.arrival; started; response;
          wall_ns = max 0 wall_ns }
      end
    end
  in
  let outcomes = List.map serve envelopes in
  (match (acc, stats) with
  | Some a, Some (s : Stats.sink) ->
      if envelopes <> [] then begin
        (* close out the tail: full windows up to the simulated horizon,
           then the partial window containing it (skipped when the horizon
           sits exactly on the last flushed boundary) *)
        let last_arrival =
          List.fold_left (fun m (e : Request.envelope) -> max m e.arrival) 0 envelopes
        in
        let horizon = max last_arrival !free_at in
        flush_until horizon;
        if horizon > a.w_end - every then flush_window a
      end;
      s.per_site.(site_idx) <- List.rev !samples
  | _ -> ());
  outcomes

let run ?pool ?(queue_limit = max_int) ?(measure = false) ?stats t envelopes =
  let n = Array.length t.sites in
  (match stats with
  | None -> ()
  | Some (s : Stats.sink) -> s.per_site <- Array.make n []);
  let per_site = Array.make n [] in
  let bad =
    List.filter_map
      (fun (e : Request.envelope) ->
        if e.site < 0 || e.site >= n then begin
          let response = Response.Error (Printf.sprintf "unknown site %d" e.site) in
          count_response response;
          Some
            { id = e.id; site = e.site; arrival = e.arrival; started = e.arrival;
              response; wall_ns = 0 }
        end
        else begin
          per_site.(e.site) <- e :: per_site.(e.site);
          None
        end)
      envelopes
  in
  let jobs = Array.to_list (Array.mapi (fun i es -> (i, List.rev es)) per_site) in
  let f (i, es) = run_site t ~queue_limit ~measure ?stats i es in
  let per_site_outcomes = match pool with None -> List.map f jobs | Some p -> Mp_prelude.Pool.map p f jobs in
  List.sort
    (fun a b -> compare a.id b.id)
    (List.concat (bad :: per_site_outcomes))

(* --- accessors ----------------------------------------------------------- *)

let check_site t site name =
  if site < 0 || site >= Array.length t.sites then
    invalid_arg (Printf.sprintf "Engine.%s: unknown site %d" name site)

let requests t = Array.fold_left (fun acc s -> acc + s.n_requests) 0 t.sites

let granted t ~site =
  check_site t site "granted";
  t.sites.(site).held

let calendar t ~site =
  check_site t site "calendar";
  Calendar.Txn.commit t.sites.(site).txn

let n_sites t = Array.length t.sites
