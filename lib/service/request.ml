module Json = Mp_prelude.Json
module Dag = Mp_dag.Dag
module Task = Mp_dag.Task

type deadline_spec = No_deadline | By of int | Tightest

type t =
  | Submit_dag of { dag : Dag.t; algo : string; deadline : deadline_spec }
  | Reserve of { start : int; dur : int; procs : int }
  | Probe of { start : int; dur : int; procs : int }
  | Cancel of { start : int; finish : int; procs : int }
  | Explain of { dag : Dag.t; algo : string; deadline : int option; format : string }
  | Stats of { last : int }

let kind = function
  | Submit_dag _ -> "submit_dag"
  | Reserve _ -> "reserve"
  | Probe _ -> "probe"
  | Cancel _ -> "cancel"
  | Explain _ -> "explain"
  | Stats _ -> "stats"

let cost = function
  | Reserve _ | Probe _ | Cancel _ | Stats _ -> 1
  | Submit_dag { dag; _ } | Explain { dag; _ } -> Dag.n dag

type envelope = { id : int; site : int; arrival : int; budget : int option; payload : t }

(* --- DAG <-> JSON ------------------------------------------------------ *)

let dag_to_json dag =
  let task (tk : Task.t) = Json.Arr [ Num tk.seq; Num tk.alpha ] in
  let edge (a, b) = Json.Arr [ Num (float_of_int a); Num (float_of_int b) ] in
  Json.Obj
    [
      ("tasks", Json.Arr (Array.to_list (Array.map task (Dag.tasks dag))));
      ("edges", Json.Arr (List.map edge (Dag.edges dag)));
    ]

let dag_of_json j =
  let ( let* ) = Result.bind in
  let* tasks =
    match Json.arr j "tasks" with
    | None -> Error "dag: missing tasks"
    | Some l ->
        List.fold_left
          (fun acc tj ->
            let* acc = acc in
            match tj with
            | Json.Arr [ Json.Num seq; Json.Num alpha ] -> Ok ((seq, alpha) :: acc)
            | _ -> Error "dag: task must be [seq,alpha]")
          (Ok []) l
  in
  let* edges =
    match Json.arr j "edges" with
    | None -> Error "dag: missing edges"
    | Some l ->
        List.fold_left
          (fun acc ej ->
            let* acc = acc in
            match ej with
            | Json.Arr [ Json.Num a; Json.Num b ] -> Ok ((int_of_float a, int_of_float b) :: acc)
            | _ -> Error "dag: edge must be [pred,succ]")
          (Ok []) l
  in
  let tasks = Array.of_list (List.rev tasks) in
  match
    Dag.make
      (Array.mapi (fun id (seq, alpha) -> Task.make ~id ~seq ~alpha) tasks)
      (List.rev edges)
  with
  | dag -> Ok dag
  | exception Invalid_argument msg -> Error ("dag: " ^ msg)

(* --- request <-> JSON -------------------------------------------------- *)

let int_opt = function None -> Json.Null | Some i -> Json.Num (float_of_int i)

let deadline_spec_to_json = function
  | No_deadline -> Json.Null
  | By k -> Json.Num (float_of_int k)
  | Tightest -> Json.Str "tightest"

let deadline_spec_of_json = function
  | None | Some Json.Null -> Ok No_deadline
  | Some (Json.Num k) -> Ok (By (int_of_float k))
  | Some (Json.Str "tightest") -> Ok Tightest
  | Some _ -> Error "deadline must be null, an int, or \"tightest\""

let to_json r =
  let tag = ("request", Json.Str (kind r)) in
  let n name v = (name, Json.Num (float_of_int v)) in
  match r with
  | Reserve { start; dur; procs } -> Json.Obj [ tag; n "start" start; n "dur" dur; n "procs" procs ]
  | Probe { start; dur; procs } -> Json.Obj [ tag; n "start" start; n "dur" dur; n "procs" procs ]
  | Cancel { start; finish; procs } ->
      Json.Obj [ tag; n "start" start; n "finish" finish; n "procs" procs ]
  | Submit_dag { dag; algo; deadline } ->
      Json.Obj
        [
          tag;
          ("algo", Json.Str algo);
          ("deadline", deadline_spec_to_json deadline);
          ("dag", dag_to_json dag);
        ]
  | Explain { dag; algo; deadline; format } ->
      Json.Obj
        [
          tag;
          ("algo", Json.Str algo);
          ("deadline", int_opt deadline);
          ("format", Json.Str format);
          ("dag", dag_to_json dag);
        ]
  | Stats { last } -> Json.Obj [ tag; n "last" last ]

let req_int j name =
  match Json.int_ j name with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "request field %S must be an int" name)

let of_json j =
  let ( let* ) = Result.bind in
  match Json.str j "request" with
  | None -> Error "missing \"request\" tag"
  | Some (("reserve" | "probe") as k) ->
      let* start = req_int j "start" in
      let* dur = req_int j "dur" in
      let* procs = req_int j "procs" in
      Ok (if k = "reserve" then Reserve { start; dur; procs } else Probe { start; dur; procs })
  | Some "cancel" ->
      let* start = req_int j "start" in
      let* finish = req_int j "finish" in
      let* procs = req_int j "procs" in
      Ok (Cancel { start; finish; procs })
  | Some "submit_dag" -> (
      let* deadline = deadline_spec_of_json (Json.field j "deadline") in
      match (Json.str j "algo", Json.field j "dag") with
      | Some algo, Some dj ->
          let* dag = dag_of_json dj in
          Ok (Submit_dag { dag; algo; deadline })
      | _ -> Error "submit_dag: missing algo or dag")
  | Some "explain" -> (
      let deadline =
        match Json.field j "deadline" with
        | Some (Json.Num k) -> Some (int_of_float k)
        | _ -> None
      in
      match (Json.str j "algo", Json.str j "format", Json.field j "dag") with
      | Some algo, Some format, Some dj ->
          let* dag = dag_of_json dj in
          Ok (Explain { dag; algo; deadline; format })
      | _ -> Error "explain: missing algo, format, or dag")
  | Some "stats" ->
      let* last = req_int j "last" in
      Ok (Stats { last })
  | Some other -> Error (Printf.sprintf "unknown request kind %S" other)

let envelope_to_json e =
  Json.Obj
    [
      ("id", Json.Num (float_of_int e.id));
      ("site", Json.Num (float_of_int e.site));
      ("arrival", Json.Num (float_of_int e.arrival));
      ("budget", int_opt e.budget);
      ("payload", to_json e.payload);
    ]

let envelope_of_json j =
  let ( let* ) = Result.bind in
  let* id = req_int j "id" in
  let* site = req_int j "site" in
  let* arrival = req_int j "arrival" in
  let budget = match Json.field j "budget" with Some (Json.Num b) -> Some (int_of_float b) | _ -> None in
  match Json.field j "payload" with
  | None -> Error "envelope: missing payload"
  | Some pj ->
      let* payload = of_json pj in
      Ok { id; site; arrival; budget; payload }

let to_string r = Json.to_string (to_json r)

let of_string text =
  match Json.of_string text with Error _ as e -> e | Ok j -> of_json j

let envelope_to_string e = Json.to_string (envelope_to_json e)

let envelope_of_string text =
  match Json.of_string text with Error _ as e -> e | Ok j -> envelope_of_json j
