(** Seeded request-stream generator for soak tests, benchmarks, and
    replay.

    All randomness flows through the caller's {!Mp_prelude.Rng}, so a
    ⟨seed, parameters⟩ pair names one exact {!Request.envelope} stream
    forever: [mpres serve --seed S -n N] and the "Service" bench section
    replay the same streams bit-identically, and the [--jobs] invariance
    property in [test_service.ml] feeds one generated stream through
    {!Engine.run} at several pool sizes. *)

(** Relative weights of the five request kinds in the generated mix.
    Weights are nonnegative and must not all be zero. *)
type mix = { reserve : int; probe : int; cancel : int; submit : int; explain : int }

val default_mix : mix
(** Reservation-protocol heavy, with a trickle of whole-DAG work:
    [{ reserve = 50; probe = 25; cancel = 15; submit = 8; explain = 2 }]. *)

val generate :
  Mp_prelude.Rng.t ->
  ?mix:mix ->
  ?horizon:int ->
  ?budget:int ->
  ?algos:string list ->
  sites:int ->
  procs:int ->
  n:int ->
  unit ->
  Request.envelope list
(** [generate rng ~sites ~procs ~n ()] draws [n] envelopes with ids
    [0 .. n-1], uniformly-drawn sites, and non-decreasing arrivals
    (mean gap a few seconds).

    - [Reserve]/[Probe] requests draw a start within [horizon] (default
      86 400 s) of the arrival, a duration of minutes-to-an-hour, and
      [1 .. procs] processors; the generator remembers each site's issued
      [Reserve] triples so that
    - [Cancel] requests usually name one of them (cancels of never-granted
      triples exercise the error path, as in real streams);
    - [Submit_dag]/[Explain] requests carry a small {!Mp_dag.Dag_gen} DAG
      (6–16 tasks) and an algorithm drawn from [algos] (default
      [["cpa"]] — override with registry names to exercise real
      schedulers); submit deadlines mix [No_deadline], [By], and
      [Tightest].

    When [budget] is given, each envelope carries [Some budget] with
    probability ½ (else [None]), so admission-control shedding and
    patient requests are both exercised.  Raises [Invalid_argument] on
    [n < 0], [sites < 1], [procs < 1], an all-zero [mix], or an empty
    [algos]. *)
