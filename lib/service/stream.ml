module Rng = Mp_prelude.Rng

type mix = { reserve : int; probe : int; cancel : int; submit : int; explain : int }

let default_mix = { reserve = 50; probe = 25; cancel = 15; submit = 8; explain = 2 }

let small_dag rng =
  let n = 6 + Rng.int rng 11 in
  Mp_dag.Dag_gen.generate rng { Mp_dag.Dag_gen.default with n }

let generate rng ?(mix = default_mix) ?(horizon = 86_400) ?budget ?(algos = [ "cpa" ]) ~sites
    ~procs ~n () =
  if n < 0 then invalid_arg "Stream.generate: n < 0";
  if sites < 1 then invalid_arg "Stream.generate: sites < 1";
  if procs < 1 then invalid_arg "Stream.generate: procs < 1";
  if horizon < 1 then invalid_arg "Stream.generate: horizon < 1";
  let weights = [| mix.reserve; mix.probe; mix.cancel; mix.submit; mix.explain |] in
  Array.iter (fun w -> if w < 0 then invalid_arg "Stream.generate: negative mix weight") weights;
  let total = Array.fold_left ( + ) 0 weights in
  if total = 0 then invalid_arg "Stream.generate: all-zero mix";
  let algos = Array.of_list algos in
  if Array.length algos = 0 then invalid_arg "Stream.generate: empty algos";
  (* per-site memory of issued Reserve triples, so Cancels usually target
     a reservation the engine may actually hold *)
  let issued = Array.make sites [] in
  let pick_kind () =
    let r = ref (Rng.int rng total) and k = ref 0 in
    while !r >= weights.(!k) do
      r := !r - weights.(!k);
      incr k
    done;
    !k
  in
  let triple arrival =
    let start = arrival + Rng.int rng horizon in
    let dur = 60 + Rng.int rng 3540 in
    let p = 1 + Rng.int rng procs in
    (start, dur, p)
  in
  let clock = ref 0 in
  let envelope id : Request.envelope =
    clock := !clock + Rng.int rng 10;
    let arrival = !clock in
    let site = Rng.int rng sites in
    let payload : Request.t =
      match pick_kind () with
      | 0 ->
          let start, dur, p = triple arrival in
          issued.(site) <- (start, dur, p) :: issued.(site);
          Reserve { start; dur; procs = p }
      | 1 ->
          let start, dur, p = triple arrival in
          Probe { start; dur; procs = p }
      | 2 -> (
          match issued.(site) with
          | (start, dur, p) :: rest ->
              issued.(site) <- rest;
              Cancel { start; finish = start + dur; procs = p }
          | [] ->
              let start, dur, p = triple arrival in
              Cancel { start; finish = start + dur; procs = p })
      | 3 ->
          let dag = small_dag rng in
          let algo = Rng.sample rng algos in
          let deadline : Request.deadline_spec =
            match Rng.int rng 4 with
            | 0 -> By (arrival + horizon + Rng.int rng horizon)
            | 1 -> Tightest
            | _ -> No_deadline
          in
          Submit_dag { dag; algo; deadline }
      | _ ->
          let dag = small_dag rng in
          let algo = Rng.sample rng algos in
          Explain { dag; algo; deadline = None; format = "text" }
    in
    let budget =
      match budget with Some b when Rng.bool rng -> Some b | Some _ | None -> None
    in
    { id; site; arrival; budget; payload }
  in
  List.init n envelope
