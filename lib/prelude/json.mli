(** Minimal hand-rolled JSON: one value type, a recursive-descent parser
    and a compact printer.

    This is the single JSON implementation shared by the perf-baseline
    harness ([Mp_forensics.Baseline], schema [mpres-bench-core-*]) and the
    scheduling-service wire protocol ([Mp_service.Request]/[Response]).
    It covers exactly the subset those schemas use — objects, arrays,
    strings, finite numbers, booleans, null — and is not a general-purpose
    JSON library (no unicode escapes, no arbitrary-precision numbers).

    Determinism note: {!to_string} prints objects in field order and
    floats through {!float_str} (shortest representation that round-trips
    exactly), so serializing the same value always yields the same
    bytes. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of int * string
(** Byte offset and one-line description of a parse failure. *)

val parse : string -> t
(** Parse a complete document (trailing content is an error).
    @raise Parse_error on malformed input. *)

val of_string : string -> (t, string) result
(** Non-raising {!parse}; the error line includes the byte offset. *)

val to_string : t -> string
(** Compact one-line rendering ([{"a":1,"b":[true,null]}]). *)

val to_buffer : Buffer.t -> t -> unit

val escape : string -> string
(** Escape a string for embedding between double quotes (["\""], ["\\"],
    ["\n"], ["\t"], ["\r"] and other control characters). *)

val float_str : float -> string
(** Shortest decimal rendering that parses back to exactly the same
    float ([%.15g], falling back to [%.17g]). *)

(** {2 Accessors}

    All return [None] on a missing field or a type mismatch, so callers
    can bind them with a [let*] option monad. *)

val field : t -> string -> t option
(** [field (Obj _) name] looks the field up; [None] on non-objects. *)

val str : t -> string -> string option
val num : t -> string -> float option
val int_ : t -> string -> int option

val arr : t -> string -> t list option
val obj : t -> string -> (string * t) list option

val to_int : t -> int option
(** [to_int (Num f)] truncates; [None] on non-numbers. *)
