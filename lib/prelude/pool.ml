(* A fixed worker pool over Domains with static round-robin assignment.

   Workers are parked on a condition variable between batches.  A batch
   hands worker [w] the item stripe {w, w + jobs, w + 2*jobs, ...}; the
   calling domain runs the last stripe itself, then waits for the
   others.  No work stealing: the stripe an item lands on is a pure
   function of its index, which is what makes parallel runs replayable.

   Results land in per-item slots ([Ok] or the captured exception) and
   are merged by item index, so output equals the sequential run's. *)

type slot = Idle | Work of (unit -> unit)

let sp_worker = Mp_obs.Span.make "pool.worker"
let c_batches = Mp_obs.Counter.make "pool.batches"

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  slots : slot array;  (* one per spawned domain; length jobs - 1 *)
  mutable busy : int;  (* spawned-domain slots still running this batch *)
  mutable closed : bool;
  mutable domains : unit Domain.t array;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let worker t w =
  let rec loop () =
    Mutex.lock t.mutex;
    while t.slots.(w) = Idle && not t.closed do
      Condition.wait t.work_ready t.mutex
    done;
    match t.slots.(w) with
    | Idle ->
        (* closed with nothing assigned *)
        Mutex.unlock t.mutex
    | Work f ->
        Mutex.unlock t.mutex;
        Mp_obs.Span.wrap sp_worker f;
        Mutex.lock t.mutex;
        t.slots.(w) <- Idle;
        t.busy <- t.busy - 1;
        if t.busy = 0 then Condition.broadcast t.work_done;
        Mutex.unlock t.mutex;
        loop ()
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      slots = Array.make (jobs - 1) Idle;
      busy = 0;
      closed = false;
      domains = [||];
    }
  in
  t.domains <- Array.init (jobs - 1) (fun w -> Domain.spawn (fun () -> worker t w));
  t

let jobs t = t.jobs

(* Run stripe [w] of [n] items: every item writes its own result slot;
   on an exception the stripe stops (the remaining slots stay [None],
   which is fine — in index order the exception is reached first). *)
let stripe results items f n step w () =
  let i = ref w in
  (try
     while !i < n do
       results.(!i) <- Some (Ok (f items.(!i)));
       i := !i + step
     done
   with e -> results.(!i) <- Some (Error e))

let map_array t f items =
  let n = Array.length items in
  if t.jobs = 1 && t.closed then invalid_arg "Pool.map: pool is shut down";
  if n = 0 then [||]
  else begin
    Mp_obs.Counter.incr c_batches;
    let results = Array.make n None in
    if t.jobs > 1 then begin
      Mutex.lock t.mutex;
      if t.closed then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool.map: pool is shut down"
      end;
      if t.busy <> 0 then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool.map: concurrent map on the same pool"
      end;
      let assigned = ref 0 in
      for w = 0 to t.jobs - 2 do
        if w < n then begin
          t.slots.(w) <- Work (stripe results items f n t.jobs w);
          incr assigned
        end
      done;
      t.busy <- !assigned;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex
    end;
    (* the calling domain takes the last stripe *)
    Mp_obs.Span.wrap sp_worker (stripe results items f n t.jobs (t.jobs - 1));
    if t.jobs > 1 then begin
      Mutex.lock t.mutex;
      while t.busy > 0 do
        Condition.wait t.work_done t.mutex
      done;
      Mutex.unlock t.mutex
    end;
    (* merge in item order: the smallest-index failure wins, as it would
       sequentially (a [None] can only follow its stripe's [Error]) *)
    for i = 0 to n - 1 do
      match results.(i) with Some (Error e) -> raise e | _ -> ()
    done;
    Array.map (function Some (Ok v) -> v | _ -> assert false) results
  end

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))

let shutdown t =
  Mutex.lock t.mutex;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  if not was_closed then Array.iter Domain.join t.domains

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run ?jobs f xs = with_pool ?jobs (fun t -> map t f xs)
