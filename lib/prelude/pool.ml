(* A fixed worker pool over Domains with deterministic work stealing.

   Workers are parked on a condition variable between batches.  A batch
   splits the item index space into [jobs] contiguous ranges, one per
   worker; every range is drained through an atomic claim cursor that
   only moves forward, in chunks of a size that is a pure function of
   (n, jobs).  A worker that exhausts its own range steals from the
   other ranges (scanning victims in a fixed order), using the same
   claim protocol, so no item is ever run twice and an idle worker never
   waits out a loaded stripe.  Which worker runs an item may vary with
   timing; what cannot vary is the result: every item writes its own
   pre-allocated slot ([Ok] or the captured exception) and the slots are
   merged by item index, so output equals the sequential run's.

   The pre-stealing static round-robin executor survives as the
   [Static] strategy — the reference the bench harness races the
   stealing executor against. *)

type slot = Idle | Work of (unit -> unit)
type strategy = Static | Steal

let sp_worker = Mp_obs.Span.make "pool.worker"
let c_batches = Mp_obs.Counter.make "pool.batches"

(* Steal traffic and busy time depend on OS scheduling, so these three
   are the one family of counters that is *not* reproducible run to run;
   the bench harness excludes them from the BENCH_core.json baselines it
   otherwise gates exactly. *)
let c_steals = Mp_obs.Counter.make "pool.steals"
let c_tasks_stolen = Mp_obs.Counter.make "pool.tasks_stolen"
let c_busy_ns = Mp_obs.Counter.make "pool.busy_ns"

type t = {
  jobs : int;
  strategy : strategy;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  slots : slot array;  (* one per spawned domain; length jobs - 1 *)
  mutable busy : int;  (* spawned-domain slots still running this batch *)
  mutable in_batch : bool;  (* a map is in flight (any jobs value) *)
  mutable closed : bool;
  mutable domains : unit Domain.t array;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* One worker's whole participation in a batch, under the per-worker
   busy probes: a [pool.worker] span plus this domain's share of
   [pool.busy_ns].  A single branch and no allocation when the probes
   are off. *)
let participate f =
  if not !Mp_obs.enabled then f ()
  else begin
    let t0 = Mp_obs.now_ns () in
    Mp_obs.Span.enter sp_worker;
    Fun.protect f ~finally:(fun () ->
        Mp_obs.Span.exit sp_worker;
        Mp_obs.Counter.add c_busy_ns (max 0 (Mp_obs.now_ns () - t0)))
  end

let worker t w =
  let rec loop () =
    Mutex.lock t.mutex;
    while t.slots.(w) = Idle && not t.closed do
      Condition.wait t.work_ready t.mutex
    done;
    match t.slots.(w) with
    | Idle ->
        (* closed with nothing assigned *)
        Mutex.unlock t.mutex
    | Work f ->
        Mutex.unlock t.mutex;
        participate f;
        Mutex.lock t.mutex;
        t.slots.(w) <- Idle;
        t.busy <- t.busy - 1;
        if t.busy = 0 then Condition.broadcast t.work_done;
        Mutex.unlock t.mutex;
        loop ()
  in
  loop ()

let create ?(strategy = Steal) ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  let t =
    {
      jobs;
      strategy;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      slots = Array.make (jobs - 1) Idle;
      busy = 0;
      in_batch = false;
      closed = false;
      domains = [||];
    }
  in
  t.domains <- Array.init (jobs - 1) (fun w -> Domain.spawn (fun () -> worker t w));
  t

let jobs t = t.jobs
let strategy t = t.strategy

(* --- static reference executor ---------------------------------------- *)

(* Run stripe [w] of [n] items: every item writes its own result slot;
   on an exception the stripe stops (the remaining slots stay [None],
   which is fine — in index order the exception is reached first). *)
let stripe results items f n step w () =
  let i = ref w in
  (try
     while !i < n do
       results.(!i) <- Some (Ok (f items.(!i)));
       i := !i + step
     done
   with e -> results.(!i) <- Some (Error e))

(* --- stealing executor ------------------------------------------------- *)

(* Claim granularity: a pure function of (n, jobs) alone — never of
   wall-clock or thread identity, so the set of *possible* claim points
   is fixed for a given batch shape.  Small batches claim single items
   (perfect balance under skew); large batches amortize the atomic RMW,
   capped at 32 so the terminal imbalance stays at most one small chunk
   per worker. *)
let chunk_size ~n ~jobs = max 1 (min 32 (n / (16 * jobs)))

(* The contiguous initial ranges: worker [w] owns [lo, hi) with the
   first (n mod jobs) ranges one item longer. *)
let ranges n jobs =
  let base = n / jobs and extra = n mod jobs in
  Array.init jobs (fun w ->
      let lo = (w * base) + min w extra in
      (lo, lo + base + if w < extra then 1 else 0))

(* Drain range [v]: claim chunks through the shared cursor (each claim
   is one [Atomic.fetch_and_add], so an index is handed to exactly one
   worker) and run the claimed items in increasing index order.  Returns
   (items run, an item raised).  On an exception the rest of the claimed
   chunk is abandoned; its slots stay [None], which is fine — the
   cursor only moves forward, so in index order the [Error] slot is
   always reached before any abandoned [None] (see the merge). *)
let drain results items f cursors his ~chunk v =
  let cursor = cursors.(v) and hi = his.(v) in
  let ran = ref 0 and failed = ref false and exhausted = ref false in
  while not (!failed || !exhausted) do
    let i0 = Atomic.fetch_and_add cursor chunk in
    if i0 >= hi then exhausted := true
    else begin
      let stop = min hi (i0 + chunk) in
      let i = ref i0 in
      try
        while !i < stop do
          results.(!i) <- Some (Ok (f items.(!i)));
          incr ran;
          incr i
        done
      with e ->
        results.(!i) <- Some (Error e);
        incr ran;
        failed := true
    end
  done;
  (!ran, !failed)

(* Worker [w]'s batch participation: drain its own range, then scan the
   victims in the fixed order w+1, w+2, … (mod jobs) and drain theirs.
   A worker that captures an item's exception stops contributing; the
   remaining items are still drained by the other workers, and if every
   worker stops, any item left unclaimed sits at a higher index than the
   error that stopped its range's last claimant — the ordered merge
   below therefore always reaches an [Error] first. *)
let steal_body results items f cursors his jobs ~chunk w () =
  let _, failed = drain results items f cursors his ~chunk w in
  if not failed then begin
    let steals = ref 0 and stolen = ref 0 in
    let d = ref 1 and stop = ref false in
    while (not !stop) && !d < jobs do
      let v = (w + !d) mod jobs in
      let ran, failed = drain results items f cursors his ~chunk v in
      if ran > 0 then begin
        incr steals;
        stolen := !stolen + ran
      end;
      if failed then stop := true;
      incr d
    done;
    if !steals > 0 then begin
      Mp_obs.Counter.add c_steals !steals;
      Mp_obs.Counter.add c_tasks_stolen !stolen
    end
  end

(* --- batches ------------------------------------------------------------ *)

let map_array t f items =
  let n = Array.length items in
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.map: pool is shut down"
  end;
  if t.in_batch then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.map: concurrent map on the same pool"
  end;
  if n = 0 then begin
    Mutex.unlock t.mutex;
    [||]
  end
  else begin
    t.in_batch <- true;
    Mp_obs.Counter.incr c_batches;
    let results = Array.make n None in
    (* [body w] is worker [w]'s whole participation; [active w] says
       whether spawned worker [w] has anything to start from.  (With
       stealing an empty initial range means an empty batch tail — the
       live workers drain everything — so waking such a worker buys
       nothing.) *)
    let body, active =
      match t.strategy with
      | Static -> (stripe results items f n t.jobs, fun w -> w < n)
      | Steal ->
          let rs = ranges n t.jobs in
          let cursors = Array.map (fun (lo, _) -> Atomic.make lo) rs in
          let his = Array.map snd rs in
          let chunk = chunk_size ~n ~jobs:t.jobs in
          ( steal_body results items f cursors his t.jobs ~chunk,
            fun w ->
              let lo, hi = rs.(w) in
              lo < hi )
    in
    let assigned = ref 0 in
    for w = 0 to t.jobs - 2 do
      if active w then begin
        t.slots.(w) <- Work (body w);
        incr assigned
      end
    done;
    t.busy <- !assigned;
    if !assigned > 0 then Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    (* the calling domain participates as the last worker *)
    participate (body (t.jobs - 1));
    Mutex.lock t.mutex;
    while t.busy > 0 do
      Condition.wait t.work_done t.mutex
    done;
    t.in_batch <- false;
    Mutex.unlock t.mutex;
    (* merge in item order: the smallest-index failure wins, as it would
       sequentially (a [None] can only follow an [Error] at a smaller
       index — a stripe or claimed chunk abandons only the indices after
       its exception, and an unclaimed index means its range's last
       claimant failed below it) *)
    for i = 0 to n - 1 do
      match results.(i) with Some (Error e) -> raise e | _ -> ()
    done;
    Array.map (function Some (Ok v) -> v | _ -> assert false) results
  end

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))

(* A speculative wave: every thunk runs (they are independent probes of a
   search), but the *selection* replays the sequential scan — walk the
   slots in index order, re-raise the first captured exception, stop at
   the first [Some].  Thunk exceptions are captured into the result slots
   by the wrapper below, never surfaced by [map_array] itself, so an
   exception at index j is suppressed by a success at i < j exactly as a
   sequential scan (which would never have evaluated j) suppresses it. *)
let first_some t thunks =
  let results =
    map_array t (fun thunk -> match thunk () with v -> Ok v | exception e -> Error e) thunks
  in
  let n = Array.length results in
  let rec scan i =
    if i >= n then None
    else
      match results.(i) with
      | Error e -> raise e
      | Ok (Some v) -> Some (i, v)
      | Ok None -> scan (i + 1)
  in
  scan 0

let shutdown t =
  Mutex.lock t.mutex;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  if not was_closed then Array.iter Domain.join t.domains

let with_pool ?strategy ?jobs f =
  let t = create ?strategy ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run ?strategy ?jobs f xs = with_pool ?strategy ?jobs (fun t -> map t f xs)
