(** Fixed pool of OCaml 5 domains for deterministic fan-out of independent
    work items.

    The pool exists so the simulation layer can spread embarrassingly
    parallel ⟨instance, algorithm⟩ cells over the machine's cores while
    keeping results {e bit-identical} to sequential execution.  The
    determinism contract is purely structural:

    - work item [i] of an [n]-item batch is assigned to worker
      [i mod jobs] (static round-robin, no work stealing), so the set of
      items a worker runs never depends on timing;
    - every item writes its result (or its exception) into its own
      pre-allocated slot, and {!map} merges the slots in item order, so
      the merged output is exactly what sequential [List.map] would
      produce — merge order, not execution order, defines the result;
    - an exception raised by an item is re-raised in the calling domain,
      and when several items fail, the one with the {e smallest index}
      wins — again matching sequential behaviour.

    Work items must therefore be pure with respect to shared mutable
    state (each simulation instance owns its own SplitMix64 RNG state;
    shared caches such as [Mp_sim.Logcache] are mutex-protected).

    A pool with [jobs = 1] spawns no domains and runs every batch in the
    calling domain, making [~jobs:1] a true sequential reference.
    Batches are executed one at a time per pool ([map] is not
    re-entrant); the calling domain participates as the last worker, so
    [jobs] counts it. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] (at least 1): leave one core
    for the caller's OS noise.  This is the default for every [?jobs]
    argument in the library. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] workers ([jobs - 1] new domains plus the
    calling domain).  Default {!default_jobs}.  Raises [Invalid_argument]
    if [jobs < 1].  Call {!shutdown} (or use {!with_pool}) when done —
    idle workers block a domain each. *)

val jobs : t -> int
(** Worker count (including the calling domain). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs], fanned over the pool's workers.
    Result order — and on failure, which exception propagates — is
    identical to the sequential run (see the determinism contract
    above).  Raises [Invalid_argument] if the pool has been shut down. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Array counterpart of {!map}. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent; subsequent {!map} calls
    raise. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down on
    exit (normal or exceptional). *)

val run : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [with_pool ~jobs (fun p -> map p f xs)]. *)
