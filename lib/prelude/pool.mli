(** Fixed pool of OCaml 5 domains for deterministic fan-out of independent
    work items.

    The pool exists so the simulation layer can spread embarrassingly
    parallel ⟨instance, algorithm⟩ cells over the machine's cores while
    keeping results {e bit-identical} to sequential execution.  Since the
    work-stealing rewrite the determinism contract is no longer "which
    worker runs an item is fixed" — it is purely structural:

    - the item index space is split into [jobs] contiguous ranges, each
      drained through a forward-only atomic claim cursor; a worker that
      exhausts its own range {e steals} from the others (fixed victim
      order, same claim protocol), so which worker runs an item can vary
      with timing — but each item runs exactly once;
    - every item writes its result (or its exception) into its own
      pre-allocated slot, and {!map} merges the slots in item order, so
      the merged output is exactly what sequential [List.map] would
      produce — {e merge order, not execution order, defines the
      result};
    - an exception raised by an item is re-raised in the calling domain,
      and when several items fail, the one with the {e smallest index}
      wins — again matching sequential behaviour;
    - the claim chunk size is a pure function of (n, jobs), never of
      wall-clock.

    Work items must therefore be pure with respect to shared mutable
    state (each simulation instance owns its own SplitMix64 RNG state;
    shared caches such as [Mp_sim.Logcache] are mutex-protected and
    deterministic per key).  Stealing moves {e where} an item runs, so
    items must also not depend on which domain they execute on —
    domain-local state is fine for record-only probes ({!Mp_obs}), never
    for results.

    A pool with [jobs = 1] spawns no domains and runs every batch in the
    calling domain, making [~jobs:1] a true sequential reference.
    Batches are executed one at a time per pool ([map] is not
    re-entrant); the calling domain participates as the last worker, so
    [jobs] counts it. *)

type t

(** How a batch's items are handed to workers.  Both strategies satisfy
    the determinism contract above; they differ only in wall-clock
    behaviour under skew. *)
type strategy =
  | Static
      (** The pre-stealing reference executor: item [i] is pinned to
          worker [i mod jobs] (round-robin striping).  One slow item
          serializes its whole stripe behind it while the other workers
          idle — kept as the baseline the bench harness races {!Steal}
          against. *)
  | Steal
      (** Work stealing over per-worker contiguous ranges (the
          default): idle workers drain loaded ranges, so a single
          pathological item costs at most its own runtime, not its
          stripe's. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] (at least 1): leave one core
    for the caller's OS noise.  This is the default for every [?jobs]
    argument in the library. *)

val create : ?strategy:strategy -> ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] workers ([jobs - 1] new domains plus the
    calling domain).  Defaults: {!Steal}, {!default_jobs}.  Raises
    [Invalid_argument] if [jobs < 1].  Call {!shutdown} (or use
    {!with_pool}) when done — idle workers block a domain each. *)

val jobs : t -> int
(** Worker count (including the calling domain). *)

val strategy : t -> strategy
(** The executor this pool was created with. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs], fanned over the pool's workers.
    Result order — and on failure, which exception propagates — is
    identical to the sequential run (see the determinism contract
    above).  Raises [Invalid_argument "Pool.map: pool is shut down"]
    after {!shutdown} and [Invalid_argument "Pool.map: concurrent map on
    the same pool"] when a batch is already in flight (including a
    re-entrant [map] from inside a work item) — uniformly for every
    [jobs] value, including [jobs = 1] and empty input. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Array counterpart of {!map}. *)

val first_some : t -> (unit -> 'a option) array -> (int * 'a) option
(** Speculative wave: run every thunk on the pool, then select exactly
    what the sequential scan [thunks.(0) (); thunks.(1) (); …] stopping
    at the first [Some] would have selected — the smallest index whose
    thunk returned [Some v] (as [(index, v)]), or [None] when all
    returned [None].  An exception raised by thunk [j] propagates iff no
    thunk [i < j] returned [Some] — again matching the sequential scan,
    which would not have evaluated [j].  The one observable difference
    from that scan is that thunks past the winner {e do run} (their side
    effects — probe counters, allocations — happen), so thunks must be
    pure up to record-only instrumentation.  Same batching rules as
    {!map}: not re-entrant, raises after {!shutdown}. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent; subsequent {!map} calls
    raise. *)

val with_pool : ?strategy:strategy -> ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down on
    exit (normal or exceptional). *)

val run : ?strategy:strategy -> ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [with_pool ~jobs (fun p -> map p f xs)]. *)
