type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of int * string

(* --- parser (moved verbatim from Mp_forensics.Baseline) ---------------- *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | c -> fail (Printf.sprintf "unsupported escape \\%c" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number"
    else
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (string_lit ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec go () =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          go ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec go () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          go ();
          Arr (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let of_string text =
  match parse text with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" pos msg)

(* --- printer ----------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          (* the parser only understands the named escapes; normalize rare
             control characters to spaces rather than emit unreadable bytes *)
          Buffer.add_char buf ' '
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (float_str f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* --- accessors --------------------------------------------------------- *)

let field v name =
  match v with Obj fields -> List.assoc_opt name fields | _ -> None

let str v name = match field v name with Some (Str s) -> Some s | _ -> None
let num v name = match field v name with Some (Num f) -> Some f | _ -> None
let to_int = function Num f -> Some (int_of_float f) | _ -> None
let int_ v name = match field v name with Some j -> to_int j | None -> None
let arr v name = match field v name with Some (Arr l) -> Some l | _ -> None
let obj v name = match field v name with Some (Obj l) -> Some l | _ -> None
