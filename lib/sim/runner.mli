(** Execution of algorithm sets over instance sets, producing per-scenario
    result matrices for {!Metrics}.

    Both runners fan their ⟨instance, algorithm⟩ cells over a
    {!Mp_prelude.Pool} of domains.  Results are {e bit-identical} to the
    sequential run whatever the worker count: every cell computes from the
    instance's own immutable environment and writes into its own result
    slot, and slots are merged in cell order (see the determinism notes in
    DESIGN.md).  When a batch has {e fewer cells than workers}, the cells
    instead run sequentially in cell order and the pool is lent {e into}
    each cell's schedule computation ({!Mp_core.Speculate}); speculation
    is output-preserving, so the matrices are bit-identical across the
    policy switch too.  Pass [~pool] to reuse a pool across scenarios, or
    [~jobs] to run on a transient pool; with neither, a transient pool of
    {!Mp_prelude.Pool.default_jobs} workers is used.  [~jobs:1] is the
    sequential reference. *)

type ressched_result = {
  tat : Metrics.scenario_result;  (** turn-around time, seconds *)
  cpu_hours : Metrics.scenario_result;
}

type deadline_result = {
  tightest : Metrics.scenario_result;  (** tightest achievable deadline, seconds *)
  loose_cpu_hours : Metrics.scenario_result;  (** CPU-hours at the loose deadline *)
}

val ressched :
  ?validate:bool ->
  ?pool:Mp_prelude.Pool.t ->
  ?jobs:int ->
  algos:Mp_core.Algo.ressched list ->
  scenario:string ->
  Instance.t list ->
  ressched_result
(** [ressched ~algos ~scenario instances] runs every algorithm on every
    instance and returns the turn-around-time and CPU-hours result
    matrices.  With [validate] (default false), every produced schedule is
    checked against the instance's calendar and DAG, and an exception is
    raised on any infeasibility — used by the test suite.  A worker's
    exception propagates to the caller (the smallest failing cell index
    wins, as in a sequential run). *)

val deadline :
  ?validate:bool ->
  ?pool:Mp_prelude.Pool.t ->
  ?jobs:int ->
  ?loose_factor:float ->
  algos:Mp_core.Algo.deadline list ->
  scenario:string ->
  Instance.t list ->
  deadline_result
(** [deadline ~algos ~scenario instances] evaluates deadline algorithms as
    in Section 5.3: for each instance, each algorithm's {e tightest
    achievable deadline} is found by binary search; then each algorithm is
    re-run with a {e loose} deadline ([loose_factor] × the latest tightest
    deadline across algorithms, default 1.5) and its CPU-hours recorded.
    An algorithm that fails even at the loose deadline falls back to its
    tightest-deadline schedule's CPU-hours.  The two phases are each
    fanned over the pool; the loose deadline of an instance couples its
    cells, so the second phase starts when the first completes. *)
