(** Memoized workload logs.

    Synthetic log generation (including the FCFS+backfill pass) is the most
    expensive part of instance construction, and a single log is re-used
    across every scenario that references its preset — as the paper reuses
    each archive trace.  Logs are keyed by preset name and seed.

    The cache is the one piece of shared mutable state under the parallel
    experiment engine; all entry points are mutex-protected and each log
    is generated exactly once per key, so results do not depend on which
    domain asks first. *)

val jobs : seed:int -> Mp_workload.Log_model.preset -> Mp_workload.Job.t list
(** Synthetic batch log for the preset (generated once per (preset, seed),
    then cached). *)

val grid5000 : seed:int -> Mp_workload.Grid5000.t
(** Synthetic Grid'5000 reservation log (cached per seed). *)

val clear : unit -> unit
(** Drop all cached logs (used by tests and memory-conscious sweeps). *)
