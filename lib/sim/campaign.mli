(** Multi-application campaigns: several mixed-parallel applications
    arriving over time on the same reserved cluster.

    The paper schedules a single application against a fixed reservation
    schedule.  In deployment, each scheduled application's reservations
    become part of the {e next} application's competing load; this module
    iterates the paper's RESSCHED scheduler over a stream of arrivals,
    threading the calendar through, and reports per-application
    turn-around times (from each application's arrival instant) and the
    cluster-level picture. *)

type arrival = { at : int; dag : Mp_dag.Dag.t }

type app_result = {
  arrival : int;
  schedule : Mp_cpa.Schedule.t;
  turnaround : int;  (** completion − arrival *)
  cpu_hours : float;
}

type t = {
  apps : app_result list;  (** in arrival order *)
  final_calendar : Mp_platform.Calendar.t;  (** base + every application *)
  makespan : int;  (** completion of the last application *)
  total_cpu_hours : float;
}

val run :
  ?bl:Mp_core.Bottom_level.method_ ->
  ?bd:Mp_core.Bound.method_ ->
  ?spec:Mp_core.Speculate.t ->
  Mp_core.Env.t ->
  arrival list ->
  t
(** [run env arrivals] schedules the applications in arrival order (ties
    by position), each seeing the base calendar plus all previously
    scheduled applications, with its tasks constrained to start no
    earlier than its arrival.  The availability estimate [q] is refreshed
    for every application from the current calendar (7-day window from
    its arrival).  [?spec] lends pool workers to each application's
    schedule computation ({!Mp_core.Speculate} — output unchanged).
    Raises [Invalid_argument] on a negative arrival time. *)

val run_many :
  ?pool:Mp_prelude.Pool.t ->
  ?jobs:int ->
  ?bl:Mp_core.Bottom_level.method_ ->
  ?bd:Mp_core.Bound.method_ ->
  (Mp_core.Env.t * arrival list) list ->
  t list
(** [run_many campaigns] runs several {e independent} campaigns (e.g.
    per-tenant clusters or what-if calendars), fanned over a
    {!Mp_prelude.Pool}.  Within a campaign the calendar threading stays
    strictly sequential; across campaigns there is no shared state, so
    the result list is bit-identical to mapping {!run} sequentially.
    When there are fewer campaigns than workers, the campaigns instead
    run sequentially and the pool is lent {e into} each schedule
    computation ({!Mp_core.Speculate}) — still bit-identical, since
    speculation is output-preserving.  [~pool] reuses an existing pool;
    otherwise a transient pool of [jobs] (default
    {!Mp_prelude.Pool.default_jobs}) workers is used. *)
