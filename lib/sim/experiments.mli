(** Drivers reproducing every table of the paper's evaluation.

    Each function returns structured results (so tests can assert the
    paper's qualitative findings) and has a [print_*] companion used by
    the benchmark harness and the CLI.

    Scales: the paper uses 1 440 scenarios × 1 000 instances, far beyond
    what a quick benchmark run should do; {!quick} and {!standard} are
    reduced but shape-preserving, {!paper} is the full design.

    Every simulation driver accepts [?pool] (reuse a caller's
    {!Mp_prelude.Pool} across tables, as {!run_all} does) or [?jobs]
    (transient pool; default {!Mp_prelude.Pool.default_jobs}).  Parallel
    results are bit-identical to [~jobs:1]: work is assigned statically
    and merged in item order — see "Parallel experiment engine" in
    DESIGN.md.  Per-scenario wall-clock is reported on the
    [mpres.experiments] log source at info level. *)

type scale = {
  seed : int;
  n_app : int;  (** application specifications drawn from the 40 of Table 1 *)
  n_res : int;  (** reservation specifications drawn from the 36 *)
  n_dags : int;  (** DAG instances per scenario *)
  n_cals : int;  (** reservation-schedule instances per scenario *)
}

val tiny : scale
(** Smallest shape-preserving scale; used by the golden-file regression
    test and the CI bench smoke job. *)

val quick : scale
val standard : scale
val paper : scale

val huge : scale
(** Same simulation shape as {!quick}; selecting it grows the parts of
    the bench harness that scale independently of the table scenario
    counts — the "Calendar index" ladder climbs to 10⁵–10⁶ reservations
    per calendar.  See CLAUDE.md ([MPRES_SCALE=huge]). *)

val scale_of_string : string -> scale option
(** ["tiny"], ["quick"], ["standard"], ["paper"], ["huge"]. *)

(** {1 Table 2 — workload logs} *)

type log_row = {
  log_name : string;
  cpus : int;
  target_util : float;
  realized_util : float;
  n_jobs : int;
}

val table2 : scale -> log_row list
val print_table2 : scale -> unit

(** {1 Table 3 — log statistics and method correlations} *)

type table3 = {
  stats : (string * Mp_prelude.Stats.summary * Mp_prelude.Stats.summary) list;
      (** per log: (name, windowed mean-exec-time summary [hours],
          windowed mean-wait summary [hours]) *)
  correlations : (string * float) list;
      (** per generation method: average correlation of its reservation
          series with Grid'5000-style series *)
}

val table3 : scale -> table3
val print_table3 : scale -> unit

(** {1 Section 4.3.1 — bottom-level method comparison} *)

type bl_comparison = {
  improvement_min : float;  (** worst relative improvement over BL_1, % *)
  improvement_max : float;  (** best relative improvement over BL_1, % *)
  best_shares : (string * float) list;
      (** fraction of (scenario × bounding) cases each BL method wins *)
}

val bl_comparison : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> bl_comparison
val print_bl_comparison : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> unit

(** {1 Tables 4 and 5 — RESSCHED} *)

val table4 : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> Metrics.row list * Metrics.row list
(** Synthetic reservation schedules; (turn-around rows, CPU-hour rows). *)

val print_table4 : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> unit

val table5 : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> Metrics.row list * Metrics.row list
(** Grid'5000-style reservation schedules. *)

val print_table5 : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> unit

val bl_bd_matrix : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> Metrics.row list * Metrics.row list
(** Extended experiment: every one of the 16 BL_x_BD_y combinations on
    synthetic reservation schedules (the paper reports only the BL and BD
    marginals). *)

val print_bl_bd_matrix : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> unit

(** {1 Tables 6 and 7 — RESSCHEDDL} *)

val table6 : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> (string * Metrics.row list * Metrics.row list) list
(** One triple per column group: ["phi=0.1"], ["phi=0.2"], ["phi=0.5"]
    (SDSC_BLUE log, as in the paper) and ["Grid5000"]; each carries
    (tightest-deadline rows, loose-deadline CPU-hour rows). *)

val print_table6 : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> unit

val table7 : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> Metrics.row list * Metrics.row list
(** Hybrid-λ algorithms on Grid'5000-style schedules. *)

val print_table7 : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> unit

val standard_tables : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> string
(** The exact text of the [standard_tables.out] artifact at the given
    scale: Tables 4-7 and the Section 4.3.1 comparison separated by
    [===T5===]/[===T6===]/[===T7===]/[===BL===] markers.  The test suite
    pins the {!tiny}-scale rendering against
    [test/standard_tables_tiny.expected]. *)

(** {1 Table 8 — complexities (static)} *)

val print_table8 : unit -> unit

(** {1 Tables 9 and 10 — algorithm execution times} *)

type timing_row = { algo_name : string; times_ms : (string * float) list }

val table9 : scale -> timing_row list
(** Average scheduling time (milliseconds) per algorithm as the task count
    [n] sweeps 10..100. *)

val print_table9 : scale -> unit

val table10 : scale -> timing_row list
(** Same as the edge density [d] sweeps 0.1..0.9. *)

val print_table10 : scale -> unit

(** {1 Ablations (beyond the paper's tables)} *)

type allocator_row = {
  allocator : string;
  avg_makespan_h : float;  (** mean makespan, hours, dedicated cluster *)
  avg_work_h : float;  (** mean CPU-hours *)
}

val allocator_ablation : scale -> allocator_row list
(** Compare the mixed-parallel allocators on dedicated clusters (no
    reservations): CPA with the classic stopping criterion, CPA with the
    improved criterion (the paper's choice), MCPA, and iCASLB.  Justifies
    the improved-criterion substitution documented in DESIGN.md. *)

val print_allocator_ablation : scale -> unit

type blind_row = {
  budget : int;
  avg_turnaround_penalty : float;  (** % over the omniscient BD_CPAR *)
  avg_probes_per_task : float;
}

val blind_ablation : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> blind_row list
(** Cost of scheduling {e without} calendar visibility (Section 3.2.2's
    trial-and-error variant, [Mp_core.Blind]): turn-around penalty versus
    the omniscient scheduler as the per-task probe budget grows. *)

val print_blind_ablation : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> unit

type online_row = {
  arrivals_per_step : float;
  avg_turnaround_penalty : float;  (** % over scheduling with a frozen calendar *)
  avg_competitors_granted : float;
}

val online_ablation : scale -> online_row list
(** Impact of competing reservations arriving {e while} the application is
    being scheduled ([Mp_core.Online], removing the paper's frozen-calendar
    assumption): turn-around penalty as the mid-scheduling arrival rate
    grows. *)

val print_online_ablation : scale -> unit

type icaslb_row = { bound_name : string; avg_turnaround_h : float; avg_cpu_hours : float }

val icaslb_ablation : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> icaslb_row list
(** The paper's first future-work direction: use iCASLB instead of CPA to
    compute the allocation bounds ([Bound.BD_ICASLB]/[BD_ICASLBR]),
    compared against BD_CPA/BD_CPAR on reserved clusters. *)

val print_icaslb_ablation : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> unit

type hetero_row = {
  hbd : string;
  avg_turnaround_h : float;
  avg_cpu_hours : float;
  fast_site_share : float;  (** fraction of tasks placed on the fastest site *)
}

val hetero_ablation : scale -> hetero_row list
(** Heterogeneous multi-cluster extension ([Mp_core.Hressched]): HBD_ALL
    versus HBD_CPAR on random three-site grids with competing
    reservations. *)

val print_hetero_ablation : scale -> unit

type impact_row = {
  injected : string;  (** ["none"] or the bound method used for the application *)
  avg_wait_min : float;  (** batch jobs' mean queue wait, minutes *)
  app_cpu_hours : float;
}

val reservation_impact : scale -> impact_row list
(** The reservation-impact question the paper's motivation raises (and
    Margo et al. studied): injecting the application's advance
    reservations into a batch stream, how much longer do batch jobs wait —
    and how much worse is a greedy (BD_ALL) application schedule than a
    frugal (BD_CPAR) one? *)

val print_reservation_impact : scale -> unit

type pareto_row = { slack : float; rows : (string * float) list }

val pareto_ablation : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> pareto_row list
(** CPU-hours of the main deadline algorithms as the deadline loosens from
    the tightest achievable (slack 1.0) to 5x — the full curve behind the
    paper's single loose-deadline column. *)

val print_pareto_ablation : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> unit

type estimate_row = {
  factor : float;  (** execution-time over-estimation factor *)
  rows : (string * float * float) list;
      (** per algorithm: (name, avg turn-around hours, avg CPU-hours) —
          reservations are paid for their full (over-estimated) length *)
}

val estimate_ablation : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> estimate_row list
(** Impact of pessimistic execution-time estimates (Section 3.1 leaves
    this out of scope but predicts that all algorithms degrade similarly):
    task reservations are made for [factor] × the true execution time, so
    both turn-around time and the CPU-hours billed grow with the
    pessimism. *)

val print_estimate_ablation : ?pool:Mp_prelude.Pool.t -> ?jobs:int -> scale -> unit

val run_all : ?jobs:int -> scale -> unit
(** Print every table at the given scale, plus the ablations. *)
