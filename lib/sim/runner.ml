module Algo = Mp_core.Algo
module Deadline = Mp_core.Deadline
module Schedule = Mp_cpa.Schedule
module Pool = Mp_prelude.Pool

let sp_cell = Mp_obs.Span.make "runner.cell"

type ressched_result = {
  tat : Metrics.scenario_result;
  cpu_hours : Metrics.scenario_result;
}

type deadline_result = {
  tightest : Metrics.scenario_result;
  loose_cpu_hours : Metrics.scenario_result;
}

let check ~validate (inst : Instance.t) ?deadline sched =
  if validate then begin
    match
      Schedule.validate inst.dag ~base:inst.env.Mp_core.Env.calendar ?deadline sched
    with
    | Ok () -> ()
    | Error msg ->
        failwith (Printf.sprintf "invalid schedule (%s / %s): %s" inst.app_label inst.res_label msg)
  end

let with_pool ?pool ?jobs f =
  match pool with Some p -> f p | None -> Pool.with_pool ?jobs f

(* Cells are numbered instance-major: cell [ii * n_algos + ai].  Each cell
   reads only its instance's immutable environment and DAG and fills its
   own result slot, so the merged matrices are independent of worker
   count and scheduling order.

   When a batch has fewer cells than the pool has workers, fanning the
   cells would idle domains; instead the cells run sequentially in the
   calling domain and the whole pool is lent *into* each cell
   ({!Mp_core.Speculate}).  Speculation is output-preserving and cells
   run in cell order, so the merged matrices are unchanged — the
   bit-identical-for-any-jobs pin holds across the policy switch. *)
let lend_spec p cells =
  if Array.length cells > 0 && Array.length cells < Pool.jobs p then
    Some (Mp_core.Speculate.create p)
  else None

(* With a lent spec the pool must stay idle for the cells' own fan-out (a
   pool batch is not re-entrant), so the cells run in cell order on the
   calling domain — the same order [Pool.map_array] merges in. *)
let fan p spec f cells =
  match spec with Some _ -> Array.map f cells | None -> Pool.map_array p f cells

let ressched ?(validate = false) ?pool ?jobs ~algos ~scenario (instances : Instance.t list) =
  let algos = Array.of_list algos in
  let instances = Array.of_list instances in
  let n_algos = Array.length algos in
  let n_inst = Array.length instances in
  let algo_names = Array.map (fun (a : Algo.ressched) -> a.name) algos in
  let cells = Array.init (n_inst * n_algos) Fun.id in
  let results =
    with_pool ?pool ?jobs (fun p ->
        let spec = lend_spec p cells in
        fan p spec
          (fun c ->
            Mp_obs.Span.wrap sp_cell @@ fun () ->
            let inst = instances.(c / n_algos) in
            let (a : Algo.ressched) = algos.(c mod n_algos) in
            let sched = a.run ?spec inst.env inst.dag in
            check ~validate inst sched;
            (float_of_int (Schedule.turnaround sched), Schedule.cpu_hours sched))
          cells)
  in
  let matrix f =
    Array.init n_algos (fun ai -> Array.init n_inst (fun ii -> f results.(ii * n_algos + ai)))
  in
  {
    tat = { Metrics.scenario; algos = algo_names; values = matrix fst };
    cpu_hours = { Metrics.scenario; algos = algo_names; values = matrix snd };
  }

let deadline ?(validate = false) ?pool ?jobs ?(loose_factor = 1.5) ~algos ~scenario (instances : Instance.t list) =
  let algos = Array.of_list algos in
  let instances = Array.of_list instances in
  let n_algos = Array.length algos in
  let n_inst = Array.length instances in
  let algo_names = Array.map (fun (a : Algo.deadline) -> a.name) algos in
  let cells = Array.init (n_inst * n_algos) Fun.id in
  with_pool ?pool ?jobs (fun p ->
      (* one spec for both phases: a [prepared] closure captures the spec
         it was prepared under, so phase 2 must run under the same
         lending decision (sequential cells, pool idle between waves) *)
      let spec = lend_spec p cells in
      (* phase 1: per cell, the deadline-independent preparation and the
         tightest achievable deadline *)
      let prepared_tight =
        fan p spec
          (fun c ->
            Mp_obs.Span.wrap sp_cell @@ fun () ->
            let inst = instances.(c / n_algos) in
            let (a : Algo.deadline) = algos.(c mod n_algos) in
            let prepared = a.prepare ?spec inst.env inst.dag in
            let tight = Deadline.tightest ?spec prepared inst.env inst.dag in
            (match tight with
            | Some (k, sched) -> check ~validate inst ~deadline:k sched
            | None -> ());
            (prepared, tight))
          cells
      in
      (* the loose deadline couples an instance's cells: barrier here *)
      let loose =
        Array.init n_inst (fun ii ->
            let max_tight = ref 1 in
            for ai = 0 to n_algos - 1 do
              match snd prepared_tight.((ii * n_algos) + ai) with
              | Some (k, _) -> if k > !max_tight then max_tight := k
              | None -> ()
            done;
            int_of_float (ceil (loose_factor *. float_of_int !max_tight)))
      in
      (* phase 2: per cell, CPU-hours at the loose deadline (falling back
         to the tightest-deadline schedule on failure) *)
      let cpu =
        fan p spec
          (fun c ->
            Mp_obs.Span.wrap sp_cell @@ fun () ->
            let inst = instances.(c / n_algos) in
            let prepared, tight = prepared_tight.(c) in
            let deadline = loose.(c / n_algos) in
            match prepared ~deadline with
            | Some sched ->
                check ~validate inst ~deadline sched;
                Schedule.cpu_hours sched
            | None -> (
                match tight with
                | Some (_, sched) -> Schedule.cpu_hours sched
                | None -> infinity))
          cells
      in
      let matrix f =
        Array.init n_algos (fun ai -> Array.init n_inst (fun ii -> f ((ii * n_algos) + ai)))
      in
      {
        tightest =
          {
            Metrics.scenario;
            algos = algo_names;
            values =
              matrix (fun c ->
                  match snd prepared_tight.(c) with
                  | Some (k, _) -> float_of_int k
                  | None -> infinity);
          };
        loose_cpu_hours =
          { Metrics.scenario; algos = algo_names; values = matrix (fun c -> cpu.(c)) };
      })
