module Rng = Mp_prelude.Rng
module Stats = Mp_prelude.Stats
module Pool = Mp_prelude.Pool
module Dag_gen = Mp_dag.Dag_gen
module Calendar = Mp_platform.Calendar
module Job = Mp_workload.Job
module Log_model = Mp_workload.Log_model
module Reservation_gen = Mp_workload.Reservation_gen
module Grid5000 = Mp_workload.Grid5000
module Schedule = Mp_cpa.Schedule
module Algo = Mp_core.Algo
module Bound = Mp_core.Bound
module Bottom_level = Mp_core.Bottom_level
module Ressched = Mp_core.Ressched
module Deadline = Mp_core.Deadline

let log_src = Logs.Src.create "mpres.experiments" ~doc:"experiment progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

type scale = { seed : int; n_app : int; n_res : int; n_dags : int; n_cals : int }

let tiny = { seed = 42; n_app = 1; n_res = 2; n_dags = 1; n_cals = 2 }
let quick = { seed = 42; n_app = 3; n_res = 4; n_dags = 2; n_cals = 2 }
let standard = { seed = 42; n_app = 10; n_res = 9; n_dags = 3; n_cals = 5 }
let paper = { seed = 42; n_app = 40; n_res = 36; n_dags = 20; n_cals = 50 }

(* The simulation tables keep the quick shape at [huge]: the tier exists
   for the calendar-index ladder (10^5-10^6 reservations per calendar)
   and the service soak, which scale independently of the table
   scenario counts — see "Calendar index" in the bench harness. *)
let huge = { quick with seed = 42 }

let scale_of_string = function
  | "tiny" -> Some tiny
  | "quick" -> Some quick
  | "standard" -> Some standard
  | "paper" -> Some paper
  | "huge" -> Some huge
  | _ -> None

let day = 86_400
let hours s = float_of_int s /. 3600.
let now () = Unix.gettimeofday ()

(* Every driver below takes [?pool] (reuse a caller's worker pool, as
   {!run_all} does across all tables) or [?jobs] (transient pool); the
   fan-out itself lives in {!Runner} and {!Pool.map}, and parallel results
   are bit-identical to [~jobs:1] — see "Parallel experiment engine" in
   DESIGN.md. *)
let with_pool ?pool ?jobs f =
  match pool with Some p -> f p | None -> Pool.with_pool ?jobs f

(* ------------------------------------------------------------------ *)
(* Table 2 *)

type log_row = {
  log_name : string;
  cpus : int;
  target_util : float;
  realized_util : float;
  n_jobs : int;
}

let table2 scale =
  List.map
    (fun (preset : Log_model.preset) ->
      let jobs = Logcache.jobs ~seed:scale.seed preset in
      let horizon = 60 * day in
      {
        log_name = preset.name;
        cpus = preset.cpus;
        target_util = preset.target_utilization;
        realized_util = Mp_workload.Batch_sim.utilization ~procs:preset.cpus ~horizon jobs;
        n_jobs = List.length jobs;
      })
    Log_model.all

let print_table2 scale =
  let rows =
    List.map
      (fun r ->
        [
          r.log_name;
          string_of_int r.cpus;
          Report.f3 r.target_util;
          Report.f3 r.realized_util;
          string_of_int r.n_jobs;
        ])
      (table2 scale)
  in
  Report.print ~title:"Table 2: synthetic workload logs (realized characteristics)"
    ~header:[ "Log"; "#CPUs"; "target util"; "realized util"; "#jobs" ]
    ~rows

(* ------------------------------------------------------------------ *)
(* Table 3 *)

type table3 = {
  stats : (string * Stats.summary * Stats.summary) list;
  correlations : (string * float) list;
}

(* Windowed means: the paper's tiny CVs (a few %) are only consistent with
   variation of per-window averages, not of raw job statistics. *)
let windowed_stats rng jobs ~n_windows =
  let execs = ref [] and waits = ref [] in
  let attempts = n_windows * 4 in
  let rec go k remaining =
    if remaining = 0 || k = 0 then ()
    else begin
      let at = Reservation_gen.random_instant rng jobs in
      let in_window =
        List.filter
          (fun (j : Job.t) ->
            match j.start with Some s -> s >= at && s < at + (7 * day) | None -> false)
          jobs
      in
      if List.length in_window < 5 then go (k - 1) remaining
      else begin
        let mean_exec = Stats.mean (List.map (fun (j : Job.t) -> hours j.run) in_window) in
        let mean_wait =
          Stats.mean
            (List.map
               (fun (j : Job.t) -> match Job.wait j with Some w -> hours w | None -> 0.)
               in_window)
        in
        execs := mean_exec :: !execs;
        waits := mean_wait :: !waits;
        go (k - 1) (remaining - 1)
      end
    end
  in
  go attempts n_windows;
  match !execs with
  | [] -> None
  | _ -> Some (Stats.summarize !execs, Stats.summarize !waits)

let table3 scale =
  let rng = Rng.create (scale.seed + 3) in
  let n_windows = max 4 scale.n_cals in
  let g5k = Logcache.grid5000 ~seed:scale.seed in
  let stats =
    List.filter_map
      (fun (name, jobs) ->
        Option.map (fun (e, w) -> (name, e, w)) (windowed_stats rng jobs ~n_windows))
      (("Grid5000", g5k.Grid5000.jobs)
      :: List.map (fun p -> (p.Log_model.name, Logcache.jobs ~seed:scale.seed p)) Log_model.all)
  in
  (* Reservation-series correlations: compare each method's synthetic
     series against Grid'5000 series, averaged over draws. *)
  let series_of_resgen rg =
    Calendar.busy_series (Reservation_gen.calendar rg) ~from_:0 ~until:(7 * day) ~step:3600
  in
  let g5k_series () =
    let at = Reservation_gen.random_instant rng g5k.Grid5000.jobs in
    series_of_resgen
      (Reservation_gen.extract rng Reservation_gen.Real ~procs:g5k.Grid5000.cpus ~at
         g5k.Grid5000.jobs)
  in
  let presets = Array.of_list Log_model.all in
  let phis = Array.of_list Scenario.phis in
  let n_draws = max 4 (scale.n_cals * 2) in
  let correlations =
    List.map
      (fun method_ ->
        let cs =
          List.init n_draws (fun k ->
              let preset = presets.(k mod Array.length presets) in
              let phi = phis.(k mod Array.length phis) in
              let jobs = Logcache.jobs ~seed:scale.seed preset in
              let at = Reservation_gen.random_instant rng jobs in
              let tagged = Reservation_gen.tag rng ~phi jobs in
              let rg =
                Reservation_gen.extract rng method_ ~procs:preset.Log_model.cpus ~at tagged
              in
              Stats.correlation (series_of_resgen rg) (g5k_series ()))
        in
        (Reservation_gen.method_name method_, Stats.mean cs))
      Reservation_gen.all_methods
  in
  { stats; correlations }

let print_table3 scale =
  let t = table3 scale in
  Report.print ~title:"Table 3: per-log windowed statistics"
    ~header:[ "Log"; "avg exec [h]"; "CV exec [%]"; "avg wait [h]"; "CV wait [%]" ]
    ~rows:
      (List.map
         (fun (name, (e : Stats.summary), (w : Stats.summary)) ->
           [ name; Report.f2 e.mean; Report.f2 (e.cv *. 100.); Report.f2 w.mean; Report.f2 (w.cv *. 100.) ])
         t.stats);
  print_newline ();
  Report.print ~title:"Table 3 (cont.): correlation of synthetic methods with Grid'5000 series"
    ~header:[ "method"; "avg correlation" ]
    ~rows:(List.map (fun (m, c) -> [ m; Report.f2 c ]) t.correlations)

(* ------------------------------------------------------------------ *)
(* Scenario enumeration helpers *)

let synthetic_scenarios scale =
  let apps = Scenario.sample_app_specs scale.n_app in
  let ress = Scenario.sample_res_specs scale.n_res in
  List.concat_map (fun app -> List.map (fun res -> (app, res)) ress) apps

(* ------------------------------------------------------------------ *)
(* Section 4.3.1: bottom-level comparison *)

type bl_comparison = {
  improvement_min : float;
  improvement_max : float;
  best_shares : (string * float) list;
}

let bl_comparison ?pool ?jobs scale =
  let scenarios = synthetic_scenarios scale in
  (* one work item per scenario: each returns its per-(bd) means, the
     accumulators below are filled from the ordered result list *)
  let per_scenario =
    with_pool ?pool ?jobs (fun p ->
        Pool.map p
          (fun ((app : Scenario.app_spec), res) ->
            let instances =
              Instance.synthetic ~seed:scale.seed ~app ~res ~n_dags:scale.n_dags
                ~n_cals:scale.n_cals
            in
            List.map
              (fun bd ->
                (* mean turnaround per BL method over the scenario's instances *)
                let mean_of bl =
                  Stats.mean
                    (List.map
                       (fun (inst : Instance.t) ->
                         float_of_int
                           (Schedule.turnaround (Ressched.schedule ~bl ~bd inst.env inst.dag)))
                       instances)
                in
                ( mean_of Bottom_level.BL_1,
                  List.map (fun bl -> (bl, mean_of bl)) [ Bottom_level.BL_ALL; BL_CPA; BL_CPAR ] ))
              Bound.all)
          scenarios)
  in
  let improvements = ref [] in
  let best_counts = Hashtbl.create 4 in
  let cases = ref 0 in
  List.iter
    (List.iter (fun (base, results) ->
         List.iter
           (fun (_, m) -> improvements := ((base -. m) /. base *. 100.) :: !improvements)
           results;
         let all = (Bottom_level.BL_1, base) :: results in
         let best = List.fold_left (fun acc (_, m) -> Float.min acc m) base all in
         incr cases;
         List.iter
           (fun (bl, m) ->
             if m <= best +. 1e-9 then begin
               let name = Bottom_level.name bl in
               Hashtbl.replace best_counts name (1 + Option.value ~default:0 (Hashtbl.find_opt best_counts name))
             end)
           all))
    per_scenario;
  let shares =
    List.map
      (fun bl ->
        let name = Bottom_level.name bl in
        ( name,
          float_of_int (Option.value ~default:0 (Hashtbl.find_opt best_counts name))
          /. float_of_int (max 1 !cases) ))
      Bottom_level.all
  in
  {
    improvement_min = Stats.minimum !improvements;
    improvement_max = Stats.maximum !improvements;
    best_shares = shares;
  }

let print_bl_comparison ?pool ?jobs scale =
  let c = bl_comparison ?pool ?jobs scale in
  Report.print ~title:"Section 4.3.1: bottom-level method comparison (improvement over BL_1)"
    ~header:[ "quantity"; "value" ]
    ~rows:
      ([
         [ "min improvement [%]"; Report.f2 c.improvement_min ];
         [ "max improvement [%]"; Report.f2 c.improvement_max ];
       ]
      @ List.map (fun (name, s) -> [ name ^ " best share [%]"; Report.f1 (s *. 100.) ]) c.best_shares)

(* ------------------------------------------------------------------ *)
(* Tables 4 and 5 *)

let summarize_ressched (results : Runner.ressched_result list) =
  ( Metrics.summarize (List.map (fun (r : Runner.ressched_result) -> r.tat) results),
    Metrics.summarize (List.map (fun (r : Runner.ressched_result) -> r.cpu_hours) results) )

let table4 ?pool ?jobs scale =
  let scenarios = synthetic_scenarios scale in
  let total = List.length scenarios in
  let results =
    with_pool ?pool ?jobs (fun p ->
        List.mapi
          (fun k ((app : Scenario.app_spec), res) ->
            let scenario = app.label ^ " x " ^ Scenario.res_label res in
            let t0 = now () in
            let instances =
              Instance.synthetic ~seed:scale.seed ~app ~res ~n_dags:scale.n_dags
                ~n_cals:scale.n_cals
            in
            let r = Runner.ressched ~pool:p ~algos:Algo.ressched_main ~scenario instances in
            Log.info (fun m ->
                m "table4: scenario %d/%d (%s) [%.2f s]" (k + 1) total scenario (now () -. t0));
            r)
          scenarios)
  in
  summarize_ressched results

let table5 ?pool ?jobs scale =
  let apps = Scenario.sample_app_specs scale.n_app in
  let results =
    with_pool ?pool ?jobs (fun p ->
        List.map
          (fun (app : Scenario.app_spec) ->
            let scenario = app.label ^ " x Grid5000" in
            let t0 = now () in
            let instances =
              Instance.grid5000 ~seed:scale.seed ~app ~n_dags:scale.n_dags ~n_cals:scale.n_cals
            in
            let r = Runner.ressched ~pool:p ~algos:Algo.ressched_main ~scenario instances in
            Log.info (fun m -> m "table5: scenario %s [%.2f s]" scenario (now () -. t0));
            r)
          apps)
  in
  summarize_ressched results

let ressched_header =
  [ "Algorithm"; "TAT deg [%]"; "TAT wins"; "CPUh deg [%]"; "CPUh wins" ]

let print_table4 ?pool ?jobs scale =
  let tat, cpu = table4 ?pool ?jobs scale in
  Report.print ~title:"Table 4: RESSCHED, synthetic reservation schedules" ~header:ressched_header
    ~rows:(Report.summary_rows tat cpu)

let print_table5 ?pool ?jobs scale =
  let tat, cpu = table5 ?pool ?jobs scale in
  Report.print ~title:"Table 5: RESSCHED, Grid'5000 reservation schedules" ~header:ressched_header
    ~rows:(Report.summary_rows tat cpu)

(* Extended: the full 16-combination BL x BD matrix (the paper only
   reports the marginals of Sections 4.3.1 and 4.3.2). *)
let bl_bd_matrix ?pool ?jobs scale =
  let scenarios = synthetic_scenarios scale in
  let results =
    with_pool ?pool ?jobs (fun p ->
        List.map
          (fun ((app : Scenario.app_spec), res) ->
            let instances =
              Instance.synthetic ~seed:scale.seed ~app ~res ~n_dags:scale.n_dags
                ~n_cals:scale.n_cals
            in
            Runner.ressched ~pool:p ~algos:Algo.ressched_all
              ~scenario:(app.label ^ " x " ^ Scenario.res_label res)
              instances)
          scenarios)
  in
  summarize_ressched results

let print_bl_bd_matrix ?pool ?jobs scale =
  let tat, cpu = bl_bd_matrix ?pool ?jobs scale in
  Report.print ~title:"Extended: all 16 BL x BD combinations (RESSCHED, synthetic schedules)"
    ~header:ressched_header ~rows:(Report.summary_rows tat cpu)

(* ------------------------------------------------------------------ *)
(* Tables 6 and 7 *)

(* The paper restricts Table 6's synthetic columns to the SDSC_BLUE log. *)
let deadline_res_specs phi =
  List.map
    (fun method_ -> { Scenario.log = Log_model.sdsc_blue; phi; method_ })
    Reservation_gen.all_methods

let deadline_apps scale = Scenario.sample_app_specs (max 1 (scale.n_app / 2))

let table6_column ?pool ?jobs scale ~algos specs_or_g5k =
  let apps = deadline_apps scale in
  let results =
    with_pool ?pool ?jobs (fun p ->
        match specs_or_g5k with
        | `Synthetic specs ->
            List.concat_map
              (fun (app : Scenario.app_spec) ->
                List.map
                  (fun res ->
                    let scenario = app.label ^ " x " ^ Scenario.res_label res in
                    let t0 = now () in
                    let instances =
                      Instance.synthetic ~seed:scale.seed ~app ~res ~n_dags:scale.n_dags
                        ~n_cals:scale.n_cals
                    in
                    let r = Runner.deadline ~pool:p ~algos ~scenario instances in
                    Log.info (fun m -> m "deadline scenario %s [%.2f s]" scenario (now () -. t0));
                    r)
                  specs)
              apps
        | `Grid5000 ->
            List.map
              (fun (app : Scenario.app_spec) ->
                let scenario = app.label ^ " x Grid5000" in
                let t0 = now () in
                let instances =
                  Instance.grid5000 ~seed:scale.seed ~app ~n_dags:scale.n_dags
                    ~n_cals:scale.n_cals
                in
                let r = Runner.deadline ~pool:p ~algos ~scenario instances in
                Log.info (fun m -> m "deadline scenario %s [%.2f s]" scenario (now () -. t0));
                r)
              apps)
  in
  ( Metrics.summarize (List.map (fun (r : Runner.deadline_result) -> r.tightest) results),
    Metrics.summarize (List.map (fun (r : Runner.deadline_result) -> r.loose_cpu_hours) results) )

let table6 ?pool ?jobs scale =
  with_pool ?pool ?jobs (fun p ->
      let algos = Algo.deadline_main in
      List.map
        (fun phi ->
          let tight, cpu = table6_column ~pool:p scale ~algos (`Synthetic (deadline_res_specs phi)) in
          (Printf.sprintf "phi=%.1f" phi, tight, cpu))
        Scenario.phis
      @ [
          (let tight, cpu = table6_column ~pool:p scale ~algos `Grid5000 in
           ("Grid5000", tight, cpu));
        ])

let deadline_header =
  [ "Algorithm"; "tightest deg [%]"; "wins"; "CPUh@loose deg [%]"; "wins" ]

let print_table6 ?pool ?jobs scale =
  List.iter
    (fun (label, tight, cpu) ->
      Report.print
        ~title:(Printf.sprintf "Table 6 (%s): deadline algorithms" label)
        ~header:deadline_header ~rows:(Report.summary_rows tight cpu);
      print_newline ())
    (table6 ?pool ?jobs scale)

let table7 ?pool ?jobs scale =
  table6_column ?pool ?jobs scale ~algos:Algo.deadline_hybrid `Grid5000

let print_table7 ?pool ?jobs scale =
  let tight, cpu = table7 ?pool ?jobs scale in
  Report.print ~title:"Table 7: hybrid deadline algorithms, Grid'5000 schedules"
    ~header:deadline_header ~rows:(Report.summary_rows tight cpu)

(* The exact text of [standard_tables.out] at any scale: Tables 4-7 and
   the Section 4.3.1 comparison, with ===Tn===/===BL=== separators.  The
   golden-file regression test renders it at {!tiny} scale, so formatting
   or algorithm drift shows up in [dune runtest] instead of only in the
   checked-in artifact. *)
let standard_tables ?pool ?jobs scale =
  with_pool ?pool ?jobs (fun p ->
      let buf = Buffer.create 4096 in
      let tat4, cpu4 = table4 ~pool:p scale in
      Buffer.add_string buf
        (Report.render ~title:"Table 4: RESSCHED, synthetic reservation schedules"
           ~header:ressched_header ~rows:(Report.summary_rows tat4 cpu4));
      Buffer.add_string buf "===T5===\n";
      let tat5, cpu5 = table5 ~pool:p scale in
      Buffer.add_string buf
        (Report.render ~title:"Table 5: RESSCHED, Grid'5000 reservation schedules"
           ~header:ressched_header ~rows:(Report.summary_rows tat5 cpu5));
      Buffer.add_string buf "===T6===\n";
      List.iter
        (fun (label, tight, cpu) ->
          Buffer.add_string buf
            (Report.render
               ~title:(Printf.sprintf "Table 6 (%s): deadline algorithms" label)
               ~header:deadline_header ~rows:(Report.summary_rows tight cpu));
          Buffer.add_char buf '\n')
        (table6 ~pool:p scale);
      Buffer.add_string buf "===T7===\n";
      let tight7, cpu7 = table7 ~pool:p scale in
      Buffer.add_string buf
        (Report.render ~title:"Table 7: hybrid deadline algorithms, Grid'5000 schedules"
           ~header:deadline_header ~rows:(Report.summary_rows tight7 cpu7));
      Buffer.add_string buf "===BL===\n";
      let c = bl_comparison ~pool:p scale in
      Buffer.add_string buf
        (Report.render
           ~title:"Section 4.3.1: bottom-level method comparison (improvement over BL_1)"
           ~header:[ "quantity"; "value" ]
           ~rows:
             ([
                [ "min improvement [%]"; Report.f2 c.improvement_min ];
                [ "max improvement [%]"; Report.f2 c.improvement_max ];
              ]
             @ List.map
                 (fun (name, s) -> [ name ^ " best share [%]"; Report.f1 (s *. 100.) ])
                 c.best_shares));
      Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Table 8 (static) *)

let print_table8 () =
  Report.print ~title:"Table 8: worst-case asymptotic complexities"
    ~header:[ "Algorithm"; "Complexity" ]
    ~rows:
      [
        [ "BD_ALL"; "O(V^2 P' + V^2 P + V E P' + V R P)" ];
        [ "BD_CPA"; "O(V^2 P' + V^2 P + V E P' + V E P + V R P)" ];
        [ "BD_CPAR"; "O(V^2 P' + V E P' + V R P')" ];
        [ "DL_BD_ALL"; "O(V^2 P' + V^2 P + V E P' + V R' P)" ];
        [ "DL_BD_CPA"; "O(V^2 P' + V^2 P + V E P' + V E P + V R' P)" ];
        [ "DL_BD_CPAR"; "O(V^2 P' + V E P' + V R' P')" ];
        [ "DL_RC_CPA"; "O(V^2 P' + V^2 P + V E P' + V E P + V R' P)" ];
        [ "DL_RC_CPAR"; "O(V^2 P' + V E P' + V R' P')" ];
        [ "DL_RC_CPAR-l"; "O(V^2 P' + V E P' + V R' P')" ];
        [ "DL_RCBD_CPAR-l"; "O(V^2 P' + V E P' + V R' P')" ];
      ]

(* ------------------------------------------------------------------ *)
(* Tables 9 and 10: execution times *)

type timing_row = { algo_name : string; times_ms : (string * float) list }

let time_ms f =
  (* Repeat until at least ~40 ms of cumulative CPU time for stability. *)
  let t0 = Sys.time () in
  let reps = ref 0 in
  let elapsed () = Sys.time () -. t0 in
  while elapsed () < 0.04 || !reps < 3 do
    f ();
    incr reps
  done;
  elapsed () /. float_of_int !reps *. 1000.

let timing_instances scale params =
  let app = { Scenario.label = Format.asprintf "%a" Dag_gen.pp_params params; params } in
  Instance.grid5000 ~seed:scale.seed ~app ~n_dags:(max 2 scale.n_dags)
    ~n_cals:(max 2 (scale.n_cals / 2))

let timed_algorithms (instances : Instance.t list) =
  (* A feasible deadline for the timing runs of the DL_* algorithms. *)
  let deadlines =
    List.map
      (fun (inst : Instance.t) ->
        2 * Schedule.turnaround (Ressched.schedule inst.env inst.dag))
      instances
  in
  let res (a : Algo.ressched) =
    ( a.name,
      fun () -> List.iter (fun (inst : Instance.t) -> ignore (a.run inst.env inst.dag)) instances )
  in
  let dl (a : Algo.deadline) =
    ( a.name,
      fun () ->
        List.iter2
          (fun (inst : Instance.t) deadline -> ignore (a.run inst.env inst.dag ~deadline))
          instances deadlines )
  in
  List.map res Algo.ressched_main @ List.map dl Algo.deadline_all

let timing_sweep scale sweeps =
  (* [sweeps]: (column label, params) list *)
  let columns =
    List.map
      (fun (label, params) ->
        let instances = timing_instances scale params in
        let per_algo =
          List.map
            (fun (name, run) ->
              (name, time_ms run /. float_of_int (List.length instances)))
            (timed_algorithms instances)
        in
        (label, per_algo))
      sweeps
  in
  match columns with
  | [] -> []
  | (_, first) :: _ ->
      List.map
        (fun (algo_name, _) ->
          {
            algo_name;
            times_ms =
              List.map (fun (label, per_algo) -> (label, List.assoc algo_name per_algo)) columns;
          })
        first

let table9 scale =
  let ns = [ 10; 25; 50; 75; 100 ] in
  timing_sweep scale
    (List.map (fun n -> (Printf.sprintf "n=%d" n, { Dag_gen.default with n })) ns)

let table10 scale =
  let ds = [ 0.1; 0.3; 0.5; 0.7; 0.9 ] in
  timing_sweep scale
    (List.map (fun d -> (Printf.sprintf "d=%.1f" d, { Dag_gen.default with density = d })) ds)

let print_timing ~title rows =
  match rows with
  | [] -> ()
  | first :: _ ->
      Report.print ~title
        ~header:("Algorithm" :: List.map fst first.times_ms)
        ~rows:
          (List.map
             (fun r -> r.algo_name :: List.map (fun (_, ms) -> Report.f3 ms) r.times_ms)
             rows)

let print_table9 scale = print_timing ~title:"Table 9: execution time [ms] vs task count" (table9 scale)

let print_table10 scale =
  print_timing ~title:"Table 10: execution time [ms] vs edge density" (table10 scale)

(* ------------------------------------------------------------------ *)
(* Ablations *)

type allocator_row = { allocator : string; avg_makespan_h : float; avg_work_h : float }

let allocator_ablation scale =
  let rng = Rng.create (scale.seed + 77) in
  let n_dags = max 4 (scale.n_dags * 2) in
  let dags = List.init n_dags (fun _ -> Mp_dag.Dag_gen.generate rng Dag_gen.default) in
  let p = 64 in
  let allocators =
    [
      ("CPA (classic criterion)", fun dag -> Mp_cpa.Cpa.schedule ~criterion:Mp_cpa.Allocation.Classic ~p dag);
      ("CPA (improved criterion)", fun dag -> Mp_cpa.Cpa.schedule ~criterion:Mp_cpa.Allocation.Improved ~p dag);
      ("MCPA", fun dag -> Mp_cpa.Mcpa.schedule ~p dag);
      ("iCASLB", fun dag -> Mp_cpa.Icaslb.schedule ~p dag);
    ]
  in
  List.map
    (fun (allocator, run) ->
      let mks, works =
        List.fold_left
          (fun (mks, works) dag ->
            let sched = run dag in
            (hours (Schedule.turnaround sched) :: mks, Schedule.cpu_hours sched :: works))
          ([], []) dags
      in
      { allocator; avg_makespan_h = Stats.mean mks; avg_work_h = Stats.mean works })
    allocators

let print_allocator_ablation scale =
  Report.print ~title:"Ablation: mixed-parallel allocators on a dedicated 64-processor cluster"
    ~header:[ "Allocator"; "avg makespan [h]"; "avg CPU-hours" ]
    ~rows:
      (List.map
         (fun r -> [ r.allocator; Report.f2 r.avg_makespan_h; Report.f1 r.avg_work_h ])
         (allocator_ablation scale))

type blind_row = { budget : int; avg_turnaround_penalty : float; avg_probes_per_task : float }

let blind_ablation ?pool ?jobs scale =
  let apps = Scenario.sample_app_specs (max 2 (scale.n_app / 2)) in
  (* the busiest synthetic setting: dense near-term reservations make the
     probe budget actually matter *)
  let res = { Scenario.log = Log_model.sdsc_blue; phi = 0.5; method_ = Reservation_gen.Expo } in
  let instances =
    List.concat_map
      (fun app ->
        Instance.synthetic ~seed:scale.seed ~app ~res ~n_dags:scale.n_dags ~n_cals:scale.n_cals)
      apps
  in
  with_pool ?pool ?jobs (fun p ->
      let baselines =
        Pool.map p
          (fun (inst : Instance.t) ->
            float_of_int (Schedule.turnaround (Ressched.schedule inst.env inst.dag)))
          instances
      in
      let cases = List.combine instances baselines in
      List.map
        (fun budget ->
          let penalties, probe_rates =
            List.split
              (Pool.map p
                 (fun ((inst : Instance.t), baseline) ->
                   let probe = Mp_service.Probe.create inst.env.calendar in
                   let sched = Mp_core.Blind.schedule ~budget ~q:inst.env.q ~probe inst.dag in
                   let tat = float_of_int (Schedule.turnaround sched) in
                   ( (tat -. baseline) /. baseline *. 100.,
                     float_of_int (Mp_service.Probe.probes probe)
                     /. float_of_int (Mp_dag.Dag.n inst.dag) ))
                 cases)
          in
          {
            budget;
            avg_turnaround_penalty = Stats.mean penalties;
            avg_probes_per_task = Stats.mean probe_rates;
          })
        [ 1; 2; 4; 8; 16; 32; 128; 512 ])

let print_blind_ablation ?pool ?jobs scale =
  let rows = blind_ablation ?pool ?jobs scale in
  Report.print
    ~title:"Ablation: trial-and-error scheduling (no calendar visibility) vs omniscient BD_CPAR"
    ~header:[ "probe budget"; "turn-around penalty [%]"; "probes per task" ]
    ~rows:
      (List.map
         (fun r ->
           [ string_of_int r.budget; Report.f2 r.avg_turnaround_penalty; Report.f1 r.avg_probes_per_task ])
         rows)

type online_row = {
  arrivals_per_step : float;
  avg_turnaround_penalty : float;  (** % over scheduling with a frozen calendar *)
  avg_competitors_granted : float;
}

(* Competing reservation requests that arrive between two of our placement
   decisions: near-future, modestly sized, short — spoken in the service
   protocol ([Mp_service.Request.Reserve]), like any other client. *)
let draw_arrivals rng ~p ~rate ~steps =
  Array.init steps (fun _ ->
      let k =
        (* Poisson(rate) via inversion, rate is small *)
        let l = exp (-.rate) in
        let rec go k acc = if acc < l then k else go (k + 1) (acc *. Rng.float rng 1.) in
        go 0 (Rng.float rng 1.)
      in
      List.init k (fun _ ->
          let start = Rng.int rng 86_400 in
          let dur = 600 + Rng.int rng 14_400 in
          let procs = 1 + Rng.int rng (max 1 (p / 4)) in
          Mp_service.Request.Reserve { start; dur; procs }))

let online_ablation scale =
  let apps = Scenario.sample_app_specs (max 2 (scale.n_app / 2)) in
  let instances =
    List.concat_map
      (fun app -> Instance.grid5000 ~seed:scale.seed ~app ~n_dags:scale.n_dags ~n_cals:scale.n_cals)
      apps
  in
  let rng = Rng.create (scale.seed + 99) in
  List.map
    (fun rate ->
      let penalties, granted =
        List.split
          (List.map
             (fun (inst : Instance.t) ->
               let frozen =
                 float_of_int (Schedule.turnaround (Ressched.schedule inst.env inst.dag))
               in
               let events =
                 draw_arrivals rng ~p:inst.env.p ~rate ~steps:(Mp_dag.Dag.n inst.dag)
               in
               let sched, competitors = Mp_core.Online.schedule inst.env ~events inst.dag in
               ( (float_of_int (Schedule.turnaround sched) -. frozen) /. frozen *. 100.,
                 float_of_int (List.length competitors) ))
             instances)
      in
      {
        arrivals_per_step = rate;
        avg_turnaround_penalty = Stats.mean penalties;
        avg_competitors_granted = Stats.mean granted;
      })
    [ 0.0; 0.5; 1.0; 2.0; 4.0 ]

let print_online_ablation scale =
  Report.print
    ~title:
      "Ablation: mid-scheduling competitor arrivals (frozen-calendar assumption removed)"
    ~header:[ "arrivals/step"; "turn-around penalty [%]"; "competitors granted" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Report.f1 r.arrivals_per_step;
             Report.f2 r.avg_turnaround_penalty;
             Report.f1 r.avg_competitors_granted;
           ])
         (online_ablation scale))

type icaslb_row = { bound_name : string; avg_turnaround_h : float; avg_cpu_hours : float }

(* Paper section 7, first future-work direction: replace CPA by iCASLB as
   the source of allocation bounds. *)
let icaslb_ablation ?pool ?jobs scale =
  let apps = Scenario.sample_app_specs (max 2 (scale.n_app / 2)) in
  let res = { Scenario.log = Log_model.ctc_sp2; phi = 0.2; method_ = Reservation_gen.Expo } in
  let instances =
    List.concat_map
      (fun app ->
        Instance.synthetic ~seed:scale.seed ~app ~res ~n_dags:scale.n_dags ~n_cals:scale.n_cals)
      apps
  in
  with_pool ?pool ?jobs (fun p ->
      List.map
        (fun bd ->
          let tats, cpus =
            List.split
              (Pool.map p
                 (fun (inst : Instance.t) ->
                   let sched = Ressched.schedule ~bd inst.env inst.dag in
                   (hours (Schedule.turnaround sched), Schedule.cpu_hours sched))
                 instances)
          in
          {
            bound_name = Bound.name bd;
            avg_turnaround_h = Stats.mean tats;
            avg_cpu_hours = Stats.mean cpus;
          })
        [ Bound.BD_ONE; BD_CPA; BD_ICASLB; BD_CPAR; BD_ICASLBR ])

let print_icaslb_ablation ?pool ?jobs scale =
  Report.print
    ~title:"Ablation: allocation-bound sources (rigid / CPA / iCASLB; RESSCHED)"
    ~header:[ "bound source"; "avg turn-around [h]"; "avg CPU-hours" ]
    ~rows:
      (List.map
         (fun (r : icaslb_row) ->
           [ r.bound_name; Report.f2 r.avg_turnaround_h; Report.f1 r.avg_cpu_hours ])
         (icaslb_ablation ?pool ?jobs scale))

type hetero_row = {
  hbd : string;
  avg_turnaround_h : float;
  avg_cpu_hours : float;
  fast_site_share : float;
}

let random_grid rng =
  let competing n ~procs =
    let rec go acc cal k =
      if k = 0 then acc
      else begin
        let start = Rng.int rng day in
        let dur = 1_800 + Rng.int rng 14_400 in
        let r =
          Mp_platform.Reservation.make ~start ~finish:(start + dur)
            ~procs:(1 + Rng.int rng (procs / 2))
        in
        match Calendar.reserve_opt cal r with
        | Some cal -> go (r :: acc) cal (k - 1)
        | None -> go acc cal (k - 1)
      end
    in
    go [] (Calendar.create ~procs) n
  in
  Mp_platform.Grid.make
    [
      ({ Mp_platform.Grid.name = "fast"; procs = 32; speed = 2.0 }, competing 6 ~procs:32);
      ({ Mp_platform.Grid.name = "mid"; procs = 64; speed = 1.0 }, competing 10 ~procs:64);
      ({ Mp_platform.Grid.name = "slow"; procs = 128; speed = 0.5 }, competing 12 ~procs:128);
    ]

let hetero_ablation scale =
  let rng = Rng.create (scale.seed + 55) in
  let n = max 6 (scale.n_dags * scale.n_cals) in
  let cases =
    List.init n (fun _ -> (random_grid rng, Mp_dag.Dag_gen.generate rng Dag_gen.default))
  in
  List.map
    (fun bd ->
      let tats, cpus, shares =
        List.fold_left
          (fun (tats, cpus, shares) (grid, dag) ->
            let sched = Mp_core.Hressched.schedule ~bd grid dag in
            let fast =
              Array.fold_left
                (fun acc (s : Mp_core.Hressched.slot) -> if s.site = 0 then acc + 1 else acc)
                0 sched.slots
            in
            ( hours (Mp_core.Hressched.turnaround sched) :: tats,
              Mp_core.Hressched.cpu_hours sched :: cpus,
              (float_of_int fast /. float_of_int (Mp_dag.Dag.n dag)) :: shares ))
          ([], [], []) cases
      in
      {
        hbd = Mp_core.Hressched.bound_name bd;
        avg_turnaround_h = Stats.mean tats;
        avg_cpu_hours = Stats.mean cpus;
        fast_site_share = Stats.mean shares;
      })
    [ Mp_core.Hressched.HBD_ALL; HBD_CPAR ]

let print_hetero_ablation scale =
  Report.print
    ~title:"Ablation: heterogeneous 3-site grid (fast/mid/slow), HCPA-style reference allocation"
    ~header:[ "bound"; "avg turn-around [h]"; "avg CPU-hours"; "fast-site share [%]" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.hbd;
             Report.f2 r.avg_turnaround_h;
             Report.f1 r.avg_cpu_hours;
             Report.f1 (r.fast_site_share *. 100.);
           ])
         (hetero_ablation scale))

type pareto_row = { slack : float; rows : (string * float) list }

(* CPU-hours as a function of deadline looseness: the resource-conservative
   value proposition quantified across the whole slack axis rather than at
   the paper's single "50% looser" point. *)
let pareto_ablation ?pool ?jobs scale =
  let apps = Scenario.sample_app_specs (max 2 (scale.n_app / 2)) in
  let instances =
    List.concat_map
      (fun app -> Instance.grid5000 ~seed:scale.seed ~app ~n_dags:scale.n_dags ~n_cals:(max 1 (scale.n_cals / 2)))
      apps
  in
  let algos = Algo.deadline_hybrid in
  with_pool ?pool ?jobs (fun p ->
      (* per instance: the latest tightest deadline across algorithms anchors
         the slack axis *)
      let prepared =
        Pool.map p
          (fun (inst : Instance.t) ->
            let per_algo =
              List.map (fun (a : Algo.deadline) -> (a, a.prepare inst.env inst.dag)) algos
            in
            let tight =
              List.fold_left
                (fun acc (_, algo) ->
                  match Deadline.tightest algo inst.env inst.dag with
                  | Some (k, _) -> max acc k
                  | None -> acc)
                1 per_algo
            in
            (per_algo, tight))
          instances
      in
      List.map
        (fun slack ->
          let rows =
            List.map
              (fun (a : Algo.deadline) ->
                let cpus =
                  List.filter_map Fun.id
                    (Pool.map p
                       (fun (per_algo, tight) ->
                         let deadline = int_of_float (ceil (slack *. float_of_int tight)) in
                         let algo = List.assq a per_algo in
                         Option.map Schedule.cpu_hours (algo ~deadline))
                       prepared)
                in
                (a.name, if cpus = [] then infinity else Stats.mean cpus))
              algos
          in
          { slack; rows })
        [ 1.0; 1.25; 1.5; 2.0; 3.0; 5.0 ])

let print_pareto_ablation ?pool ?jobs scale =
  let results = pareto_ablation ?pool ?jobs scale in
  let header =
    "deadline / tightest" :: (match results with [] -> [] | r :: _ -> List.map fst r.rows)
  in
  Report.print
    ~title:"Ablation: CPU-hours vs deadline looseness (Grid'5000 schedules)"
    ~header
    ~rows:
      (List.map
         (fun r -> Report.f2 r.slack :: List.map (fun (_, c) -> Report.f1 c) r.rows)
         results)

type impact_row = {
  injected : string;  (* "none" or the bound method used for the app *)
  avg_wait_min : float;  (* batch jobs' mean queue wait, minutes *)
  app_cpu_hours : float;
}

(* The paper's motivation (and Margo et al.): advance reservations make
   batch users wait.  Quantified here: a mixed-parallel application's
   reservations are injected into a batch stream and the batch jobs' mean
   wait is compared with and without them, for frugal (BD_CPAR) and
   greedy (BD_ALL) application schedules. *)
let reservation_impact scale =
  let rng = Rng.create (scale.seed + 21) in
  let preset = Log_model.sdsc_ds in
  let days = 20 in
  let raw =
    List.map
      (fun (j : Job.t) -> { j with Job.start = None })
      (Log_model.generate rng ~days preset)
  in
  let mean_wait jobs =
    Stats.mean
      (List.filter_map (fun j -> Option.map (fun w -> float_of_int w /. 60.) (Job.wait j)) jobs)
  in
  let baseline = Mp_workload.Batch_sim.schedule ~procs:preset.cpus raw in
  let dag = Dag_gen.generate rng { Dag_gen.default with n = 50 } in
  let at = days * day / 2 in
  let rows_for bd =
    (* the application books its reservations from mid-log, on top of an
       otherwise empty machine view (the batch queue is invisible to it) *)
    let env = Mp_core.Env.no_reservations ~p:preset.cpus in
    let sched = Ressched.schedule ~bd env dag in
    let reserved =
      List.map (fun r -> Mp_platform.Reservation.shift r at) (Schedule.reservations sched)
    in
    let perturbed = Mp_workload.Batch_sim.schedule ~reserved ~procs:preset.cpus raw in
    {
      injected = Bound.name bd;
      avg_wait_min = mean_wait perturbed;
      app_cpu_hours = Schedule.cpu_hours sched;
    }
  in
  { injected = "none"; avg_wait_min = mean_wait baseline; app_cpu_hours = 0. }
  :: List.map rows_for [ Bound.BD_CPAR; Bound.BD_ALL ]

let print_reservation_impact scale =
  Report.print
    ~title:"Ablation: impact of the application's reservations on batch users (SDSC_DS stream)"
    ~header:[ "app schedule"; "batch avg wait [min]"; "app CPU-hours" ]
    ~rows:
      (List.map
         (fun r -> [ r.injected; Report.f1 r.avg_wait_min; Report.f1 r.app_cpu_hours ])
         (reservation_impact scale))

type estimate_row = { factor : float; rows : (string * float * float) list }

(* Pessimistic estimates: the scheduler books reservations for
   factor x the true execution time.  Since a reservation is paid for its
   whole length and successors wait for reserved (not actual) finishes,
   this is equivalent to scheduling a DAG whose sequential times are
   scaled by the factor. *)
let inflate dag factor =
  let tasks =
    Array.map
      (fun (tk : Mp_dag.Task.t) -> { tk with Mp_dag.Task.seq = tk.Mp_dag.Task.seq *. factor })
      (Mp_dag.Dag.tasks dag)
  in
  Mp_dag.Dag.make tasks (Mp_dag.Dag.edges dag)

let estimate_ablation ?pool ?jobs scale =
  let apps = Scenario.sample_app_specs (max 2 (scale.n_app / 2)) in
  let instances =
    List.concat_map
      (fun app -> Instance.grid5000 ~seed:scale.seed ~app ~n_dags:scale.n_dags ~n_cals:scale.n_cals)
      apps
  in
  let algos =
    [ ("BD_ALL", Bound.BD_ALL); ("BD_CPA", Bound.BD_CPA); ("BD_CPAR", Bound.BD_CPAR) ]
  in
  with_pool ?pool ?jobs (fun p ->
      List.map
        (fun factor ->
          let rows =
            List.map
              (fun (name, bd) ->
                let tats, cpus =
                  List.split
                    (Pool.map p
                       (fun (inst : Instance.t) ->
                         let dag = inflate inst.dag factor in
                         let sched = Ressched.schedule ~bd inst.env dag in
                         (hours (Schedule.turnaround sched), Schedule.cpu_hours sched))
                       instances)
                in
                (name, Stats.mean tats, Stats.mean cpus))
              algos
          in
          { factor; rows })
        [ 1.0; 1.2; 1.5; 2.0 ])

let print_estimate_ablation ?pool ?jobs scale =
  let results = estimate_ablation ?pool ?jobs scale in
  let header =
    "factor"
    :: List.concat_map (fun (name, _, _) -> [ name ^ " TAT[h]"; name ^ " CPUh" ])
         (match results with [] -> [] | r :: _ -> r.rows)
  in
  Report.print ~title:"Ablation: pessimistic execution-time estimates (reservations billed in full)"
    ~header
    ~rows:
      (List.map
         (fun r ->
           Report.f1 r.factor
           :: List.concat_map (fun (_, tat, cpu) -> [ Report.f2 tat; Report.f1 cpu ]) r.rows)
         results)

(* ------------------------------------------------------------------ *)

let run_all ?jobs scale =
  (* one pool for every table: worker domains are spawned once *)
  Pool.with_pool ?jobs (fun pool ->
      print_table2 scale;
      print_newline ();
      print_table3 scale;
      print_newline ();
      print_bl_comparison ~pool scale;
      print_newline ();
      print_table4 ~pool scale;
      print_newline ();
      print_table5 ~pool scale;
      print_newline ();
      print_table6 ~pool scale;
      print_table7 ~pool scale;
      print_newline ();
      print_table8 ();
      print_newline ();
      print_table9 scale;
      print_newline ();
      print_table10 scale;
      print_newline ();
      print_allocator_ablation scale;
      print_newline ();
      print_blind_ablation ~pool scale;
      print_newline ();
      print_online_ablation scale;
      print_newline ();
      print_hetero_ablation scale;
      print_newline ();
      print_icaslb_ablation ~pool scale;
      print_newline ();
      print_reservation_impact scale;
      print_newline ();
      print_pareto_ablation ~pool scale;
      print_newline ();
      print_estimate_ablation ~pool scale)
