module Calendar = Mp_platform.Calendar
module Schedule = Mp_cpa.Schedule
module Env = Mp_core.Env
module Ressched = Mp_core.Ressched

type arrival = { at : int; dag : Mp_dag.Dag.t }

type app_result = {
  arrival : int;
  schedule : Schedule.t;
  turnaround : int;
  cpu_hours : float;
}

type t = {
  apps : app_result list;
  final_calendar : Calendar.t;
  makespan : int;
  total_cpu_hours : float;
}

let day = 86_400

let run ?bl ?bd ?spec (env : Env.t) arrivals =
  List.iter (fun a -> if a.at < 0 then invalid_arg "Campaign.run: negative arrival") arrivals;
  let arrivals =
    List.stable_sort (fun a b -> compare a.at b.at) arrivals
  in
  let cal = ref env.calendar in
  let apps =
    List.map
      (fun { at; dag } ->
        let q = Calendar.average_available !cal ~from_:at ~until:(at + (7 * day)) in
        let app_env = Env.make ~calendar:!cal ~q in
        let schedule = Ressched.schedule ?bl ?bd ?spec ~now:at app_env dag in
        cal := List.fold_left Calendar.reserve !cal (Schedule.reservations schedule);
        {
          arrival = at;
          schedule;
          turnaround = Schedule.turnaround schedule - at;
          cpu_hours = Schedule.cpu_hours schedule;
        })
      arrivals
  in
  {
    apps;
    final_calendar = !cal;
    makespan = List.fold_left (fun acc a -> max acc (Schedule.turnaround a.schedule)) 0 apps;
    total_cpu_hours = List.fold_left (fun acc a -> acc +. a.cpu_hours) 0. apps;
  }

(* Each campaign threads its own calendar and is inherently sequential,
   but independent campaigns (different tenants, seeds, or what-if
   calendars) fan out cleanly: one campaign per work item, results merged
   in input order.  A single campaign cannot use more than one worker by
   fanning, so the pool is lent *into* its schedules instead
   ({!Mp_core.Speculate} — output-preserving, so the result is identical
   either way). *)
let run_many ?pool ?jobs ?bl ?bd campaigns =
  let go p =
    let n = List.length campaigns in
    if n > 0 && n < Mp_prelude.Pool.jobs p then
      let spec = Mp_core.Speculate.create p in
      List.map (fun (env, arrivals) -> run ?bl ?bd ~spec env arrivals) campaigns
    else Mp_prelude.Pool.map p (fun (env, arrivals) -> run ?bl ?bd env arrivals) campaigns
  in
  match pool with Some p -> go p | None -> Mp_prelude.Pool.with_pool ?jobs go
