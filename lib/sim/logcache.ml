module Rng = Mp_prelude.Rng
module Log_model = Mp_workload.Log_model
module Grid5000 = Mp_workload.Grid5000

(* The tables are shared across domains (instance construction may run
   from pool workers), so every access is serialized.  Generation happens
   under the lock: regenerating a 60-day log twice costs far more than any
   contention, and holding the lock keeps the "at most one generation per
   key" invariant trivially true. *)
let mutex = Mutex.create ()

let log_tbl : (string * int, Mp_workload.Job.t list) Hashtbl.t = Hashtbl.create 16
let g5k_tbl : (int, Grid5000.t) Hashtbl.t = Hashtbl.create 4

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let jobs ~seed (preset : Log_model.preset) =
  locked (fun () ->
      let key = (preset.name, seed) in
      match Hashtbl.find_opt log_tbl key with
      | Some jobs -> jobs
      | None ->
          let jobs = Log_model.generate (Rng.create (seed + Hashtbl.hash preset.name)) preset in
          Hashtbl.add log_tbl key jobs;
          jobs)

let grid5000 ~seed =
  locked (fun () ->
      match Hashtbl.find_opt g5k_tbl seed with
      | Some g -> g
      | None ->
          let g = Grid5000.generate (Rng.create (seed + 0x675)) () in
          Hashtbl.add g5k_tbl seed g;
          g)

let clear () =
  locked (fun () ->
      Hashtbl.reset log_tbl;
      Hashtbl.reset g5k_tbl)
