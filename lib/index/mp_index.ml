(* Balanced availability tree: an AVL tree keyed by breakpoint time where
   every node carries (a) the availability value holding from its
   breakpoint to the next one, (b) subtree (min, max) summaries of those
   values, and (c) a lazy "add" tag pending over the whole subtree
   (including the node's own value).  Reserving subtracts over a key
   range by path-copying the two boundary paths and tagging the fully
   covered subtrees between them; fit queries descend guided by the
   summaries.  Everything is O(log R) per operation.

   Summary convention: for a node [{ v; mn; mx; d; _ }], the value seen
   from the parent is [v + d], and the subtree extrema seen from the
   parent are [mn + d] / [mx + d] — i.e. [mn]/[mx] are stored *before*
   the node's own pending tag.  Query descents carry [acc], the sum of
   the tags of strict ancestors; update descents [push] tags downward
   before destructuring. *)

let c_visits = Mp_obs.Counter.make "index.node_visits"
let c_descents = Mp_obs.Counter.make "index.descents"

let visit () = Mp_obs.Counter.incr c_visits
let descent () = Mp_obs.Counter.incr c_descents

type tree =
  | Leaf
  | Node of {
      l : tree;
      key : int;  (** breakpoint time *)
      v : int;  (** availability on [key, next key), before [d] *)
      r : tree;
      h : int;  (** AVL height *)
      n : int;  (** subtree node count *)
      mn : int;  (** subtree min value, before [d] *)
      mx : int;  (** subtree max value, before [d] *)
      d : int;  (** pending add over the whole subtree, [v] included *)
    }

type t = { cap : int; root : tree }

let height = function Leaf -> 0 | Node { h; _ } -> h
let size = function Leaf -> 0 | Node { n; _ } -> n

(* Effective subtree extrema as seen from the parent ([acc] = tags of
   strict ancestors of the *parent*, plus the parent's own tag). *)
let submin acc = function Leaf -> max_int | Node { mn; d; _ } -> mn + d + acc
let submax acc = function Leaf -> min_int | Node { mx; d; _ } -> mx + d + acc

(* Smart constructor: recompute aggregates, no pending tag. *)
let mk l key v r =
  Node
    {
      l;
      key;
      v;
      r;
      h = 1 + max (height l) (height r);
      n = 1 + size l + size r;
      mn = min v (min (submin 0 l) (submin 0 r));
      mx = max v (max (submax 0 l) (submax 0 r));
      d = 0;
    }

let tag dv = function
  | Leaf -> Leaf
  | Node nd -> Node { nd with d = nd.d + dv }

(* Fold the pending tag into the node itself and its children's tags, so
   the returned node has [d = 0] and may be destructured freely. *)
let push = function
  | Leaf -> Leaf
  | Node nd when nd.d = 0 -> Node nd
  | Node nd ->
      Node
        {
          nd with
          v = nd.v + nd.d;
          mn = nd.mn + nd.d;
          mx = nd.mx + nd.d;
          l = tag nd.d nd.l;
          r = tag nd.d nd.r;
          d = 0;
        }

(* AVL rebalancing (Stdlib.Map-style, tolerance 2).  Children pulled
   apart by a rotation are [push]ed first so their tags are not lost. *)
let bal l key v r =
  let hl = height l and hr = height r in
  if hl > hr + 2 then
    match push l with
    | Leaf -> assert false
    | Node { l = ll; key = lk; v = lv; r = lr; _ } ->
        if height ll >= height lr then mk ll lk lv (mk lr key v r)
        else (
          match push lr with
          | Leaf -> assert false
          | Node { l = lrl; key = lrk; v = lrv; r = lrr; _ } ->
              mk (mk ll lk lv lrl) lrk lrv (mk lrr key v r))
  else if hr > hl + 2 then
    match push r with
    | Leaf -> assert false
    | Node { l = rl; key = rk; v = rv; r = rr; _ } ->
        if height rr >= height rl then mk (mk l key v rl) rk rv rr
        else (
          match push rl with
          | Leaf -> assert false
          | Node { l = rll; key = rlk; v = rlv; r = rlr; _ } ->
              mk (mk l key v rll) rlk rlv (mk rlr rk rv rr))
  else mk l key v r

(* Insert a breakpoint known to be absent. *)
let rec insert t key v =
  match push t with
  | Leaf -> mk Leaf key v Leaf
  | Node nd ->
      visit ();
      if key < nd.key then bal (insert nd.l key v) nd.key nd.v nd.r
      else bal nd.l nd.key nd.v (insert nd.r key v)

(* Greatest breakpoint <= time, with its value.  The sentinel at
   [min_int] guarantees a hit. *)
let last_le root time =
  let rec go t acc best =
    match t with
    | Leaf -> best
    | Node { l; key; v; r; d; _ } ->
        visit ();
        let acc = acc + d in
        if key <= time then go r acc (key, v + acc) else go l acc best
  in
  go root 0 (min_int, 0)

let value_at root time = snd (last_le root time)

(* Ensure a breakpoint exists at [time] (carrying the value already in
   force there), so a later range add starts/stops exactly there. *)
let cut root time =
  if time = min_int then root
  else
    let k, v = last_le root time in
    if k = time then root else insert root time v

(* Window extrema over breakpoints in [lo, hi) — [max_int]/[min_int] when
   no breakpoint falls inside.  One-sided variants use the subtree
   summaries once the range constraint is resolved on that side. *)
let rec min_from t acc ~lo =
  match t with
  | Leaf -> max_int
  | Node { l; key; v; r; d; _ } ->
      visit ();
      let acc = acc + d in
      if key < lo then min_from r acc ~lo
      else min (v + acc) (min (min_from l acc ~lo) (submin acc r))

let rec min_below t acc ~hi =
  match t with
  | Leaf -> max_int
  | Node { l; key; v; r; d; _ } ->
      visit ();
      let acc = acc + d in
      if key >= hi then min_below l acc ~hi
      else min (v + acc) (min (submin acc l) (min_below r acc ~hi))

let rec min_keys t acc ~lo ~hi =
  match t with
  | Leaf -> max_int
  | Node { l; key; v; r; d; _ } ->
      visit ();
      let acc = acc + d in
      if key < lo then min_keys r acc ~lo ~hi
      else if key >= hi then min_keys l acc ~lo ~hi
      else min (v + acc) (min (min_from l acc ~lo) (min_below r acc ~hi))

let rec max_from t acc ~lo =
  match t with
  | Leaf -> min_int
  | Node { l; key; v; r; d; _ } ->
      visit ();
      let acc = acc + d in
      if key < lo then max_from r acc ~lo
      else max (v + acc) (max (max_from l acc ~lo) (submax acc r))

let rec max_below t acc ~hi =
  match t with
  | Leaf -> min_int
  | Node { l; key; v; r; d; _ } ->
      visit ();
      let acc = acc + d in
      if key >= hi then max_below l acc ~hi
      else max (v + acc) (max (submax acc l) (max_below r acc ~hi))

let rec max_keys t acc ~lo ~hi =
  match t with
  | Leaf -> min_int
  | Node { l; key; v; r; d; _ } ->
      visit ();
      let acc = acc + d in
      if key < lo then max_keys r acc ~lo ~hi
      else if key >= hi then max_keys l acc ~lo ~hi
      else max (v + acc) (max (max_from l acc ~lo) (max_below r acc ~hi))

(* Smallest breakpoint > after with value >= procs; the [mx] summary
   prunes subtrees that are blocked throughout. *)
let rec first_clear_after t acc ~after ~procs =
  match t with
  | Leaf -> None
  | Node { l; key; v; r; mx; d; _ } ->
      visit ();
      if mx + d + acc < procs then None
      else
        let acc = acc + d in
        if key <= after then first_clear_after r acc ~after ~procs
        else (
          match first_clear_after l acc ~after ~procs with
          | Some _ as s -> s
          | None ->
              if v + acc >= procs then Some key
              else first_clear_after r acc ~after ~procs)

(* Smallest breakpoint in [lo, hi) with value < procs; [mn] prunes
   subtrees that are clear throughout. *)
let rec first_block_in t acc ~lo ~hi ~procs =
  match t with
  | Leaf -> None
  | Node { l; key; v; r; mn; d; _ } ->
      visit ();
      if mn + d + acc >= procs then None
      else
        let acc = acc + d in
        if key < lo then first_block_in r acc ~lo ~hi ~procs
        else if key >= hi then first_block_in l acc ~lo ~hi ~procs
        else (
          match first_block_in l acc ~lo ~hi ~procs with
          | Some _ as s -> s
          | None ->
              if v + acc < procs then Some key
              else first_block_in r acc ~lo ~hi ~procs)

(* Greatest breakpoint < hi with value < procs. *)
let rec last_block_below t acc ~hi ~procs =
  match t with
  | Leaf -> None
  | Node { l; key; v; r; mn; d; _ } ->
      visit ();
      if mn + d + acc >= procs then None
      else
        let acc = acc + d in
        if key >= hi then last_block_below l acc ~hi ~procs
        else (
          match last_block_below r acc ~hi ~procs with
          | Some _ as s -> s
          | None ->
              if v + acc < procs then Some key
              else last_block_below l acc ~hi ~procs)

(* Greatest breakpoint < hi with value >= procs. *)
let rec last_clear_below t acc ~hi ~procs =
  match t with
  | Leaf -> None
  | Node { l; key; v; r; mx; d; _ } ->
      visit ();
      if mx + d + acc < procs then None
      else
        let acc = acc + d in
        if key >= hi then last_clear_below l acc ~hi ~procs
        else (
          match last_clear_below r acc ~hi ~procs with
          | Some _ as s -> s
          | None ->
              if v + acc >= procs then Some key
              else last_clear_below l acc ~hi ~procs)

(* Smallest breakpoint > after (plain successor, no value constraint). *)
let succ_key root ~after =
  let rec go t best =
    match t with
    | Leaf -> best
    | Node { l; key; r; _ } ->
        visit ();
        if key <= after then go r best else go l (Some key)
  in
  go root None

(* Add [dv] to every breakpoint value in a key range.  The tree structure
   is unchanged (no insertion, no rebalancing): the two boundary paths
   are copied with updated aggregates and the covered subtrees hanging
   off them are tagged. *)
let rec add_from t ~lo dv =
  match push t with
  | Leaf -> Leaf
  | Node nd ->
      visit ();
      if nd.key < lo then mk nd.l nd.key nd.v (add_from nd.r ~lo dv)
      else mk (add_from nd.l ~lo dv) nd.key (nd.v + dv) (tag dv nd.r)

let rec add_below t ~hi dv =
  match push t with
  | Leaf -> Leaf
  | Node nd ->
      visit ();
      if nd.key >= hi then mk (add_below nd.l ~hi dv) nd.key nd.v nd.r
      else mk (tag dv nd.l) nd.key (nd.v + dv) (add_below nd.r ~hi dv)

let rec add_range t ~lo ~hi dv =
  match push t with
  | Leaf -> Leaf
  | Node nd ->
      visit ();
      if nd.key < lo then mk nd.l nd.key nd.v (add_range nd.r ~lo ~hi dv)
      else if nd.key >= hi then mk (add_range nd.l ~lo ~hi dv) nd.key nd.v nd.r
      else mk (add_from nd.l ~lo dv) nd.key (nd.v + dv) (add_below nd.r ~hi dv)

(* ------------------------------------------------------------------ *)
(* Public persistent API                                              *)
(* ------------------------------------------------------------------ *)

let create ~procs =
  if procs <= 0 then invalid_arg "Mp_index.create: procs <= 0";
  { cap = procs; root = mk Leaf min_int procs Leaf }

let capacity t = t.cap
let breakpoints t = size t.root

let available_at t time =
  descent ();
  value_at t.root time

let min_in t ~from_ ~until =
  descent ();
  min (value_at t.root from_) (min_keys t.root 0 ~lo:(from_ + 1) ~hi:until)

let max_in t ~from_ ~until =
  descent ();
  max (value_at t.root from_) (max_keys t.root 0 ~lo:(from_ + 1) ~hi:until)

let check_window ~op ~start ~finish ~procs =
  if start >= finish then invalid_arg (op ^ ": start >= finish");
  if procs < 1 then invalid_arg (op ^ ": procs < 1")

let root_can_reserve root ~start ~finish ~procs =
  procs <= min (value_at root start) (min_keys root 0 ~lo:(start + 1) ~hi:finish)

let can_reserve t ~start ~finish ~procs =
  check_window ~op:"Mp_index.can_reserve" ~start ~finish ~procs;
  descent ();
  root_can_reserve t.root ~start ~finish ~procs

let root_reserve root ~start ~finish ~procs =
  if root_can_reserve root ~start ~finish ~procs then
    Some (add_range (cut (cut root start) finish) ~lo:start ~hi:finish (-procs))
  else None

let reserve t ~start ~finish ~procs =
  check_window ~op:"Mp_index.reserve" ~start ~finish ~procs;
  descent ();
  match root_reserve t.root ~start ~finish ~procs with
  | Some root -> Some { t with root }
  | None -> None

let root_release root ~cap ~start ~finish ~procs =
  let mx =
    max (value_at root start) (max_keys root 0 ~lo:(start + 1) ~hi:finish)
  in
  if mx + procs > cap then None
  else Some (add_range (cut (cut root start) finish) ~lo:start ~hi:finish procs)

let release t ~start ~finish ~procs =
  check_window ~op:"Mp_index.release" ~start ~finish ~procs;
  descent ();
  match root_release t.root ~cap:t.cap ~start ~finish ~procs with
  | Some root -> Some { t with root }
  | None -> None

(* Earliest fit.  Candidate starts are [after] and the clear breakpoints
   after it (the minimal feasible start is always one of these: sliding
   any other feasible start one second earlier stays feasible).  A
   candidate fails on the first blocking breakpoint inside its window;
   every candidate up to that blocker is blocked too, so the walk
   restarts at the first clear breakpoint past it. *)
let root_earliest_fit root ~limit ~after ~procs ~dur =
  let rec attempt s =
    if s > limit then None
    else if value_at root s < procs then jump s
    else
      match first_block_in root 0 ~lo:(s + 1) ~hi:(s + dur) ~procs with
      | None -> Some s
      | Some b -> jump b
  and jump from_ =
    match first_clear_after root 0 ~after:from_ ~procs with
    | None -> None
    | Some k -> attempt k
  in
  attempt after

let earliest_fit ?(limit = max_int) t ~after ~procs ~dur =
  if procs < 1 then invalid_arg "Mp_index.earliest_fit: procs < 1";
  if dur < 1 then invalid_arg "Mp_index.earliest_fit: dur < 1";
  descent ();
  if procs > t.cap then None
  else root_earliest_fit t.root ~limit ~after ~procs ~dur

(* Latest fit.  For a window ending at [fl], the only blocking
   breakpoints that matter are those < fl; if the greatest one is at or
   before the window start and the start's own segment is clear, the
   window fits.  Otherwise the whole blocked run containing that blocker
   must be cleared: the next window to try ends at the run's first
   breakpoint (the successor of the last clear breakpoint below it). *)
let root_latest_fit root ~earliest ~finish_by ~procs ~dur =
  let rec go fl =
    let s = fl - dur in
    if s < earliest then None
    else
      match last_block_below root 0 ~hi:fl ~procs with
      | None -> Some s
      | Some b ->
          if b <= s && value_at root s >= procs then Some s
          else (
            match last_clear_below root 0 ~hi:b ~procs with
            | None -> None
            | Some c -> (
                match succ_key root ~after:c with
                | None -> None
                | Some k -> go k))
  in
  go finish_by

let latest_fit t ~earliest ~finish_by ~procs ~dur =
  if procs < 1 then invalid_arg "Mp_index.latest_fit: procs < 1";
  if dur < 1 then invalid_arg "Mp_index.latest_fit: dur < 1";
  descent ();
  if procs > t.cap then None
  else root_latest_fit t.root ~earliest ~finish_by ~procs ~dur

let fold_segments t ~from_ ~until ~init ~f =
  if from_ >= until then init
  else begin
    let v0 = value_at t.root from_ in
    (* In-order over breakpoints in (from_, until); each one closes the
       running segment and opens the next. *)
    let rec walk tree acc ((st : 'a * int * int) as state) =
      match tree with
      | Leaf -> state
      | Node { l; key; v; r; d; _ } ->
          let acc = acc + d in
          if key <= from_ then walk r acc state
          else if key >= until then walk l acc state
          else begin
            let a, seg_start, seg_val = walk l acc st in
            let a = f a ~start:seg_start ~finish:key ~avail:seg_val in
            walk r acc (a, key, v + acc)
          end
    in
    let a, seg_start, seg_val = walk t.root 0 (init, from_, v0) in
    f a ~start:seg_start ~finish:until ~avail:seg_val
  end

let iter_breakpoints t g =
  let rec go tree acc =
    match tree with
    | Leaf -> ()
    | Node { l; key; v; r; d; _ } ->
        let acc = acc + d in
        go l acc;
        g key (v + acc);
        go r acc
  in
  go t.root 0

let self_check t =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* Recompute height/size/extrema bottom-up with tags resolved; collect
     keys in order. *)
  let rec chk tree acc =
    match tree with
    | Leaf -> (0, 0, max_int, min_int, [])
    | Node { l; key; v; r; h; n; mn; mx; d } ->
        let acc = acc + d in
        let lh, ln, lmn, lmx, lks = chk l acc in
        let rh, rn, rmn, rmx, rks = chk r acc in
        if h <> 1 + max lh rh then
          fail "Mp_index.self_check: height %d at key %d (want %d)" h key
            (1 + max lh rh);
        if abs (lh - rh) > 2 then
          fail "Mp_index.self_check: imbalance %d at key %d" (lh - rh) key;
        if n <> 1 + ln + rn then
          fail "Mp_index.self_check: size %d at key %d (want %d)" n key
            (1 + ln + rn);
        let emn = min (v + acc) (min lmn rmn)
        and emx = max (v + acc) (max lmx rmx) in
        if mn + acc <> emn then
          fail "Mp_index.self_check: min summary %d at key %d (want %d)"
            (mn + acc) key emn;
        if mx + acc <> emx then
          fail "Mp_index.self_check: max summary %d at key %d (want %d)"
            (mx + acc) key emx;
        (h, n, emn, emx, lks @ (key :: rks))
  in
  let _, _, emn, emx, keys = chk t.root 0 in
  (match keys with
  | k0 :: _ when k0 = min_int -> ()
  | _ -> fail "Mp_index.self_check: missing min_int sentinel");
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        if a >= b then fail "Mp_index.self_check: key order %d >= %d" a b;
        sorted rest
    | _ -> ()
  in
  sorted keys;
  if emn < 0 then fail "Mp_index.self_check: negative availability %d" emn;
  if emx > t.cap then
    fail "Mp_index.self_check: availability %d above capacity %d" emx t.cap

(* ------------------------------------------------------------------ *)
(* Transactions                                                       *)
(* ------------------------------------------------------------------ *)

module Txn = struct
  type index = t
  type t = { cap : int; mutable root : tree; mutable gen : int }

  let start (i : index) = { cap = i.cap; root = i.root; gen = 0 }
  let commit (t : t) : index = { cap = t.cap; root = t.root }
  let capacity t = t.cap
  let generation t = t.gen

  let available_at t time =
    descent ();
    value_at t.root time

  let min_in t ~from_ ~until =
    descent ();
    min (value_at t.root from_) (min_keys t.root 0 ~lo:(from_ + 1) ~hi:until)

  let can_reserve t ~start ~finish ~procs =
    check_window ~op:"Mp_index.Txn.can_reserve" ~start ~finish ~procs;
    descent ();
    root_can_reserve t.root ~start ~finish ~procs

  let reserve t ~start ~finish ~procs =
    check_window ~op:"Mp_index.Txn.reserve" ~start ~finish ~procs;
    descent ();
    match root_reserve t.root ~start ~finish ~procs with
    | Some root ->
        t.root <- root;
        t.gen <- t.gen + 1;
        true
    | None -> false

  let release t ~start ~finish ~procs =
    check_window ~op:"Mp_index.Txn.release" ~start ~finish ~procs;
    descent ();
    match root_release t.root ~cap:t.cap ~start ~finish ~procs with
    | Some root ->
        t.root <- root;
        t.gen <- t.gen + 1;
        true
    | None -> false

  let earliest_fit ?(limit = max_int) t ~after ~procs ~dur =
    if procs < 1 then invalid_arg "Mp_index.Txn.earliest_fit: procs < 1";
    if dur < 1 then invalid_arg "Mp_index.Txn.earliest_fit: dur < 1";
    descent ();
    if procs > t.cap then None
    else root_earliest_fit t.root ~limit ~after ~procs ~dur

  let latest_fit t ~earliest ~finish_by ~procs ~dur =
    if procs < 1 then invalid_arg "Mp_index.Txn.latest_fit: procs < 1";
    if dur < 1 then invalid_arg "Mp_index.Txn.latest_fit: dur < 1";
    descent ();
    if procs > t.cap then None
    else root_latest_fit t.root ~earliest ~finish_by ~procs ~dur
end
