(** Availability index: a balanced search tree over the step function
    "time -> processors available", with hierarchical (min, max)
    availability summaries — the O(log R) generalization of the flat
    per-block extrema the calendar carried before.

    The step function is stored as its breakpoints: each tree node holds
    one breakpoint [time -> value], where [value] is the number of
    processors available from [time] until the next breakpoint; a
    sentinel breakpoint at [min_int] (always present) carries the initial
    capacity, and the last breakpoint extends to +∞.  Every node
    additionally summarizes its subtree with the minimum and maximum
    value and carries a lazy "add" tag, so that

    - point lookups, window minima/maxima, {!reserve} and {!release}
      (range adds over the covered breakpoints) are O(log R), and
    - {!earliest_fit} / {!latest_fit} descend guided by the summaries
      instead of walking breakpoints, visiting O(log R) nodes per
      candidate window rather than O(R) overall.

    [R] is the number of breakpoints ({!breakpoints}), at most
    [2 x reservations + 1].

    Two forms share the same tree representation:

    - the {b persistent} form ({!t}): every update path-copies O(log R)
      nodes and returns a new snapshot, old snapshots stay valid;
    - the {b transactional} form ({!Txn}): a single-owner mutable root
      for linear reserve/query loops, with O(1) {!Txn.start} and
      {!Txn.commit} (the underlying tree is shared, never mutated in
      place).

    All operations are output-preserving with respect to a brute-force
    walk of the step function: fit queries have a unique semantically
    determined answer, pinned against a reference model by
    [test/test_index.ml] and [test/test_platform.ml].

    {2 Observability}

    Two {!Mp_obs} counters trace the work done (recorded only when
    tracing is enabled; single branch, no allocation otherwise):

    - ["index.descents"]: one per public query or update;
    - ["index.node_visits"]: one per tree node touched.  The
      visits-per-descent ratio is the measured asymptotic — the
      "Calendar index" bench section pins it to ~log R. *)

type t
(** A persistent availability index.  Immutable; updates return new
    snapshots sharing structure with the old. *)

val create : procs:int -> t
(** [create ~procs] is the index of an empty calendar on [procs]
    processors: available capacity is [procs] everywhere.  Raises
    [Invalid_argument] if [procs <= 0]. *)

val capacity : t -> int
(** Total processor count (the value no point may exceed). *)

val breakpoints : t -> int
(** Number of stored breakpoints, including the [min_int] sentinel. *)

val available_at : t -> int -> int
(** [available_at t time] is the capacity free at instant [time].
    O(log R). *)

val min_in : t -> from_:int -> until:int -> int
(** Minimum availability over the window [\[from_, until)].  The window
    must be non-empty ([from_ < until]); this is not checked here (the
    calendar layer owns user-facing validation). O(log R). *)

val max_in : t -> from_:int -> until:int -> int
(** Maximum availability over [\[from_, until)].  O(log R). *)

val can_reserve : t -> start:int -> finish:int -> procs:int -> bool
(** Whether [procs] processors are free over all of [\[start, finish)]. *)

val reserve : t -> start:int -> finish:int -> procs:int -> t option
(** [reserve t ~start ~finish ~procs] subtracts [procs] from the window
    [\[start, finish)], or returns [None] if some instant has fewer than
    [procs] free.  Raises [Invalid_argument] if [start >= finish] or
    [procs < 1].  O(log R). *)

val release : t -> start:int -> finish:int -> procs:int -> t option
(** Inverse of {!reserve}: adds [procs] back over [\[start, finish)], or
    [None] if that would lift any instant above {!capacity} (the window
    was not fully held).  Raises [Invalid_argument] on a degenerate
    window, as {!reserve} does.  O(log R). *)

val earliest_fit : ?limit:int -> t -> after:int -> procs:int -> dur:int -> int option
(** [earliest_fit t ~after ~procs ~dur] is the earliest start [s >=
    after] such that [procs] processors are free over [\[s, s + dur)],
    or [None] if no such start exists (with [~limit], none with
    [s <= limit]).  Candidate starts are [after] and the breakpoints
    after it; the summaries prune clear spans, so the search visits
    O(log R) nodes per blocked candidate instead of scanning.  Raises
    [Invalid_argument] if [procs < 1] or [dur < 1]. *)

val latest_fit : t -> earliest:int -> finish_by:int -> procs:int -> dur:int -> int option
(** [latest_fit t ~earliest ~finish_by ~procs ~dur] is the latest start
    [s >= earliest] with [s + dur <= finish_by] and [procs] processors
    free over [\[s, s + dur)], or [None].  Raises [Invalid_argument] if
    [procs < 1] or [dur < 1]. *)

val fold_segments :
  t ->
  from_:int ->
  until:int ->
  init:'a ->
  f:('a -> start:int -> finish:int -> avail:int -> 'a) ->
  'a
(** Fold over the maximal constant-availability segments intersecting
    [\[from_, until)], clipped to the window, in increasing time order.
    [init] when the window is empty. *)

val iter_breakpoints : t -> (int -> int -> unit) -> unit
(** Iterate over all stored breakpoints [(time, value)] in increasing
    time order, starting with the [min_int] sentinel. *)

val self_check : t -> unit
(** Validate internal invariants (AVL balance, subtree sizes, (min, max)
    summaries vs recomputation, sentinel presence, key order).  Raises
    [Failure] with a description on violation.  For tests; O(R). *)

(** Single-owner mutable transaction over an index: the incremental form
    used by linear placement loops and by the per-site shards of
    {!Mp_service.Engine}.  A transaction owns a mutable root pointer
    into the shared persistent structure — updates replace the root
    (path-copying, O(log R)), so {!start} and {!commit} are O(1) and the
    snapshot a transaction was started from is never affected. *)
module Txn : sig
  type index = t
  (** The persistent form. *)

  type t
  (** A transaction.  Not thread-safe: single owner. *)

  val start : index -> t
  (** Begin a transaction on a snapshot.  O(1). *)

  val commit : t -> index
  (** The current state as a persistent snapshot.  O(1); the transaction
      remains usable afterwards and further updates do not affect the
      returned snapshot. *)

  val capacity : t -> int

  val generation : t -> int
  (** Number of successful updates ({!reserve} + {!release}) applied so
      far — a staleness stamp for derived query caches. *)

  val available_at : t -> int -> int

  val min_in : t -> from_:int -> until:int -> int

  val can_reserve : t -> start:int -> finish:int -> procs:int -> bool

  val reserve : t -> start:int -> finish:int -> procs:int -> bool
  (** Apply a reservation; [false] (and no change) if it does not fit.
      Validation as the persistent {!val:reserve}. *)

  val release : t -> start:int -> finish:int -> procs:int -> bool
  (** Undo a reservation; [false] (and no change) if the window was not
      fully held. *)

  val earliest_fit : ?limit:int -> t -> after:int -> procs:int -> dur:int -> int option

  val latest_fit : t -> earliest:int -> finish_by:int -> procs:int -> dur:int -> int option
end
