(* Schedule forensics from the library: journal one RESSCHED run, print
   the per-task decision story, analyze the resulting calendar, and
   write a Gantt SVG — the same machinery behind `mpres explain`.

   Run with:  dune exec examples/explain_schedule.exe
   (writes explain_schedule.svg next to the current directory) *)

module Task = Mp_dag.Task
module Dag = Mp_dag.Dag
module Reservation = Mp_platform.Reservation
module Calendar = Mp_platform.Calendar
module Env = Mp_core.Env
module Ressched = Mp_core.Ressched
module Schedule = Mp_cpa.Schedule
module Journal = Mp_forensics.Journal
module Analytics = Mp_forensics.Analytics
module Render = Mp_forensics.Render

let () =
  (* The quickstart workflow: prepare, three concurrent analyses, merge. *)
  let tasks =
    [|
      Task.make ~id:0 ~seq:1_800. ~alpha:0.05;
      Task.make ~id:1 ~seq:14_400. ~alpha:0.10;
      Task.make ~id:2 ~seq:10_800. ~alpha:0.05;
      Task.make ~id:3 ~seq:7_200. ~alpha:0.20;
      Task.make ~id:4 ~seq:3_600. ~alpha:0.15;
    |]
  in
  let dag = Dag.make tasks [ (0, 1); (0, 2); (0, 3); (1, 4); (2, 4); (3, 4) ] in
  let calendar =
    Calendar.of_reservations ~procs:32
      [
        Reservation.make ~start:3_600 ~finish:7_200 ~procs:16;
        Reservation.make ~start:36_000 ~finish:43_200 ~procs:32;
      ]
  in
  let env = Env.make ~calendar ~q:20. in

  (* Journal the run.  Journaling is record-only: the schedule is
     bit-identical to an un-journaled [Ressched.schedule env dag]. *)
  Journal.reset ();
  let sched = Journal.with_enabled (fun () -> Ressched.schedule env dag) in
  let entries = Journal.take () in
  Journal.reset ();

  (* 1. The decision story: every candidate each task considered, why it
     was rejected (no fit / beaten / early-cut), and the winning slot. *)
  print_string (Journal.story entries);

  (* 2. Calendar analytics over the occupied window: application slots
     and competing reservations together. *)
  let final_cal =
    List.fold_left Calendar.reserve calendar (Schedule.reservations sched)
  in
  let until = max 1 (Schedule.turnaround sched) in
  let a = Analytics.analyze final_cal ~from_:0 ~until in
  Format.printf "@.%a@." Analytics.pp a;

  (* 3. Gantt SVG: colored application slots over the grey competitors. *)
  let slots =
    Array.to_list
      (Array.mapi
         (fun i (s : Schedule.slot) ->
           { Render.label = string_of_int i; start = s.start; finish = s.finish; procs = s.procs })
         sched.Schedule.slots)
  in
  let svg = Render.gantt_svg ~base:calendar ~slots () in
  Out_channel.with_open_text "explain_schedule.svg" (fun oc ->
      Out_channel.output_string oc svg);
  print_endline "Gantt chart written to explain_schedule.svg"
