(* mpres — command-line interface to the mixed-parallel advance-reservation
   scheduler library.

   Subcommands:
     gen-dag     draw a random application DAG and print it (dot or edges)
     gen-log     draw a synthetic workload log and print it as SWF
     schedule    solve RESSCHED on a random instance and print the schedule
     deadline    solve RESSCHEDDL (fixed deadline or tightest-deadline search)
     explain     solve an instance with the decision journal on and render
                 the forensics report (text, JSONL, SVG, or HTML)
     serve       run the scheduling service over a seeded (or replayed)
                 request stream and report throughput/latency
     experiment  regenerate the paper's tables

   The one-shot schedule/deadline/explain paths and the serve daemon all
   speak the same typed protocol (Mp_service.Request/Response) against
   the same engine (Mp_core.Serve wires the algorithm registry in). *)

open Cmdliner
module Rng = Mp_prelude.Rng
module Dag = Mp_dag.Dag
module Dag_gen = Mp_dag.Dag_gen
module Log_model = Mp_workload.Log_model
module Swf = Mp_workload.Swf
module Reservation_gen = Mp_workload.Reservation_gen
module Schedule = Mp_cpa.Schedule
module Algo = Mp_core.Algo
module Deadline = Mp_core.Deadline
module Env = Mp_core.Env
module Journal = Mp_forensics.Journal
module Analytics = Mp_forensics.Analytics
module Render = Mp_forensics.Render
module Workflows = Mp_dag.Workflows
module Experiments = Mp_sim.Experiments
module Instance = Mp_sim.Instance
module Scenario = Mp_sim.Scenario
module Engine = Mp_service.Engine
module Request = Mp_service.Request
module Response = Mp_service.Response
module Stream = Mp_service.Stream
module Serve = Mp_core.Serve

(* One-shot service over the instance's calendar: the schedule, deadline
   and explain subcommands all submit through this engine, so the CLI and
   the serve daemon exercise the same code path. *)
let one_shot_engine ?spec (inst : Instance.t) =
  Serve.engine ?spec ~sites:[| { Engine.calendar = inst.env.calendar; q = inst.env.q } |] ()

let submit_one ?spec inst ~algo ~deadline =
  Engine.handle (one_shot_engine ?spec inst) ~site:0
    (Request.Submit_dag { dag = inst.Instance.dag; algo; deadline })

(* Lend a pool of [jobs] workers to the one schedule computation a
   one-shot subcommand makes (Mp_core.Speculate).  Speculation is
   output-preserving, so the result is bit-identical for any [jobs];
   [jobs = 1] skips the pool entirely (the sequential reference). *)
let with_spec jobs f =
  if jobs <= 1 then f None
  else
    Mp_prelude.Pool.with_pool ~jobs (fun pool -> f (Some (Mp_core.Speculate.create pool)))

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed (deterministic).")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~env:(Cmd.Env.info "MPRES_TRACE")
        ~doc:
          "Enable the Mp_obs probes and write a Chrome trace_event JSON to $(docv) (load it in \
           Perfetto or chrome://tracing); a text report of counters and probe latencies goes to \
           stderr.  Probes never change scheduling decisions.")

(* Run [f] with the probes on, then write the Chrome trace and print the
   text report to stderr (stdout carries the subcommand's own output). *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
      Mp_obs.enabled := true;
      let finally () =
        Mp_obs.enabled := false;
        let snap = Mp_obs.Snapshot.take () in
        Mp_obs.Trace.write_chrome path snap;
        let text = Mp_obs.Report.text snap in
        if text <> "" then Printf.eprintf "%s" text;
        Printf.eprintf "chrome trace written to %s\n%!" path
      in
      Fun.protect ~finally f

let jobs_t =
  Arg.(
    value
    & opt int (Mp_prelude.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~env:(Cmd.Env.info "MPRES_JOBS")
        ~doc:
          "Worker domains for the fan-out (default: cores - 1; 1 = sequential). Results are \
           bit-identical whatever the value.")

let dag_params_t =
  let n = Arg.(value & opt int 50 & info [ "n" ] ~doc:"Number of tasks.") in
  let alpha = Arg.(value & opt float 0.2 & info [ "alpha" ] ~doc:"Max sequential fraction.") in
  let width = Arg.(value & opt float 0.5 & info [ "width" ] ~doc:"DAG width parameter.") in
  let regularity = Arg.(value & opt float 0.5 & info [ "regularity" ] ~doc:"Level regularity.") in
  let density = Arg.(value & opt float 0.5 & info [ "density" ] ~doc:"Edge density.") in
  let jump = Arg.(value & opt int 1 & info [ "jump" ] ~doc:"Maximum level jump of edges.") in
  let make n alpha width regularity density jump =
    { Dag_gen.n; alpha; width; regularity; density; jump }
  in
  Term.(const make $ n $ alpha $ width $ regularity $ density $ jump)

let log_t =
  let log_conv =
    Arg.conv
      ( (fun s ->
          match Log_model.find s with
          | Some p -> Ok p
          | None -> Error (`Msg ("unknown log preset: " ^ s))),
        fun ppf p -> Format.pp_print_string ppf p.Log_model.name )
  in
  Arg.(
    value
    & opt log_conv Log_model.sdsc_blue
    & info [ "log" ] ~docv:"LOG" ~doc:"Workload preset: CTC_SP2, OSC_Cluster, SDSC_BLUE, SDSC_DS.")

let phi_t = Arg.(value & opt float 0.2 & info [ "phi" ] ~doc:"Fraction of jobs tagged as reservations.")

let method_t =
  let method_conv =
    Arg.conv
      ( (fun s ->
          match String.lowercase_ascii s with
          | "linear" -> Ok Reservation_gen.Linear
          | "expo" -> Ok Reservation_gen.Expo
          | "real" -> Ok Reservation_gen.Real
          | _ -> Error (`Msg ("unknown method: " ^ s))),
        fun ppf m -> Format.pp_print_string ppf (Reservation_gen.method_name m) )
  in
  Arg.(value & opt method_conv Reservation_gen.Expo & info [ "method" ] ~doc:"Reshaping: linear, expo, real.")

let shape_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "shape" ] ~docv:"SHAPE"
        ~doc:
          "Use a classic workflow instead of a random DAG: chain, fork-join, fft, strassen, \
           gaussian, wavefront (sized from -n where applicable).")

let dag_of ~seed ~params shape =
  let rng = Rng.create seed in
  match shape with
  | None -> Mp_dag.Dag_gen.generate rng params
  | Some s -> (
      let n = params.Mp_dag.Dag_gen.n in
      match String.lowercase_ascii s with
      | "chain" -> Workflows.chain rng ~n:(max 2 n) ()
      | "fork-join" | "forkjoin" -> Workflows.fork_join rng ~branches:(max 1 (n / 6)) ~stages:5 ()
      | "fft" -> Workflows.fft rng ~m:(max 1 (min 8 (int_of_float (Float.log2 (float_of_int (max 2 n)))))) ()
      | "strassen" -> Workflows.strassen rng ~levels:(max 1 (min 4 (n / 12))) ()
      | "gaussian" -> Workflows.gaussian rng ~n:(max 2 (int_of_float (sqrt (2. *. float_of_int n)))) ()
      | "wavefront" ->
          let side = max 2 (int_of_float (sqrt (float_of_int n))) in
          Workflows.wavefront rng ~rows:side ~cols:side ()
      | other ->
          Format.eprintf "unknown shape %S@." other;
          exit 1)

(* One-line fatal error: unreadable or malformed input files must exit
   non-zero with a message, never a raw backtrace. *)
let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "mpres: %s\n" msg;
      exit 1)
    fmt

(* Derive the scheduling environment from a real SWF workload log (the
   paper's methodology: tag a fraction phi of jobs as reservations, pick
   a random scheduling instant, reshape the future schedule). *)
let env_of_swf ~seed ~phi ~method_ path =
  let jobs = try Swf.load path with Sys_error msg -> die "%s" msg in
  let rng = Rng.create seed in
  let tagged = Reservation_gen.tag rng ~phi jobs in
  if tagged = [] then die "%s: no jobs usable as reservations (phi too small or empty log?)" path;
  let at = Reservation_gen.random_instant rng tagged in
  let procs = List.fold_left (fun acc (j : Mp_workload.Job.t) -> max acc j.procs) 1 jobs in
  let sched = Reservation_gen.extract rng method_ ~procs ~at tagged in
  Env.make ~calendar:(Reservation_gen.calendar sched) ~q:(Reservation_gen.historical_average sched)

let instance_of ?dag_file ?swf_file ~seed ~params ~log ~phi ~method_ ~shape () =
  let app = { Scenario.label = "cli"; params } in
  let res = { Scenario.log; phi; method_ } in
  match Instance.synthetic ~seed ~app ~res ~n_dags:1 ~n_cals:1 with
  | [ inst ] ->
      let inst =
        match swf_file with
        | None -> inst
        | Some path -> { inst with Instance.env = env_of_swf ~seed ~phi ~method_ path }
      in
      let inst =
        match dag_file with
        | None -> (
            match shape with None -> inst | Some _ -> { inst with dag = dag_of ~seed ~params shape })
        | Some path -> (
            match Mp_dag.Dag_io.load path with
            | Ok dag -> { inst with Instance.dag = dag }
            | Error msg -> die "%s" msg)
      in
      inst
  | _ -> assert false

let dag_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "dag" ] ~docv:"FILE"
        ~doc:
          "Read the application DAG from $(docv) (line format: 'task <id> <seq> <alpha>' and \
           'edge <pred> <succ>', '#' comments) instead of generating one.")

let swf_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "swf" ] ~docv:"FILE"
        ~doc:
          "Derive the reservation calendar from this SWF workload log (tagged with --phi, \
           reshaped with --method) instead of a synthetic preset.")

(* ------------------------------------------------------------------ *)
(* gen-dag *)

let gen_dag seed params shape dot =
  let dag = dag_of ~seed ~params shape in
  if dot then print_string (Dag.to_dot dag) else Format.printf "%a@." Dag.pp dag

let gen_dag_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit GraphViz dot instead of a listing.") in
  Cmd.v
    (Cmd.info "gen-dag" ~doc:"Draw a random or classic application DAG")
    Term.(const gen_dag $ seed_t $ dag_params_t $ shape_t $ dot)

(* ------------------------------------------------------------------ *)
(* gen-log *)

let gen_log seed log days =
  let jobs = Log_model.generate (Rng.create seed) ~days log in
  print_string "; SWF generated by mpres gen-log\n";
  List.iter (fun j -> print_endline (Swf.to_line j)) jobs

let gen_log_cmd =
  let days = Arg.(value & opt int 60 & info [ "days" ] ~doc:"Log span in days.") in
  Cmd.v
    (Cmd.info "gen-log" ~doc:"Draw a synthetic workload log (SWF on stdout)")
    Term.(const gen_log $ seed_t $ log_t $ days)

(* ------------------------------------------------------------------ *)
(* schedule *)

let print_schedule ?(gantt = false) ?svg_file ?(json = false) (inst : Instance.t) sched =
  Format.printf "cluster p=%d, q=%d, competing breakpoints=%d@." inst.env.p inst.env.q
    (Mp_platform.Calendar.breakpoints inst.env.calendar);
  Format.printf "%a@." Schedule.pp sched;
  let competing () =
    let until = max 1 (Schedule.turnaround sched + 3_600) in
    Mp_platform.Calendar.busy_rectangles inst.env.calendar ~from_:0 ~until
  in
  if gantt then
    print_string
      (Mp_cpa.Gantt.ascii ~procs:inst.env.p ~competing:(competing ()) sched);
  if json then print_endline (Schedule.to_json ~competing:(competing ()) sched);
  match svg_file with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Mp_cpa.Gantt.svg ~procs:inst.env.p ~competing:(competing ()) sched));
      Format.printf "gantt chart written to %s@." path

(* The single name→algorithm registry lives in [Algo]; the CLI only
   formats its unified listing. *)
let algo_listing = String.concat ", " Algo.all_names

let unknown_algo name =
  Format.eprintf "unknown algorithm %S.@.Known algorithms: %s@." name algo_listing;
  exit 1

let schedule seed params log phi method_ shape dag_file swf_file algo_name gantt svg_file json
    trace =
  with_trace trace @@ fun () ->
  match Algo.find algo_name with
  | None -> unknown_algo algo_name
  | Some (`Deadline _) ->
      Format.eprintf
        "%S is a deadline (RESSCHEDDL) algorithm; use 'mpres deadline --algo %s'.@." algo_name
        algo_name;
      exit 1
  | Some (`Ressched algo) -> (
      let inst = instance_of ?dag_file ?swf_file ~seed ~params ~log ~phi ~method_ ~shape () in
      match submit_one inst ~algo:algo.name ~deadline:Request.No_deadline with
      | Response.Scheduled { schedule = sched; _ } ->
          (match Schedule.validate inst.dag ~base:inst.env.calendar sched with
          | Ok () -> ()
          | Error msg ->
              Format.eprintf "internal error: invalid schedule: %s@." msg;
              exit 2);
          print_schedule ~gantt ?svg_file ~json inst sched
      | Response.Error msg -> die "%s" msg
      | resp -> die "unexpected service response %S" (Response.kind resp))

let algo_t =
  Arg.(
    value
    & opt string "BD_CPAR"
    & info [ "algo" ]
        ~doc:(Printf.sprintf "RESSCHED algorithm name. Known algorithms: %s." algo_listing))

let gantt_t = Arg.(value & flag & info [ "gantt" ] ~doc:"Render an ASCII Gantt chart.")

let svg_t =
  Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc:"Write an SVG Gantt chart.")

let json_t = Arg.(value & flag & info [ "json" ] ~doc:"Also print the schedule as JSON.")

let schedule_cmd =
  Cmd.v
    (Cmd.info "schedule" ~doc:"Solve RESSCHED on a random instance")
    Term.(
      const schedule $ seed_t $ dag_params_t $ log_t $ phi_t $ method_t $ shape_t $ dag_file_t
      $ swf_file_t $ algo_t $ gantt_t $ svg_t $ json_t $ trace_t)

(* ------------------------------------------------------------------ *)
(* deadline *)

let deadline seed params log phi method_ shape dag_file swf_file algo_name deadline_s gantt
    svg_file jobs trace =
  if jobs < 1 then die "--jobs must be at least 1";
  with_trace trace @@ fun () ->
  match Algo.find algo_name with
  | None -> unknown_algo algo_name
  | Some (`Ressched _) ->
      Format.eprintf
        "%S is a RESSCHED algorithm (no deadline support); use 'mpres schedule --algo %s'.@."
        algo_name algo_name;
      exit 1
  | Some (`Deadline algo) -> (
      let inst = instance_of ?dag_file ?swf_file ~seed ~params ~log ~phi ~method_ ~shape () in
      let dspec = match deadline_s with Some k -> Request.By k | None -> Request.Tightest in
      with_spec jobs @@ fun spec ->
      match submit_one ?spec inst ~algo:algo.name ~deadline:dspec with
      | Response.Scheduled { schedule = sched; deadline } ->
          (match (deadline_s, deadline) with
          | Some k, _ -> Format.printf "deadline %d met.@." k
          | None, Some k ->
              Format.printf "tightest deadline: %d s (%.2f h)@." k (float_of_int k /. 3600.)
          | None, None -> ());
          print_schedule ~gantt ?svg_file inst sched
      | Response.Infeasible { deadline = Some k; _ } ->
          Format.printf "deadline %d cannot be met by %s.@." k algo_name;
          exit 3
      | Response.Infeasible { deadline = None; _ } -> Format.printf "no feasible deadline found.@."
      | Response.Error msg -> die "%s" msg
      | resp -> die "unexpected service response %S" (Response.kind resp))

let deadline_cmd =
  let dl =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Deadline; omit to search for the tightest one.")
  in
  let algo =
    Arg.(
      value
      & opt string "DL_RCBD_CPAR-l"
      & info [ "algo" ]
          ~doc:(Printf.sprintf "RESSCHEDDL algorithm name. Known algorithms: %s." algo_listing))
  in
  Cmd.v
    (Cmd.info "deadline" ~doc:"Solve RESSCHEDDL on a random instance")
    Term.(
      const deadline $ seed_t $ dag_params_t $ log_t $ phi_t $ method_t $ shape_t $ dag_file_t
      $ swf_file_t $ algo $ dl $ gantt_t $ svg_t $ jobs_t $ trace_t)

(* ------------------------------------------------------------------ *)
(* explain *)

(* Solve the instance with the decision journal on, then render the
   forensics report.  The whole run — deadline resolution, journaled
   scheduling, rendering — lives in Mp_core.Serve.explain; the journal is
   record-only: the schedule is bit-identical to what
   'mpres schedule'/'mpres deadline' emit (pinned by test_forensics.ml). *)
let explain seed params log phi method_ shape dag_file swf_file algo_name deadline_s format out
    trace =
  with_trace trace @@ fun () ->
  if Algo.find algo_name = None then unknown_algo algo_name;
  let inst = instance_of ?dag_file ?swf_file ~seed ~params ~log ~phi ~method_ ~shape () in
  let format = match format with `Text -> "text" | `Json -> "json" | `Svg -> "svg" | `Html -> "html" in
  let output =
    match
      Engine.handle (one_shot_engine inst) ~site:0
        (Request.Explain { dag = inst.dag; algo = algo_name; deadline = deadline_s; format })
    with
    | Response.Explained report -> report
    | Response.Error msg -> die "%s" msg
    | resp -> die "unexpected service response %S" (Response.kind resp)
  in
  match out with
  | None -> print_string output
  | Some path -> (
      match
        Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc output)
      with
      | () -> Format.printf "forensics report written to %s@." path
      | exception Sys_error msg -> die "%s" msg)

let explain_cmd =
  let algo =
    Arg.(
      value
      & opt string "BD_CPAR"
      & info [ "algo" ]
          ~doc:
            (Printf.sprintf
               "Algorithm name (RESSCHED or RESSCHEDDL). Known algorithms: %s." algo_listing))
  in
  let dl =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Deadline for RESSCHEDDL algorithms; omit to search for the tightest one.  Ignored \
             by RESSCHED algorithms.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("svg", `Svg); ("html", `Html) ]) `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output: $(b,text) (decision story + calendar analytics), $(b,json) (JSONL journal \
             + analytics object), $(b,svg) (Gantt overlaid on the reservation calendar), \
             $(b,html) (self-contained report embedding all of the above).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Solve an instance with the decision journal on and render the forensics report")
    Term.(
      const explain $ seed_t $ dag_params_t $ log_t $ phi_t $ method_t $ shape_t $ dag_file_t
      $ swf_file_t $ algo $ dl $ format $ out $ trace_t)

(* ------------------------------------------------------------------ *)
(* serve *)

let serve seed n sites procs queue_limit budget algos jobs dump replay json stats_every
    stats_out stats_html trace =
  if n < 0 then die "-n must be nonnegative";
  if sites < 1 then die "--sites must be at least 1";
  if procs < 1 then die "--procs must be at least 1";
  if jobs < 1 then die "--jobs must be at least 1";
  if stats_every < 1 then die "--stats-every must be at least 1";
  let algos = String.split_on_char ',' algos |> List.map String.trim |> List.filter (( <> ) "") in
  List.iter (fun a -> if Algo.find a = None then unknown_algo a) algos;
  if algos = [] then die "--algos must name at least one algorithm";
  with_trace trace @@ fun () ->
  let envelopes =
    match replay with
    | Some path ->
        let parse i line =
          if String.trim line = "" then None
          else
            match Request.envelope_of_string line with
            | Ok e -> Some e
            | Error msg -> die "%s:%d: %s" path (i + 1) msg
        in
        let lines = try In_channel.with_open_text path In_channel.input_lines with Sys_error msg -> die "%s" msg in
        List.filter_map Fun.id (List.mapi parse lines)
    | None ->
        let rng = Rng.create seed in
        Stream.generate rng ?budget ~algos ~sites ~procs ~n ()
  in
  (match dump with
  | None -> ()
  | Some path -> (
      match
        Out_channel.with_open_text path (fun oc ->
            List.iter
              (fun e ->
                Out_channel.output_string oc (Request.envelope_to_string e);
                Out_channel.output_char oc '\n')
              envelopes)
      with
      | () -> Format.eprintf "request stream dumped to %s@." path
      | exception Sys_error msg -> die "%s" msg));
  let site_specs =
    Array.init sites (fun _ ->
        { Engine.calendar = Mp_platform.Calendar.create ~procs; q = procs })
  in
  (* with more workers than sites the per-site fan-out cannot use them
     all; lend the surplus to each request's schedule computation through
     a second pool (a pool batch is not re-entrant, so the spec pool must
     be distinct from the one fanning the sites).  Speculation is
     output-preserving, so responses stay bit-identical for any --jobs. *)
  let spec_pool =
    if jobs > sites then Some (Mp_prelude.Pool.create ~jobs:(jobs - sites + 1) ()) else None
  in
  let spec = Option.map Mp_core.Speculate.create spec_pool in
  Fun.protect ~finally:(fun () -> Option.iter Mp_prelude.Pool.shutdown spec_pool) @@ fun () ->
  let engine = Serve.engine ?spec ~sites:site_specs () in
  let sink = Engine.Stats.sink ~every:stats_every () in
  let run () =
    let t0 = Mp_obs.now_ns () in
    let outcomes =
      if jobs = 1 then Engine.run ?queue_limit ~measure:true ~stats:sink engine envelopes
      else
        Mp_prelude.Pool.with_pool ~jobs (fun pool ->
            Engine.run ~pool ?queue_limit ~measure:true ~stats:sink engine envelopes)
    in
    (outcomes, Mp_obs.now_ns () - t0)
  in
  let outcomes, wall_ns = run () in
  let n_out = List.length outcomes in
  let kinds = Hashtbl.create 16 in
  List.iter
    (fun (o : Engine.outcome) ->
      let k = Response.kind o.response in
      Hashtbl.replace kinds k (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k)))
    outcomes;
  let kind_counts =
    List.filter_map
      (fun k -> Option.map (fun c -> (k, c)) (Hashtbl.find_opt kinds k))
      Response.kinds
  in
  let samples = Engine.Stats.samples sink in
  (match stats_out with
  | None -> ()
  | Some path -> (
      match
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Mp_forensics.Telemetry.to_jsonl samples))
      with
      | () -> Format.eprintf "telemetry series written to %s@." path
      | exception Sys_error msg -> die "%s" msg));
  (match stats_html with
  | None -> ()
  | Some path -> (
      let title = Printf.sprintf "mpres serve telemetry (seed %d, n %d)" seed n in
      match
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Mp_forensics.Telemetry.html ~title samples))
      with
      | () -> Format.eprintf "telemetry dashboard written to %s@." path
      | exception Sys_error msg -> die "%s" msg));
  (* final per-site stats snapshots, aggregated via the in-band protocol *)
  let shed_queue = ref 0 and shed_budget = ref 0 and queue_peak = ref 0 in
  for site = 0 to sites - 1 do
    match Engine.handle engine ~site (Request.Stats { last = 0 }) with
    | Response.Stats s ->
        shed_queue := !shed_queue + s.shed_queue;
        shed_budget := !shed_budget + s.shed_budget;
        queue_peak := max !queue_peak s.queue_peak
    | _ -> ()
  done;
  let latency =
    Mp_obs.Summary.of_list (List.map (fun (o : Engine.outcome) -> o.wall_ns) outcomes)
  in
  let wall_s = float_of_int wall_ns /. 1e9 in
  let rps = if wall_s > 0. then float_of_int n_out /. wall_s else 0. in
  if json then begin
    let open Mp_prelude.Json in
    print_endline
      (to_string
         (Obj
            [
              ("requests", Num (float_of_int n_out));
              ("sites", Num (float_of_int sites));
              ("jobs", Num (float_of_int jobs));
              ("wall_s", Num wall_s);
              ("requests_per_s", Num rps);
              ("latency_p50_ns", Num (float_of_int latency.p50));
              ("latency_p99_ns", Num (float_of_int latency.p99));
              ("latency_p999_ns", Num (float_of_int latency.p999));
              ("latency_max_ns", Num (float_of_int latency.max));
              ("latency_mean_ns", Num latency.mean);
              ( "responses",
                Obj (List.map (fun (k, c) -> (k, Num (float_of_int c))) kind_counts) );
              ( "stats",
                Obj
                  [
                    ("shed_queue", Num (float_of_int !shed_queue));
                    ("shed_budget", Num (float_of_int !shed_budget));
                    ("queue_peak", Num (float_of_int !queue_peak));
                    ("samples", Num (float_of_int (List.length samples)));
                    ("window_s", Num (float_of_int stats_every));
                  ] );
            ]))
  end
  else begin
    Format.printf "serve: %d request(s) over %d site(s), %d proc(s) each, jobs=%d@." n_out sites
      procs jobs;
    Format.printf "  %s@."
      (String.concat "  " (List.map (fun (k, c) -> Printf.sprintf "%s %d" k c) kind_counts));
    Format.printf "  wall %.3f s, %.0f requests/s@." wall_s rps;
    Format.printf "  placement latency p50 %.1f us, p99 %.1f us, p999 %.1f us@."
      (float_of_int latency.p50 /. 1e3)
      (float_of_int latency.p99 /. 1e3)
      (float_of_int latency.p999 /. 1e3);
    Format.printf "  shed: queue-full %d, over-budget %d; queue peak %d@." !shed_queue
      !shed_budget !queue_peak;
    Format.printf "  telemetry: %d sample(s), %ds windows@." (List.length samples) stats_every
  end

let serve_cmd =
  let n = Arg.(value & opt int 10_000 & info [ "n" ] ~docv:"N" ~doc:"Number of requests to serve.") in
  let sites = Arg.(value & opt int 1 & info [ "sites" ] ~doc:"Number of independent sites.") in
  let procs = Arg.(value & opt int 64 & info [ "procs" ] ~doc:"Processors per site.") in
  let queue_limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue-limit" ] ~docv:"K"
          ~doc:
            "Admission control: shed a request as overloaded when $(docv) admitted requests are \
             still queued or in service at its site (default: unbounded).")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:
            "Give half of the generated requests (drawn deterministically) a queue-delay budget \
             of $(docv) simulated seconds; requests over budget are shed as overloaded.")
  in
  let algos =
    Arg.(
      value
      & opt string "BD_CPAR,DL_RCBD_CPAR-l"
      & info [ "algos" ] ~docv:"NAMES"
          ~doc:
            (Printf.sprintf
               "Comma-separated algorithms for generated submit/explain requests. Known \
                algorithms: %s."
               algo_listing))
  in
  let dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"FILE" ~doc:"Write the request stream as JSONL envelopes to $(docv).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Serve the JSONL envelope stream in $(docv) (as written by --dump) instead of \
             generating one; decisions replay bit-identically for any --jobs.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Print the summary as one JSON object.") in
  let stats_every =
    Arg.(
      value
      & opt int 60
      & info [ "stats-every" ] ~docv:"SECONDS"
          ~doc:
            "Telemetry sampling window in simulated seconds: each site emits one stats sample \
             per window (default 60). The series depends only on the request stream, so it is \
             bit-identical for any --jobs and across a --dump/--replay pair.")
  in
  let stats_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-out" ] ~docv:"FILE"
          ~doc:"Write the telemetry time series as JSONL (one sample per line) to $(docv).")
  in
  let stats_html =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-html" ] ~docv:"FILE"
          ~doc:
            "Render the telemetry series as a self-contained HTML/SVG dashboard (sojourn \
             heatmap, queue-depth and occupancy timelines) to $(docv).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scheduling service over a seeded or replayed request stream (reserve, probe, \
          cancel, submit-dag, explain) and report per-kind outcomes, throughput, placement \
          latency, and a deterministic telemetry time series")
    Term.(
      const serve $ seed_t $ n $ sites $ procs $ queue_limit $ budget $ algos $ jobs_t $ dump
      $ replay $ json $ stats_every $ stats_out $ stats_html $ trace_t)

(* ------------------------------------------------------------------ *)
(* experiment *)

let experiment scale_name table jobs trace =
  if jobs < 1 then begin
    Format.eprintf "--jobs must be at least 1@.";
    exit 1
  end;
  with_trace trace @@ fun () ->
  match Experiments.scale_of_string scale_name with
  | None ->
      Format.eprintf "unknown scale %S (tiny, quick, standard, paper)@." scale_name;
      exit 1
  | Some scale -> (
      match table with
      | "all" -> Experiments.run_all ~jobs scale
      | "2" -> Experiments.print_table2 scale
      | "3" -> Experiments.print_table3 scale
      | "bl" -> Experiments.print_bl_comparison ~jobs scale
      | "matrix" -> Experiments.print_bl_bd_matrix ~jobs scale
      | "4" -> Experiments.print_table4 ~jobs scale
      | "5" -> Experiments.print_table5 ~jobs scale
      | "6" -> Experiments.print_table6 ~jobs scale
      | "7" -> Experiments.print_table7 ~jobs scale
      | "8" -> Experiments.print_table8 ()
      | "9" -> Experiments.print_table9 scale
      | "10" -> Experiments.print_table10 scale
      | "allocators" -> Experiments.print_allocator_ablation scale
      | "blind" -> Experiments.print_blind_ablation ~jobs scale
      | "online" -> Experiments.print_online_ablation scale
      | "hetero" -> Experiments.print_hetero_ablation scale
      | "icaslb" -> Experiments.print_icaslb_ablation ~jobs scale
      | "impact" -> Experiments.print_reservation_impact scale
      | "pareto" -> Experiments.print_pareto_ablation ~jobs scale
      | "estimates" -> Experiments.print_estimate_ablation ~jobs scale
      | other ->
          Format.eprintf
            "unknown table %S (2,3,bl,4,5,6,7,8,9,10,allocators,blind,online,hetero,icaslb,impact,pareto,estimates,all)@."
            other;
          exit 1)

let experiment_cmd =
  let scale =
    Arg.(value & opt string "quick" & info [ "scale" ] ~doc:"Scale: tiny, quick, standard, paper.")
  in
  let table =
    Arg.(
      value
      & pos 0 string "all"
      & info [] ~docv:"TABLE"
          ~doc:"Table id (2..10, bl), ablation name (allocators, blind, online, hetero, estimates), or 'all'.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate the paper's tables")
    Term.(const experiment $ scale $ table $ jobs_t $ trace_t)

(* ------------------------------------------------------------------ *)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning)

let version = "1.1.0"

(* One line per subcommand, printed on a bare or unknown invocation (the
   full option listings stay in 'mpres <command> --help'). *)
let subcommand_summaries =
  [
    ("gen-dag", "draw a random or classic application DAG (--shape, --dot)");
    ("gen-log", "draw a synthetic workload log as SWF (--log, --phi, --days)");
    ("schedule", "solve RESSCHED on a random instance (--algo, --gantt, --svg, --trace out.json)");
    ("deadline", "solve RESSCHEDDL, fixed or tightest deadline (--algo, --deadline, --trace out.json)");
    ("explain", "decision journal + calendar analytics for one run (--format text|json|svg|html)");
    ("serve", "run the scheduling service over a seeded request stream (-n, --sites, --queue-limit, --dump/--replay)");
    ("experiment", "regenerate the paper's tables (--scale, --jobs, --trace out.json)");
  ]

let print_summary oc =
  Printf.fprintf oc "mpres %s — mixed-parallel scheduling with advance reservations\n\n" version;
  Printf.fprintf oc "usage: mpres <command> [options]\n\n";
  List.iter (fun (name, doc) -> Printf.fprintf oc "  %-11s %s\n" name doc) subcommand_summaries;
  Printf.fprintf oc
    "\nRun 'mpres <command> --help' for the full option listing, 'mpres --version' for the \
     version.\n"

let () =
  (* --verbose is handled before cmdliner so every subcommand accepts it *)
  let argv = Array.to_list Sys.argv in
  let verbose = List.mem "--verbose" argv in
  setup_logs verbose;
  let argv = Array.of_list (List.filter (fun a -> a <> "--verbose") argv) in
  (* pre-dispatch: a bare 'mpres' or an unknown subcommand gets the
     one-line-per-subcommand summary instead of cmdliner's usage error *)
  let known = List.map fst subcommand_summaries in
  (match Array.to_list argv with
  | _ :: [] ->
      print_summary stdout;
      exit 0
  | _ :: first :: _
    when (not (String.length first > 0 && first.[0] = '-'))
         && not (List.exists (String.starts_with ~prefix:first) known)
         (* cmdliner accepts unambiguous prefixes; only reject real typos *) ->
      Printf.eprintf "mpres: unknown command %S\n\n" first;
      print_summary stderr;
      exit 124
  | _ -> ());
  let info = Cmd.info "mpres" ~version ~doc:"Mixed-parallel scheduling with advance reservations" in
  exit
    (Cmd.eval ~argv
       (Cmd.group info
          [ gen_dag_cmd; gen_log_cmd; schedule_cmd; deadline_cmd; explain_cmd; serve_cmd; experiment_cmd ]))
