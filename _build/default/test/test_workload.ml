open Mp_workload
module Rng = Mp_prelude.Rng
module Stats = Mp_prelude.Stats
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation

let day = 86_400

(* ------------------------------------------------------------------ *)
(* Job *)

let test_job_basics () =
  let j = Job.make ~id:1 ~submit:100 ~start:150 ~run:50 ~procs:4 () in
  Alcotest.(check (option int)) "finish" (Some 200) (Job.finish j);
  Alcotest.(check (option int)) "wait" (Some 50) (Job.wait j);
  Alcotest.(check (float 1e-9)) "cpu hours" (200. /. 3600.) (Job.cpu_hours j)

let test_job_invalid () =
  Alcotest.check_raises "start < submit" (Invalid_argument "Job.make: start < submit") (fun () ->
      ignore (Job.make ~id:1 ~submit:100 ~start:50 ~run:10 ~procs:1 ()));
  Alcotest.check_raises "run <= 0" (Invalid_argument "Job.make: run <= 0") (fun () ->
      ignore (Job.make ~id:1 ~submit:0 ~run:0 ~procs:1 ()))

let test_job_to_reservation () =
  let j = Job.make ~id:1 ~submit:0 ~start:10 ~run:20 ~procs:3 () in
  let r = Job.to_reservation j in
  Alcotest.(check int) "start" 10 r.start;
  Alcotest.(check int) "finish" 30 r.finish;
  Alcotest.(check int) "procs" 3 r.procs;
  let unscheduled = Job.make ~id:2 ~submit:0 ~run:20 ~procs:3 () in
  Alcotest.check_raises "unscheduled" (Invalid_argument "Job.to_reservation: job not scheduled")
    (fun () -> ignore (Job.to_reservation unscheduled))

(* ------------------------------------------------------------------ *)
(* Swf *)

let test_swf_parse () =
  match Swf.parse_line "1 0 30 100 8 -1 -1 8 100 -1 -1 -1 -1 -1 -1 -1 -1 -1" with
  | Some j ->
      Alcotest.(check int) "id" 1 j.id;
      Alcotest.(check int) "submit" 0 j.submit;
      Alcotest.(check (option int)) "start" (Some 30) j.start;
      Alcotest.(check int) "run" 100 j.run;
      Alcotest.(check int) "procs" 8 j.procs
  | None -> Alcotest.fail "expected a job"

let test_swf_parse_comment () =
  Alcotest.(check bool) "comment" true (Swf.parse_line "; UnixStartTime: 0" = None);
  Alcotest.(check bool) "blank" true (Swf.parse_line "   " = None)

let test_swf_parse_missing_data () =
  (* runtime -1 means unknown: skipped *)
  Alcotest.(check bool) "bad runtime" true (Swf.parse_line "1 0 30 -1 8" = None);
  (* negative wait means never started: parsed with no start *)
  match Swf.parse_line "1 0 -1 100 8" with
  | Some j -> Alcotest.(check (option int)) "no start" None j.start
  | None -> Alcotest.fail "expected a job"

let test_swf_roundtrip () =
  let j = Job.make ~id:7 ~submit:1000 ~start:1500 ~run:300 ~procs:16 () in
  match Swf.parse_line (Swf.to_line j) with
  | Some j' ->
      Alcotest.(check int) "id" j.id j'.id;
      Alcotest.(check int) "submit" j.submit j'.submit;
      Alcotest.(check (option int)) "start" j.start j'.start;
      Alcotest.(check int) "run" j.run j'.run;
      Alcotest.(check int) "procs" j.procs j'.procs
  | None -> Alcotest.fail "roundtrip failed"

let test_swf_file_io () =
  let jobs =
    List.init 20 (fun i ->
        Job.make ~id:(i + 1) ~submit:(i * 100) ~start:((i * 100) + 50) ~run:(60 + i) ~procs:(1 + (i mod 8)) ())
  in
  let path = Filename.temp_file "mpres_test" ".swf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Swf.save path jobs;
      let back = Swf.load path in
      Alcotest.(check int) "count" (List.length jobs) (List.length back))

(* ------------------------------------------------------------------ *)
(* Gwf *)

let test_gwf_parse () =
  match Gwf.parse_line "17 100 20 300 8 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1" with
  | Some j ->
      Alcotest.(check int) "id" 17 j.id;
      Alcotest.(check (option int)) "start" (Some 120) j.start;
      Alcotest.(check int) "run" 300 j.run;
      Alcotest.(check int) "procs" 8 j.procs
  | None -> Alcotest.fail "expected a job"

let test_gwf_comments () =
  Alcotest.(check bool) "hash comment" true (Gwf.parse_line "# GWA header" = None);
  Alcotest.(check bool) "semicolon comment" true (Gwf.parse_line "; alt comment" = None)

let test_gwf_roundtrip () =
  let j = Job.make ~id:3 ~submit:500 ~start:600 ~run:50 ~procs:4 () in
  Alcotest.(check bool) "roundtrip" true (Gwf.parse_line (Gwf.to_line j) = Some j)

let test_gwf_file_io () =
  let jobs =
    List.init 10 (fun i ->
        Job.make ~id:i ~submit:(i * 50) ~start:((i * 50) + 10) ~run:(30 + i) ~procs:(1 + i) ())
  in
  let path = Filename.temp_file "mpres_test" ".gwf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Gwf.save path jobs;
      Alcotest.(check bool) "same jobs back" true (Gwf.load path = jobs))

(* ------------------------------------------------------------------ *)
(* Batch_sim *)

let test_batch_sim_fcfs () =
  (* Two jobs that cannot overlap on 4 procs. *)
  let jobs =
    [
      Job.make ~id:1 ~submit:0 ~run:100 ~procs:3 ();
      Job.make ~id:2 ~submit:10 ~run:50 ~procs:3 ();
    ]
  in
  match Batch_sim.schedule ~procs:4 jobs with
  | [ j1; j2 ] ->
      Alcotest.(check (option int)) "first immediate" (Some 0) j1.start;
      Alcotest.(check (option int)) "second waits" (Some 100) j2.start
  | _ -> Alcotest.fail "expected two jobs"

let test_batch_sim_backfill () =
  (* A small job can slide into the hole in front of a wide job. *)
  let jobs =
    [
      Job.make ~id:1 ~submit:0 ~run:100 ~procs:3 ();
      Job.make ~id:2 ~submit:10 ~run:1000 ~procs:4 ();
      Job.make ~id:3 ~submit:20 ~run:50 ~procs:1 ();
    ]
  in
  match Batch_sim.schedule ~procs:4 jobs with
  | [ _; j2; j3 ] ->
      Alcotest.(check (option int)) "wide job waits" (Some 100) j2.start;
      Alcotest.(check (option int)) "small job backfills" (Some 20) j3.start
  | _ -> Alcotest.fail "expected three jobs"

let test_batch_sim_drops_oversize () =
  let jobs = [ Job.make ~id:1 ~submit:0 ~run:10 ~procs:10 () ] in
  Alcotest.(check int) "dropped" 0 (List.length (Batch_sim.schedule ~procs:4 jobs))

let test_batch_sim_capacity_respected () =
  let rng = Rng.create 5 in
  let jobs =
    List.init 200 (fun i ->
        Job.make ~id:i ~submit:(Rng.int rng 5000) ~run:(1 + Rng.int rng 500)
          ~procs:(1 + Rng.int rng 8) ())
  in
  let placed = Batch_sim.schedule ~procs:8 jobs in
  (* Re-applying all reservations must not overcommit. *)
  let cal =
    List.fold_left
      (fun cal j -> Calendar.reserve cal (Job.to_reservation j))
      (Calendar.create ~procs:8) placed
  in
  Alcotest.(check bool) "no overcommit" true (Calendar.breakpoints cal > 0)

let test_batch_sim_easy_backfills_aggressively () =
  (* Conservative backfilling cannot start job 3 before job 2's
     reservation; EASY lets it jump ahead because it finishes before the
     head's shadow time. *)
  let jobs =
    [
      Job.make ~id:1 ~submit:0 ~run:100 ~procs:3 ();
      Job.make ~id:2 ~submit:10 ~run:1000 ~procs:4 ();
      Job.make ~id:3 ~submit:20 ~run:80 ~procs:1 ();
    ]
  in
  let starts policy =
    List.map
      (fun (j : Job.t) -> (j.id, Option.get j.start))
      (Batch_sim.schedule ~policy ~procs:4 jobs)
  in
  let easy = starts Batch_sim.Easy in
  Alcotest.(check int) "head at 100" 100 (List.assoc 2 easy);
  Alcotest.(check int) "backfill at 20" 20 (List.assoc 3 easy)

let test_batch_sim_easy_never_delays_head () =
  (* A long backfill candidate that would push the head is refused. *)
  let jobs =
    [
      Job.make ~id:1 ~submit:0 ~run:100 ~procs:3 ();
      Job.make ~id:2 ~submit:10 ~run:1000 ~procs:4 ();
      Job.make ~id:3 ~submit:20 ~run:500 ~procs:1 () (* would overlap the shadow *);
    ]
  in
  let placed = Batch_sim.schedule ~policy:Easy ~procs:4 jobs in
  let start id = Option.get (List.find (fun (j : Job.t) -> j.id = id) placed).start in
  Alcotest.(check int) "head still at 100" 100 (start 2);
  Alcotest.(check bool) "long job waits for the head" true (start 3 >= 100)

let test_batch_sim_easy_capacity () =
  let rng = Rng.create 6 in
  let jobs =
    List.init 150 (fun i ->
        Job.make ~id:i ~submit:(Rng.int rng 3000) ~run:(1 + Rng.int rng 300)
          ~procs:(1 + Rng.int rng 6) ())
  in
  let placed = Batch_sim.schedule ~policy:Easy ~procs:6 jobs in
  Alcotest.(check int) "all placed" (List.length jobs) (List.length placed);
  (* capacity-feasible: re-applying as reservations must not overcommit *)
  let (_ : Calendar.t) =
    List.fold_left
      (fun cal j -> Calendar.reserve cal (Job.to_reservation j))
      (Calendar.create ~procs:6) placed
  in
  (* EASY never starts a job before its submission *)
  Alcotest.(check bool) "starts after submit" true
    (List.for_all (fun (j : Job.t) -> Option.get j.start >= j.submit) placed)

let test_batch_sim_easy_at_least_as_utilized () =
  (* On a congested stream, EASY's utilization over a fixed window is at
     least conservative's (it only moves work earlier). *)
  let rng = Rng.create 7 in
  let jobs =
    List.init 120 (fun i ->
        Job.make ~id:i ~submit:(Rng.int rng 2000) ~run:(50 + Rng.int rng 400)
          ~procs:(1 + Rng.int rng 8) ())
  in
  let u policy =
    Batch_sim.utilization ~procs:8 ~horizon:4000 (Batch_sim.schedule ~policy ~procs:8 jobs)
  in
  Alcotest.(check bool) "easy >= conservative - eps" true
    (u Batch_sim.Easy >= u Batch_sim.Conservative -. 0.02)

let test_batch_sim_flows_around_reservations () =
  let reserved = [ Reservation.make ~start:0 ~finish:100 ~procs:4 ] in
  let jobs = [ Job.make ~id:1 ~submit:0 ~run:10 ~procs:2 () ] in
  (match Batch_sim.schedule ~reserved ~procs:4 jobs with
  | [ j ] -> Alcotest.(check (option int)) "waits out the reservation" (Some 100) j.start
  | _ -> Alcotest.fail "expected one job");
  Alcotest.check_raises "easy rejects reservations"
    (Invalid_argument "Batch_sim.schedule: reservations are only supported by Conservative")
    (fun () -> ignore (Batch_sim.schedule ~policy:Easy ~reserved ~procs:4 jobs))

let test_utilization () =
  let jobs = [ Job.make ~id:1 ~submit:0 ~start:0 ~run:50 ~procs:2 () ] in
  Alcotest.(check (float 1e-9)) "util" 0.25 (Batch_sim.utilization ~procs:4 ~horizon:100 jobs)

(* ------------------------------------------------------------------ *)
(* Log_model *)

let test_log_presets () =
  Alcotest.(check int) "4 presets" 4 (List.length Log_model.all);
  Alcotest.(check bool) "find case-insensitive" true (Log_model.find "sdsc_blue" <> None);
  Alcotest.(check bool) "unknown" true (Log_model.find "nope" = None)

let test_log_generate_utilization () =
  let preset = Log_model.osc_cluster in
  let jobs = Log_model.generate (Rng.create 11) ~days:30 preset in
  let u = Batch_sim.utilization ~procs:preset.cpus ~horizon:(30 * day) jobs in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.3f within 30%% of target %.3f" u preset.target_utilization)
    true
    (Float.abs (u -. preset.target_utilization) < 0.3 *. preset.target_utilization)

let test_log_generate_all_scheduled () =
  let jobs = Log_model.generate (Rng.create 12) ~days:10 Log_model.sdsc_ds in
  Alcotest.(check bool) "all started" true
    (List.for_all (fun (j : Job.t) -> j.start <> None) jobs)

let test_log_deterministic () =
  let a = Log_model.generate (Rng.create 13) ~days:10 Log_model.ctc_sp2 in
  let b = Log_model.generate (Rng.create 13) ~days:10 Log_model.ctc_sp2 in
  Alcotest.(check bool) "same log" true (a = b)

(* ------------------------------------------------------------------ *)
(* Grid5000 *)

let test_grid5000_generate () =
  let g = Grid5000.generate (Rng.create 21) ~days:20 () in
  Alcotest.(check bool) "has jobs" true (List.length g.jobs > 50);
  Alcotest.(check bool) "all started" true (List.for_all (fun (j : Job.t) -> j.start <> None) g.jobs);
  (* reservations respect capacity *)
  let cal =
    List.fold_left
      (fun cal j -> Calendar.reserve cal (Job.to_reservation j))
      (Calendar.create ~procs:g.cpus) g.jobs
  in
  ignore cal

let test_grid5000_exec_stats () =
  let g = Grid5000.generate (Rng.create 22) ~days:40 () in
  let mean_exec = Stats.mean (List.map (fun (j : Job.t) -> float_of_int j.run /. 3600.) g.jobs) in
  Alcotest.(check bool)
    (Printf.sprintf "mean exec %.2f h near 1.84 h" mean_exec)
    true
    (mean_exec > 1.0 && mean_exec < 3.0)

(* ------------------------------------------------------------------ *)
(* Reservation_gen *)

(* One shared log for the reservation-generator tests (generation is the
   expensive part; the tests vary their own rng seeds for tagging and
   instants). *)
let sample_jobs =
  let cache = Hashtbl.create 4 in
  fun seed ->
    match Hashtbl.find_opt cache seed with
    | Some jobs -> jobs
    | None ->
        let jobs = Log_model.generate (Rng.create seed) ~days:15 Log_model.sdsc_ds in
        Hashtbl.add cache seed jobs;
        jobs

let test_tag_fraction () =
  let jobs = sample_jobs 31 in
  let tagged = Reservation_gen.tag (Rng.create 1) ~phi:0.5 jobs in
  let ratio = float_of_int (List.length tagged) /. float_of_int (List.length jobs) in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f near 0.5" ratio) true (Float.abs (ratio -. 0.5) < 0.1)

let test_tag_invalid_phi () =
  Alcotest.check_raises "phi out of range" (Invalid_argument "Reservation_gen.tag: phi not in (0,1]")
    (fun () -> ignore (Reservation_gen.tag (Rng.create 1) ~phi:0. []))

let extract_with method_ seed =
  let jobs = sample_jobs 31 in
  let rng = Rng.create seed in
  let at = Reservation_gen.random_instant rng jobs in
  let tagged = Reservation_gen.tag rng ~phi:0.2 jobs in
  Reservation_gen.extract rng method_ ~procs:Log_model.sdsc_ds.cpus ~at tagged

let test_extract_future_nonnegative_overlap () =
  List.iter
    (fun m ->
      let rg = extract_with m 33 in
      List.iter
        (fun (r : Reservation.t) ->
          if r.finish <= 0 then Alcotest.failf "future reservation ends at %d <= 0" r.finish;
          if r.start >= 7 * day then Alcotest.failf "reservation starts beyond horizon: %d" r.start)
        rg.future)
    Reservation_gen.all_methods

let test_extract_past_window () =
  List.iter
    (fun m ->
      let rg = extract_with m 34 in
      List.iter
        (fun (r : Reservation.t) ->
          if r.start >= 0 then Alcotest.failf "past reservation starts at %d >= 0" r.start;
          if r.finish <= -7 * day then Alcotest.failf "past reservation out of window")
        rg.past)
    Reservation_gen.all_methods

let test_extract_feasible () =
  List.iter
    (fun m ->
      let rg = extract_with m 35 in
      (* calendar construction raises if the subset overcommits *)
      ignore (Reservation_gen.calendar rg))
    Reservation_gen.all_methods

let test_historical_average_bounds () =
  List.iter
    (fun m ->
      let rg = extract_with m 36 in
      let q = Reservation_gen.historical_average rg in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.1f within [0, %d]" q rg.procs)
        true
        (q >= 0. && q <= float_of_int rg.procs))
    Reservation_gen.all_methods

let decay_counts rg =
  (* reservation-count per day over the 7-day horizon *)
  let counts = Array.make 7 0 in
  List.iter
    (fun (r : Reservation.t) ->
      let b = if r.start <= 0 then 0 else min 6 (r.start / day) in
      counts.(b) <- counts.(b) + 1)
    rg.Reservation_gen.future;
  counts

let test_linear_decays () =
  let rg = extract_with Reservation_gen.Linear 37 in
  let c = decay_counts rg in
  (* first half should clearly outweigh the second half *)
  let first = c.(0) + c.(1) + c.(2) and last = c.(4) + c.(5) + c.(6) in
  Alcotest.(check bool) (Printf.sprintf "decays: %d vs %d" first last) true (first > last)

let test_expo_decays_faster () =
  let lin = decay_counts (extract_with Reservation_gen.Linear 38) in
  let ex = decay_counts (extract_with Reservation_gen.Expo 38) in
  let tail a = a.(3) + a.(4) + a.(5) + a.(6) in
  Alcotest.(check bool)
    (Printf.sprintf "expo tail %d <= linear tail %d" (tail ex) (tail lin))
    true
    (tail ex <= tail lin)

let test_real_only_known_jobs () =
  let jobs = sample_jobs 31 in
  let rng = Rng.create 40 in
  let at = Reservation_gen.random_instant rng jobs in
  let tagged = Reservation_gen.tag rng ~phi:0.3 jobs in
  let rg = Reservation_gen.extract rng Reservation_gen.Real ~procs:Log_model.sdsc_ds.cpus ~at tagged in
  (* every future reservation must correspond to a tagged job submitted
     before T *)
  let known_starts =
    List.filter_map
      (fun (j : Job.t) -> if j.submit <= at then Option.map (fun s -> s - at) j.start else None)
      tagged
  in
  List.iter
    (fun (r : Reservation.t) ->
      if not (List.mem r.start known_starts) then
        Alcotest.failf "future reservation at %d not from a known job" r.start)
    rg.future

let test_random_instant_in_span () =
  let jobs = sample_jobs 31 in
  let rng = Rng.create 42 in
  for _ = 1 to 20 do
    let at = Reservation_gen.random_instant rng jobs in
    Alcotest.(check bool) "non-negative" true (at >= 0)
  done

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_batch_sim_no_overcommit =
  QCheck.Test.make ~name:"batch sim never overcommits" ~count:100
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create seed in
      let jobs =
        List.init 50 (fun i ->
            Job.make ~id:i ~submit:(Rng.int rng 1000) ~run:(1 + Rng.int rng 100)
              ~procs:(1 + Rng.int rng 6) ())
      in
      let placed = Batch_sim.schedule ~procs:6 jobs in
      match
        List.fold_left
          (fun cal j -> Calendar.reserve cal (Job.to_reservation j))
          (Calendar.create ~procs:6) placed
      with
      | (_ : Calendar.t) -> true
      | exception Calendar.Overcommitted _ -> false)

let prop_batch_sim_starts_after_submit =
  QCheck.Test.make ~name:"batch sim starts jobs at or after submission" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let jobs =
        List.init 30 (fun i ->
            Job.make ~id:i ~submit:(Rng.int rng 500) ~run:(1 + Rng.int rng 50)
              ~procs:(1 + Rng.int rng 4) ())
      in
      List.for_all
        (fun (j : Job.t) -> match j.start with Some s -> s >= j.submit | None -> false)
        (Batch_sim.schedule ~procs:4 jobs))

let prop_parsers_never_raise =
  QCheck.Test.make ~name:"SWF/GWF parsers never raise on junk" ~count:500
    QCheck.(string_of_size Gen.(0 -- 120))
    (fun s ->
      let (_ : Job.t option) = Swf.parse_line s in
      let (_ : Job.t option) = Gwf.parse_line s in
      true)

let prop_parsers_never_raise_numeric =
  QCheck.Test.make ~name:"parsers never raise on random numeric rows" ~count:300
    QCheck.(list_of_size Gen.(0 -- 10) (int_range (-5) 1000))
    (fun fields ->
      let line = String.concat " " (List.map string_of_int fields) in
      let (_ : Job.t option) = Swf.parse_line line in
      let (_ : Job.t option) = Gwf.parse_line line in
      true)

let prop_swf_roundtrip =
  QCheck.Test.make ~name:"SWF line roundtrip" ~count:200
    QCheck.(quad (int_range 0 100000) (int_range 0 10000) (int_range 1 100000) (int_range 1 4096))
    (fun (submit, wait, run, procs) ->
      let j = Job.make ~id:1 ~submit ~start:(submit + wait) ~run ~procs () in
      match Swf.parse_line (Swf.to_line j) with
      | Some j' -> j' = j
      | None -> false)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_batch_sim_no_overcommit;
        prop_batch_sim_starts_after_submit;
        prop_parsers_never_raise;
        prop_parsers_never_raise_numeric;
        prop_swf_roundtrip;
      ]
  in
  Alcotest.run "workload"
    [
      ( "job",
        [
          Alcotest.test_case "basics" `Quick test_job_basics;
          Alcotest.test_case "invalid" `Quick test_job_invalid;
          Alcotest.test_case "to_reservation" `Quick test_job_to_reservation;
        ] );
      ( "swf",
        [
          Alcotest.test_case "parse" `Quick test_swf_parse;
          Alcotest.test_case "comments" `Quick test_swf_parse_comment;
          Alcotest.test_case "missing data" `Quick test_swf_parse_missing_data;
          Alcotest.test_case "roundtrip" `Quick test_swf_roundtrip;
          Alcotest.test_case "file io" `Quick test_swf_file_io;
        ] );
      ( "gwf",
        [
          Alcotest.test_case "parse" `Quick test_gwf_parse;
          Alcotest.test_case "comments" `Quick test_gwf_comments;
          Alcotest.test_case "roundtrip" `Quick test_gwf_roundtrip;
          Alcotest.test_case "file io" `Quick test_gwf_file_io;
        ] );
      ( "batch_sim",
        [
          Alcotest.test_case "fcfs order" `Quick test_batch_sim_fcfs;
          Alcotest.test_case "backfill" `Quick test_batch_sim_backfill;
          Alcotest.test_case "drops oversize" `Quick test_batch_sim_drops_oversize;
          Alcotest.test_case "capacity respected" `Quick test_batch_sim_capacity_respected;
          Alcotest.test_case "easy backfills aggressively" `Quick
            test_batch_sim_easy_backfills_aggressively;
          Alcotest.test_case "easy never delays head" `Quick test_batch_sim_easy_never_delays_head;
          Alcotest.test_case "easy capacity" `Quick test_batch_sim_easy_capacity;
          Alcotest.test_case "easy utilization" `Quick test_batch_sim_easy_at_least_as_utilized;
          Alcotest.test_case "flows around reservations" `Quick
            test_batch_sim_flows_around_reservations;
          Alcotest.test_case "utilization" `Quick test_utilization;
        ] );
      ( "log_model",
        [
          Alcotest.test_case "presets" `Quick test_log_presets;
          Alcotest.test_case "utilization near target" `Slow test_log_generate_utilization;
          Alcotest.test_case "all scheduled" `Quick test_log_generate_all_scheduled;
          Alcotest.test_case "deterministic" `Quick test_log_deterministic;
        ] );
      ( "grid5000",
        [
          Alcotest.test_case "generate" `Quick test_grid5000_generate;
          Alcotest.test_case "exec stats" `Quick test_grid5000_exec_stats;
        ] );
      ( "reservation_gen",
        [
          Alcotest.test_case "tag fraction" `Quick test_tag_fraction;
          Alcotest.test_case "tag invalid phi" `Quick test_tag_invalid_phi;
          Alcotest.test_case "future overlap horizon" `Quick test_extract_future_nonnegative_overlap;
          Alcotest.test_case "past window" `Quick test_extract_past_window;
          Alcotest.test_case "feasible" `Quick test_extract_feasible;
          Alcotest.test_case "historical average bounds" `Quick test_historical_average_bounds;
          Alcotest.test_case "linear decays" `Quick test_linear_decays;
          Alcotest.test_case "expo decays faster" `Quick test_expo_decays_faster;
          Alcotest.test_case "real keeps only known jobs" `Quick test_real_only_known_jobs;
          Alcotest.test_case "random instant" `Quick test_random_instant_in_span;
        ] );
      ("properties", props);
    ]
