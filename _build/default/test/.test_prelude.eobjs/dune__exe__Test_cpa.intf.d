test/test_cpa.mli:
