test/test_prelude.ml: Alcotest Array Float Fun Gen List Mp_prelude QCheck QCheck_alcotest Rng Stats
