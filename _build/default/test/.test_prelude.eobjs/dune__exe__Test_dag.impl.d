test/test_dag.ml: Alcotest Analysis Array Dag Dag_gen Float Format List Mp_dag Mp_prelude QCheck QCheck_alcotest String Task Workflows
