test/test_core.ml: Alcotest Algo Array Blind Bottom_level Bound Deadline Env Fun Hressched List Mp_core Mp_cpa Mp_dag Mp_platform Mp_prelude Online Printf QCheck QCheck_alcotest Ressched Result
