test/test_cpa.ml: Alcotest Allocation Array Cpa Fun Gantt Icaslb List Mapping Mcpa Mp_cpa Mp_dag Mp_platform Mp_prelude Printf QCheck QCheck_alcotest Result Schedule String
