test/test_platform.ml: Alcotest Calendar Format Grid List Mp_platform Printf Probe QCheck QCheck_alcotest Reservation
