(* A zoo of classic mixed-parallel workflows under advance reservations.

   The paper evaluates randomly generated DAGs; real applications have
   structure.  This example schedules six classic task-graph shapes
   (chain, fork-join, FFT butterfly, Strassen, Gaussian elimination,
   wavefront) on the same reserved cluster and shows how the allocation
   bound (BD_ALL vs BD_CPAR) interacts with each shape — the paper's
   "DAG width" observation (BD_ALL only competes on chain-like graphs)
   made concrete.

   Run with:  dune exec examples/workflow_zoo.exe *)

module Rng = Mp_prelude.Rng
module Workflows = Mp_dag.Workflows
module Analysis = Mp_dag.Analysis
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Env = Mp_core.Env
module Ressched = Mp_core.Ressched
module Schedule = Mp_cpa.Schedule

let () =
  let rng = Rng.create 99 in
  (* a 64-processor cluster with a dozen competing reservations *)
  let calendar =
    let rec add cal k =
      if k = 0 then cal
      else begin
        let start = Rng.int rng 86_400 in
        let dur = 1_800 + Rng.int rng 10_800 in
        let r = Reservation.make ~start ~finish:(start + dur) ~procs:(1 + Rng.int rng 32) in
        match Calendar.reserve_opt cal r with
        | Some cal -> add cal (k - 1)
        | None -> add cal (k - 1)
      end
    in
    add (Calendar.create ~procs:64) 12
  in
  let env = Env.make ~calendar ~q:(Calendar.average_available calendar ~from_:0 ~until:86_400) in
  Format.printf "Cluster: %d processors, q=%d@.@." env.p env.q;
  Format.printf "%-15s %6s %6s  %12s %12s  %10s@." "workflow" "tasks" "width" "BD_ALL[h]"
    "BD_CPAR[h]" "CPUh ratio";
  Format.printf "----------------------------------------------------------------------@.";
  List.iter
    (fun (name, dag) ->
      let tat bd =
        let sched = Ressched.schedule ~bd env dag in
        (match Schedule.validate dag ~base:env.calendar sched with
        | Ok () -> ()
        | Error msg -> failwith msg);
        (float_of_int (Schedule.turnaround sched) /. 3600., Schedule.cpu_hours sched)
      in
      let tat_all, cpu_all = tat Mp_core.Bound.BD_ALL in
      let tat_cpar, cpu_cpar = tat Mp_core.Bound.BD_CPAR in
      Format.printf "%-15s %6d %6d  %12.2f %12.2f  %10.1f@." name (Mp_dag.Dag.n dag)
        (Analysis.width dag) tat_all tat_cpar (cpu_all /. cpu_cpar))
    (Workflows.all_named rng)
