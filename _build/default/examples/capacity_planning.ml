(* Capacity planning with the workload substrate.

   A site operator wants to know how advance reservations reshape the
   availability their users will see.  This example exercises the workload
   layer directly:

     - generate a synthetic SDSC_DS-like batch log and write/read it as SWF,
     - run the FCFS+backfill batch simulator,
     - tag a fraction of jobs as advance reservations,
     - inspect the availability profile an application scheduler would see
       (average availability, largest holes, busy series).

   Run with:  dune exec examples/capacity_planning.exe *)

module Rng = Mp_prelude.Rng
module Stats = Mp_prelude.Stats
module Calendar = Mp_platform.Calendar
module Job = Mp_workload.Job
module Swf = Mp_workload.Swf
module Log_model = Mp_workload.Log_model
module Batch_sim = Mp_workload.Batch_sim
module Reservation_gen = Mp_workload.Reservation_gen

let day = 86_400

let () =
  let rng = Rng.create 11 in
  let preset = Log_model.sdsc_ds in

  (* 1. A month of synthetic load, scheduled by FCFS + conservative
     backfilling. *)
  let jobs = Log_model.generate rng ~days:30 preset in
  Format.printf "Generated %d jobs on %d processors (utilization %.1f%%).@." (List.length jobs)
    preset.cpus
    (100. *. Batch_sim.utilization ~procs:preset.cpus ~horizon:(30 * day) jobs);

  (* 2. Round-trip through the Standard Workload Format. *)
  let path = Filename.temp_file "capacity" ".swf" in
  Swf.save path jobs;
  let back = Swf.load path in
  Sys.remove path;
  Format.printf "SWF round-trip: wrote and re-read %d jobs.@.@." (List.length back);

  (* 3. Queue statistics. *)
  let waits = List.filter_map (fun j -> Option.map float_of_int (Job.wait j)) jobs in
  let s = Stats.summarize waits in
  Format.printf "Queue wait: mean %.1f min, median %.1f min, max %.1f h.@.@." (s.mean /. 60.)
    (s.median /. 60.) (s.max /. 3600.);

  (* 4. Tag 20%% of the jobs as advance reservations and look at the
     calendar a user scheduling "now" would face. *)
  List.iter
    (fun method_ ->
      let rng = Rng.create 99 in
      let at = Reservation_gen.random_instant rng jobs in
      let tagged = Reservation_gen.tag rng ~phi:0.2 jobs in
      let rg = Reservation_gen.extract rng method_ ~procs:preset.cpus ~at tagged in
      let cal = Reservation_gen.calendar rg in
      let q = Reservation_gen.historical_average rg in
      let avg_next_day = Calendar.average_available cal ~from_:0 ~until:day in
      let min_next_day = Calendar.min_available cal ~from_:0 ~until:day in
      Format.printf
        "%-6s  future reservations: %3d   historical avg avail: %5.1f   next-24h avail: avg %5.1f min %3d@."
        (Reservation_gen.method_name method_)
        (List.length rg.future) q avg_next_day min_next_day)
    Reservation_gen.all_methods;

  (* 5. The decaying load profile ahead (reserved processors per 12 h). *)
  let rng = Rng.create 100 in
  let at = Reservation_gen.random_instant rng jobs in
  let tagged = Reservation_gen.tag rng ~phi:0.2 jobs in
  let rg = Reservation_gen.extract rng Reservation_gen.Expo ~procs:preset.cpus ~at tagged in
  let series =
    Calendar.busy_series (Reservation_gen.calendar rg) ~from_:0 ~until:(7 * day) ~step:(12 * 3600)
  in
  Format.printf "@.Reserved processors over the next 7 days (12 h samples, expo model):@.";
  List.iteri
    (fun i v ->
      let bar = String.make (int_of_float (v /. float_of_int preset.cpus *. 40.)) '#' in
      Format.printf "  +%3dh %4.0f %s@." (i * 12) v bar)
    series
