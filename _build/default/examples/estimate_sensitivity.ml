(* Pessimistic run-time estimates, end to end.

   Users of batch systems over-estimate their jobs' run times (the paper
   cites Mu'alem & Feitelson), and Section 3.1 predicts — without
   measuring — that pessimistic estimates would delay reservations and
   cost resources similarly for all algorithms.  This example quantifies
   the full loop:

     1. schedule with estimates `factor` x the true durations
        (reservations are booked for the estimated time),
     2. replay the schedule with the true durations (the Executor),
     3. report planned vs realized turn-around and billed vs used
        CPU-hours.

   Run with:  dune exec examples/estimate_sensitivity.exe *)

module Rng = Mp_prelude.Rng
module Task = Mp_dag.Task
module Dag = Mp_dag.Dag
module Dag_gen = Mp_dag.Dag_gen
module Log_model = Mp_workload.Log_model
module Reservation_gen = Mp_workload.Reservation_gen
module Env = Mp_core.Env
module Ressched = Mp_core.Ressched
module Schedule = Mp_cpa.Schedule
module Executor = Mp_sim.Executor

(* Scale every task's sequential time: scheduling this inflated DAG books
   each reservation for factor x the true execution time. *)
let inflate dag factor =
  let tasks =
    Array.map (fun (tk : Task.t) -> { tk with Task.seq = tk.seq *. factor }) (Dag.tasks dag)
  in
  Dag.make tasks (Dag.edges dag)

let () =
  let rng = Rng.create 5 in
  let dag = Dag_gen.generate rng { Dag_gen.default with n = 30 } in

  (* a CTC-like machine with phi = 0.2 tagged reservations *)
  let preset = Log_model.ctc_sp2 in
  let jobs = Log_model.generate rng ~days:30 preset in
  let at = Reservation_gen.random_instant rng jobs in
  let tagged = Reservation_gen.tag rng ~phi:0.2 jobs in
  let rg = Reservation_gen.extract rng Reservation_gen.Expo ~procs:preset.cpus ~at tagged in
  let env = Env.make ~calendar:(Reservation_gen.calendar rg) ~q:(Reservation_gen.historical_average rg) in

  Format.printf "%-7s  %12s %13s  %10s %9s  %8s@." "factor" "planned[h]" "realized[h]"
    "billed[h]" "used[h]" "waste[%]";
  Format.printf "-----------------------------------------------------------------@.";
  List.iter
    (fun factor ->
      let estimated = inflate dag factor in
      let sched = Ressched.schedule env estimated in
      (match Schedule.validate estimated ~base:env.calendar sched with
      | Ok () -> ()
      | Error msg -> failwith msg);
      (* replay with the true durations *)
      let actual i = Task.exec_time (Dag.task dag i) (Schedule.procs sched i) in
      let o = Executor.run dag sched ~actual in
      assert (Executor.success o);
      Format.printf "%-7.2f  %12.2f %13.2f  %10.1f %9.1f  %8.1f@." factor
        (float_of_int (Schedule.turnaround sched) /. 3600.)
        (float_of_int o.realized_turnaround /. 3600.)
        o.billed_cpu_hours o.used_cpu_hours
        (100. *. Executor.waste o))
    [ 1.0; 1.25; 1.5; 2.0; 3.0 ]
