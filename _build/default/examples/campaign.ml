(* A morning's worth of workflow submissions on one reserved cluster.

   Each application is scheduled with the paper's BD_CPAR algorithm
   against the calendar left behind by everyone before it — the natural
   deployment loop of the paper's single-application scheduler
   (Mp_sim.Campaign).

   Run with:  dune exec examples/campaign.exe *)

module Rng = Mp_prelude.Rng
module Dag_gen = Mp_dag.Dag_gen
module Workflows = Mp_dag.Workflows
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Env = Mp_core.Env
module Campaign = Mp_sim.Campaign
module Schedule = Mp_cpa.Schedule

let () =
  let rng = Rng.create 13 in
  (* a 64-processor cluster with some pre-existing reservations *)
  let calendar =
    Calendar.of_reservations ~procs:64
      [
        Reservation.make ~start:7_200 ~finish:21_600 ~procs:24;
        Reservation.make ~start:43_200 ~finish:86_400 ~procs:64;
      ]
  in
  let env = Env.make ~calendar ~q:40. in

  (* five applications arriving through the morning *)
  let arrivals =
    [
      { Campaign.at = 0; dag = Dag_gen.generate rng { Dag_gen.default with n = 30 } };
      { Campaign.at = 1_800; dag = Workflows.fft (Rng.split rng) ~m:4 () };
      { Campaign.at = 3_600; dag = Workflows.gaussian (Rng.split rng) ~n:8 () };
      { Campaign.at = 7_200; dag = Dag_gen.generate rng { Dag_gen.default with n = 20; width = 0.8 } };
      { Campaign.at = 10_800; dag = Workflows.wavefront (Rng.split rng) ~rows:5 ~cols:5 () };
    ]
  in
  let c = Campaign.run env arrivals in

  Format.printf "%-4s %10s %14s %11s@." "app" "arrival[h]" "turn-around[h]" "CPU-hours";
  Format.printf "-------------------------------------------@.";
  List.iteri
    (fun i (a : Campaign.app_result) ->
      Format.printf "%-4d %10.2f %14.2f %11.1f@." (i + 1)
        (float_of_int a.arrival /. 3600.)
        (float_of_int a.turnaround /. 3600.)
        a.cpu_hours)
    c.apps;
  Format.printf "@.campaign makespan: %.2f h, total CPU-hours: %.1f@."
    (float_of_int c.makespan /. 3600.)
    c.total_cpu_hours;
  Format.printf "cluster availability over the day after the last arrival: %.1f of %d@."
    (Calendar.average_available c.final_calendar ~from_:10_800 ~until:(10_800 + 86_400))
    64
