(* Image-processing workflow (the paper's motivating example, Section 1):
   a DAG of image filters, where each filter is itself data-parallel.

   The pipeline processes a batch of sky-survey frames:

     ingest -> [per-band denoise x4] -> registration -> [filter bank x6]
            -> mosaic -> [source extraction x3] -> catalog

   We compare the paper's allocation-bounding strategies (BD_ALL, BD_HALF,
   BD_CPA, BD_CPAR) on a cluster carrying a realistic synthetic reservation
   load, reproducing Table 4's finding in miniature: CPA-bounded
   allocations win on both turn-around time and CPU-hours.

   Run with:  dune exec examples/image_pipeline.exe *)

module Rng = Mp_prelude.Rng
module Task = Mp_dag.Task
module Dag = Mp_dag.Dag
module Log_model = Mp_workload.Log_model
module Reservation_gen = Mp_workload.Reservation_gen
module Env = Mp_core.Env
module Bound = Mp_core.Bound
module Ressched = Mp_core.Ressched
module Schedule = Mp_cpa.Schedule

(* Build the filter-pipeline DAG.  Fan-out stages are data-parallel tasks
   with low alpha (they tile well); reduction stages are more sequential. *)
let pipeline () =
  let tasks = ref [] and edges = ref [] and next = ref 0 in
  let task ~seq ~alpha =
    let id = !next in
    incr next;
    tasks := Task.make ~id ~seq ~alpha :: !tasks;
    id
  in
  let stage ~from_ ~n ~seq ~alpha =
    List.init n (fun _ ->
        let id = task ~seq ~alpha in
        List.iter (fun src -> edges := (src, id) :: !edges) from_;
        id)
  in
  let ingest = task ~seq:2_000. ~alpha:0.30 in
  let denoise = stage ~from_:[ ingest ] ~n:4 ~seq:9_000. ~alpha:0.04 in
  let register = task ~seq:4_000. ~alpha:0.25 in
  List.iter (fun d -> edges := (d, register) :: !edges) denoise;
  let filters = stage ~from_:[ register ] ~n:6 ~seq:12_000. ~alpha:0.06 in
  let mosaic = task ~seq:6_000. ~alpha:0.35 in
  List.iter (fun f -> edges := (f, mosaic) :: !edges) filters;
  let extract = stage ~from_:[ mosaic ] ~n:3 ~seq:8_000. ~alpha:0.08 in
  let catalog = task ~seq:1_500. ~alpha:0.50 in
  List.iter (fun e -> edges := (e, catalog) :: !edges) extract;
  let arr = Array.of_list (List.rev !tasks) in
  Dag.make arr !edges

let () =
  let dag = pipeline () in
  Format.printf "Pipeline: %d filter tasks, %d dependencies@.@." (Dag.n dag) (Dag.n_edges dag);

  (* Competing load: a CTC_SP2-like machine where 20%% of the batch jobs
     hold advance reservations (the "expo" future-decay model). *)
  let rng = Rng.create 2024 in
  let preset = Log_model.ctc_sp2 in
  let jobs = Log_model.generate rng ~days:30 preset in
  let at = Reservation_gen.random_instant rng jobs in
  let tagged = Reservation_gen.tag rng ~phi:0.2 jobs in
  let rg = Reservation_gen.extract rng Reservation_gen.Expo ~procs:preset.cpus ~at tagged in
  let env = Env.make ~calendar:(Reservation_gen.calendar rg) ~q:(Reservation_gen.historical_average rg) in
  Format.printf "Cluster: %d processors, %d competing future reservations, q=%d@.@." env.p
    (List.length rg.future) env.q;

  Format.printf "%-8s  %14s  %10s@." "bound" "turn-around[h]" "CPU-hours";
  Format.printf "------------------------------------@.";
  List.iter
    (fun bd ->
      let sched = Ressched.schedule ~bd env dag in
      (match Schedule.validate dag ~base:env.calendar sched with
      | Ok () -> ()
      | Error msg -> failwith msg);
      Format.printf "%-8s  %14.2f  %10.1f@." (Bound.name bd)
        (float_of_int (Schedule.turnaround sched) /. 3600.)
        (Schedule.cpu_hours sched))
    Bound.all
