(* Heterogeneous multi-cluster scheduling (the paper's future-work
   direction, Section 7, built on the HCPA idea).

   A three-site grid: a small fast cluster, a mid-size one, and a big slow
   one, each carrying its own advance reservations.  We schedule a
   mixed-parallel workflow across all three and compare unbounded
   allocation (HBD_ALL) with CPA-bounded allocation computed against the
   grid's speed-weighted available capacity (HBD_CPAR).

   Run with:  dune exec examples/multi_cluster.exe *)

module Rng = Mp_prelude.Rng
module Dag_gen = Mp_dag.Dag_gen
module Grid = Mp_platform.Grid
module Reservation = Mp_platform.Reservation
module Hressched = Mp_core.Hressched

let competing rng n ~procs =
  let rec go acc cal k =
    if k = 0 then acc
    else begin
      let start = Rng.int rng 86_400 in
      let dur = 1_800 + Rng.int rng 14_400 in
      let r = Reservation.make ~start ~finish:(start + dur) ~procs:(1 + Rng.int rng (procs / 2)) in
      match Mp_platform.Calendar.reserve_opt cal r with
      | Some cal -> go (r :: acc) cal (k - 1)
      | None -> go acc cal (k - 1)
    end
  in
  go [] (Mp_platform.Calendar.create ~procs) n

let () =
  let rng = Rng.create 31 in
  let grid =
    Grid.make
      [
        ({ Grid.name = "alpha (fast)"; procs = 32; speed = 2.0 }, competing rng 6 ~procs:32);
        ({ Grid.name = "beta"; procs = 64; speed = 1.0 }, competing rng 10 ~procs:64);
        ({ Grid.name = "gamma (slow, big)"; procs = 128; speed = 0.5 }, competing rng 12 ~procs:128);
      ]
  in
  Format.printf "%a@." Grid.pp grid;
  Format.printf "Reference capacity (speed-weighted): %d processor-equivalents@.@."
    (Grid.reference_procs grid);

  let dag = Dag_gen.generate rng { Dag_gen.default with n = 40 } in
  Format.printf "Workflow: %d tasks, %d edges@.@." (Mp_dag.Dag.n dag) (Mp_dag.Dag.n_edges dag);

  List.iter
    (fun bd ->
      let sched = Hressched.schedule ~bd grid dag in
      (match Hressched.validate grid dag sched with
      | Ok () -> ()
      | Error msg -> failwith msg);
      let per_site = Array.make (Grid.n_sites grid) 0 in
      Array.iter (fun (s : Hressched.slot) -> per_site.(s.site) <- per_site.(s.site) + 1) sched.slots;
      Format.printf "%-9s turn-around %6.2f h   CPU-hours %7.1f   tasks per site:"
        (Hressched.bound_name bd)
        (float_of_int (Hressched.turnaround sched) /. 3600.)
        (Hressched.cpu_hours sched);
      Array.iteri (fun i c -> Format.printf " %s=%d" (Grid.site grid i).Grid.name c) per_site;
      Format.printf "@.")
    [ Hressched.HBD_ALL; HBD_CPAR ]
