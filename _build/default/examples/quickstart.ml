(* Quickstart: schedule a small mixed-parallel workflow on a cluster that
   already has advance reservations from other users.

   Run with:  dune exec examples/quickstart.exe *)

module Task = Mp_dag.Task
module Dag = Mp_dag.Dag
module Reservation = Mp_platform.Reservation
module Calendar = Mp_platform.Calendar
module Env = Mp_core.Env
module Ressched = Mp_core.Ressched
module Schedule = Mp_cpa.Schedule

let () =
  (* A five-task workflow: prepare, then three data-parallel analyses that
     can run concurrently, then a merge.  Each task is moldable: [seq] is
     its one-processor time in seconds and [alpha] its non-parallelizable
     fraction (Amdahl's law). *)
  let tasks =
    [|
      Task.make ~id:0 ~seq:1_800. ~alpha:0.05 (* prepare: 30 min *);
      Task.make ~id:1 ~seq:14_400. ~alpha:0.10 (* analysis A: 4 h *);
      Task.make ~id:2 ~seq:10_800. ~alpha:0.05 (* analysis B: 3 h *);
      Task.make ~id:3 ~seq:7_200. ~alpha:0.20 (* analysis C: 2 h *);
      Task.make ~id:4 ~seq:3_600. ~alpha:0.15 (* merge: 1 h *);
    |]
  in
  let dag = Dag.make tasks [ (0, 1); (0, 2); (0, 3); (1, 4); (2, 4); (3, 4) ] in

  (* A 32-processor cluster.  Two competing reservations already sit in the
     calendar: a 16-proc block in 1-2 h from now and a full-machine
     maintenance window tonight. *)
  let calendar =
    Calendar.of_reservations ~procs:32
      [
        Reservation.make ~start:3_600 ~finish:7_200 ~procs:16;
        Reservation.make ~start:36_000 ~finish:43_200 ~procs:32;
      ]
  in
  let env = Env.make ~calendar ~q:20. in

  (* BL_CPAR + BD_CPAR is the paper's recommended RESSCHED algorithm. *)
  let sched = Ressched.schedule env dag in

  (match Schedule.validate dag ~base:calendar sched with
  | Ok () -> ()
  | Error msg -> failwith msg);

  Format.printf "Schedule (one advance reservation per task):@.%a@." Schedule.pp sched;
  Format.printf "Turn-around time: %.2f hours@."
    (float_of_int (Schedule.turnaround sched) /. 3600.);
  Format.printf "CPU-hours consumed: %.1f@." (Schedule.cpu_hours sched)
