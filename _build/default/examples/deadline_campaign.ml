(* Deadline-driven campaign (problem RESSCHEDDL, Section 5).

   An overnight forecasting workflow must complete before 07:00, i.e.
   within a hard deadline.  We

     1. find, for each deadline algorithm, the tightest deadline it could
        promise on this cluster, and
     2. given the actual (loose) 07:00 deadline, show how many CPU-hours
        the resource-conservative algorithms save compared to the
        aggressive ones — the paper's Table 6/7 story.

   Run with:  dune exec examples/deadline_campaign.exe *)

module Rng = Mp_prelude.Rng
module Dag_gen = Mp_dag.Dag_gen
module Grid5000 = Mp_workload.Grid5000
module Reservation_gen = Mp_workload.Reservation_gen
module Env = Mp_core.Env
module Algo = Mp_core.Algo
module Deadline = Mp_core.Deadline
module Schedule = Mp_cpa.Schedule

let () =
  let rng = Rng.create 7 in

  (* The forecast workflow: 40 moldable tasks, moderately wide. *)
  let dag = Dag_gen.generate rng { Dag_gen.default with n = 40; width = 0.4; alpha = 0.15 } in

  (* The cluster is a Grid'5000-style site with existing reservations. *)
  let g = Grid5000.generate (Rng.split rng) ~days:30 () in
  let at = Reservation_gen.random_instant rng g.jobs in
  let rg = Reservation_gen.extract rng Reservation_gen.Real ~procs:g.cpus ~at g.jobs in
  let env = Env.make ~calendar:(Reservation_gen.calendar rg) ~q:(Reservation_gen.historical_average rg) in
  Format.printf "Cluster: %d processors, %d known future reservations, q=%d@.@." env.p
    (List.length rg.future) env.q;

  (* 1. Tightest promise each algorithm can make. *)
  Format.printf "%-16s  %18s@." "algorithm" "tightest deadline";
  Format.printf "-------------------------------------@.";
  let tightest =
    List.map
      (fun (a : Algo.deadline) ->
        let t = Deadline.tightest (fun ~deadline -> a.run env dag ~deadline) env dag in
        (match t with
        | Some (k, _) -> Format.printf "%-16s  %15.2f h@." a.name (float_of_int k /. 3600.)
        | None -> Format.printf "%-16s  %18s@." a.name "(cannot commit)");
        (a, t))
      Algo.deadline_all
  in

  (* 2. The campaign's real deadline is loose: 07:00 tomorrow (say, twice
     the latest tightest deadline).  Aggressive algorithms burn CPU-hours
     anyway; resource-conservative ones shrink allocations. *)
  let latest =
    List.fold_left (fun acc (_, t) -> match t with Some (k, _) -> max acc k | None -> acc) 1 tightest
  in
  let deadline = 2 * latest in
  Format.printf "@.Campaign deadline: %.2f h from now.@.@." (float_of_int deadline /. 3600.);
  Format.printf "%-16s  %10s  %14s@." "algorithm" "CPU-hours" "turn-around[h]";
  Format.printf "---------------------------------------------@.";
  List.iter
    (fun (a : Algo.deadline) ->
      match a.run env dag ~deadline with
      | Some sched ->
          (match Schedule.validate dag ~base:env.calendar ~deadline sched with
          | Ok () -> ()
          | Error msg -> failwith msg);
          Format.printf "%-16s  %10.1f  %14.2f@." a.name (Schedule.cpu_hours sched)
            (float_of_int (Schedule.turnaround sched) /. 3600.)
      | None -> Format.printf "%-16s  %10s@." a.name "missed!")
    Algo.deadline_all
