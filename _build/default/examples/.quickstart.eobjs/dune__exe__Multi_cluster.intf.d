examples/multi_cluster.mli:
