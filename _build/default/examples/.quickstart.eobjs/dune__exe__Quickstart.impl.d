examples/quickstart.ml: Format Mp_core Mp_cpa Mp_dag Mp_platform
