examples/deadline_campaign.ml: Format List Mp_core Mp_cpa Mp_dag Mp_prelude Mp_workload
