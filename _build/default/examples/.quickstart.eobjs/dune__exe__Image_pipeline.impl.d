examples/image_pipeline.ml: Array Format List Mp_core Mp_cpa Mp_dag Mp_prelude Mp_workload
