examples/multi_cluster.ml: Array Format List Mp_core Mp_dag Mp_platform Mp_prelude
