examples/campaign.ml: Format List Mp_core Mp_cpa Mp_dag Mp_platform Mp_prelude Mp_sim
