examples/workflow_zoo.mli:
