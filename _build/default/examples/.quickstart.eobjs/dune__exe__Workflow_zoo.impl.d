examples/workflow_zoo.ml: Format List Mp_core Mp_cpa Mp_dag Mp_platform Mp_prelude
