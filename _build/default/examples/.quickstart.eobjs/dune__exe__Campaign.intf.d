examples/campaign.mli:
