examples/quickstart.mli:
