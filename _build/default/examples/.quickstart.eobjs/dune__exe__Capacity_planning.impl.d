examples/capacity_planning.ml: Filename Format List Mp_platform Mp_prelude Mp_workload Option String Sys
