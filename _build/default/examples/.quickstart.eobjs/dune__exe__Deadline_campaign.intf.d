examples/deadline_campaign.mli:
