examples/estimate_sensitivity.mli:
