(** Random DAG generator following the parameterization of Suter's `daggen`
    program, as used in the paper (Section 3.1, Table 1).

    Parameters and their semantics:

    - [n] — number of tasks (including the single entry and exit tasks).
    - [alpha] — upper bound of each task's non-parallelizable fraction;
      per-task [alpha_i ~ U(0, alpha)].
    - [width] — controls the DAG's maximum parallelism: the average number
      of tasks per level is [n ^ width].  Small values yield chain-like
      DAGs, large values fork-join-like DAGs.
    - [regularity] — uniformity of level sizes: level sizes are drawn
      uniformly within [±(1 - regularity)] of the average.
    - [density] — probability of an edge between tasks of adjacent levels.
    - [jump] — edges may span up to [jump] levels; [jump = 1] yields a
      layered DAG.  An edge spanning [k] levels is added with probability
      [density / k].

    Task sequential times are uniform in [\[60 s, 36 000 s\]] (1 minute to
    10 hours), as in the paper.

    Every non-entry task is guaranteed at least one predecessor in the
    previous level and every non-exit task at least one successor, and the
    whole graph is funnelled through dedicated entry/exit tasks so that the
    single-entry / single-exit assumption holds by construction. *)

type params = {
  n : int;
  alpha : float;
  width : float;
  regularity : float;
  density : float;
  jump : int;
}

val default : params
(** The paper's boldface defaults: [n = 50], [alpha = 0.2], [width = 0.5],
    [regularity = 0.5], [density = 0.5], [jump = 1]. *)

val table1 : (string * params list) list
(** The 40 application specifications of Table 1: for each parameter, the
    list of specs obtained by sweeping that parameter with all others at
    their default (5 + 4 + 9 + 9 + 9 + 4 entries, keyed by parameter
    name). *)

val validate : params -> unit
(** Raises [Invalid_argument] on out-of-range parameters ([n >= 3],
    [alpha/width/regularity/density] in [(0, 1\]], [jump >= 1]). *)

val generate : Mp_prelude.Rng.t -> params -> Dag.t
(** Draw a random DAG. *)

val pp_params : Format.formatter -> params -> unit
