type t = {
  tasks : Task.t array;
  succs : int array array;
  preds : int array array;
  entry : int;
  exit_ : int;
  topo : int array;
  n_edges : int;
}

let n t = Array.length t.tasks
let n_edges t = t.n_edges
let task t i = t.tasks.(i)
let tasks t = t.tasks
let succs t i = t.succs.(i)
let preds t i = t.preds.(i)
let entry t = t.entry
let exit_ t = t.exit_
let topological_order t = t.topo

let edges t =
  let acc = ref [] in
  for i = Array.length t.tasks - 1 downto 0 do
    Array.iter (fun j -> acc := (i, j) :: !acc) t.succs.(i)
  done;
  !acc

(* Kahn's algorithm; raises on cycles. *)
let topo_sort ~n ~succs ~preds =
  let indeg = Array.map Array.length preds in
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = Array.make n (-1) in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order.(!count) <- i;
    incr count;
    Array.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      succs.(i)
  done;
  if !count <> n then invalid_arg "Dag.make: graph has a cycle";
  order

let make tasks edge_list =
  let nb = Array.length tasks in
  if nb = 0 then invalid_arg "Dag.make: no tasks";
  Array.iteri (fun i (t : Task.t) -> if t.id <> i then invalid_arg "Dag.make: task id <> index") tasks;
  let seen = Hashtbl.create (List.length edge_list) in
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= nb || j < 0 || j >= nb then invalid_arg "Dag.make: edge out of range";
      if i = j then invalid_arg "Dag.make: self-loop";
      if Hashtbl.mem seen (i, j) then invalid_arg "Dag.make: duplicate edge";
      Hashtbl.add seen (i, j) ())
    edge_list;
  let succs_l = Array.make nb [] and preds_l = Array.make nb [] in
  List.iter
    (fun (i, j) ->
      succs_l.(i) <- j :: succs_l.(i);
      preds_l.(j) <- i :: preds_l.(j))
    edge_list;
  let sort_arr l = Array.of_list (List.sort compare l) in
  let succs = Array.map sort_arr succs_l and preds = Array.map sort_arr preds_l in
  let sources = ref [] and sinks = ref [] in
  for i = 0 to nb - 1 do
    if Array.length preds.(i) = 0 then sources := i :: !sources;
    if Array.length succs.(i) = 0 then sinks := i :: !sinks
  done;
  let entry =
    match !sources with [ e ] -> e | _ -> invalid_arg "Dag.make: DAG must have a single entry task"
  in
  let exit_ =
    match !sinks with [ x ] -> x | _ -> invalid_arg "Dag.make: DAG must have a single exit task"
  in
  let topo = topo_sort ~n:nb ~succs ~preds in
  { tasks; succs; preds; entry; exit_; topo; n_edges = List.length edge_list }

let sub t ~keep =
  if Array.length keep <> n t then invalid_arg "Dag.sub: keep length mismatch";
  let kept = ref [] in
  for i = n t - 1 downto 0 do
    if keep.(i) then kept := i :: !kept
  done;
  match !kept with
  | [] -> None
  | kept_list ->
      let kept = Array.of_list kept_list in
      let nk = Array.length kept in
      let new_of_old = Array.make (n t) (-1) in
      Array.iteri (fun new_i old_i -> new_of_old.(old_i) <- new_i) kept;
      let sub_edges = ref [] in
      Array.iter
        (fun old_i ->
          Array.iter
            (fun old_j -> if keep.(old_j) then sub_edges := (new_of_old.(old_i), new_of_old.(old_j)) :: !sub_edges)
            t.succs.(old_i))
        kept;
      (* Count sources and sinks of the restriction. *)
      let has_pred = Array.make nk false and has_succ = Array.make nk false in
      List.iter
        (fun (i, j) ->
          has_succ.(i) <- true;
          has_pred.(j) <- true)
        !sub_edges;
      let sources = ref [] and sinks = ref [] in
      for i = nk - 1 downto 0 do
        if not has_pred.(i) then sources := i :: !sources;
        if not has_succ.(i) then sinks := i :: !sinks
      done;
      let virtual_task id = Task.make ~id ~seq:1. ~alpha:0. in
      let tasks = ref (Array.to_list (Array.map (fun old_i -> t.tasks.(old_i)) kept)) in
      let mapping = ref (Array.to_list kept) in
      let next_id = ref nk in
      let add_virtual () =
        let id = !next_id in
        incr next_id;
        tasks := !tasks @ [ virtual_task id ];
        mapping := !mapping @ [ -1 ];
        id
      in
      (match !sources with
      | [ _ ] -> ()
      | many ->
          let e = add_virtual () in
          List.iter (fun s -> sub_edges := (e, s) :: !sub_edges) many);
      (match !sinks with
      | [ _ ] -> ()
      | many ->
          let x = add_virtual () in
          List.iter (fun s -> sub_edges := (s, x) :: !sub_edges) many);
      let tasks = Array.of_list !tasks in
      (* Re-id tasks to match their index. *)
      let tasks = Array.mapi (fun i (tk : Task.t) -> { tk with id = i }) tasks in
      let mapping = Array.of_list !mapping in
      Some (make tasks !sub_edges, mapping)

let pp ppf t =
  Format.fprintf ppf "@[<v>dag n=%d e=%d entry=%d exit=%d@," (n t) t.n_edges t.entry t.exit_;
  Array.iteri
    (fun i tk ->
      Format.fprintf ppf "  %a -> [%s]@," Task.pp tk
        (String.concat "," (Array.to_list (Array.map string_of_int t.succs.(i)))))
    t.tasks;
  Format.fprintf ppf "@]"

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dag {\n";
  Array.iteri
    (fun i (tk : Task.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  t%d [label=\"t%d\\n%.0fs a=%.2f\"];\n" i i tk.seq tk.alpha))
    t.tasks;
  List.iter (fun (i, j) -> Buffer.add_string buf (Printf.sprintf "  t%d -> t%d;\n" i j)) (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
