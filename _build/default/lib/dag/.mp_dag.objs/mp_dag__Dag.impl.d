lib/dag/dag.ml: Array Buffer Format Hashtbl List Printf Queue String Task
