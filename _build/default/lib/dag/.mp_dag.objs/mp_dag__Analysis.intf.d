lib/dag/analysis.mli: Dag
