lib/dag/dag_gen.mli: Dag Format Mp_prelude
