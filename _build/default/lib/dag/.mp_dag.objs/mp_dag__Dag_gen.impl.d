lib/dag/dag_gen.ml: Array Dag Float Format Hashtbl List Mp_prelude Task
