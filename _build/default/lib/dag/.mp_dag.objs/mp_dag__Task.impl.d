lib/dag/task.ml: Format List
