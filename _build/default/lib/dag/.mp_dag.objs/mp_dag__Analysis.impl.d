lib/dag/analysis.ml: Array Dag Float List Task
