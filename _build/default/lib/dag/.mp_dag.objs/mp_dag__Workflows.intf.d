lib/dag/workflows.mli: Dag Mp_prelude
