lib/dag/workflows.ml: Array Dag List Mp_prelude Task
