(** Classic parametric task graphs from the mixed-parallel scheduling
    literature, usable wherever a random {!Dag_gen} DAG is: Strassen
    matrix multiplication, FFT butterflies, Gaussian elimination,
    wavefront sweeps, fork-join pipelines.

    These structured shapes complement the random generator in examples
    and ablations, and stress schedulers differently (regular wide levels,
    long diagonals, shrinking parallelism).  Task sequential times are
    drawn uniformly from [\[60 s, 36 000 s\]] and Amdahl fractions from
    [\[0, alpha\]] (default 0.2), matching the paper's application model;
    every generator produces a single-entry/single-exit DAG. *)

val chain : Mp_prelude.Rng.t -> ?alpha:float -> n:int -> unit -> Dag.t
(** A linear pipeline of [n >= 2] tasks: no task parallelism at all. *)

val fork_join : Mp_prelude.Rng.t -> ?alpha:float -> branches:int -> stages:int -> unit -> Dag.t
(** [stages] successive parallel sections of [branches] independent tasks,
    separated by synchronization tasks (the bulk-synchronous pattern). *)

val fft : Mp_prelude.Rng.t -> ?alpha:float -> m:int -> unit -> Dag.t
(** The radix-2 FFT butterfly on [2^m] points: [m] full layers of [2^m]
    tasks each, every task depending on its own and its butterfly
    partner's predecessor ([1 <= m <= 8]). *)

val strassen : Mp_prelude.Rng.t -> ?alpha:float -> levels:int -> unit -> Dag.t
(** Strassen matrix multiplication unrolled [levels] deep: each multiply
    spawns 7 sub-multiplies whose results feed a combine task
    ([1 <= levels <= 4]; level [l] contributes [7^l] multiply tasks). *)

val gaussian : Mp_prelude.Rng.t -> ?alpha:float -> n:int -> unit -> Dag.t
(** Gaussian elimination on an [n x n] matrix ([n >= 2]): column pivots
    followed by trailing-column updates, with parallelism shrinking as the
    elimination proceeds. *)

val wavefront : Mp_prelude.Rng.t -> ?alpha:float -> rows:int -> cols:int -> unit -> Dag.t
(** A [rows x cols] dependency grid — cell (i, j) waits for (i-1, j) and
    (i, j-1) — as in dynamic-programming and LU sweeps; parallelism grows
    then shrinks along anti-diagonals. *)

val all_named : Mp_prelude.Rng.t -> (string * Dag.t) list
(** A representative instance of each shape (for examples and smoke
    tests). *)
