(** A moldable (data-parallel) task.

    Following the paper (Section 3.1), a task is fully specified by its
    sequential execution time [seq] (in seconds) and its non-parallelizable
    fraction [alpha]; its execution time on [np] processors follows
    Amdahl's law:

    {[ T(np) = seq * (alpha + (1 - alpha) / np) ]}

    rounded up to a whole second when placed in the calendar. *)

type t = { id : int; seq : float; alpha : float }

val make : id:int -> seq:float -> alpha:float -> t
(** Raises [Invalid_argument] unless [seq > 0] and [0 <= alpha <= 1]. *)

val exec_time : t -> int -> int
(** [exec_time t np] is the execution time in whole seconds on [np >= 1]
    processors (at least 1 s).  Non-increasing in [np]. *)

val exec_time_f : t -> int -> float
(** Un-rounded Amdahl execution time, used for bottom-level weights. *)

val alloc_candidates : t -> max_np:int -> int list
(** [alloc_candidates t ~max_np] is the ascending list of processor counts
    worth trying when placing this task: 1, plus every [np <= max_np]
    whose (rounded) execution time is strictly below every smaller
    count's.  Counts inside an Amdahl plateau are dominated by the
    plateau's first count — same duration, weaker availability
    requirement — so skipping them provably never changes which
    ⟨processors, start⟩ pair any of the schedulers picks. *)

val work : t -> int -> int
(** [np * exec_time t np]: CPU-seconds consumed on [np] processors.
    Non-decreasing in [np] (Amdahl's diminishing returns). *)

val speedup : t -> int -> float
(** [exec_time_f t 1 / exec_time_f t np]. *)

val pp : Format.formatter -> t -> unit
