(** Structural and temporal analysis of task DAGs: bottom levels, critical
    paths, and level decomposition.

    Weights are per-task execution times (floats, seconds); callers choose
    them according to an allocation (see {!Mp_dag.Task.exec_time_f}), which
    is exactly how the paper's BL_1 / BL_ALL / BL_CPA / BL_CPAR variants
    differ. *)

val bottom_levels : Dag.t -> weights:float array -> float array
(** [bottom_levels dag ~weights] gives, for each task, the maximum total
    weight of any path from that task (inclusive) to the exit task.
    Computed in reverse topological order, O(V + E). *)

val top_levels : Dag.t -> weights:float array -> float array
(** For each task, the maximum total weight of any path from the entry task
    to that task, {e excluding} the task itself (i.e. its earliest possible
    start when all allocations run with the given weights and unlimited
    processors). *)

val cp_length : Dag.t -> weights:float array -> float
(** Critical-path length = bottom level of the entry task. *)

val critical_path : Dag.t -> weights:float array -> int list
(** One critical path as a list of task indices from entry to exit. *)

val on_critical_path : Dag.t -> weights:float array -> bool array
(** [on_critical_path dag ~weights] marks every task [i] with
    [top_level(i) + bottom_level(i) = cp_length] (within a small
    tolerance). *)

val levels : Dag.t -> int array
(** Longest-path depth of each task from the entry (entry has level 0).
    This is the level decomposition used by the generator and by MCPA. *)

val level_widths : Dag.t -> int array
(** [level_widths dag].(l) is the number of tasks at depth [l]. *)

val width : Dag.t -> int
(** Maximum level width (the DAG's degree of task parallelism). *)

val total_work : Dag.t -> allocs:int array -> float
(** Sum over tasks of [np * exec_time np] in CPU-seconds. *)

val average_area : Dag.t -> allocs:int array -> p:int -> float
(** CPA's T_A: [total_work / p] — a lower bound on makespan by the area
    argument. *)
