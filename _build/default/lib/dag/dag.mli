(** Directed acyclic graph of moldable tasks.

    Vertices are tasks (Section 3.1 of the paper); an edge [(i, j)] means
    task [j] cannot start before task [i] completes.  Every DAG has a
    single entry task (no predecessors) and a single exit task (no
    successors); {!make} enforces this along with acyclicity. *)

type t

val make : Task.t array -> (int * int) list -> t
(** [make tasks edges] builds and validates a DAG.  Task ids must equal
    their index in the array.  Raises [Invalid_argument] when the edge list
    references unknown tasks, contains self-loops or duplicates, creates a
    cycle, or when the graph does not have exactly one entry and one exit
    vertex. *)

val n : t -> int
(** Number of tasks. *)

val n_edges : t -> int

val task : t -> int -> Task.t
val tasks : t -> Task.t array

val succs : t -> int -> int array
val preds : t -> int -> int array

val entry : t -> int
(** Index of the unique task with no predecessors. *)

val exit_ : t -> int
(** Index of the unique task with no successors. *)

val topological_order : t -> int array
(** Task indices in a topological order (entry first, exit last). *)

val edges : t -> (int * int) list

val sub : t -> keep:bool array -> (t * int array) option
(** [sub t ~keep] restricts the DAG to tasks with [keep.(i) = true],
    retaining edges between kept tasks, then re-wires entry/exit: a fresh
    zero-ish-weight entry (and/or exit) task is {e not} added; instead the
    subgraph is returned only when it already has a unique entry and exit
    after adding, when needed, virtual edges from the original unique
    source among kept tasks.  Returns [None] when no task is kept.  The
    second component maps new indices back to original indices.

    This is used by the resource-conservative deadline algorithms, which
    repeatedly compute CPA reference schedules for the not-yet-scheduled
    suffix of the DAG.  Because that suffix may have several sources or
    sinks, [sub] inserts lightweight virtual tasks as needed (1-second
    sequential time, fully parallel), which perturb reference start times
    by at most one second. *)

val pp : Format.formatter -> t -> unit

val to_dot : t -> string
(** GraphViz rendering (labels show sequential time and alpha). *)
