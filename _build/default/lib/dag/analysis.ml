let check_weights dag weights =
  if Array.length weights <> Dag.n dag then invalid_arg "Analysis: weights length mismatch"

let bottom_levels dag ~weights =
  check_weights dag weights;
  let nb = Dag.n dag in
  let bl = Array.make nb 0. in
  let topo = Dag.topological_order dag in
  for k = nb - 1 downto 0 do
    let i = topo.(k) in
    let best = Array.fold_left (fun acc j -> Float.max acc bl.(j)) 0. (Dag.succs dag i) in
    bl.(i) <- weights.(i) +. best
  done;
  bl

let top_levels dag ~weights =
  check_weights dag weights;
  let nb = Dag.n dag in
  let tl = Array.make nb 0. in
  let topo = Dag.topological_order dag in
  for k = 0 to nb - 1 do
    let i = topo.(k) in
    let best =
      Array.fold_left (fun acc j -> Float.max acc (tl.(j) +. weights.(j))) 0. (Dag.preds dag i)
    in
    tl.(i) <- best
  done;
  tl

let cp_length dag ~weights = (bottom_levels dag ~weights).(Dag.entry dag)

let critical_path dag ~weights =
  let bl = bottom_levels dag ~weights in
  let rec follow i acc =
    let acc = i :: acc in
    let succs = Dag.succs dag i in
    if Array.length succs = 0 then List.rev acc
    else begin
      let best =
        Array.fold_left
          (fun acc_j j -> match acc_j with Some b when bl.(b) >= bl.(j) -> acc_j | _ -> Some j)
          None succs
      in
      match best with Some j -> follow j acc | None -> assert false
    end
  in
  follow (Dag.entry dag) []

let on_critical_path dag ~weights =
  let bl = bottom_levels dag ~weights in
  let tl = top_levels dag ~weights in
  let cp = bl.(Dag.entry dag) in
  let eps = 1e-9 *. Float.max 1. cp in
  Array.init (Dag.n dag) (fun i -> Float.abs (tl.(i) +. bl.(i) -. cp) <= eps)

let levels dag =
  let nb = Dag.n dag in
  let lev = Array.make nb 0 in
  let topo = Dag.topological_order dag in
  for k = 0 to nb - 1 do
    let i = topo.(k) in
    Array.iter (fun j -> if lev.(i) + 1 > lev.(j) then lev.(j) <- lev.(i) + 1) (Dag.succs dag i)
  done;
  lev

let level_widths dag =
  let lev = levels dag in
  let depth = Array.fold_left max 0 lev in
  let widths = Array.make (depth + 1) 0 in
  Array.iter (fun l -> widths.(l) <- widths.(l) + 1) lev;
  widths

let width dag = Array.fold_left max 0 (level_widths dag)

let total_work dag ~allocs =
  if Array.length allocs <> Dag.n dag then invalid_arg "Analysis.total_work: allocs length mismatch";
  let sum = ref 0. in
  Array.iteri
    (fun i tk -> sum := !sum +. (float_of_int allocs.(i) *. Task.exec_time_f tk allocs.(i)))
    (Dag.tasks dag);
  !sum

let average_area dag ~allocs ~p =
  if p <= 0 then invalid_arg "Analysis.average_area: p <= 0";
  total_work dag ~allocs /. float_of_int p
