module Rng = Mp_prelude.Rng

(* Builder state shared by the generators: tasks accumulate in order, so a
   task's id equals its creation rank. *)
type builder = {
  rng : Rng.t;
  alpha : float;
  mutable tasks : Task.t list;  (** reversed *)
  mutable edges : (int * int) list;
  mutable next : int;
}

let builder rng alpha = { rng; alpha; tasks = []; edges = []; next = 0 }

let add_task b =
  let id = b.next in
  b.next <- id + 1;
  let seq = Rng.uniform b.rng 60. 36_000. in
  b.tasks <- Task.make ~id ~seq ~alpha:(Rng.uniform b.rng 0. b.alpha) :: b.tasks;
  id

let add_edge b i j = b.edges <- (i, j) :: b.edges

let finish b =
  let tasks = Array.of_list (List.rev b.tasks) in
  Dag.make tasks b.edges

(* Funnel a set of parentless / childless inner tasks through dedicated
   entry and exit tasks so the single-entry/exit invariant always holds. *)
let funnel b =
  let n = b.next in
  let has_pred = Array.make n false and has_succ = Array.make n false in
  List.iter
    (fun (i, j) ->
      has_succ.(i) <- true;
      has_pred.(j) <- true)
    b.edges;
  let sources = ref [] and sinks = ref [] in
  for i = n - 1 downto 0 do
    if not has_pred.(i) then sources := i :: !sources;
    if not has_succ.(i) then sinks := i :: !sinks
  done;
  (match !sources with
  | [ _ ] -> ()
  | many ->
      let e = add_task b in
      List.iter (fun s -> add_edge b e s) many);
  (match !sinks with
  | [ _ ] -> ()
  | many ->
      let x = add_task b in
      List.iter (fun s -> add_edge b s x) many);
  finish b

let chain rng ?(alpha = 0.2) ~n () =
  if n < 2 then invalid_arg "Workflows.chain: n < 2";
  let b = builder rng alpha in
  let ids = List.init n (fun _ -> add_task b) in
  List.iteri (fun k i -> if k > 0 then add_edge b (List.nth ids (k - 1)) i) ids;
  finish b

let fork_join rng ?(alpha = 0.2) ~branches ~stages () =
  if branches < 1 || stages < 1 then invalid_arg "Workflows.fork_join";
  let b = builder rng alpha in
  let entry = add_task b in
  let last_sync = ref entry in
  for _ = 1 to stages do
    let branch_ids = List.init branches (fun _ -> add_task b) in
    List.iter (fun i -> add_edge b !last_sync i) branch_ids;
    let sync = add_task b in
    List.iter (fun i -> add_edge b i sync) branch_ids;
    last_sync := sync
  done;
  finish b

let fft rng ?(alpha = 0.2) ~m () =
  if m < 1 || m > 8 then invalid_arg "Workflows.fft: m outside [1, 8]";
  let width = 1 lsl m in
  let b = builder rng alpha in
  (* layer 0 .. m, each of [width] tasks *)
  let layers =
    Array.init (m + 1) (fun _ -> Array.init width (fun _ -> add_task b))
  in
  for l = 1 to m do
    let stride = 1 lsl (l - 1) in
    for i = 0 to width - 1 do
      add_edge b layers.(l - 1).(i) layers.(l).(i);
      add_edge b layers.(l - 1).(i lxor stride) layers.(l).(i)
    done
  done;
  funnel b

let strassen rng ?(alpha = 0.2) ~levels () =
  if levels < 1 || levels > 4 then invalid_arg "Workflows.strassen: levels outside [1, 4]";
  let b = builder rng alpha in
  (* returns (root multiply task, combine task) of a sub-multiplication *)
  let rec multiply depth =
    let split = add_task b in
    let combine = add_task b in
    if depth = 0 then add_edge b split combine
    else
      for _ = 1 to 7 do
        let sub_split, sub_combine = multiply (depth - 1) in
        add_edge b split sub_split;
        add_edge b sub_combine combine
      done;
    (split, combine)
  in
  let (_ : int * int) = multiply (levels - 1) in
  funnel b

let gaussian rng ?(alpha = 0.2) ~n () =
  if n < 2 then invalid_arg "Workflows.gaussian: n < 2";
  let b = builder rng alpha in
  (* pivots.(k) and updates.(k).(j) for j > k *)
  let pivots = Array.init (n - 1) (fun _ -> add_task b) in
  let updates = Array.make_matrix (n - 1) n (-1) in
  for k = 0 to n - 2 do
    for j = k + 1 to n - 1 do
      updates.(k).(j) <- add_task b;
      add_edge b pivots.(k) updates.(k).(j);
      if k > 0 then add_edge b updates.(k - 1).(j) updates.(k).(j)
    done;
    if k > 0 then add_edge b updates.(k - 1).(k) pivots.(k)
  done;
  funnel b

let wavefront rng ?(alpha = 0.2) ~rows ~cols () =
  if rows < 1 || cols < 1 then invalid_arg "Workflows.wavefront";
  let b = builder rng alpha in
  let grid = Array.init rows (fun _ -> Array.init cols (fun _ -> add_task b)) in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if i > 0 then add_edge b grid.(i - 1).(j) grid.(i).(j);
      if j > 0 then add_edge b grid.(i).(j - 1) grid.(i).(j)
    done
  done;
  funnel b

let all_named rng =
  [
    ("chain-10", chain (Rng.split rng) ~n:10 ());
    ("fork-join-6x4", fork_join (Rng.split rng) ~branches:6 ~stages:4 ());
    ("fft-16", fft (Rng.split rng) ~m:4 ());
    ("strassen-2", strassen (Rng.split rng) ~levels:2 ());
    ("gaussian-8", gaussian (Rng.split rng) ~n:8 ());
    ("wavefront-5x5", wavefront (Rng.split rng) ~rows:5 ~cols:5 ());
  ]
