module Rng = Mp_prelude.Rng

type params = {
  n : int;
  alpha : float;
  width : float;
  regularity : float;
  density : float;
  jump : int;
}

let default = { n = 50; alpha = 0.2; width = 0.5; regularity = 0.5; density = 0.5; jump = 1 }

let table1 =
  let nine = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ] in
  [
    ("n", List.map (fun n -> { default with n }) [ 10; 25; 50; 75; 100 ]);
    ("alpha", List.map (fun alpha -> { default with alpha }) [ 0.05; 0.10; 0.15; 0.20 ]);
    ("width", List.map (fun width -> { default with width }) nine);
    ("density", List.map (fun density -> { default with density }) nine);
    ("regularity", List.map (fun regularity -> { default with regularity }) nine);
    ("jump", List.map (fun jump -> { default with jump }) [ 1; 2; 3; 4 ]);
  ]

let validate p =
  if p.n < 3 then invalid_arg "Dag_gen: n must be >= 3";
  let check name v = if v <= 0. || v > 1. then invalid_arg ("Dag_gen: " ^ name ^ " not in (0,1]") in
  check "alpha" p.alpha;
  check "width" p.width;
  check "regularity" p.regularity;
  check "density" p.density;
  if p.jump < 1 then invalid_arg "Dag_gen: jump must be >= 1"

(* Sequential times: 1 minute to 10 hours, uniform (Section 3.1). *)
let seq_min = 60.
let seq_max = 36_000.

let random_task rng p id =
  Task.make ~id ~seq:(Rng.uniform rng seq_min seq_max) ~alpha:(Rng.uniform rng 0. p.alpha)

(* Split [n] inner tasks into levels whose sizes average [n ^ width] with
   jitter controlled by regularity. *)
let draw_levels rng p n_inner =
  let avg = Float.max 1. (float_of_int p.n ** p.width) in
  let spread = (1. -. p.regularity) *. avg in
  let rec go acc remaining =
    if remaining = 0 then List.rev acc
    else begin
      let sz = Rng.uniform rng (avg -. spread) (avg +. spread) in
      let sz = max 1 (min remaining (int_of_float (Float.round sz))) in
      go (sz :: acc) (remaining - sz)
    end
  in
  go [] n_inner

let generate rng p =
  validate p;
  let n_inner = p.n - 2 in
  let level_sizes = draw_levels rng p n_inner in
  (* Assign indices: 0 = entry, 1..n-2 = inner tasks level by level,
     n-1 = exit. *)
  let entry = 0 and exit_ = p.n - 1 in
  let levels =
    let next = ref 1 in
    List.map
      (fun sz ->
        let ids = Array.init sz (fun k -> !next + k) in
        next := !next + sz;
        ids)
      level_sizes
  in
  let level_arr = Array.of_list levels in
  let n_levels = Array.length level_arr in
  let edges = ref [] in
  let has_pred = Array.make p.n false and has_succ = Array.make p.n false in
  let add_edge i j =
    edges := (i, j) :: !edges;
    has_succ.(i) <- true;
    has_pred.(j) <- true
  in
  let edge_set = Hashtbl.create (p.n * 4) in
  let add_edge_once i j =
    if not (Hashtbl.mem edge_set (i, j)) then begin
      Hashtbl.add edge_set (i, j) ();
      add_edge i j
    end
  in
  (* Random inter-level edges: span k levels with probability density / k. *)
  for lv = 1 to n_levels - 1 do
    for k = 1 to min p.jump lv do
      let prob = p.density /. float_of_int k in
      Array.iter
        (fun u ->
          Array.iter (fun v -> if Rng.bernoulli rng prob then add_edge_once u v) level_arr.(lv))
        level_arr.(lv - k)
    done
  done;
  (* Guarantee connectivity within the levels: every task of level lv > 0
     gets a predecessor in level lv-1 if it has none. *)
  for lv = 1 to n_levels - 1 do
    Array.iter
      (fun v -> if not (has_pred.(v)) then add_edge_once (Rng.sample rng level_arr.(lv - 1)) v)
      level_arr.(lv)
  done;
  (* Funnel through the entry and exit tasks. *)
  if n_levels > 0 then begin
    Array.iter (fun v -> if not has_pred.(v) then add_edge_once entry v) level_arr.(0);
    for lv = 0 to n_levels - 1 do
      Array.iter (fun v -> if not has_succ.(v) then add_edge_once v exit_) level_arr.(lv)
    done
  end
  else add_edge_once entry exit_;
  let tasks = Array.init p.n (fun id -> random_task rng p id) in
  Dag.make tasks !edges

let pp_params ppf p =
  Format.fprintf ppf "n=%d alpha=%.2f width=%.1f regularity=%.1f density=%.1f jump=%d" p.n p.alpha
    p.width p.regularity p.density p.jump
