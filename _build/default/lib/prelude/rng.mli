(** Deterministic pseudo-random number generator (SplitMix64).

    All randomness in the simulator flows through this module so that every
    experiment is exactly reproducible from a single integer seed.  The
    generator can be {!split} to derive independent streams, which lets
    scenario enumeration hand out per-instance generators without any
    ordering coupling between instances. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  [n] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val uniform : t -> float -> float -> float
(** [uniform t a b] is uniform in [\[a, b)].  Requires [a <= b]. *)

val uniform_int : t -> int -> int -> int
(** [uniform_int t a b] is uniform in the inclusive range [\[a, b\]]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian draw (Box-Muller). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [lognormal t ~mu ~sigma] is [exp] of a Gaussian with parameters
    [mu], [sigma] (parameters of the underlying normal). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose : t -> int -> k:int -> int list
(** [choose t n ~k] draws [k] distinct indices uniformly from [\[0, n)].
    Requires [0 <= k <= n]. *)
