(** Summary statistics used throughout the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty list. *)

val variance : float list -> float
(** Unbiased sample variance (0 for lists of length < 2). *)

val stddev : float list -> float
(** Square root of {!variance}. *)

val cv : float list -> float
(** Coefficient of variation, [stddev / |mean|].  0 when the mean is 0. *)

val median : float list -> float
(** Median (average of middle pair for even lengths). *)

val percentile : float list -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]], linear interpolation. *)

val minimum : float list -> float
val maximum : float list -> float

val correlation : float list -> float list -> float
(** Pearson correlation of two equal-length series.  0 when either series
    is constant. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  cv : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float list -> summary
(** One-pass summary of a non-empty list. *)

val pp_summary : Format.formatter -> summary -> unit
