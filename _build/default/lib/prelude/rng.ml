type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.mul (Int64.of_int seed) 0x2545F4914F6CDD1DL }
let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = int64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* The modulo bias is at most n / 2^63, negligible for simulation bounds. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int n))

let float01 t =
  Int64.to_float (Int64.shift_right_logical (int64 t) 11) *. 0x1.0p-53

let float t x = float01 t *. x

let uniform t a b =
  if a > b then invalid_arg "Rng.uniform: a > b";
  a +. (float01 t *. (b -. a))

let uniform_int t a b =
  if a > b then invalid_arg "Rng.uniform_int: a > b";
  a + int t (b - a + 1)

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = float01 t < p

let exponential t mean =
  let u = 1. -. float01 t in
  -.mean *. log u

let normal t ~mu ~sigma =
  let u1 = 1. -. float01 t and u2 = float01 t in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t a =
  if Array.length a = 0 then invalid_arg "Rng.sample: empty array";
  a.(int t (Array.length a))

let choose t n ~k =
  if k < 0 || k > n then invalid_arg "Rng.choose";
  let idx = Array.init n (fun i -> i) in
  shuffle t idx;
  Array.to_list (Array.sub idx 0 k)
