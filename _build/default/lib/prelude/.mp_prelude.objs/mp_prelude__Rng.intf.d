lib/prelude/rng.mli:
