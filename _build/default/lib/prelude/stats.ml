let mean = function
  | [] -> invalid_arg "Stats.mean: empty list"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let variance xs =
  let n = List.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    ss /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let cv xs =
  let m = mean xs in
  if Float.abs m < 1e-300 then 0. else stddev xs /. Float.abs m

let sorted xs = List.sort compare xs

let percentile xs p =
  match sorted xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | s ->
      let a = Array.of_list s in
      let n = Array.length a in
      if n = 1 then a.(0)
      else begin
        let rank = p /. 100. *. float_of_int (n - 1) in
        let lo = int_of_float (floor rank) in
        let hi = min (n - 1) (lo + 1) in
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
      end

let median xs = percentile xs 50.

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: xs -> List.fold_left max x xs

let correlation xs ys =
  let n = List.length xs in
  if n <> List.length ys then invalid_arg "Stats.correlation: length mismatch";
  if n < 2 then 0.
  else begin
    let mx = mean xs and my = mean ys in
    let sxy, sxx, syy =
      List.fold_left2
        (fun (sxy, sxx, syy) x y ->
          let dx = x -. mx and dy = y -. my in
          (sxy +. (dx *. dy), sxx +. (dx *. dx), syy +. (dy *. dy)))
        (0., 0., 0.) xs ys
    in
    if sxx < 1e-300 || syy < 1e-300 then 0. else sxy /. sqrt (sxx *. syy)
  end

type summary = {
  n : int;
  mean : float;
  stddev : float;
  cv : float;
  min : float;
  max : float;
  median : float;
}

let summarize xs =
  {
    n = List.length xs;
    mean = mean xs;
    stddev = stddev xs;
    cv = cv xs;
    min = minimum xs;
    max = maximum xs;
    median = median xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f cv=%.3f min=%.3f med=%.3f max=%.3f"
    s.n s.mean s.stddev s.cv s.min s.median s.max
