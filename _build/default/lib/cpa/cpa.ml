let schedule ?criterion ~p dag =
  let allocs = Allocation.allocate ?criterion ~p dag in
  Mapping.map dag ~allocs ~p

let makespan ?criterion ~p dag = Schedule.turnaround (schedule ?criterion ~p dag)
