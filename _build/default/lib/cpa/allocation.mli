(** Allocation phase of the CPA algorithm (Radulescu & van Gemund, ICPP'01).

    Starting from one processor per task, the allocation of the
    critical-path task with the largest relative execution-time reduction
    is repeatedly incremented, until the critical-path length [T_CP] no
    longer exceeds the average area [T_A = (Σ n_i · w_i(n_i)) / p].

    Two stopping criteria are provided:

    - [Classic] — exactly the above.
    - [Improved] — the behaviour of the modified criterion of N'Takpé,
      Suter & Casanova (ISPDC'07), which the paper adopts: over-allocation
      on wide DAGs is prevented by additionally capping each task's
      allocation at [⌈p / width(level(t))⌉] (an MCPA-inspired per-level
      fairness bound) and by ignoring increments whose relative gain is
      negligible.  See DESIGN.md ("Substitutions") for the rationale. *)

type criterion = Classic | Improved

val allocate : ?criterion:criterion -> p:int -> Mp_dag.Dag.t -> int array
(** [allocate ~p dag] returns the per-task processor allocation, each in
    [\[1, p\]].  Default criterion is [Improved] (the paper's CPA).
    Raises [Invalid_argument] if [p < 1]. *)

val weights : Mp_dag.Dag.t -> allocs:int array -> float array
(** Execution-time weights (un-rounded) induced by an allocation; the
    input to bottom-level computations. *)
