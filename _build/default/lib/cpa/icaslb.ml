module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Analysis = Mp_dag.Analysis

let allocate_and_schedule ?(lookahead = 8) ~p dag =
  if p < 1 then invalid_arg "Icaslb: p < 1";
  if lookahead < 0 then invalid_arg "Icaslb: lookahead < 0";
  let nb = Dag.n dag in
  let tasks = Dag.tasks dag in
  let allocs = Array.make nb 1 in
  let schedule_current () = Mapping.map dag ~allocs ~p in
  let best_sched = ref (schedule_current ()) in
  let best_allocs = ref (Array.copy allocs) in
  let best_mk = ref (Schedule.turnaround !best_sched) in
  (* Grow the allocation of the critical-path task with the largest
     relative execution-time gain; evaluate the true makespan after each
     increment and keep searching through up to [lookahead] non-improving
     steps. *)
  let rec step no_improve =
    if no_improve > lookahead then ()
    else begin
      let weights = Array.mapi (fun i tk -> Task.exec_time_f tk allocs.(i)) tasks in
      let bl = Analysis.bottom_levels dag ~weights in
      let tl = Analysis.top_levels dag ~weights in
      let t_cp = bl.(Dag.entry dag) in
      let eps = 1e-9 *. Float.max 1. t_cp in
      let candidate = ref None in
      for i = 0 to nb - 1 do
        if Float.abs (tl.(i) +. bl.(i) -. t_cp) <= eps && allocs.(i) < p then begin
          let gain = (weights.(i) -. Task.exec_time_f tasks.(i) (allocs.(i) + 1)) /. weights.(i) in
          if gain > 1e-9 then begin
            match !candidate with
            | Some (_, g) when g >= gain -> ()
            | _ -> candidate := Some (i, gain)
          end
        end
      done;
      match !candidate with
      | None -> () (* the critical path cannot be shortened further *)
      | Some (i, _) ->
          allocs.(i) <- allocs.(i) + 1;
          let sched = schedule_current () in
          let mk = Schedule.turnaround sched in
          if mk < !best_mk then begin
            best_mk := mk;
            best_sched := sched;
            best_allocs := Array.copy allocs;
            step 0
          end
          else step (no_improve + 1)
    end
  in
  step 0;
  (!best_allocs, !best_sched)

let schedule ?lookahead ~p dag = snd (allocate_and_schedule ?lookahead ~p dag)
