module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Analysis = Mp_dag.Analysis

let allocate ~p dag =
  if p < 1 then invalid_arg "Mcpa.allocate: p < 1";
  let nb = Dag.n dag in
  let allocs = Array.make nb 1 in
  let lev = Analysis.levels dag in
  let n_levels = 1 + Array.fold_left max 0 lev in
  let level_total = Array.make n_levels 0 in
  Array.iter (fun l -> level_total.(l) <- level_total.(l) + 1) lev;
  let tasks = Dag.tasks dag in
  let w = Array.mapi (fun i tk -> Task.exec_time_f tk allocs.(i)) tasks in
  let total_work = ref 0. in
  Array.iteri (fun i wi -> total_work := !total_work +. (float_of_int allocs.(i) *. wi)) w;
  let rec loop () =
    let bl = Analysis.bottom_levels dag ~weights:w in
    let tl = Analysis.top_levels dag ~weights:w in
    let t_cp = bl.(Dag.entry dag) in
    let t_a = !total_work /. float_of_int p in
    if t_cp <= t_a then ()
    else begin
      let eps = 1e-9 *. Float.max 1. t_cp in
      let best = ref None in
      for i = 0 to nb - 1 do
        let level_ok = level_total.(lev.(i)) < p in
        if Float.abs (tl.(i) +. bl.(i) -. t_cp) <= eps && allocs.(i) < p && level_ok then begin
          let cur = w.(i) in
          let nxt = Task.exec_time_f tasks.(i) (allocs.(i) + 1) in
          let gain = (cur -. nxt) /. cur in
          if gain > 0. then begin
            match !best with Some (_, g) when g >= gain -> () | _ -> best := Some (i, gain)
          end
        end
      done;
      match !best with
      | None -> ()
      | Some (i, _) ->
          total_work := !total_work -. (float_of_int allocs.(i) *. w.(i));
          allocs.(i) <- allocs.(i) + 1;
          level_total.(lev.(i)) <- level_total.(lev.(i)) + 1;
          w.(i) <- Task.exec_time_f tasks.(i) allocs.(i);
          total_work := !total_work +. (float_of_int allocs.(i) *. w.(i));
          loop ()
    end
  in
  loop ();
  allocs

let schedule ~p dag = Mapping.map dag ~allocs:(allocate ~p dag) ~p
