(** Mapping phase of CPA: list scheduling with fixed allocations on an
    otherwise empty cluster of [p] processors.

    Tasks are placed in decreasing bottom-level order (with the
    allocation-induced weights) at the earliest time compatible with their
    predecessors and with processor availability.  Because weights are
    positive, decreasing bottom level is a topological order, so every
    predecessor is placed before its successors. *)

val bl_order : Mp_dag.Dag.t -> weights:float array -> int array
(** Task indices sorted by decreasing bottom level (ties by index).  This
    is a valid topological order for positive weights. *)

val map : Mp_dag.Dag.t -> allocs:int array -> p:int -> Schedule.t
(** [map dag ~allocs ~p] list-schedules the DAG.  Raises
    [Invalid_argument] when an allocation exceeds [p]. *)

val map_subset : Mp_dag.Dag.t -> allocs:int array -> p:int -> keep:bool array -> int array option
(** [map_subset dag ~allocs ~p ~keep] builds the reference schedule the
    resource-conservative deadline algorithms need: the sub-DAG of kept
    tasks is scheduled from time 0 (virtual entry/exit tasks are inserted
    when the restriction is not single-entry/single-exit), and the start
    time of each kept task is returned ([-1] for dropped tasks).  [None]
    when nothing is kept. *)
