(** Gantt-chart rendering of schedules: which processors run what, when.

    Schedules (and the availability calendar) only track processor
    {e counts}; for display, concrete processor indices are assigned
    greedily in start-time order (first-fit over free processors), which
    is always possible because schedules are capacity-feasible.

    Both renderers draw the competing reservations (dimmed / ['#']) and
    the application's tasks (labelled) on a cluster of [procs]
    processors. *)

type item = {
  label : string;
  start : int;
  finish : int;
  procs : int;
  competing : bool;
}

val items :
  competing:Mp_platform.Reservation.t list -> Schedule.t -> item list
(** The drawing list: one item per competing reservation and per task
    (labelled ["t<i>"]), in start order. *)

val ascii :
  ?width:int -> ?max_rows:int -> procs:int ->
  competing:Mp_platform.Reservation.t list -> Schedule.t -> string
(** Text rendering: one row per processor (at most [max_rows], default
    40 — larger clusters are down-sampled), [width] (default 100) time
    columns covering the busy span.  Tasks print as letters (cycling
    a-z, A-Z), competing reservations as ['#'], idle as ['.']. *)

val svg :
  ?width:int -> ?row_height:int -> procs:int ->
  competing:Mp_platform.Reservation.t list -> Schedule.t -> string
(** Standalone SVG document ([width] px wide, default 960; [row_height]
    px per processor, default 10): competing reservations in grey, tasks
    in a rotating palette with their labels, hour grid lines. *)
