module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Reservation = Mp_platform.Reservation
module Calendar = Mp_platform.Calendar

type slot = { start : int; finish : int; procs : int }
type t = { slots : slot array }

let slot t i = t.slots.(i)
let start t i = t.slots.(i).start
let finish t i = t.slots.(i).finish
let procs t i = t.slots.(i).procs
let turnaround t = Array.fold_left (fun acc s -> max acc s.finish) 0 t.slots
let earliest_start t = Array.fold_left (fun acc s -> min acc s.start) max_int t.slots

let cpu_seconds t =
  Array.fold_left (fun acc s -> acc + (s.procs * (s.finish - s.start))) 0 t.slots

let cpu_hours t = float_of_int (cpu_seconds t) /. 3600.

let reservations t =
  let rs =
    Array.to_list
      (Array.map (fun s -> Reservation.make ~start:s.start ~finish:s.finish ~procs:s.procs) t.slots)
  in
  List.sort Reservation.compare_by_start rs

let validate dag ~base ?deadline t =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let* () =
    if Array.length t.slots <> Dag.n dag then err "slot count %d <> task count %d"
        (Array.length t.slots) (Dag.n dag)
    else Ok ()
  in
  let p = Calendar.procs base in
  let check_task i acc =
    let* () = acc in
    let s = t.slots.(i) in
    let tk = Dag.task dag i in
    if s.procs < 1 || s.procs > p then err "task %d: procs %d outside [1, %d]" i s.procs p
    else if s.start < 0 then err "task %d: starts before now (%d)" i s.start
    else if s.finish - s.start < Task.exec_time tk s.procs then
      err "task %d: duration %d < execution time %d on %d procs" i (s.finish - s.start)
        (Task.exec_time tk s.procs) s.procs
    else Ok ()
  in
  let* () =
    let acc = ref (Ok ()) in
    for i = 0 to Dag.n dag - 1 do
      acc := check_task i !acc
    done;
    !acc
  in
  let* () =
    let acc = ref (Ok ()) in
    List.iter
      (fun (i, j) ->
        match !acc with
        | Error _ -> ()
        | Ok () ->
            if t.slots.(i).finish > t.slots.(j).start then
              acc := err "precedence violated: task %d finishes at %d, successor %d starts at %d" i
                  t.slots.(i).finish j t.slots.(j).start)
      (Dag.edges dag);
    !acc
  in
  let* () =
    try
      let (_ : Calendar.t) = List.fold_left Calendar.reserve base (reservations t) in
      Ok ()
    with Calendar.Overcommitted r -> err "capacity exceeded by reservation %a" Reservation.pp r
  in
  match deadline with
  | Some k when turnaround t > k -> err "deadline %d missed: finishes at %d" k (turnaround t)
  | _ -> Ok ()

let to_json ?(competing = []) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"turnaround\": %d, \"cpu_hours\": %.3f, \"tasks\": [" (turnaround t)
       (cpu_hours t));
  Array.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "{\"id\": %d, \"start\": %d, \"finish\": %d, \"procs\": %d}" i s.start
           s.finish s.procs))
    t.slots;
  Buffer.add_string buf "], \"competing\": [";
  List.iteri
    (fun i (r : Reservation.t) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "{\"start\": %d, \"finish\": %d, \"procs\": %d}" r.start r.finish r.procs))
    competing;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i s -> Format.fprintf ppf "t%-3d [%d, %d) x%d@," i s.start s.finish s.procs)
    t.slots;
  Format.fprintf ppf "turnaround=%d cpu-hours=%.1f@]" (turnaround t) (cpu_hours t)
