(** A complete schedule for a DAG: one reservation (start, finish,
    processor count) per task.

    Produced both by the no-reservation CPA mapping phase and by the
    advance-reservation algorithms of [Mp_core]; shared here so they can be
    validated and measured uniformly. *)

type slot = { start : int; finish : int; procs : int }

type t = { slots : slot array }

val slot : t -> int -> slot
val start : t -> int -> int
val finish : t -> int -> int
val procs : t -> int -> int

val turnaround : t -> int
(** Latest finish time.  Since the scheduling instant is time 0, this is
    the application turn-around time (problem RESSCHED's objective). *)

val earliest_start : t -> int

val cpu_seconds : t -> int
(** Σ procs × duration over all tasks. *)

val cpu_hours : t -> float
(** The paper's resource-consumption metric. *)

val reservations : t -> Mp_platform.Reservation.t list
(** The schedule's slots as reservations, in start order. *)

val validate :
  Mp_dag.Dag.t -> base:Mp_platform.Calendar.t -> ?deadline:int -> t -> (unit, string) result
(** Check that the schedule is feasible: every slot has [procs >= 1] within
    the cluster size and a duration covering its task's execution time on
    that many processors; every task starts at or after time 0; precedence
    constraints hold ([finish pred <= start succ]); all slots together fit
    the base calendar's remaining capacity; and, when [deadline] is given,
    the latest finish is at most the deadline. *)

val pp : Format.formatter -> t -> unit

val to_json : ?competing:Mp_platform.Reservation.t list -> t -> string
(** Machine-readable rendering for interop with external tooling:
    {v {"turnaround": …, "cpu_hours": …,
        "tasks": [{"id", "start", "finish", "procs"} …],
        "competing": [{"start", "finish", "procs"} …]} v} *)
