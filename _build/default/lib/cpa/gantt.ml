module Reservation = Mp_platform.Reservation

type item = { label : string; start : int; finish : int; procs : int; competing : bool }

let items ~competing sched =
  let of_res (r : Reservation.t) =
    { label = "#"; start = r.start; finish = r.finish; procs = r.procs; competing = true }
  in
  let of_task i (s : Schedule.slot) =
    {
      label = "t" ^ string_of_int i;
      start = s.start;
      finish = s.finish;
      procs = s.procs;
      competing = false;
    }
  in
  let all =
    List.map of_res competing
    @ List.of_seq (Seq.mapi of_task (Array.to_seq sched.Schedule.slots))
  in
  List.sort (fun a b -> compare (a.start, a.finish) (b.start, b.finish)) all

(* First-fit assignment of concrete processor indices: for each item (start
   order) pick the [procs] first processors free at its start.  Capacity
   feasibility of the schedule guarantees enough of them.  Items whose
   interval starts before 0 are clipped for display. *)
let assign ~procs items =
  let busy_until = Array.make procs min_int in
  List.filter_map
    (fun it ->
      let rows = ref [] in
      let needed = ref it.procs in
      (try
         for p = 0 to procs - 1 do
           if !needed > 0 && busy_until.(p) <= it.start then begin
             rows := p :: !rows;
             busy_until.(p) <- it.finish;
             decr needed
           end
         done
       with Exit -> ());
      if !needed > 0 then None (* over-capacity input: skip rather than lie *)
      else Some (it, List.rev !rows))
    items

let span items =
  let lo = List.fold_left (fun acc it -> min acc (max 0 it.start)) max_int items in
  let hi = List.fold_left (fun acc it -> max acc it.finish) 0 items in
  if items = [] || lo >= hi then (0, 1) else (lo, hi)

let task_char =
  let letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ" in
  fun i -> letters.[i mod String.length letters]

let ascii ?(width = 100) ?(max_rows = 40) ~procs ~competing sched =
  if width < 10 then invalid_arg "Gantt.ascii: width < 10";
  let its = items ~competing sched in
  let placed = assign ~procs its in
  let lo, hi = span its in
  let scale t = (t - lo) * width / max 1 (hi - lo) in
  (* down-sample processors onto display rows *)
  let rows = min procs max_rows in
  let row_of p = p * rows / procs in
  let grid = Array.make_matrix rows width '.' in
  let task_index = ref 0 in
  List.iter
    (fun (it, ps) ->
      let c =
        if it.competing then '#'
        else begin
          let c = task_char !task_index in
          incr task_index;
          c
        end
      in
      let x0 = max 0 (scale (max lo it.start)) in
      let x1 = max (x0 + 1) (scale (min hi it.finish)) in
      List.iter
        (fun p ->
          let r = row_of p in
          for x = x0 to min (width - 1) (x1 - 1) do
            (* tasks overwrite idle and competing marks; never other tasks *)
            if grid.(r).(x) = '.' || (grid.(r).(x) = '#' && c <> '#') then grid.(r).(x) <- c
          done)
        ps)
    placed;
  let buf = Buffer.create ((rows + 2) * (width + 8)) in
  Buffer.add_string buf
    (Printf.sprintf "time %d .. %d s (%.1f h), %d processors on %d rows\n" lo hi
       (float_of_int (hi - lo) /. 3600.)
       procs rows);
  Array.iteri
    (fun r line ->
      Buffer.add_string buf (Printf.sprintf "%3d|" r);
      Buffer.add_string buf (String.init width (Array.get line));
      Buffer.add_char buf '\n')
    grid;
  Buffer.contents buf

let palette =
  [| "#4e79a7"; "#f28e2b"; "#59a14f"; "#e15759"; "#b07aa1"; "#76b7b2"; "#edc948"; "#ff9da7" |]

let svg ?(width = 960) ?(row_height = 10) ~procs ~competing sched =
  let its = items ~competing sched in
  let placed = assign ~procs its in
  let lo, hi = span its in
  let margin = 40 in
  let w = width - (2 * margin) in
  let scale t = margin + ((t - lo) * w / max 1 (hi - lo)) in
  let height = (procs * row_height) + 60 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" font-family=\"monospace\" font-size=\"9\">\n"
       width height);
  Buffer.add_string buf "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  (* hour grid *)
  let hour = 3600 in
  let first_hour = (lo + hour - 1) / hour * hour in
  let step =
    (* at most ~24 gridlines *)
    let hours_total = max 1 ((hi - lo) / hour) in
    max 1 (hours_total / 24) * hour
  in
  let t = ref first_hour in
  while !t <= hi do
    let x = scale !t in
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%d\" y1=\"20\" x2=\"%d\" y2=\"%d\" stroke=\"#dddddd\"/>\n<text x=\"%d\" y=\"14\" fill=\"#666666\">%dh</text>\n"
         x x (height - 30) x (!t / hour));
    t := !t + step
  done;
  let task_index = ref 0 in
  List.iter
    (fun (it, ps) ->
      let x0 = scale (max lo it.start) and x1 = scale (min hi it.finish) in
      let color =
        if it.competing then "#c0c0c0"
        else begin
          let c = palette.(!task_index mod Array.length palette) in
          incr task_index;
          c
        end
      in
      (* contiguous runs of processor rows render as one rectangle *)
      let rec runs = function
        | [] -> []
        | p :: rest ->
            let rec take q = function
              | r :: rest' when r = q + 1 -> take r rest'
              | rest' -> (q, rest')
            in
            let q, rest' = take p rest in
            (p, q) :: runs rest'
      in
      List.iter
        (fun (p0, p1) ->
          let y = 25 + (p0 * row_height) in
          let h = (p1 - p0 + 1) * row_height in
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" stroke=\"white\" stroke-width=\"0.5\"%s/>\n"
               x0 y
               (max 1 (x1 - x0))
               h color
               (if it.competing then " opacity=\"0.6\"" else ""));
          if (not it.competing) && x1 - x0 > 18 then
            Buffer.add_string buf
              (Printf.sprintf "<text x=\"%d\" y=\"%d\" fill=\"white\">%s</text>\n" (x0 + 2)
                 (y + row_height - 2) it.label))
        (runs ps))
    placed;
  Buffer.add_string buf
    (Printf.sprintf "<text x=\"%d\" y=\"%d\" fill=\"#333333\">%d processors, %d items</text>\n"
       margin (height - 10) procs (List.length placed));
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
