(** iCASLB — the one-step (integrated) processor allocation and scheduling
    algorithm of Vydyanathan et al. (ICPP 2006), which the paper names as
    the natural next candidate beyond CPA (Section 7, future work).

    Unlike CPA's two phases, iCASLB interleaves allocation and mapping: at
    each step it schedules the whole DAG with the current allocations
    (list scheduling with backfilling — our calendar's earliest-fit
    placement backfills by construction), then grows the allocation of the
    critical-path task with the best marginal benefit.  A {e look-ahead}
    keeps exploring a bounded number of non-improving increments so the
    search is not trapped in local minima, and the best schedule ever seen
    is returned.

    Provided as an extension and an ablation baseline against CPA. *)

val allocate_and_schedule :
  ?lookahead:int -> p:int -> Mp_dag.Dag.t -> int array * Schedule.t
(** [allocate_and_schedule ~p dag] returns the final allocations and the
    best schedule found.  [lookahead] (default 8) is the number of
    consecutive non-improving allocation increments tolerated before
    stopping. *)

val schedule : ?lookahead:int -> p:int -> Mp_dag.Dag.t -> Schedule.t
(** Just the schedule. *)
