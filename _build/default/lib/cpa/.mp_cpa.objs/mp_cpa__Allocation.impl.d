lib/cpa/allocation.ml: Array Float Mp_dag
