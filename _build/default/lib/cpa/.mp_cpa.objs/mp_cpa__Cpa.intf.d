lib/cpa/cpa.mli: Allocation Mp_dag Schedule
