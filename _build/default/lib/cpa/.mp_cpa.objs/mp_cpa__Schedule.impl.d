lib/cpa/schedule.ml: Array Buffer Format List Mp_dag Mp_platform Printf Result
