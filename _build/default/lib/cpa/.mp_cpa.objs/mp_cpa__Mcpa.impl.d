lib/cpa/mcpa.ml: Array Float Mapping Mp_dag
