lib/cpa/cpa.ml: Allocation Mapping Schedule
