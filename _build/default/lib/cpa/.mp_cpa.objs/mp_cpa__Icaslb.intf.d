lib/cpa/icaslb.mli: Mp_dag Schedule
