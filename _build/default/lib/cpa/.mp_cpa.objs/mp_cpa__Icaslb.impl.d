lib/cpa/icaslb.ml: Array Float Mapping Mp_dag Schedule
