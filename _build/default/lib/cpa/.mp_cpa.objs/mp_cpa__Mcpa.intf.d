lib/cpa/mcpa.mli: Mp_dag Schedule
