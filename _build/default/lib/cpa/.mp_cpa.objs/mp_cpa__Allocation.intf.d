lib/cpa/allocation.mli: Mp_dag
