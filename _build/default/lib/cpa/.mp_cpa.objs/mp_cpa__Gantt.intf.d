lib/cpa/gantt.mli: Mp_platform Schedule
