lib/cpa/mapping.mli: Mp_dag Schedule
