lib/cpa/mapping.ml: Allocation Array Mp_dag Mp_platform Schedule
