lib/cpa/gantt.ml: Array Buffer List Mp_platform Printf Schedule Seq String
