lib/cpa/schedule.mli: Format Mp_dag Mp_platform
