(** MCPA — the modified CPA of Bansal, Kumar & Singh (Parallel Computing,
    2006) for {e layered} task graphs, cited by the paper as the first
    answer to CPA's over-allocation problem.

    MCPA runs CPA's allocation loop but refuses to grow a task's
    allocation when the total allocation of the task's level would exceed
    the cluster size, preserving task parallelism within each level.
    Implemented as an extension / ablation baseline. *)

val allocate : p:int -> Mp_dag.Dag.t -> int array
(** Per-task allocations under the per-level constraint
    [Σ_{t ∈ level} n_t <= p]. *)

val schedule : p:int -> Mp_dag.Dag.t -> Schedule.t
(** Allocation followed by the standard CPA mapping phase. *)
