(** The complete CPA scheduler (allocation + mapping) for mixed-parallel
    applications on a dedicated homogeneous cluster — the base algorithm
    the paper's advance-reservation schedulers are built from.

    With an empty reservation calendar, the paper's BL_CPA_BD_CPA
    algorithm degenerates to exactly this. *)

val schedule : ?criterion:Allocation.criterion -> p:int -> Mp_dag.Dag.t -> Schedule.t
(** Allocate (default: improved criterion) then map on [p] processors. *)

val makespan : ?criterion:Allocation.criterion -> p:int -> Mp_dag.Dag.t -> int
(** Makespan of {!schedule}. *)
