(** Enumeration of the paper's experimental scenarios (Section 4.3.1).

    An experimental scenario is an application specification (one of the 40
    rows derived from Table 1 by sweeping one parameter) combined with a
    reservation-schedule specification (a log, a tagging fraction [phi],
    and a reshaping method: 4 × 3 × 3 = 36), for 1 440 scenarios total.
    Each scenario is then instantiated with random DAGs and random
    reservation-schedule draws. *)

type app_spec = { label : string; params : Mp_dag.Dag_gen.params }

type res_spec = {
  log : Mp_workload.Log_model.preset;
  phi : float;
  method_ : Mp_workload.Reservation_gen.method_;
}

val app_specs : app_spec list
(** The 40 application specifications (5 + 4 + 9 + 9 + 9 + 4), labelled
    e.g. ["n=25"], ["width=0.3"].  The default configuration appears once
    per swept parameter, as in the paper. *)

val default_app : app_spec
(** All parameters at their Table 1 defaults. *)

val phis : float list
(** Tagging fractions: 0.1, 0.2, 0.5. *)

val res_specs : res_spec list
(** The 36 synthetic reservation-schedule specifications. *)

val res_label : res_spec -> string
(** E.g. ["SDSC_BLUE/phi=0.2/expo"]. *)

val sample_app_specs : int -> app_spec list
(** [sample_app_specs k] picks an evenly spread subset of [k] application
    specs (deterministic), used by reduced-scale benchmark runs.  The
    default configuration is always included. *)

val sample_res_specs : int -> res_spec list
(** Same, for reservation specs. *)
