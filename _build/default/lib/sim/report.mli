(** Plain-text table rendering for experiment output, in the style of the
    paper's tables. *)

val render : title:string -> header:string list -> rows:string list list -> string
(** Fixed-width table with a title line and a header rule.  Column widths
    fit the longest cell. *)

val print : title:string -> header:string list -> rows:string list list -> unit
(** [render] to stdout. *)

val f1 : float -> string
(** One decimal place ("12.3"); infinity prints as "inf". *)

val f2 : float -> string
(** Two decimal places. *)

val f3 : float -> string
(** Three decimal places. *)

val summary_rows : Metrics.row list -> Metrics.row list -> string list list
(** Merge two metric summaries (e.g. turn-around and CPU-hours) sharing the
    same algorithm order into rows
    [algo; deg1; wins1; deg2; wins2]. *)
