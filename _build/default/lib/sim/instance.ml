module Rng = Mp_prelude.Rng
module Dag_gen = Mp_dag.Dag_gen
module Reservation_gen = Mp_workload.Reservation_gen
module Env = Mp_core.Env

type t = {
  dag : Mp_dag.Dag.t;
  env : Env.t;
  app_label : string;
  res_label : string;
}

let env_of_resgen (rg : Reservation_gen.t) =
  Env.make ~calendar:(Reservation_gen.calendar rg) ~q:(Reservation_gen.historical_average rg)

let cross ~app_label ~res_label dags envs =
  List.concat_map (fun env -> List.map (fun dag -> { dag; env; app_label; res_label }) dags) envs

let dags_of rng (app : Scenario.app_spec) n_dags =
  List.init n_dags (fun _ -> Dag_gen.generate rng app.params)

let synthetic ~seed ~(app : Scenario.app_spec) ~(res : Scenario.res_spec) ~n_dags ~n_cals =
  let rng = Rng.create (Hashtbl.hash (seed, app.label, Scenario.res_label res)) in
  let jobs = Logcache.jobs ~seed res.log in
  let dags = dags_of rng app n_dags in
  let envs =
    List.init n_cals (fun _ ->
        let at = Reservation_gen.random_instant rng jobs in
        let tagged = Reservation_gen.tag rng ~phi:res.phi jobs in
        env_of_resgen
          (Reservation_gen.extract rng res.method_ ~procs:res.log.Mp_workload.Log_model.cpus ~at
             tagged))
  in
  cross ~app_label:app.label ~res_label:(Scenario.res_label res) dags envs

let grid5000 ~seed ~(app : Scenario.app_spec) ~n_dags ~n_cals =
  let rng = Rng.create (Hashtbl.hash (seed, app.label, "grid5000")) in
  let g = Logcache.grid5000 ~seed in
  let dags = dags_of rng app n_dags in
  let envs =
    List.init n_cals (fun _ ->
        let at = Reservation_gen.random_instant rng g.Mp_workload.Grid5000.jobs in
        (* The log is a reservation log: keep everything known at T. *)
        env_of_resgen
          (Reservation_gen.extract rng Reservation_gen.Real ~procs:g.Mp_workload.Grid5000.cpus
             ~at g.Mp_workload.Grid5000.jobs))
  in
  cross ~app_label:app.label ~res_label:"Grid5000" dags envs
