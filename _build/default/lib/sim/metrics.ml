type scenario_result = { scenario : string; algos : string array; values : float array array }

(* Non-finite values mark instances where an algorithm failed outright
   (e.g. a pure resource-conservative run caught in a bind at every
   deadline); they are excluded from the mean, and an algorithm that
   failed every instance gets an infinite mean. *)
let scenario_means r =
  Array.map
    (fun vs ->
      if Array.length vs = 0 then invalid_arg "Metrics: no instance values";
      let finite = Array.of_seq (Seq.filter Float.is_finite (Array.to_seq vs)) in
      if Array.length finite = 0 then infinity
      else Array.fold_left ( +. ) 0. finite /. float_of_int (Array.length finite))
    r.values

let degradations r =
  let means = scenario_means r in
  let best = Array.fold_left Float.min means.(0) means in
  if best <= 0. then Array.map (fun m -> if m <= best then 0. else infinity) means
  else Array.map (fun m -> (m -. best) /. best *. 100.) means

let winners r =
  let means = scenario_means r in
  let best = Array.fold_left Float.min means.(0) means in
  let tol = 1e-9 *. Float.max 1. (Float.abs best) in
  Array.map (fun m -> m <= best +. tol) means

type row = { algo : string; avg_degradation : float; wins : int }

let summarize = function
  | [] -> []
  | first :: _ as results ->
      let algos = first.algos in
      List.iter
        (fun r ->
          if r.algos <> algos then invalid_arg "Metrics.summarize: inconsistent algorithm lists")
        results;
      let n_algos = Array.length algos in
      let deg_sum = Array.make n_algos 0. in
      let win_sum = Array.make n_algos 0 in
      List.iter
        (fun r ->
          let degs = degradations r and wins = winners r in
          Array.iteri (fun a d -> deg_sum.(a) <- deg_sum.(a) +. d) degs;
          Array.iteri (fun a w -> if w then win_sum.(a) <- win_sum.(a) + 1) wins)
        results;
      let n = float_of_int (List.length results) in
      List.init n_algos (fun a ->
          { algo = algos.(a); avg_degradation = deg_sum.(a) /. n; wins = win_sum.(a) })
