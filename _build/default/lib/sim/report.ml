let f1 v = if v = infinity then "inf" else Printf.sprintf "%.1f" v
let f2 v = if v = infinity then "inf" else Printf.sprintf "%.2f" v
let f3 v = if v = infinity then "inf" else Printf.sprintf "%.3f" v

let render ~title ~header ~rows =
  let all = header :: rows in
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make n_cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let pad i cell =
    let w = widths.(i) in
    let s = cell ^ String.make (max 0 (w - String.length cell)) ' ' in
    s
  in
  let add_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_char buf '\n'
  in
  add_row header;
  let rule = String.make (Array.fold_left ( + ) (2 * (n_cols - 1)) widths) '-' in
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter add_row rows;
  Buffer.contents buf

let print ~title ~header ~rows = print_string (render ~title ~header ~rows)

let summary_rows (m1 : Metrics.row list) (m2 : Metrics.row list) =
  List.map2
    (fun (a : Metrics.row) (b : Metrics.row) ->
      if a.algo <> b.algo then invalid_arg "Report.summary_rows: algorithm order mismatch";
      [ a.algo; f2 a.avg_degradation; string_of_int a.wins; f2 b.avg_degradation; string_of_int b.wins ])
    m1 m2
