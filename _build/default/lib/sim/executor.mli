(** Execution replay of a reservation-based schedule.

    Under advance reservations, a task occupies exactly its reserved slot:
    it starts at the reservation's start (its inputs were staged to disk
    by then — the paper's file-based communication model) and the
    processors are billed until the reservation's end even if the task
    finishes early.  A task whose {e actual} duration exceeds its
    reservation is killed by the resource manager, and every transitive
    successor is lost with it.

    This module replays a schedule against actual durations, yielding the
    realized metrics that the scheduling-time metrics approximate — in
    particular the waste induced by pessimistic run-time estimates
    (Section 3.1's out-of-scope discussion, quantified by the [estimates]
    ablation). *)

type outcome = {
  finished : bool array;  (** task ran to completion in its reservation *)
  killed : int list;  (** tasks whose actual duration overran the slot *)
  skipped : int list;  (** tasks not run because a predecessor failed *)
  realized_turnaround : int;
      (** latest {e actual} completion over the finished tasks (0 if none) *)
  billed_cpu_hours : float;  (** full reservations, failed or not *)
  used_cpu_hours : float;  (** processors × actual computing time *)
}

val success : outcome -> bool
(** All tasks finished. *)

val waste : outcome -> float
(** [1 - used / billed] — the fraction of billed CPU time left idle. *)

val run : Mp_dag.Dag.t -> Mp_cpa.Schedule.t -> actual:(int -> int) -> outcome
(** [run dag sched ~actual] replays the schedule; [actual i] is task [i]'s
    true duration (seconds, >= 1) on its reserved processor count. *)

val with_estimation_error :
  Mp_prelude.Rng.t -> Mp_dag.Dag.t -> Mp_cpa.Schedule.t -> factor:float -> outcome
(** Replay with actual durations drawn uniformly from
    [\[reserved / factor, reserved\]]: the schedule was built from
    estimates up to [factor] times pessimistic ([factor >= 1]); no task is
    killed, and the outcome quantifies the resulting waste. *)
