module Dag_gen = Mp_dag.Dag_gen
module Log_model = Mp_workload.Log_model
module Reservation_gen = Mp_workload.Reservation_gen

type app_spec = { label : string; params : Dag_gen.params }

type res_spec = { log : Log_model.preset; phi : float; method_ : Reservation_gen.method_ }

let label_of name (p : Dag_gen.params) =
  match name with
  | "n" -> Printf.sprintf "n=%d" p.n
  | "alpha" -> Printf.sprintf "alpha=%.2f" p.alpha
  | "width" -> Printf.sprintf "width=%.1f" p.width
  | "density" -> Printf.sprintf "density=%.1f" p.density
  | "regularity" -> Printf.sprintf "regularity=%.1f" p.regularity
  | "jump" -> Printf.sprintf "jump=%d" p.jump
  | _ -> name

let app_specs =
  List.concat_map
    (fun (name, ps) -> List.map (fun params -> { label = label_of name params; params }) ps)
    Dag_gen.table1

let default_app = { label = "default"; params = Dag_gen.default }

let phis = [ 0.1; 0.2; 0.5 ]

let res_specs =
  List.concat_map
    (fun log ->
      List.concat_map
        (fun phi ->
          List.map (fun method_ -> { log; phi; method_ }) Reservation_gen.all_methods)
        phis)
    Log_model.all

let res_label r =
  Printf.sprintf "%s/phi=%.1f/%s" r.log.Log_model.name r.phi
    (Reservation_gen.method_name r.method_)

(* Pick k elements evenly spread over a list (always includes the first). *)
let spread k xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if k >= n then xs
  else if k <= 0 then []
  else List.init k (fun i -> arr.(i * n / k))

let sample_app_specs k =
  let specs = spread (max 1 (k - 1)) app_specs in
  if List.exists (fun s -> s.params = Dag_gen.default) specs then specs
  else default_app :: specs

let sample_res_specs k = spread k res_specs
