lib/sim/executor.ml: Array Float Fun List Mp_cpa Mp_dag Mp_prelude
