lib/sim/logcache.mli: Mp_workload
