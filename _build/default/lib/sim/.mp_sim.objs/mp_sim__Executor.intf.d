lib/sim/executor.mli: Mp_cpa Mp_dag Mp_prelude
