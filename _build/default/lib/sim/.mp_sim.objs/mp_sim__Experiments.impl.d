lib/sim/experiments.ml: Array Float Format Hashtbl Instance List Logcache Logs Metrics Mp_core Mp_cpa Mp_dag Mp_platform Mp_prelude Mp_workload Option Printf Report Runner Scenario Sys
