lib/sim/runner.ml: Array Instance List Metrics Mp_core Mp_cpa Printf
