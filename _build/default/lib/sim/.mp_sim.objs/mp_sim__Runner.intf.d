lib/sim/runner.mli: Instance Metrics Mp_core
