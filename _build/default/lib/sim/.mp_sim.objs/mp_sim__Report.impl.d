lib/sim/report.ml: Array Buffer List Metrics Printf String
