lib/sim/scenario.mli: Mp_dag Mp_workload
