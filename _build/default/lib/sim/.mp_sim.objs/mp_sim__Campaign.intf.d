lib/sim/campaign.mli: Mp_core Mp_cpa Mp_dag Mp_platform
