lib/sim/metrics.mli:
