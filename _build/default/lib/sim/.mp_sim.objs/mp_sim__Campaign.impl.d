lib/sim/campaign.ml: List Mp_core Mp_cpa Mp_dag Mp_platform
