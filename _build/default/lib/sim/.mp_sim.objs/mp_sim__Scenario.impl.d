lib/sim/scenario.ml: Array List Mp_dag Mp_workload Printf
