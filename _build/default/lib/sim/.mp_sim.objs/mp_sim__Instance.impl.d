lib/sim/instance.ml: Hashtbl List Logcache Mp_core Mp_dag Mp_prelude Mp_workload Scenario
