lib/sim/instance.mli: Mp_core Mp_dag Scenario
