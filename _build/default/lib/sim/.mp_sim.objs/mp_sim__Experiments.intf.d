lib/sim/experiments.mli: Metrics Mp_prelude
