lib/sim/logcache.ml: Hashtbl Mp_prelude Mp_workload
