module Algo = Mp_core.Algo
module Deadline = Mp_core.Deadline
module Schedule = Mp_cpa.Schedule

let check ~validate (inst : Instance.t) ?deadline sched =
  if validate then begin
    match
      Schedule.validate inst.dag ~base:inst.env.Mp_core.Env.calendar ?deadline sched
    with
    | Ok () -> ()
    | Error msg ->
        failwith (Printf.sprintf "invalid schedule (%s / %s): %s" inst.app_label inst.res_label msg)
  end

let ressched ?(validate = false) ~algos ~scenario instances =
  let algo_names = Array.of_list (List.map (fun (a : Algo.ressched) -> a.name) algos) in
  let scheds =
    List.map
      (fun (inst : Instance.t) ->
        List.map
          (fun (a : Algo.ressched) ->
            let sched = a.run inst.env inst.dag in
            check ~validate inst sched;
            sched)
          algos)
      instances
  in
  let matrix f =
    Array.of_list
      (List.mapi
         (fun ai _ -> Array.of_list (List.map (fun per_algo -> f (List.nth per_algo ai)) scheds))
         algos)
  in
  ( { Metrics.scenario; algos = algo_names; values = matrix (fun s -> float_of_int (Schedule.turnaround s)) },
    { Metrics.scenario; algos = algo_names; values = matrix Schedule.cpu_hours } )

let deadline ?(validate = false) ?(loose_factor = 1.5) ~algos ~scenario instances =
  let algo_names = Array.of_list (List.map (fun (a : Algo.deadline) -> a.name) algos) in
  let per_instance =
    List.map
      (fun (inst : Instance.t) ->
        let prepared = List.map (fun (a : Algo.deadline) -> a.prepare inst.env inst.dag) algos in
        let tight =
          List.map (fun algo -> Deadline.tightest algo inst.env inst.dag) prepared
        in
        List.iter
          (function
            | Some (k, sched) -> check ~validate inst ~deadline:k sched
            | None -> ())
          tight;
        let max_tight =
          List.fold_left
            (fun acc -> function Some (k, _) -> max acc k | None -> acc)
            1 tight
        in
        let loose = int_of_float (ceil (loose_factor *. float_of_int max_tight)) in
        let cpu =
          List.map2
            (fun algo t ->
              match algo ~deadline:loose with
              | Some sched ->
                  check ~validate inst ~deadline:loose sched;
                  Schedule.cpu_hours sched
              | None -> (
                  (* fall back to the tightest-deadline schedule *)
                  match t with Some (_, sched) -> Schedule.cpu_hours sched | None -> infinity))
            prepared tight
        in
        let tight_values =
          List.map (function Some (k, _) -> float_of_int k | None -> infinity) tight
        in
        (tight_values, cpu))
      instances
  in
  let matrix f =
    Array.of_list
      (List.mapi
         (fun ai _ -> Array.of_list (List.map (fun row -> List.nth (f row) ai) per_instance))
         algos)
  in
  ( { Metrics.scenario; algos = algo_names; values = matrix fst },
    { Metrics.scenario; algos = algo_names; values = matrix snd } )
