module Dag = Mp_dag.Dag
module Schedule = Mp_cpa.Schedule
module Rng = Mp_prelude.Rng

type outcome = {
  finished : bool array;
  killed : int list;
  skipped : int list;
  realized_turnaround : int;
  billed_cpu_hours : float;
  used_cpu_hours : float;
}

let success o = Array.for_all Fun.id o.finished

let waste o =
  if o.billed_cpu_hours <= 0. then 0. else 1. -. (o.used_cpu_hours /. o.billed_cpu_hours)

let run dag sched ~actual =
  let nb = Dag.n dag in
  let finished = Array.make nb false in
  let killed = ref [] and skipped = ref [] in
  let used = ref 0. in
  let turnaround = ref 0 in
  (* topological order: predecessors decided first *)
  Array.iter
    (fun i ->
      let slot = Schedule.slot sched i in
      let preds_ok = Array.for_all (fun j -> finished.(j)) (Dag.preds dag i) in
      if not preds_ok then skipped := i :: !skipped
      else begin
        let d = actual i in
        if d < 1 then invalid_arg "Executor.run: actual duration < 1";
        if slot.start + d > slot.finish then killed := i :: !killed
        else begin
          finished.(i) <- true;
          used := !used +. (float_of_int (slot.procs * d) /. 3600.);
          turnaround := max !turnaround (slot.start + d)
        end
      end)
    (Dag.topological_order dag);
  {
    finished;
    killed = List.rev !killed;
    skipped = List.rev !skipped;
    realized_turnaround = !turnaround;
    billed_cpu_hours = Schedule.cpu_hours sched;
    used_cpu_hours = !used;
  }

let with_estimation_error rng dag sched ~factor =
  if factor < 1. then invalid_arg "Executor.with_estimation_error: factor < 1";
  let actual i =
    let slot = Schedule.slot sched i in
    let reserved = slot.finish - slot.start in
    let lo = Float.max 1. (float_of_int reserved /. factor) in
    max 1 (int_of_float (Rng.uniform rng lo (float_of_int reserved)))
  in
  run dag sched ~actual
