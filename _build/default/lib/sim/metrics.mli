(** Aggregation of per-scenario results into the paper's two summary
    statistics: average percentage degradation from best, and number of
    wins (Section 4.3.2).

    For one scenario, an algorithm's metric is its mean over the scenario's
    random instances; its degradation from best is the relative gap to the
    scenario's best (smallest) mean, in percent; the scenario's winners are
    the algorithms achieving that best mean (ties all win, which is why the
    paper's win columns sum to slightly more than the scenario count). *)

type scenario_result = {
  scenario : string;
  algos : string array;
  values : float array array;  (** [values.(a)] = per-instance metric values of algorithm [a]; lower is better *)
}

val scenario_means : scenario_result -> float array
(** Per-algorithm means over the scenario's instances.  Non-finite values
    mark outright algorithm failures and are excluded; an algorithm with no
    finite value gets an infinite mean. *)

val degradations : scenario_result -> float array
(** Percentage degradation from best per algorithm (0 for the best). *)

val winners : scenario_result -> bool array
(** Which algorithms achieve the scenario's best mean (within a relative
    tolerance of 1e-9). *)

type row = { algo : string; avg_degradation : float; wins : int }

val summarize : scenario_result list -> row list
(** One row per algorithm: degradation averaged over scenarios, wins summed.
    All scenarios must list the same algorithms in the same order. *)
