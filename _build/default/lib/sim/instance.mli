(** Random problem instances: a DAG plus a scheduling environment
    (calendar of competing reservations, cluster size, historical
    availability).

    Following the paper's methodology, a scenario is instantiated as the
    cross product of [n_dags] random application draws and [n_cals] random
    reservation-schedule draws (random scheduling instant × random
    tagging).  All draws derive deterministically from [seed]. *)

type t = {
  dag : Mp_dag.Dag.t;
  env : Mp_core.Env.t;
  app_label : string;
  res_label : string;
}

val synthetic :
  seed:int -> app:Scenario.app_spec -> res:Scenario.res_spec -> n_dags:int -> n_cals:int -> t list
(** Instances against a synthetic archive log (Table 2 presets). *)

val grid5000 : seed:int -> app:Scenario.app_spec -> n_dags:int -> n_cals:int -> t list
(** Instances against the Grid'5000-style reservation log; the schedule
    seen at time T contains exactly the reservations submitted before T
    (the log {e is} a reservation log, so no tagging is applied). *)
