(** Execution of algorithm sets over instance sets, producing per-scenario
    result matrices for {!Metrics}. *)

val ressched :
  ?validate:bool ->
  algos:Mp_core.Algo.ressched list ->
  scenario:string ->
  Instance.t list ->
  Metrics.scenario_result * Metrics.scenario_result
(** [ressched ~algos ~scenario instances] runs every algorithm on every
    instance and returns the (turn-around-time, CPU-hours) result
    matrices.  With [validate] (default false), every produced schedule is
    checked against the instance's calendar and DAG, and an exception is
    raised on any infeasibility — used by the test suite. *)

val deadline :
  ?validate:bool ->
  ?loose_factor:float ->
  algos:Mp_core.Algo.deadline list ->
  scenario:string ->
  Instance.t list ->
  Metrics.scenario_result * Metrics.scenario_result
(** [deadline ~algos ~scenario instances] evaluates deadline algorithms as
    in Section 5.3: for each instance, each algorithm's {e tightest
    achievable deadline} is found by binary search; then each algorithm is
    re-run with a {e loose} deadline ([loose_factor] × the latest tightest
    deadline across algorithms, default 1.5) and its CPU-hours recorded.
    Returns the (tightest-deadline, loose-CPU-hours) matrices.  An
    algorithm that fails even at the loose deadline falls back to its
    tightest-deadline schedule's CPU-hours. *)
