(** Reader/writer for the Grid Workloads Archive format (GWF).

    The paper obtained its Grid'5000 reservation log through the Grid
    Workloads Archive [6]; GWF is that archive's trace format.  As with
    {!Swf}, only the fields the simulator consumes are interpreted:
    JobID (1), SubmitTime (2), WaitTime (3), RunTime (4), NProcs (5) — the
    same leading five columns as SWF, followed by 24 further fields that
    are preserved as [-1] on output.  Comment lines start with ['#'] (the
    GWA convention) or [';'].

    With {!load}, a real GWA trace can replace the synthetic
    {!Grid5000} generator end to end. *)

val parse_line : string -> Job.t option
(** [None] for comments, blank lines, and jobs with missing runtime or
    processor counts. *)

val of_lines : string list -> Job.t list
val to_line : Job.t -> string

val load : string -> Job.t list
val save : string -> Job.t list -> unit
