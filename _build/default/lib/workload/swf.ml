let ws_re = Re.compile (Re.rep1 Re.space)

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = ';' then None
  else begin
    match Re.split ws_re line with
    | jid :: submit :: wait :: run :: procs :: _ -> (
        try
          let jid = int_of_string jid
          and submit = int_of_string submit
          and wait = int_of_string wait
          and run = int_of_string run
          and procs = int_of_string procs in
          if run <= 0 || procs <= 0 || submit < 0 then None
          else begin
            let start = if wait >= 0 then Some (submit + wait) else None in
            Some (Job.make ~id:jid ~submit ?start ~run ~procs ())
          end
        with Failure _ -> None)
    | _ -> None
  end

let of_lines lines = List.filter_map parse_line lines

let to_line (j : Job.t) =
  let wait = match j.start with None -> -1 | Some s -> s - j.submit in
  Printf.sprintf "%d %d %d %d %d -1 -1 %d %d -1 -1 -1 -1 -1 -1 -1 -1 -1" j.id j.submit wait j.run
    j.procs j.procs j.run

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (match parse_line line with Some j -> j :: acc | None -> acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let save path jobs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "; SWF written by mpres\n";
      List.iter
        (fun j ->
          output_string oc (to_line j);
          output_char oc '\n')
        jobs)
