(** A batch job from a workload log.

    Times are integer seconds from the log's origin.  [start] is assigned
    by the batch scheduler ({!Batch_sim}) or read from a real log; it is
    [None] for jobs not yet scheduled. *)

type t = {
  id : int;
  submit : int;  (** submission time *)
  start : int option;  (** start time, once scheduled *)
  run : int;  (** runtime in seconds *)
  procs : int;  (** processors used *)
}

val make : id:int -> submit:int -> ?start:int -> run:int -> procs:int -> unit -> t
(** Raises [Invalid_argument] unless [run > 0], [procs > 0], [submit >= 0]
    and, when given, [start >= submit]. *)

val finish : t -> int option
(** [start + run], when started. *)

val wait : t -> int option
(** [start - submit], when started — the paper's "time to exec". *)

val to_reservation : t -> Mp_platform.Reservation.t
(** View a {e started} job as a reservation.  Raises [Invalid_argument] on
    an unscheduled job. *)

val cpu_hours : t -> float
val pp : Format.formatter -> t -> unit
