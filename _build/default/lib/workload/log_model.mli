(** Synthetic batch-job log generators calibrated to the four Parallel
    Workloads Archive logs of the paper's Table 2.

    The real archive traces are not redistributable with this repository,
    so each preset reproduces the characteristics the paper's methodology
    actually exploits: the machine size, the average utilization, and a
    plausible job mix (diurnal Poisson arrivals, log-normal runtimes,
    power-of-two-biased job sizes).  A real SWF trace can be used instead
    via {!Swf.load} — every downstream function only consumes [Job.t]
    lists.

    Generation is a two-pass process: a first pass estimates the expected
    CPU-demand per job for the preset's distributions, from which the
    arrival rate matching the target utilization is derived; the second
    pass draws the jobs, which are then run through {!Batch_sim} to obtain
    capacity-feasible start times. *)

type preset = {
  name : string;
  cpus : int;
  target_utilization : float;  (** fraction of CPU-seconds busy *)
  mean_runtime_hours : float;  (** from the paper's Table 3 *)
  mean_wait_hours : float;
      (** target average submit-to-start time (paper's Table 3); realized
          as a per-job scheduler hold plus actual queueing *)
}

val ctc_sp2 : preset  (** IBM SP2, 430 CPUs, 65.8 % utilization *)

val osc_cluster : preset  (** Linux cluster, 57 CPUs, 38.5 % utilization *)

val sdsc_blue : preset  (** IBM SP, 1152 CPUs, 75.7 % utilization *)

val sdsc_ds : preset  (** IBM eServer p690, 224 CPUs, 27.3 % utilization *)

val all : preset list
(** The four presets above, in Table 2 order. *)

val find : string -> preset option
(** Look up a preset by (case-insensitive) name. *)

val generate : Mp_prelude.Rng.t -> ?days:int -> preset -> Job.t list
(** [generate rng ~days preset] draws a log spanning [days] (default 60)
    days and schedules it with {!Batch_sim.schedule}; all returned jobs
    have start times. *)
