(** A batch scheduler simulator with the two standard backfilling
    policies.

    - {b Conservative} backfilling: jobs are considered in submission
      order; each is placed at the earliest time (at or after its
      submission) at which enough processors are free given {e every}
      previously placed job.  Placements never move, so no job is ever
      delayed by a later submission — this is FCFS with conservative
      backfilling, and is the default (it is also what advance-reservation
      feasibility requires).

    - {b EASY} (aggressive) backfilling: only the queue's head job holds a
      reservation; a later job may jump ahead whenever running it
      immediately does not delay the head job's reservation.  EASY yields
      better utilization on real systems at the cost of weaker
      guarantees; it is provided as a realism knob for workload
      generation.

    The paper relies on the start times recorded in real archive logs; our
    synthetic logs need a capacity-respecting assignment, which this
    module provides.  It reuses the {!Mp_platform.Calendar} substrate, so
    start times are feasible by construction. *)

type policy = Conservative | Easy

val schedule :
  ?policy:policy -> ?reserved:Mp_platform.Reservation.t list -> procs:int -> Job.t list -> Job.t list
(** [schedule ~procs jobs] returns the jobs with [start] assigned, in
    start order (Conservative: submission order).  Jobs requesting more
    than [procs] processors are dropped.  Pre-assigned start times are
    ignored and recomputed.  Default policy: [Conservative].

    [reserved] (default none) are advance reservations that block capacity
    the batch jobs must flow around — the setting of the paper's
    motivation (and of Margo et al.'s reservation-impact study): batch
    queues and advance reservations coexisting on one machine.  Only
    supported by the [Conservative] policy (EASY's shadow computation
    assumes it owns the whole machine); [Invalid_argument] otherwise. *)

val utilization : procs:int -> horizon:int -> Job.t list -> float
(** Fraction of [procs * horizon] CPU-seconds consumed by the scheduled
    jobs within [\[0, horizon)] (overlaps clipped to the window). *)
