lib/workload/grid5000.ml: Float Job List Mp_platform Mp_prelude
