lib/workload/swf.ml: Fun Job List Printf Re String
