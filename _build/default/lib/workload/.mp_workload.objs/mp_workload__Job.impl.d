lib/workload/job.ml: Format Mp_platform Option
