lib/workload/job.mli: Format Mp_platform
