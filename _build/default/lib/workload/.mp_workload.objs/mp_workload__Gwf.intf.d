lib/workload/gwf.mli: Job
