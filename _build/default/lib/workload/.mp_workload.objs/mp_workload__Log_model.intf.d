lib/workload/log_model.mli: Job Mp_prelude
