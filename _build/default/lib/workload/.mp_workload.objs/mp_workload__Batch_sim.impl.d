lib/workload/batch_sim.ml: Job List Mp_platform
