lib/workload/gwf.ml: Fun Job List Printf Re String
