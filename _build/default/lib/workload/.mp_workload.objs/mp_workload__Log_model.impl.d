lib/workload/log_model.ml: Batch_sim Float Hashtbl Job List Mp_prelude String
