lib/workload/reservation_gen.mli: Job Mp_platform Mp_prelude
