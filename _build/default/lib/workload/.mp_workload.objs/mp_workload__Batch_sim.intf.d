lib/workload/batch_sim.mli: Job Mp_platform
