lib/workload/grid5000.mli: Job Mp_prelude
