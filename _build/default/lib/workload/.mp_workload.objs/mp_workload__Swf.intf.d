lib/workload/swf.mli: Job
