lib/workload/reservation_gen.ml: Array Float Job List Mp_platform Mp_prelude
