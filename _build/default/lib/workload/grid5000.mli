(** Synthetic Grid'5000-style advance-reservation log.

    The paper validates its reservation-schedule generator against 2.5
    years of (non-public) Grid'5000 reservation logs and reports only
    aggregate statistics (Table 3): an average job execution time of
    1.84 h, an average submit-to-start time of 3.24 h, and small
    coefficients of variation of these averages across sampled windows.
    This module generates reservation logs directly — every job {e is} a
    reservation made [wait] seconds ahead of its start — matching those
    aggregates, which is all the paper's experiments consume.

    The default site size (368 processors) is in the range of a Grid'5000
    cluster of the period. *)

type t = {
  cpus : int;
  jobs : Job.t list;  (** every job carries a start time *)
}

val default_cpus : int

val generate : Mp_prelude.Rng.t -> ?cpus:int -> ?days:int -> ?load:float -> unit -> t
(** [generate rng ()] draws a reservation log spanning [days] (default 60)
    days on [cpus] processors with average utilization [load] (default
    0.30, matching a moderately used site).  Requested start times that
    would overcommit the site are pushed back to the earliest feasible
    time, as a reservation system would. *)
