(** Reader/writer for the Standard Workload Format (SWF) used by the
    Parallel Workloads Archive.

    Only the fields the simulator needs are interpreted: job number (1),
    submit time (2), wait time (3), run time (4), number of allocated
    processors (5).  Remaining fields are preserved as [-1] on output.
    Comment/header lines start with [';'].

    This lets a user substitute a real archive trace for our synthetic
    {!Log_model} generators, as the paper did. *)

val parse_line : string -> Job.t option
(** [parse_line s] is [None] for comments, blank lines, and jobs with
    non-positive runtime or processor count (the archive marks missing
    data with [-1]). *)

val of_lines : string list -> Job.t list
val to_line : Job.t -> string

val load : string -> Job.t list
(** Read a SWF file from disk. *)

val save : string -> Job.t list -> unit
