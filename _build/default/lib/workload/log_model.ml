module Rng = Mp_prelude.Rng

type preset = {
  name : string;
  cpus : int;
  target_utilization : float;
  mean_runtime_hours : float;
  mean_wait_hours : float;
}

let ctc_sp2 =
  {
    name = "CTC_SP2";
    cpus = 430;
    target_utilization = 0.658;
    mean_runtime_hours = 3.20;
    mean_wait_hours = 7.49;
  }

let osc_cluster =
  {
    name = "OSC_Cluster";
    cpus = 57;
    target_utilization = 0.385;
    mean_runtime_hours = 9.33;
    mean_wait_hours = 3.02;
  }

let sdsc_blue =
  {
    name = "SDSC_BLUE";
    cpus = 1152;
    target_utilization = 0.757;
    mean_runtime_hours = 1.18;
    mean_wait_hours = 8.90;
  }

let sdsc_ds =
  {
    name = "SDSC_DS";
    cpus = 224;
    target_utilization = 0.273;
    mean_runtime_hours = 1.52;
    mean_wait_hours = 4.41;
  }

let all = [ ctc_sp2; osc_cluster; sdsc_blue; sdsc_ds ]

let find name =
  let lname = String.lowercase_ascii name in
  List.find_opt (fun p -> String.lowercase_ascii p.name = lname) all

let day = 86_400
let min_runtime = 60.
let max_runtime = 3. *. 86_400.

(* Log-normal runtime whose (unclamped) mean matches the preset. *)
let draw_runtime rng preset =
  let sigma = 1.2 in
  let mean = preset.mean_runtime_hours *. 3600. in
  let mu = log mean -. (sigma *. sigma /. 2.) in
  let r = Rng.lognormal rng ~mu ~sigma in
  int_of_float (Float.min max_runtime (Float.max min_runtime r))

(* Power-of-two-biased sizes, as observed throughout the archive logs.
   Sizes are kept well below the machine size so that dozens of jobs run
   concurrently, as in the real traces; a small fraction of odd-sized and
   larger jobs is mixed in. *)
let draw_procs rng preset =
  if Rng.bernoulli rng 0.1 then 1 + Rng.int rng (max 1 (preset.cpus / 8))
  else begin
    let kmax = max 1 (int_of_float (Float.log2 (float_of_int preset.cpus /. 16.))) in
    let u = Rng.float rng 1. in
    let k = int_of_float (u *. u *. float_of_int (kmax + 1)) in
    min preset.cpus (1 lsl min k kmax)
  end

(* Arrival intensity multiplier with a diurnal cycle peaking mid-day. *)
let diurnal t =
  let frac = Float.rem (float_of_int t /. float_of_int day) 1. in
  1. +. (0.6 *. sin (2. *. Float.pi *. (frac -. 0.25)))

let expected_work rng preset =
  let samples = 2000 in
  let total = ref 0. in
  for _ = 1 to samples do
    total := !total +. (float_of_int (draw_runtime rng preset) *. float_of_int (draw_procs rng preset))
  done;
  !total /. float_of_int samples

(* Priority/fairshare/licence holds delay a job's eligibility beyond pure
   FCFS+backfill; this is what gives production machines multi-hour queue
   waits even at modest utilization (Table 3 of the paper).  The hold is
   drawn per job so that the realized average wait approaches the preset's
   target. *)
let draw_hold rng preset = int_of_float (Rng.exponential rng (preset.mean_wait_hours *. 3600.))

let generate_once rng preset ~horizon ~rate =
  (* Thinning-based non-homogeneous Poisson: draw with the peak rate and
     accept with probability diurnal(t)/peak. *)
  let peak = 1.6 in
  let rec arrivals acc t =
    let dt = Rng.exponential rng (1. /. (rate *. peak)) in
    let t = t +. dt in
    if t >= float_of_int horizon then List.rev acc
    else begin
      let ti = int_of_float t in
      if Rng.bernoulli rng (diurnal ti /. peak) then arrivals (ti :: acc) t else arrivals acc t
    end
  in
  let submit_times = arrivals [] 0. in
  let holds = Hashtbl.create (List.length submit_times) in
  let jobs =
    List.mapi
      (fun i submit ->
        let id = i + 1 in
        let hold = draw_hold rng preset in
        Hashtbl.add holds id submit;
        (* schedule against the held eligibility time... *)
        Job.make ~id ~submit:(submit + hold) ~run:(draw_runtime rng preset)
          ~procs:(draw_procs rng preset) ())
      submit_times
  in
  let placed = Batch_sim.schedule ~procs:preset.cpus jobs in
  (* ...then restore the true submission times, so waits include the hold *)
  List.map (fun (j : Job.t) -> { j with Job.submit = Hashtbl.find holds j.Job.id }) placed

let generate rng ?(days = 60) preset =
  if days <= 0 then invalid_arg "Log_model.generate: days <= 0";
  let horizon = days * day in
  let calib_rng = Rng.split rng in
  let work_per_job = expected_work calib_rng preset in
  let rate = preset.target_utilization *. float_of_int preset.cpus /. work_per_job in
  (* Queueing and end-of-horizon spill make realized utilization fall a few
     percent short of the offered load; one feedback iteration corrects
     this. *)
  let jobs = generate_once (Rng.split rng) preset ~horizon ~rate in
  let realized = Batch_sim.utilization ~procs:preset.cpus ~horizon jobs in
  if realized <= 0. then jobs
  else begin
    let correction = Float.min 1.5 (Float.max 0.75 (preset.target_utilization /. realized)) in
    generate_once rng preset ~horizon ~rate:(rate *. correction)
  end
