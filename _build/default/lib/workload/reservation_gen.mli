(** Reservation-schedule generation (paper Section 3.2.1).

    Since real advance-reservation logs are scarce, the paper derives
    reservation schedules from batch-job logs: a fraction [phi] of jobs is
    tagged as "reserved" and all other jobs are discarded; a random instant
    [T] is chosen as the application-scheduling time; and, because a
    stationary schedule is unrealistic (one expects fewer reservations
    further in the future), the post-[T] schedule is reshaped with one of
    three methods:

    - [Linear] — the number of reservations per day decreases approximately
      linearly from time [T], reaching zero at [T] + 7 days;
    - [Expo] — same, with an approximately exponential decrease;
    - [Real] — reservations whose job was submitted after [T] are removed
      (only reservations actually known at [T] remain).

    All returned times are {e relative to T} (the scheduler's "now" is 0). *)

type method_ = Linear | Expo | Real

val method_name : method_ -> string
val all_methods : method_ list

type t = {
  procs : int;  (** cluster size *)
  past : Mp_platform.Reservation.t list;
      (** reservations active during the 7 days before T (times < 0);
          used only for the historical-availability estimate *)
  future : Mp_platform.Reservation.t list;
      (** competing reservations the application scheduler must avoid
          (active at or after time 0) *)
}

val tag : Mp_prelude.Rng.t -> phi:float -> Job.t list -> Job.t list
(** [tag rng ~phi jobs] keeps each job with probability [phi] (jobs without
    a start time are dropped first). *)

val extract :
  Mp_prelude.Rng.t -> method_ -> procs:int -> at:int -> Job.t list -> t
(** [extract rng m ~procs ~at tagged] turns the tagged jobs into a
    reservation schedule as seen at absolute log time [at], reshaped by
    method [m].  Reservations added by the Linear/Expo methods are cloned
    from existing ones with fresh start times and are only kept if they fit
    the cluster's remaining capacity.  Horizon: nothing survives past
    +7 days. *)

val random_instant : Mp_prelude.Rng.t -> Job.t list -> int
(** A scheduling instant drawn uniformly from the middle 60 % of the log's
    time span, so that both past and future windows are populated. *)

val calendar : t -> Mp_platform.Calendar.t
(** Calendar of the future (competing) reservations — the input to the
    scheduling algorithms. *)

val historical_average : t -> float
(** Time-averaged processor availability over the 7 days before T — the
    paper's [q], used by the *_CPAR algorithm variants.  Falls back to the
    future window when no past reservations exist. *)

val horizon_days : int
(** The 7-day reshaping horizon. *)
