type t = { id : int; submit : int; start : int option; run : int; procs : int }

let make ~id ~submit ?start ~run ~procs () =
  if run <= 0 then invalid_arg "Job.make: run <= 0";
  if procs <= 0 then invalid_arg "Job.make: procs <= 0";
  if submit < 0 then invalid_arg "Job.make: submit < 0";
  (match start with Some s when s < submit -> invalid_arg "Job.make: start < submit" | _ -> ());
  { id; submit; start; run; procs }

let finish j = Option.map (fun s -> s + j.run) j.start
let wait j = Option.map (fun s -> s - j.submit) j.start

let to_reservation j =
  match j.start with
  | None -> invalid_arg "Job.to_reservation: job not scheduled"
  | Some s -> Mp_platform.Reservation.make ~start:s ~finish:(s + j.run) ~procs:j.procs

let cpu_hours j = float_of_int (j.procs * j.run) /. 3600.

let pp ppf j =
  Format.fprintf ppf "job%d submit=%d start=%s run=%d procs=%d" j.id j.submit
    (match j.start with None -> "-" | Some s -> string_of_int s)
    j.run j.procs
