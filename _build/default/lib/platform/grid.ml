type site = { name : string; procs : int; speed : float }

type t = { sites : site array; calendars : Calendar.t array }

let make specs =
  if specs = [] then invalid_arg "Grid.make: no sites";
  let sites = Array.of_list (List.map fst specs) in
  Array.iter
    (fun s ->
      if s.speed <= 0. then invalid_arg "Grid.make: speed <= 0";
      if s.procs <= 0 then invalid_arg "Grid.make: procs <= 0")
    sites;
  let calendars =
    Array.of_list
      (List.map (fun (s, rs) -> Calendar.of_reservations ~procs:s.procs rs) specs)
  in
  { sites; calendars }

let n_sites t = Array.length t.sites
let site t i = t.sites.(i)
let calendar t i = t.calendars.(i)
let total_procs t = Array.fold_left (fun acc s -> acc + s.procs) 0 t.sites

let reserve t ~site r =
  let calendars = Array.copy t.calendars in
  calendars.(site) <- Calendar.reserve calendars.(site) r;
  { t with calendars }

let scale_duration t ~site d =
  max 1 (int_of_float (ceil (d /. t.sites.(site).speed)))

let reference_procs t =
  let weighted =
    Array.fold_left (fun acc s -> acc +. (float_of_int s.procs *. s.speed)) 0. t.sites
  in
  max 1 (int_of_float (Float.round weighted))

let average_available t ~site ~from_ ~until =
  Calendar.average_available t.calendars.(site) ~from_ ~until

let pp ppf t =
  Format.fprintf ppf "@[<v>grid (%d sites)@," (Array.length t.sites);
  Array.iteri
    (fun i s ->
      Format.fprintf ppf "  %s: %d procs, speed %.2f, %d breakpoints@," s.name s.procs s.speed
        (Calendar.breakpoints t.calendars.(i)))
    t.sites;
  Format.fprintf ppf "@]"
