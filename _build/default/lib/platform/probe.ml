type t = {
  mutable calendar : Calendar.t;
  mutable n_probes : int;
  mutable granted : Reservation.t list;
}

type response = Granted | Rejected of int option

let create calendar = { calendar; n_probes = 0; granted = [] }

let request t ~start ~dur ~procs =
  t.n_probes <- t.n_probes + 1;
  if start < 0 || dur < 1 || procs < 1 then Rejected None
  else if procs > Calendar.procs t.calendar then Rejected None
  else begin
    let r = Reservation.make ~start ~finish:(start + dur) ~procs in
    match Calendar.reserve_opt t.calendar r with
    | Some calendar ->
        t.calendar <- calendar;
        t.granted <- r :: t.granted;
        Granted
    | None -> Rejected (Calendar.earliest_fit t.calendar ~after:start ~procs ~dur)
  end

let cancel t (r : Reservation.t) =
  let rec remove = function
    | [] -> invalid_arg "Probe.cancel: reservation was not granted"
    | r' :: rest when r' = r -> rest
    | r' :: rest -> r' :: remove rest
  in
  t.granted <- remove t.granted;
  t.calendar <- Calendar.release t.calendar r

let probes t = t.n_probes
let granted t = t.granted
let reveal t = t.calendar
