(** Limited-visibility reservation interface.

    The paper assumes the application scheduler sees the whole reservation
    calendar (Section 3.2.2) and notes that, when administrators disable
    that feature, "the application schedule would have to be determined
    via (a bounded number of) trial-and-error reservation requests for
    each application task".  This module provides exactly that interface:
    a facade over a hidden {!Calendar.t} that only answers reservation
    requests — granting them, or rejecting them with the earliest feasible
    alternative start (the behaviour of e.g. Maui's [showres]/[setres]
    pair or PBS Pro's reservation confirmation).

    The facade counts probes, so experiments can charge the
    trial-and-error scheduler for its interactions (see
    [Mp_core.Blind]). *)

type t

type response =
  | Granted
      (** the reservation was placed; the hidden calendar is updated *)
  | Rejected of int option
      (** insufficient availability; carries the earliest start time at or
          after the requested one at which the request would currently
          succeed, if any *)

val create : Calendar.t -> t
(** Wrap a calendar.  The facade is imperative: granted requests update
    the hidden state. *)

val request : t -> start:int -> dur:int -> procs:int -> response
(** Ask for [procs] processors over [\[start, start + dur)]. *)

val cancel : t -> Reservation.t -> unit
(** Release a previously granted reservation (reservation systems let
    holders cancel).  Raises [Invalid_argument] if it was not granted. *)

val probes : t -> int
(** Number of {!request} calls made so far (granted or not). *)

val granted : t -> Reservation.t list
(** Reservations granted so far, most recent first. *)

val reveal : t -> Calendar.t
(** The hidden calendar's current state — for validation in tests and
    experiments only; a real system would not expose it. *)
