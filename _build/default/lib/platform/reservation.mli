(** An advance reservation: a number of processors held during a half-open
    time interval [\[start, finish)].

    Times are integer seconds.  The origin (time 0) is the instant at which
    the application scheduler runs ("now" in the paper); reservations from
    competing users may start in the past (negative [start]) as long as they
    are still active, and application-task reservations always start at or
    after 0. *)

type t = { start : int; finish : int; procs : int }

val make : start:int -> finish:int -> procs:int -> t
(** [make ~start ~finish ~procs] builds a reservation.  Raises
    [Invalid_argument] unless [start < finish] and [procs > 0]. *)

val duration : t -> int
(** [finish - start]. *)

val cpu_seconds : t -> int
(** [procs * duration]. *)

val cpu_hours : t -> float
(** CPU-hours consumed: [procs * duration / 3600]. *)

val overlaps : t -> t -> bool
(** Whether the two time intervals intersect (processor counts ignored). *)

val clip : t -> from_:int -> t option
(** [clip r ~from_] restricts [r] to times at or after [from_]; [None] if the
    reservation ends at or before [from_]. *)

val shift : t -> int -> t
(** [shift r dt] translates the reservation in time by [dt]. *)

val compare_by_start : t -> t -> int
(** Ordering by start time, then finish, then processor count. *)

val pp : Format.formatter -> t -> unit
