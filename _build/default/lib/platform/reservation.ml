type t = { start : int; finish : int; procs : int }

let make ~start ~finish ~procs =
  if start >= finish then invalid_arg "Reservation.make: start >= finish";
  if procs <= 0 then invalid_arg "Reservation.make: procs <= 0";
  { start; finish; procs }

let duration r = r.finish - r.start
let cpu_seconds r = r.procs * duration r
let cpu_hours r = float_of_int (cpu_seconds r) /. 3600.
let overlaps a b = a.start < b.finish && b.start < a.finish

let clip r ~from_ =
  if r.finish <= from_ then None
  else if r.start >= from_ then Some r
  else Some { r with start = from_ }

let shift r dt = { r with start = r.start + dt; finish = r.finish + dt }

let compare_by_start a b =
  match compare a.start b.start with
  | 0 -> ( match compare a.finish b.finish with 0 -> compare a.procs b.procs | c -> c)
  | c -> c

let pp ppf r = Format.fprintf ppf "[%d, %d)x%d" r.start r.finish r.procs
