lib/platform/grid.mli: Calendar Format Reservation
