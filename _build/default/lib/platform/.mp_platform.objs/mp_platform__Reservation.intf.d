lib/platform/reservation.mli: Format
