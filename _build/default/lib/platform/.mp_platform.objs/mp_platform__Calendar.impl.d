lib/platform/calendar.ml: Array Format Int Lazy List Map Reservation Seq
