lib/platform/grid.ml: Array Calendar Float Format List
