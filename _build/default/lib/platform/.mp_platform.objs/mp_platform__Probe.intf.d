lib/platform/probe.mli: Calendar Reservation
