lib/platform/calendar.mli: Format Reservation
