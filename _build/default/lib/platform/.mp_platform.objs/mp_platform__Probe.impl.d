lib/platform/probe.ml: Calendar Reservation
