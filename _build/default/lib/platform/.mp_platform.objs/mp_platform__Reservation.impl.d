lib/platform/reservation.ml: Format
