(** A multi-cluster (grid) platform: several homogeneous clusters, each
    with its own size, relative speed, and reservation calendar.

    The paper restricts its study to a single homogeneous cluster and
    names "heterogeneous multi-grid platforms" as its main future
    direction (Section 7), pointing at the heterogeneous mixed-parallel
    scheduling of N'Takpé, Suter & Casanova (ISPDC'07) as the starting
    point.  This module provides the platform substrate for that
    extension; the scheduling logic lives in [Mp_core.Hressched].

    Speeds are relative execution rates: a task's execution time on a
    site is its homogeneous-model time divided by the site's [speed].
    Sites are identified by their index. *)

type site = {
  name : string;
  procs : int;  (** processors of this cluster *)
  speed : float;  (** relative execution rate, > 0; 1.0 = reference *)
}

type t

val make : (site * Reservation.t list) list -> t
(** Build a grid from sites and their existing (competing) reservations.
    Raises [Invalid_argument] on an empty list, non-positive speed, or an
    infeasible reservation list. *)

val n_sites : t -> int
val site : t -> int -> site
val calendar : t -> int -> Calendar.t

val total_procs : t -> int

val reserve : t -> site:int -> Reservation.t -> t
(** Persistent update of one site's calendar.
    @raise Calendar.Overcommitted when the site lacks capacity. *)

val scale_duration : t -> site:int -> float -> int
(** [scale_duration t ~site d] converts a homogeneous-model duration [d]
    (seconds, un-rounded) into this site's duration: [d / speed], rounded
    up, at least 1 s. *)

val reference_procs : t -> int
(** Size of the {e reference cluster} used by HCPA-style allocation: the
    grid's total processor count scaled by each site's speed (so a site
    twice as fast counts double), rounded. *)

val average_available : t -> site:int -> from_:int -> until:int -> float
(** Per-site availability average (see {!Calendar.average_available}). *)

val pp : Format.formatter -> t -> unit
