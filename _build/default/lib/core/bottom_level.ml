module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Analysis = Mp_dag.Analysis
module Allocation = Mp_cpa.Allocation
module Mapping = Mp_cpa.Mapping

type method_ = BL_1 | BL_ALL | BL_CPA | BL_CPAR

let all = [ BL_1; BL_ALL; BL_CPA; BL_CPAR ]
let name = function BL_1 -> "BL_1" | BL_ALL -> "BL_ALL" | BL_CPA -> "BL_CPA" | BL_CPAR -> "BL_CPAR"

let weights m (env : Env.t) dag =
  match m with
  | BL_1 -> Array.map (fun tk -> Task.exec_time_f tk 1) (Dag.tasks dag)
  | BL_ALL -> Array.map (fun tk -> Task.exec_time_f tk env.p) (Dag.tasks dag)
  | BL_CPA -> Allocation.weights dag ~allocs:(Allocation.allocate ~p:env.p dag)
  | BL_CPAR -> Allocation.weights dag ~allocs:(Allocation.allocate ~p:env.q dag)

let levels m env dag = Analysis.bottom_levels dag ~weights:(weights m env dag)
let order m env dag = Mapping.bl_order dag ~weights:(weights m env dag)
