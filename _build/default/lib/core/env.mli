(** Scheduling environment: the cluster, its reservation calendar at
    scheduling time (time 0 = "now"), and the historical average number of
    available processors [q] used by the *_CPAR algorithm variants. *)

type t = {
  p : int;  (** total processors *)
  q : int;  (** historical average available processors, in [\[1, p\]] *)
  calendar : Mp_platform.Calendar.t;  (** competing reservations *)
}

val make : calendar:Mp_platform.Calendar.t -> q:float -> t
(** [make ~calendar ~q] rounds [q] and clamps it into [\[1, p\]] where [p]
    is the calendar's cluster size. *)

val no_reservations : p:int -> t
(** Empty calendar with [q = p]; with it, BL_CPA_BD_CPA reduces to plain
    CPA. *)
