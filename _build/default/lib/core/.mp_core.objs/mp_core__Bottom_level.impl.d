lib/core/bottom_level.ml: Array Env Mp_cpa Mp_dag
