lib/core/hressched.ml: Array Float Format List Mp_cpa Mp_dag Mp_platform Printf
