lib/core/blind.mli: Bottom_level Mp_cpa Mp_dag Mp_platform
