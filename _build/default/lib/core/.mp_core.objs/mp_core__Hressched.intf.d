lib/core/hressched.mli: Format Mp_dag Mp_platform
