lib/core/deadline.mli: Env Mp_cpa Mp_dag
