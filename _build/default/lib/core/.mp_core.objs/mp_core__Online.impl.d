lib/core/online.ml: Array Bottom_level Bound Env List Mp_cpa Mp_dag Mp_platform Ressched
