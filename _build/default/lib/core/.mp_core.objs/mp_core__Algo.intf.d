lib/core/algo.mli: Env Mp_cpa Mp_dag
