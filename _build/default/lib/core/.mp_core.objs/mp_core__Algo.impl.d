lib/core/algo.ml: Bottom_level Bound Deadline Env List Mp_cpa Mp_dag Option Ressched String
