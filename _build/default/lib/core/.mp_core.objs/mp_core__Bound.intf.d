lib/core/bound.mli: Env Mp_dag
