lib/core/bottom_level.mli: Env Mp_dag
