lib/core/env.ml: Float Mp_platform
