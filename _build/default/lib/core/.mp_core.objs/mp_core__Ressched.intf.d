lib/core/ressched.mli: Bottom_level Bound Env Mp_cpa Mp_dag Mp_platform
