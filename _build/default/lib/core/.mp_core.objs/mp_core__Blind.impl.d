lib/core/blind.ml: Array Bottom_level List Mp_cpa Mp_dag Mp_platform
