lib/core/deadline.ml: Array Bottom_level Env Float List Mp_cpa Mp_dag Mp_platform
