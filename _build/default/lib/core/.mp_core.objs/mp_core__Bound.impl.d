lib/core/bound.ml: Array Env Mp_cpa Mp_dag
