lib/core/env.mli: Mp_platform
