(** The four bottom-level computation methods of Section 4.2.

    Bottom levels order the tasks for scheduling; they require a weight
    (execution time) per task, which in turn requires choosing an
    allocation.  The paper's options:

    - [BL_1] — every task weighted by its 1-processor execution time;
    - [BL_ALL] — every task weighted by its [p]-processor execution time;
    - [BL_CPA] — weights from CPA allocations computed for [p] processors;
    - [BL_CPAR] — weights from CPA allocations computed for [q], the
      historical average number of available processors.

    The paper finds BL_CPAR best (Section 4.3.1), marginally ahead of
    BL_CPA, and uses it exclusively afterwards. *)

type method_ = BL_1 | BL_ALL | BL_CPA | BL_CPAR

val all : method_ list
val name : method_ -> string

val weights : method_ -> Env.t -> Mp_dag.Dag.t -> float array
(** Per-task execution-time weights under the method's allocation. *)

val levels : method_ -> Env.t -> Mp_dag.Dag.t -> float array
(** Bottom levels under those weights. *)

val order : method_ -> Env.t -> Mp_dag.Dag.t -> int array
(** Tasks by decreasing bottom level — the RESSCHED scheduling order, and
    (reversed) the RESSCHEDDL one.  A valid topological order. *)
