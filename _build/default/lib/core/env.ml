module Calendar = Mp_platform.Calendar

type t = { p : int; q : int; calendar : Calendar.t }

let make ~calendar ~q =
  let p = Calendar.procs calendar in
  let q = max 1 (min p (int_of_float (Float.round q))) in
  { p; q; calendar }

let no_reservations ~p = { p; q = p; calendar = Calendar.create ~procs:p }
