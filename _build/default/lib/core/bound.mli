(** The allocation-bounding methods of Sections 4.2 and 4.3.2.

    When picking a task's ⟨processors, start time⟩ pair, the number of
    processors considered ranges over [\[1, bound(task)\]]:

    - [BD_ALL] — bound is the cluster size [p];
    - [BD_HALF] — arbitrary bound of [p / 2] (a strawman showing that
      application-oblivious bounding is not enough);
    - [BD_CPA] — per-task bound equal to the CPA allocation computed with
      [p] processors;
    - [BD_CPAR] — per-task bound equal to the CPA allocation computed with
      [q] (historical average availability) processors.

    The paper's result (Tables 4 and 5): BD_CPAR is best on both
    turn-around time and CPU-hours, BD_CPA a close runner-up, BD_ALL and
    BD_HALF far behind. *)

type method_ =
  | BD_ONE
      (** extension: rigid single-processor tasks — disables data
          parallelism entirely, quantifying what moldability buys *)
  | BD_ALL
  | BD_HALF
  | BD_CPA
  | BD_CPAR
  | BD_ICASLB
      (** extension (paper §7's first suggestion): bound by the
          allocations the one-step iCASLB algorithm converges to on [p]
          processors *)
  | BD_ICASLBR
      (** same, computed for the historical average availability [q] *)

val all : method_ list
(** The paper's four methods (BD_ALL, BD_HALF, BD_CPA, BD_CPAR). *)

val extended : method_ list
(** {!all} plus the iCASLB-based extensions. *)

val name : method_ -> string

val bounds : method_ -> Env.t -> Mp_dag.Dag.t -> int array
(** Per-task allocation upper bounds, each in [\[1, p\]]. *)
