module Dag = Mp_dag.Dag
module Allocation = Mp_cpa.Allocation

type method_ = BD_ONE | BD_ALL | BD_HALF | BD_CPA | BD_CPAR | BD_ICASLB | BD_ICASLBR

let all = [ BD_ALL; BD_HALF; BD_CPA; BD_CPAR ]
let extended = all @ [ BD_ONE; BD_ICASLB; BD_ICASLBR ]

let name = function
  | BD_ONE -> "BD_ONE"
  | BD_ALL -> "BD_ALL"
  | BD_HALF -> "BD_HALF"
  | BD_CPA -> "BD_CPA"
  | BD_CPAR -> "BD_CPAR"
  | BD_ICASLB -> "BD_ICASLB"
  | BD_ICASLBR -> "BD_ICASLBR"

let bounds m (env : Env.t) dag =
  match m with
  | BD_ONE -> Array.make (Dag.n dag) 1
  | BD_ALL -> Array.make (Dag.n dag) env.p
  | BD_HALF -> Array.make (Dag.n dag) (max 1 (env.p / 2))
  | BD_CPA -> Allocation.allocate ~p:env.p dag
  | BD_CPAR -> Allocation.allocate ~p:env.q dag
  | BD_ICASLB -> fst (Mp_cpa.Icaslb.allocate_and_schedule ~p:env.p dag)
  | BD_ICASLBR -> fst (Mp_cpa.Icaslb.allocate_and_schedule ~p:env.q dag)
