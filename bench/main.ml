(* Benchmark harness: regenerates every table of the paper.

   Tables 2-7 (and the Section 4.3.1 comparison) are simulation
   experiments, delegated to Mp_sim.Experiments at a reduced,
   shape-preserving scale (set MPRES_SCALE=standard or =paper to grow).

   Tables 9 and 10 (algorithm execution times) are timing measurements;
   they are run under Bechamel (one Test.make per algorithm and sweep
   point, one group per table), and rendered in the paper's layout.

   Run with:  dune exec bench/main.exe *)

open Bechamel
module Experiments = Mp_sim.Experiments
module Instance_ = Mp_sim.Instance
module Scenario = Mp_sim.Scenario
module Report = Mp_sim.Report
module Dag_gen = Mp_dag.Dag_gen
module Algo = Mp_core.Algo
module Ressched = Mp_core.Ressched
module Schedule = Mp_cpa.Schedule

let scale_name, scale =
  match Sys.getenv_opt "MPRES_SCALE" with
  | Some s -> (
      match Experiments.scale_of_string s with
      | Some sc -> (String.lowercase_ascii s, sc)
      | None ->
          Printf.eprintf "unknown MPRES_SCALE %S; using quick\n%!" s;
          ("quick", Experiments.quick))
  | None -> ("quick", Experiments.quick)

let jobs =
  match Sys.getenv_opt "MPRES_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some j when j >= 1 -> j
      | _ ->
          Printf.eprintf "invalid MPRES_JOBS %S; using the default\n%!" s;
          Mp_prelude.Pool.default_jobs ())
  | None -> Mp_prelude.Pool.default_jobs ()

(* ------------------------------------------------------------------ *)
(* Bechamel timing benches (Tables 9 and 10) *)

(* All sweep points share one Grid'5000-style reservation environment and
   vary only the application DAG, as in the paper's setup (Table 1
   defaults except the swept parameter); every algorithm is timed on the
   same instance. *)
let shared_env =
  lazy
    (let app = { Scenario.label = "bench"; params = Dag_gen.default } in
     match Instance_.grid5000 ~seed:scale.Experiments.seed ~app ~n_dags:1 ~n_cals:1 with
     | [ inst ] -> inst.env
     | _ -> assert false)

let instance_of params =
  let env = Lazy.force shared_env in
  let rng = Mp_prelude.Rng.create (Hashtbl.hash (scale.Experiments.seed, params)) in
  (env, Dag_gen.generate rng params)

let sep = '|'

(* Bechamel's sampling budget per ⟨algorithm, sweep⟩ cell.  The Table 9/10
   sections are quota-bound (50 cells each), so this is what their
   wall-clock buys; the per-cell OLS estimates are what the tables
   print. *)
let bench_quota =
  match Sys.getenv_opt "MPRES_BENCH_QUOTA" with
  | Some s -> (
      match float_of_string_opt s with
      | Some q when q > 0. -> q
      | _ ->
          Printf.eprintf "invalid MPRES_BENCH_QUOTA %S; using the default\n%!" s;
          0.1)
  | None -> 0.1

(* The environment, DAG and loose deadline of one sweep point, shared by
   the deterministic counted pass and the Bechamel timing loops. *)
let sweep_instances sweeps =
  List.map
    (fun (label, params) ->
      let env, dag = instance_of params in
      let loose = 2 * Schedule.turnaround (Ressched.schedule env dag) in
      (label, env, dag, loose))
    sweeps

(* One deterministic run per ⟨algorithm, sweep⟩ cell with the probes at
   their ambient setting: these runs alone feed the section's Mp_obs
   counter deltas, so the bench/compare.exe gate covers Tables 9/10. *)
let counted_pass insts =
  List.iter
    (fun (_, env, dag, loose) ->
      List.iter
        (fun (a : Algo.ressched) -> if a.name <> "BD_HALF" then ignore (a.run env dag))
        Algo.ressched_main;
      List.iter (fun (a : Algo.deadline) -> ignore (a.run env dag ~deadline:loose)) Algo.deadline_all)
    insts

let timed_tests (label, env, dag, loose) =
  let res_tests =
    List.filter_map
      (fun (a : Algo.ressched) ->
        if a.name = "BD_HALF" then None (* not a Table 9/10 row *)
        else
          Some
            (Test.make
               ~name:(Printf.sprintf "%s%c%s" a.name sep label)
               (Staged.stage (fun () -> ignore (a.run env dag)))))
      Algo.ressched_main
  in
  let dl_tests =
    List.map
      (fun (a : Algo.deadline) ->
        Test.make
          ~name:(Printf.sprintf "%s%c%s" a.name sep label)
          (Staged.stage (fun () -> ignore (a.run env dag ~deadline:loose))))
      Algo.deadline_all
  in
  res_tests @ dl_tests

let run_group ~name sweeps =
  let insts = sweep_instances sweeps in
  counted_pass insts;
  let tests = List.concat_map timed_tests insts in
  let group = Test.make_grouped ~name tests in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second bench_quota) ~stabilize:false ~kde:None ()
  in
  (* Bechamel's iteration counts are machine-speed dependent, so freeze
     the probes during the timed loops: the section's counters stay
     deterministic (they come from [counted_pass]) and the loops measure
     the probes-off production path. *)
  let saved = !Mp_obs.enabled in
  Mp_obs.enabled := false;
  let raw =
    Fun.protect
      ~finally:(fun () -> Mp_obs.enabled := saved)
      (fun () -> Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] group)
  in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  (* name format: "<group>/<algo>|<label>" -> (algo, label) -> ms *)
  let table : (string * string, float) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun full (res : Analyze.OLS.t) ->
      match String.index_opt full sep with
      | None -> ()
      | Some i ->
          let prefix = String.sub full 0 i in
          let algo =
            match String.rindex_opt prefix '/' with
            | Some j -> String.sub prefix (j + 1) (String.length prefix - j - 1)
            | None -> prefix
          in
          let label = String.sub full (i + 1) (String.length full - i - 1) in
          let ms =
            match Analyze.OLS.estimates res with
            | Some (ns :: _) -> ns /. 1e6
            | Some [] | None -> nan
          in
          Hashtbl.replace table (algo, label) ms)
    results;
  table

let print_timing_table ~title ~labels table =
  let algos =
    [
      "BD_ALL";
      "BD_CPA";
      "BD_CPAR";
      "DL_BD_ALL";
      "DL_BD_CPA";
      "DL_BD_CPAR";
      "DL_RC_CPA";
      "DL_RC_CPAR";
      "DL_RC_CPAR-l";
      "DL_RCBD_CPAR-l";
    ]
  in
  let rows =
    List.map
      (fun algo ->
        algo
        :: List.map
             (fun label ->
               match Hashtbl.find_opt table (algo, label) with
               | Some ms when not (Float.is_nan ms) -> Printf.sprintf "%.3f" ms
               | _ -> "-")
             labels)
      algos
  in
  Report.print ~title ~header:("Algorithm [ms]" :: labels) ~rows

let bench_table9 () =
  let ns = [ 10; 25; 50; 75; 100 ] in
  let sweeps = List.map (fun n -> (Printf.sprintf "n=%d" n, { Dag_gen.default with n })) ns in
  let table = run_group ~name:"table9" sweeps in
  print_timing_table ~title:"Table 9: execution time [ms] vs task count (Bechamel)"
    ~labels:(List.map fst sweeps) table

let bench_table10 () =
  let ds = [ 0.1; 0.3; 0.5; 0.7; 0.9 ] in
  let sweeps =
    List.map (fun d -> (Printf.sprintf "d=%.1f" d, { Dag_gen.default with density = d })) ds
  in
  let table = run_group ~name:"table10" sweeps in
  print_timing_table ~title:"Table 10: execution time [ms] vs edge density (Bechamel)"
    ~labels:(List.map fst sweeps) table

(* ------------------------------------------------------------------ *)
(* Observability: MPRES_TRACE=<path> enables the Mp_obs probes, prints a
   per-section counter/latency report, and writes a Chrome trace (<path>)
   plus a machine-readable BENCH_obs.json next to it at exit. *)

let trace_path = Sys.getenv_opt "MPRES_TRACE"

(* Per-section records accumulated for BENCH_core.json — the perf-baseline
   artifact, written on every run (traced or not; see DESIGN.md for the
   schema and bench/compare.exe for the regression check). *)
let core_sections : Mp_forensics.Baseline.section list ref = ref []

(* Every scenario section prints its own wall-clock, so BENCH_* trajectories
   show where the time goes — and what the MPRES_JOBS fan-out buys.  With
   MPRES_TRACE set it also prints the section's probe deltas and records
   them in BENCH_core.json.  [counters:false] marks sections whose probe
   counts are not reproducible, so the baseline comparison never sees
   them.  (Tables 9/10 used to be such sections; their counters now come
   from a deterministic counted pass, with the probes frozen during the
   machine-speed-dependent Bechamel loops.) *)
(* MPRES_BENCH_ONLY=substr runs only the sections whose title contains
   [substr] — an ad-hoc profiling aid.  The resulting BENCH_core.json is
   partial, so never feed it to bench/compare.exe as a baseline. *)
let section_filter = Sys.getenv_opt "MPRES_BENCH_ONLY"

(* Machine-speed-dependent numbers a section wants in BENCH_core.json
   (throughput, latency percentiles): reported side by side by
   bench/compare.exe, never gated — deterministic quantities belong in
   the counters instead. *)
let pending_metrics : (string * float) list ref = ref []
let set_metrics kvs = pending_metrics := kvs

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let section ?(counters = true) title f =
  match section_filter with
  | Some sub when not (contains_substring title sub) ->
      Printf.printf "\n=== %s === (skipped: MPRES_BENCH_ONLY=%s)\n%!" title sub
  | _ ->
  Printf.printf "\n=== %s ===\n\n%!" title;
  pending_metrics := [];
  let before =
    if trace_path = None then None else Some (Mp_obs.Snapshot.take ())
  in
  let t0 = Unix.gettimeofday () in
  f ();
  let wall_s = Unix.gettimeofday () -. t0 in
  Printf.printf "\n[%s: %.2f s wall-clock]\n%!" title wall_s;
  let counter_deltas =
    match before with
    | None -> []
    | Some earlier ->
        let delta = Mp_obs.Snapshot.sub (Mp_obs.Snapshot.take ()) ~earlier in
        let text = Mp_obs.Report.text delta in
        if text <> "" then Printf.printf "[%s: probes]\n%s%!" title text;
        if not counters then []
        else
          (* Every remaining counter — including the index tree's
             node-visit and descent counts — is deterministic for a given
             scale/jobs, so all non-zero deltas ride into the baseline.
             The exceptions: the pool's steal-traffic family (which worker
             claims which chunk depends on OS scheduling) and the
             speculation family ([spec.wasted_ns] is wall-clock, and the
             rest fire only when a pool is lent, which depends on the
             jobs/core configuration) — those vary run to run and must
             not be gated. *)
          let nondeterministic = function
            | "pool.steals" | "pool.tasks_stolen" | "pool.busy_ns" -> true
            | k -> String.length k >= 5 && String.sub k 0 5 = "spec."
          in
          List.filter_map
            (fun (k, v) ->
              if v = 0 || nondeterministic k then None
              else Some (k, float_of_int v))
            delta.Mp_obs.Snapshot.counters
  in
  core_sections :=
    { Mp_forensics.Baseline.name = title; wall_s; counters = counter_deltas; metrics = !pending_metrics }
    :: !core_sections

(* ------------------------------------------------------------------ *)
(* Service soak: the scheduling service under a seeded sustained load of
   typed requests (see "Scheduling service" in DESIGN.md).  The stream and
   every response are deterministic for a given scale — the response-kind
   counts ride into the baseline as [service.*] counters when traced —
   while throughput and latency percentiles are machine-speed dependent
   and go into the section's [metrics] (reported, never gated). *)

let service_n =
  match scale_name with
  | "tiny" -> 2_000
  | "standard" -> 20_000
  | "paper" -> 50_000
  | "huge" -> 10_000
  | _ (* quick *) -> 10_000

let bench_service ~pool () =
  let sites = 4 and procs = 64 and queue_limit = 32 and budget = 60 in
  let stats_every = 60 in
  let rng = Mp_prelude.Rng.create (scale.Experiments.seed + 0x5e7e) in
  let envelopes =
    Mp_service.Stream.generate rng ~budget
      ~algos:[ "BD_CPAR"; "DL_RCBD_CPAR-l" ]
      ~sites ~procs ~n:service_n ()
  in
  let specs =
    Array.init sites (fun _ ->
        { Mp_service.Engine.calendar = Mp_platform.Calendar.create ~procs; q = procs })
  in
  let engine = Mp_core.Serve.engine ~sites:specs () in
  let sink = Mp_service.Engine.Stats.sink ~every:stats_every () in
  let t0 = Unix.gettimeofday () in
  let outcomes =
    Mp_service.Engine.run ~pool ~queue_limit ~measure:true ~stats:sink engine envelopes
  in
  let wall = Unix.gettimeofday () -. t0 in
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (o : Mp_service.Engine.outcome) ->
      let k = Mp_service.Response.kind o.response in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    outcomes;
  let count k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  let latency =
    Mp_obs.Summary.of_list (List.map (fun (o : Mp_service.Engine.outcome) -> o.wall_ns) outcomes)
  in
  let rps = if wall > 0. then float_of_int (List.length outcomes) /. wall else 0. in
  let samples = Mp_service.Engine.Stats.samples sink in
  let headline = Mp_forensics.Telemetry.headline samples in
  let html =
    Mp_forensics.Telemetry.html
      ~title:(Printf.sprintf "Service soak telemetry (%s scale)" scale_name)
      samples
  in
  Out_channel.with_open_text "BENCH_telemetry.html" (fun oc ->
      Out_channel.output_string oc html);
  Printf.printf "service soak: %d requests over %d sites (queue-limit %d, budget %d s)\n"
    service_n sites queue_limit budget;
  Printf.printf "  %s\n"
    (String.concat "  "
       (List.map (fun k -> Printf.sprintf "%s %d" k (count k)) Mp_service.Response.kinds));
  Printf.printf
    "  %.0f requests/s; per-request latency p50 %.1f us, p99 %.1f us, p999 %.1f us\n" rps
    (float_of_int latency.p50 /. 1e3)
    (float_of_int latency.p99 /. 1e3)
    (float_of_int latency.p999 /. 1e3);
  Printf.printf
    "  telemetry: %d sample(s), shed rate %.4f, queue peak %d, p999 sojourn %.0f s \
     (BENCH_telemetry.html)\n"
    headline.h_samples headline.h_shed_rate headline.h_max_queue_depth headline.h_p999_sojourn;
  set_metrics
    [
      ("requests_per_s", rps);
      ("latency_p50_us", float_of_int latency.p50 /. 1e3);
      ("latency_p99_us", float_of_int latency.p99 /. 1e3);
      ("latency_p999_us", float_of_int latency.p999 /. 1e3);
      ("shed_rate", headline.h_shed_rate);
      ("max_queue_depth", float_of_int headline.h_max_queue_depth);
      ("p999_sojourn_s", headline.h_p999_sojourn);
      ("mean_occupancy", headline.h_mean_occupancy);
    ]

(* ------------------------------------------------------------------ *)
(* Calendar index: build 10^4-10^6-reservation calendars through a
   {!Calendar.Txn} and measure the {!Mp_index} tree counters on a fixed
   batch of fit queries against the committed snapshot.  The ladder pins
   the asymptotics: visits per query must grow ~log R across rungs, not
   ~R.  MPRES_INDEX_ASSERT=1 turns the bound into a hard failure (the CI
   huge-tier smoke sets it); MPRES_INDEX_MAX_R clamps the ladder so a
   bounded smoke stays cheap.  Everything is seeded: the per-rung visit
   counts are deterministic and ride into BENCH_core.json via the
   section's [index.*] counter deltas when traced. *)

let index_assert = Sys.getenv_opt "MPRES_INDEX_ASSERT" = Some "1"

let index_max_r =
  match Sys.getenv_opt "MPRES_INDEX_MAX_R" with
  | None -> None
  | Some s -> (
      match int_of_string_opt s with
      | Some r when r >= 1_000 -> Some r
      | _ ->
          Printf.eprintf "invalid MPRES_INDEX_MAX_R %S; ignoring\n%!" s;
          None)

let index_rungs =
  let base =
    match scale_name with
    | "tiny" -> [ 2_000; 8_000; 32_000 ]
    | "standard" | "paper" -> [ 32_000; 128_000; 512_000 ]
    | "huge" -> [ 125_000; 500_000; 1_000_000 ]
    | _ (* quick *) -> [ 8_000; 32_000; 128_000 ]
  in
  match index_max_r with
  | None -> base
  | Some cap -> List.sort_uniq compare (List.map (fun r -> min r cap) base)

(* ------------------------------------------------------------------ *)
(* Pool executor: static striping vs work stealing on a skewed cell mix.
   One pathological instance among many cheap ones is exactly the shape
   that idles a static stripe — every cell behind the slow one waits for
   its worker while the other domains sit finished.  Both executors are
   raced on the same cells with the probes on; per-worker busy time comes
   from the [pool.worker] spans, and imbalance is max/mean worker busy.
   All numbers are machine-speed (and core-count) dependent, so they ride
   as metrics — reported by bench/compare.exe, never gated.  On a machine
   with fewer cores than [pool_jobs] both strategies serialize and the
   speedup collapses to ~1x; the imbalance contrast still shows. *)

let bench_pool () =
  let module Pool = Mp_prelude.Pool in
  let pool_jobs = 4 and reps = 5 and n_cheap = 48 in
  let cheap = instance_of { Dag_gen.default with n = 16 } in
  let heavy = instance_of { Dag_gen.default with n = 150 } in
  let cells = Array.of_list (heavy :: List.init n_cheap (fun _ -> cheap)) in
  let run_cell (env, dag) = Schedule.turnaround (Ressched.schedule env dag) in
  (* Sequential reference: warms the instances and pins the contract —
     both executors must reproduce it bit for bit. *)
  let reference = Array.map run_cell cells in
  let race strategy =
    Pool.with_pool ~strategy ~jobs:pool_jobs (fun p ->
        let best_wall = ref infinity and best_imb = ref 1.0 in
        for _ = 1 to reps do
          Mp_obs.with_enabled (fun () ->
              let s0 = Mp_obs.Snapshot.take () in
              let t0 = Unix.gettimeofday () in
              let out = Pool.map_array p run_cell cells in
              let wall = Unix.gettimeofday () -. t0 in
              let delta = Mp_obs.Snapshot.sub (Mp_obs.Snapshot.take ()) ~earlier:s0 in
              if out <> reference then failwith "Pool bench: executor output diverged";
              let busy = Hashtbl.create 8 in
              List.iter
                (fun (e : Mp_obs.Snapshot.event) ->
                  if e.span_name = "pool.worker" then
                    Hashtbl.replace busy e.domain
                      (e.dur_ns + Option.value ~default:0 (Hashtbl.find_opt busy e.domain)))
                delta.Mp_obs.Snapshot.events;
              let workers = Hashtbl.length busy in
              let total = Hashtbl.fold (fun _ v acc -> acc + v) busy 0 in
              let mx = Hashtbl.fold (fun _ v acc -> max acc v) busy 0 in
              let imb =
                if total = 0 then 1.0
                else float_of_int (mx * workers) /. float_of_int total
              in
              if wall < !best_wall then begin
                best_wall := wall;
                best_imb := imb
              end)
        done;
        (!best_wall, !best_imb))
  in
  let static_wall, static_imb = race Pool.Static in
  let steal_wall, steal_imb = race Pool.Steal in
  let speedup = if steal_wall > 0. then static_wall /. steal_wall else 0. in
  Printf.printf
    "skewed cell mix: %d cheap RESSCHED cells (n=16) + 1 pathological (n=150), jobs=%d, best of %d\n"
    n_cheap pool_jobs reps;
  Printf.printf "  %-8s %10s %11s\n" "executor" "wall[ms]" "imbalance";
  Printf.printf "  %-8s %10.2f %11.2f\n" "static" (1000. *. static_wall) static_imb;
  Printf.printf "  %-8s %10.2f %11.2f\n" "steal" (1000. *. steal_wall) steal_imb;
  Printf.printf "  speedup (static/steal): %.2fx%s\n%!" speedup
    (if Domain.recommended_domain_count () < pool_jobs then
       "  [fewer cores than jobs: both serialize, expect ~1x]"
     else "");
  set_metrics
    [
      ("static_wall_s", static_wall);
      ("steal_wall_s", steal_wall);
      ("speedup", speedup);
      ("static_imbalance", static_imb);
      ("steal_imbalance", steal_imb);
    ]

(* ------------------------------------------------------------------ *)
(* Intra-schedule speculation: sequential vs pool-lent deadline solving
   on Table-6-shaped instances (see "Intra-schedule speculation" in
   DESIGN.md).  The speculative pass fans the tightest-search probe
   waves and the per-task fit scans over a lent 4-worker pool; every rep
   is pinned byte-equal to the sequential reference (speculation is
   output-preserving).  Wall times and the derived speedup are
   machine-speed (and core-count) dependent, so they ride as metrics —
   as does the lookahead hit rate, measured by one extra counted pass
   with the probes on.  On a machine with fewer than 4 cores the wave
   workers serialize and the speedup collapses to ~1x. *)

let bench_speculation () =
  let module Pool = Mp_prelude.Pool in
  let module Deadline = Mp_core.Deadline in
  let spec_jobs = 4 and reps = 3 in
  let insts = List.map (fun n -> instance_of { Dag_gen.default with n }) [ 50; 75; 100 ] in
  let algos = Algo.deadline_hybrid in
  let pass spec =
    List.concat_map
      (fun (env, dag) ->
        List.map
          (fun (a : Algo.deadline) ->
            let prepared = a.prepare ?spec env dag in
            let tight = Deadline.tightest ?spec prepared env dag in
            let loose =
              match tight with Some (k, _) -> prepared ~deadline:(2 * k) | None -> None
            in
            ( Option.map (fun (k, s) -> (k, Schedule.reservations s)) tight,
              Option.map Schedule.reservations loose ))
          algos)
      insts
  in
  let reference = pass None in
  let time f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let out = f () in
      let wall = Unix.gettimeofday () -. t0 in
      if out <> reference then failwith "Speculation bench: output diverged";
      if wall < !best then best := wall
    done;
    !best
  in
  let seq_wall = time (fun () -> pass None) in
  let spec_wall, (hits, misses, waves, wave_probes, wave_wasted) =
    Pool.with_pool ~jobs:spec_jobs (fun p ->
        let spec = Mp_core.Speculate.create p in
        let wall = time (fun () -> pass (Some spec)) in
        let counts =
          Mp_obs.with_enabled (fun () ->
              let s0 = Mp_obs.Snapshot.take () in
              ignore (pass (Some spec));
              let d = Mp_obs.Snapshot.sub (Mp_obs.Snapshot.take ()) ~earlier:s0 in
              let c k =
                Option.value ~default:0 (List.assoc_opt k d.Mp_obs.Snapshot.counters)
              in
              (c "spec.hits", c "spec.misses", c "spec.waves", c "spec.wave.probes",
               c "spec.wave.wasted"))
        in
        (wall, counts))
  in
  let speedup = if spec_wall > 0. then seq_wall /. spec_wall else 0. in
  let hit_rate =
    if hits + misses = 0 then 1.0 else float_of_int hits /. float_of_int (hits + misses)
  in
  Printf.printf
    "deadline solving (tightest search + loose re-run), %d instances x %d algorithms, spec \
     jobs=%d, best of %d\n"
    (List.length insts) (List.length algos) spec_jobs reps;
  Printf.printf "  %-12s %10s\n" "mode" "wall[ms]";
  Printf.printf "  %-12s %10.2f\n" "sequential" (1000. *. seq_wall);
  Printf.printf "  %-12s %10.2f\n" "speculative" (1000. *. spec_wall);
  Printf.printf "  speedup (seq/spec): %.2fx%s\n" speedup
    (if Domain.recommended_domain_count () < spec_jobs then
       "  [fewer cores than spec jobs: waves serialize, expect ~1x]"
     else "");
  Printf.printf
    "  lookahead: %d hit(s), %d miss(es) (%.1f%% hit rate); waves: %d, probes %d, wasted %d\n%!"
    hits misses (100. *. hit_rate) waves wave_probes wave_wasted;
  set_metrics
    [
      ("seq_wall_s", seq_wall);
      ("spec_wall_s", spec_wall);
      ("speedup", speedup);
      ("spec_hit_rate", hit_rate);
      ("wave_waste_rate",
       if wave_probes = 0 then 0.0 else float_of_int wave_wasted /. float_of_int wave_probes);
    ]

(* Promote the tightest-search probe count — and, when a pool was lent,
   the speculation hit rate — of a table's run into its metrics block for
   side-by-side reporting by bench/compare.exe.  Traced runs only: the
   counters are frozen when the probes are off.  [deadline.tightest.probes]
   also stays in the section's gated counters; [spec.*] never gates (see
   [nondeterministic] above). *)
let with_probe_metrics f () =
  if not !Mp_obs.enabled then f ()
  else begin
    let s0 = Mp_obs.Snapshot.take () in
    f ();
    let d = Mp_obs.Snapshot.sub (Mp_obs.Snapshot.take ()) ~earlier:s0 in
    let c k = Option.value ~default:0 (List.assoc_opt k d.Mp_obs.Snapshot.counters) in
    let hits = c "spec.hits" and misses = c "spec.misses" in
    let metrics = [ ("tightest_probes", float_of_int (c "deadline.tightest.probes")) ] in
    let metrics =
      if hits + misses = 0 then metrics
      else
        metrics
        @ [ ("spec_hit_rate", float_of_int hits /. float_of_int (hits + misses)) ]
    in
    set_metrics metrics
  end

let log2f x = log (float_of_int x) /. log 2.

let bench_index () =
  let module Calendar = Mp_platform.Calendar in
  let module Reservation = Mp_platform.Reservation in
  let q = 64 and n_queries = 2_000 in
  Printf.printf
    "calendar index ladder (procs/site %d, %d earliest + %d latest queries per rung%s)\n"
    q n_queries n_queries
    (match index_max_r with
    | Some cap -> Printf.sprintf ", MPRES_INDEX_MAX_R=%d" cap
    | None -> "");
  Printf.printf "  %10s %12s %8s %11s %11s %12s %8s\n" "R" "breakpoints" "build[s]"
    "visits/res" "visits/qry" "queries/s" "fit%";
  let rows =
    List.map
      (fun r_target ->
        Mp_obs.with_enabled (fun () ->
            let rng = Mp_prelude.Rng.create (scale.Experiments.seed + r_target) in
            (* ~60% steady-state utilization: loaded enough that fit
               walks cross blocked runs, loose enough that the target
               reservation count is reached without stalling. *)
            let horizon = 215 * r_target in
            let visits snap =
              Option.value ~default:0
                (List.assoc_opt "index.node_visits" snap.Mp_obs.Snapshot.counters)
            in
            let s0 = Mp_obs.Snapshot.take () in
            let txn = Calendar.Txn.start (Calendar.create ~procs:q) in
            let t0 = Unix.gettimeofday () in
            let kept = ref 0 and attempts = ref 0 in
            while !kept < r_target && !attempts < 3 * r_target do
              incr attempts;
              let start = Mp_prelude.Rng.int rng horizon in
              let dur = 60 + Mp_prelude.Rng.int rng 3541 in
              let procs = 1 + Mp_prelude.Rng.int rng 8 in
              if
                Calendar.Txn.reserve_opt txn
                  (Reservation.make ~start ~finish:(start + dur) ~procs)
              then incr kept
            done;
            let build_s = Unix.gettimeofday () -. t0 in
            let s1 = Mp_obs.Snapshot.take () in
            let committed = Calendar.Txn.commit txn in
            let fits = ref 0 in
            let t1 = Unix.gettimeofday () in
            (* Queries drawn like the reservations themselves (procs well
               under the steady-state free capacity): each fit resolves
               within a bounded number of blocked runs regardless of R, so
               visits/query isolates the per-descent cost.  Asking for
               procs near capacity instead would make the walk cross O(R)
               runs — a property of the workload, not of the index. *)
            for _ = 1 to n_queries do
              let procs = 1 + Mp_prelude.Rng.int rng 16 in
              let dur = 60 + Mp_prelude.Rng.int rng 3541 in
              let after = Mp_prelude.Rng.int rng horizon in
              (match Calendar.earliest_fit committed ~after ~procs ~dur with
              | Some _ -> incr fits
              | None -> ());
              let finish_by = 1 + Mp_prelude.Rng.int rng horizon in
              match Calendar.latest_fit committed ~earliest:0 ~finish_by ~procs ~dur with
              | Some _ -> incr fits
              | None -> ()
            done;
            let query_s = Unix.gettimeofday () -. t1 in
            let s2 = Mp_obs.Snapshot.take () in
            let bps = Calendar.breakpoints committed in
            let vpr = float_of_int (visits s1 - visits s0) /. float_of_int !attempts in
            let vpq =
              float_of_int (visits s2 - visits s1) /. float_of_int (2 * n_queries)
            in
            let qps =
              if query_s > 0. then float_of_int (2 * n_queries) /. query_s else 0.
            in
            let fit_pct = 100. *. float_of_int !fits /. float_of_int (2 * n_queries) in
            Printf.printf "  %10d %12d %8.2f %11.1f %11.1f %12.0f %7.1f%%\n%!" !kept bps
              build_s vpr vpq qps fit_pct;
            (r_target, !kept, bps, vpq, qps)))
      index_rungs
  in
  set_metrics
    (List.concat_map
       (fun (r_target, _, bps, vpq, qps) ->
         [
           (Printf.sprintf "r%d_breakpoints" r_target, float_of_int bps);
           (Printf.sprintf "r%d_visits_per_query" r_target, vpq);
           (Printf.sprintf "r%d_queries_per_s" r_target, qps);
         ])
       rows);
  (* The log-R pin.  Per rung: visits/query within a constant factor of
     log2(breakpoints) — a linear walk would exceed this a thousandfold
     at the top rungs.  Across the ladder: visits may grow at most like
     the log of the size ratio (with 2x headroom), never like the size
     ratio itself. *)
  if index_assert then begin
    let fail = ref false in
    List.iter
      (fun (r_target, _, bps, vpq, _) ->
        let bound = (8. *. log2f bps) +. 64. in
        if vpq > bound then begin
          Printf.eprintf "FAIL index ladder r=%d: visits/query %.1f > bound %.1f (log R ~ %.1f)\n%!"
            r_target vpq bound (log2f bps);
          fail := true
        end)
      rows;
    (match (rows, List.rev rows) with
    | (r0, _, b0, v0, _) :: _, (r1, _, b1, v1, _) :: _ when r0 <> r1 && v0 > 0. ->
        let growth = v1 /. v0 and log_growth = log2f b1 /. log2f b0 in
        let bound = 2. *. log_growth in
        if growth > bound then begin
          Printf.eprintf
            "FAIL index ladder: visits/query grew %.2fx from R=%d to R=%d (log bound %.2fx, linear would be %.0fx)\n%!"
            growth r0 r1 bound
            (float_of_int b1 /. float_of_int b0);
          fail := true
        end
    | _ -> ());
    if !fail then exit 1;
    Printf.printf "  log-R visit bound holds over the ladder (MPRES_INDEX_ASSERT)\n%!"
  end

let write_core_json total_s =
  let run =
    {
      Mp_forensics.Baseline.schema = Mp_forensics.Baseline.schema_version;
      scale = scale_name;
      jobs;
      total_s;
      sections = List.rev !core_sections;
    }
  in
  Out_channel.with_open_text "BENCH_core.json" (fun oc ->
      Out_channel.output_string oc (Mp_forensics.Baseline.to_json run));
  Printf.printf
    "Perf-baseline record written to BENCH_core.json (schema %s; diff against a committed \
     baseline with bench/compare.exe)\n%!"
    Mp_forensics.Baseline.schema_version

(* A representative Gantt chart of the recommended algorithm on the shared
   bench environment — a quick visual sanity check, uploaded by CI. *)
let write_gantt_svg () =
  let env, dag = instance_of Dag_gen.default in
  let sched = Ressched.schedule env dag in
  let slots =
    Array.to_list
      (Array.mapi
         (fun i (s : Schedule.slot) ->
           {
             Mp_forensics.Render.label = string_of_int i;
             start = s.start;
             finish = s.finish;
             procs = s.procs;
           })
         sched.Schedule.slots)
  in
  Out_channel.with_open_text "BENCH_gantt.svg" (fun oc ->
      Out_channel.output_string oc
        (Mp_forensics.Render.gantt_svg ~base:env.Mp_core.Env.calendar ~slots ()));
  Printf.printf "Representative Gantt chart written to BENCH_gantt.svg\n%!"

let write_obs_artifacts path =
  let snap = Mp_obs.Snapshot.take () in
  Mp_obs.Trace.write_chrome path snap;
  let json_path = Filename.concat (Filename.dirname path) "BENCH_obs.json" in
  Out_channel.with_open_bin json_path (fun oc ->
      Out_channel.output_string oc (Mp_obs.Report.to_json snap));
  Printf.printf "\n=== Observability (MPRES_TRACE) ===\n\n%s" (Mp_obs.Report.text snap);
  Printf.printf "\nChrome trace written to %s (load in Perfetto / chrome://tracing)\n" path;
  Printf.printf "Machine-readable probe dump written to %s\n%!" json_path

let () =
  (* surface the per-scenario wall-clock lines logged by Mp_sim.Experiments *)
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Info);
  Printf.printf
    "mpres benchmark harness (scale: n_app=%d n_res=%d n_dags=%d n_cals=%d, jobs=%d; set MPRES_SCALE / MPRES_JOBS to change)\n"
    scale.n_app scale.n_res scale.n_dags scale.n_cals jobs;
  (match trace_path with
  | Some path ->
      Mp_obs.enabled := true;
      Printf.printf "tracing enabled (MPRES_TRACE=%s)\n" path
  | None -> ());
  let total0 = Unix.gettimeofday () in
  Mp_prelude.Pool.with_pool ~jobs (fun pool ->
      section "Table 1 (application parameters are the generator defaults; see DESIGN.md)"
        (fun () ->
          Printf.printf "%d application specifications enumerated from Table 1\n"
            (List.length Scenario.app_specs));
      (* executor micro-benchmark first: its per-rep snapshots copy every
         span event recorded so far, so it must run before the tables
         fill the per-domain buffers *)
      section "Pool" bench_pool;
      section "Speculation" bench_speculation;
      section "Table 2" (fun () -> Experiments.print_table2 scale);
      section "Table 3" (fun () -> Experiments.print_table3 scale);
      section "Section 4.3.1 (bottom-level methods)" (fun () ->
          Experiments.print_bl_comparison ~pool scale);
      section "Table 4" (fun () -> Experiments.print_table4 ~pool scale);
      section "Table 5" (fun () -> Experiments.print_table5 ~pool scale);
      section "Table 6" (with_probe_metrics (fun () -> Experiments.print_table6 ~pool scale));
      section "Table 7" (with_probe_metrics (fun () -> Experiments.print_table7 ~pool scale));
      section "Table 8" (fun () -> Experiments.print_table8 ());
      section "Table 9" bench_table9;
      section "Table 10" bench_table10;
      section "Ablation: allocators" (fun () -> Experiments.print_allocator_ablation scale);
      section "Ablation: blind scheduling" (fun () ->
          Experiments.print_blind_ablation ~pool scale);
      section "Ablation: online arrivals" (fun () -> Experiments.print_online_ablation scale);
      section "Ablation: heterogeneous grid" (fun () ->
          Experiments.print_hetero_ablation scale);
      section "Ablation: iCASLB bounds" (fun () ->
          Experiments.print_icaslb_ablation ~pool scale);
      section "Ablation: reservation impact on batch users" (fun () ->
          Experiments.print_reservation_impact scale);
      section "Ablation: CPU-hours vs deadline looseness" (fun () ->
          Experiments.print_pareto_ablation ~pool scale);
      section "Ablation: pessimistic estimates" (fun () ->
          Experiments.print_estimate_ablation ~pool scale);
      section "Calendar index" bench_index;
      section "Service" (fun () -> bench_service ~pool ()));
  Option.iter write_obs_artifacts trace_path;
  let total_s = Unix.gettimeofday () -. total0 in
  write_core_json total_s;
  write_gantt_svg ();
  Printf.printf "\nDone in %.2f s wall-clock (jobs=%d).\n" total_s jobs
