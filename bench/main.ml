(* Benchmark harness: regenerates every table of the paper.

   Tables 2-7 (and the Section 4.3.1 comparison) are simulation
   experiments, delegated to Mp_sim.Experiments at a reduced,
   shape-preserving scale (set MPRES_SCALE=standard or =paper to grow).

   Tables 9 and 10 (algorithm execution times) are timing measurements;
   they are run under Bechamel (one Test.make per algorithm and sweep
   point, one group per table), and rendered in the paper's layout.

   Run with:  dune exec bench/main.exe *)

open Bechamel
module Experiments = Mp_sim.Experiments
module Instance_ = Mp_sim.Instance
module Scenario = Mp_sim.Scenario
module Report = Mp_sim.Report
module Dag_gen = Mp_dag.Dag_gen
module Algo = Mp_core.Algo
module Ressched = Mp_core.Ressched
module Schedule = Mp_cpa.Schedule

let scale_name, scale =
  match Sys.getenv_opt "MPRES_SCALE" with
  | Some s -> (
      match Experiments.scale_of_string s with
      | Some sc -> (String.lowercase_ascii s, sc)
      | None ->
          Printf.eprintf "unknown MPRES_SCALE %S; using quick\n%!" s;
          ("quick", Experiments.quick))
  | None -> ("quick", Experiments.quick)

let jobs =
  match Sys.getenv_opt "MPRES_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some j when j >= 1 -> j
      | _ ->
          Printf.eprintf "invalid MPRES_JOBS %S; using the default\n%!" s;
          Mp_prelude.Pool.default_jobs ())
  | None -> Mp_prelude.Pool.default_jobs ()

(* ------------------------------------------------------------------ *)
(* Bechamel timing benches (Tables 9 and 10) *)

(* All sweep points share one Grid'5000-style reservation environment and
   vary only the application DAG, as in the paper's setup (Table 1
   defaults except the swept parameter); every algorithm is timed on the
   same instance. *)
let shared_env =
  lazy
    (let app = { Scenario.label = "bench"; params = Dag_gen.default } in
     match Instance_.grid5000 ~seed:scale.Experiments.seed ~app ~n_dags:1 ~n_cals:1 with
     | [ inst ] -> inst.env
     | _ -> assert false)

let instance_of params =
  let env = Lazy.force shared_env in
  let rng = Mp_prelude.Rng.create (Hashtbl.hash (scale.Experiments.seed, params)) in
  (env, Dag_gen.generate rng params)

let sep = '|'

(* Bechamel's sampling budget per ⟨algorithm, sweep⟩ cell.  The Table 9/10
   sections are quota-bound (50 cells each), so this is what their
   wall-clock buys; the per-cell OLS estimates are what the tables
   print. *)
let bench_quota =
  match Sys.getenv_opt "MPRES_BENCH_QUOTA" with
  | Some s -> (
      match float_of_string_opt s with
      | Some q when q > 0. -> q
      | _ ->
          Printf.eprintf "invalid MPRES_BENCH_QUOTA %S; using the default\n%!" s;
          0.1)
  | None -> 0.1

(* The environment, DAG and loose deadline of one sweep point, shared by
   the deterministic counted pass and the Bechamel timing loops. *)
let sweep_instances sweeps =
  List.map
    (fun (label, params) ->
      let env, dag = instance_of params in
      let loose = 2 * Schedule.turnaround (Ressched.schedule env dag) in
      (label, env, dag, loose))
    sweeps

(* One deterministic run per ⟨algorithm, sweep⟩ cell with the probes at
   their ambient setting: these runs alone feed the section's Mp_obs
   counter deltas, so the bench/compare.exe gate covers Tables 9/10. *)
let counted_pass insts =
  List.iter
    (fun (_, env, dag, loose) ->
      List.iter
        (fun (a : Algo.ressched) -> if a.name <> "BD_HALF" then ignore (a.run env dag))
        Algo.ressched_main;
      List.iter (fun (a : Algo.deadline) -> ignore (a.run env dag ~deadline:loose)) Algo.deadline_all)
    insts

let timed_tests (label, env, dag, loose) =
  let res_tests =
    List.filter_map
      (fun (a : Algo.ressched) ->
        if a.name = "BD_HALF" then None (* not a Table 9/10 row *)
        else
          Some
            (Test.make
               ~name:(Printf.sprintf "%s%c%s" a.name sep label)
               (Staged.stage (fun () -> ignore (a.run env dag)))))
      Algo.ressched_main
  in
  let dl_tests =
    List.map
      (fun (a : Algo.deadline) ->
        Test.make
          ~name:(Printf.sprintf "%s%c%s" a.name sep label)
          (Staged.stage (fun () -> ignore (a.run env dag ~deadline:loose))))
      Algo.deadline_all
  in
  res_tests @ dl_tests

let run_group ~name sweeps =
  let insts = sweep_instances sweeps in
  counted_pass insts;
  let tests = List.concat_map timed_tests insts in
  let group = Test.make_grouped ~name tests in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second bench_quota) ~stabilize:false ~kde:None ()
  in
  (* Bechamel's iteration counts are machine-speed dependent, so freeze
     the probes during the timed loops: the section's counters stay
     deterministic (they come from [counted_pass]) and the loops measure
     the probes-off production path. *)
  let saved = !Mp_obs.enabled in
  Mp_obs.enabled := false;
  let raw =
    Fun.protect
      ~finally:(fun () -> Mp_obs.enabled := saved)
      (fun () -> Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] group)
  in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  (* name format: "<group>/<algo>|<label>" -> (algo, label) -> ms *)
  let table : (string * string, float) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun full (res : Analyze.OLS.t) ->
      match String.index_opt full sep with
      | None -> ()
      | Some i ->
          let prefix = String.sub full 0 i in
          let algo =
            match String.rindex_opt prefix '/' with
            | Some j -> String.sub prefix (j + 1) (String.length prefix - j - 1)
            | None -> prefix
          in
          let label = String.sub full (i + 1) (String.length full - i - 1) in
          let ms =
            match Analyze.OLS.estimates res with
            | Some (ns :: _) -> ns /. 1e6
            | Some [] | None -> nan
          in
          Hashtbl.replace table (algo, label) ms)
    results;
  table

let print_timing_table ~title ~labels table =
  let algos =
    [
      "BD_ALL";
      "BD_CPA";
      "BD_CPAR";
      "DL_BD_ALL";
      "DL_BD_CPA";
      "DL_BD_CPAR";
      "DL_RC_CPA";
      "DL_RC_CPAR";
      "DL_RC_CPAR-l";
      "DL_RCBD_CPAR-l";
    ]
  in
  let rows =
    List.map
      (fun algo ->
        algo
        :: List.map
             (fun label ->
               match Hashtbl.find_opt table (algo, label) with
               | Some ms when not (Float.is_nan ms) -> Printf.sprintf "%.3f" ms
               | _ -> "-")
             labels)
      algos
  in
  Report.print ~title ~header:("Algorithm [ms]" :: labels) ~rows

let bench_table9 () =
  let ns = [ 10; 25; 50; 75; 100 ] in
  let sweeps = List.map (fun n -> (Printf.sprintf "n=%d" n, { Dag_gen.default with n })) ns in
  let table = run_group ~name:"table9" sweeps in
  print_timing_table ~title:"Table 9: execution time [ms] vs task count (Bechamel)"
    ~labels:(List.map fst sweeps) table

let bench_table10 () =
  let ds = [ 0.1; 0.3; 0.5; 0.7; 0.9 ] in
  let sweeps =
    List.map (fun d -> (Printf.sprintf "d=%.1f" d, { Dag_gen.default with density = d })) ds
  in
  let table = run_group ~name:"table10" sweeps in
  print_timing_table ~title:"Table 10: execution time [ms] vs edge density (Bechamel)"
    ~labels:(List.map fst sweeps) table

(* ------------------------------------------------------------------ *)
(* Observability: MPRES_TRACE=<path> enables the Mp_obs probes, prints a
   per-section counter/latency report, and writes a Chrome trace (<path>)
   plus a machine-readable BENCH_obs.json next to it at exit. *)

let trace_path = Sys.getenv_opt "MPRES_TRACE"

(* Per-section records accumulated for BENCH_core.json — the perf-baseline
   artifact, written on every run (traced or not; see DESIGN.md for the
   schema and bench/compare.exe for the regression check). *)
let core_sections : Mp_forensics.Baseline.section list ref = ref []

(* Every scenario section prints its own wall-clock, so BENCH_* trajectories
   show where the time goes — and what the MPRES_JOBS fan-out buys.  With
   MPRES_TRACE set it also prints the section's probe deltas and records
   them in BENCH_core.json.  [counters:false] marks sections whose probe
   counts are not reproducible, so the baseline comparison never sees
   them.  (Tables 9/10 used to be such sections; their counters now come
   from a deterministic counted pass, with the probes frozen during the
   machine-speed-dependent Bechamel loops.) *)
(* MPRES_BENCH_ONLY=substr runs only the sections whose title contains
   [substr] — an ad-hoc profiling aid.  The resulting BENCH_core.json is
   partial, so never feed it to bench/compare.exe as a baseline. *)
let section_filter = Sys.getenv_opt "MPRES_BENCH_ONLY"

(* Machine-speed-dependent numbers a section wants in BENCH_core.json
   (throughput, latency percentiles): reported side by side by
   bench/compare.exe, never gated — deterministic quantities belong in
   the counters instead. *)
let pending_metrics : (string * float) list ref = ref []
let set_metrics kvs = pending_metrics := kvs

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let section ?(counters = true) title f =
  match section_filter with
  | Some sub when not (contains_substring title sub) ->
      Printf.printf "\n=== %s === (skipped: MPRES_BENCH_ONLY=%s)\n%!" title sub
  | _ ->
  Printf.printf "\n=== %s ===\n\n%!" title;
  pending_metrics := [];
  let before =
    if trace_path = None then None else Some (Mp_obs.Snapshot.take ())
  in
  let t0 = Unix.gettimeofday () in
  f ();
  let wall_s = Unix.gettimeofday () -. t0 in
  Printf.printf "\n[%s: %.2f s wall-clock]\n%!" title wall_s;
  let counter_deltas =
    match before with
    | None -> []
    | Some earlier ->
        let delta = Mp_obs.Snapshot.sub (Mp_obs.Snapshot.take ()) ~earlier in
        let text = Mp_obs.Report.text delta in
        if text <> "" then Printf.printf "[%s: probes]\n%s%!" title text;
        if not counters then []
        else
          (* The array/map query-path split depends on a cross-domain race
             (see Calendar's [arrays]), so it is not reproducible and
             stays out of the baseline; all other counters are
             deterministic for a given scale. *)
          List.filter_map
            (fun (k, v) ->
              if v = 0 || k = "calendar.fit.array_path" || k = "calendar.fit.map_path" then None
              else Some (k, float_of_int v))
            delta.Mp_obs.Snapshot.counters
  in
  core_sections :=
    { Mp_forensics.Baseline.name = title; wall_s; counters = counter_deltas; metrics = !pending_metrics }
    :: !core_sections

(* ------------------------------------------------------------------ *)
(* Service soak: the scheduling service under a seeded sustained load of
   typed requests (see "Scheduling service" in DESIGN.md).  The stream and
   every response are deterministic for a given scale — the response-kind
   counts ride into the baseline as [service.*] counters when traced —
   while throughput and latency percentiles are machine-speed dependent
   and go into the section's [metrics] (reported, never gated). *)

let service_n =
  match scale_name with
  | "tiny" -> 2_000
  | "standard" -> 20_000
  | "paper" -> 50_000
  | _ (* quick *) -> 10_000

(* Nearest-rank percentile of the per-request wall-clock samples. *)
let percentile_ns p a =
  let n = Array.length a in
  if n = 0 then 0 else a.(min (n - 1) (int_of_float (p *. float_of_int n)))

let bench_service ~pool () =
  let sites = 4 and procs = 64 and queue_limit = 32 and budget = 60 in
  let rng = Mp_prelude.Rng.create (scale.Experiments.seed + 0x5e7e) in
  let envelopes =
    Mp_service.Stream.generate rng ~budget
      ~algos:[ "BD_CPAR"; "DL_RCBD_CPAR-l" ]
      ~sites ~procs ~n:service_n ()
  in
  let specs =
    Array.init sites (fun _ ->
        { Mp_service.Engine.calendar = Mp_platform.Calendar.create ~procs; q = procs })
  in
  let engine = Mp_core.Serve.engine ~sites:specs () in
  let t0 = Unix.gettimeofday () in
  let outcomes = Mp_service.Engine.run ~pool ~queue_limit ~measure:true engine envelopes in
  let wall = Unix.gettimeofday () -. t0 in
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (o : Mp_service.Engine.outcome) ->
      let k = Mp_service.Response.kind o.response in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    outcomes;
  let count k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  let samples =
    Array.of_list (List.map (fun (o : Mp_service.Engine.outcome) -> o.wall_ns) outcomes)
  in
  Array.sort compare samples;
  let p50 = percentile_ns 0.50 samples and p99 = percentile_ns 0.99 samples in
  let rps = if wall > 0. then float_of_int (List.length outcomes) /. wall else 0. in
  Printf.printf "service soak: %d requests over %d sites (queue-limit %d, budget %d s)\n"
    service_n sites queue_limit budget;
  Printf.printf "  %s\n"
    (String.concat "  "
       (List.map
          (fun k -> Printf.sprintf "%s %d" k (count k))
          [
            "granted"; "rejected"; "available"; "scheduled"; "infeasible"; "cancelled";
            "explained"; "overloaded"; "error";
          ]));
  Printf.printf "  %.0f requests/s; per-request latency p50 %.1f us, p99 %.1f us\n" rps
    (float_of_int p50 /. 1e3)
    (float_of_int p99 /. 1e3);
  set_metrics
    [
      ("requests_per_s", rps);
      ("latency_p50_us", float_of_int p50 /. 1e3);
      ("latency_p99_us", float_of_int p99 /. 1e3);
    ]

let write_core_json total_s =
  let run =
    {
      Mp_forensics.Baseline.schema = Mp_forensics.Baseline.schema_version;
      scale = scale_name;
      jobs;
      total_s;
      sections = List.rev !core_sections;
    }
  in
  Out_channel.with_open_text "BENCH_core.json" (fun oc ->
      Out_channel.output_string oc (Mp_forensics.Baseline.to_json run));
  Printf.printf
    "Perf-baseline record written to BENCH_core.json (schema %s; diff against a committed \
     baseline with bench/compare.exe)\n%!"
    Mp_forensics.Baseline.schema_version

(* A representative Gantt chart of the recommended algorithm on the shared
   bench environment — a quick visual sanity check, uploaded by CI. *)
let write_gantt_svg () =
  let env, dag = instance_of Dag_gen.default in
  let sched = Ressched.schedule env dag in
  let slots =
    Array.to_list
      (Array.mapi
         (fun i (s : Schedule.slot) ->
           {
             Mp_forensics.Render.label = string_of_int i;
             start = s.start;
             finish = s.finish;
             procs = s.procs;
           })
         sched.Schedule.slots)
  in
  Out_channel.with_open_text "BENCH_gantt.svg" (fun oc ->
      Out_channel.output_string oc
        (Mp_forensics.Render.gantt_svg ~base:env.Mp_core.Env.calendar ~slots ()));
  Printf.printf "Representative Gantt chart written to BENCH_gantt.svg\n%!"

let write_obs_artifacts path =
  let snap = Mp_obs.Snapshot.take () in
  Mp_obs.Trace.write_chrome path snap;
  let json_path = Filename.concat (Filename.dirname path) "BENCH_obs.json" in
  Out_channel.with_open_bin json_path (fun oc ->
      Out_channel.output_string oc (Mp_obs.Report.to_json snap));
  Printf.printf "\n=== Observability (MPRES_TRACE) ===\n\n%s" (Mp_obs.Report.text snap);
  Printf.printf "\nChrome trace written to %s (load in Perfetto / chrome://tracing)\n" path;
  Printf.printf "Machine-readable probe dump written to %s\n%!" json_path

let () =
  (* surface the per-scenario wall-clock lines logged by Mp_sim.Experiments *)
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Info);
  Printf.printf
    "mpres benchmark harness (scale: n_app=%d n_res=%d n_dags=%d n_cals=%d, jobs=%d; set MPRES_SCALE / MPRES_JOBS to change)\n"
    scale.n_app scale.n_res scale.n_dags scale.n_cals jobs;
  (match trace_path with
  | Some path ->
      Mp_obs.enabled := true;
      Printf.printf "tracing enabled (MPRES_TRACE=%s)\n" path
  | None -> ());
  let total0 = Unix.gettimeofday () in
  Mp_prelude.Pool.with_pool ~jobs (fun pool ->
      section "Table 1 (application parameters are the generator defaults; see DESIGN.md)"
        (fun () ->
          Printf.printf "%d application specifications enumerated from Table 1\n"
            (List.length Scenario.app_specs));
      section "Table 2" (fun () -> Experiments.print_table2 scale);
      section "Table 3" (fun () -> Experiments.print_table3 scale);
      section "Section 4.3.1 (bottom-level methods)" (fun () ->
          Experiments.print_bl_comparison ~pool scale);
      section "Table 4" (fun () -> Experiments.print_table4 ~pool scale);
      section "Table 5" (fun () -> Experiments.print_table5 ~pool scale);
      section "Table 6" (fun () -> Experiments.print_table6 ~pool scale);
      section "Table 7" (fun () -> Experiments.print_table7 ~pool scale);
      section "Table 8" (fun () -> Experiments.print_table8 ());
      section "Table 9" bench_table9;
      section "Table 10" bench_table10;
      section "Ablation: allocators" (fun () -> Experiments.print_allocator_ablation scale);
      section "Ablation: blind scheduling" (fun () ->
          Experiments.print_blind_ablation ~pool scale);
      section "Ablation: online arrivals" (fun () -> Experiments.print_online_ablation scale);
      section "Ablation: heterogeneous grid" (fun () ->
          Experiments.print_hetero_ablation scale);
      section "Ablation: iCASLB bounds" (fun () ->
          Experiments.print_icaslb_ablation ~pool scale);
      section "Ablation: reservation impact on batch users" (fun () ->
          Experiments.print_reservation_impact scale);
      section "Ablation: CPU-hours vs deadline looseness" (fun () ->
          Experiments.print_pareto_ablation ~pool scale);
      section "Ablation: pessimistic estimates" (fun () ->
          Experiments.print_estimate_ablation ~pool scale);
      section "Service" (fun () -> bench_service ~pool ()));
  Option.iter write_obs_artifacts trace_path;
  let total_s = Unix.gettimeofday () -. total0 in
  write_core_json total_s;
  write_gantt_svg ();
  Printf.printf "\nDone in %.2f s wall-clock (jobs=%d).\n" total_s jobs
