(* Perf-regression gate: diff a fresh BENCH_core.json against a committed
   baseline (see Mp_forensics.Baseline for the schema and tolerances).

   Run with:
     dune exec bench/compare.exe -- \
       --baseline bench/baseline_tiny.json --current BENCH_core.json

   Exit status: 0 when within tolerances, 1 on regression (or unreadable
   input), 2 on usage errors. *)

module Baseline = Mp_forensics.Baseline

let usage () =
  prerr_endline
    "usage: compare --baseline FILE --current FILE [--wall-factor F] [--wall-slop S] \
     [--counter-factor F]";
  exit 2

let () =
  let baseline = ref None
  and current = ref None
  and wall_factor = ref 2.0
  and wall_slop = ref 0.25
  and counter_factor = ref 1.05 in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        parse rest
    | "--current" :: v :: rest ->
        current := Some v;
        parse rest
    | "--wall-factor" :: v :: rest ->
        (match float_of_string_opt v with Some f -> wall_factor := f | None -> usage ());
        parse rest
    | "--wall-slop" :: v :: rest ->
        (match float_of_string_opt v with Some f -> wall_slop := f | None -> usage ());
        parse rest
    | "--counter-factor" :: v :: rest ->
        (match float_of_string_opt v with Some f -> counter_factor := f | None -> usage ());
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match (!baseline, !current) with Some b, Some c -> (b, c) | _ -> usage ()
  in
  let load what path =
    match Baseline.load path with
    | Ok run -> run
    | Error msg ->
        Printf.eprintf "compare: cannot load %s %s: %s\n" what path msg;
        exit 1
  in
  let base = load "baseline" baseline_path in
  let cur = load "current run" current_path in
  let verdict =
    Baseline.compare ~wall_factor:!wall_factor ~wall_slop:!wall_slop
      ~counter_factor:!counter_factor ~baseline:base ~current:cur ()
  in
  List.iter print_endline verdict.lines;
  if verdict.ok then begin
    Printf.printf "OK: no perf regression against %s\n" baseline_path;
    exit 0
  end
  else begin
    Printf.printf "REGRESSION against %s (see FAIL lines above)\n" baseline_path;
    exit 1
  end
