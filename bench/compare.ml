(* Perf-regression gate: diff a fresh BENCH_core.json against a committed
   baseline (see Mp_forensics.Baseline for the schema and tolerances).

   Run with:
     dune exec bench/compare.exe -- \
       --baseline bench/baseline_tiny.json --current BENCH_core.json

   Exit status: 0 when within tolerances, 1 on regression (or unreadable
   input), 2 on usage errors. *)

module Baseline = Mp_forensics.Baseline

let usage () =
  prerr_endline
    "usage: compare --baseline FILE --current FILE [--wall-factor F] [--wall-slop S] \
     [--counter-factor F] [--summary FILE]";
  exit 2

(* Markdown per-section wall-time delta table, for CI job summaries
   ($GITHUB_STEP_SUMMARY). *)
let write_summary path ~baseline_path ~ok (base : Baseline.run) (cur : Baseline.run) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "### Bench wall-clock vs `%s` (scale %s, jobs %d)\n\n" baseline_path
       base.scale base.jobs);
  Buffer.add_string buf "| Section | Baseline [s] | Current [s] | Delta |\n";
  Buffer.add_string buf "|---|---:|---:|---:|\n";
  let row name b c =
    let delta =
      if b > 0.01 then Printf.sprintf "%+.0f%%" ((c -. b) /. b *. 100.) else "-"
    in
    Buffer.add_string buf (Printf.sprintf "| %s | %.2f | %.2f | %s |\n" name b c delta)
  in
  List.iter
    (fun (b : Baseline.section) ->
      match
        List.find_opt (fun (c : Baseline.section) -> c.name = b.name) cur.sections
      with
      | Some c -> row b.name b.wall_s c.wall_s
      | None ->
          Buffer.add_string buf (Printf.sprintf "| %s | %.2f | missing | - |\n" b.name b.wall_s))
    base.sections;
  row "**total**" base.total_s cur.total_s;
  (* Section metrics (throughput, latency percentiles) are machine-speed
     dependent: shown side by side, never part of the gate. *)
  let metric_rows =
    List.concat_map
      (fun (b : Baseline.section) ->
        List.map
          (fun (k, bv) ->
            let cv =
              match
                List.find_opt (fun (c : Baseline.section) -> c.name = b.name) cur.sections
              with
              | Some c -> List.assoc_opt k c.metrics
              | None -> None
            in
            (b.name, k, bv, cv))
          b.metrics)
      base.sections
  in
  if metric_rows <> [] then begin
    Buffer.add_string buf "\n#### Section metrics (informational, not gated)\n\n";
    Buffer.add_string buf "| Section | Metric | Baseline | Current |\n";
    Buffer.add_string buf "|---|---|---:|---:|\n";
    List.iter
      (fun (name, k, bv, cv) ->
        Buffer.add_string buf
          (Printf.sprintf "| %s | %s | %.3f | %s |\n" name k bv
             (match cv with Some v -> Printf.sprintf "%.3f" v | None -> "missing")))
      metric_rows
  end;
  Buffer.add_string buf
    (if ok then "\nNo perf regression.\n"
     else "\n**REGRESSION** - see the compare step's FAIL lines.\n");
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf))

let () =
  let baseline = ref None
  and current = ref None
  and wall_factor = ref 2.0
  and wall_slop = ref 0.25
  and counter_factor = ref 1.05
  and summary = ref None in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        parse rest
    | "--current" :: v :: rest ->
        current := Some v;
        parse rest
    | "--wall-factor" :: v :: rest ->
        (match float_of_string_opt v with Some f -> wall_factor := f | None -> usage ());
        parse rest
    | "--wall-slop" :: v :: rest ->
        (match float_of_string_opt v with Some f -> wall_slop := f | None -> usage ());
        parse rest
    | "--counter-factor" :: v :: rest ->
        (match float_of_string_opt v with Some f -> counter_factor := f | None -> usage ());
        parse rest
    | "--summary" :: v :: rest ->
        summary := Some v;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match (!baseline, !current) with Some b, Some c -> (b, c) | _ -> usage ()
  in
  (* Pre-flight: read the raw [schema] fields before the full decode so a
     stale baseline fails with one actionable line naming both files
     instead of a field-level decode error from Baseline.load. *)
  let raw_schema path =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error msg ->
        Printf.eprintf "compare: cannot read %s: %s\n" path msg;
        exit 1
    | text -> (
        match Mp_prelude.Json.of_string text with
        | Error msg ->
            Printf.eprintf "compare: %s is not JSON: %s\n" path msg;
            exit 1
        | Ok json -> Mp_prelude.Json.str json "schema")
  in
  (match (raw_schema baseline_path, raw_schema current_path) with
  | Some b, Some c when b <> c ->
      Printf.eprintf
        "compare: schema mismatch: baseline %s is %S but current %s is %S - regenerate \
         the baseline (see CLAUDE.md)\n"
        baseline_path b current_path c;
      exit 1
  | _ -> ());
  let load what path =
    match Baseline.load path with
    | Ok run -> run
    | Error msg ->
        Printf.eprintf "compare: cannot load %s %s: %s\n" what path msg;
        exit 1
  in
  let base = load "baseline" baseline_path in
  let cur = load "current run" current_path in
  (* Two well-formed runs that share no section can only be a partial
     (MPRES_BENCH_ONLY) run on one side; comparing them would "pass"
     vacuously, so refuse instead. *)
  let names (r : Baseline.run) =
    List.map (fun (s : Baseline.section) -> s.name) r.sections
  in
  (match (names base, names cur) with
  | (_ :: _ as bn), (_ :: _ as cn) when not (List.exists (fun n -> List.mem n cn) bn) ->
      Printf.eprintf
        "compare: %s and %s have no section in common - one of them looks like a \
         partial MPRES_BENCH_ONLY run; rerun the full bench before comparing\n"
        baseline_path current_path;
      exit 1
  | _ -> ());
  let verdict =
    Baseline.compare ~wall_factor:!wall_factor ~wall_slop:!wall_slop
      ~counter_factor:!counter_factor ~baseline:base ~current:cur ()
  in
  List.iter print_endline verdict.lines;
  Option.iter
    (fun path -> write_summary path ~baseline_path ~ok:verdict.ok base cur)
    !summary;
  if verdict.ok then begin
    Printf.printf "OK: no perf regression against %s\n" baseline_path;
    exit 0
  end
  else begin
    Printf.printf "REGRESSION against %s (see FAIL lines above)\n" baseline_path;
    exit 1
  end
