(* Mp_forensics: the decision journal must be record-only (enabling it
   changes no scheduler output, and what it records matches the emitted
   schedule exactly), the calendar analytics must satisfy the exact
   area identities, the renderers must stay well-formed on edge cases,
   and the perf-baseline comparison must accept itself and reject
   injected regressions.  Also covers the Dag_io text format and the
   CLI's one-line error handling for unreadable input files. *)

module Rng = Mp_prelude.Rng
module Dag_gen = Mp_dag.Dag_gen
module Dag_io = Mp_dag.Dag_io
module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Env = Mp_core.Env
module Ressched = Mp_core.Ressched
module Deadline = Mp_core.Deadline
module Online = Mp_core.Online
module Schedule = Mp_cpa.Schedule
module Journal = Mp_forensics.Journal
module Analytics = Mp_forensics.Analytics
module Render = Mp_forensics.Render
module Baseline = Mp_forensics.Baseline

let contains hay needle = Re.execp (Re.compile (Re.str needle)) hay

(* Random busy calendar, as in test_obs.ml. *)
let busy_calendar ?(p = 8) ?(n_res = 10) ?(horizon = 40_000) seed =
  let rng = Rng.create seed in
  let rec add cal k =
    if k = 0 then cal
    else begin
      let start = Rng.int rng horizon in
      let dur = 600 + Rng.int rng 4_000 in
      let procs = 1 + Rng.int rng (max 1 (p / 2)) in
      match Calendar.reserve_opt cal (Reservation.make ~start ~finish:(start + dur) ~procs) with
      | Some cal -> add cal (k - 1)
      | None -> add cal (k - 1)
    end
  in
  add (Calendar.create ~procs:p) n_res

let busy_env ?p ?n_res seed =
  let calendar = busy_calendar ?p ?n_res seed in
  Env.make ~calendar ~q:(Calendar.average_available calendar ~from_:0 ~until:40_000)

let random_dag seed n = Dag_gen.generate (Rng.create seed) { Dag_gen.default with n }

(* ------------------------------------------------------------------ *)
(* Analytics: exact area identities on random calendars *)

let test_analytics_identities =
  QCheck.Test.make ~count:50 ~name:"utilization + idle fraction = 1 (exact areas)"
    QCheck.(pair small_nat (int_range 0 25))
    (fun (seed, n_res) ->
      let p = 4 + (seed mod 13) in
      let cal = busy_calendar ~p ~n_res (seed + 1) in
      let a = Analytics.analyze cal ~from_:0 ~until:40_000 in
      let span = 40_000 in
      let holes_area =
        List.fold_left
          (fun acc (h : Analytics.hole) -> acc + (h.procs * (h.finish - h.start)))
          0 a.holes
      in
      let hist_total = Array.fold_left (fun acc (_, c) -> acc + c) 0 a.hole_histogram in
      a.busy_area + a.idle_area = p * span
      && holes_area = a.idle_area
      && hist_total = List.length a.holes
      && Float.abs (a.utilization +. a.idle_fraction -. 1.) < 1e-9
      && a.fragmentation >= 0.
      && a.fragmentation <= 1.)

let test_analytics_empty_and_full () =
  let p = 6 in
  let empty = Calendar.create ~procs:p in
  let a = Analytics.analyze empty ~from_:0 ~until:1_000 in
  Alcotest.(check int) "empty calendar: idle area" (p * 1_000) a.Analytics.idle_area;
  Alcotest.(check int) "empty calendar: one hole" 1 (List.length a.holes);
  Alcotest.(check (float 1e-9)) "empty calendar: fragmentation 0" 0. a.fragmentation;
  let full =
    Calendar.reserve empty (Reservation.make ~start:0 ~finish:1_000 ~procs:p)
  in
  let a = Analytics.analyze full ~from_:0 ~until:1_000 in
  Alcotest.(check int) "full calendar: busy area" (p * 1_000) a.Analytics.busy_area;
  Alcotest.(check int) "full calendar: no holes" 0 (List.length a.holes);
  Alcotest.(check (float 1e-9)) "full calendar: utilization 1" 1. a.utilization;
  Alcotest.(check (float 1e-9)) "full calendar: fragmentation 0" 0. a.fragmentation

let test_occupancy_shares () =
  let p = 8 in
  let r1 = Reservation.make ~start:0 ~finish:100 ~procs:2 in
  let r2 = Reservation.make ~start:50 ~finish:200 ~procs:4 in
  let cal = Calendar.reserve (Calendar.reserve (Calendar.create ~procs:p) r1) r2 in
  let occ = Analytics.occupancy cal ~from_:0 ~until:200 [ r1; r2 ] in
  let total_share = List.fold_left (fun acc (_, _, s) -> acc +. s) 0. occ in
  Alcotest.(check (float 1e-9)) "shares sum to 1" 1. total_share;
  let area1 = match occ with (_, a, _) :: _ -> a | [] -> -1 in
  Alcotest.(check int) "r1 area" 200 area1

(* ------------------------------------------------------------------ *)
(* Journal: enabling it changes no scheduler output *)

let test_journal_does_not_change_schedules =
  QCheck.Test.make ~count:25 ~name:"journaling does not change scheduler output"
    QCheck.(pair small_nat small_nat)
    (fun (s1, s2) ->
      let env = busy_env (s1 + 1) in
      let dag = random_dag (s2 + 1) 15 in
      let plain = Ressched.schedule env dag in
      Journal.reset ();
      let journaled = Journal.with_enabled (fun () -> Ressched.schedule env dag) in
      Journal.reset ();
      let deadline = 2 * Schedule.turnaround plain in
      let plain_dl =
        Deadline.resource_conservative ~lambda:0.3 Deadline.DL_RC_CPAR env dag ~deadline
      in
      Journal.reset ();
      let journaled_dl =
        Journal.with_enabled (fun () ->
            Deadline.resource_conservative ~lambda:0.3 Deadline.DL_RC_CPAR env dag ~deadline)
      in
      Journal.reset ();
      plain = journaled && plain_dl = journaled_dl)

(* Every scheduled task must have a journal entry whose winning pair is
   exactly the emitted slot. *)
let check_won_matches sched entries =
  Array.iteri
    (fun i (s : Schedule.slot) ->
      match Journal.won_slot entries ~task:i with
      | None -> Alcotest.failf "task %d has no successful journal entry" i
      | Some (procs, start, finish) ->
          if procs <> s.procs || start <> s.start || finish <> s.finish then
            Alcotest.failf "task %d: journal says %d procs @ [%d, %d), schedule says %d @ [%d, %d)"
              i procs start finish s.procs s.start s.finish)
    sched.Schedule.slots

let test_journal_matches_ressched () =
  let env = busy_env 3 in
  let dag = random_dag 4 20 in
  Journal.reset ();
  let sched = Journal.with_enabled (fun () -> Ressched.schedule env dag) in
  let entries = Journal.take () in
  Journal.reset ();
  check_won_matches sched entries;
  Alcotest.(check int) "one placement per task" (Dag.n dag)
    (List.length (Journal.placements entries))

let test_journal_matches_deadline () =
  let env = busy_env 5 in
  let dag = random_dag 6 15 in
  let loose = 2 * Schedule.turnaround (Ressched.schedule env dag) in
  Journal.reset ();
  let sched =
    Journal.with_enabled (fun () ->
        Deadline.resource_conservative ~lambda:0.5 Deadline.DL_RC_CPAR env dag ~deadline:loose)
  in
  let entries = Journal.take () in
  Journal.reset ();
  match sched with
  | None -> Alcotest.fail "loose deadline should be feasible"
  | Some sched ->
      check_won_matches sched entries;
      (* at least one conservative placement must carry the λ-relaxation
         context *)
      let with_ref =
        List.filter (fun (p : Journal.placement) -> p.reference <> None)
          (Journal.placements entries)
      in
      Alcotest.(check bool) "reference context recorded" true (with_ref <> []);
      List.iter
        (fun (p : Journal.placement) ->
          match (p.reference, p.threshold) with
          | Some r, Some t ->
              if t < r then Alcotest.failf "task %d: threshold %d below reference %d" p.task t r
          | _ -> ())
        with_ref

let test_journal_online_grants () =
  let env = busy_env 7 in
  let dag = random_dag 8 10 in
  let events =
    Array.init (Dag.n dag) (fun k ->
        if k = 1 then [ Mp_service.Request.Reserve { start = 5_000; dur = 1_000; procs = 2 } ]
        else [])
  in
  Journal.reset ();
  let _sched, granted = Journal.with_enabled (fun () -> Online.schedule env ~events dag) in
  let entries = Journal.take () in
  Journal.reset ();
  let grants =
    List.filter_map (function Journal.Grant { granted; _ } -> Some granted | _ -> None) entries
  in
  Alcotest.(check int) "one grant decision journaled" 1 (List.length grants);
  Alcotest.(check int) "granted list consistent with journal" (List.length granted)
    (List.length (List.filter Fun.id grants))

let test_journal_jsonl_and_story () =
  let env = busy_env 11 in
  let dag = random_dag 12 8 in
  Journal.reset ();
  let _ = Journal.with_enabled (fun () -> Ressched.schedule env dag) in
  let entries = Journal.take () in
  Journal.reset ();
  let jsonl = Journal.to_jsonl entries in
  List.iter
    (fun line ->
      if line <> "" then
        Alcotest.(check bool) "JSONL line is an object" true
          (String.length line > 1 && line.[0] = '{' && line.[String.length line - 1] = '}'))
    (String.split_on_char '\n' jsonl);
  Alcotest.(check bool) "jsonl has placements" true (contains jsonl "\"event\":\"placement\"");
  let story = Journal.story entries in
  Alcotest.(check bool) "story mentions a placement" true (contains story "=> placed:")

(* ------------------------------------------------------------------ *)
(* Renderers: well-formed SVG on edge cases *)

let check_svg name svg =
  Alcotest.(check bool) (name ^ ": starts with <svg") true
    (String.length svg > 5 && String.sub svg 0 4 = "<svg");
  Alcotest.(check bool) (name ^ ": ends with </svg>") true (contains svg "</svg>");
  Alcotest.(check bool) (name ^ ": no nan") false (contains svg "nan")

let test_svg_edge_cases () =
  let base = Calendar.create ~procs:4 in
  check_svg "empty slot list" (Render.gantt_svg ~base ~slots:[] ());
  check_svg "single slot"
    (Render.gantt_svg ~base
       ~slots:[ { Render.label = "0"; start = 0; finish = 100; procs = 2 } ]
       ());
  let full = Calendar.reserve base (Reservation.make ~start:0 ~finish:100_000 ~procs:4) in
  check_svg "fully reserved calendar"
    (Render.gantt_svg ~base:full
       ~slots:[ { Render.label = "0"; start = 100_000; finish = 100_100; procs = 4 } ]
       ());
  check_svg "profile" (Render.profile_svg (busy_calendar 17) ~from_:0 ~until:40_000);
  check_svg "profile of empty window start" (Render.profile_svg base ~from_:0 ~until:1)

let test_svg_from_real_schedule () =
  let env = busy_env 19 in
  let dag = random_dag 20 12 in
  let sched = Ressched.schedule env dag in
  let slots =
    Array.to_list
      (Array.mapi
         (fun i (s : Schedule.slot) ->
           { Render.label = string_of_int i; start = s.start; finish = s.finish; procs = s.procs })
         sched.Schedule.slots)
  in
  let svg = Render.gantt_svg ~base:env.calendar ~slots () in
  check_svg "real schedule" svg;
  let html =
    Render.html ~title:"t" ~gantt:svg
      ~profile:(Render.profile_svg env.calendar ~from_:0 ~until:1_000)
      ~analytics:"a < b" ~story:"s & t"
  in
  Alcotest.(check bool) "html escapes pre text" true (contains html "a &lt; b");
  Alcotest.(check bool) "html embeds svg" true (contains html "<svg")

(* ------------------------------------------------------------------ *)
(* Baseline: round trip and regression verdicts *)

let sample_run =
  {
    Baseline.schema = Baseline.schema_version;
    scale = "tiny";
    jobs = 2;
    total_s = 1.5;
    sections =
      [
        {
          Baseline.name = "Table 2";
          wall_s = 0.5;
          counters = [ ("calendar.reserve.calls", 100.) ];
          metrics = [ ("requests_per_s", 123.456) ];
        };
        { Baseline.name = "Table 4"; wall_s = 1.0; counters = []; metrics = [] };
      ];
  }

let test_baseline_roundtrip () =
  match Baseline.of_json (Baseline.to_json sample_run) with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok run ->
      Alcotest.(check string) "scale" sample_run.scale run.Baseline.scale;
      Alcotest.(check int) "jobs" sample_run.jobs run.jobs;
      Alcotest.(check int) "sections" 2 (List.length run.sections);
      let s = List.hd run.sections in
      Alcotest.(check string) "section name" "Table 2" s.Baseline.name;
      Alcotest.(check (float 1e-6)) "wall" 0.5 s.wall_s;
      Alcotest.(check (float 1e-6)) "counter" 100. (List.assoc "calendar.reserve.calls" s.counters);
      Alcotest.(check (float 1e-6)) "metric" 123.456 (List.assoc "requests_per_s" s.metrics)

let test_baseline_compare_ok () =
  let v = Baseline.compare ~baseline:sample_run ~current:sample_run () in
  Alcotest.(check bool) "identical runs pass" true v.Baseline.ok

let test_baseline_compare_regressions () =
  let with_sections sections = { sample_run with Baseline.sections } in
  let slow =
    with_sections
      [
        {
          Baseline.name = "Table 2";
          wall_s = 50.;
          counters = [ ("calendar.reserve.calls", 100.) ];
          metrics = [];
        };
        { Baseline.name = "Table 4"; wall_s = 1.0; counters = []; metrics = [] };
      ]
  in
  Alcotest.(check bool) "injected slowdown fails" false
    (Baseline.compare ~baseline:sample_run ~current:slow ()).Baseline.ok;
  let hot =
    with_sections
      [
        {
          Baseline.name = "Table 2";
          wall_s = 0.5;
          counters = [ ("calendar.reserve.calls", 200.) ];
          metrics = [];
        };
        { Baseline.name = "Table 4"; wall_s = 1.0; counters = []; metrics = [] };
      ]
  in
  Alcotest.(check bool) "counter growth fails" false
    (Baseline.compare ~baseline:sample_run ~current:hot ()).Baseline.ok;
  let missing = with_sections [ List.nth sample_run.Baseline.sections 0 ] in
  Alcotest.(check bool) "missing section fails" false
    (Baseline.compare ~baseline:sample_run ~current:missing ()).Baseline.ok;
  let other_scale = { sample_run with Baseline.scale = "paper" } in
  Alcotest.(check bool) "scale mismatch fails" false
    (Baseline.compare ~baseline:sample_run ~current:other_scale ()).Baseline.ok

let test_baseline_bad_json () =
  (match Baseline.of_json "{" with
  | Ok _ -> Alcotest.fail "truncated JSON accepted"
  | Error msg -> Alcotest.(check bool) "parse error is one line" false (contains msg "\n"));
  match Baseline.of_json "{\"schema\":\"other\",\"scale\":\"t\",\"jobs\":1,\"total_s\":1,\"sections\":[]}" with
  | Ok _ -> Alcotest.fail "wrong schema accepted"
  | Error msg -> Alcotest.(check bool) "names the schema" true (contains msg "other")

(* ------------------------------------------------------------------ *)
(* Dag_io *)

let test_dag_io_roundtrip () =
  let dag = random_dag 23 12 in
  match Dag_io.of_string (Dag_io.to_string dag) with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok dag' ->
      Alcotest.(check int) "n" (Dag.n dag) (Dag.n dag');
      Alcotest.(check int) "edges" (Dag.n_edges dag) (Dag.n_edges dag');
      Array.iteri
        (fun i (tk : Task.t) ->
          let tk' = Dag.task dag' i in
          if tk.seq <> tk'.seq || tk.alpha <> tk'.alpha then
            Alcotest.failf "task %d drifted through the round trip" i)
        (Dag.tasks dag)

let test_dag_io_errors () =
  (match Dag_io.load "/nonexistent/path.dag" with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error _ -> ());
  (match Dag_io.of_string "task 0 bad x" with
  | Ok _ -> Alcotest.fail "malformed task accepted"
  | Error msg -> Alcotest.(check bool) "names the line" true (contains msg "line 1"));
  (match Dag_io.of_string "task 0 10 0.1\ntask 2 10 0.1\nedge 0 2" with
  | Ok _ -> Alcotest.fail "gap in ids accepted"
  | Error _ -> ());
  match Dag_io.of_string "" with
  | Ok _ -> Alcotest.fail "empty file accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* CLI: unreadable inputs exit non-zero with a one-line error *)

(* [dune runtest] runs us from [_build/default/test]; [dune exec
   test/test_forensics.exe] runs from the workspace root. *)
let mpres_exe () =
  let candidates =
    [
      Filename.concat ".." (Filename.concat "bin" "mpres.exe");
      List.fold_left Filename.concat "_build" [ "default"; "bin"; "mpres.exe" ];
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some exe -> exe
  | None -> Alcotest.fail "mpres.exe not built (declared as a dune test dep)"

(* CLI runs put every artifact in a per-process temp dir, never the
   workspace root — stray cli_* files used to litter the repository. *)
let cli_tmp = lazy (Filename.temp_dir "mpres_cli" "")
let in_tmp name = Filename.concat (Lazy.force cli_tmp) name

let run_cli args =
  let exe = mpres_exe () in
  let out = in_tmp "cli_out.txt" and err_file = in_tmp "cli_err.txt" in
  let code = Sys.command (exe ^ " " ^ args ^ " > " ^ out ^ " 2> " ^ err_file) in
  let err = In_channel.with_open_text err_file In_channel.input_all in
  (code, err)

let check_cli_error name (code, err) =
  Alcotest.(check bool) (name ^ ": non-zero exit") true (code <> 0);
  Alcotest.(check bool) (name ^ ": one-line mpres error") true (contains err "mpres:");
  Alcotest.(check bool) (name ^ ": no raw backtrace") false (contains err "Raised at")

let test_cli_unreadable_inputs () =
  check_cli_error "schedule --dag" (run_cli "schedule -n 8 --dag /nonexistent.dag");
  check_cli_error "explain --dag" (run_cli "explain -n 8 --dag /nonexistent.dag");
  check_cli_error "schedule --swf" (run_cli "schedule -n 8 --swf /nonexistent.swf");
  let malformed = in_tmp "cli_malformed.dag" in
  Out_channel.with_open_text malformed (fun oc -> Out_channel.output_string oc "task 0 x y\n");
  check_cli_error "malformed dag" (run_cli ("explain -n 8 --dag " ^ malformed))

let test_cli_explain_formats () =
  let dag_file = in_tmp "cli_roundtrip.dag" in
  (match Dag_io.save dag_file (random_dag 29 6) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "save failed: %s" msg);
  let gantt = in_tmp "cli_gantt.svg" and journal = in_tmp "cli_journal.jsonl" in
  let code, _ = run_cli ("explain --dag " ^ dag_file ^ " --format svg -o " ^ gantt) in
  Alcotest.(check int) "explain svg exits 0" 0 code;
  let svg = In_channel.with_open_text gantt In_channel.input_all in
  check_svg "cli gantt" svg;
  let code, _ = run_cli ("explain --dag " ^ dag_file ^ " --format json -o " ^ journal) in
  Alcotest.(check int) "explain json exits 0" 0 code;
  let jsonl = In_channel.with_open_text journal In_channel.input_all in
  Alcotest.(check bool) "jsonl has placements" true (contains jsonl "\"event\":\"placement\"");
  Alcotest.(check bool) "jsonl has analytics" true (contains jsonl "\"event\":\"analytics\"")

(* ------------------------------------------------------------------ *)
(* Telemetry: JSONL rendering, headline summary, dashboard *)

module Telemetry = Mp_forensics.Telemetry

let telemetry_sample ~site ~t_end ?(served = []) ?(shed_queue = 0) ?(queue_peak = 0)
    ?(occupancy = 0.) ?(sojourns = []) () =
  let sojourn = Mp_obs.Hist.create () in
  List.iter (Mp_obs.Hist.add sojourn) sojourns;
  {
    Telemetry.site;
    t_end;
    window = 60;
    served;
    shed_queue;
    shed_budget = 0;
    queue_depth = 0;
    queue_peak;
    occupancy;
    breakpoints = 1;
    index_visits = 0;
    sojourn;
  }

let telemetry_series () =
  [
    telemetry_sample ~site:0 ~t_end:60
      ~served:[ ("granted", 3); ("rejected", 1) ]
      ~queue_peak:2 ~occupancy:0.5 ~sojourns:[ 1; 2; 40 ] ();
    telemetry_sample ~site:1 ~t_end:60 ();
    telemetry_sample ~site:0 ~t_end:120
      ~served:[ ("granted", 1) ]
      ~shed_queue:2 ~queue_peak:5 ~occupancy:1.0 ~sojourns:[ 700 ] ();
  ]

let test_telemetry_jsonl () =
  let samples = telemetry_series () in
  let jsonl = Telemetry.to_jsonl samples in
  let lines = String.split_on_char '\n' (String.trim jsonl) in
  Alcotest.(check int) "one line per sample" (List.length samples) (List.length lines);
  List.iter
    (fun line ->
      match Mp_prelude.Json.of_string line with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "unparseable sample line: %s (%s)" line msg)
    lines;
  Alcotest.(check bool) "zero served counts dropped" false (contains jsonl "\"rejected\":0");
  Alcotest.(check bool) "sparse sojourn buckets" true (contains jsonl "\"buckets\":[[");
  Alcotest.(check string) "empty series renders empty" "" (Telemetry.to_jsonl [])

let test_telemetry_headline () =
  let h = Telemetry.headline (telemetry_series ()) in
  Alcotest.(check int) "samples" 3 h.Telemetry.h_samples;
  Alcotest.(check int) "served sums windows" 5 h.Telemetry.h_served;
  Alcotest.(check int) "shed sums causes" 2 h.Telemetry.h_shed;
  Alcotest.(check (float 1e-9)) "shed rate" (2. /. 7.) h.Telemetry.h_shed_rate;
  Alcotest.(check int) "max queue depth is the peak" 5 h.Telemetry.h_max_queue_depth;
  Alcotest.(check (float 1e-9)) "peak occupancy" 1.0 h.Telemetry.h_peak_occupancy;
  (* 4 sojourn samples, sorted 1 2 40 700: p999 lands in 700's bucket *)
  Alcotest.(check bool) "p999 in the top sample's bucket" true
    (h.Telemetry.h_p999_sojourn >= 512. && h.Telemetry.h_p999_sojourn <= 700.);
  let empty = Telemetry.headline [] in
  Alcotest.(check int) "empty series" 0 empty.Telemetry.h_samples;
  Alcotest.(check (float 1e-9)) "empty shed rate" 0. empty.Telemetry.h_shed_rate

let test_telemetry_html () =
  let html = Telemetry.html ~title:"soak" (telemetry_series ()) in
  Alcotest.(check bool) "is a document" true (contains html "<!DOCTYPE html>");
  Alcotest.(check bool) "has the title" true (contains html "soak");
  Alcotest.(check bool) "has svg panels" true (contains html "<svg");
  Alcotest.(check bool) "has the headline block" true (contains html "shed");
  (* an empty series must still render a well-formed document *)
  let empty = Telemetry.html ~title:"empty" [] in
  Alcotest.(check bool) "empty series renders" true (contains empty "<!DOCTYPE html>")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mp_forensics"
    [
      ( "analytics",
        [
          QCheck_alcotest.to_alcotest test_analytics_identities;
          Alcotest.test_case "empty and full calendars" `Quick test_analytics_empty_and_full;
          Alcotest.test_case "occupancy shares" `Quick test_occupancy_shares;
        ] );
      ( "journal",
        [
          QCheck_alcotest.to_alcotest test_journal_does_not_change_schedules;
          Alcotest.test_case "won pairs match RESSCHED output" `Quick test_journal_matches_ressched;
          Alcotest.test_case "won pairs match RESSCHEDDL output" `Quick
            test_journal_matches_deadline;
          Alcotest.test_case "online grant decisions" `Quick test_journal_online_grants;
          Alcotest.test_case "jsonl and story render" `Quick test_journal_jsonl_and_story;
        ] );
      ( "render",
        [
          Alcotest.test_case "svg edge cases" `Quick test_svg_edge_cases;
          Alcotest.test_case "svg from a real schedule" `Quick test_svg_from_real_schedule;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "jsonl" `Quick test_telemetry_jsonl;
          Alcotest.test_case "headline" `Quick test_telemetry_headline;
          Alcotest.test_case "html dashboard" `Quick test_telemetry_html;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "round trip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "self-compare passes" `Quick test_baseline_compare_ok;
          Alcotest.test_case "regressions fail" `Quick test_baseline_compare_regressions;
          Alcotest.test_case "bad json rejected" `Quick test_baseline_bad_json;
        ] );
      ( "dag_io",
        [
          Alcotest.test_case "round trip" `Quick test_dag_io_roundtrip;
          Alcotest.test_case "errors" `Quick test_dag_io_errors;
        ] );
      ( "cli",
        [
          Alcotest.test_case "unreadable inputs" `Quick test_cli_unreadable_inputs;
          Alcotest.test_case "explain formats" `Quick test_cli_explain_formats;
        ] );
    ]
