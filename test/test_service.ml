(* Mp_service: the typed request/response protocol, the engine and its
   admission control, the deprecated Probe facade, and the serve CLI.

   The load-bearing pins here:
   - JSON round-trips for Request/Response/envelope (the serve protocol);
   - the engine's [run] is jobs-invariant: any pool size yields identical
     outcomes and final calendars (the --jobs contract of [mpres serve]);
   - cancelling a reservation that is not held answers an [Error] naming
     the reservation (and the facade raises the same message) — the old
     [Probe.cancel] raised a bare "reservation was not granted". *)

module Request = Mp_service.Request
module Response = Mp_service.Response
module Engine = Mp_service.Engine
module Stream = Mp_service.Stream
module Probe = Mp_service.Probe
module Serve = Mp_core.Serve
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Schedule = Mp_cpa.Schedule
module Dag = Mp_dag.Dag
module Dag_gen = Mp_dag.Dag_gen
module Rng = Mp_prelude.Rng

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec at i = i + m <= n && (String.sub hay i m = needle || at (i + 1)) in
  at 0

let dag_of_seed ?(n = 8) seed = Dag_gen.generate (Rng.create seed) { Dag_gen.default with n }

(* ------------------------------------------------------------------ *)
(* Probe facade (migrated from test_platform.ml when Probe became a
   client of the engine) *)

let test_probe_grant_and_count () =
  let p = Probe.create (Calendar.create ~procs:4) in
  (match Probe.request p ~start:0 ~dur:10 ~procs:4 with
  | Response.Granted -> ()
  | r -> Alcotest.failf "expected grant, got %s" (Response.to_string r));
  Alcotest.(check int) "one probe" 1 (Probe.probes p);
  Alcotest.(check int) "one granted" 1 (List.length (Probe.granted p));
  Alcotest.(check int) "hidden calendar updated" 0 (Calendar.available_at (Probe.reveal p) 5)

let test_probe_reject_with_suggestion () =
  let cal =
    Calendar.reserve (Calendar.create ~procs:4) (Reservation.make ~start:0 ~finish:100 ~procs:3)
  in
  let p = Probe.create cal in
  (match Probe.request p ~start:0 ~dur:10 ~procs:2 with
  | Response.Rejected (Some 100) -> ()
  | r -> Alcotest.failf "expected rejection suggesting 100, got %s" (Response.to_string r));
  (* following the suggestion succeeds *)
  match Probe.request p ~start:100 ~dur:10 ~procs:2 with
  | Response.Granted -> Alcotest.(check int) "two probes" 2 (Probe.probes p)
  | r -> Alcotest.failf "suggestion was infeasible: %s" (Response.to_string r)

let test_probe_reject_invalid () =
  let p = Probe.create (Calendar.create ~procs:4) in
  (match Probe.request p ~start:(-5) ~dur:10 ~procs:1 with
  | Response.Rejected None -> ()
  | _ -> Alcotest.fail "negative start must be rejected");
  match Probe.request p ~start:0 ~dur:10 ~procs:5 with
  | Response.Rejected None -> ()
  | _ -> Alcotest.fail "oversize must be rejected outright"

let test_probe_cancel () =
  let p = Probe.create (Calendar.create ~procs:4) in
  ignore (Probe.request p ~start:0 ~dur:10 ~procs:4);
  let r = List.hd (Probe.granted p) in
  Probe.cancel p r;
  Alcotest.(check int) "freed" 4 (Calendar.available_at (Probe.reveal p) 5);
  Alcotest.(check int) "no longer granted" 0 (List.length (Probe.granted p));
  (* regression: the double-cancel error names the reservation (the old
     facade raised a bare "reservation was not granted") *)
  Alcotest.check_raises "double cancel"
    (Invalid_argument "Probe.cancel: reservation [0, 10) x 4 is not held") (fun () ->
      Probe.cancel p r)

(* ------------------------------------------------------------------ *)
(* Engine: per-request semantics *)

let reservation_engine ?(procs = 4) () =
  Engine.create ~sites:[| { Engine.calendar = Calendar.create ~procs; q = procs } |] ()

let test_engine_probe_reads_only () =
  let e = reservation_engine () in
  (match Engine.handle e ~site:0 (Request.Probe { start = 0; dur = 10; procs = 4 }) with
  | Response.Available (Some 0) -> ()
  | r -> Alcotest.failf "probe answered %s" (Response.to_string r));
  Alcotest.(check int) "calendar untouched" 4
    (Calendar.available_at (Engine.calendar e ~site:0) 5);
  match Engine.handle e ~site:0 (Request.Probe { start = 0; dur = 10; procs = 5 }) with
  | Response.Available None -> ()
  | r -> Alcotest.failf "oversize probe answered %s" (Response.to_string r)

let test_engine_cancel_not_held () =
  let e = reservation_engine () in
  (match Engine.handle e ~site:0 (Request.Reserve { start = 0; dur = 10; procs = 4 }) with
  | Response.Granted -> ()
  | r -> Alcotest.failf "reserve answered %s" (Response.to_string r));
  (match Engine.handle e ~site:0 (Request.Cancel { start = 0; finish = 10; procs = 4 }) with
  | Response.Cancelled -> ()
  | r -> Alcotest.failf "cancel answered %s" (Response.to_string r));
  match Engine.handle e ~site:0 (Request.Cancel { start = 0; finish = 10; procs = 4 }) with
  | Response.Error msg ->
      Alcotest.(check string) "names the reservation" "reservation [0, 10) x 4 is not held" msg
  | r -> Alcotest.failf "double cancel answered %s" (Response.to_string r)

let test_engine_no_handlers () =
  let e = reservation_engine () in
  match
    Engine.handle e ~site:0
      (Request.Submit_dag
         { dag = dag_of_seed 1; algo = "BD_CPAR"; deadline = Request.No_deadline })
  with
  | Response.Error msg ->
      Alcotest.(check string) "default handlers refuse DAG work"
        "no scheduler attached (wire Mp_core.Serve.handlers)" msg
  | r -> Alcotest.failf "submit answered %s" (Response.to_string r)

let test_engine_unknown_site () =
  let e = reservation_engine () in
  match Engine.handle e ~site:3 (Request.Probe { start = 0; dur = 1; procs = 1 }) with
  | Response.Error msg -> Alcotest.(check string) "unknown site" "unknown site 3" msg
  | r -> Alcotest.failf "answered %s" (Response.to_string r)

let test_engine_stats () =
  let e = reservation_engine () in
  ignore (Engine.handle e ~site:0 (Request.Reserve { start = 0; dur = 10; procs = 4 }));
  ignore (Engine.handle e ~site:0 (Request.Reserve { start = 0; dur = 10; procs = 4 }));
  ignore (Engine.handle e ~site:0 (Request.Probe { start = 50; dur = 10; procs = 1 }));
  match Engine.handle e ~site:0 (Request.Stats { last = 10 }) with
  | Response.Stats s ->
      let count k =
        match List.assoc_opt k s.Response.counts with Some v -> v | None -> 0
      in
      Alcotest.(check int) "requests includes this one" 4 s.Response.requests;
      Alcotest.(check int) "one granted" 1 (count "granted");
      Alcotest.(check int) "one rejected" 1 (count "rejected");
      Alcotest.(check int) "one available" 1 (count "available");
      Alcotest.(check int) "counts cover only prior responses" 0 (count "stats");
      Alcotest.(check int) "one reservation held" 1 s.Response.held;
      Alcotest.(check bool) "breakpoints positive" true (s.Response.breakpoints > 0);
      (* the flight recorder only fills under [run] *)
      Alcotest.(check int) "no digests outside run" 0 (List.length s.Response.recent);
      (* the snapshot reads only: a fresh probe still sees 4 free procs at 50 *)
      Alcotest.(check int) "calendar untouched" 4
        (Calendar.available_at (Engine.calendar e ~site:0) 50)
  | r -> Alcotest.failf "stats answered %s" (Response.to_string r)

(* ------------------------------------------------------------------ *)
(* Serve handlers: the registry-backed submit/explain entry points *)

let serve_engine ?(procs = 16) () =
  Serve.engine ~sites:[| { Engine.calendar = Calendar.create ~procs; q = procs } |] ()

let test_submit_ressched () =
  let e = serve_engine () in
  let dag = dag_of_seed 2 in
  match
    Engine.handle e ~site:0
      (Request.Submit_dag { dag; algo = "BD_CPAR"; deadline = Request.No_deadline })
  with
  | Response.Scheduled { schedule; deadline = None } -> (
      (* the schedule is valid against the pre-submit calendar... *)
      (match Schedule.validate dag ~base:(Calendar.create ~procs:16) schedule with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      (* ...and its reservations were committed to the live calendar *)
      match Schedule.reservations schedule with
      | [] -> Alcotest.fail "no reservations"
      | r :: _ ->
          Alcotest.(check bool) "committed" true
            (Calendar.available_at (Engine.calendar e ~site:0) r.Reservation.start < 16))
  | r -> Alcotest.failf "submit answered %s" (Response.to_string r)

let test_submit_ressched_refuses_deadline () =
  let e = serve_engine () in
  match
    Engine.handle e ~site:0
      (Request.Submit_dag { dag = dag_of_seed 3; algo = "BD_CPAR"; deadline = Request.By 100 })
  with
  | Response.Error msg ->
      Alcotest.(check bool) "says RESSCHED" true (contains msg "RESSCHED algorithm")
  | r -> Alcotest.failf "submit answered %s" (Response.to_string r)

let test_submit_deadline_tightest_then_by () =
  let dag = dag_of_seed 4 in
  let submit deadline =
    Engine.handle (serve_engine ()) ~site:0
      (Request.Submit_dag { dag; algo = "DL_RCBD_CPAR-l"; deadline })
  in
  match submit Request.Tightest with
  | Response.Scheduled { schedule; deadline = Some k } -> (
      Alcotest.(check bool) "tightest schedule meets its deadline" true
        (Schedule.turnaround schedule <= k);
      (match submit (Request.By k) with
      | Response.Scheduled { deadline = Some k'; _ } ->
          Alcotest.(check int) "fixed deadline echoed" k k'
      | r -> Alcotest.failf "By tightest answered %s" (Response.to_string r));
      (* far below the tightest feasible deadline the heuristic must fail *)
      match submit (Request.By (k / 8)) with
      | Response.Infeasible { deadline = Some k''; _ } ->
          Alcotest.(check int) "infeasible echoes the deadline" (k / 8) k''
      | r -> Alcotest.failf "By (tightest / 8) answered %s" (Response.to_string r))
  | r -> Alcotest.failf "Tightest answered %s" (Response.to_string r)

let test_submit_unknown_algo () =
  match
    Engine.handle (serve_engine ()) ~site:0
      (Request.Submit_dag { dag = dag_of_seed 5; algo = "nope"; deadline = Request.No_deadline })
  with
  | Response.Error msg ->
      Alcotest.(check bool) "names the algorithm" true (contains msg "unknown algorithm \"nope\"")
  | r -> Alcotest.failf "submit answered %s" (Response.to_string r)

let test_explain_formats () =
  let dag = dag_of_seed 6 in
  let explain format =
    Engine.handle (serve_engine ()) ~site:0
      (Request.Explain { dag; algo = "BD_CPAR"; deadline = None; format })
  in
  (match explain "text" with
  | Response.Explained report ->
      Alcotest.(check bool) "report has the header" true (contains report "algorithm BD_CPAR");
      Alcotest.(check bool) "report has the analytics" true (contains report "utilization")
  | r -> Alcotest.failf "explain answered %s" (Response.to_string r));
  (match explain "json" with
  | Response.Explained report ->
      Alcotest.(check bool) "jsonl has placements" true (contains report "\"event\":\"placement\"");
      Alcotest.(check bool) "jsonl has analytics" true (contains report "\"event\":\"analytics\"")
  | r -> Alcotest.failf "explain json answered %s" (Response.to_string r));
  (match explain "pdf" with
  | Response.Error msg -> Alcotest.(check bool) "unknown format" true (contains msg "pdf")
  | r -> Alcotest.failf "explain pdf answered %s" (Response.to_string r));
  (* explain never changes the calendar *)
  let e = serve_engine () in
  ignore
    (Engine.handle e ~site:0
       (Request.Explain { dag; algo = "BD_CPAR"; deadline = None; format = "text" }));
  Alcotest.(check int) "calendar untouched" 16
    (Calendar.available_at (Engine.calendar e ~site:0) 0)

(* ------------------------------------------------------------------ *)
(* Admission control (simulated time, deterministic) *)

let envelope ?budget id payload =
  { Request.id; site = 0; arrival = 0; budget; payload }

let reserve_at start = Request.Reserve { start; dur = 10; procs = 1 }

let test_queue_limit_sheds () =
  (* five cost-1 requests arrive at t=0 at one site: [queue_limit] bounds
     the admitted requests still queued or in service, so two are
     admitted and the rest shed *)
  let envs = List.init 5 (fun i -> envelope i (reserve_at (i * 100))) in
  let outcomes = Engine.run ~queue_limit:2 (reservation_engine ()) envs in
  let kinds = List.map (fun (o : Engine.outcome) -> Response.kind o.response) outcomes in
  Alcotest.(check (list string))
    "first two admitted, rest shed"
    [ "granted"; "granted"; "overloaded"; "overloaded"; "overloaded" ]
    kinds;
  (* unbounded queue: nobody is shed *)
  let outcomes = Engine.run (reservation_engine ()) envs in
  Alcotest.(check int) "no shedding without a limit" 0
    (List.length
       (List.filter (fun (o : Engine.outcome) -> o.response = Response.Overloaded) outcomes))

let test_budget_sheds () =
  (* id 0 occupies the server for 1 simulated second; id 1 tolerates no
     queue delay and is shed; id 2 tolerates plenty and is served *)
  let envs =
    [
      envelope 0 (reserve_at 0);
      envelope 1 ~budget:0 (reserve_at 100);
      envelope 2 ~budget:30 (reserve_at 200);
    ]
  in
  let outcomes = Engine.run (reservation_engine ()) envs in
  let kinds = List.map (fun (o : Engine.outcome) -> Response.kind o.response) outcomes in
  Alcotest.(check (list string)) "budget shed" [ "granted"; "overloaded"; "granted" ] kinds;
  match outcomes with
  | [ _; shed; served ] ->
      Alcotest.(check int) "shed at its arrival" 0 shed.Engine.started;
      Alcotest.(check int) "served after the queue drains" 1 served.Engine.started
  | _ -> Alcotest.fail "expected three outcomes"

let test_run_flight_recorder () =
  (* under [run] every serviced request leaves a digest, so an in-band
     Stats request sees the two requests served before it, oldest
     first *)
  let envs =
    [
      envelope 0 (reserve_at 0);
      envelope 1 (reserve_at 100);
      envelope 2 (Request.Stats { last = 64 });
    ]
  in
  match Engine.run (reservation_engine ()) envs with
  | [ _; _; { Engine.response = Response.Stats s; _ } ] ->
      Alcotest.(check (list int)) "digests oldest first" [ 0; 1 ]
        (List.map (fun d -> d.Response.d_id) s.Response.recent);
      List.iter
        (fun (d : Response.digest) ->
          Alcotest.(check string) "digest outcome" "granted" d.d_outcome)
        s.Response.recent
  | _ -> Alcotest.fail "expected three outcomes ending in a stats response"

let test_run_unknown_site () =
  let envs = [ { Request.id = 0; site = 9; arrival = 0; budget = None; payload = reserve_at 0 } ] in
  match Engine.run (reservation_engine ()) envs with
  | [ { Engine.response = Response.Error msg; _ } ] ->
      Alcotest.(check string) "unknown site" "unknown site 9" msg
  | _ -> Alcotest.fail "expected one error outcome"

(* ------------------------------------------------------------------ *)
(* Stream generator *)

let test_stream_deterministic () =
  let gen () =
    Stream.generate (Rng.create 42) ~budget:30 ~sites:3 ~procs:16 ~n:200 ()
  in
  let a = gen () and b = gen () in
  Alcotest.(check (list string)) "same seed, same stream"
    (List.map Request.envelope_to_string a)
    (List.map Request.envelope_to_string b);
  List.iteri
    (fun i (e : Request.envelope) ->
      Alcotest.(check int) "ids are positions" i e.id;
      Alcotest.(check bool) "site in range" true (e.site >= 0 && e.site < 3))
    a;
  let arrivals = List.map (fun (e : Request.envelope) -> e.arrival) a in
  Alcotest.(check bool) "arrivals non-decreasing" true
    (List.for_all2 ( <= ) arrivals (List.tl arrivals @ [ max_int ]));
  Alcotest.check_raises "no sites" (Invalid_argument "Stream.generate: sites < 1") (fun () ->
      ignore (Stream.generate (Rng.create 1) ~sites:0 ~procs:4 ~n:1 ()))

(* ------------------------------------------------------------------ *)
(* Properties: JSON round-trips and jobs-invariance *)

let gen_dag = QCheck.Gen.(map (fun s -> dag_of_seed ~n:(6 + (s mod 5)) s) (0 -- 1000))

let gen_window = QCheck.Gen.(triple (0 -- 10_000) (1 -- 5_000) (1 -- 64))

let gen_algo = QCheck.Gen.oneofl [ "BD_CPAR"; "DL_RCBD_CPAR-l"; "cpa"; "odd \"name\"\n" ]

let gen_deadline_spec =
  QCheck.Gen.(
    oneof
      [
        return Request.No_deadline;
        map (fun k -> Request.By k) (0 -- 100_000);
        return Request.Tightest;
      ])

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map (fun (start, dur, procs) -> Request.Reserve { start; dur; procs }) gen_window;
        map (fun (start, dur, procs) -> Request.Probe { start; dur; procs }) gen_window;
        map
          (fun (start, dur, procs) -> Request.Cancel { start; finish = start + dur; procs })
          gen_window;
        map3
          (fun dag algo deadline -> Request.Submit_dag { dag; algo; deadline })
          gen_dag gen_algo gen_deadline_spec;
        map3
          (fun dag algo (deadline, format) -> Request.Explain { dag; algo; deadline; format })
          gen_dag gen_algo
          (pair (option (0 -- 100_000)) (oneofl [ "text"; "json"; "svg"; "html" ]));
        map (fun last -> Request.Stats { last }) (0 -- 128);
      ])

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request JSON round-trips" ~count:200 (QCheck.make gen_request)
    (fun r ->
      match Request.of_string (Request.to_string r) with
      | Ok r' -> Request.to_string r' = Request.to_string r
      | Error msg -> QCheck.Test.fail_reportf "parse failed: %s" msg)

let gen_envelope =
  QCheck.Gen.(
    map3
      (fun id (site, arrival) (budget, payload) ->
        { Request.id; site; arrival; budget; payload })
      (0 -- 10_000)
      (pair (0 -- 10) (0 -- 100_000))
      (pair (option (0 -- 600)) gen_request))

let prop_envelope_roundtrip =
  QCheck.Test.make ~name:"envelope JSONL round-trips" ~count:200 (QCheck.make gen_envelope)
    (fun e ->
      match Request.envelope_of_string (Request.envelope_to_string e) with
      | Ok e' -> Request.envelope_to_string e' = Request.envelope_to_string e
      | Error msg -> QCheck.Test.fail_reportf "parse failed: %s" msg)

let gen_digest =
  QCheck.Gen.(
    map
      (fun ((id, arrival), (started, k)) ->
        {
          Response.d_id = id;
          d_arrival = arrival;
          d_started = started;
          d_outcome = List.nth Response.kinds (k mod Response.n_kinds);
        })
      (pair (pair (0 -- 10_000) (0 -- 100_000)) (pair (0 -- 100_000) (0 -- 20))))

let gen_stats =
  QCheck.Gen.(
    map3
      (fun requests counts ((sq, sb, qd), (qp, held, bp), recent) ->
        Response.Stats
          {
            requests;
            counts = List.map2 (fun k c -> (k, c)) Response.kinds counts;
            shed_queue = sq;
            shed_budget = sb;
            queue_depth = qd;
            queue_peak = qp;
            held;
            breakpoints = bp;
            recent;
          })
      (0 -- 100_000)
      (list_repeat Response.n_kinds (0 -- 1_000))
      (triple
         (triple (0 -- 100) (0 -- 100) (0 -- 100))
         (triple (0 -- 100) (0 -- 100) (0 -- 10_000))
         (list_size (0 -- 5) gen_digest)))

let gen_response =
  QCheck.Gen.(
    oneof
      [
        return Response.Granted;
        map (fun s -> Response.Rejected s) (option (0 -- 10_000));
        map (fun s -> Response.Available s) (option (0 -- 10_000));
        map2
          (fun slots deadline ->
            let slots =
              List.map
                (fun (s, d, p) -> ({ start = s; finish = s + d; procs = p } : Schedule.slot))
                slots
            in
            Response.Scheduled
              { schedule = { Schedule.slots = Array.of_list slots }; deadline })
          (list_size (0 -- 5) gen_window)
          (option (0 -- 10_000));
        map2
          (fun algo deadline -> Response.Infeasible { algo; deadline })
          gen_algo
          (option (0 -- 10_000));
        return Response.Cancelled;
        map (fun s -> Response.Explained s) (small_string ~gen:printable);
        return Response.Overloaded;
        gen_stats;
        map (fun s -> Response.Error s) (small_string ~gen:printable);
      ])

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response JSON round-trips" ~count:200 (QCheck.make gen_response)
    (fun r ->
      match Response.of_string (Response.to_string r) with
      | Ok r' -> r' = r
      | Error msg -> QCheck.Test.fail_reportf "parse failed: %s" msg)

(* The --jobs contract: one stream, identical grant/reject/shed decisions,
   final calendars and telemetry series at any pool size.  [measure:false]
   keeps wall_ns at 0, so whole outcome records must be equal; the
   telemetry is compared as rendered JSONL — the exact bytes the CI soak
   diffs across --jobs values. *)
let run_with_jobs seed jobs =
  let envelopes =
    Stream.generate (Rng.create seed) ~budget:30
      ~algos:[ "BD_CPAR"; "DL_RCBD_CPAR-l" ]
      ~sites:3 ~procs:16 ~n:80 ()
  in
  let engine =
    Serve.engine
      ~sites:(Array.init 3 (fun _ -> { Engine.calendar = Calendar.create ~procs:16; q = 16 }))
      ()
  in
  let sink = Engine.Stats.sink ~every:30 () in
  let outcomes =
    if jobs = 1 then Engine.run ~queue_limit:4 ~stats:sink engine envelopes
    else
      Mp_prelude.Pool.with_pool ~jobs (fun pool ->
          Engine.run ~pool ~queue_limit:4 ~stats:sink engine envelopes)
  in
  let rects =
    List.init 3 (fun site ->
        Calendar.busy_rectangles (Engine.calendar engine ~site) ~from_:0 ~until:400_000)
  in
  (outcomes, rects, Mp_forensics.Telemetry.to_jsonl (Engine.Stats.samples sink))

let prop_jobs_invariant =
  QCheck.Test.make ~name:"run is jobs-invariant (outcomes, calendars, telemetry)" ~count:4
    (QCheck.make QCheck.Gen.(0 -- 1_000))
    (fun seed -> run_with_jobs seed 1 = run_with_jobs seed 3)

(* Replay stability: re-running the engine over the textual round-trip of
   the envelope stream (what --dump writes and --replay reads) yields the
   identical telemetry series. *)
let prop_telemetry_replay_stable =
  QCheck.Test.make ~name:"telemetry is dump/replay-stable" ~count:4
    (QCheck.make QCheck.Gen.(0 -- 1_000))
    (fun seed ->
      let envelopes =
        Stream.generate (Rng.create seed) ~budget:30 ~sites:2 ~procs:16 ~n:60 ()
      in
      let reparsed =
        List.map
          (fun e ->
            match Request.envelope_of_string (Request.envelope_to_string e) with
            | Ok e' -> e'
            | Error msg -> QCheck.Test.fail_reportf "envelope reparse failed: %s" msg)
          envelopes
      in
      let series envs =
        let engine =
          Serve.engine
            ~sites:
              (Array.init 2 (fun _ -> { Engine.calendar = Calendar.create ~procs:16; q = 16 }))
            ()
        in
        let sink = Engine.Stats.sink ~every:45 () in
        ignore (Engine.run ~queue_limit:4 ~stats:sink engine envs);
        Mp_forensics.Telemetry.to_jsonl (Engine.Stats.samples sink)
      in
      series envelopes = series reparsed)

(* ------------------------------------------------------------------ *)
(* serve CLI: soak smoke and dump/replay *)

let mpres_exe () =
  let candidates =
    [
      Filename.concat ".." (Filename.concat "bin" "mpres.exe");
      List.fold_left Filename.concat "_build" [ "default"; "bin"; "mpres.exe" ];
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some exe -> exe
  | None -> Alcotest.fail "mpres.exe not built (declared as a dune test dep)"

(* CLI runs put every artifact in a per-process temp dir, never the
   workspace root — stray serve_* files used to litter the repository. *)
let cli_tmp = lazy (Filename.temp_dir "mpres_serve" "")
let in_tmp name = Filename.concat (Lazy.force cli_tmp) name

let run_cli args out =
  Sys.command
    (Printf.sprintf "%s %s > %s 2> %s" (mpres_exe ()) args out (in_tmp "serve_err.txt"))

(* the ["responses":{...}] object of the --json report: the deterministic
   part (counts per response kind), free of wall-clock noise *)
let responses_part path =
  let s = In_channel.with_open_text path In_channel.input_all in
  let needle = "\"responses\"" in
  let n = String.length s and m = String.length needle in
  let rec find i =
    if i + m > n then Alcotest.failf "%s: no %s key" path needle
    else if String.sub s i m = needle then i
    else find (i + 1)
  in
  let from_ = find 0 in
  match String.index_from_opt s from_ '}' with
  | Some close -> String.sub s from_ (close - from_ + 1)
  | None -> Alcotest.failf "%s: unterminated responses object" path

let test_serve_cli_roundtrip () =
  let args = "--sites 2 --procs 16 --queue-limit 8 --stats-every 30 --json" in
  let trace = in_tmp "serve_trace.jsonl" in
  let stats_a = in_tmp "serve_stats_a.jsonl" and stats_b = in_tmp "serve_stats_b.jsonl" in
  let out1 = in_tmp "serve_out1.txt" and out2 = in_tmp "serve_out2.txt" in
  let code =
    run_cli
      (Printf.sprintf "serve -n 250 --seed 7 --budget 20 --dump %s --stats-out %s %s" trace
         stats_a args)
      out1
  in
  Alcotest.(check int) "serve exits 0" 0 code;
  let out = In_channel.with_open_text out1 In_channel.input_all in
  Alcotest.(check bool) "reports throughput" true (contains out "\"requests_per_s\"");
  Alcotest.(check bool) "reports latency percentiles" true (contains out "\"latency_p99_ns\"");
  Alcotest.(check bool) "reports p999" true (contains out "\"latency_p999_ns\"");
  Alcotest.(check bool) "reports the stats summary" true (contains out "\"queue_peak\"");
  let code =
    run_cli (Printf.sprintf "serve --replay %s --stats-out %s %s" trace stats_b args) out2
  in
  Alcotest.(check int) "replay exits 0" 0 code;
  Alcotest.(check string) "replay reproduces every response count" (responses_part out1)
    (responses_part out2);
  let slurp p = In_channel.with_open_text p In_channel.input_all in
  let sa = slurp stats_a in
  Alcotest.(check bool) "stats JSONL is non-empty" true (String.length sa > 0);
  Alcotest.(check bool) "stats JSONL has sojourn histograms" true (contains sa "\"sojourn\"");
  Alcotest.(check string) "replay reproduces the telemetry bytes" sa (slurp stats_b)

(* ------------------------------------------------------------------ *)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_request_roundtrip;
        prop_envelope_roundtrip;
        prop_response_roundtrip;
        prop_jobs_invariant;
        prop_telemetry_replay_stable;
      ]
  in
  Alcotest.run "mp_service"
    [
      ( "probe",
        [
          Alcotest.test_case "grant and count" `Quick test_probe_grant_and_count;
          Alcotest.test_case "reject with suggestion" `Quick test_probe_reject_with_suggestion;
          Alcotest.test_case "reject invalid" `Quick test_probe_reject_invalid;
          Alcotest.test_case "cancel" `Quick test_probe_cancel;
        ] );
      ( "engine",
        [
          Alcotest.test_case "probe reads only" `Quick test_engine_probe_reads_only;
          Alcotest.test_case "cancel not held" `Quick test_engine_cancel_not_held;
          Alcotest.test_case "no handlers" `Quick test_engine_no_handlers;
          Alcotest.test_case "unknown site" `Quick test_engine_unknown_site;
          Alcotest.test_case "stats snapshot" `Quick test_engine_stats;
        ] );
      ( "serve-handlers",
        [
          Alcotest.test_case "submit ressched" `Quick test_submit_ressched;
          Alcotest.test_case "ressched refuses deadline" `Quick
            test_submit_ressched_refuses_deadline;
          Alcotest.test_case "deadline tightest then by" `Quick
            test_submit_deadline_tightest_then_by;
          Alcotest.test_case "unknown algorithm" `Quick test_submit_unknown_algo;
          Alcotest.test_case "explain formats" `Quick test_explain_formats;
        ] );
      ( "admission",
        [
          Alcotest.test_case "queue limit sheds" `Quick test_queue_limit_sheds;
          Alcotest.test_case "budget sheds" `Quick test_budget_sheds;
          Alcotest.test_case "flight recorder" `Quick test_run_flight_recorder;
          Alcotest.test_case "unknown site outcome" `Quick test_run_unknown_site;
        ] );
      ("stream", [ Alcotest.test_case "deterministic" `Quick test_stream_deterministic ]);
      ("properties", props);
      ("cli", [ Alcotest.test_case "serve dump/replay" `Quick test_serve_cli_roundtrip ]);
    ]
