open Mp_cpa
module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Analysis = Mp_dag.Analysis
module Dag_gen = Mp_dag.Dag_gen
module Rng = Mp_prelude.Rng
module Calendar = Mp_platform.Calendar

let diamond () =
  let tasks = Array.mapi (fun id s -> Task.make ~id ~seq:s ~alpha:0.1) [| 100.; 200.; 300.; 400. |] in
  Dag.make tasks [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let random_dag ?(n = 30) seed =
  Dag_gen.generate (Rng.create seed) { Dag_gen.default with n }

(* ------------------------------------------------------------------ *)
(* Allocation *)

let test_alloc_bounds () =
  let d = random_dag 1 in
  List.iter
    (fun criterion ->
      let allocs = Allocation.allocate ~criterion ~p:32 d in
      Array.iter
        (fun a -> if a < 1 || a > 32 then Alcotest.failf "allocation %d outside [1, 32]" a)
        allocs)
    [ Allocation.Classic; Allocation.Improved ]

let test_alloc_single_proc () =
  let d = random_dag 2 in
  let allocs = Allocation.allocate ~p:1 d in
  Alcotest.(check bool) "all ones" true (Array.for_all (fun a -> a = 1) allocs)

let test_alloc_reduces_cp () =
  let d = random_dag 3 in
  let p = 64 in
  let ones = Array.make (Dag.n d) 1 in
  let allocs = Allocation.allocate ~p d in
  let cp_of a = Analysis.cp_length d ~weights:(Allocation.weights d ~allocs:a) in
  Alcotest.(check bool) "cp shrinks or stays" true (cp_of allocs <= cp_of ones +. 1e-9)

let test_alloc_improved_not_larger () =
  (* The improved criterion caps allocations, so its total work should not
     exceed Classic's. *)
  let d = random_dag 4 in
  let p = 64 in
  let work c = Analysis.total_work d ~allocs:(Allocation.allocate ~criterion:c ~p d) in
  Alcotest.(check bool) "improved uses <= work" true
    (work Allocation.Improved <= work Allocation.Classic +. 1e-9)

let test_alloc_deterministic () =
  let d = random_dag 17 in
  Alcotest.(check bool) "same allocations" true
    (Allocation.allocate ~p:16 d = Allocation.allocate ~p:16 d)

let test_alloc_improved_level_cap () =
  (* The improved criterion caps each task at ceil(p / width(level)). *)
  let d = random_dag ~n:40 18 in
  let p = 32 in
  let allocs = Allocation.allocate ~criterion:Allocation.Improved ~p d in
  let lev = Analysis.levels d in
  let widths = Analysis.level_widths d in
  Array.iteri
    (fun i a ->
      let cap = max 1 ((p + widths.(lev.(i)) - 1) / widths.(lev.(i))) in
      if a > cap then Alcotest.failf "task %d alloc %d exceeds level cap %d" i a cap)
    allocs

let test_alloc_invalid_p () =
  let d = diamond () in
  Alcotest.check_raises "p < 1" (Invalid_argument "Allocation.allocate: p < 1") (fun () ->
      ignore (Allocation.allocate ~p:0 d))

(* ------------------------------------------------------------------ *)
(* Mapping / Schedule *)

let check_valid dag sched ~p =
  match Schedule.validate dag ~base:(Calendar.create ~procs:p) sched with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_map_diamond_serial () =
  let d = diamond () in
  let sched = Mapping.map d ~allocs:[| 1; 1; 1; 1 |] ~p:1 in
  check_valid d sched ~p:1;
  (* On one processor everything serializes: makespan = total exec time. *)
  let expected =
    Array.fold_left (fun acc tk -> acc + Task.exec_time tk 1) 0 (Dag.tasks d)
  in
  Alcotest.(check int) "serialized makespan" expected (Schedule.turnaround sched)

let test_map_diamond_parallel () =
  let d = diamond () in
  let sched = Mapping.map d ~allocs:[| 1; 1; 1; 1 |] ~p:4 in
  check_valid d sched ~p:4;
  (* Tasks 1 and 2 overlap: makespan = t0 + max(t1, t2) + t3. *)
  let e i = Task.exec_time (Dag.task d i) 1 in
  Alcotest.(check int) "parallel makespan" (e 0 + max (e 1) (e 2) + e 3)
    (Schedule.turnaround sched)

let test_map_rejects_oversize_alloc () =
  let d = diamond () in
  Alcotest.check_raises "alloc > p" (Invalid_argument "Mapping.map: allocation outside [1, p]")
    (fun () -> ignore (Mapping.map d ~allocs:[| 1; 5; 1; 1 |] ~p:4))

let test_map_subset_all () =
  let d = diamond () in
  let keep = [| true; true; true; true |] in
  match Mapping.map_subset d ~allocs:[| 1; 1; 1; 1 |] ~p:4 ~keep with
  | None -> Alcotest.fail "expected Some"
  | Some starts ->
      Alcotest.(check int) "entry starts at 0" 0 starts.(0);
      Alcotest.(check bool) "all kept tasks have starts" true (Array.for_all (fun s -> s >= 0) starts)

let test_map_subset_suffix () =
  let d = diamond () in
  let keep = [| false; true; true; true |] in
  match Mapping.map_subset d ~allocs:[| 1; 1; 1; 1 |] ~p:4 ~keep with
  | None -> Alcotest.fail "expected Some"
  | Some starts ->
      Alcotest.(check int) "dropped task marked" (-1) starts.(0);
      Alcotest.(check bool) "exit after mids" true
        (starts.(3) >= starts.(1) && starts.(3) >= starts.(2))

let test_map_subset_none () =
  let d = diamond () in
  Alcotest.(check bool) "nothing kept" true
    (Mapping.map_subset d ~allocs:[| 1; 1; 1; 1 |] ~p:4 ~keep:[| false; false; false; false |] = None)

let test_schedule_metrics () =
  let d = diamond () in
  let sched = Mapping.map d ~allocs:[| 2; 2; 2; 2 |] ~p:4 in
  let expected_cpu =
    Array.fold_left (fun acc tk -> acc + Task.work tk 2) 0 (Dag.tasks d)
  in
  Alcotest.(check int) "cpu seconds" expected_cpu (Schedule.cpu_seconds sched);
  Alcotest.(check int) "reservations count" 4 (List.length (Schedule.reservations sched))

let test_schedule_to_json () =
  let d = diamond () in
  let sched = Mapping.map d ~allocs:[| 1; 1; 1; 1 |] ~p:4 in
  let competing = [ Mp_platform.Reservation.make ~start:1 ~finish:2 ~procs:1 ] in
  let s = Schedule.to_json ~competing sched in
  let count c = String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 s in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check int) "balanced brackets" (count '[') (count ']');
  (* 4 task objects + 1 competing object + the root *)
  Alcotest.(check int) "object count" 6 (count '{');
  let has_substr needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has turnaround" true (has_substr "\"turnaround\"" s);
  Alcotest.(check bool) "has competing" true (has_substr "\"competing\"" s)

let test_schedule_validate_catches_precedence () =
  let d = diamond () in
  let bad =
    {
      Schedule.slots =
        [|
          { start = 0; finish = 100; procs = 1 };
          { start = 50; finish = 250; procs = 1 };
          (* starts before its predecessor finishes *)
          { start = 100; finish = 400; procs = 1 };
          { start = 400; finish = 800; procs = 1 };
        |];
    }
  in
  match Schedule.validate d ~base:(Calendar.create ~procs:4) bad with
  | Ok () -> Alcotest.fail "expected precedence error"
  | Error msg -> Alcotest.(check bool) "mentions precedence" true
      (String.length msg > 0)

let test_schedule_validate_catches_deadline () =
  let d = diamond () in
  let sched = Mapping.map d ~allocs:[| 1; 1; 1; 1 |] ~p:4 in
  match Schedule.validate d ~base:(Calendar.create ~procs:4) ~deadline:1 sched with
  | Ok () -> Alcotest.fail "expected deadline error"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* CPA end-to-end *)

let test_cpa_beats_sequential () =
  let d = random_dag ~n:40 5 in
  let p = 32 in
  let seq_makespan =
    Array.fold_left (fun acc tk -> acc + Task.exec_time tk 1) 0 (Dag.tasks d)
  in
  Alcotest.(check bool) "cpa < serialized" true (Cpa.makespan ~p d < seq_makespan)

let test_cpa_valid_schedules () =
  for seed = 10 to 15 do
    let d = random_dag seed in
    let sched = Cpa.schedule ~p:16 d in
    check_valid d sched ~p:16
  done

let test_mcpa_level_cap () =
  let d = random_dag ~n:40 6 in
  let p = 16 in
  let allocs = Mcpa.allocate ~p d in
  let lev = Analysis.levels d in
  let n_levels = 1 + Array.fold_left max 0 lev in
  let level_total = Array.make n_levels 0 in
  Array.iteri (fun i a -> level_total.(lev.(i)) <- level_total.(lev.(i)) + a) allocs;
  Array.iteri
    (fun l total -> if total > p then Alcotest.failf "level %d allocated %d > p=%d" l total p)
    level_total

let test_mcpa_schedule_valid () =
  let d = random_dag ~n:25 7 in
  let sched = Mcpa.schedule ~p:8 d in
  check_valid d sched ~p:8

(* ------------------------------------------------------------------ *)
(* iCASLB *)

let test_icaslb_valid () =
  let d = random_dag ~n:25 8 in
  let sched = Icaslb.schedule ~p:16 d in
  check_valid d sched ~p:16

let test_icaslb_allocs_in_range () =
  let d = random_dag ~n:25 9 in
  let allocs, _ = Icaslb.allocate_and_schedule ~p:8 d in
  Array.iter (fun a -> if a < 1 || a > 8 then Alcotest.failf "alloc %d outside [1, 8]" a) allocs

let test_icaslb_no_worse_than_sequential_allocs () =
  (* iCASLB starts from the all-ones mapping and keeps the best schedule,
     so it can never be worse than list scheduling with 1-proc tasks. *)
  let d = random_dag ~n:30 10 in
  let p = 16 in
  let ones = Mapping.map d ~allocs:(Array.make (Dag.n d) 1) ~p in
  let sched = Icaslb.schedule ~p d in
  Alcotest.(check bool) "icaslb <= all-ones" true
    (Schedule.turnaround sched <= Schedule.turnaround ones)

let test_icaslb_competitive_with_cpa () =
  (* Not guaranteed per instance, but across a few seeds iCASLB should be
     at least roughly competitive with CPA (the ICPP'06 paper reports it
     winning). *)
  let total_icaslb = ref 0 and total_cpa = ref 0 in
  for seed = 11 to 16 do
    let d = random_dag ~n:30 seed in
    total_icaslb := !total_icaslb + Schedule.turnaround (Icaslb.schedule ~p:16 d);
    total_cpa := !total_cpa + Schedule.turnaround (Cpa.schedule ~p:16 d)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "icaslb %d within 15%% of cpa %d" !total_icaslb !total_cpa)
    true
    (float_of_int !total_icaslb <= 1.15 *. float_of_int !total_cpa)

let test_icaslb_invalid_args () =
  let d = diamond () in
  Alcotest.check_raises "p < 1" (Invalid_argument "Icaslb: p < 1") (fun () ->
      ignore (Icaslb.schedule ~p:0 d));
  Alcotest.check_raises "lookahead < 0" (Invalid_argument "Icaslb: lookahead < 0") (fun () ->
      ignore (Icaslb.schedule ~lookahead:(-1) ~p:4 d))

(* ------------------------------------------------------------------ *)
(* Gantt *)

let test_gantt_items_order () =
  let d = diamond () in
  let sched = Mapping.map d ~allocs:[| 1; 1; 1; 1 |] ~p:4 in
  let competing = [ Mp_platform.Reservation.make ~start:5 ~finish:20 ~procs:1 ] in
  let items = Gantt.items ~competing sched in
  Alcotest.(check int) "4 tasks + 1 reservation" 5 (List.length items);
  let starts = List.map (fun (it : Gantt.item) -> it.start) items in
  Alcotest.(check (list int)) "sorted by start" (List.sort compare starts) starts

let test_gantt_ascii_shape () =
  let d = diamond () in
  let sched = Mapping.map d ~allocs:[| 2; 2; 2; 2 |] ~p:4 in
  let s = Gantt.ascii ~width:60 ~procs:4 ~competing:[] sched in
  let lines = String.split_on_char '\n' s in
  (* header + 4 processor rows (+ trailing empty) *)
  Alcotest.(check int) "lines" 6 (List.length lines);
  Alcotest.(check bool) "has task marks" true (String.contains s 'a')

let test_gantt_ascii_competing_marks () =
  let d = diamond () in
  let sched = Mapping.map d ~allocs:[| 1; 1; 1; 1 |] ~p:4 in
  let competing = [ Mp_platform.Reservation.make ~start:0 ~finish:1000 ~procs:2 ] in
  let s = Gantt.ascii ~procs:4 ~competing sched in
  Alcotest.(check bool) "has competing marks" true (String.contains s '#')

let test_gantt_svg_well_formed () =
  let d = diamond () in
  let sched = Mapping.map d ~allocs:[| 2; 1; 2; 4 |] ~p:4 in
  let competing = [ Mp_platform.Reservation.make ~start:10 ~finish:500 ~procs:1 ] in
  let s = Gantt.svg ~procs:4 ~competing sched in
  Alcotest.(check bool) "opens svg" true (String.length s > 5 && String.sub s 0 4 = "<svg");
  let has_substr needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "closes svg" true (has_substr "</svg>" s);
  Alcotest.(check bool) "has rects" true (has_substr "<rect" s);
  Alcotest.(check bool) "labels a task" true (has_substr ">t0<" s || has_substr ">t3<" s)

let test_gantt_ascii_invalid_width () =
  let d = diamond () in
  let sched = Mapping.map d ~allocs:[| 1; 1; 1; 1 |] ~p:4 in
  Alcotest.check_raises "width" (Invalid_argument "Gantt.ascii: width < 10") (fun () ->
      ignore (Gantt.ascii ~width:5 ~procs:4 ~competing:[] sched))

(* ------------------------------------------------------------------ *)
(* Properties *)

let arb_seed_n = QCheck.(pair small_int (QCheck.make QCheck.Gen.(8 -- 40)))

let prop_mapping_valid =
  QCheck.Test.make ~name:"mapping produces valid schedules" ~count:60 arb_seed_n
    (fun (seed, n) ->
      let d = random_dag ~n seed in
      let p = 8 in
      let allocs = Allocation.allocate ~p d in
      let sched = Mapping.map d ~allocs ~p in
      Result.is_ok (Schedule.validate d ~base:(Calendar.create ~procs:p) sched))

let prop_mapping_uses_allocs =
  QCheck.Test.make ~name:"mapping honors allocations" ~count:60 arb_seed_n
    (fun (seed, n) ->
      let d = random_dag ~n seed in
      let p = 8 in
      let allocs = Allocation.allocate ~p d in
      let sched = Mapping.map d ~allocs ~p in
      Array.for_all
        (fun i -> Schedule.procs sched i = allocs.(i))
        (Array.init (Dag.n d) Fun.id))

let prop_cpa_respects_area_bound =
  QCheck.Test.make ~name:"cpa makespan >= area lower bound" ~count:60 arb_seed_n
    (fun (seed, n) ->
      let d = random_dag ~n seed in
      let p = 8 in
      let sched = Cpa.schedule ~p d in
      (* makespan can never beat total-work / p *)
      float_of_int (Schedule.turnaround sched)
      >= float_of_int (Schedule.cpu_seconds sched) /. float_of_int p -. 1.)

let prop_prefix_references_match_map_subset =
  (* Mapping.prefix_references must agree with a fresh map_subset per
     order-prefix: position k keeps exactly order.(0..k) and reads the
     start of order.(k).  Also exercises the on-demand memo by querying
     positions twice and out of order. *)
  QCheck.Test.make ~name:"prefix_references == fresh map_subset per prefix" ~count:40
    arb_seed_n
    (fun (seed, n) ->
      let d = random_dag ~n seed in
      let p = 8 in
      let allocs = Allocation.allocate ~p d in
      let order = Mapping.bl_order d ~weights:(Allocation.weights d ~allocs) in
      let refs = Mapping.prefix_references d ~allocs ~p ~order in
      let expected k =
        let keep = Array.make (Dag.n d) false in
        for j = 0 to k do
          keep.(order.(j)) <- true
        done;
        match Mapping.map_subset d ~allocs ~p ~keep with
        | Some starts -> starts.(order.(k))
        | None -> 0
      in
      let nb = Dag.n d in
      let ok = ref true in
      (* descending (the backward pass's access pattern) ... *)
      for k = nb - 1 downto 0 do
        if Mapping.reference_start refs k <> expected k then ok := false
      done;
      (* ... then re-read ascending: the memo must return the same values *)
      for k = 0 to nb - 1 do
        if Mapping.reference_start refs k <> expected k then ok := false
      done;
      !ok)

(* Reference CPA allocation loop: identical decision rule, but [bl] /
   [tl] are recomputed from scratch through the Analysis passes every
   iteration.  Allocation.allocate maintains them with in-place
   topological sweeps (and caches next-increment Amdahl times); the
   comment there claims that is bitwise equivalent, and this property
   pins it.  [min_gain] mirrors the constant in allocation.ml. *)
let reference_allocate ~criterion ~p d =
  let min_gain = 1e-4 in
  let nb = Dag.n d in
  let allocs = Array.make nb 1 in
  let caps =
    match criterion with
    | Allocation.Classic -> Array.make nb p
    | Allocation.Improved ->
        let lev = Analysis.levels d in
        let widths = Analysis.level_widths d in
        Array.init nb (fun i -> max 1 ((p + widths.(lev.(i)) - 1) / widths.(lev.(i))))
  in
  let tasks = Dag.tasks d in
  let w = Array.mapi (fun i tk -> Task.exec_time_f tk allocs.(i)) tasks in
  let total_work = ref 0. in
  Array.iteri (fun i wi -> total_work := !total_work +. (float_of_int allocs.(i) *. wi)) w;
  let rec loop () =
    let bl = Analysis.bottom_levels d ~weights:w in
    let tl = Analysis.top_levels d ~weights:w in
    let t_cp = bl.(Dag.entry d) in
    let t_a = !total_work /. float_of_int p in
    if t_cp <= t_a then ()
    else begin
      let eps = 1e-9 *. Float.max 1. t_cp in
      let best = ref None in
      for i = 0 to nb - 1 do
        if Float.abs (tl.(i) +. bl.(i) -. t_cp) <= eps && allocs.(i) < caps.(i) then begin
          let cur = w.(i) in
          let nxt = Task.exec_time_f tasks.(i) (allocs.(i) + 1) in
          let gain = (cur -. nxt) /. cur in
          let good =
            match criterion with
            | Allocation.Classic -> gain > 0.
            | Allocation.Improved -> gain > min_gain
          in
          if good then
            match !best with Some (_, g) when g >= gain -> () | _ -> best := Some (i, gain)
        end
      done;
      match !best with
      | None -> ()
      | Some (i, _) ->
          total_work := !total_work -. (float_of_int allocs.(i) *. w.(i));
          allocs.(i) <- allocs.(i) + 1;
          w.(i) <- Task.exec_time_f tasks.(i) allocs.(i);
          total_work := !total_work +. (float_of_int allocs.(i) *. w.(i));
          loop ()
    end
  in
  loop ();
  allocs

let prop_allocate_matches_reference =
  QCheck.Test.make ~name:"allocate == from-scratch reference (both criteria)" ~count:40
    arb_seed_n
    (fun (seed, n) ->
      let d = random_dag ~n seed in
      let p = 8 in
      List.for_all
        (fun criterion ->
          Allocation.allocate ~criterion ~p d = reference_allocate ~criterion ~p d)
        [ Allocation.Classic; Allocation.Improved ])

let prop_more_procs_no_worse =
  QCheck.Test.make ~name:"cpa makespan non-increasing in p (statistically)" ~count:30
    QCheck.small_int
    (fun seed ->
      let d = random_dag ~n:30 seed in
      (* Not guaranteed task by task, but p=32 should essentially never be
         beaten by p=2 for the same heuristic. *)
      Cpa.makespan ~p:32 d <= Cpa.makespan ~p:2 d)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_mapping_valid;
        prop_mapping_uses_allocs;
        prop_prefix_references_match_map_subset;
        prop_allocate_matches_reference;
        prop_cpa_respects_area_bound;
        prop_more_procs_no_worse;
      ]
  in
  Alcotest.run "cpa"
    [
      ( "allocation",
        [
          Alcotest.test_case "bounds" `Quick test_alloc_bounds;
          Alcotest.test_case "single proc" `Quick test_alloc_single_proc;
          Alcotest.test_case "reduces critical path" `Quick test_alloc_reduces_cp;
          Alcotest.test_case "improved not larger" `Quick test_alloc_improved_not_larger;
          Alcotest.test_case "deterministic" `Quick test_alloc_deterministic;
          Alcotest.test_case "improved level cap" `Quick test_alloc_improved_level_cap;
          Alcotest.test_case "invalid p" `Quick test_alloc_invalid_p;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "diamond serial" `Quick test_map_diamond_serial;
          Alcotest.test_case "diamond parallel" `Quick test_map_diamond_parallel;
          Alcotest.test_case "rejects oversize alloc" `Quick test_map_rejects_oversize_alloc;
          Alcotest.test_case "subset all" `Quick test_map_subset_all;
          Alcotest.test_case "subset suffix" `Quick test_map_subset_suffix;
          Alcotest.test_case "subset none" `Quick test_map_subset_none;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "metrics" `Quick test_schedule_metrics;
          Alcotest.test_case "json export" `Quick test_schedule_to_json;
          Alcotest.test_case "catches precedence violations" `Quick
            test_schedule_validate_catches_precedence;
          Alcotest.test_case "catches missed deadline" `Quick test_schedule_validate_catches_deadline;
        ] );
      ( "cpa",
        [
          Alcotest.test_case "beats sequential" `Quick test_cpa_beats_sequential;
          Alcotest.test_case "valid schedules" `Quick test_cpa_valid_schedules;
        ] );
      ( "mcpa",
        [
          Alcotest.test_case "level cap" `Quick test_mcpa_level_cap;
          Alcotest.test_case "valid schedule" `Quick test_mcpa_schedule_valid;
        ] );
      ( "icaslb",
        [
          Alcotest.test_case "valid schedule" `Quick test_icaslb_valid;
          Alcotest.test_case "allocs in range" `Quick test_icaslb_allocs_in_range;
          Alcotest.test_case "no worse than all-ones" `Quick test_icaslb_no_worse_than_sequential_allocs;
          Alcotest.test_case "competitive with cpa" `Quick test_icaslb_competitive_with_cpa;
          Alcotest.test_case "invalid args" `Quick test_icaslb_invalid_args;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "items order" `Quick test_gantt_items_order;
          Alcotest.test_case "ascii shape" `Quick test_gantt_ascii_shape;
          Alcotest.test_case "ascii competing marks" `Quick test_gantt_ascii_competing_marks;
          Alcotest.test_case "svg well-formed" `Quick test_gantt_svg_well_formed;
          Alcotest.test_case "ascii invalid width" `Quick test_gantt_ascii_invalid_width;
        ] );
      ("properties", props);
    ]
