open Mp_prelude

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let check_float msg expected actual =
  if not (feq expected actual) then Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_copy () =
  let a = Rng.create 7 in
  let _ = Rng.int64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.int64 a) in
  let ys = List.init 50 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "Rng.int out of range: %d" x
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_uniform_int_range () =
  let rng = Rng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    let x = Rng.uniform_int rng 3 7 in
    if x < 3 || x > 7 then Alcotest.failf "uniform_int out of range: %d" x;
    seen.(x - 3) <- true
  done;
  Alcotest.(check bool) "all values reachable" true (Array.for_all Fun.id seen)

let test_rng_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 10. in
    if x < 0. || x >= 10. then Alcotest.failf "Rng.float out of range: %f" x
  done

let test_rng_uniform_mean () =
  let rng = Rng.create 9 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.uniform rng 2. 4.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.) < 0.05)

let test_rng_exponential_mean () =
  let rng = Rng.create 13 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 5.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 5" true (Float.abs (mean -. 5.) < 0.2)

let test_rng_normal_moments () =
  let rng = Rng.create 17 in
  let n = 50_000 in
  let xs = List.init n (fun _ -> Rng.normal rng ~mu:1. ~sigma:2.) in
  let m = Stats.mean xs and sd = Stats.stddev xs in
  Alcotest.(check bool) "mean near 1" true (Float.abs (m -. 1.) < 0.05);
  Alcotest.(check bool) "sd near 2" true (Float.abs (sd -. 2.) < 0.1)

let test_rng_bernoulli () =
  let rng = Rng.create 19 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 23 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_rng_choose () =
  let rng = Rng.create 29 in
  let chosen = Rng.choose rng 10 ~k:4 in
  Alcotest.(check int) "k elements" 4 (List.length chosen);
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare chosen));
  List.iter (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 10)) chosen

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_mean () = check_float "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty list") (fun () ->
      ignore (Stats.mean []))

let test_variance () =
  (* sample variance of 2,4,4,4,5,5,7,9 = 32/7 *)
  check_float "variance" (32. /. 7.) (Stats.variance [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_variance_singleton () = check_float "variance" 0. (Stats.variance [ 5. ])
let test_stddev () = check_float "stddev" 2. (Stats.stddev [ 0.; 4.; 0.; 4.; 0.; 4.; 0.; 4. ] *. sqrt (7. /. 8.))

let test_cv () =
  let xs = [ 10.; 10.; 10. ] in
  check_float "cv of constants" 0. (Stats.cv xs)

let test_median_odd () = check_float "median" 3. (Stats.median [ 5.; 3.; 1. ])
let test_median_even () = check_float "median" 2.5 (Stats.median [ 1.; 2.; 3.; 4. ])

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  check_float "p0" 1. (Stats.percentile xs 0.);
  check_float "p100" 5. (Stats.percentile xs 100.);
  check_float "p25" 2. (Stats.percentile xs 25.)

let test_min_max () =
  check_float "min" (-3.) (Stats.minimum [ 2.; -3.; 7. ]);
  check_float "max" 7. (Stats.maximum [ 2.; -3.; 7. ])

let test_correlation_perfect () =
  let xs = [ 1.; 2.; 3.; 4. ] in
  let ys = List.map (fun x -> (2. *. x) +. 1.) xs in
  check_float "corr=1" 1. (Stats.correlation xs ys);
  let zs = List.map (fun x -> -.x) xs in
  check_float "corr=-1" (-1.) (Stats.correlation xs zs)

let test_correlation_constant () =
  check_float "corr with constant" 0. (Stats.correlation [ 1.; 2.; 3. ] [ 5.; 5.; 5. ])

let test_correlation_mismatch () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Stats.correlation: length mismatch")
    (fun () -> ignore (Stats.correlation [ 1. ] [ 1.; 2. ]))

let test_summarize () =
  let s = Stats.summarize [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check int) "n" 5 s.n;
  check_float "mean" 3. s.mean;
  check_float "median" 3. s.median;
  check_float "min" 1. s.min;
  check_float "max" 5. s.max

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_default_jobs () =
  Alcotest.(check bool) "at least 1" true (Pool.default_jobs () >= 1)

let test_pool_map_matches_sequential () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) - (3 * x) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        (List.map f xs) (Pool.run ~jobs f xs))
    [ 1; 2; 4; 7 ]

let test_pool_more_workers_than_items () =
  Alcotest.(check (list int)) "jobs > n" [ 2; 4; 6 ] (Pool.run ~jobs:8 (fun x -> 2 * x) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "empty input" [] (Pool.run ~jobs:4 (fun x -> x) [])

let test_pool_reuse () =
  Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.(check int) "jobs" 3 (Pool.jobs p);
      Alcotest.(check (list int)) "first batch" [ 1; 2; 3 ] (Pool.map p succ [ 0; 1; 2 ]);
      Alcotest.(check (list string)) "second batch, other type" [ "0"; "1" ]
        (Pool.map p string_of_int [ 0; 1 ]))

let test_pool_exception_propagates () =
  (* the smallest failing index wins, exactly as in a sequential run *)
  let f x = if x mod 3 = 0 then failwith (string_of_int x) else x in
  Alcotest.check_raises "smallest index" (Failure "0") (fun () ->
      ignore (Pool.run ~jobs:4 f (List.init 20 Fun.id)));
  Alcotest.check_raises "later failure" (Failure "9") (fun () ->
      ignore (Pool.run ~jobs:4 (fun x -> if x >= 9 then failwith (string_of_int x) else x)
                (List.init 20 Fun.id)))

let test_pool_shutdown () =
  let p = Pool.create ~jobs:2 () in
  Alcotest.(check (list int)) "usable" [ 0 ] (Pool.map p Fun.id [ 0 ]);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  Alcotest.check_raises "map after shutdown" (Invalid_argument "Pool.map: pool is shut down")
    (fun () -> ignore (Pool.map p Fun.id [ 0 ]))

let test_pool_uniform_errors () =
  (* the shutdown error is the same message for every jobs value — the
     old executor special-cased jobs = 1 — and fires even on empty input *)
  List.iter
    (fun jobs ->
      let p = Pool.create ~jobs () in
      Pool.shutdown p;
      let name s = Printf.sprintf "%s (jobs=%d)" s jobs in
      Alcotest.check_raises (name "map after shutdown")
        (Invalid_argument "Pool.map: pool is shut down") (fun () ->
          ignore (Pool.map p Fun.id [ 0 ]));
      Alcotest.check_raises (name "empty map after shutdown")
        (Invalid_argument "Pool.map: pool is shut down") (fun () ->
          ignore (Pool.map p Fun.id [])))
    [ 1; 2; 4 ]

let test_pool_reentrant_map () =
  (* a work item calling map on its own pool is rejected uniformly; the
     Invalid_argument travels through the slot/merge machinery like any
     other item exception *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          Alcotest.check_raises
            (Printf.sprintf "re-entrant map (jobs=%d)" jobs)
            (Invalid_argument "Pool.map: concurrent map on the same pool")
            (fun () -> ignore (Pool.map p (fun _ -> Pool.map p Fun.id [ 1 ]) [ 0 ]));
          (* the failed batch must not poison the pool *)
          Alcotest.(check (list int))
            (Printf.sprintf "pool survives (jobs=%d)" jobs)
            [ 1; 2 ] (Pool.map p succ [ 0; 1 ])))
    [ 1; 2; 4 ]

let test_pool_static_strategy () =
  let xs = List.init 50 Fun.id in
  let f x = (x * 7) mod 13 in
  List.iter
    (fun jobs ->
      Pool.with_pool ~strategy:Pool.Static ~jobs (fun p ->
          Alcotest.(check bool) "strategy accessor" true (Pool.strategy p = Pool.Static);
          Alcotest.(check (list int))
            (Printf.sprintf "static jobs=%d" jobs)
            (List.map f xs) (Pool.map p f xs)))
    [ 1; 3 ]

let test_pool_first_some_basic () =
  Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check (option (pair int int)))
        "smallest index wins"
        (Some (1, 10))
        (Pool.first_some p
           [| (fun () -> None); (fun () -> Some 10); (fun () -> Some 20) |]);
      Alcotest.(check (option (pair int int)))
        "all None" None
        (Pool.first_some p (Array.make 5 (fun () -> None)));
      Alcotest.(check (option (pair int int)))
        "empty wave" None (Pool.first_some p [||]);
      Alcotest.(check (option (pair int int)))
        "index 0" (Some (0, 7))
        (Pool.first_some p [| (fun () -> Some 7); (fun () -> Some 8) |]))

let test_pool_first_some_exceptions () =
  Pool.with_pool ~jobs:4 (fun p ->
      (* an exception before the first success propagates, as in the
         sequential scan... *)
      Alcotest.check_raises "failure before success" (Failure "boom") (fun () ->
          ignore
            (Pool.first_some p [| (fun () -> None); (fun () -> failwith "boom"); (fun () -> Some 1) |]));
      (* ...but one after it is unobservable: the sequential scan would
         have stopped at the success *)
      Alcotest.(check (option (pair int int)))
        "failure after success is masked"
        (Some (0, 3))
        (Pool.first_some p [| (fun () -> Some 3); (fun () -> failwith "late") |]))

let prop_pool_run_is_map =
  QCheck.Test.make ~name:"Pool.run = List.map for any jobs" ~count:50
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (jobs, xs) -> Pool.run ~jobs (fun x -> x + 1) xs = List.map (fun x -> x + 1) xs)

(* Burn CPU proportional to [n] without allocating, so per-item costs can
   be made adversarially uneven (bimodal: a few items orders of magnitude
   slower) and steals actually happen while the batch is in flight. *)
let spin n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc lxor i
  done;
  !acc

let uneven_cost = QCheck.(oneof [ int_range 0 200; int_range 20_000 60_000 ])

let prop_pool_steal_uneven =
  QCheck.Test.make ~name:"stealing pool = List.map under uneven costs" ~count:30
    QCheck.(pair (oneofl [ 1; 2; 4 ]) (small_list (pair small_int uneven_cost)))
    (fun (jobs, items) ->
      let f (v, cost) = ignore (spin cost); (v * 2) + 1 in
      Pool.run ~jobs f items = List.map f items)

let prop_pool_steal_exceptions =
  QCheck.Test.make ~name:"stealing pool exception = sequential (smallest index)" ~count:30
    QCheck.(pair (oneofl [ 1; 2; 4 ]) (small_list (triple small_int uneven_cost bool)))
    (fun (jobs, items) ->
      let f (v, cost, fail) =
        ignore (spin cost);
        if fail then failwith (string_of_int v) else v
      in
      let outcome run = match run () with v -> Ok v | exception Failure m -> Error m in
      outcome (fun () -> Pool.run ~jobs f items) = outcome (fun () -> List.map f items))

(* first_some against the literal sequential scan it promises to match:
   same winner, same None, and the same exception when one fires before
   the first success. *)
let prop_pool_first_some_matches_scan =
  (* each cell: (verdict, cost, raise?) *)
  let cell = QCheck.(triple (option small_int) uneven_cost bool) in
  QCheck.Test.make ~name:"first_some = sequential scan" ~count:30
    QCheck.(pair (oneofl [ 1; 2; 4 ]) (small_list cell))
    (fun (jobs, cells) ->
      let thunk (verdict, cost, fail) () =
        ignore (spin cost);
        if fail then failwith "cell" else verdict
      in
      let thunks = Array.of_list (List.map thunk cells) in
      let sequential () =
        let n = Array.length thunks in
        let rec scan i =
          if i >= n then None
          else match thunks.(i) () with Some v -> Some (i, v) | None -> scan (i + 1)
        in
        scan 0
      in
      let outcome run = match run () with v -> Ok v | exception Failure m -> Error m in
      Pool.with_pool ~jobs (fun p ->
          outcome (fun () -> Pool.first_some p thunks) = outcome sequential))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 30) (float_bound_inclusive 100.)) (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let prop_mean_between_min_max =
  QCheck.Test.make ~name:"mean within [min, max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 30) (float_bound_inclusive 1000.))
    (fun xs ->
      let m = Stats.mean xs in
      Stats.minimum xs -. 1e-9 <= m && m <= Stats.maximum xs +. 1e-9)

let prop_correlation_bounded =
  QCheck.Test.make ~name:"correlation in [-1, 1]" ~count:200
    QCheck.(list_of_size Gen.(2 -- 30) (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun ps ->
      let xs = List.map fst ps and ys = List.map snd ps in
      let c = Stats.correlation xs ys in
      c >= -1.0000001 && c <= 1.0000001)

let prop_rng_int_in_range =
  QCheck.Test.make ~name:"Rng.int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let x = Rng.int rng n in
      x >= 0 && x < n)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest
      [ prop_percentile_monotone; prop_mean_between_min_max; prop_correlation_bounded; prop_rng_int_in_range; prop_pool_run_is_map; prop_pool_steal_uneven; prop_pool_steal_exceptions; prop_pool_first_some_matches_scan ]
  in
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects non-positive" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "uniform_int range" `Quick test_rng_uniform_int_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
          Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "choose distinct" `Quick test_rng_choose;
        ] );
      ( "pool",
        [
          Alcotest.test_case "default jobs" `Quick test_pool_default_jobs;
          Alcotest.test_case "map matches sequential" `Quick test_pool_map_matches_sequential;
          Alcotest.test_case "more workers than items" `Quick test_pool_more_workers_than_items;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          Alcotest.test_case "uniform errors across jobs" `Quick test_pool_uniform_errors;
          Alcotest.test_case "re-entrant map rejected" `Quick test_pool_reentrant_map;
          Alcotest.test_case "static reference strategy" `Quick test_pool_static_strategy;
          Alcotest.test_case "first_some selection" `Quick test_pool_first_some_basic;
          Alcotest.test_case "first_some exceptions" `Quick test_pool_first_some_exceptions;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "mean empty" `Quick test_mean_empty;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "variance singleton" `Quick test_variance_singleton;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "cv constants" `Quick test_cv;
          Alcotest.test_case "median odd" `Quick test_median_odd;
          Alcotest.test_case "median even" `Quick test_median_even;
          Alcotest.test_case "percentile endpoints" `Quick test_percentile;
          Alcotest.test_case "min max" `Quick test_min_max;
          Alcotest.test_case "correlation perfect" `Quick test_correlation_perfect;
          Alcotest.test_case "correlation constant" `Quick test_correlation_constant;
          Alcotest.test_case "correlation mismatch" `Quick test_correlation_mismatch;
          Alcotest.test_case "summarize" `Quick test_summarize;
        ] );
      ("properties", qsuite);
    ]
