(* Mp_index against a brute-force reference model: the persistent form,
   the Txn form and the reference must agree on every query over random
   reservation soups, and the structural invariants must survive random
   reserve/release sequences.  The large-R smoke at the end exercises the
   same tree at 10^5 reservations and sanity-checks the O(log R) visit
   bound through the Mp_obs counters. *)

module Index = Mp_index

(* ------------------------------------------------------------------ *)
(* Brute-force reference over a reservation triple list *)

module Ref_model = struct
  let avail ~cap rs t =
    cap
    - List.fold_left
        (fun acc (s, d, np) -> if s <= t && t < s + d then acc + np else acc)
        0 rs

  let min_in ~cap rs ~from_ ~until =
    let m = ref max_int in
    for t = from_ to until - 1 do
      m := min !m (avail ~cap rs t)
    done;
    !m

  let max_in ~cap rs ~from_ ~until =
    let m = ref min_int in
    for t = from_ to until - 1 do
      m := max !m (avail ~cap rs t)
    done;
    !m

  let fits ~cap rs ~np ~dur s =
    let ok = ref true in
    for t = s to s + dur - 1 do
      if avail ~cap rs t < np then ok := false
    done;
    !ok

  let earliest_fit ~cap rs ~after ~np ~dur =
    if np > cap then None
    else begin
      let horizon = List.fold_left (fun acc (s, d, _) -> max acc (s + d)) after rs in
      let rec go s =
        if fits ~cap rs ~np ~dur s then Some s else if s > horizon then None else go (s + 1)
      in
      go after
    end

  let latest_fit ~cap rs ~earliest ~finish_by ~np ~dur =
    if np > cap then None
    else begin
      let rec go s =
        if s < earliest then None else if fits ~cap rs ~np ~dur s then Some s else go (s - 1)
      in
      go (finish_by - dur)
    end
end

(* ------------------------------------------------------------------ *)
(* Generators: feasible soups on a small capacity with small times *)

let cap = 5

let gen_soup =
  QCheck.Gen.(
    list_size (0 -- 12) (triple (0 -- 40) (1 -- 12) (1 -- cap)) >|= fun triples ->
    let _, kept =
      List.fold_left
        (fun (idx, kept) (s, d, np) ->
          match Index.reserve idx ~start:s ~finish:(s + d) ~procs:np with
          | Some idx -> (idx, (s, d, np) :: kept)
          | None -> (idx, kept))
        (Index.create ~procs:cap, [])
        triples
    in
    List.rev kept)

let index_of_soup rs =
  List.fold_left
    (fun idx (s, d, np) ->
      match Index.reserve idx ~start:s ~finish:(s + d) ~procs:np with
      | Some idx -> idx
      | None -> Alcotest.fail "soup reservation no longer fits")
    (Index.create ~procs:cap) rs

let print_soup rs =
  String.concat "; " (List.map (fun (s, d, np) -> Printf.sprintf "[%d,+%d)x%d" s d np) rs)

let arb_scenario =
  QCheck.make
    ~print:(fun (rs, (after, np, dur)) ->
      Printf.sprintf "rs=[%s] after=%d np=%d dur=%d" (print_soup rs) after np dur)
    QCheck.Gen.(pair gen_soup (triple (0 -- 50) (1 -- cap) (1 -- 10)))

(* ------------------------------------------------------------------ *)
(* Persistent form vs reference *)

let prop_point_and_window_queries =
  QCheck.Test.make ~name:"available_at/min_in/max_in match brute force" ~count:400
    (QCheck.make
       ~print:(fun (rs, (from_, w)) -> Printf.sprintf "rs=[%s] from=%d w=%d" (print_soup rs) from_ w)
       QCheck.Gen.(pair gen_soup (pair (-5 -- 55) (1 -- 15))))
    (fun (rs, (from_, w)) ->
      let idx = index_of_soup rs in
      Index.self_check idx;
      let until = from_ + w in
      Index.available_at idx from_ = Ref_model.avail ~cap rs from_
      && Index.min_in idx ~from_ ~until = Ref_model.min_in ~cap rs ~from_ ~until
      && Index.max_in idx ~from_ ~until = Ref_model.max_in ~cap rs ~from_ ~until)

let prop_earliest_fit_matches_reference =
  QCheck.Test.make ~name:"earliest_fit matches brute force" ~count:400 arb_scenario
    (fun (rs, (after, np, dur)) ->
      let idx = index_of_soup rs in
      Index.earliest_fit idx ~after ~procs:np ~dur
      = Ref_model.earliest_fit ~cap rs ~after ~np ~dur)

let prop_bounded_fit_filters =
  QCheck.Test.make ~name:"earliest_fit ~limit only filters the unbounded answer" ~count:400
    arb_scenario (fun (rs, (after, np, dur)) ->
      let idx = index_of_soup rs in
      let unbounded = Index.earliest_fit idx ~after ~procs:np ~dur in
      let ok = ref true in
      (* Sweep limits across the interesting range, including one below
         [after] and one far past the answer: the bounded query must be
         exactly the unbounded answer filtered by [s <= limit], never an
         alternative later-but-within-limit start. *)
      List.iter
        (fun limit ->
          let want = match unbounded with Some s when s <= limit -> Some s | _ -> None in
          if Index.earliest_fit ~limit idx ~after ~procs:np ~dur <> want then ok := false)
        [ after - 1; after; after + 5; after + 20; after + 200 ];
      !ok)

let prop_latest_fit_matches_reference =
  QCheck.Test.make ~name:"latest_fit matches brute force" ~count:400 arb_scenario
    (fun (rs, (after, np, dur)) ->
      let idx = index_of_soup rs in
      let earliest = max 0 (after - 20) and finish_by = after + 30 in
      Index.latest_fit idx ~earliest ~finish_by ~procs:np ~dur
      = Ref_model.latest_fit ~cap rs ~earliest ~finish_by ~np ~dur)

let prop_release_inverts_reserve =
  QCheck.Test.make ~name:"release inverts reserve (persistent)" ~count:300
    (QCheck.make
       ~print:(fun (rs, (s, d, np)) -> Printf.sprintf "rs=[%s] r=[%d,+%d)x%d" (print_soup rs) s d np)
       QCheck.Gen.(pair gen_soup (triple (0 -- 40) (1 -- 8) (1 -- cap))))
    (fun (rs, (s, d, np)) ->
      let idx = index_of_soup rs in
      match Index.reserve idx ~start:s ~finish:(s + d) ~procs:np with
      | None -> true
      | Some idx' -> (
          Index.self_check idx';
          match Index.release idx' ~start:s ~finish:(s + d) ~procs:np with
          | None -> false
          | Some back ->
              Index.self_check back;
              let ok = ref true in
              for t = -2 to 60 do
                if Index.available_at back t <> Index.available_at idx t then ok := false
              done;
              (* the original snapshot is untouched by either update *)
              for t = -2 to 60 do
                if Index.available_at idx t <> Ref_model.avail ~cap rs t then ok := false
              done;
              !ok))

let prop_release_overfull_refused =
  QCheck.Test.make ~name:"release beyond capacity returns None" ~count:200
    (QCheck.make ~print:print_soup gen_soup) (fun rs ->
      let idx = index_of_soup rs in
      (* the window [100, 110) is free in every generated soup, so any
         release there would lift availability above capacity *)
      Index.release idx ~start:100 ~finish:110 ~procs:1 = None)

let prop_fold_segments_reproduce_profile =
  QCheck.Test.make ~name:"fold_segments tile the window with the right values" ~count:300
    (QCheck.make ~print:print_soup gen_soup) (fun rs ->
      let idx = index_of_soup rs in
      let from_ = -3 and until = 58 in
      let segs =
        List.rev
          (Index.fold_segments idx ~from_ ~until ~init:[] ~f:(fun acc ~start ~finish ~avail ->
               (start, finish, avail) :: acc))
      in
      (* contiguous tiling of [from_, until) ... *)
      let tiles = ref true and cursor = ref from_ in
      List.iter
        (fun (s, f, _) ->
          if s <> !cursor || f <= s then tiles := false;
          cursor := f)
        segs;
      (* ... carrying the pointwise availability *)
      let values = ref true in
      List.iter
        (fun (s, f, v) ->
          for t = s to f - 1 do
            if Ref_model.avail ~cap rs t <> v then values := false
          done)
        segs;
      !tiles && !cursor = until && !values)

(* ------------------------------------------------------------------ *)
(* Txn form vs persistent form *)

let prop_txn_matches_persistent =
  QCheck.Test.make ~name:"txn reserve/release/query sequence matches persistent" ~count:300
    (QCheck.make
       ~print:(fun (rs, ops) ->
         Printf.sprintf "rs=[%s] ops=[%s]" (print_soup rs)
           (String.concat "; "
              (List.map
                 (fun (rel, (s, d, np, at)) ->
                   Printf.sprintf "%s[%d,+%d)x%d@%d" (if rel then "rel" else "res") s d np at)
                 ops)))
       QCheck.Gen.(
         pair gen_soup
           (list_size (1 -- 24) (pair bool (quad (0 -- 40) (1 -- 10) (1 -- 6) (0 -- 45))))))
    (fun (rs, ops) ->
      let txn = Index.Txn.start (index_of_soup rs) in
      let idx = ref (index_of_soup rs) in
      let gen0 = Index.Txn.generation txn in
      let updates = ref 0 in
      let ok = ref true in
      let check b = if not b then ok := false in
      List.iter
        (fun (rel, (s, d, np, at)) ->
          let dur = max 1 (d / 2) in
          check (Index.Txn.available_at txn at = Index.available_at !idx at);
          check (Index.Txn.min_in txn ~from_:at ~until:(at + 5) = Index.min_in !idx ~from_:at ~until:(at + 5));
          check
            (Index.Txn.earliest_fit txn ~after:at ~procs:np ~dur
            = Index.earliest_fit !idx ~after:at ~procs:np ~dur);
          check
            (Index.Txn.earliest_fit ~limit:(at + 8) txn ~after:at ~procs:np ~dur
            = Index.earliest_fit ~limit:(at + 8) !idx ~after:at ~procs:np ~dur);
          check
            (Index.Txn.latest_fit txn ~earliest:0 ~finish_by:(at + 20) ~procs:np ~dur
            = Index.latest_fit !idx ~earliest:0 ~finish_by:(at + 20) ~procs:np ~dur);
          check
            (Index.Txn.can_reserve txn ~start:s ~finish:(s + d) ~procs:np
            = Index.can_reserve !idx ~start:s ~finish:(s + d) ~procs:np);
          if rel then begin
            let applied = Index.Txn.release txn ~start:s ~finish:(s + d) ~procs:np in
            match Index.release !idx ~start:s ~finish:(s + d) ~procs:np with
            | Some idx' ->
                check applied;
                incr updates;
                idx := idx'
            | None -> check (not applied)
          end
          else begin
            let applied = Index.Txn.reserve txn ~start:s ~finish:(s + d) ~procs:np in
            match Index.reserve !idx ~start:s ~finish:(s + d) ~procs:np with
            | Some idx' ->
                check applied;
                incr updates;
                idx := idx'
            | None -> check (not applied)
          end)
        ops;
      (* generation counts exactly the successful updates; commit is the
         same snapshot the persistent fold reached *)
      check (Index.Txn.generation txn - gen0 = !updates);
      let committed = Index.Txn.commit txn in
      Index.self_check committed;
      for t = -2 to 60 do
        check (Index.available_at committed t = Index.available_at !idx t)
      done;
      !ok)

let prop_txn_commit_isolated =
  QCheck.Test.make ~name:"commit snapshots are isolated from later txn updates" ~count:200
    (QCheck.make ~print:print_soup gen_soup) (fun rs ->
      let txn = Index.Txn.start (index_of_soup rs) in
      let snap = Index.Txn.commit txn in
      let before = Array.init 63 (fun i -> Index.available_at snap (i - 2)) in
      (* far-future window: always free in the generated soups *)
      let applied = Index.Txn.reserve txn ~start:100 ~finish:110 ~procs:cap in
      applied
      && Array.for_all Fun.id
           (Array.init 63 (fun i -> Index.available_at snap (i - 2) = before.(i)))
      && Index.available_at snap 105 = cap
      && Index.Txn.available_at txn 105 = 0)

(* ------------------------------------------------------------------ *)
(* Unit: argument validation and small cases *)

let test_create_invalid () =
  Alcotest.check_raises "procs<=0" (Invalid_argument "Mp_index.create: procs <= 0") (fun () ->
      ignore (Index.create ~procs:0))

let test_empty_index () =
  let idx = Index.create ~procs:7 in
  Index.self_check idx;
  Alcotest.(check int) "capacity" 7 (Index.capacity idx);
  Alcotest.(check int) "one sentinel breakpoint" 1 (Index.breakpoints idx);
  Alcotest.(check int) "free in the past" 7 (Index.available_at idx (-1000));
  Alcotest.(check int) "free in the future" 7 (Index.available_at idx 1_000_000);
  Alcotest.(check (option int)) "fit now" (Some 3)
    (Index.earliest_fit idx ~after:3 ~procs:7 ~dur:5)

let test_breakpoint_count () =
  let idx = Index.create ~procs:4 in
  let idx = Option.get (Index.reserve idx ~start:10 ~finish:20 ~procs:2) in
  Alcotest.(check int) "sentinel + 2 cuts" 3 (Index.breakpoints idx);
  (* an aligned second reservation adds no breakpoints *)
  let idx = Option.get (Index.reserve idx ~start:10 ~finish:20 ~procs:1) in
  Alcotest.(check int) "still 3" 3 (Index.breakpoints idx);
  Index.self_check idx

(* ------------------------------------------------------------------ *)
(* Large-R smoke: 10^5 reservations, O(log R) visit bound *)

let test_large_r_smoke () =
  Mp_obs.with_enabled (fun () ->
      let q = 64 and r_target = 100_000 in
      let rng = Mp_prelude.Rng.create 7 in
      let horizon = 215 * r_target in
      let txn = Index.Txn.start (Index.create ~procs:q) in
      let kept = ref 0 and attempts = ref 0 in
      while !kept < r_target && !attempts < 3 * r_target do
        incr attempts;
        let start = Mp_prelude.Rng.int rng horizon in
        let dur = 60 + Mp_prelude.Rng.int rng 3541 in
        let procs = 1 + Mp_prelude.Rng.int rng 8 in
        if Index.Txn.reserve txn ~start ~finish:(start + dur) ~procs then incr kept
      done;
      if !kept < r_target then Alcotest.failf "built only %d of %d reservations" !kept r_target;
      let idx = Index.Txn.commit txn in
      Index.self_check idx;
      let bps = Index.breakpoints idx in
      if bps < r_target then Alcotest.failf "only %d breakpoints for %d reservations" bps !kept;
      let visits snap =
        Option.value ~default:0
          (List.assoc_opt "index.node_visits" snap.Mp_obs.Snapshot.counters)
      in
      let n_queries = 500 in
      let s0 = Mp_obs.Snapshot.take () in
      for _ = 1 to n_queries do
        let procs = 1 + Mp_prelude.Rng.int rng 16 in
        let dur = 60 + Mp_prelude.Rng.int rng 3541 in
        let after = Mp_prelude.Rng.int rng horizon in
        ignore (Index.earliest_fit idx ~after ~procs ~dur);
        let finish_by = 1 + Mp_prelude.Rng.int rng horizon in
        ignore (Index.latest_fit idx ~earliest:0 ~finish_by ~procs ~dur)
      done;
      let s1 = Mp_obs.Snapshot.take () in
      let vpq = float_of_int (visits s1 - visits s0) /. float_of_int (2 * n_queries) in
      (* Same bound the "Calendar index" bench section asserts: a linear
         walk would be ~1000x over it at this R. *)
      let bound = (8. *. (log (float_of_int bps) /. log 2.)) +. 64. in
      if vpq > bound then
        Alcotest.failf "visits/query %.1f exceeds log-R bound %.1f at %d breakpoints" vpq bound
          bps)

(* ------------------------------------------------------------------ *)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_point_and_window_queries;
        prop_earliest_fit_matches_reference;
        prop_bounded_fit_filters;
        prop_latest_fit_matches_reference;
        prop_release_inverts_reserve;
        prop_release_overfull_refused;
        prop_fold_segments_reproduce_profile;
        prop_txn_matches_persistent;
        prop_txn_commit_isolated;
      ]
  in
  Alcotest.run "index"
    [
      ( "unit",
        [
          Alcotest.test_case "create invalid" `Quick test_create_invalid;
          Alcotest.test_case "empty index" `Quick test_empty_index;
          Alcotest.test_case "breakpoint count" `Quick test_breakpoint_count;
        ] );
      ("properties", props);
      ("large-R", [ Alcotest.test_case "100k reservations, log-R visits" `Quick test_large_r_smoke ]);
    ]
