open Mp_core
module Rng = Mp_prelude.Rng
module Dag = Mp_dag.Dag
module Task = Mp_dag.Task
module Dag_gen = Mp_dag.Dag_gen
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Schedule = Mp_cpa.Schedule

let random_dag ?(n = 25) seed = Dag_gen.generate (Rng.create seed) { Dag_gen.default with n }

let diamond () =
  let tasks =
    Array.mapi (fun id s -> Task.make ~id ~seq:s ~alpha:0.1) [| 600.; 1200.; 1800.; 2400. |]
  in
  Dag.make tasks [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let chain_dag n =
  let tasks = Array.init n (fun id -> Task.make ~id ~seq:3600. ~alpha:0.1) in
  Dag.make tasks (List.init (n - 1) (fun i -> (i, i + 1)))

(* A busy environment in the paper's regime: competing reservations occupy
   a moderate fraction of the machine (tagged fraction x utilization stays
   well below 1), leaving holes everywhere. *)
let busy_env ?(p = 8) ?(n_res = 10) seed =
  let rng = Rng.create seed in
  let rec add cal k =
    if k = 0 then cal
    else begin
      let start = Rng.int rng 40_000 in
      let dur = 600 + Rng.int rng 4_000 in
      let procs = 1 + Rng.int rng (p / 2) in
      match Calendar.reserve_opt cal (Reservation.make ~start ~finish:(start + dur) ~procs) with
      | Some cal -> add cal (k - 1)
      | None -> add cal (k - 1)
    end
  in
  let calendar = add (Calendar.create ~procs:p) n_res in
  Env.make ~calendar ~q:(Calendar.average_available calendar ~from_:0 ~until:40_000)

(* Algorithms guaranteed to succeed on a loose enough deadline: the
   aggressive ones (latest-start placement) and the lambda-sweeping hybrids
   (which degenerate to aggressive at lambda = 1).  The pure
   resource-conservative algorithms anchor to a CPA reference schedule
   regardless of the deadline and can be "caught in a bind" (Section 5.4),
   failing at every deadline on dense calendars. *)
let robust_deadline_algos =
  List.filter
    (fun (a : Algo.deadline) -> a.name <> "DL_RC_CPA" && a.name <> "DL_RC_CPAR")
    Algo.deadline_all

let check_valid env dag ?deadline sched =
  match Schedule.validate dag ~base:env.Env.calendar ?deadline sched with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Env *)

let test_env_clamps_q () =
  let cal = Calendar.create ~procs:8 in
  Alcotest.(check int) "q clamped high" 8 (Env.make ~calendar:cal ~q:100.).q;
  Alcotest.(check int) "q clamped low" 1 (Env.make ~calendar:cal ~q:0.).q;
  Alcotest.(check int) "q rounded" 5 (Env.make ~calendar:cal ~q:5.2).q

let test_env_no_reservations () =
  let env = Env.no_reservations ~p:16 in
  Alcotest.(check int) "p" 16 env.p;
  Alcotest.(check int) "q = p" 16 env.q

(* ------------------------------------------------------------------ *)
(* Bottom_level / Bound *)

let test_bl_methods_distinct () =
  let env = Env.make ~calendar:(Calendar.create ~procs:64) ~q:8. in
  let dag = random_dag 1 in
  let w1 = Bottom_level.weights BL_1 env dag in
  let wall = Bottom_level.weights BL_ALL env dag in
  (* p-processor weights must be strictly smaller for parallelizable tasks *)
  Alcotest.(check bool) "BL_ALL < BL_1 weights" true
    (Array.for_all2 (fun a b -> a <= b) wall w1 && wall <> w1)

let test_bl_order_topological () =
  let env = busy_env 2 in
  let dag = random_dag 3 in
  List.iter
    (fun m ->
      let order = Bottom_level.order m env dag in
      let pos = Array.make (Dag.n dag) 0 in
      Array.iteri (fun k i -> pos.(i) <- k) order;
      List.iter
        (fun (i, j) ->
          if pos.(i) >= pos.(j) then
            Alcotest.failf "%s order violates edge (%d, %d)" (Bottom_level.name m) i j)
        (Dag.edges dag))
    Bottom_level.all

let test_bl_cpa_equals_cpar_when_q_is_p () =
  let cal = Calendar.create ~procs:16 in
  let env = Env.make ~calendar:cal ~q:16. in
  let dag = random_dag 70 in
  Alcotest.(check bool) "same weights" true
    (Bottom_level.weights BL_CPA env dag = Bottom_level.weights BL_CPAR env dag)

let test_ressched_name () =
  Alcotest.(check string) "name" "BL_CPAR_BD_CPA" (Ressched.name ~bl:BL_CPAR ~bd:BD_CPA)

let test_ressched_slots_exact_duration () =
  let env = busy_env 71 in
  let dag = random_dag 72 in
  let sched = Ressched.schedule env dag in
  Array.iteri
    (fun i (s : Schedule.slot) ->
      Alcotest.(check int)
        (Printf.sprintf "task %d duration" i)
        (Task.exec_time (Dag.task dag i) s.procs)
        (s.finish - s.start))
    sched.slots

let test_bounds_ranges () =
  let env = busy_env ~p:16 4 in
  let dag = random_dag 5 in
  List.iter
    (fun m ->
      let b = Bound.bounds m env dag in
      Array.iter
        (fun v ->
          if v < 1 || v > 16 then Alcotest.failf "%s bound %d outside [1, 16]" (Bound.name m) v)
        b)
    Bound.all

let test_bd_half () =
  let env = Env.no_reservations ~p:16 in
  let dag = diamond () in
  let b = Bound.bounds BD_HALF env dag in
  Alcotest.(check bool) "all p/2" true (Array.for_all (fun v -> v = 8) b)

let test_bd_icaslb_bounds () =
  let env = busy_env ~p:16 7 in
  let dag = random_dag 8 in
  List.iter
    (fun bd ->
      let b = Bound.bounds bd env dag in
      Array.iter
        (fun v ->
          if v < 1 || v > 16 then Alcotest.failf "%s bound %d outside [1, 16]" (Bound.name bd) v)
        b;
      (* the extended bounds still yield valid schedules *)
      let sched = Ressched.schedule ~bd env dag in
      check_valid env dag sched)
    [ Bound.BD_ICASLB; BD_ICASLBR ];
  Alcotest.(check int) "extended list" 7 (List.length Bound.extended)

let test_bd_cpar_smaller_than_all () =
  let env = busy_env ~p:32 6 in
  let dag = random_dag 7 in
  let ball = Bound.bounds BD_ALL env dag in
  let bcpar = Bound.bounds BD_CPAR env dag in
  Alcotest.(check bool) "CPAR bounds <= ALL bounds" true (Array.for_all2 ( >= ) ball bcpar)

(* ------------------------------------------------------------------ *)
(* Ressched *)

let test_ressched_valid_all_combos () =
  let env = busy_env 8 in
  let dag = random_dag 9 in
  List.iter
    (fun (a : Algo.ressched) -> check_valid env dag (a.run env dag))
    Algo.ressched_all

let test_ressched_empty_calendar_is_cpa_like () =
  (* With no reservations, BL_CPA_BD_CPA equals plain CPA. *)
  let env = Env.no_reservations ~p:16 in
  let dag = random_dag 10 in
  let sched = Ressched.schedule ~bl:BL_CPA ~bd:BD_CPA env dag in
  let cpa = Mp_cpa.Cpa.schedule ~p:16 dag in
  (* Same allocations (the bound is the CPA allocation and a task never
     improves completion with fewer procs on an empty cluster), so the
     makespans agree. *)
  Alcotest.(check int) "same makespan" (Schedule.turnaround cpa) (Schedule.turnaround sched)

let test_ressched_avoids_reservations () =
  (* A full blackout at the start forces a delayed schedule. *)
  let p = 4 in
  let cal = Calendar.reserve (Calendar.create ~procs:p) (Reservation.make ~start:0 ~finish:10_000 ~procs:p) in
  let env = Env.make ~calendar:cal ~q:(float_of_int p) in
  let dag = diamond () in
  let sched = Ressched.schedule env dag in
  check_valid env dag sched;
  Alcotest.(check bool) "starts after blackout" true (Schedule.earliest_start sched >= 10_000)

let test_ressched_uses_hole () =
  (* One processor is free during the blackout: a 1-proc task can start. *)
  let p = 4 in
  let cal = Calendar.reserve (Calendar.create ~procs:p) (Reservation.make ~start:0 ~finish:100_000 ~procs:(p - 1)) in
  let env = Env.make ~calendar:cal ~q:1. in
  let dag = diamond () in
  let sched = Ressched.schedule ~bl:BL_CPAR ~bd:BD_CPAR env dag in
  check_valid env dag sched;
  Alcotest.(check int) "entry starts immediately" 0 (Schedule.start sched (Dag.entry dag))

let test_ressched_deterministic () =
  let env = busy_env 11 in
  let dag = random_dag 12 in
  let s1 = Ressched.schedule env dag and s2 = Ressched.schedule env dag in
  Alcotest.(check bool) "same schedule" true (s1 = s2)

let test_ressched_single_task_dag () =
  (* Degenerate DAG: entry -> exit only. *)
  let tasks = Array.init 2 (fun id -> Task.make ~id ~seq:600. ~alpha:0.2) in
  let dag = Dag.make tasks [ (0, 1) ] in
  let env = busy_env 13 in
  let sched = Ressched.schedule env dag in
  check_valid env dag sched

let test_ressched_one_processor_platform () =
  let cal = Calendar.create ~procs:1 in
  let env = Env.make ~calendar:cal ~q:1. in
  let dag = random_dag ~n:10 14 in
  let sched = Ressched.schedule ~bd:BD_ALL env dag in
  check_valid env dag sched;
  Alcotest.(check bool) "all single-proc slots" true
    (Array.for_all (fun (s : Schedule.slot) -> s.procs = 1) sched.slots)

let test_algo_registry () =
  Alcotest.(check int) "16 combinations" 16 (List.length Algo.ressched_all);
  Alcotest.(check int) "4 main" 4 (List.length Algo.ressched_main);
  Alcotest.(check bool) "find BD_CPAR" true (Algo.ressched_find "bd_cpar" <> None);
  Alcotest.(check bool) "find combo" true (Algo.ressched_find "BL_CPA_BD_ALL" <> None);
  Alcotest.(check bool) "find unknown" true (Algo.ressched_find "nope" = None);
  Alcotest.(check int) "5 deadline main" 5 (List.length Algo.deadline_main);
  Alcotest.(check int) "7 deadline total" 7 (List.length Algo.deadline_all);
  Alcotest.(check bool) "find hybrid" true (Algo.deadline_find "DL_RCBD_CPAR-l" <> None)

(* ------------------------------------------------------------------ *)
(* Deadline *)

let test_deadline_meets_deadline () =
  let env = busy_env 15 in
  let dag = random_dag 16 in
  let loose = 4 * Schedule.turnaround (Ressched.schedule env dag) in
  List.iter
    (fun (a : Algo.deadline) ->
      match a.run env dag ~deadline:loose with
      | Some sched -> check_valid env dag ~deadline:loose sched
      | None -> Alcotest.failf "%s failed a loose deadline" a.name)
    robust_deadline_algos;
  (* pure RC algorithms may fail, but any schedule they do produce must be
     valid *)
  List.iter
    (fun algo ->
      match Deadline.resource_conservative algo env dag ~deadline:loose with
      | Some sched -> check_valid env dag ~deadline:loose sched
      | None -> ())
    [ Deadline.DL_RC_CPA; DL_RC_CPAR ]

let test_deadline_impossible () =
  let env = busy_env 17 in
  let dag = random_dag 18 in
  (* Deadline below the all-processors critical path is unachievable. *)
  let k = Deadline.lower_bound env dag / 2 in
  List.iter
    (fun (a : Algo.deadline) ->
      match a.run env dag ~deadline:k with
      | Some _ -> Alcotest.failf "%s met an impossible deadline" a.name
      | None -> ())
    Algo.deadline_all

let test_deadline_zero () =
  let env = busy_env 19 in
  let dag = random_dag 20 in
  Alcotest.(check bool) "K=0 infeasible" true
    (Deadline.aggressive DL_BD_CPA env dag ~deadline:0 = None)

let test_deadline_rc_saves_cpu () =
  (* On loose deadlines, resource-conservative uses (weakly) fewer
     CPU-hours than the unbounded aggressive algorithm, across seeds. *)
  let total_agg = ref 0. and total_rc = ref 0. in
  for seed = 21 to 26 do
    let env = busy_env seed in
    let dag = random_dag (seed + 100) in
    let loose = 6 * Schedule.turnaround (Ressched.schedule env dag) in
    match
      ( Deadline.aggressive DL_BD_ALL env dag ~deadline:loose,
        Deadline.hybrid ~bounded_fallback:true env dag ~deadline:loose )
    with
    | Some agg, Some (rc, _) ->
        total_agg := !total_agg +. Schedule.cpu_hours agg;
        total_rc := !total_rc +. Schedule.cpu_hours rc
    | None, _ -> Alcotest.fail "aggressive failed loose deadline"
    | _, None -> Alcotest.fail "hybrid failed loose deadline"
  done;
  Alcotest.(check bool)
    (Printf.sprintf "rc %.1f < aggressive %.1f CPUh" !total_rc !total_agg)
    true (!total_rc < !total_agg)

let test_deadline_tightest_is_feasible () =
  let env = busy_env 27 in
  let dag = random_dag 28 in
  List.iter
    (fun (a : Algo.deadline) ->
      match Deadline.tightest (fun ~deadline -> a.run env dag ~deadline) env dag with
      | Some (k, sched) ->
          check_valid env dag ~deadline:k sched;
          (* tightest cannot beat the absolute lower bound *)
          Alcotest.(check bool) "above lower bound" true (k >= Deadline.lower_bound env dag)
      | None -> Alcotest.failf "%s found no feasible deadline" a.name)
    robust_deadline_algos

let test_deadline_monotone_in_k () =
  let env = busy_env 29 in
  let dag = random_dag 30 in
  match Deadline.tightest (fun ~deadline -> Deadline.aggressive DL_BD_CPA env dag ~deadline) env dag with
  | None -> Alcotest.fail "no tightest deadline"
  | Some (k, _) ->
      (* looser deadlines remain feasible *)
      List.iter
        (fun factor ->
          let k' = k * factor in
          match Deadline.aggressive DL_BD_CPA env dag ~deadline:k' with
          | Some sched -> check_valid env dag ~deadline:k' sched
          | None -> Alcotest.failf "deadline %d (= %d * %d) infeasible" k' k factor)
        [ 2; 4; 8 ]

let test_hybrid_lambda_bounds () =
  let env = busy_env 31 in
  let dag = random_dag 32 in
  let loose = 4 * Schedule.turnaround (Ressched.schedule env dag) in
  match Deadline.hybrid env dag ~deadline:loose with
  | Some (sched, lambda) ->
      check_valid env dag ~deadline:loose sched;
      Alcotest.(check bool) "lambda in [0,1]" true (lambda >= 0. && lambda <= 1.)
  | None -> Alcotest.fail "hybrid failed loose deadline"

let test_hybrid_loose_uses_lambda_zero () =
  let env = Env.no_reservations ~p:8 in
  let dag = diamond () in
  let loose = 10 * Deadline.lower_bound env dag in
  match Deadline.hybrid env dag ~deadline:loose with
  | Some (_, lambda) -> Alcotest.(check (float 1e-9)) "lambda 0 on loose deadline" 0. lambda
  | None -> Alcotest.fail "hybrid failed"

let test_hybrid_invalid_step () =
  let env = Env.no_reservations ~p:8 in
  let dag = diamond () in
  Alcotest.check_raises "step <= 0" (Invalid_argument "Deadline.hybrid: step <= 0") (fun () ->
      ignore (Deadline.hybrid ~step:0. env dag ~deadline:1000))

let test_rc_invalid_lambda () =
  let env = Env.no_reservations ~p:8 in
  let dag = diamond () in
  Alcotest.check_raises "lambda > 1"
    (Invalid_argument "Deadline.resource_conservative: lambda") (fun () ->
      ignore (Deadline.resource_conservative ~lambda:1.5 DL_RC_CPAR env dag ~deadline:1000))

let test_deadline_backward_precedence () =
  (* Backward schedules must still respect precedence even with a full
     blackout forcing tasks into a narrow window. *)
  let p = 4 in
  let cal =
    Calendar.reserve (Calendar.create ~procs:p)
      (Reservation.make ~start:5_000 ~finish:50_000 ~procs:p)
  in
  let env = Env.make ~calendar:cal ~q:2. in
  let dag = diamond () in
  let k = 80_000 in
  match Deadline.aggressive DL_BD_CPAR env dag ~deadline:k with
  | Some sched -> check_valid env dag ~deadline:k sched
  | None -> Alcotest.fail "expected feasible schedule around the blackout"

(* ------------------------------------------------------------------ *)
(* Blind (trial-and-error) scheduling *)

let test_blind_matches_omniscient_with_large_budget () =
  (* With enough probes per task, the trial-and-error scheduler finds the
     same earliest-completion placements as the calendar-reading one. *)
  for seed = 40 to 44 do
    let env = busy_env seed in
    let dag = random_dag (seed + 500) in
    let omniscient = Ressched.schedule ~bl:BL_CPAR ~bd:BD_CPAR env dag in
    let probe = Mp_service.Probe.create env.calendar in
    let blind = Blind.schedule ~budget:10_000 ~q:env.q ~probe dag in
    if blind <> omniscient then
      Alcotest.failf "seed %d: blind schedule differs from omniscient BD_CPAR" seed
  done

let test_blind_valid_with_small_budget () =
  List.iter
    (fun budget ->
      let env = busy_env 45 in
      let dag = random_dag 46 in
      let probe = Mp_service.Probe.create env.calendar in
      let sched = Blind.schedule ~budget ~q:env.q ~probe dag in
      check_valid env dag sched)
    [ 1; 2; 4; 8 ]

let test_blind_budget_improves_quality () =
  (* Statistically, a roomier budget can only help turn-around time. *)
  let total budget =
    let acc = ref 0 in
    for seed = 47 to 52 do
      let env = busy_env seed in
      let dag = random_dag (seed + 600) in
      let probe = Mp_service.Probe.create env.calendar in
      acc := !acc + Schedule.turnaround (Blind.schedule ~budget ~q:env.q ~probe dag)
    done;
    !acc
  in
  Alcotest.(check bool) "budget 64 <= budget 1" true (total 64 <= total 1)

let test_blind_counts_probes () =
  let env = busy_env 53 in
  let dag = random_dag 54 in
  let probe = Mp_service.Probe.create env.calendar in
  let (_ : Schedule.t) = Blind.schedule ~q:env.q ~probe dag in
  Alcotest.(check bool) "at least one probe per task" true
    (Mp_service.Probe.probes probe >= Dag.n dag)

let test_blind_invalid_budget () =
  let env = Env.no_reservations ~p:4 in
  let dag = diamond () in
  let probe = Mp_service.Probe.create env.calendar in
  Alcotest.check_raises "budget < 1" (Invalid_argument "Blind.schedule: budget < 1") (fun () ->
      ignore (Blind.schedule ~budget:0 ~q:4 ~probe dag))

(* ------------------------------------------------------------------ *)
(* Hressched (heterogeneous multi-cluster) *)

module Grid = Mp_platform.Grid

let two_site_grid ?(rs1 = []) ?(rs2 = []) () =
  Grid.make
    [
      ({ Grid.name = "fast"; procs = 8; speed = 2.0 }, rs1);
      ({ Grid.name = "slow"; procs = 16; speed = 1.0 }, rs2);
    ]

let test_hetero_valid () =
  let grid = two_site_grid () in
  for seed = 80 to 84 do
    let dag = random_dag seed in
    List.iter
      (fun bd ->
        let sched = Hressched.schedule ~bd grid dag in
        match Hressched.validate grid dag sched with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "seed %d (%s): %s" seed (Hressched.bound_name bd) msg)
      [ Hressched.HBD_ALL; HBD_CPAR ]
  done

let test_hetero_prefers_fast_site () =
  (* A chain DAG on an empty grid: every task should land on the site
     that finishes it first, which for generous sizes is the fast one. *)
  let grid = two_site_grid () in
  let dag = chain_dag 6 in
  let sched = Hressched.schedule ~bd:HBD_ALL grid dag in
  Array.iter
    (fun (s : Hressched.slot) ->
      Alcotest.(check int) "fast site chosen" 0 s.site)
    sched.slots

let test_hetero_avoids_reserved_site () =
  (* The fast site is fully booked for a long time: tasks must go to the
     slow one. *)
  let blackout = [ Reservation.make ~start:0 ~finish:10_000_000 ~procs:8 ] in
  let grid = two_site_grid ~rs1:blackout () in
  let dag = chain_dag 4 in
  let sched = Hressched.schedule grid dag in
  (match Hressched.validate grid dag sched with Ok () -> () | Error m -> Alcotest.fail m);
  Array.iter
    (fun (s : Hressched.slot) -> Alcotest.(check int) "slow site chosen" 1 s.site)
    sched.slots

let test_hetero_single_site_matches_homogeneous () =
  (* One site at speed 1 with the same calendar and the same availability
     estimate: the heterogeneous scheduler degenerates to the homogeneous
     BD_CPAR one. *)
  let day = 86_400 in
  for seed = 85 to 88 do
    let rng = Rng.create seed in
    let p = 8 in
    let rs =
      List.filter_map
        (fun _ ->
          let start = Rng.int rng 40_000 in
          let dur = 600 + Rng.int rng 4_000 in
          Some (Reservation.make ~start ~finish:(start + dur) ~procs:(1 + Rng.int rng (p / 2))))
        (List.init 10 Fun.id)
    in
    (* keep a feasible subset *)
    let cal, rs =
      List.fold_left
        (fun (cal, kept) r ->
          match Calendar.reserve_opt cal r with
          | Some cal -> (cal, r :: kept)
          | None -> (cal, kept))
        (Calendar.create ~procs:p, [])
        rs
    in
    let q = Calendar.average_available cal ~from_:0 ~until:(7 * day) in
    let env = Env.make ~calendar:cal ~q in
    let grid = Grid.make [ ({ Grid.name = "only"; procs = p; speed = 1.0 }, rs) ] in
    let dag = random_dag (seed + 900) in
    let homog = Ressched.schedule ~bl:BL_CPAR ~bd:BD_CPAR env dag in
    let hetero = Hressched.schedule ~bd:HBD_CPAR grid dag in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: same turnaround" seed)
      (Schedule.turnaround homog) (Hressched.turnaround hetero)
  done

let test_hetero_cpar_cheaper_than_all () =
  let total_all = ref 0. and total_cpar = ref 0. in
  for seed = 90 to 94 do
    let dag = random_dag seed in
    let grid = two_site_grid () in
    total_all := !total_all +. Hressched.cpu_hours (Hressched.schedule ~bd:HBD_ALL grid dag);
    total_cpar := !total_cpar +. Hressched.cpu_hours (Hressched.schedule ~bd:HBD_CPAR grid dag)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "HBD_CPAR %.1f <= HBD_ALL %.1f CPUh" !total_cpar !total_all)
    true (!total_cpar <= !total_all)

let test_hetero_speed_scaling () =
  (* Doubling every site's speed should roughly halve the makespan on an
     empty grid. *)
  let dag = random_dag 95 in
  let mk speed =
    Grid.make [ ({ Grid.name = "c"; procs = 16; speed }, []) ]
  in
  let t1 = Hressched.turnaround (Hressched.schedule (mk 1.0) dag) in
  let t2 = Hressched.turnaround (Hressched.schedule (mk 2.0) dag) in
  Alcotest.(check bool)
    (Printf.sprintf "speed 2 turnaround %d within [0.4, 0.6] x %d" t2 t1)
    true
    (float_of_int t2 > 0.4 *. float_of_int t1 && float_of_int t2 < 0.62 *. float_of_int t1)

let test_hetero_deadline_meets () =
  let grid = two_site_grid () in
  let dag = random_dag 96 in
  let forward = Hressched.schedule grid dag in
  let k = 3 * Hressched.turnaround forward in
  match Hressched.deadline grid dag ~deadline:k with
  | None -> Alcotest.fail "loose multi-site deadline failed"
  | Some sched -> (
      Alcotest.(check bool) "within deadline" true (Hressched.turnaround sched <= k);
      match Hressched.validate grid dag sched with Ok () -> () | Error m -> Alcotest.fail m)

let test_hetero_deadline_impossible () =
  let grid = two_site_grid () in
  let dag = random_dag 97 in
  Alcotest.(check bool) "1s deadline infeasible" true
    (Hressched.deadline grid dag ~deadline:1 = None)

let test_hetero_tightest () =
  let grid = two_site_grid () in
  let dag = random_dag 98 in
  match Hressched.tightest grid dag with
  | None -> Alcotest.fail "no tightest deadline"
  | Some (k, sched) ->
      Alcotest.(check bool) "schedule meets it" true (Hressched.turnaround sched <= k);
      (match Hressched.validate grid dag sched with Ok () -> () | Error m -> Alcotest.fail m);
      (* a slightly tighter deadline must be harder; much looser must work *)
      Alcotest.(check bool) "looser ok" true (Hressched.deadline grid dag ~deadline:(2 * k) <> None)

(* ------------------------------------------------------------------ *)
(* Online (mid-scheduling arrivals) *)

let test_online_no_events_is_ressched () =
  let env = busy_env 60 in
  let dag = random_dag 61 in
  let events = Array.make (Dag.n dag) [] in
  let sched, granted = Online.schedule env ~events dag in
  Alcotest.(check int) "no competitors" 0 (List.length granted);
  Alcotest.(check bool) "same as frozen-calendar schedule" true
    (sched = Ressched.schedule env dag)

let test_online_with_events_valid () =
  let env = busy_env 62 in
  let dag = random_dag 63 in
  let rng = Rng.create 64 in
  let events =
    Array.init (Dag.n dag) (fun _ ->
        List.init 2 (fun _ ->
            let start = Rng.int rng 50_000 in
            let dur = 600 + Rng.int rng 5_000 in
            Mp_service.Request.Reserve { start; dur; procs = 1 + Rng.int rng 3 }))
  in
  let sched, granted = Online.schedule env ~events dag in
  (* validation base: original calendar plus granted competitors *)
  let base = List.fold_left Calendar.reserve env.calendar granted in
  match Schedule.validate dag ~base sched with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_online_interference_hurts () =
  (* Heavy interference cannot improve turn-around (statistically). *)
  let total_frozen = ref 0 and total_online = ref 0 in
  for seed = 65 to 70 do
    let env = busy_env seed in
    let dag = random_dag (seed + 700) in
    let rng = Rng.create (seed + 800) in
    let events =
      Array.init (Dag.n dag) (fun _ ->
          List.init 4 (fun _ ->
              let start = Rng.int rng 80_000 in
              let dur = 3_600 + Rng.int rng 20_000 in
              Mp_service.Request.Reserve { start; dur; procs = 1 + Rng.int rng 4 }))
    in
    total_frozen := !total_frozen + Schedule.turnaround (Ressched.schedule env dag);
    let sched, _ = Online.schedule env ~events dag in
    total_online := !total_online + Schedule.turnaround sched
  done;
  Alcotest.(check bool)
    (Printf.sprintf "online %d >= frozen %d" !total_online !total_frozen)
    true
    (!total_online >= !total_frozen)

(* ------------------------------------------------------------------ *)
(* Properties *)

let arb_seed = QCheck.small_int

let prop_ressched_valid =
  QCheck.Test.make ~name:"ressched schedules are always valid" ~count:40 arb_seed (fun seed ->
      let env = busy_env seed in
      let dag = random_dag ~n:15 (seed + 1000) in
      List.for_all
        (fun (a : Algo.ressched) ->
          Result.is_ok (Schedule.validate dag ~base:env.calendar (a.run env dag)))
        Algo.ressched_main)

let prop_deadline_valid_when_met =
  QCheck.Test.make ~name:"deadline schedules meet their deadline" ~count:25 arb_seed (fun seed ->
      let env = busy_env seed in
      let dag = random_dag ~n:12 (seed + 2000) in
      let k = 3 * Schedule.turnaround (Ressched.schedule env dag) in
      List.for_all
        (fun (a : Algo.deadline) ->
          match a.run env dag ~deadline:k with
          | None -> true
          | Some sched -> Result.is_ok (Schedule.validate dag ~base:env.calendar ~deadline:k sched))
        Algo.deadline_all)

let prop_ressched_respects_bounds =
  QCheck.Test.make ~name:"ressched never exceeds per-task bounds" ~count:30 arb_seed (fun seed ->
      let env = busy_env seed in
      let dag = random_dag ~n:15 (seed + 4000) in
      List.for_all
        (fun bd ->
          let bounds = Bound.bounds bd env dag in
          let sched = Ressched.schedule ~bd env dag in
          Array.for_all
            (fun i -> Schedule.procs sched i <= max 1 bounds.(i))
            (Array.init (Dag.n dag) Fun.id))
        Bound.all)

let prop_deadline_slots_within_window =
  QCheck.Test.make ~name:"deadline slots lie within [0, K]" ~count:20 arb_seed (fun seed ->
      let env = busy_env seed in
      let dag = random_dag ~n:12 (seed + 5000) in
      let k = 3 * Schedule.turnaround (Ressched.schedule env dag) in
      List.for_all
        (fun (a : Algo.deadline) ->
          match a.run env dag ~deadline:k with
          | None -> true
          | Some sched ->
              Array.for_all
                (fun (s : Schedule.slot) -> s.start >= 0 && s.finish <= k)
                sched.slots)
        Algo.deadline_all)

let prop_turnaround_at_least_lower_bound =
  QCheck.Test.make ~name:"turnaround >= all-processors critical path" ~count:30 arb_seed
    (fun seed ->
      let env = busy_env seed in
      let dag = random_dag ~n:15 (seed + 6000) in
      let lb = Deadline.lower_bound env dag in
      List.for_all
        (fun (a : Algo.ressched) -> Schedule.turnaround (a.run env dag) >= lb)
        Algo.ressched_main)

let prop_prepared_equals_direct =
  QCheck.Test.make ~name:"prepared deadline closures match direct runs" ~count:15 arb_seed
    (fun seed ->
      let env = busy_env seed in
      let dag = random_dag ~n:12 (seed + 8000) in
      let k = 2 * Schedule.turnaround (Ressched.schedule env dag) in
      List.for_all
        (fun (a : Algo.deadline) ->
          let direct = a.run env dag ~deadline:k in
          let prepared = a.prepare env dag ~deadline:k in
          match (direct, prepared) with
          | None, None -> true
          | Some s1, Some s2 -> s1 = s2
          | _ -> false)
        Algo.deadline_all)

let prop_hetero_valid_on_random_grids =
  QCheck.Test.make ~name:"hressched valid on random grids" ~count:20 arb_seed (fun seed ->
      let rng = Rng.create seed in
      let n_sites = 1 + Rng.int rng 3 in
      let sites =
        List.init n_sites (fun k ->
            ( {
                Grid.name = "s" ^ string_of_int k;
                procs = 4 + Rng.int rng 28;
                speed = 0.5 +. Rng.float rng 2.;
              },
              [] ))
      in
      let grid = Grid.make sites in
      let dag = random_dag ~n:12 (seed + 7000) in
      List.for_all
        (fun bd -> Result.is_ok (Hressched.validate grid dag (Hressched.schedule ~bd grid dag)))
        [ Hressched.HBD_ALL; HBD_CPAR ])

let prop_bd_cpar_cpu_not_more_than_bd_all =
  QCheck.Test.make ~name:"BD_CPAR consumes no more CPU-hours than BD_ALL (statistically)"
    ~count:15 arb_seed (fun seed ->
      (* aggregate over a few instances: CPA-bounded allocations waste
         less work than unbounded ones *)
      let total bd =
        let acc = ref 0. in
        for k = 0 to 3 do
          let env = busy_env ((seed * 4) + k) in
          let dag = random_dag ~n:15 ((seed * 4) + k + 3000) in
          acc := !acc +. Schedule.cpu_hours (Ressched.schedule ~bd env dag)
        done;
        !acc
      in
      total BD_CPAR <= total BD_ALL +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Speculation: lending a pool must not change a single byte of any
   schedule, chosen deadline or λ — the intra-schedule-parallelism
   determinism pin (see "Intra-schedule speculation" in DESIGN.md). *)

let with_spec jobs f =
  Mp_prelude.Pool.with_pool ~jobs (fun p -> f (Speculate.create p))

let prop_spec_ressched_equals_seq =
  QCheck.Test.make ~name:"speculative ressched = sequential (jobs 1,2,4)" ~count:12 arb_seed
    (fun seed ->
      let env = busy_env seed in
      let dag = random_dag ~n:15 (seed + 9000) in
      let reference = Ressched.schedule env dag in
      List.for_all
        (fun jobs -> with_spec jobs (fun spec -> Ressched.schedule ~spec env dag = reference))
        [ 1; 2; 4 ])

let prop_spec_deadline_equals_seq =
  QCheck.Test.make ~name:"speculative deadline search = sequential (jobs 1,2,4)" ~count:6
    arb_seed (fun seed ->
      let env = busy_env seed in
      let dag = random_dag ~n:12 (seed + 9500) in
      List.for_all
        (fun jobs ->
          with_spec jobs (fun spec ->
              List.for_all
                (fun (a : Algo.deadline) ->
                  (* same-spec convention: a prepared closure is driven
                     only by searches given the spec it was prepared
                     under *)
                  let seq_tight = Deadline.tightest (a.prepare env dag) env dag in
                  let spec_tight = Deadline.tightest ~spec (a.prepare ~spec env dag) env dag in
                  seq_tight = spec_tight
                  &&
                  match seq_tight with
                  | None -> true
                  | Some (k, _) ->
                      a.run env dag ~deadline:(2 * k) = a.run ~spec env dag ~deadline:(2 * k))
                robust_deadline_algos))
        [ 1; 2; 4 ])

(* With the decision journal on, speculation stands down by itself: the
   journaled story — a process-global, order-sensitive instrument — must
   be the sequential one, entry for entry, even when a spec is passed. *)
let test_spec_journal_stand_down () =
  let module Journal = Mp_forensics.Journal in
  let env = busy_env 5 in
  let dag = random_dag ~n:12 5005 in
  with_spec 4 (fun spec ->
      Journal.with_enabled (fun () ->
          Alcotest.(check bool)
            "acquire stands down under the journal" true
            (Speculate.acquire (Some spec) = None));
      let journaled run =
        Journal.reset ();
        let sched = Journal.with_enabled run in
        let entries = Journal.take () in
        Journal.reset ();
        (sched, entries)
      in
      let seq_r, seq_entries = journaled (fun () -> Ressched.schedule env dag) in
      let spec_r, spec_entries = journaled (fun () -> Ressched.schedule ~spec env dag) in
      Alcotest.(check bool) "journaled ressched identical" true (seq_r = spec_r);
      Alcotest.(check int)
        "ressched journal length identical" (List.length seq_entries)
        (List.length spec_entries);
      Alcotest.(check bool) "ressched journal identical" true (seq_entries = spec_entries);
      let a = List.hd robust_deadline_algos in
      let k = 2 * Schedule.turnaround seq_r in
      let seq_d, seq_dent = journaled (fun () -> a.run env dag ~deadline:k) in
      let spec_d, spec_dent = journaled (fun () -> a.run ~spec env dag ~deadline:k) in
      Alcotest.(check bool) "journaled deadline identical" true (seq_d = spec_d);
      Alcotest.(check bool) "deadline journal identical" true (seq_dent = spec_dent))

(* The busy flag: a nested acquire while a search holds the pool must
   refuse, and release must restore it. *)
let test_spec_busy_flag () =
  with_spec 4 (fun spec ->
      match Speculate.acquire (Some spec) with
      | None -> Alcotest.fail "outermost acquire refused"
      | Some held ->
          Alcotest.(check bool) "nested acquire refused" true
            (Speculate.acquire (Some spec) = None);
          Speculate.release held;
          (match Speculate.acquire (Some spec) with
          | None -> Alcotest.fail "acquire after release refused"
          | Some again -> Speculate.release again);
          Alcotest.(check bool) "acquire None" true (Speculate.acquire None = None));
  (* a sequential pool has nothing to lend *)
  with_spec 1 (fun spec ->
      Alcotest.(check bool) "jobs=1 stands down" true (Speculate.acquire (Some spec) = None))

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_ressched_valid;
        prop_deadline_valid_when_met;
        prop_ressched_respects_bounds;
        prop_deadline_slots_within_window;
        prop_turnaround_at_least_lower_bound;
        prop_prepared_equals_direct;
        prop_hetero_valid_on_random_grids;
        prop_bd_cpar_cpu_not_more_than_bd_all;
        prop_spec_ressched_equals_seq;
        prop_spec_deadline_equals_seq;
      ]
  in
  Alcotest.run "core"
    [
      ( "env",
        [
          Alcotest.test_case "clamps q" `Quick test_env_clamps_q;
          Alcotest.test_case "no reservations" `Quick test_env_no_reservations;
        ] );
      ( "bottom_level",
        [
          Alcotest.test_case "methods distinct" `Quick test_bl_methods_distinct;
          Alcotest.test_case "order topological" `Quick test_bl_order_topological;
          Alcotest.test_case "CPA = CPAR when q = p" `Quick test_bl_cpa_equals_cpar_when_q_is_p;
          Alcotest.test_case "algorithm names" `Quick test_ressched_name;
          Alcotest.test_case "slots exact duration" `Quick test_ressched_slots_exact_duration;
        ] );
      ( "bound",
        [
          Alcotest.test_case "ranges" `Quick test_bounds_ranges;
          Alcotest.test_case "half" `Quick test_bd_half;
          Alcotest.test_case "cpar <= all" `Quick test_bd_cpar_smaller_than_all;
          Alcotest.test_case "icaslb bounds" `Quick test_bd_icaslb_bounds;
        ] );
      ( "ressched",
        [
          Alcotest.test_case "all combos valid" `Quick test_ressched_valid_all_combos;
          Alcotest.test_case "empty calendar = CPA" `Quick test_ressched_empty_calendar_is_cpa_like;
          Alcotest.test_case "avoids reservations" `Quick test_ressched_avoids_reservations;
          Alcotest.test_case "uses holes" `Quick test_ressched_uses_hole;
          Alcotest.test_case "deterministic" `Quick test_ressched_deterministic;
          Alcotest.test_case "two-task DAG" `Quick test_ressched_single_task_dag;
          Alcotest.test_case "one-processor platform" `Quick test_ressched_one_processor_platform;
          Alcotest.test_case "registry" `Quick test_algo_registry;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "meets deadline" `Quick test_deadline_meets_deadline;
          Alcotest.test_case "impossible deadline" `Quick test_deadline_impossible;
          Alcotest.test_case "zero deadline" `Quick test_deadline_zero;
          Alcotest.test_case "rc saves cpu" `Quick test_deadline_rc_saves_cpu;
          Alcotest.test_case "tightest feasible" `Quick test_deadline_tightest_is_feasible;
          Alcotest.test_case "monotone in K" `Quick test_deadline_monotone_in_k;
          Alcotest.test_case "hybrid lambda bounds" `Quick test_hybrid_lambda_bounds;
          Alcotest.test_case "hybrid loose -> lambda 0" `Quick test_hybrid_loose_uses_lambda_zero;
          Alcotest.test_case "hybrid invalid step" `Quick test_hybrid_invalid_step;
          Alcotest.test_case "rc invalid lambda" `Quick test_rc_invalid_lambda;
          Alcotest.test_case "backward precedence" `Quick test_deadline_backward_precedence;
        ] );
      ( "blind",
        [
          Alcotest.test_case "matches omniscient (large budget)" `Quick
            test_blind_matches_omniscient_with_large_budget;
          Alcotest.test_case "valid with small budgets" `Quick test_blind_valid_with_small_budget;
          Alcotest.test_case "budget improves quality" `Quick test_blind_budget_improves_quality;
          Alcotest.test_case "counts probes" `Quick test_blind_counts_probes;
          Alcotest.test_case "invalid budget" `Quick test_blind_invalid_budget;
        ] );
      ( "hressched",
        [
          Alcotest.test_case "valid schedules" `Quick test_hetero_valid;
          Alcotest.test_case "prefers fast site" `Quick test_hetero_prefers_fast_site;
          Alcotest.test_case "avoids reserved site" `Quick test_hetero_avoids_reserved_site;
          Alcotest.test_case "single site = homogeneous" `Quick
            test_hetero_single_site_matches_homogeneous;
          Alcotest.test_case "cpar cheaper than all" `Quick test_hetero_cpar_cheaper_than_all;
          Alcotest.test_case "speed scaling" `Quick test_hetero_speed_scaling;
          Alcotest.test_case "deadline meets" `Quick test_hetero_deadline_meets;
          Alcotest.test_case "deadline impossible" `Quick test_hetero_deadline_impossible;
          Alcotest.test_case "tightest" `Quick test_hetero_tightest;
        ] );
      ( "online",
        [
          Alcotest.test_case "no events = frozen" `Quick test_online_no_events_is_ressched;
          Alcotest.test_case "valid with events" `Quick test_online_with_events_valid;
          Alcotest.test_case "interference hurts" `Quick test_online_interference_hurts;
        ] );
      ( "speculate",
        [
          Alcotest.test_case "journal stands speculation down" `Quick
            test_spec_journal_stand_down;
          Alcotest.test_case "busy flag admits one search" `Quick test_spec_busy_flag;
        ] );
      ("properties", props);
    ]
