open Mp_sim
module Rng = Mp_prelude.Rng
module Dag_gen = Mp_dag.Dag_gen
module Log_model = Mp_workload.Log_model
module Reservation_gen = Mp_workload.Reservation_gen
module Algo = Mp_core.Algo

let micro = { Experiments.seed = 7; n_app = 1; n_res = 1; n_dags = 1; n_cals = 2 }

(* ------------------------------------------------------------------ *)
(* Scenario *)

let test_app_specs_count () =
  (* 5 + 4 + 9 + 9 + 9 + 4 = 40 specifications, per Table 1 *)
  Alcotest.(check int) "40 app specs" 40 (List.length Scenario.app_specs)

let test_res_specs_count () =
  Alcotest.(check int) "36 res specs" 36 (List.length Scenario.res_specs)

let test_phis () = Alcotest.(check (list (float 1e-9))) "phis" [ 0.1; 0.2; 0.5 ] Scenario.phis

let test_sample_specs () =
  let s = Scenario.sample_app_specs 5 in
  Alcotest.(check bool) "at most 5+default" true (List.length s <= 6 && List.length s >= 4);
  Alcotest.(check bool) "includes default params" true
    (List.exists (fun (a : Scenario.app_spec) -> a.params = Dag_gen.default) s);
  Alcotest.(check int) "res sample" 4 (List.length (Scenario.sample_res_specs 4));
  Alcotest.(check int) "oversample capped" 36 (List.length (Scenario.sample_res_specs 100))

let test_res_label () =
  let r =
    { Scenario.log = Log_model.sdsc_blue; phi = 0.2; method_ = Reservation_gen.Expo }
  in
  Alcotest.(check string) "label" "SDSC_BLUE/phi=0.2/expo" (Scenario.res_label r)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let result values =
  {
    Metrics.scenario = "s";
    algos = Array.init (Array.length values) (fun i -> Printf.sprintf "a%d" i);
    values;
  }

let test_metrics_means () =
  let r = result [| [| 1.; 3. |]; [| 2.; 2. |] |] in
  Alcotest.(check (array (float 1e-9))) "means" [| 2.; 2. |] (Metrics.scenario_means r)

let test_metrics_degradation () =
  let r = result [| [| 10.; 10. |]; [| 11.; 11. |]; [| 15.; 15. |] |] in
  let d = Metrics.degradations r in
  Alcotest.(check (float 1e-6)) "best has 0" 0. d.(0);
  Alcotest.(check (float 1e-6)) "10% worse" 10. d.(1);
  Alcotest.(check (float 1e-6)) "50% worse" 50. d.(2)

let test_metrics_winners_ties () =
  let r = result [| [| 5. |]; [| 5. |]; [| 6. |] |] in
  Alcotest.(check (array bool)) "tied winners" [| true; true; false |] (Metrics.winners r)

let test_metrics_nonfinite_filtered () =
  let r = result [| [| 2.; infinity |]; [| 4.; 4. |] |] in
  let m = Metrics.scenario_means r in
  Alcotest.(check (float 1e-9)) "failure excluded" 2. m.(0);
  let all_fail = result [| [| infinity; infinity |]; [| 1.; 1. |] |] in
  Alcotest.(check bool) "all-failed is infinite" true
    ((Metrics.scenario_means all_fail).(0) = infinity)

let test_metrics_summarize () =
  let r1 = result [| [| 10. |]; [| 20. |] |] in
  let r2 = result [| [| 30. |]; [| 15. |] |] in
  match Metrics.summarize [ r1; r2 ] with
  | [ a0; a1 ] ->
      Alcotest.(check int) "a0 wins once" 1 a0.wins;
      Alcotest.(check int) "a1 wins once" 1 a1.wins;
      (* a0: deg 0 then 100; a1: deg 100 then 0 *)
      Alcotest.(check (float 1e-6)) "a0 avg deg" 50. a0.avg_degradation;
      Alcotest.(check (float 1e-6)) "a1 avg deg" 50. a1.avg_degradation
  | _ -> Alcotest.fail "expected two rows"

let test_metrics_summarize_mismatch () =
  let r1 = result [| [| 1. |] |] in
  let r2 = { (result [| [| 1. |] |]) with algos = [| "other" |] } in
  Alcotest.check_raises "inconsistent algos"
    (Invalid_argument "Metrics.summarize: inconsistent algorithm lists") (fun () ->
      ignore (Metrics.summarize [ r1; r2 ]))

let test_metrics_all_nonfinite () =
  (* every flavour of non-finite marks a failure; an algorithm with no
     finite instance at all gets an infinite mean, infinite degradation,
     and never wins *)
  let r = result [| [| Float.nan; infinity; neg_infinity |]; [| 1.; 2.; 3. |] |] in
  let m = Metrics.scenario_means r in
  Alcotest.(check bool) "all-non-finite mean is infinite" true (m.(0) = infinity);
  Alcotest.(check (float 1e-9)) "finite algo unaffected" 2. m.(1);
  let d = Metrics.degradations r in
  Alcotest.(check bool) "failed algo degrades infinitely" true (d.(0) = infinity);
  Alcotest.(check (float 1e-9)) "surviving algo is best" 0. d.(1);
  Alcotest.(check (array bool)) "failed algo never wins" [| false; true |] (Metrics.winners r)

let test_metrics_tie_wins_exceed_scenarios () =
  (* means within the 1e-9 relative tolerance all win, so the win columns
     can sum past the scenario count — the .mli documents this as the
     reason the paper's columns do too *)
  let r1 = result [| [| 1. |]; [| 1. +. 1e-10 |]; [| 2. |] |] in
  let r2 = result [| [| 3. |]; [| 3. |]; [| 4. |] |] in
  let rows = Metrics.summarize [ r1; r2 ] in
  let total_wins = List.fold_left (fun acc (r : Metrics.row) -> acc + r.wins) 0 rows in
  Alcotest.(check int) "near-tie and exact tie both count" 4 total_wins;
  Alcotest.(check bool) "wins sum past scenario count" true
    (total_wins > List.length [ r1; r2 ])

let test_metrics_winner_invariants =
  QCheck.Test.make ~count:100 ~name:"metrics: a winner always exists and is at 0 degradation"
    QCheck.(
      array_of_size (Gen.int_range 1 4)
        (array_of_size (Gen.int_range 1 5) (float_range 0.1 1000.)))
    (fun values ->
      let r = result values in
      let d = Metrics.degradations r and w = Metrics.winners r in
      Array.exists Fun.id w
      && Array.for_all (fun x -> x >= 0.) d
      && Array.exists2 (fun win deg -> win && deg <= 1e-6) w d)

(* ------------------------------------------------------------------ *)
(* Report *)

let test_report_render () =
  let s =
    Report.render ~title:"T" ~header:[ "a"; "b" ] ~rows:[ [ "x"; "123" ]; [ "yy"; "4" ] ]
  in
  Alcotest.(check bool) "contains title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains rule" true (String.contains s '-')

let test_report_formats () =
  Alcotest.(check string) "f1" "3.1" (Report.f1 3.14);
  Alcotest.(check string) "f2" "3.14" (Report.f2 3.141);
  Alcotest.(check string) "f3 inf" "inf" (Report.f3 infinity)

(* ------------------------------------------------------------------ *)
(* Logcache / Instance *)

let test_logcache_caches () =
  Logcache.clear ();
  let a = Logcache.jobs ~seed:3 Log_model.osc_cluster in
  let b = Logcache.jobs ~seed:3 Log_model.osc_cluster in
  Alcotest.(check bool) "same physical list" true (a == b);
  let c = Logcache.jobs ~seed:4 Log_model.osc_cluster in
  Alcotest.(check bool) "different seed differs" true (a != c);
  Logcache.clear ()

let test_instance_synthetic () =
  let app = { Scenario.label = "t"; params = { Dag_gen.default with n = 12 } } in
  let res = { Scenario.log = Log_model.osc_cluster; phi = 0.2; method_ = Reservation_gen.Expo } in
  let insts = Instance.synthetic ~seed:5 ~app ~res ~n_dags:2 ~n_cals:3 in
  Alcotest.(check int) "2 x 3 instances" 6 (List.length insts);
  List.iter
    (fun (inst : Instance.t) ->
      Alcotest.(check int) "dag size" 12 (Mp_dag.Dag.n inst.dag);
      Alcotest.(check int) "platform size" Log_model.osc_cluster.cpus inst.env.p;
      Alcotest.(check bool) "q in range" true (inst.env.q >= 1 && inst.env.q <= inst.env.p))
    insts

let test_instance_deterministic () =
  let app = { Scenario.label = "t"; params = { Dag_gen.default with n = 10 } } in
  let res = { Scenario.log = Log_model.osc_cluster; phi = 0.1; method_ = Reservation_gen.Real } in
  let a = Instance.synthetic ~seed:6 ~app ~res ~n_dags:1 ~n_cals:1 in
  let b = Instance.synthetic ~seed:6 ~app ~res ~n_dags:1 ~n_cals:1 in
  match (a, b) with
  | [ ia ], [ ib ] ->
      Alcotest.(check bool) "same dag" true (Mp_dag.Dag.edges ia.dag = Mp_dag.Dag.edges ib.dag)
  | _ -> Alcotest.fail "expected single instances"

let test_instance_grid5000 () =
  let app = { Scenario.label = "t"; params = { Dag_gen.default with n = 10 } } in
  let insts = Instance.grid5000 ~seed:7 ~app ~n_dags:1 ~n_cals:2 in
  Alcotest.(check int) "instances" 2 (List.length insts);
  List.iter
    (fun (inst : Instance.t) ->
      Alcotest.(check string) "label" "Grid5000" inst.res_label;
      Alcotest.(check bool) "has platform" true (inst.env.p > 0))
    insts

(* ------------------------------------------------------------------ *)
(* Runner (with validation on) *)

let micro_instances () =
  let app = { Scenario.label = "t"; params = { Dag_gen.default with n = 10 } } in
  let res = { Scenario.log = Log_model.osc_cluster; phi = 0.2; method_ = Reservation_gen.Expo } in
  Instance.synthetic ~seed:8 ~app ~res ~n_dags:2 ~n_cals:2

let test_runner_ressched () =
  let insts = micro_instances () in
  let r = Runner.ressched ~validate:true ~algos:Algo.ressched_main ~scenario:"s" insts in
  let tat = r.Runner.tat and cpu = r.Runner.cpu_hours in
  Alcotest.(check int) "algos" 4 (Array.length tat.algos);
  Array.iter
    (fun per_algo -> Alcotest.(check int) "instances" 4 (Array.length per_algo))
    tat.values;
  (* every value must be positive and finite *)
  Array.iter
    (Array.iter (fun v -> Alcotest.(check bool) "finite positive" true (Float.is_finite v && v > 0.)))
    tat.values;
  Array.iter
    (Array.iter (fun v -> Alcotest.(check bool) "cpu positive" true (Float.is_finite v && v > 0.)))
    cpu.values

let test_runner_deadline () =
  let insts = micro_instances () in
  let algos = Algo.deadline_hybrid in
  let r = Runner.deadline ~validate:true ~algos ~scenario:"s" insts in
  let tight = r.Runner.tightest and cpu = r.Runner.loose_cpu_hours in
  Alcotest.(check int) "algos" (List.length algos) (Array.length tight.algos);
  (* robust algorithms must find finite tightest deadlines *)
  Array.iteri
    (fun a per_algo ->
      let name = tight.algos.(a) in
      if name <> "DL_RC_CPAR" then
        Array.iter
          (fun v ->
            if not (Float.is_finite v) then Alcotest.failf "%s has non-finite tightest" name)
          per_algo)
    tight.values;
  ignore cpu

let test_runner_parallel_deterministic () =
  (* the determinism contract: worker count must not change any matrix *)
  let app = { Scenario.label = "t"; params = { Dag_gen.default with n = 10 } } in
  let res = { Scenario.log = Log_model.osc_cluster; phi = 0.2; method_ = Reservation_gen.Expo } in
  List.iter
    (fun (seed, scenario) ->
      let insts = Instance.synthetic ~seed ~app ~res ~n_dags:2 ~n_cals:2 in
      let seq = Runner.ressched ~jobs:1 ~algos:Algo.ressched_main ~scenario insts in
      let par = Runner.ressched ~jobs:4 ~algos:Algo.ressched_main ~scenario insts in
      Alcotest.(check bool) (scenario ^ ": tat identical") true
        (seq.Runner.tat.values = par.Runner.tat.values);
      Alcotest.(check bool) (scenario ^ ": cpu identical") true
        (seq.Runner.cpu_hours.values = par.Runner.cpu_hours.values))
    [ (11, "s1"); (12, "s2"); (13, "s3") ]

let test_runner_deadline_jobs_invariant () =
  (* Table-6 shape: Grid'5000 reservation environments, the full deadline
     roster, two-phase runner (tightest probe, then the loose-deadline cpu
     phase behind its barrier) — the stealing executor moves cells between
     workers, the matrices must not move at all *)
  let app = { Scenario.label = "t"; params = { Dag_gen.default with n = 10 } } in
  let insts = Instance.grid5000 ~seed:21 ~app ~n_dags:2 ~n_cals:2 in
  let run jobs = Runner.deadline ~jobs ~algos:Algo.deadline_all ~scenario:"t6" insts in
  let r1 = run 1 in
  List.iter
    (fun jobs ->
      let r = run jobs in
      Alcotest.(check bool)
        (Printf.sprintf "tightest identical (jobs=%d)" jobs)
        true
        (r1.Runner.tightest.values = r.Runner.tightest.values);
      Alcotest.(check bool)
        (Printf.sprintf "loose cpu identical (jobs=%d)" jobs)
        true
        (r1.Runner.loose_cpu_hours.values = r.Runner.loose_cpu_hours.values))
    [ 2; 4 ]

let test_runner_lending_invariant () =
  (* fewer cells than workers: the runner stops fanning and lends the
     pool *into* each cell's schedule computation (Mp_core.Speculate) —
     the matrices must still match the sequential reference exactly *)
  let app = { Scenario.label = "t"; params = { Dag_gen.default with n = 12 } } in
  let insts = Instance.grid5000 ~seed:31 ~app ~n_dags:1 ~n_cals:1 in
  let algos_r = [ List.hd Algo.ressched_main ] in
  let r1 = Runner.ressched ~jobs:1 ~algos:algos_r ~scenario:"lend" insts in
  let r4 = Runner.ressched ~jobs:4 ~algos:algos_r ~scenario:"lend" insts in
  Alcotest.(check bool) "lent ressched tat identical" true
    (r1.Runner.tat.values = r4.Runner.tat.values);
  Alcotest.(check bool) "lent ressched cpu identical" true
    (r1.Runner.cpu_hours.values = r4.Runner.cpu_hours.values);
  let algos_d =
    List.filter_map Algo.deadline_find [ "DL_BD_CPA"; "DL_RCBD_CPAR-l" ]
  in
  Alcotest.(check int) "two deadline algos" 2 (List.length algos_d);
  let d1 = Runner.deadline ~jobs:1 ~algos:algos_d ~scenario:"lend" insts in
  let d4 = Runner.deadline ~jobs:4 ~algos:algos_d ~scenario:"lend" insts in
  Alcotest.(check bool) "lent deadline tightest identical" true
    (d1.Runner.tightest.values = d4.Runner.tightest.values);
  Alcotest.(check bool) "lent deadline cpu identical" true
    (d1.Runner.loose_cpu_hours.values = d4.Runner.loose_cpu_hours.values)

let test_runner_worker_exception () =
  (* a crash on a worker domain must propagate to the caller, not hang *)
  let insts = micro_instances () in
  let boom : Algo.ressched = { name = "BOOM"; run = (fun ?spec:_ _ _ -> failwith "boom") } in
  Alcotest.check_raises "worker failure propagates" (Failure "boom") (fun () ->
      ignore (Runner.ressched ~jobs:4 ~algos:[ boom ] ~scenario:"s" insts))

(* ------------------------------------------------------------------ *)
(* Experiments (micro scale) *)

let test_experiments_scales () =
  Alcotest.(check bool) "quick" true (Experiments.scale_of_string "quick" = Some Experiments.quick);
  Alcotest.(check bool) "paper" true (Experiments.scale_of_string "paper" = Some Experiments.paper);
  Alcotest.(check bool) "unknown" true (Experiments.scale_of_string "nope" = None);
  Alcotest.(check bool) "tiny" true (Experiments.scale_of_string "tiny" = Some Experiments.tiny);
  Alcotest.(check int) "paper app specs" 40 Experiments.paper.n_app;
  Alcotest.(check int) "paper res specs" 36 Experiments.paper.n_res;
  Alcotest.(check int) "paper dags" 20 Experiments.paper.n_dags;
  Alcotest.(check int) "paper cals" 50 Experiments.paper.n_cals

(* Golden-file regression: the exact standard_tables.out rendering at tiny
   scale, pinned against a checked-in file so report-formatting or
   algorithm drift is caught by [dune runtest] instead of by eyeballing
   the repository-root artifact.  Regenerate the file by printing
   [Experiments.standard_tables ~jobs:1 Experiments.tiny]. *)
let test_standard_tables_golden () =
  let path =
    if Sys.file_exists "standard_tables_tiny.expected" then "standard_tables_tiny.expected"
    else Filename.concat "test" "standard_tables_tiny.expected"
  in
  let expected = In_channel.with_open_bin path In_channel.input_all in
  let actual = Experiments.standard_tables ~jobs:1 Experiments.tiny in
  Alcotest.(check string) "tiny-scale tables match golden file" expected actual

let test_experiments_table2 () =
  let rows = Experiments.table2 micro in
  Alcotest.(check int) "4 logs" 4 (List.length rows);
  List.iter
    (fun (r : Experiments.log_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s realized %.3f near target %.3f" r.log_name r.realized_util r.target_util)
        true
        (Float.abs (r.realized_util -. r.target_util) < 0.25 *. r.target_util))
    rows

let test_experiments_table4_shape () =
  let tat, cpu = Experiments.table4 micro in
  Alcotest.(check int) "4 rows" 4 (List.length tat);
  let find name rows =
    (List.find (fun (r : Metrics.row) -> r.algo = name) rows).Metrics.avg_degradation
  in
  (* the qualitative Table 4 finding: CPA-based bounding beats naive
     bounding on CPU-hours *)
  Alcotest.(check bool) "BD_CPAR beats BD_ALL on cpu" true (find "BD_CPAR" cpu < find "BD_ALL" cpu)

let test_experiments_allocator_ablation () =
  let rows = Experiments.allocator_ablation micro in
  Alcotest.(check int) "4 allocators" 4 (List.length rows);
  let find name =
    List.find (fun (r : Experiments.allocator_row) -> r.allocator = name) rows
  in
  (* the improved criterion must not use more work than the classic one *)
  Alcotest.(check bool) "improved saves work" true
    ((find "CPA (improved criterion)").avg_work_h <= (find "CPA (classic criterion)").avg_work_h +. 1e-6);
  List.iter
    (fun (r : Experiments.allocator_row) ->
      Alcotest.(check bool) "positive makespan" true (r.avg_makespan_h > 0.))
    rows

let test_experiments_hetero_ablation () =
  match Experiments.hetero_ablation micro with
  | [ all_; cpar ] ->
      Alcotest.(check string) "row order" "HBD_ALL" all_.hbd;
      Alcotest.(check bool) "cpar cheaper" true (cpar.avg_cpu_hours < all_.avg_cpu_hours);
      List.iter
        (fun (r : Experiments.hetero_row) ->
          Alcotest.(check bool) "share in [0,1]" true
            (r.fast_site_share >= 0. && r.fast_site_share <= 1.))
        [ all_; cpar ]
  | _ -> Alcotest.fail "expected two rows"

let test_experiments_online_ablation () =
  let rows = Experiments.online_ablation micro in
  (match rows with
  | first :: _ ->
      Alcotest.(check (float 1e-9)) "zero arrivals, zero penalty" 0. first.avg_turnaround_penalty
  | [] -> Alcotest.fail "no rows");
  List.iter
    (fun (r : Experiments.online_row) ->
      Alcotest.(check bool) "penalty non-negative-ish" true (r.avg_turnaround_penalty >= -1e-9))
    rows

let test_experiments_estimate_ablation () =
  let rows = Experiments.estimate_ablation micro in
  Alcotest.(check int) "4 factors" 4 (List.length rows);
  (* turn-around grows with the over-estimation factor for every algorithm *)
  let tat_of (r : Experiments.estimate_row) name =
    let _, tat, _ = List.find (fun (n, _, _) -> n = name) r.rows in
    tat
  in
  let first = List.hd rows and last = List.nth rows 3 in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " degrades with pessimism")
        true
        (tat_of last name > tat_of first name))
    [ "BD_ALL"; "BD_CPA"; "BD_CPAR" ]

let test_experiments_timing_rows () =
  let rows = Experiments.table9 { micro with n_dags = 1; n_cals = 2 } in
  Alcotest.(check bool) "has rows" true (List.length rows >= 8);
  List.iter
    (fun (r : Experiments.timing_row) ->
      Alcotest.(check int) "5 columns" 5 (List.length r.times_ms);
      List.iter
        (fun (_, ms) -> Alcotest.(check bool) "positive time" true (ms > 0.))
        r.times_ms)
    rows

(* ------------------------------------------------------------------ *)
(* Campaign *)

let campaign_env () =
  let cal = Mp_platform.Calendar.create ~procs:32 in
  Mp_core.Env.make ~calendar:cal ~q:32.

let small_dag seed = Dag_gen.generate (Mp_prelude.Rng.create seed) { Dag_gen.default with n = 10 }

let test_campaign_single () =
  let env = campaign_env () in
  let dag = small_dag 1 in
  let c = Campaign.run env [ { Campaign.at = 0; dag } ] in
  Alcotest.(check int) "one app" 1 (List.length c.apps);
  let solo = Mp_core.Ressched.schedule env dag in
  Alcotest.(check int) "same as solo run" (Mp_cpa.Schedule.turnaround solo) c.makespan

let test_campaign_respects_arrivals () =
  let env = campaign_env () in
  let arrivals =
    [ { Campaign.at = 0; dag = small_dag 2 }; { Campaign.at = 50_000; dag = small_dag 3 } ]
  in
  let c = Campaign.run env arrivals in
  (match c.apps with
  | [ _; late ] ->
      Alcotest.(check int) "arrival recorded" 50_000 late.arrival;
      Alcotest.(check bool) "starts after its arrival" true
        (Mp_cpa.Schedule.earliest_start late.schedule >= 50_000)
  | _ -> Alcotest.fail "expected two apps");
  Alcotest.(check bool) "total cpu is the sum" true
    (Float.abs (c.total_cpu_hours -. List.fold_left (fun a r -> a +. r.Campaign.cpu_hours) 0. c.apps)
    < 1e-9)

let test_campaign_later_apps_see_earlier_ones () =
  (* Two identical apps arriving together: the second must schedule around
     the first, so it finishes no earlier. *)
  let env = campaign_env () in
  let arrivals = [ { Campaign.at = 0; dag = small_dag 4 }; { Campaign.at = 0; dag = small_dag 4 } ] in
  let c = Campaign.run env arrivals in
  match c.apps with
  | [ a; b ] ->
      Alcotest.(check bool) "second not faster" true (b.turnaround >= a.turnaround);
      (* the combined reservations are feasible on the base calendar *)
      let (_ : Mp_platform.Calendar.t) =
        List.fold_left
          (fun cal r -> Mp_platform.Calendar.reserve cal r)
          (campaign_env ()).calendar
          (Mp_cpa.Schedule.reservations a.schedule @ Mp_cpa.Schedule.reservations b.schedule)
      in
      ()
  | _ -> Alcotest.fail "expected two apps"

let test_campaign_rejects_negative_arrival () =
  let env = campaign_env () in
  Alcotest.check_raises "negative arrival" (Invalid_argument "Campaign.run: negative arrival")
    (fun () -> ignore (Campaign.run env [ { Campaign.at = -1; dag = small_dag 5 } ]))

(* ------------------------------------------------------------------ *)
(* Executor *)

let executor_fixture () =
  let tasks =
    Array.init 3 (fun id -> Mp_dag.Task.make ~id ~seq:1000. ~alpha:0.) in
  let dag = Mp_dag.Dag.make tasks [ (0, 1); (1, 2) ] in
  let sched =
    {
      Mp_cpa.Schedule.slots =
        [|
          { start = 0; finish = 1000; procs = 1 };
          { start = 1000; finish = 2000; procs = 1 };
          { start = 2000; finish = 3000; procs = 1 };
        |];
    }
  in
  (dag, sched)

let test_executor_exact () =
  let dag, sched = executor_fixture () in
  let o = Executor.run dag sched ~actual:(fun _ -> 1000) in
  Alcotest.(check bool) "success" true (Executor.success o);
  Alcotest.(check int) "turnaround" 3000 o.realized_turnaround;
  Alcotest.(check (float 1e-9)) "no waste" 0. (Executor.waste o)

let test_executor_early_finish () =
  let dag, sched = executor_fixture () in
  let o = Executor.run dag sched ~actual:(fun _ -> 500) in
  Alcotest.(check bool) "success" true (Executor.success o);
  (* the last task still starts at its reserved time *)
  Alcotest.(check int) "turnaround" 2500 o.realized_turnaround;
  Alcotest.(check (float 1e-9)) "half wasted" 0.5 (Executor.waste o)

let test_executor_kill_cascade () =
  let dag, sched = executor_fixture () in
  let o = Executor.run dag sched ~actual:(fun i -> if i = 1 then 1500 else 1000) in
  Alcotest.(check bool) "not success" false (Executor.success o);
  Alcotest.(check (list int)) "task 1 killed" [ 1 ] o.killed;
  Alcotest.(check (list int)) "task 2 skipped" [ 2 ] o.skipped;
  Alcotest.(check bool) "task 0 finished" true o.finished.(0)

let test_executor_estimation_error () =
  let rng = Mp_prelude.Rng.create 9 in
  let dag, sched = executor_fixture () in
  let o = Executor.with_estimation_error rng dag sched ~factor:2.0 in
  Alcotest.(check bool) "never killed" true (Executor.success o);
  Alcotest.(check bool) "some waste" true (Executor.waste o > 0.);
  Alcotest.check_raises "factor < 1"
    (Invalid_argument "Executor.with_estimation_error: factor < 1") (fun () ->
      ignore (Executor.with_estimation_error rng dag sched ~factor:0.5))

let test_executor_on_real_schedule () =
  (* end-to-end: a real BD_CPAR schedule replayed with 1.5x-pessimistic
     estimates never gets killed and wastes at most 1 - 1/1.5 of the bill *)
  let app = { Scenario.label = "t"; params = { Dag_gen.default with n = 15 } } in
  let res = { Scenario.log = Log_model.osc_cluster; phi = 0.2; method_ = Reservation_gen.Expo } in
  match Instance.synthetic ~seed:10 ~app ~res ~n_dags:1 ~n_cals:1 with
  | [ inst ] ->
      let sched = Mp_core.Ressched.schedule inst.env inst.dag in
      let o = Executor.with_estimation_error (Mp_prelude.Rng.create 3) inst.dag sched ~factor:1.5 in
      Alcotest.(check bool) "success" true (Executor.success o);
      Alcotest.(check bool) "waste bounded" true (Executor.waste o <= (1. -. (1. /. 1.5)) +. 0.05);
      Alcotest.(check bool) "realized <= reserved turnaround" true
        (o.realized_turnaround <= Mp_cpa.Schedule.turnaround sched)
  | _ -> Alcotest.fail "expected one instance"

let () =
  Alcotest.run "sim"
    [
      ( "scenario",
        [
          Alcotest.test_case "app specs count" `Quick test_app_specs_count;
          Alcotest.test_case "res specs count" `Quick test_res_specs_count;
          Alcotest.test_case "phis" `Quick test_phis;
          Alcotest.test_case "sampling" `Quick test_sample_specs;
          Alcotest.test_case "res label" `Quick test_res_label;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "means" `Quick test_metrics_means;
          Alcotest.test_case "degradation" `Quick test_metrics_degradation;
          Alcotest.test_case "winners ties" `Quick test_metrics_winners_ties;
          Alcotest.test_case "non-finite filtered" `Quick test_metrics_nonfinite_filtered;
          Alcotest.test_case "summarize" `Quick test_metrics_summarize;
          Alcotest.test_case "summarize mismatch" `Quick test_metrics_summarize_mismatch;
          Alcotest.test_case "all-non-finite" `Quick test_metrics_all_nonfinite;
          Alcotest.test_case "tie wins exceed scenarios" `Quick test_metrics_tie_wins_exceed_scenarios;
          QCheck_alcotest.to_alcotest test_metrics_winner_invariants;
        ] );
      ( "report",
        [
          Alcotest.test_case "render" `Quick test_report_render;
          Alcotest.test_case "formats" `Quick test_report_formats;
        ] );
      ( "instances",
        [
          Alcotest.test_case "logcache" `Quick test_logcache_caches;
          Alcotest.test_case "synthetic" `Quick test_instance_synthetic;
          Alcotest.test_case "deterministic" `Quick test_instance_deterministic;
          Alcotest.test_case "grid5000" `Quick test_instance_grid5000;
        ] );
      ( "runner",
        [
          Alcotest.test_case "ressched validated" `Quick test_runner_ressched;
          Alcotest.test_case "deadline validated" `Slow test_runner_deadline;
          Alcotest.test_case "parallel = sequential" `Quick test_runner_parallel_deterministic;
          Alcotest.test_case "deadline jobs-invariant (Table 6 shape)" `Slow test_runner_deadline_jobs_invariant;
          Alcotest.test_case "pool lending jobs-invariant" `Quick test_runner_lending_invariant;
          Alcotest.test_case "worker exception propagates" `Quick test_runner_worker_exception;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "single app" `Quick test_campaign_single;
          Alcotest.test_case "respects arrivals" `Quick test_campaign_respects_arrivals;
          Alcotest.test_case "later apps see earlier" `Quick test_campaign_later_apps_see_earlier_ones;
          Alcotest.test_case "rejects negative arrival" `Quick test_campaign_rejects_negative_arrival;
        ] );
      ( "executor",
        [
          Alcotest.test_case "exact durations" `Quick test_executor_exact;
          Alcotest.test_case "early finish" `Quick test_executor_early_finish;
          Alcotest.test_case "kill cascade" `Quick test_executor_kill_cascade;
          Alcotest.test_case "estimation error" `Quick test_executor_estimation_error;
          Alcotest.test_case "real schedule replay" `Quick test_executor_on_real_schedule;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "scales" `Quick test_experiments_scales;
          Alcotest.test_case "standard tables golden file" `Slow test_standard_tables_golden;
          Alcotest.test_case "table2" `Slow test_experiments_table2;
          Alcotest.test_case "table4 shape" `Slow test_experiments_table4_shape;
          Alcotest.test_case "allocator ablation" `Slow test_experiments_allocator_ablation;
          Alcotest.test_case "hetero ablation" `Slow test_experiments_hetero_ablation;
          Alcotest.test_case "online ablation" `Slow test_experiments_online_ablation;
          Alcotest.test_case "estimate ablation" `Slow test_experiments_estimate_ablation;
          Alcotest.test_case "timing rows" `Slow test_experiments_timing_rows;
        ] );
    ]
