(* Mp_obs: unit tests for the probe primitives, the determinism contract
   (tracing does not change scheduler output) and lossless merging of the
   per-domain buffers under the Pool.

   The obs registry and buffers are process-global, so every test starts
   from [Mp_obs.reset ()] and runs the observed section under
   [Mp_obs.with_enabled]. *)

module Obs = Mp_obs
module Rng = Mp_prelude.Rng
module Pool = Mp_prelude.Pool
module Dag_gen = Mp_dag.Dag_gen
module Calendar = Mp_platform.Calendar
module Reservation = Mp_platform.Reservation
module Env = Mp_core.Env
module Ressched = Mp_core.Ressched
module Schedule = Mp_cpa.Schedule

let counter_value snap name =
  match List.assoc_opt name snap.Obs.Snapshot.counters with Some v -> v | None -> 0

let hist_opt snap name =
  List.find_opt (fun h -> h.Obs.Snapshot.hist_name = name) snap.Obs.Snapshot.hists

let events_named snap name =
  List.filter (fun e -> e.Obs.Snapshot.span_name = name) snap.Obs.Snapshot.events

(* ------------------------------------------------------------------ *)
(* Counters *)

let c_unit = Obs.Counter.make "test.counter.unit"
let c_disabled = Obs.Counter.make "test.counter.disabled"

let test_counter_incr_add () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      for _ = 1 to 5 do
        Obs.Counter.incr c_unit
      done;
      Obs.Counter.add c_unit 37);
  let snap = Obs.Snapshot.take () in
  Alcotest.(check int) "5 incrs + add 37" 42 (counter_value snap "test.counter.unit")

let test_counter_disabled_is_noop () =
  Obs.reset ();
  Obs.Counter.incr c_disabled;
  Obs.Counter.add c_disabled 100;
  let snap = Obs.Snapshot.take () in
  Alcotest.(check int) "disabled counter stays 0" 0 (counter_value snap "test.counter.disabled")

let test_reset_zeroes () =
  Obs.reset ();
  Obs.with_enabled (fun () -> Obs.Counter.incr c_unit);
  Obs.reset ();
  let snap = Obs.Snapshot.take () in
  Alcotest.(check int) "reset zeroes counters" 0 (counter_value snap "test.counter.unit")

(* ------------------------------------------------------------------ *)
(* Timers / histograms *)

let t_unit = Obs.Timer.make "test.timer.unit"

let test_timer_records () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      for _ = 1 to 10 do
        let t0 = Obs.Timer.start () in
        (* burn a little time so elapsed > 0 *)
        let s = ref 0 in
        for i = 1 to 1000 do
          s := !s + i
        done;
        ignore (Sys.opaque_identity !s);
        Obs.Timer.stop t_unit t0
      done);
  let snap = Obs.Snapshot.take () in
  match hist_opt snap "test.timer.unit" with
  | None -> Alcotest.fail "timer histogram missing"
  | Some h ->
      Alcotest.(check int) "10 samples" 10 h.count;
      Alcotest.(check bool) "total >= max" true (h.total_ns >= h.max_ns);
      Alcotest.(check int) "bucket counts sum to count" h.count (Array.fold_left ( + ) 0 h.buckets)

let test_timer_disabled_start_is_zero () =
  Obs.reset ();
  Alcotest.(check int) "start () = 0 when disabled" 0 (Obs.Timer.start ());
  (* a t0 of 0 (started while disabled) must be dropped even if the switch
     flips before the stop *)
  Obs.with_enabled (fun () -> Obs.Timer.stop t_unit 0);
  let snap = Obs.Snapshot.take () in
  match hist_opt snap "test.timer.unit" with
  | None -> ()
  | Some h -> Alcotest.(check int) "no sample from disabled start" 0 h.count

let test_percentile_from_buckets () =
  (* hand-built histogram: 90 samples in bucket 4 ([16,32) ns), 10 in
     bucket 10 ([1024,2048) ns) *)
  let buckets = Array.make 64 0 in
  buckets.(4) <- 90;
  buckets.(10) <- 10;
  let h =
    { Obs.Snapshot.hist_name = "hand"; count = 100; total_ns = 0; max_ns = 2047; buckets }
  in
  let p50 = Obs.Snapshot.percentile h 0.5 in
  let p99 = Obs.Snapshot.percentile h 0.99 in
  Alcotest.(check bool) "p50 inside [16,32)" true (p50 >= 16. && p50 < 32.);
  Alcotest.(check bool) "p99 inside [1024,2048)" true (p99 >= 1024. && p99 < 2048.);
  let empty = { h with count = 0; buckets = Array.make 64 0 } in
  Alcotest.(check bool) "empty hist -> nan" true (Float.is_nan (Obs.Snapshot.percentile empty 0.5))

(* ------------------------------------------------------------------ *)
(* Spans *)

let sp_outer = Obs.Span.make "test.span.outer"
let sp_inner = Obs.Span.make "test.span.inner"

let test_span_nesting () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      Obs.Span.enter sp_outer;
      Obs.Span.enter sp_inner;
      Obs.Span.exit sp_inner;
      Obs.Span.exit sp_outer);
  let snap = Obs.Snapshot.take () in
  let outer = events_named snap "test.span.outer" in
  let inner = events_named snap "test.span.inner" in
  Alcotest.(check int) "one outer event" 1 (List.length outer);
  Alcotest.(check int) "one inner event" 1 (List.length inner);
  let o = List.hd outer and i = List.hd inner in
  Alcotest.(check bool) "inner starts after outer" true (i.start_ns >= o.start_ns);
  Alcotest.(check bool) "inner nested in outer" true
    (i.start_ns + i.dur_ns <= o.start_ns + o.dur_ns);
  Alcotest.(check bool) "events sorted by start" true
    (let rec sorted = function
       | a :: (b :: _ as rest) -> a.Obs.Snapshot.start_ns <= b.Obs.Snapshot.start_ns && sorted rest
       | _ -> true
     in
     sorted snap.events)

let test_span_wrap_on_exception () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      (try Obs.Span.wrap sp_outer (fun () -> failwith "boom") with Failure _ -> ());
      (* the stack must be balanced again: a fresh span still records *)
      Obs.Span.wrap sp_inner Fun.id);
  let snap = Obs.Snapshot.take () in
  Alcotest.(check int) "exceptional wrap recorded" 1 (List.length (events_named snap "test.span.outer"));
  Alcotest.(check int) "stack balanced after exception" 1
    (List.length (events_named snap "test.span.inner"))

let test_span_unmatched_exit_dropped () =
  Obs.reset ();
  Obs.with_enabled (fun () -> Obs.Span.exit sp_outer);
  let snap = Obs.Snapshot.take () in
  Alcotest.(check int) "unmatched exit dropped" 0 (List.length snap.events)

let test_event_cap_counts_drops () =
  Obs.reset ();
  Obs.set_event_cap 8;
  Obs.with_enabled (fun () ->
      for _ = 1 to 20 do
        Obs.Span.wrap sp_outer Fun.id
      done);
  let snap = Obs.Snapshot.take () in
  Obs.set_event_cap 1_000_000;
  Alcotest.(check int) "events capped" 8 (List.length snap.events);
  Alcotest.(check int) "drops counted" 12 (counter_value snap "obs.events.dropped")

(* ------------------------------------------------------------------ *)
(* Snapshot.sub, Report, Trace *)

let test_snapshot_sub () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      Obs.Counter.add c_unit 3;
      Obs.Span.wrap sp_outer Fun.id);
  let earlier = Obs.Snapshot.take () in
  Obs.with_enabled (fun () ->
      Obs.Counter.add c_unit 4;
      Obs.Span.wrap sp_outer Fun.id;
      let t0 = Obs.Timer.start () in
      Obs.Timer.stop t_unit t0);
  let later = Obs.Snapshot.take () in
  let d = Obs.Snapshot.sub later ~earlier in
  Alcotest.(check int) "counter delta" 4 (counter_value d "test.counter.unit");
  Alcotest.(check int) "event delta" 1 (List.length (events_named d "test.span.outer"));
  match hist_opt d "test.timer.unit" with
  | None -> Alcotest.fail "timer delta missing"
  | Some h -> Alcotest.(check int) "hist delta count" 1 h.count

let test_report_and_trace () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      Obs.Counter.add c_unit 7;
      let t0 = Obs.Timer.start () in
      Obs.Timer.stop t_unit t0;
      Obs.Span.wrap sp_outer Fun.id);
  let snap = Obs.Snapshot.take () in
  let text = Obs.Report.text snap in
  let contains hay needle =
    let re = Re.compile (Re.str needle) in
    Re.execp re hay
  in
  Alcotest.(check bool) "text mentions counter" true (contains text "test.counter.unit");
  Alcotest.(check bool) "text mentions timer" true (contains text "test.timer.unit");
  let json = Obs.Report.to_json snap in
  Alcotest.(check bool) "json schema tag" true (contains json "mpres-obs-1");
  Alcotest.(check bool) "json has p95" true (contains json "p95_ns");
  let trace = Obs.Trace.to_chrome snap in
  Alcotest.(check bool) "trace has traceEvents" true (contains trace "traceEvents");
  Alcotest.(check bool) "trace has complete events" true (contains trace "\"ph\":\"X\"");
  Alcotest.(check bool) "trace names domain tracks" true (contains trace "thread_name");
  Alcotest.(check bool) "empty snapshot -> empty report" true (Obs.Report.text (Obs.Snapshot.sub snap ~earlier:snap) = "")

(* ------------------------------------------------------------------ *)
(* Determinism: tracing must not change scheduler output *)

let busy_env ?(p = 8) ?(n_res = 10) seed =
  let rng = Rng.create seed in
  let rec add cal k =
    if k = 0 then cal
    else begin
      let start = Rng.int rng 40_000 in
      let dur = 600 + Rng.int rng 4_000 in
      let procs = 1 + Rng.int rng (p / 2) in
      match Calendar.reserve_opt cal (Reservation.make ~start ~finish:(start + dur) ~procs) with
      | Some cal -> add cal (k - 1)
      | None -> add cal (k - 1)
    end
  in
  let calendar = add (Calendar.create ~procs:p) n_res in
  Env.make ~calendar ~q:(Calendar.average_available calendar ~from_:0 ~until:40_000)

let test_tracing_does_not_change_schedules =
  QCheck.Test.make ~count:25 ~name:"tracing does not change scheduler output"
    QCheck.(pair small_nat small_nat)
    (fun (s1, s2) ->
      let env = busy_env (s1 + 1) in
      let dag = Dag_gen.generate (Rng.create (s2 + 1)) { Dag_gen.default with n = 15 } in
      let blind = Ressched.schedule env dag in
      Obs.reset ();
      let traced = Obs.with_enabled (fun () -> Ressched.schedule env dag) in
      Obs.reset ();
      blind = traced)

(* ------------------------------------------------------------------ *)
(* Concurrency: per-domain buffers merge losslessly under the Pool *)

let c_par = Obs.Counter.make "test.par.counter"
let t_par = Obs.Timer.make "test.par.timer"
let sp_par = Obs.Span.make "test.par.span"

let merge_under_pool jobs () =
  Obs.reset ();
  let n = 200 in
  let items = Array.init n (fun i -> i) in
  let out =
    Obs.with_enabled (fun () ->
        Pool.with_pool ~jobs (fun p ->
            Pool.map_array p
              (fun i ->
                Obs.Span.wrap sp_par @@ fun () ->
                Obs.Counter.add c_par i;
                let t0 = Obs.Timer.start () in
                Obs.Timer.stop t_par t0;
                i * 2)
              items))
  in
  Alcotest.(check int) "results merged in order" (n * (n - 1))
    (Array.fold_left ( + ) 0 out);
  let snap = Obs.Snapshot.take () in
  Alcotest.(check int) "no events dropped" 0 (counter_value snap "obs.events.dropped");
  Alcotest.(check int) "counter adds all merged" (n * (n - 1) / 2)
    (counter_value snap "test.par.counter");
  (match hist_opt snap "test.par.timer" with
  | None -> Alcotest.fail "parallel timer histogram missing"
  | Some h -> Alcotest.(check int) "timer samples all merged" n h.count);
  let cell_events = events_named snap "test.par.span" in
  Alcotest.(check int) "span events all merged" n (List.length cell_events);
  (* with several workers the events must span more than one domain track *)
  let domains =
    List.sort_uniq compare (List.map (fun e -> e.Obs.Snapshot.domain) cell_events)
  in
  if jobs > 1 then
    Alcotest.(check bool) "events from more than one domain" true (List.length domains > 1)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mp_obs"
    [
      ( "counter",
        [
          Alcotest.test_case "incr and add" `Quick test_counter_incr_add;
          Alcotest.test_case "disabled is a no-op" `Quick test_counter_disabled_is_noop;
          Alcotest.test_case "reset zeroes" `Quick test_reset_zeroes;
        ] );
      ( "timer",
        [
          Alcotest.test_case "records samples" `Quick test_timer_records;
          Alcotest.test_case "disabled start is dropped" `Quick test_timer_disabled_start_is_zero;
          Alcotest.test_case "percentiles from buckets" `Quick test_percentile_from_buckets;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "wrap on exception" `Quick test_span_wrap_on_exception;
          Alcotest.test_case "unmatched exit dropped" `Quick test_span_unmatched_exit_dropped;
          Alcotest.test_case "event cap counts drops" `Quick test_event_cap_counts_drops;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "sub gives section deltas" `Quick test_snapshot_sub;
          Alcotest.test_case "report and trace render" `Quick test_report_and_trace;
        ] );
      ( "determinism",
        [ QCheck_alcotest.to_alcotest test_tracing_does_not_change_schedules ] );
      ( "concurrency",
        [
          Alcotest.test_case "merge under pool, jobs=2" `Quick (merge_under_pool 2);
          Alcotest.test_case "merge under pool, jobs=4" `Quick (merge_under_pool 4);
        ] );
    ]
